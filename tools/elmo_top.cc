// elmo_top: terminal dashboard over a DB's recorded telemetry — the
// engine's JSONL info LOG (full sampler_tick events), a timeseries /
// BenchResult JSON, or a Prometheus metrics export. Point it at a
// running DB's directory and it follows the live LOG; `--once` renders
// a single frame (CI / scripting), `--json` emits the final health
// report instead of the dashboard.
//
//   elmo_top [--once] [--json] [--interval=ms] [--frames=N] <path>
//     <path>: DB directory (reads <dir>/LOG, falling back to
//             <dir>/metrics.prom), JSONL LOG file, timeseries or
//             BenchResult JSON, or a Prometheus .prom export.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "env/env.h"
#include "monitor/health_monitor.h"
#include "monitor/offline.h"
#include "util/status.h"

namespace {

using elmo::Env;
using elmo::Status;
using elmo::lsm::IntervalSample;
using elmo::monitor::AnalyzeHealthSeries;
using elmo::monitor::AnomalyEvent;
using elmo::monitor::Diagnosis;
using elmo::monitor::HealthReport;
using elmo::monitor::HealthStatusName;
using elmo::monitor::HealthTimeline;
using elmo::monitor::LoadTelemetry;
using elmo::monitor::MonitorConfig;
using elmo::monitor::OptionsChangeEvent;

void Usage() {
  fprintf(stderr,
          "usage: elmo_top [--once] [--json] [--interval=ms] [--frames=N] "
          "<db_dir|LOG|timeseries.json|metrics.prom>\n"
          "  --once          render one frame and exit\n"
          "  --json          print the final health report as JSON\n"
          "  --interval=ms   refresh cadence in live mode (default 1000)\n"
          "  --frames=N      stop after N live frames (default: forever)\n");
}

std::string HumanBytes(double v) {
  char buf[32];
  const char* unit = "B";
  if (v >= (1ull << 30)) {
    v /= (1ull << 30);
    unit = "GiB";
  } else if (v >= (1ull << 20)) {
    v /= (1ull << 20);
    unit = "MiB";
  } else if (v >= (1ull << 10)) {
    v /= (1ull << 10);
    unit = "KiB";
  }
  snprintf(buf, sizeof(buf), "%.1f %s", v, unit);
  return buf;
}

std::string HumanRate(double v) {
  char buf[32];
  if (v >= 1e6) {
    snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

// Degraded-state banner shared by both dashboards. Severity follows
// lsm::ErrorSeverity: 1 soft (writes stalled, auto-resume pending),
// 2 hard (read-only degraded), 3 fatal (reopen required).
std::string DegradedBanner(int severity, const std::string& detail) {
  if (severity <= 0) return "";
  const char* what =
      severity >= 3
          ? "FATAL background error — reopen required"
          : (severity == 2
                 ? "DEGRADED (hard): writes fail fast, reads serving"
                 : "DEGRADED (soft): writes stalled pending auto-resume");
  std::string out = "!! ";
  out += what;
  if (!detail.empty()) out += "   " + detail;
  out += "\n";
  return out;
}

// ASCII sparkline over the last `width` values (min..max scaled to a
// 8-step ramp). Pure ASCII so it survives any terminal/CI log.
std::string Sparkline(const std::vector<double>& values, size_t width) {
  static const char kRamp[] = " .:-=+*#";
  const size_t n = values.size();
  if (n == 0) return "";
  const size_t start = n > width ? n - width : 0;
  double lo = values[start], hi = values[start];
  for (size_t i = start; i < n; i++) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  std::string out;
  for (size_t i = start; i < n; i++) {
    const double span = hi - lo;
    const int step =
        span <= 0 ? 4
                  : static_cast<int>((values[i] - lo) / span * 7.0 + 0.5);
    out += kRamp[step < 0 ? 0 : (step > 7 ? 7 : step)];
  }
  return out;
}

// ---- series dashboard (LOG / timeseries / BenchResult sources) ----

std::string RenderSeriesFrame(const std::string& source,
                              const std::vector<IntervalSample>& samples,
                              const HealthTimeline& timeline,
                              const std::vector<OptionsChangeEvent>& changes) {
  std::string out;
  char buf[256];
  const IntervalSample& last = samples.back();

  snprintf(buf, sizeof(buf),
           "elmo_top — %s\nticks: %zu   engine clock: %.2fs   interval: "
           "%.0f ms\n",
           source.c_str(), samples.size(), last.ts_us / 1e6,
           last.interval_us / 1e3);
  out += buf;

  {
    std::string detail;
    if (last.auto_resume_successes + last.auto_resume_failures > 0) {
      snprintf(buf, sizeof(buf), "resume attempts this tick: %llu ok, %llu failed",
               static_cast<unsigned long long>(last.auto_resume_successes),
               static_cast<unsigned long long>(last.auto_resume_failures));
      detail = buf;
    }
    out += DegradedBanner(last.bg_error_severity, detail);
  }

  const HealthReport& hr = timeline.final_report;
  snprintf(buf, sizeof(buf),
           "health: %s   anomalies: %zu   diagnoses: %zu\n\n",
           HealthStatusName(hr.status), hr.anomalies.size(),
           hr.diagnoses.size());
  out += buf;

  std::vector<double> ops;
  ops.reserve(samples.size());
  for (const IntervalSample& s : samples) ops.push_back(s.ops_per_sec);
  snprintf(buf, sizeof(buf), "ops/s %10s  [%s]\n",
           HumanRate(last.ops_per_sec).c_str(),
           Sparkline(ops, 48).c_str());
  out += buf;

  snprintf(buf, sizeof(buf),
           "stall %9.1f%%  p99w %8.1fus  p99r %8.1fus  cache hit %5.1f%%\n",
           last.stall_fraction * 100.0, last.p99_write_us, last.p99_get_us,
           last.block_cache_hits + last.block_cache_misses > 0
               ? 100.0 * last.block_cache_hits /
                     (last.block_cache_hits + last.block_cache_misses)
               : 0.0);
  out += buf;

  snprintf(buf, sizeof(buf),
           "memtable %s (imm %d)   debt %s   cache %s\n",
           HumanBytes(static_cast<double>(last.memtable_bytes)).c_str(),
           last.imm_count,
           HumanBytes(static_cast<double>(last.pending_compaction_bytes))
               .c_str(),
           HumanBytes(static_cast<double>(last.block_cache_usage)).c_str());
  out += buf;

  out += "levels:";
  for (int l = 0; l < last.num_levels && l < elmo::lsm::DbStats::kMaxLevels;
       l++) {
    snprintf(buf, sizeof(buf), "  L%d:%d", l, last.level_files[l]);
    out += buf;
  }
  out += "\n";

  if (!hr.anomalies.empty()) {
    out += "\nrecent anomalies:\n";
    const size_t show = std::min<size_t>(hr.anomalies.size(), 6);
    for (size_t i = hr.anomalies.size() - show; i < hr.anomalies.size();
         i++) {
      out += "  " + hr.anomalies[i].ToString() + "\n";
    }
  }
  if (!changes.empty()) {
    // Live SetOptions batches (manual or online-tuner), newest last.
    out += "\nrecent option changes:\n";
    const size_t show = std::min<size_t>(changes.size(), 6);
    for (size_t i = changes.size() - show; i < changes.size(); i++) {
      out += "  " + changes[i].ToString() + "\n";
    }
  }
  if (!hr.diagnoses.empty()) {
    out += "\ndiagnoses:\n";
    for (size_t i = 0; i < hr.diagnoses.size() && i < 4; i++) {
      const Diagnosis& d = hr.diagnoses[i];
      snprintf(buf, sizeof(buf), "  %zu. %s (%.2f): %s\n", i + 1,
               d.rule.c_str(), d.severity, d.symptom.c_str());
      out += buf;
      if (!d.suggested_options.empty()) {
        out += "     revisit:";
        for (const std::string& opt : d.suggested_options) {
          out += " " + opt;
        }
        out += "\n";
      }
    }
  }
  return out;
}

// ---- prometheus dashboard (metrics.prom sources) ----

// Minimal text-exposition parser: "name{labels} value" / "name value",
// comments skipped. Keys keep their label block so series stay distinct.
bool ParsePrometheus(const std::string& text,
                     std::map<std::string, double>* out) {
  size_t pos = 0;
  size_t parsed = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    char* parse_end = nullptr;
    const double value = strtod(line.c_str() + space + 1, &parse_end);
    if (parse_end == line.c_str() + space + 1) continue;
    (*out)[line.substr(0, space)] = value;
    parsed++;
  }
  return parsed > 0;
}

double PromValue(const std::map<std::string, double>& m, const char* key) {
  auto it = m.find(key);
  return it == m.end() ? 0.0 : it->second;
}

std::string RenderPromFrame(const std::string& source,
                            const std::map<std::string, double>& cur,
                            const std::map<std::string, double>& prev,
                            double frame_seconds) {
  std::string out;
  char buf[256];
  snprintf(buf, sizeof(buf), "elmo_top — %s\nengine clock: %.2fs\n",
           source.c_str(), PromValue(cur, "elmo_engine_clock_us") / 1e6);
  out += buf;

  const int status = static_cast<int>(PromValue(cur, "elmo_health_status"));
  std::string top_rule;
  double top_severity = 0;
  for (const auto& [key, value] : cur) {
    if (key.compare(0, 31, "elmo_health_top_severity{rule=\"") == 0) {
      const size_t close = key.find('"', 31);
      top_rule = key.substr(31, close - 31);
      top_severity = value;
    }
  }
  {
    // elmo_background_error_state{source="...",kind="..."} is exported
    // (value 1) only while an error is active; surface its labels.
    std::string detail;
    for (const auto& [key, value] : cur) {
      if (key.compare(0, 28, "elmo_background_error_state{") == 0 &&
          value > 0) {
        detail = key.substr(27);  // keep the {source=...,kind=...} block
      }
    }
    out += DegradedBanner(
        static_cast<int>(PromValue(cur, "elmo_background_error_severity")),
        detail);
  }

  snprintf(buf, sizeof(buf), "health: %s",
           HealthStatusName(static_cast<elmo::monitor::HealthStatus>(
               status < 0 ? 0 : (status > 2 ? 2 : status))));
  out += buf;
  if (!top_rule.empty()) {
    snprintf(buf, sizeof(buf), "   top: %s (%.2f)", top_rule.c_str(),
             top_severity);
    out += buf;
  }
  out += "\n\n";

  const double ops_now =
      PromValue(cur, "elmo_writes_total") +
      PromValue(cur, "elmo_get_hits_total") +
      PromValue(cur, "elmo_get_misses_total") +
      PromValue(cur, "elmo_seeks_total");
  if (!prev.empty() && frame_seconds > 0) {
    const double ops_before = PromValue(prev, "elmo_writes_total") +
                              PromValue(prev, "elmo_get_hits_total") +
                              PromValue(prev, "elmo_get_misses_total") +
                              PromValue(prev, "elmo_seeks_total");
    snprintf(buf, sizeof(buf), "ops/s %10s   (counter delta over %.1fs)\n",
             HumanRate((ops_now - ops_before) / frame_seconds).c_str(),
             frame_seconds);
    out += buf;
  } else {
    snprintf(buf, sizeof(buf), "ops total %s\n", HumanRate(ops_now).c_str());
    out += buf;
  }

  snprintf(buf, sizeof(buf),
           "stall %ss   flushes %.0f   compactions %.0f\n",
           HumanRate(PromValue(cur, "elmo_write_stall_micros_total") / 1e6)
               .c_str(),
           PromValue(cur, "elmo_flushes_total"),
           PromValue(cur, "elmo_compactions_total"));
  out += buf;
  snprintf(buf, sizeof(buf), "memtable %s (imm %.0f)   debt %s   cache %s\n",
           HumanBytes(PromValue(cur, "elmo_memtable_bytes")).c_str(),
           PromValue(cur, "elmo_immutable_memtables"),
           HumanBytes(PromValue(cur, "elmo_pending_compaction_bytes"))
               .c_str(),
           HumanBytes(PromValue(cur, "elmo_block_cache_usage_bytes"))
               .c_str());
  out += buf;

  out += "levels:";
  for (int l = 0; l < elmo::lsm::DbStats::kMaxLevels; l++) {
    snprintf(buf, sizeof(buf), "elmo_level_files{level=\"%d\"}", l);
    auto it = cur.find(buf);
    if (it == cur.end()) break;
    snprintf(buf, sizeof(buf), "  L%d:%.0f", l, it->second);
    out += buf;
  }
  out += "\n";

  snprintf(buf, sizeof(buf),
           "sampler: retained %.0f, ring dropped %.0f, late ticks %.0f; "
           "log dropped %.0f, log failures %.0f\n",
           PromValue(cur, "elmo_sampler_samples"),
           PromValue(cur, "elmo_sampler_ring_dropped_total"),
           PromValue(cur, "elmo_sampler_late_ticks_total"),
           PromValue(cur, "elmo_info_log_dropped_lines_total"),
           PromValue(cur, "elmo_info_log_write_failures_total"));
  out += buf;
  return out;
}

bool LooksLikePrometheus(const std::string& text) {
  const size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return false;
  return text[first] == '#' || text.compare(first, 5, "elmo_") == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  bool as_json = false;
  uint64_t interval_ms = 1000;
  uint64_t max_frames = 0;  // 0 = forever
  std::string path;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg.compare(0, 11, "--interval=") == 0) {
      interval_ms = strtoull(arg.c_str() + 11, nullptr, 10);
      if (interval_ms == 0) interval_ms = 1000;
    } else if (arg.compare(0, 9, "--frames=") == 0) {
      max_frames = strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      fprintf(stderr, "elmo_top: unknown flag %s\n", arg.c_str());
      Usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }

  Env* env = Env::Posix();
  // DB directory convenience: follow its live LOG (or, absent a LOG,
  // its metrics export).
  if (!env->FileExists(path)) {
    if (env->FileExists(path + "/LOG")) {
      path += "/LOG";
    } else if (env->FileExists(path + "/metrics.prom")) {
      path += "/metrics.prom";
    }
  } else if (env->FileExists(path + "/LOG")) {
    path += "/LOG";
  }

  std::map<std::string, double> prev_prom;
  uint64_t frame = 0;
  while (true) {
    std::string text;
    Status s = env->ReadFileToString(path, &text);
    if (!s.ok()) {
      fprintf(stderr, "elmo_top: %s: %s\n", path.c_str(),
              s.ToString().c_str());
      return 1;
    }

    std::string out;
    if (LooksLikePrometheus(text)) {
      std::map<std::string, double> cur;
      if (!ParsePrometheus(text, &cur)) {
        fprintf(stderr, "elmo_top: %s: no parseable metrics\n",
                path.c_str());
        return 1;
      }
      if (as_json) {
        // Machine-readable passthrough of the parsed exposition.
        out = "{\n";
        bool first_kv = true;
        for (const auto& [key, value] : cur) {
          char buf[512];
          snprintf(buf, sizeof(buf), "%s  \"%s\": %.6g",
                   first_kv ? "" : ",\n", key.c_str(), value);
          out += buf;
          first_kv = false;
        }
        out += "\n}\n";
      } else {
        out = RenderPromFrame(path, cur, prev_prom, interval_ms / 1e3);
      }
      prev_prom = std::move(cur);
    } else {
      std::vector<IntervalSample> samples;
      std::vector<OptionsChangeEvent> changes;
      MonitorConfig config;
      s = LoadTelemetry(env, path, &samples, &config.engine, &changes);
      if (!s.ok() || samples.empty()) {
        fprintf(stderr, "elmo_top: %s: %s\n", path.c_str(),
                s.ok() ? "no sampler ticks found" : s.ToString().c_str());
        return 1;
      }
      const HealthTimeline timeline = AnalyzeHealthSeries(samples, config);
      out = as_json ? timeline.final_report.ToJson() + "\n"
                    : RenderSeriesFrame(path, samples, timeline, changes);
    }

    if (!once && !as_json && frame > 0) {
      fputs("\x1b[2J\x1b[H", stdout);  // clear + home between live frames
    }
    fputs(out.c_str(), stdout);
    fflush(stdout);

    frame++;
    if (once || as_json) break;
    if (max_frames > 0 && frame >= max_frames) break;
    env->SleepForMicroseconds(interval_ms * 1000);
  }
  return 0;
}
