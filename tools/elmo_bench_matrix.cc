// elmo_bench_matrix: perf-trajectory regression harness CLI (see
// src/bench_kit/regression.h) plus the tuner tournament driver (see
// src/elmo/tournament.h). Deterministic under SimEnv: same seed, same
// tree => byte-identical metric blocks.
//
//   elmo_bench_matrix --quick --out=BENCH_matrix.json
//   elmo_bench_matrix --quick --baseline=BENCH_matrix.json
//       --diff_out=BENCH_diff.json            # CI regression gate
//   elmo_bench_matrix --current=new.json --baseline=old.json
//                                             # diff two files, no run
//   elmo_bench_matrix --tournament --budget=8
//       --tournament_out=BENCH_tournament.json
//   elmo_bench_matrix --online_vs_offline
//       --online_out=BENCH_online_vs_offline.json
//       --timeline_out=tuning_timeline.json
//
// Exit codes: 0 ok, 1 regression gate breach, 2 usage/IO error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_kit/regression.h"
#include "elmo/tournament.h"
#include "env/device_model.h"
#include "env/hardware_profile.h"

namespace {

void Usage() {
  fprintf(stderr,
          "usage: elmo_bench_matrix [flags]\n"
          "  --quick               PR-sized matrix (default)\n"
          "  --full                full matrix (adds HDD cells, 4x ops)\n"
          "  --seed=<n>            SimEnv seed (default 42)\n"
          "  --out=<path>          write the matrix JSON here\n"
          "                        (default BENCH_matrix.json)\n"
          "  --baseline=<path>     compare against this committed matrix;\n"
          "                        exit 1 on threshold breach\n"
          "  --current=<path>      diff this file instead of running the\n"
          "                        matrix (requires --baseline)\n"
          "  --diff_out=<path>     write the comparison JSON here\n"
          "  --max_tput_drop=<pct> throughput-drop gate (default 15)\n"
          "  --max_p99_rise=<pct>  p99-rise gate (default 25)\n"
          "  --max_p999_rise=<pct> p999-rise gate (default 40)\n"
          "  --span_dir=<dir>      export per-cell span artifacts there:\n"
          "                        <cell>.span.trace, <cell>.perfetto.json,\n"
          "                        <cell>.attribution.json (dir must exist)\n"
          "  --tournament          run the tuner tournament instead\n"
          "  --budget=<n>          trials per tuner (default 8)\n"
          "  --contenders=<a,b>    subset of llm,cost_model,grid,random\n"
          "  --tournament_out=<p>  write the tournament JSON here\n"
          "                        (default BENCH_tournament.json)\n"
          "  --online_vs_offline   run the online-vs-offline comparison\n"
          "                        on the phased workload instead\n"
          "  --no_llm              heuristic-only online proposals\n"
          "  --require_online_win  exit nonzero unless the online run\n"
          "                        beats the best static config\n"
          "  --online_out=<p>      write the comparison JSON here\n"
          "                        (default BENCH_online_vs_offline.json)\n"
          "  --timeline_out=<p>    also write the online run's tuning\n"
          "                        timeline JSON here\n");
}

bool ParseUint64Flag(const std::string& arg, const char* name,
                     uint64_t* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = strtoull(arg.c_str() + prefix.size(), nullptr, 10);
  return true;
}

bool ParseDoubleFlag(const std::string& arg, const char* name, double* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = strtod(arg.c_str() + prefix.size(), nullptr);
  return true;
}

bool ParseStringFlag(const std::string& arg, const char* name,
                     std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

bool WriteFile(const std::string& path, const std::string& text) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  fwrite(text.data(), 1, text.size(), f);
  fputc('\n', f);
  fclose(f);
  return true;
}

// No trailing newline: span traces are CRC-framed binary and the
// reader treats stray tail bytes as corruption.
bool WriteFileBinary(const std::string& path, const std::string& bytes) {
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  fwrite(bytes.data(), 1, bytes.size(), f);
  fclose(f);
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  FILE* f = fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char buf[1 << 16];
  size_t n;
  out->clear();
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  fclose(f);
  return true;
}

int RunTournamentMode(uint64_t seed, int budget,
                      const std::string& contenders,
                      const std::string& out_path) {
  elmo::tune::TournamentConfig cfg;
  cfg.hw = elmo::HardwareProfile::Make(4, 4, elmo::DeviceModel::NvmeSsd());
  // The tuning target is the paper's hardest workload: Zipfian mixed
  // reads/writes. Trimmed op count keeps budget*4 trials CI-sized.
  cfg.workload = elmo::bench::WorkloadSpec::Mixgraph(120000);
  cfg.budget = budget;
  cfg.seed = seed;
  for (size_t pos = 0; pos < contenders.size();) {
    size_t comma = contenders.find(',', pos);
    if (comma == std::string::npos) comma = contenders.size();
    if (comma > pos) cfg.contenders.push_back(contenders.substr(pos, comma - pos));
    pos = comma + 1;
  }

  fprintf(stderr,
          "elmo_bench_matrix: tournament on %s, %s, budget %d/tuner\n",
          cfg.hw.Label().c_str(), cfg.workload.Describe().c_str(),
          cfg.budget);
  const elmo::tune::TournamentReport report =
      elmo::tune::RunTournament(cfg);
  fprintf(stderr, "%s", report.SummaryTable().c_str());
  if (!WriteFile(out_path, report.ToJson())) {
    fprintf(stderr, "elmo_bench_matrix: cannot write %s\n",
            out_path.c_str());
    return 2;
  }
  fprintf(stderr, "elmo_bench_matrix: wrote %s (winner: %s)\n",
          out_path.c_str(), report.winner.c_str());
  return 0;
}

int RunOnlineVsOfflineMode(uint64_t seed, bool use_llm, bool require_win,
                           const std::string& out_path,
                           const std::string& timeline_out) {
  elmo::tune::OnlineVsOfflineConfig cfg;
  cfg.hw = elmo::HardwareProfile::Make(4, 4, elmo::DeviceModel::NvmeSsd());
  cfg.seed = seed;
  cfg.use_llm = use_llm;

  fprintf(stderr,
          "elmo_bench_matrix: online-vs-offline on %s, %s (%s proposals)\n",
          cfg.hw.Label().c_str(), cfg.workload.Describe().c_str(),
          use_llm ? "llm" : "heuristic");
  const elmo::tune::OnlineVsOfflineReport report =
      elmo::tune::RunOnlineVsOffline(cfg);
  fprintf(stderr, "%s", report.SummaryTable().c_str());
  if (!WriteFile(out_path, report.ToJson())) {
    fprintf(stderr, "elmo_bench_matrix: cannot write %s\n", out_path.c_str());
    return 2;
  }
  if (!timeline_out.empty() &&
      !WriteFile(timeline_out, report.timeline_json)) {
    fprintf(stderr, "elmo_bench_matrix: cannot write %s\n",
            timeline_out.c_str());
    return 2;
  }
  fprintf(stderr,
          "elmo_bench_matrix: wrote %s (online %.2fx vs best static %s)\n",
          out_path.c_str(), report.online_gain_vs_best_static,
          report.best_static.c_str());
  if (require_win && report.online_gain_vs_best_static <= 1.0) {
    fprintf(stderr,
            "elmo_bench_matrix: FAIL — online tuning no longer beats the "
            "best static config\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = true;
  bool tournament = false;
  bool online_vs_offline = false;
  bool use_llm = true;
  bool require_online_win = false;
  uint64_t seed = 42;
  uint64_t budget = 8;
  std::string out_path = "BENCH_matrix.json";
  std::string tournament_out = "BENCH_tournament.json";
  std::string online_out = "BENCH_online_vs_offline.json";
  std::string timeline_out;
  std::string baseline_path;
  std::string current_path;
  std::string diff_out;
  std::string contenders;
  std::string span_dir;
  elmo::bench::RegressionThresholds thresholds;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    uint64_t u = 0;
    double d = 0;
    std::string s;
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--full") {
      quick = false;
    } else if (arg == "--tournament") {
      tournament = true;
    } else if (arg == "--online_vs_offline") {
      online_vs_offline = true;
    } else if (arg == "--no_llm") {
      use_llm = false;
    } else if (arg == "--require_online_win") {
      require_online_win = true;
    } else if (ParseStringFlag(arg, "online_out", &s)) {
      online_out = s;
    } else if (ParseStringFlag(arg, "timeline_out", &s)) {
      timeline_out = s;
    } else if (ParseUint64Flag(arg, "seed", &u)) {
      seed = u;
    } else if (ParseUint64Flag(arg, "budget", &u)) {
      budget = u;
    } else if (ParseStringFlag(arg, "out", &s)) {
      out_path = s;
    } else if (ParseStringFlag(arg, "tournament_out", &s)) {
      tournament_out = s;
    } else if (ParseStringFlag(arg, "baseline", &s)) {
      baseline_path = s;
    } else if (ParseStringFlag(arg, "current", &s)) {
      current_path = s;
    } else if (ParseStringFlag(arg, "diff_out", &s)) {
      diff_out = s;
    } else if (ParseStringFlag(arg, "contenders", &s)) {
      contenders = s;
    } else if (ParseStringFlag(arg, "span_dir", &s)) {
      span_dir = s;
    } else if (ParseDoubleFlag(arg, "max_tput_drop", &d)) {
      thresholds.max_throughput_drop_pct = d;
    } else if (ParseDoubleFlag(arg, "max_p99_rise", &d)) {
      thresholds.max_p99_rise_pct = d;
    } else if (ParseDoubleFlag(arg, "max_p999_rise", &d)) {
      thresholds.max_p999_rise_pct = d;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      fprintf(stderr, "elmo_bench_matrix: unknown flag %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  if (online_vs_offline) {
    return RunOnlineVsOfflineMode(seed, use_llm, require_online_win,
                                  online_out, timeline_out);
  }
  if (tournament) {
    return RunTournamentMode(seed, static_cast<int>(budget), contenders,
                             tournament_out);
  }

  const std::string mode = quick ? "quick" : "full";
  elmo::bench::MatrixReport current;
  if (!current_path.empty()) {
    if (baseline_path.empty()) {
      fprintf(stderr, "elmo_bench_matrix: --current requires --baseline\n");
      return 2;
    }
    std::string text;
    if (!ReadFile(current_path, &text)) {
      fprintf(stderr, "elmo_bench_matrix: cannot read %s\n",
              current_path.c_str());
      return 2;
    }
    elmo::Status s = elmo::bench::MatrixReport::FromJson(text, &current);
    if (!s.ok()) {
      fprintf(stderr, "elmo_bench_matrix: bad matrix file %s: %s\n",
              current_path.c_str(), s.ToString().c_str());
      return 2;
    }
  } else {
    const auto cells = elmo::bench::DefaultMatrix(quick);
    fprintf(stderr, "elmo_bench_matrix: running %zu-cell %s matrix, seed %llu\n",
            cells.size(), mode.c_str(),
            static_cast<unsigned long long>(seed));
    current = elmo::bench::RunMatrix(
        cells, seed, mode,
        [](const elmo::bench::MatrixCell& cell,
           const elmo::bench::MetricMap& m) {
          auto it = m.find("ops_per_sec");
          fprintf(stderr, "  %-32s %12.0f ops/sec\n", cell.name.c_str(),
                  it == m.end() ? 0.0 : it->second);
        },
        [&span_dir](const elmo::bench::MatrixCell& cell,
                    const elmo::bench::BenchResult& result) {
          if (span_dir.empty()) return;
          // Cell names contain '/' ("nvme_4c4g/fillrandom"); flatten so
          // each artifact is one file in span_dir.
          std::string stem = cell.name;
          for (char& c : stem) {
            if (c == '/') c = '_';
          }
          stem = span_dir + "/" + stem;
          if (!result.span_trace.empty()) {
            WriteFileBinary(stem + ".span.trace", result.span_trace);
          }
          if (!result.perfetto_json.empty()) {
            WriteFile(stem + ".perfetto.json", result.perfetto_json);
          }
          if (!result.span_attribution_json.empty()) {
            WriteFile(stem + ".attribution.json",
                      result.span_attribution_json);
          }
        });
    if (!WriteFile(out_path, current.ToJson())) {
      fprintf(stderr, "elmo_bench_matrix: cannot write %s\n",
              out_path.c_str());
      return 2;
    }
    fprintf(stderr, "elmo_bench_matrix: wrote %s\n", out_path.c_str());
  }

  if (baseline_path.empty()) return 0;

  std::string baseline_text;
  if (!ReadFile(baseline_path, &baseline_text)) {
    fprintf(stderr, "elmo_bench_matrix: cannot read baseline %s\n",
            baseline_path.c_str());
    return 2;
  }
  elmo::bench::MatrixReport baseline;
  elmo::Status s =
      elmo::bench::MatrixReport::FromJson(baseline_text, &baseline);
  if (!s.ok()) {
    fprintf(stderr, "elmo_bench_matrix: bad baseline %s: %s\n",
            baseline_path.c_str(), s.ToString().c_str());
    return 2;
  }

  const elmo::bench::CompareReport diff =
      elmo::bench::CompareMatrix(baseline, current, thresholds);
  printf("%s", diff.ToText().c_str());
  if (!diff_out.empty() && !WriteFile(diff_out, diff.ToJson())) {
    fprintf(stderr, "elmo_bench_matrix: cannot write %s\n", diff_out.c_str());
    return 2;
  }
  return diff.HasBreach() ? 1 : 0;
}
