// elmo_dump: offline inspection CLI for every artifact the engine
// writes. Thin argv wrapper over bench_kit/dump_tool.h and the offline
// analyzers (bench_kit/io_analyzer.h, bench_kit/cache_sim.h).
//
//   elmo_dump sst <file> [--blocks] [--no-scan]
//   elmo_dump manifest <file>
//   elmo_dump log <file> [--verbose]
//   elmo_dump iotrace <file> [--verbose]
//   elmo_dump cachetrace <file> [--verbose]
//   elmo_dump io-analyze <file> [--json]
//   elmo_dump cache-sim <file> --capacity=<bytes> [--json]
//   elmo_dump spantrace <file> [--verbose]
//   elmo_dump span-analyze <file> [--json]
//   elmo_dump span-export <file>
//   elmo_dump health <file> [--json]
//   elmo_dump db <dir>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_kit/cache_sim.h"
#include "bench_kit/dump_tool.h"
#include "bench_kit/io_analyzer.h"
#include "bench_kit/span_analyzer.h"
#include "env/env.h"
#include "monitor/offline.h"
#include "util/json.h"

namespace {

void Usage() {
  fprintf(stderr,
          "usage: elmo_dump <command> <path> [flags]\n"
          "commands:\n"
          "  sst <file> [--blocks] [--no-scan]   dissect one SST file\n"
          "  manifest <file>                     decode MANIFEST edits\n"
          "  log <file> [--verbose]              validate + summarize JSONL"
          " LOG\n"
          "  iotrace <file> [--verbose]          decode an IO trace\n"
          "  cachetrace <file> [--verbose]       decode a block-cache trace\n"
          "  io-analyze <file> [--json]          per-kind/context IO"
          " breakdown\n"
          "  cache-sim <file> --capacity=N [--json]\n"
          "                                      miss-ratio curve from a"
          " cache trace\n"
          "  spantrace <file> [--verbose]        decode a span trace\n"
          "  span-analyze <file> [--json]        p99 latency attribution"
          " from a span trace\n"
          "  span-export <file>                  span trace -> Chrome"
          " trace-event JSON (Perfetto)\n"
          "  health <file> [--json]              replay a JSONL LOG or"
          " timeseries JSON\n"
          "                                      through the health monitor:"
          " verdict timeline\n"
          "  db <dir>                            dump a whole DB directory\n");
}

bool HasFlag(const std::vector<std::string>& flags, const char* name) {
  for (const std::string& f : flags) {
    if (f == name) return true;
  }
  return false;
}

uint64_t FlagValue(const std::vector<std::string>& flags, const char* prefix,
                   uint64_t fallback) {
  const size_t n = strlen(prefix);
  for (const std::string& f : flags) {
    if (f.compare(0, n, prefix) == 0) {
      return strtoull(f.c_str() + n, nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  const std::string path = argv[2];
  std::vector<std::string> flags;
  for (int i = 3; i < argc; i++) flags.emplace_back(argv[i]);

  elmo::Env* env = elmo::Env::Posix();
  elmo::Status s;
  std::string text;

  if (command == "sst") {
    elmo::bench::SstSummary summary;
    s = elmo::bench::DumpSst(env, path, !HasFlag(flags, "--no-scan"),
                             HasFlag(flags, "--blocks"), &summary, &text);
  } else if (command == "manifest") {
    s = elmo::bench::DumpManifest(env, path, &text);
  } else if (command == "log") {
    s = elmo::bench::DumpInfoLog(env, path, HasFlag(flags, "--verbose"),
                                 &text);
  } else if (command == "iotrace") {
    s = elmo::bench::DumpIOTrace(env, path, HasFlag(flags, "--verbose"),
                                 &text);
  } else if (command == "cachetrace") {
    s = elmo::bench::DumpBlockCacheTrace(env, path,
                                         HasFlag(flags, "--verbose"), &text);
  } else if (command == "io-analyze") {
    elmo::bench::IOAnalysis analysis;
    s = elmo::bench::AnalyzeIOTrace(env, path, /*heatmap_buckets=*/20,
                                    &analysis);
    if (s.ok()) {
      text = HasFlag(flags, "--json")
                 ? elmo::json::Value(analysis.ToJson()).Dump(2) + "\n"
                 : analysis.ToText();
    }
  } else if (command == "cache-sim") {
    const uint64_t capacity =
        FlagValue(flags, "--capacity=", 8ull << 20);
    elmo::bench::CacheSimResult result;
    s = elmo::bench::SimulateCacheTrace(
        env, path, elmo::bench::DefaultCapacityLadder(capacity),
        /*num_shard_bits=*/4, &result);
    if (s.ok()) {
      text = HasFlag(flags, "--json")
                 ? elmo::json::Value(result.ToJson()).Dump(2) + "\n"
                 : result.ToText();
    }
  } else if (command == "spantrace") {
    s = elmo::bench::DumpSpanTrace(env, path, HasFlag(flags, "--verbose"),
                                   &text);
  } else if (command == "span-analyze") {
    elmo::bench::SpanAttribution attr;
    s = elmo::bench::AnalyzeSpanTrace(env, path, &attr);
    if (s.ok()) {
      text = HasFlag(flags, "--json")
                 ? elmo::json::Value(attr.ToJson()).Dump(2) + "\n"
                 : attr.ToText();
    }
  } else if (command == "health") {
    elmo::monitor::HealthTimeline timeline;
    s = elmo::monitor::RunHealthOffline(env, path,
                                        elmo::monitor::MonitorConfig{},
                                        &timeline);
    if (s.ok()) {
      text = HasFlag(flags, "--json") ? timeline.ToJson() + "\n"
                                      : timeline.ToText();
    }
  } else if (command == "span-export") {
    s = elmo::bench::ExportChromeTrace(env, path, &text);
    if (s.ok()) text += "\n";
  } else if (command == "db") {
    s = elmo::bench::DumpDbDir(env, path, &text);
  } else {
    Usage();
    return 2;
  }

  if (!s.ok()) {
    fprintf(stderr, "elmo_dump %s %s: %s\n", command.c_str(), path.c_str(),
            s.ToString().c_str());
    return 1;
  }
  fputs(text.c_str(), stdout);
  return 0;
}
