// elmo_stress: crash-recovery stress harness CLI (see
// src/stress_kit/stress_driver.h). Runs randomized DB traffic under
// FaultInjectionEnv with repeated crash → drop-unsynced → reopen
// cycles and an expected-state oracle; exits non-zero on the first
// oracle violation with a precise divergence report.
//
//   elmo_stress --ops=20000 --crash_cycles=10 --seed=ci
//   elmo_stress --options_file=proposal.ini --seed=7   # certify a config
//   elmo_stress --plant_violation --seed=1             # must FAIL
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "env/env.h"
#include "lsm/options_file.h"
#include "stress_kit/stress_driver.h"

namespace {

void Usage() {
  fprintf(stderr,
          "usage: elmo_stress [flags]\n"
          "  --seed=<n|string>     rng seed (strings are hashed; default 42)\n"
          "  --ops=<n>             total operations (default 20000)\n"
          "  --crash_cycles=<n>    crash/reopen cycles (default 10)\n"
          "  --threads=<n>         worker threads (default 1; >1 relaxes\n"
          "                        the oracle to per-key checks)\n"
          "  --keys=<n>            key-space size (default 512)\n"
          "  --value_len=<n>       value size in bytes (default 64)\n"
          "  --env=sim|mem|posix   environment (default sim, deterministic)\n"
          "  --db=<path>           db path (default /stress_db)\n"
          "  --options_file=<ini>  load engine options (e.g. an LLM tuning\n"
          "                        proposal) before stressing\n"
          "  --drop_mode=<-1..2>   -1 random, 0 drop-all, 1 torn-tail,\n"
          "                        2 partial-page (default -1)\n"
          "  --no_kill_points      never arm engine kill points\n"
          "  --no_read_faults      disable read-error/corruption segments\n"
          "  --no_write_faults     disable write-error segments\n"
          "  --plant_violation     lie about WAL syncs (run must fail)\n"
          "  --transient_faults    no crash/reopen: retryable error bursts\n"
          "                        mid-run; the DB must self-heal via\n"
          "                        auto-resume with zero acked-write loss\n"
          "  --burst_ops=<n>       fault-hook budget per transient burst\n"
          "                        (default 40)\n"
          "  --span_trace=<path>   capture a span trace (lsm/span.h) on\n"
          "                        each DB open; holds the last cycle\n"
          "  --report=<path>       write the JSON report here too\n");
}

bool ParseUint64Flag(const std::string& arg, const char* name,
                     uint64_t* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = strtoull(arg.c_str() + prefix.size(), nullptr, 10);
  return true;
}

bool ParseStringFlag(const std::string& arg, const char* name,
                     std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  elmo::stress::StressConfig cfg;
  std::string options_file;
  std::string report_path;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    uint64_t u = 0;
    std::string s;
    if (ParseStringFlag(arg, "seed", &s)) {
      cfg.seed = elmo::stress::StressSeedFromString(s);
    } else if (ParseUint64Flag(arg, "ops", &u)) {
      cfg.ops = u;
    } else if (ParseUint64Flag(arg, "crash_cycles", &u)) {
      cfg.crash_cycles = static_cast<int>(u);
    } else if (ParseUint64Flag(arg, "threads", &u)) {
      cfg.threads = static_cast<int>(u);
    } else if (ParseUint64Flag(arg, "keys", &u)) {
      cfg.num_keys = static_cast<uint32_t>(u);
    } else if (ParseUint64Flag(arg, "value_len", &u)) {
      cfg.value_len = static_cast<size_t>(u);
    } else if (ParseStringFlag(arg, "env", &s)) {
      cfg.env_kind = s;
    } else if (ParseStringFlag(arg, "db", &s)) {
      cfg.db_path = s;
    } else if (ParseStringFlag(arg, "options_file", &s)) {
      options_file = s;
    } else if (ParseStringFlag(arg, "drop_mode", &s)) {
      cfg.drop_mode = atoi(s.c_str());
    } else if (arg == "--no_kill_points") {
      cfg.use_kill_points = false;
    } else if (arg == "--no_read_faults") {
      cfg.read_faults = false;
    } else if (arg == "--no_write_faults") {
      cfg.write_faults = false;
    } else if (arg == "--plant_violation") {
      cfg.plant_wal_sync_violation = true;
      // Make detection deterministic: never flush (the WAL must be the
      // only durability path) and always drop the full unsynced tail.
      cfg.flush_every = 0;
      cfg.drop_mode = 0;
      cfg.write_faults = false;
      cfg.read_faults = false;
    } else if (arg == "--transient_faults") {
      cfg.transient_faults = true;
    } else if (ParseUint64Flag(arg, "burst_ops", &u)) {
      cfg.transient_burst_ops = u;
    } else if (ParseStringFlag(arg, "span_trace", &s)) {
      cfg.span_trace_path = s;
    } else if (ParseStringFlag(arg, "report", &s)) {
      report_path = s;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      fprintf(stderr, "elmo_stress: unknown flag %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  if (!options_file.empty()) {
    // The proposal file lives on the host filesystem regardless of
    // which env the stress run uses.
    std::vector<std::string> unknown, invalid;
    elmo::Status s = elmo::lsm::LoadOptionsFile(
        elmo::Env::Posix(), options_file, &cfg.base_options, &unknown,
        &invalid);
    if (!s.ok()) {
      fprintf(stderr, "elmo_stress: cannot load %s: %s\n",
              options_file.c_str(), s.ToString().c_str());
      return 2;
    }
    for (const auto& k : unknown) {
      fprintf(stderr, "elmo_stress: ignoring unknown option %s\n", k.c_str());
    }
    for (const auto& k : invalid) {
      fprintf(stderr, "elmo_stress: ignoring invalid option %s\n", k.c_str());
    }
  }

  const elmo::stress::StressReport report = elmo::stress::RunStress(cfg);
  const std::string json = report.ToJson();
  printf("%s\n", json.c_str());
  if (!report_path.empty()) {
    FILE* f = fopen(report_path.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "elmo_stress: cannot write %s\n", report_path.c_str());
      return 2;
    }
    fwrite(json.data(), 1, json.size(), f);
    fputc('\n', f);
    fclose(f);
  }
  if (!report.ok) {
    fprintf(stderr, "elmo_stress: ORACLE VIOLATION: %s\n",
            report.first_divergence.c_str());
    return 1;
  }
  if (cfg.transient_faults) {
    fprintf(stderr,
            "elmo_stress: ok (%llu ops, %d transient bursts, %llu "
            "auto-resumes, %llu manual resumes, %llu live keys)\n",
            static_cast<unsigned long long>(report.ops_executed),
            report.transient_bursts_done,
            static_cast<unsigned long long>(report.auto_resumes),
            static_cast<unsigned long long>(report.manual_resumes),
            static_cast<unsigned long long>(report.final_live_keys));
  } else {
    fprintf(stderr,
            "elmo_stress: ok (%llu ops, %d crash cycles, %llu kill-point "
            "fires, %llu live keys)\n",
            static_cast<unsigned long long>(report.ops_executed),
            report.crash_cycles_done,
            static_cast<unsigned long long>(report.kill_point_fires),
            static_cast<unsigned long long>(report.final_live_keys));
  }
  return 0;
}
