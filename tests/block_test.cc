// Block builder/iterator: roundtrips across restart intervals, seek
// semantics, prefix compression, corruption.
#include <gtest/gtest.h>

#include <map>

#include "table/block.h"
#include "table/block_builder.h"
#include "table/comparator.h"
#include "util/random.h"

namespace elmo {
namespace {

class BlockRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(BlockRoundTripTest, OrderedRoundTrip) {
  const int restart_interval = GetParam();
  BlockBuilder builder(restart_interval);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i * 3);
    std::string value = "value" + std::to_string(i);
    builder.Add(key, value);
    model[key] = value;
  }
  Block block(builder.Finish().ToString());

  auto iter = block.NewIterator(BytewiseComparator());
  auto mit = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(mit->first, iter->key().ToString());
    EXPECT_EQ(mit->second, iter->value().ToString());
  }
  EXPECT_EQ(mit, model.end());
  EXPECT_TRUE(iter->status().ok());
}

TEST_P(BlockRoundTripTest, SeekFindsLowerBound) {
  const int restart_interval = GetParam();
  BlockBuilder builder(restart_interval);
  for (int i = 0; i < 100; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i * 10);  // 0, 10, 20...
    builder.Add(key, "v");
  }
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());

  // Exact hit.
  iter->Seek("key000500");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key000500", iter->key().ToString());
  // Between keys: next larger.
  iter->Seek("key000505");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key000510", iter->key().ToString());
  // Before all.
  iter->Seek("a");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key000000", iter->key().ToString());
  // Past all.
  iter->Seek("z");
  EXPECT_FALSE(iter->Valid());
}

TEST_P(BlockRoundTripTest, BackwardIteration) {
  BlockBuilder builder(GetParam());
  std::vector<std::string> keys;
  for (int i = 0; i < 50; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    keys.push_back(key);
    builder.Add(key, "v");
  }
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());
  iter->SeekToLast();
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(*it, iter->key().ToString());
    iter->Prev();
  }
  EXPECT_FALSE(iter->Valid());
}

INSTANTIATE_TEST_SUITE_P(RestartIntervals, BlockRoundTripTest,
                         ::testing::Values(1, 2, 16, 128));

TEST(Block, EmptyBlock) {
  BlockBuilder builder(16);
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  iter->Seek("anything");
  EXPECT_FALSE(iter->Valid());
}

TEST(Block, SharedPrefixCompression) {
  // Long common prefixes should compress well at interval 16.
  BlockBuilder compressed(16);
  BlockBuilder uncompressed(1);
  std::string prefix(64, 'p');
  for (int i = 0; i < 100; i++) {
    char suffix[16];
    snprintf(suffix, sizeof(suffix), "%06d", i);
    compressed.Add(prefix + suffix, "v");
    uncompressed.Add(prefix + suffix, "v");
  }
  EXPECT_LT(compressed.CurrentSizeEstimate(),
            uncompressed.CurrentSizeEstimate() / 2);
}

TEST(Block, MalformedContentsYieldErrorIterator) {
  Block junk("ab");  // shorter than a restart count
  auto iter = junk.NewIterator(BytewiseComparator());
  EXPECT_FALSE(iter->Valid());
  EXPECT_FALSE(iter->status().ok());
}

TEST(Block, CorruptRestartCountDetected) {
  std::string data(8, '\xff');  // restart count astronomically large
  Block junk(std::move(data));
  auto iter = junk.NewIterator(BytewiseComparator());
  EXPECT_FALSE(iter->status().ok());
}

TEST(Block, BinaryKeysAndValues) {
  BlockBuilder builder(4);
  std::string k1("\x00\x01\x02", 3), k2("\x00\x01\x03\xff", 4);
  std::string v1("\xde\xad\x00\xbe\xef", 5);
  builder.Add(k1, v1);
  builder.Add(k2, "");
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator(BytewiseComparator());
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(k1, iter->key().ToString());
  EXPECT_EQ(v1, iter->value().ToString());
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(k2, iter->key().ToString());
  EXPECT_EQ("", iter->value().ToString());
}

}  // namespace
}  // namespace elmo
