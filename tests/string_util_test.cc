#include "util/string_util.h"

#include <gtest/gtest.h>

namespace elmo {
namespace {

TEST(StringUtil, Trim) {
  EXPECT_EQ("abc", TrimWhitespace("  abc  "));
  EXPECT_EQ("abc", TrimWhitespace("\tabc\r\n"));
  EXPECT_EQ("", TrimWhitespace("   "));
  EXPECT_EQ("a b", TrimWhitespace(" a b "));
  EXPECT_EQ("", TrimWhitespace(""));
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ("hello world", ToLower("HeLLo WoRLD"));
  EXPECT_EQ("123_abc", ToLower("123_ABC"));
}

TEST(StringUtil, Split) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(4u, parts.size());
  EXPECT_EQ("a", parts[0]);
  EXPECT_EQ("b", parts[1]);
  EXPECT_EQ("", parts[2]);
  EXPECT_EQ("c", parts[3]);
  EXPECT_EQ(1u, SplitString("", ',').size());
}

TEST(StringUtil, SplitLinesHandlesCrLf) {
  auto lines = SplitLines("one\r\ntwo\nthree\r\n");
  ASSERT_EQ(4u, lines.size());
  EXPECT_EQ("one", lines[0]);
  EXPECT_EQ("two", lines[1]);
  EXPECT_EQ("three", lines[2]);
  EXPECT_EQ("", lines[3]);
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_FALSE(EndsWith("ab", "aab"));
}

TEST(StringUtil, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("SATA HDD device", "hdd"));
  EXPECT_FALSE(ContainsIgnoreCase("NVMe SSD", "hdd"));
}

TEST(StringUtil, ParseBool) {
  EXPECT_EQ(true, ParseBool("true").value());
  EXPECT_EQ(true, ParseBool(" TRUE ").value());
  EXPECT_EQ(true, ParseBool("1").value());
  EXPECT_EQ(false, ParseBool("false").value());
  EXPECT_EQ(false, ParseBool("0").value());
  EXPECT_EQ(false, ParseBool("off").value());
  EXPECT_FALSE(ParseBool("maybe").has_value());
  EXPECT_FALSE(ParseBool("").has_value());
}

TEST(StringUtil, ParseInt64Plain) {
  EXPECT_EQ(0, ParseInt64("0").value());
  EXPECT_EQ(-42, ParseInt64("-42").value());
  EXPECT_EQ(67108864, ParseInt64("67108864").value());
  EXPECT_EQ(123, ParseInt64("  123  ").value());
  EXPECT_FALSE(ParseInt64("abc").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("12abc").has_value());
}

TEST(StringUtil, ParseInt64Suffixes) {
  EXPECT_EQ(64ll << 20, ParseInt64("64MB").value());
  EXPECT_EQ(64ll << 20, ParseInt64("64m").value());
  EXPECT_EQ(64ll << 20, ParseInt64("64 MiB").value());
  EXPECT_EQ(1ll << 30, ParseInt64("1G").value());
  EXPECT_EQ(4ll << 10, ParseInt64("4K").value());
  EXPECT_EQ(2ll << 40, ParseInt64("2TB").value());
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(3.5, ParseDouble("3.5").value());
  EXPECT_DOUBLE_EQ(-0.25, ParseDouble("-0.25").value());
  EXPECT_FALSE(ParseDouble("3.5x").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
}

TEST(StringUtil, FormatBytesHuman) {
  EXPECT_EQ("512 B", FormatBytesHuman(512));
  EXPECT_EQ("4 KiB", FormatBytesHuman(4096));
  EXPECT_EQ("64 MiB", FormatBytesHuman(64ull << 20));
  EXPECT_EQ("4 GiB", FormatBytesHuman(4ull << 30));
  EXPECT_EQ("1.5 KiB", FormatBytesHuman(1536));
}

TEST(StringUtil, FormatCountHuman) {
  EXPECT_EQ("999", FormatCountHuman(999));
  EXPECT_EQ("1.5K", FormatCountHuman(1500));
  EXPECT_EQ("25.0M", FormatCountHuman(25000000));
}

TEST(StringUtil, ReplaceAll) {
  EXPECT_EQ("b.b.b", ReplaceAll("a.a.a", "a", "b"));
  EXPECT_EQ("xya", ReplaceAll("aba", "ab", "xy"));
  EXPECT_EQ("unchanged", ReplaceAll("unchanged", "zz", "y"));
}

}  // namespace
}  // namespace elmo
