#include "lsm/dbformat.h"

#include <gtest/gtest.h>

namespace elmo {
namespace {

std::string IKey(const std::string& user_key, uint64_t seq, ValueType vt) {
  std::string encoded;
  AppendInternalKey(&encoded, ParsedInternalKey(user_key, seq, vt));
  return encoded;
}

TEST(InternalKey, EncodeDecodeRoundTrip) {
  const char* keys[] = {"", "k", "hello", "longggggggggggggggggggggg"};
  const uint64_t seqs[] = {1, 2, 3, (1ull << 8) - 1, 1ull << 8,
                           (1ull << 56) - 1};
  for (const char* key : keys) {
    for (uint64_t seq : seqs) {
      for (ValueType vt : {kTypeValue, kTypeDeletion}) {
        std::string encoded = IKey(key, seq, vt);
        ParsedInternalKey decoded;
        ASSERT_TRUE(ParseInternalKey(encoded, &decoded));
        EXPECT_EQ(key, decoded.user_key.ToString());
        EXPECT_EQ(seq, decoded.sequence);
        EXPECT_EQ(vt, decoded.type);
      }
    }
  }
}

TEST(InternalKey, ParseRejectsGarbage) {
  ParsedInternalKey decoded;
  EXPECT_FALSE(ParseInternalKey(Slice("short"), &decoded));
  EXPECT_FALSE(ParseInternalKey(Slice(""), &decoded));
  // Bad type byte.
  std::string bad = IKey("k", 5, kTypeValue);
  bad[bad.size() - 8] = 0x7f;
  EXPECT_FALSE(ParseInternalKey(bad, &decoded));
}

TEST(InternalKeyComparator, Ordering) {
  InternalKeyComparator icmp(BytewiseComparator());
  // User key ascending dominates.
  EXPECT_LT(icmp.Compare(IKey("a", 100, kTypeValue),
                         IKey("b", 1, kTypeValue)),
            0);
  // Same user key: higher sequence sorts FIRST.
  EXPECT_LT(icmp.Compare(IKey("a", 100, kTypeValue),
                         IKey("a", 99, kTypeValue)),
            0);
  // Same user key + seq: deletion (0) sorts after value (1).
  EXPECT_LT(icmp.Compare(IKey("a", 100, kTypeValue),
                         IKey("a", 100, kTypeDeletion)),
            0);
  EXPECT_EQ(0, icmp.Compare(IKey("a", 5, kTypeValue),
                            IKey("a", 5, kTypeValue)));
}

TEST(InternalKeyComparator, ShortestSeparator) {
  InternalKeyComparator icmp(BytewiseComparator());
  std::string start = IKey("foo", 100, kTypeValue);
  icmp.FindShortestSeparator(&start, IKey("hello", 200, kTypeValue));
  // Shortened key must stay in range.
  EXPECT_LT(icmp.Compare(IKey("foo", 100, kTypeValue), start), 0);
  EXPECT_LT(icmp.Compare(start, IKey("hello", 200, kTypeValue)), 0);

  // Prefix case: unchanged.
  std::string p = IKey("foo", 100, kTypeValue);
  std::string before = p;
  icmp.FindShortestSeparator(&p, IKey("foobar", 200, kTypeValue));
  EXPECT_EQ(before, p);
}

TEST(InternalKeyComparator, ShortSuccessor) {
  InternalKeyComparator icmp(BytewiseComparator());
  std::string key = IKey("foo", 100, kTypeValue);
  std::string orig = key;
  icmp.FindShortSuccessor(&key);
  EXPECT_LE(icmp.Compare(orig, key), 0);

  // All 0xff user key: unchanged.
  std::string maxed = IKey("\xff\xff", 100, kTypeValue);
  std::string before = maxed;
  icmp.FindShortSuccessor(&maxed);
  EXPECT_EQ(before, maxed);
}

TEST(LookupKey, Layout) {
  LookupKey lk("user_key", 42);
  EXPECT_EQ("user_key", lk.user_key().ToString());
  Slice ik = lk.internal_key();
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(ik, &parsed));
  EXPECT_EQ("user_key", parsed.user_key.ToString());
  EXPECT_EQ(42u, parsed.sequence);
  // memtable_key = varint32 length + internal key.
  Slice mk = lk.memtable_key();
  uint32_t len;
  ASSERT_TRUE(GetVarint32(&mk, &len));
  EXPECT_EQ(ik.size(), len);
}

TEST(LookupKey, LongKeysHeapAllocated) {
  std::string long_key(5000, 'k');
  LookupKey lk(long_key, 7);
  EXPECT_EQ(long_key, lk.user_key().ToString());
}

TEST(InternalKeyClass, ValidAndAccessors) {
  InternalKey ik("mykey", 12, kTypeValue);
  EXPECT_TRUE(ik.Valid());
  EXPECT_EQ("mykey", ik.user_key().ToString());
  InternalKey other;
  other.DecodeFrom(ik.Encode());
  EXPECT_EQ(ik.Encode().ToString(), other.Encode().ToString());
}

}  // namespace
}  // namespace elmo
