// Structural LSM invariants checked through the elmo.sstables
// introspection property after randomized load.
#include <gtest/gtest.h>

#include <map>

#include "env/mem_env.h"
#include "lsm/db.h"
#include "util/random.h"
#include "util/string_util.h"

namespace elmo::lsm {
namespace {

struct FileInfo {
  int level;
  std::string smallest, largest;
};

std::vector<FileInfo> ParseSstables(const std::string& text) {
  std::vector<FileInfo> files;
  for (const auto& line : SplitLines(text)) {
    if (line.empty() || line[0] != 'L') continue;
    FileInfo f;
    f.level = line[1] - '0';
    size_t open = line.find('[');
    size_t dots = line.find("..", open);
    size_t close = line.rfind(']');
    if (open == std::string::npos || dots == std::string::npos) continue;
    f.smallest = line.substr(open + 1, dots - open - 1);
    f.largest = line.substr(dots + 2, close - dots - 2);
    files.push_back(f);
  }
  return files;
}

class DbInvariantsTest : public ::testing::TestWithParam<int> {};

TEST_P(DbInvariantsTest, LevelsAboveZeroAreDisjointAndOrdered) {
  const int seed = GetParam();
  MemEnv env;
  Options options;
  options.env = &env;
  options.create_if_missing = true;
  options.write_buffer_size = 24 << 10;
  options.max_bytes_for_level_base = 96 << 10;
  options.target_file_size_base = 24 << 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  Random64 rng(seed);
  for (int i = 0; i < 12000; i++) {
    char key[24];
    snprintf(key, sizeof(key), "%016llu",
             (unsigned long long)rng.Uniform(4000));
    ASSERT_TRUE(db->Put({}, Slice(key, 16), std::string(96, 'v')).ok());
  }
  ASSERT_TRUE(db->WaitForBackgroundWork().ok());

  std::string text;
  ASSERT_TRUE(db->GetProperty("elmo.sstables", &text));
  auto files = ParseSstables(text);
  ASSERT_FALSE(files.empty());

  // Group by level; check per-file sanity and pairwise disjointness for
  // levels >= 1.
  std::map<int, std::vector<FileInfo>> by_level;
  for (const auto& f : files) {
    EXPECT_LE(f.smallest, f.largest) << "file range inverted";
    by_level[f.level].push_back(f);
  }
  EXPECT_GT(by_level.size(), 1u) << "expected a multi-level tree:\n"
                                 << text;
  for (const auto& [level, lf] : by_level) {
    if (level == 0) continue;
    for (size_t i = 1; i < lf.size(); i++) {
      // Files are emitted sorted by smallest key; each must begin
      // strictly after the previous ends.
      EXPECT_GT(lf[i].smallest, lf[i - 1].largest)
          << "overlap at L" << level << ":\n"
          << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbInvariantsTest,
                         ::testing::Values(1, 17, 301, 9999));

TEST(DbInvariants, SstablesPropertyEmptyOnFreshDb) {
  MemEnv env;
  Options options;
  options.env = &env;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  std::string text;
  ASSERT_TRUE(db->GetProperty("elmo.sstables", &text));
  EXPECT_TRUE(text.empty());
}

TEST(DbInvariants, EveryStoredKeyRemainsReachable) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.write_buffer_size = 16 << 10;
  options.max_bytes_for_level_base = 64 << 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  std::map<std::string, std::string> model;
  Random64 rng(5);
  for (int i = 0; i < 8000; i++) {
    std::string key = "k" + std::to_string(rng.Uniform(1500));
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(db->Put({}, key, value).ok());
    model[key] = value;
  }
  ASSERT_TRUE(db->WaitForBackgroundWork().ok());

  // Iterator view == model, exactly.
  auto it = db->NewIterator({});
  auto mit = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(mit->first, it->key().ToString());
    EXPECT_EQ(mit->second, it->value().ToString());
  }
  EXPECT_EQ(mit, model.end());
}

}  // namespace
}  // namespace elmo::lsm
