// The monitor subsystem end to end: changepoint detector semantics,
// diagnosis rule ranking, Prometheus exposition format, and the SimEnv
// golden workloads the issue pins down — a load->read->scan run flags
// exactly two phase shifts, a stable run flags none, a planted L0
// backlog diagnoses as such, and same-seed runs are byte-identical.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_kit/bench_runner.h"
#include "bench_kit/report.h"
#include "elmo/prompt_generator.h"
#include "env/sim_env.h"
#include "lsm/db.h"
#include "monitor/detector.h"
#include "monitor/diagnosis.h"
#include "monitor/health_monitor.h"
#include "monitor/offline.h"
#include "monitor/prometheus.h"
#include "util/json.h"

namespace elmo::monitor {
namespace {

using bench::BenchRunner;
using bench::WorkloadSpec;
using elmo::DeviceModel;
using elmo::HardwareProfile;
using elmo::SimEnv;
using lsm::DB;
using lsm::IntervalSample;
using lsm::Options;
using lsm::ReadOptions;

// ---- detector unit tests (hand-built sample streams) ----

IntervalSample MakeSample(uint64_t ts_us, uint64_t writes, uint64_t gets,
                          uint64_t seeks = 0) {
  IntervalSample s;
  s.ts_us = ts_us;
  s.interval_us = 1'000'000;
  s.writes = writes;
  s.gets = gets;
  s.ops = writes + gets;
  s.seeks = seeks;
  s.ops_per_sec = static_cast<double>(s.ops + seeks);
  return s;
}

TEST(Detector, StableSeriesProducesNoEvents) {
  std::vector<IntervalSample> samples;
  for (int i = 0; i < 30; i++) {
    samples.push_back(MakeSample((i + 1) * 1'000'000ull, 50000, 0));
  }
  EXPECT_TRUE(DetectSeries(samples).empty());
}

TEST(Detector, ConfirmedStepFiresOnceWithCooldown) {
  std::vector<IntervalSample> samples;
  uint64_t ts = 0;
  for (int i = 0; i < 8; i++) {
    samples.push_back(MakeSample(ts += 1'000'000, 100000, 0));
  }
  for (int i = 0; i < 8; i++) {
    samples.push_back(MakeSample(ts += 1'000'000, 20000, 0));
  }
  const auto events = DetectSeries(samples);
  int ops_events = 0;
  for (const auto& e : events) {
    if (e.metric == Metric::kOpsPerSec) {
      ops_events++;
      EXPECT_EQ(e.kind, AnomalyKind::kLevelShift);
      EXPECT_EQ(e.direction, -1);
      EXPECT_FALSE(e.phase_shift);
      EXPECT_GT(e.before, e.after);
    }
  }
  // One confirmed collapse; the cooldown + reseeded window keep the new
  // regime from re-firing every tick.
  EXPECT_EQ(ops_events, 1);
}

TEST(Detector, SingleTickSpikeIsNotConfirmed) {
  std::vector<IntervalSample> samples;
  uint64_t ts = 0;
  for (int i = 0; i < 6; i++) {
    samples.push_back(MakeSample(ts += 1'000'000, 100000, 0));
  }
  samples.push_back(MakeSample(ts += 1'000'000, 10000, 0));  // one blip
  for (int i = 0; i < 6; i++) {
    samples.push_back(MakeSample(ts += 1'000'000, 100000, 0));
  }
  for (const auto& e : DetectSeries(samples)) {
    EXPECT_NE(e.metric, Metric::kOpsPerSec) << e.ToString();
  }
}

TEST(Detector, MonotoneDebtGrowthFiresTrend) {
  std::vector<IntervalSample> samples;
  uint64_t ts = 0;
  for (int i = 0; i < 12; i++) {
    IntervalSample s = MakeSample(ts += 1'000'000, 50000, 0);
    s.pending_compaction_bytes = (4ull << 20) + i * (4ull << 20);
    samples.push_back(s);
  }
  bool trend = false;
  for (const auto& e : DetectSeries(samples)) {
    if (e.metric == Metric::kCompactionDebt &&
        e.kind == AnomalyKind::kTrend) {
      trend = true;
      EXPECT_EQ(e.direction, 1);
    }
  }
  EXPECT_TRUE(trend);
}

TEST(Detector, EventJsonRoundTrip) {
  AnomalyEvent e;
  e.ts_us = 123456;
  e.metric = Metric::kScanShare;
  e.kind = AnomalyKind::kLevelShift;
  e.direction = 1;
  e.phase_shift = true;
  e.before = 0.1;
  e.after = 0.9;
  e.zscore = 5.5;
  const AnomalyEvent back = AnomalyEventFromJson(json::Value(e.ToJson()));
  EXPECT_EQ(back.ts_us, e.ts_us);
  EXPECT_EQ(back.metric, e.metric);
  EXPECT_EQ(back.kind, e.kind);
  EXPECT_EQ(back.direction, e.direction);
  EXPECT_EQ(back.phase_shift, e.phase_shift);
  EXPECT_DOUBLE_EQ(back.before, e.before);
  EXPECT_DOUBLE_EQ(back.after, e.after);
}

// ---- diagnosis rules ----

TEST(Diagnosis, L0BacklogOutranksEverythingAtStopTrigger) {
  EngineInfo info;  // defaults: slowdown 20, stop 36
  IntervalSample s = MakeSample(1'000'000, 1000, 0);
  s.stall_micros = 400'000;
  s.stall_fraction = 0.4;
  s.l0_files = 36;
  s.num_levels = 2;
  s.level_files[0] = 36;
  const auto diagnoses = Diagnose({s}, {}, info);
  ASSERT_FALSE(diagnoses.empty());
  EXPECT_EQ(diagnoses.front().rule, "l0_compaction_backlog");
  EXPECT_GE(diagnoses.front().severity, 0.99);
  bool suggests_jobs = false;
  for (const auto& opt : diagnoses.front().suggested_options) {
    if (opt == "max_background_jobs") suggests_jobs = true;
  }
  EXPECT_TRUE(suggests_jobs);
}

TEST(Diagnosis, PhaseShiftAnomalyYieldsWorkloadRule) {
  EngineInfo info;
  IntervalSample s = MakeSample(1'000'000, 0, 50000);
  AnomalyEvent e;
  e.ts_us = 1'000'000;
  e.metric = Metric::kWriteShare;
  e.phase_shift = true;
  e.direction = -1;
  const auto diagnoses = Diagnose({s}, {e}, info);
  bool found = false;
  for (const auto& d : diagnoses) {
    if (d.rule == "workload_phase_shift") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Diagnosis, JsonRoundTrip) {
  Diagnosis d;
  d.rule = "cache_thrash";
  d.severity = 0.66;
  d.symptom = "cache hit ratio collapsed";
  d.cause = "working set larger than block cache";
  d.evidence = {"hit ratio 0.31", "usage 100% of capacity"};
  d.suggested_options = {"block_cache_size"};
  const Diagnosis back = DiagnosisFromJson(json::Value(d.ToJson()));
  EXPECT_EQ(back.rule, d.rule);
  EXPECT_DOUBLE_EQ(back.severity, d.severity);
  EXPECT_EQ(back.evidence, d.evidence);
  EXPECT_EQ(back.suggested_options, d.suggested_options);
}

// ---- prometheus exposition ----

TEST(Prometheus, ExpositionFormatAndDeterminism) {
  PrometheusInputs in;
  in.stats.tickers[static_cast<int>(lsm::Ticker::kWriteCount)] = 42;
  in.num_levels = 2;
  in.level_files[0] = 3;
  in.level_files[1] = 1;
  in.memtable_bytes = 4096;
  in.block_cache_capacity = 1 << 20;
  in.health_status = 1;
  in.health_top_rule = "l0_compaction_backlog";
  in.health_top_severity = 0.8;
  in.ts_us = 5'000'000;
  const std::string text = RenderPrometheus(in);
  EXPECT_NE(text.find("# TYPE elmo_writes_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("elmo_writes_total 42"), std::string::npos);
  EXPECT_NE(text.find("elmo_level_files{level=\"0\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE elmo_health_status gauge"),
            std::string::npos);
  EXPECT_NE(text.find("elmo_health_status 1"), std::string::npos);
  EXPECT_NE(text.find(
                "elmo_health_top_severity{rule=\"l0_compaction_backlog\"}"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(text, RenderPrometheus(in));  // deterministic
}

// ---- SimEnv golden workloads ----

std::unique_ptr<SimEnv> MakeEnv(uint64_t seed) {
  auto hw = HardwareProfile::Make(2, 4, DeviceModel::NvmeSsd());
  return std::make_unique<SimEnv>(hw, seed);
}

Options BaseOptions(Env* env) {
  Options o;
  o.env = env;
  o.create_if_missing = true;
  o.write_buffer_size = 1 << 20;
  // Smaller than the working set: reads and scans keep paying simulated
  // device IO, so the virtual clock advances through every phase.
  o.block_cache_size = 64 << 10;
  o.stats_sample_interval_ms = 10;
  return o;
}

struct ThreePhaseRun {
  std::string health_json;
  std::string prometheus;
  std::string timeseries_json;
  uint64_t fill_end_us = 0;  // engine clock at each phase boundary
  uint64_t read_end_us = 0;
  uint64_t interval_us = 10'000;
};

// Load -> read-heavy -> scan against a SimEnv DB; the sampler ticks on
// the virtual clock, so the phase boundaries land on exact sample
// timestamps run after run.
ThreePhaseRun RunThreePhase(SimEnv* env) {
  ThreePhaseRun out;
  Options o = BaseOptions(env);
  std::unique_ptr<DB> db;
  EXPECT_TRUE(DB::Open(o, "/db", &db).ok());
  const std::string value(512, 'v');
  char key[32];
  for (int i = 0; i < 40000; i++) {
    snprintf(key, sizeof(key), "%012d", i % 5000);
    EXPECT_TRUE(db->Put({}, key, value).ok());
  }
  out.fill_end_us = env->NowMicros();
  std::string read_value;
  for (int i = 0; i < 30000; i++) {
    snprintf(key, sizeof(key), "%012d", i % 5000);
    db->Get(ReadOptions(), key, &read_value);
  }
  out.read_end_us = env->NowMicros();
  for (int i = 0; i < 10000; i++) {
    snprintf(key, sizeof(key), "%012d", i % 5000);
    auto iter = db->NewIterator(ReadOptions());
    iter->Seek(key);
    for (int n = 0; n < 10 && iter->Valid(); n++) iter->Next();
  }
  EXPECT_TRUE(db->GetProperty("elmo.health", &out.health_json));
  EXPECT_TRUE(db->GetProperty("elmo.prometheus", &out.prometheus));
  EXPECT_TRUE(db->GetProperty("elmo.timeseries", &out.timeseries_json));
  db.reset();
  return out;
}

TEST(MonitorGolden, ThreePhaseWorkloadFlagsExactlyTwoTransitions) {
  auto env = MakeEnv(/*seed=*/7);
  const ThreePhaseRun run = RunThreePhase(env.get());

  HealthReport report;
  ASSERT_TRUE(HealthReport::FromJson(run.health_json, &report).ok())
      << run.health_json;

  std::vector<AnomalyEvent> shifts;
  for (const auto& e : report.anomalies) {
    if (e.phase_shift) shifts.push_back(e);
  }
  ASSERT_EQ(shifts.size(), 2u)
      << "fill_end=" << run.fill_end_us << " read_end=" << run.read_end_us
      << "\n" << run.health_json;

  // Transition 1 (fill -> read): the write share falls off a cliff,
  // confirmed within 3 sampler intervals of the boundary.
  EXPECT_EQ(shifts[0].metric, Metric::kWriteShare);
  EXPECT_EQ(shifts[0].direction, -1);
  EXPECT_GE(shifts[0].ts_us, run.fill_end_us);
  EXPECT_LE(shifts[0].ts_us, run.fill_end_us + 3 * run.interval_us);

  // Transition 2 (read -> scan): the scan share takes over.
  EXPECT_EQ(shifts[1].metric, Metric::kScanShare);
  EXPECT_EQ(shifts[1].direction, 1);
  EXPECT_GE(shifts[1].ts_us, run.read_end_us);
  EXPECT_LE(shifts[1].ts_us, run.read_end_us + 3 * run.interval_us);
}

TEST(MonitorGolden, StableWorkloadFlagsNoPhaseShift) {
  auto env = MakeEnv(11);
  Options o = BaseOptions(env.get());
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());
  const std::string value(512, 'v');
  char key[32];
  for (int i = 0; i < 60000; i++) {
    snprintf(key, sizeof(key), "%012d", i % 5000);
    ASSERT_TRUE(db->Put({}, key, value).ok());
  }
  std::string health;
  ASSERT_TRUE(db->GetProperty("elmo.health", &health));
  HealthReport report;
  ASSERT_TRUE(HealthReport::FromJson(health, &report).ok()) << health;
  EXPECT_GE(report.intervals_observed, 6u);
  for (const auto& e : report.anomalies) {
    EXPECT_FALSE(e.phase_shift) << e.ToString();
  }
  db.reset();
}

TEST(MonitorGolden, SameSeedRunsAreByteIdentical) {
  auto env_a = MakeEnv(42);
  auto env_b = MakeEnv(42);
  const ThreePhaseRun a = RunThreePhase(env_a.get());
  const ThreePhaseRun b = RunThreePhase(env_b.get());
  EXPECT_EQ(a.health_json, b.health_json);
  EXPECT_EQ(a.prometheus, b.prometheus);
  EXPECT_EQ(a.timeseries_json, b.timeseries_json);
}

TEST(MonitorGolden, PlantedL0BacklogIsTopDiagnosis) {
  // An HDD pays milliseconds per compaction IO, so a single compaction
  // lane cannot keep up with memtable-rotation ingest: L0 piles past
  // its pulled-down slowdown trigger and writes stall behind it.
  // Plenty of cores + dedicated flush lanes keep flushes ahead of the
  // paced writer, so the backlog accumulates where compaction lags: L0.
  // The memtable_stall rule must NOT be the story here.
  auto hw = HardwareProfile::Make(8, 4, DeviceModel::SataHdd());
  auto env = std::make_unique<SimEnv>(hw, /*seed=*/13);
  Options o = BaseOptions(env.get());
  o.write_buffer_size = 64 << 10;
  o.level0_file_num_compaction_trigger = 2;
  o.level0_slowdown_writes_trigger = 4;
  o.max_write_buffer_number = 4;
  o.max_background_flushes = 2;
  o.max_background_compactions = 1;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());
  const std::string value(512, 'v');
  char key[32];
  for (int i = 0; i < 20000; i++) {
    // Wrapping keys make every memtable span the whole keyspace, so
    // each L0->L1 compaction rewrites essentially all of L1 — the
    // write amplification the single compaction lane drowns under.
    snprintf(key, sizeof(key), "%012d", i % 5000);
    ASSERT_TRUE(db->Put({}, key, value).ok());
    // Pace ingest just above flush capacity (virtual-clock sleep).
    if (i % 4 == 3) env->SleepForMicroseconds(200);
  }
  std::string health;
  ASSERT_TRUE(db->GetProperty("elmo.health", &health));
  HealthReport report;
  ASSERT_TRUE(HealthReport::FromJson(health, &report).ok()) << health;
  ASSERT_FALSE(report.diagnoses.empty()) << health;
  EXPECT_EQ(report.diagnoses.front().rule, "l0_compaction_backlog")
      << health;
  EXPECT_NE(report.status, HealthStatus::kOk);
  db.reset();
}

TEST(MonitorGolden, HealthPropertyDisabledWithoutMonitor) {
  auto env = MakeEnv(5);
  Options o = BaseOptions(env.get());
  o.enable_health_monitor = false;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());
  std::string health;
  ASSERT_TRUE(db->GetProperty("elmo.health", &health));
  EXPECT_NE(health.find("disabled"), std::string::npos) << health;
  db.reset();
}

// ---- offline replay ----

TEST(MonitorOffline, LogReplayMatchesLiveVerdict) {
  auto env = MakeEnv(7);
  const ThreePhaseRun run = RunThreePhase(env.get());

  // The DB is gone; its JSONL LOG (full sampler_tick events) remains on
  // the SimEnv filesystem. Replaying it must reconstruct the same two
  // phase transitions the live monitor saw.
  HealthTimeline timeline;
  ASSERT_TRUE(
      RunHealthOffline(env.get(), "/db/LOG", MonitorConfig{}, &timeline)
          .ok());
  size_t shifts = 0;
  for (const auto& e : timeline.final_report.anomalies) {
    if (e.phase_shift) shifts++;
  }
  EXPECT_EQ(shifts, 2u);
  EXPECT_FALSE(timeline.entries.empty());
  EXPECT_FALSE(timeline.ToText().empty());
  json::Value doc;
  ASSERT_TRUE(json::Parse(timeline.ToJson(), &doc).ok());
  EXPECT_TRUE(doc.Find("ticks") != nullptr);
}

TEST(MonitorOffline, TimeseriesJsonReplayWorks) {
  auto env = MakeEnv(7);
  const ThreePhaseRun run = RunThreePhase(env.get());
  ASSERT_TRUE(env->WriteStringToFile(Slice(run.timeseries_json),
                                     "/ts.json", /*sync=*/false)
                  .ok());
  HealthTimeline timeline;
  ASSERT_TRUE(
      RunHealthOffline(env.get(), "/ts.json", MonitorConfig{}, &timeline)
          .ok());
  size_t shifts = 0;
  for (const auto& e : timeline.final_report.anomalies) {
    if (e.phase_shift) shifts++;
  }
  EXPECT_EQ(shifts, 2u);
}

TEST(MonitorOffline, PrometheusFileRejectedWithHint) {
  auto env = MakeEnv(7);
  const ThreePhaseRun run = RunThreePhase(env.get());
  ASSERT_TRUE(env->WriteStringToFile(Slice(run.prometheus),
                                     "/metrics.prom", /*sync=*/false)
                  .ok());
  HealthTimeline timeline;
  const Status s =
      RunHealthOffline(env.get(), "/metrics.prom", MonitorConfig{},
                       &timeline);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("prometheus"), std::string::npos);
}

// ---- bench + prompt integration ----

TEST(MonitorIntegration, BenchResultCarriesHealthEvidence) {
  BenchRunner runner(HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd()));
  const auto r = runner.Run(WorkloadSpec::FillRandom(20000), Options());
  ASSERT_FALSE(r.health_json.empty());
  ASSERT_FALSE(r.HealthEvidence().empty());
  EXPECT_NE(r.ToReport().find("Health & diagnosis:"), std::string::npos);
  json::Value doc;
  ASSERT_TRUE(json::Parse(r.ToJson(), &doc).ok());
  const json::Value* health = doc.Find("health");
  ASSERT_NE(health, nullptr);
  EXPECT_NE(health->Find("status"), nullptr);
}

TEST(MonitorIntegration, PromptIncludesHealthSection) {
  tune::PromptInputs inputs;
  inputs.workload_description = "fillrandom";
  inputs.current_options_ini = "write_buffer_size = 1048576\n";
  inputs.health_evidence = "health: warn (12 intervals)\n";
  const std::string prompt = tune::PromptGenerator::Generate(inputs);
  EXPECT_NE(prompt.find("## Health & Diagnosis Evidence"),
            std::string::npos);
  EXPECT_NE(prompt.find("health: warn"), std::string::npos);
  // And absent evidence, no empty section.
  inputs.health_evidence.clear();
  EXPECT_EQ(tune::PromptGenerator::Generate(inputs)
                .find("## Health & Diagnosis Evidence"),
            std::string::npos);
}

}  // namespace
}  // namespace elmo::monitor
