#include "sysinfo/system_probe.h"

#include <gtest/gtest.h>

#include "env/mem_env.h"
#include "env/sim_env.h"

namespace elmo::sysinfo {
namespace {

TEST(SystemProbe, SimEnvReportsConfiguredHardware) {
  SimEnv env(HardwareProfile::Make(2, 4, DeviceModel::SataHdd()));
  SystemProfile p = SystemProbe::Collect(&env, "/probe");
  EXPECT_EQ(2, p.cpu_cores);
  EXPECT_EQ(4ull << 30, p.memory_bytes);
  EXPECT_EQ("SATA HDD", p.device_name);
  EXPECT_GT(p.seq_write_mbps, 0.0);
  EXPECT_GT(p.sync_latency_us, 0.0);
}

TEST(SystemProbe, DeviceClassesDistinguishable) {
  SimEnv hdd(HardwareProfile::Make(4, 4, DeviceModel::SataHdd()));
  SimEnv nvme(HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd()));
  SystemProfile ph = SystemProbe::Collect(&hdd, "/probe");
  SystemProfile pn = SystemProbe::Collect(&nvme, "/probe");
  // The fio-style probe must see the device difference.
  EXPECT_GT(ph.sync_latency_us, pn.sync_latency_us * 5);
  EXPECT_LT(ph.seq_write_mbps, pn.seq_write_mbps);
}

TEST(SystemProbe, PromptTextMentionsEverything) {
  SimEnv env(HardwareProfile::Make(2, 8, DeviceModel::NvmeSsd()));
  SystemProfile p = SystemProbe::Collect(&env, "/probe");
  std::string text = p.ToPromptText();
  EXPECT_NE(text.find("CPU cores: 2"), std::string::npos);
  EXPECT_NE(text.find("8 GiB"), std::string::npos);
  EXPECT_NE(text.find("NVMe SSD"), std::string::npos);
  EXPECT_NE(text.find("fio-style"), std::string::npos);
}

TEST(SystemProbe, HostFallbackProducesSomething) {
  MemEnv env;  // not a SimEnv: falls back to host facts
  SystemProfile p = SystemProbe::Collect(&env, "/probe");
  EXPECT_GT(p.cpu_cores, 0);
  EXPECT_GT(p.memory_bytes, 0u);
}

TEST(SystemProbe, ProbeCleansUpScratchFile) {
  SimEnv env(HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd()));
  SystemProbe::Collect(&env, "/probe");
  EXPECT_FALSE(env.FileExists("/probe/ioprobe.tmp"));
}

}  // namespace
}  // namespace elmo::sysinfo
