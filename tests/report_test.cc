#include "bench_kit/report.h"

#include <gtest/gtest.h>

namespace elmo::bench {
namespace {

BenchResult MakeResult() {
  BenchResult r;
  r.workload = "fillrandom";
  r.ops = 400000;
  r.elapsed_seconds = 1.25;
  r.ops_per_sec = 320000;
  r.mb_per_sec = 35.4;
  for (int i = 0; i < 10000; i++) r.write_micros.Add(3.0 + (i % 5));
  r.write_stall_micros = 12345;
  r.flushes = 42;
  r.compactions = 17;
  r.level_summary = "files[ 2 3 0 0 0 0 0 ]";
  return r;
}

TEST(Report, ContainsDbBenchStyleFields) {
  std::string text = MakeResult().ToReport();
  EXPECT_NE(text.find("fillrandom"), std::string::npos);
  EXPECT_NE(text.find("micros/op"), std::string::npos);
  EXPECT_NE(text.find("320000 ops/sec"), std::string::npos);
  EXPECT_NE(text.find("Microseconds per write:"), std::string::npos);
  EXPECT_NE(text.find("P99:"), std::string::npos);
  EXPECT_NE(text.find("flushes 42"), std::string::npos);
  EXPECT_NE(text.find("LSM shape"), std::string::npos);
}

TEST(Report, ParseRoundTrip) {
  BenchResult r = MakeResult();
  for (int i = 0; i < 1000; i++) r.read_micros.Add(150.0);
  auto parsed = ParseReport(r.ToReport());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ("fillrandom", parsed->workload);
  EXPECT_NEAR(320000.0, parsed->ops_per_sec, 1.0);
  EXPECT_NEAR(r.write_micros.Percentile(99.0), parsed->p99_write_us, 0.01);
  EXPECT_NEAR(r.write_micros.Average(), parsed->avg_write_us, 0.01);
  EXPECT_NEAR(r.read_micros.Percentile(99.0), parsed->p99_read_us, 0.01);
}

TEST(Report, ParseRejectsNonReports) {
  EXPECT_FALSE(ParseReport("").has_value());
  EXPECT_FALSE(ParseReport("hello world").has_value());
  EXPECT_FALSE(
      ParseReport("something about ops/sec but not a report").has_value());
}

TEST(Report, P99AccessorsHandleEmptyHistograms) {
  BenchResult r;
  EXPECT_EQ(0.0, r.p99_write_us());
  EXPECT_EQ(0.0, r.p99_read_us());
  r.read_micros.Add(500);
  EXPECT_GT(r.p99_read_us(), 0.0);
  EXPECT_EQ(0.0, r.p99_write_us());
}

TEST(Report, WriteOnlyReportOmitsReadHistogram) {
  BenchResult r = MakeResult();
  std::string text = r.ToReport();
  EXPECT_EQ(text.find("Microseconds per read:"), std::string::npos);
}

}  // namespace
}  // namespace elmo::bench
