// Workload trace capture and replay: binary round-trip, CRC corruption
// detection, and the headline guarantee — a trace captured on one DB
// replays to an identical key set on a fresh DB, even on different
// simulated hardware.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bench_kit/trace_replay.h"
#include "env/mem_env.h"
#include "env/sim_env.h"
#include "lsm/db.h"
#include "lsm/trace.h"

namespace elmo::lsm {
namespace {

TEST(TraceTest, WriterReaderRoundTrip) {
  MemEnv env;
  TraceWriter writer(&env);
  ASSERT_TRUE(writer.Open("/trace", /*base_ts_us=*/1000).ok());
  ASSERT_TRUE(writer.AddRecord(TraceOp::kPut, 1010, 7, "alpha", 128).ok());
  ASSERT_TRUE(writer.AddRecord(TraceOp::kDelete, 1020, 7, "beta", 0).ok());
  ASSERT_TRUE(writer.AddRecord(TraceOp::kGet, 1030, 9, "gamma", 0).ok());
  EXPECT_EQ(writer.records(), 3u);
  ASSERT_TRUE(writer.Close().ok());

  TraceReader reader(&env);
  ASSERT_TRUE(reader.Open("/trace").ok());
  EXPECT_EQ(reader.base_ts_us(), 1000u);

  TraceRecord rec;
  bool eof = false;
  ASSERT_TRUE(reader.Next(&rec, &eof).ok());
  ASSERT_FALSE(eof);
  EXPECT_EQ(rec.op, TraceOp::kPut);
  EXPECT_EQ(rec.ts_us, 1010u);
  EXPECT_EQ(rec.thread_id, 7u);
  EXPECT_EQ(rec.key, "alpha");
  EXPECT_EQ(rec.value_size, 128u);

  ASSERT_TRUE(reader.Next(&rec, &eof).ok());
  EXPECT_EQ(rec.op, TraceOp::kDelete);
  EXPECT_EQ(rec.key, "beta");

  ASSERT_TRUE(reader.Next(&rec, &eof).ok());
  EXPECT_EQ(rec.op, TraceOp::kGet);
  EXPECT_EQ(rec.key, "gamma");

  ASSERT_TRUE(reader.Next(&rec, &eof).ok());
  EXPECT_TRUE(eof);
}

TEST(TraceTest, CorruptionDetected) {
  MemEnv env;
  TraceWriter writer(&env);
  ASSERT_TRUE(writer.Open("/trace", 0).ok());
  ASSERT_TRUE(
      writer.AddRecord(TraceOp::kPut, 10, 1, "somekey", 64).ok());
  ASSERT_TRUE(writer.Close().ok());

  std::string contents;
  ASSERT_TRUE(env.ReadFileToString("/trace", &contents).ok());
  contents[contents.size() - 3] ^= 0x40;  // flip a bit inside the key
  ASSERT_TRUE(
      env.WriteStringToFile(Slice(contents), "/trace", false).ok());

  TraceReader reader(&env);
  ASSERT_TRUE(reader.Open("/trace").ok());
  TraceRecord rec;
  bool eof = false;
  Status s = reader.Next(&rec, &eof);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(TraceTest, NotATraceFileRejected) {
  MemEnv env;
  ASSERT_TRUE(
      env.WriteStringToFile(Slice("plainly not a trace"), "/x", false).ok());
  TraceReader reader(&env);
  EXPECT_TRUE(reader.Open("/x").IsCorruption());
}

// Count user keys via a full iterator scan.
uint64_t CountKeys(DB* db) {
  uint64_t n = 0;
  auto it = db->NewIterator({});
  for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
  return n;
}

TEST(TraceTest, CapturedFillReplaysToIdenticalKeyCount) {
  // Capture a fillrandom-style workload on NVMe-backed sim hardware.
  auto hw_fast = HardwareProfile::Make(2, 4, DeviceModel::NvmeSsd());
  auto env = std::make_unique<SimEnv>(hw_fast, /*seed=*/21);
  Options o;
  o.env = env.get();
  o.create_if_missing = true;
  o.write_buffer_size = 256 << 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/src", &db).ok());

  ASSERT_TRUE(db->StartTrace("/trace").ok());
  EXPECT_TRUE(db->StartTrace("/other").IsBusy());

  const std::string value(256, 'v');
  for (int i = 0; i < 5000; i++) {
    char key[32];
    // Overlapping writes: replay must preserve, not inflate, the count.
    snprintf(key, sizeof(key), "%016d", i % 4000);
    ASSERT_TRUE(db->Put({}, key, value).ok());
  }
  for (int i = 0; i < 100; i++) {
    char key[32];
    snprintf(key, sizeof(key), "%016d", i);
    ASSERT_TRUE(db->Delete({}, key).ok());
  }
  std::string unused;
  db->Get({}, "0000000000000200", &unused);  // traced read
  ASSERT_TRUE(db->EndTrace().ok());
  EXPECT_TRUE(db->EndTrace().IsInvalidArgument());
  db->WaitForBackgroundWork();
  const uint64_t source_keys = CountKeys(db.get());
  EXPECT_EQ(source_keys, 4000u - 100u);
  db.reset();

  // Replay on a fresh DB on much slower hardware, full speed.
  auto hw_slow = HardwareProfile::Make(1, 2, DeviceModel::SataHdd());
  auto env2 = std::make_unique<SimEnv>(hw_slow, /*seed=*/99);
  // Move the trace bytes across environments.
  std::string trace_bytes;
  ASSERT_TRUE(env->ReadFileToString("/trace", &trace_bytes).ok());
  ASSERT_TRUE(
      env2->WriteStringToFile(Slice(trace_bytes), "/trace", false).ok());

  Options o2;
  o2.env = env2.get();
  o2.create_if_missing = true;
  std::unique_ptr<DB> db2;
  ASSERT_TRUE(DB::Open(o2, "/dst", &db2).ok());

  bench::ReplayStats rs;
  Status s = bench::ReplayTrace(env2.get(), "/trace", db2.get(),
                                /*preserve_timing=*/false, &rs);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(rs.puts, 5000u);
  EXPECT_EQ(rs.deletes, 100u);
  EXPECT_EQ(rs.gets, 1u);
  EXPECT_EQ(rs.ops, 5101u);
  EXPECT_EQ(rs.failed, 0u);

  db2->WaitForBackgroundWork();
  EXPECT_EQ(CountKeys(db2.get()), source_keys);
  db2.reset();
}

TEST(TraceTest, TimedReplayPreservesVirtualSpan) {
  MemEnv env;
  TraceWriter writer(&env);
  ASSERT_TRUE(writer.Open("/trace", 0).ok());
  // Two ops 2 virtual seconds apart.
  ASSERT_TRUE(writer.AddRecord(TraceOp::kPut, 0, 1, "a", 16).ok());
  ASSERT_TRUE(writer.AddRecord(TraceOp::kPut, 2'000'000, 1, "b", 16).ok());
  ASSERT_TRUE(writer.Close().ok());

  auto hw = HardwareProfile::Make(2, 4, DeviceModel::NvmeSsd());
  auto sim = std::make_unique<SimEnv>(hw, 5);
  std::string bytes;
  ASSERT_TRUE(env.ReadFileToString("/trace", &bytes).ok());
  ASSERT_TRUE(sim->WriteStringToFile(Slice(bytes), "/trace", false).ok());

  Options o;
  o.env = sim.get();
  o.create_if_missing = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());

  bench::ReplayStats rs;
  ASSERT_TRUE(bench::ReplayTrace(sim.get(), "/trace", db.get(),
                                 /*preserve_timing=*/true, &rs)
                  .ok());
  EXPECT_EQ(rs.trace_span_us, 2'000'000u);
  // The replay slept out the recorded gap on the virtual clock.
  EXPECT_GE(rs.replay_elapsed_us, 2'000'000u);
  db.reset();
}

}  // namespace
}  // namespace elmo::lsm
