// ErrorHandler golden tests: the source×kind→severity classification
// matrix, the retry/backoff state machine, degraded-mode behavior on a
// live DB (reads serve while writes fail fast), auto-resume after a
// transient FaultInjectionEnv burst, NoSpace pause/resume against the
// MemFs capacity model, a planted permanent fault staying fatal, and
// same-seed SimEnv recovery-timeline determinism.
#include "lsm/error_handler.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "env/mem_env.h"
#include "env/sim_env.h"
#include "fault/fault_injection_env.h"
#include "lsm/db.h"
#include "lsm/event_listener.h"

namespace elmo::lsm {
namespace {

using elmo::DeviceModel;
using elmo::Env;
using elmo::FaultInjectionConfig;
using elmo::FaultInjectionEnv;
using elmo::HardwareProfile;
using elmo::IOFileKind;
using elmo::MemEnv;
using elmo::SimEnv;
using elmo::Status;

// ---- classification golden matrix ----

TEST(ErrorClassification, KindFromStatus) {
  EXPECT_EQ(BackgroundErrorKind::kCorruption,
            ClassifyBackgroundErrorKind(Status::Corruption("bad block")));
  EXPECT_EQ(BackgroundErrorKind::kNoSpace,
            ClassifyBackgroundErrorKind(Status::NoSpace("disk full")));
  EXPECT_EQ(BackgroundErrorKind::kRetryableIOError,
            ClassifyBackgroundErrorKind(Status::RetryableIOError("blip")));
  EXPECT_EQ(BackgroundErrorKind::kHardFailure,
            ClassifyBackgroundErrorKind(Status::IOError("dead disk")));
  // Any other failure is a hard failure too.
  EXPECT_EQ(BackgroundErrorKind::kHardFailure,
            ClassifyBackgroundErrorKind(Status::InvalidArgument("logic")));
}

TEST(ErrorClassification, SeverityMatrixGolden) {
  const BackgroundErrorSource journal[] = {BackgroundErrorSource::kWalAppend,
                                           BackgroundErrorSource::kWalSync,
                                           BackgroundErrorSource::kManifest};
  const BackgroundErrorSource data[] = {BackgroundErrorSource::kFlush,
                                        BackgroundErrorSource::kCompaction};
  // Corruption -> fatal everywhere; NoSpace -> soft everywhere.
  for (const auto src : journal) {
    EXPECT_EQ(ErrorSeverity::kFatal,
              ClassifyBackgroundError(src, BackgroundErrorKind::kCorruption));
    EXPECT_EQ(ErrorSeverity::kSoft,
              ClassifyBackgroundError(src, BackgroundErrorKind::kNoSpace));
    // Journal retryable -> hard (stop acking until re-synced); journal
    // hard failure -> fatal.
    EXPECT_EQ(ErrorSeverity::kHard,
              ClassifyBackgroundError(
                  src, BackgroundErrorKind::kRetryableIOError));
    EXPECT_EQ(ErrorSeverity::kFatal,
              ClassifyBackgroundError(src,
                                      BackgroundErrorKind::kHardFailure));
  }
  for (const auto src : data) {
    EXPECT_EQ(ErrorSeverity::kFatal,
              ClassifyBackgroundError(src, BackgroundErrorKind::kCorruption));
    EXPECT_EQ(ErrorSeverity::kSoft,
              ClassifyBackgroundError(src, BackgroundErrorKind::kNoSpace));
    // Data-file retryable -> soft (inputs intact, just retry); data-file
    // hard failure -> hard (degraded but readable).
    EXPECT_EQ(ErrorSeverity::kSoft,
              ClassifyBackgroundError(
                  src, BackgroundErrorKind::kRetryableIOError));
    EXPECT_EQ(ErrorSeverity::kHard,
              ClassifyBackgroundError(src,
                                      BackgroundErrorKind::kHardFailure));
  }
}

// ---- retry/backoff state machine ----

TEST(ErrorHandlerMachine, BackoffEscalationAndBudget) {
  ErrorHandlerConfig cfg;
  cfg.max_auto_resume_retries = 2;
  cfg.base_backoff_us = 100;
  cfg.max_backoff_us = 1000;
  ErrorHandler h(cfg);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h.WriteStatus().ok());

  // Soft flush failure at t=1000: first retry due at t+base.
  ASSERT_TRUE(h.SetBGError(BackgroundErrorSource::kFlush,
                           Status::RetryableIOError("blip"), 1000));
  EXPECT_EQ(ErrorSeverity::kSoft, h.severity());
  EXPECT_TRUE(h.state().auto_recoverable);
  EXPECT_EQ(1100u, h.next_retry_at_us());
  EXPECT_TRUE(h.WriteStatus().ok());  // soft stalls, never fails writes
  EXPECT_FALSE(h.BackgroundWorkStatus().ok());
  EXPECT_FALSE(h.ResumeDue(1099));
  EXPECT_TRUE(h.ResumeDue(1100));

  // First attempt fails: backoff doubles, still auto-recoverable.
  EXPECT_EQ(1, h.OnResumeAttemptStart());
  EXPECT_FALSE(h.OnResumeFailed(Status::RetryableIOError("still"), 2000));
  EXPECT_EQ(2000u + 200u, h.next_retry_at_us());
  EXPECT_TRUE(h.state().auto_recoverable);

  // Second attempt exhausts the budget: soft escalates to fail-fast
  // hard and retrying stops.
  EXPECT_EQ(2, h.OnResumeAttemptStart());
  EXPECT_TRUE(h.OnResumeFailed(Status::RetryableIOError("still"), 3000));
  EXPECT_EQ(ErrorSeverity::kHard, h.severity());
  EXPECT_FALSE(h.state().auto_recoverable);
  EXPECT_EQ(0u, h.next_retry_at_us());
  EXPECT_FALSE(h.WriteStatus().ok());

  // Manual resume still works and closes the episode...
  h.OnResumeAttemptStart();
  h.OnResumeSucceeded();
  EXPECT_TRUE(h.ok());
  EXPECT_EQ(1u, h.resume_successes());
  EXPECT_EQ(2u, h.resume_failures());

  // ...but the consumed budget survives until real background work
  // succeeds: a fresh soft error with no retries left enters as hard.
  ASSERT_TRUE(h.SetBGError(BackgroundErrorSource::kFlush,
                           Status::RetryableIOError("again"), 4000));
  EXPECT_EQ(ErrorSeverity::kHard, h.severity());
  EXPECT_FALSE(h.state().auto_recoverable);
  h.OnResumeAttemptStart();
  h.OnResumeSucceeded();

  // A completed flush/compaction forgets the episode: soft is soft
  // again with a scheduled retry.
  h.NoteBackgroundWorkSuccess();
  ASSERT_TRUE(h.SetBGError(BackgroundErrorSource::kFlush,
                           Status::RetryableIOError("fresh"), 5000));
  EXPECT_EQ(ErrorSeverity::kSoft, h.severity());
  EXPECT_TRUE(h.state().auto_recoverable);
  EXPECT_EQ(5100u, h.next_retry_at_us());
}

TEST(ErrorHandlerMachine, OnlyStrictlyMoreSevereErrorsReplace) {
  ErrorHandler h(ErrorHandlerConfig{});
  ASSERT_TRUE(h.SetBGError(BackgroundErrorSource::kWalAppend,
                           Status::RetryableIOError("wal"), 100));
  ASSERT_EQ(ErrorSeverity::kHard, h.severity());
  // A soft arrival does not demote the active hard error.
  EXPECT_FALSE(h.SetBGError(BackgroundErrorSource::kFlush,
                            Status::RetryableIOError("flush"), 200));
  EXPECT_EQ(BackgroundErrorSource::kWalAppend, h.state().source);
  // A fatal one replaces it.
  EXPECT_TRUE(h.SetBGError(BackgroundErrorSource::kCompaction,
                           Status::Corruption("bits"), 300));
  EXPECT_EQ(ErrorSeverity::kFatal, h.severity());
  // Fatal never schedules a retry and always fails writes.
  EXPECT_FALSE(h.state().auto_recoverable);
  EXPECT_FALSE(h.WriteStatus().ok());
}

// ---- live-DB behavior ----

// Records error/recovery events; timestamps come from the env so the
// determinism test can compare full timelines across runs.
class ErrorRecordingListener : public EventListener {
 public:
  explicit ErrorRecordingListener(Env* env) : env_(env) {}

  void OnBackgroundError(const BackgroundErrorInfo& info) override {
    Add("error", info);
  }
  void OnErrorRecoveryBegin(const BackgroundErrorInfo& info) override {
    Add("recovery_begin", info);
  }
  void OnErrorRecoveryCompleted(const BackgroundErrorInfo& info) override {
    Add("recovery_done", info);
    if (info.status.ok()) recoveries_completed_ok++;
  }

  std::vector<std::string> events;
  int recoveries_completed_ok = 0;

 private:
  void Add(const char* what, const BackgroundErrorInfo& info) {
    char buf[160];
    snprintf(buf, sizeof(buf), "%s:%s:%s:%s:%d@%llu", what,
             ErrorSeverityName(info.severity),
             BackgroundErrorSourceName(info.source),
             BackgroundErrorKindName(info.kind), info.retry_count,
             static_cast<unsigned long long>(env_->NowMicros()));
    events.push_back(buf);
  }
  Env* const env_;
};

std::string BgErrorProperty(DB* db) {
  std::string v;
  EXPECT_TRUE(db->GetProperty("elmo.bg_error", &v));
  return v;
}

bool Degraded(DB* db) {
  return BgErrorProperty(db).find("\"severity\":\"none\"") ==
         std::string::npos;
}

TEST(DbErrorHandler, HardErrorDegradedReadsServeWritesFailFast) {
  auto base = std::make_unique<MemEnv>();
  auto fault = std::make_unique<FaultInjectionEnv>(base.get(), 42);
  Options o;
  o.env = fault.get();
  o.create_if_missing = true;
  o.max_bgerror_resume_count = 0;  // no auto-resume: observe the state
  auto listener = std::make_shared<ErrorRecordingListener>(fault.get());
  o.listeners.push_back(listener);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(
        db->Put({}, "key" + std::to_string(i), "v" + std::to_string(i))
            .ok());
  }

  FaultInjectionConfig fc;
  fc.write_error = 1.0;
  fc.retryable = true;  // retryable on the WAL journal -> hard
  fc.kinds = {IOFileKind::kWal};
  fault->SetErrorInjection(fc);

  Status s = db->Put({}, "during", "x");
  ASSERT_FALSE(s.ok());
  // Subsequent writes fail fast with the self-describing Status.
  s = db->Put({}, "after", "y");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(std::string::npos,
            s.ToString().find("read-only degraded mode; call Resume()"))
      << s.ToString();
  EXPECT_NE(std::string::npos,
            BgErrorProperty(db.get()).find("\"severity\":\"hard\""));
  ASSERT_EQ(1u, listener->events.size());
  EXPECT_EQ(0u, listener->events[0].find("error:hard:wal_append"))
      << listener->events[0];

  // Reads keep serving the acked state — point reads and iterators.
  std::string v;
  ASSERT_TRUE(db->Get({}, "key7", &v).ok());
  EXPECT_EQ("v7", v);
  ASSERT_TRUE(db->Get({}, "during", &v).IsNotFound());
  int seen = 0;
  auto it = db->NewIterator({});
  for (it->SeekToFirst(); it->Valid(); it->Next()) seen++;
  EXPECT_TRUE(it->status().ok());
  EXPECT_EQ(20, seen);
  it.reset();

  // Fault gone: a manual Resume() switches to a fresh WAL and heals.
  fault->ClearFaults();
  ASSERT_TRUE(db->Resume().ok());
  EXPECT_FALSE(Degraded(db.get()));
  ASSERT_TRUE(db->Put({}, "healed", "z").ok());
  ASSERT_TRUE(db->Get({}, "healed", &v).ok());
  EXPECT_GE(listener->recoveries_completed_ok, 1);
  db.reset();
}

TEST(DbErrorHandler, AutoResumeAfterTransientFaultBurst) {
  auto base = std::make_unique<MemEnv>();
  auto fault = std::make_unique<FaultInjectionEnv>(base.get(), 42);
  Options o;
  o.env = fault.get();
  o.create_if_missing = true;
  o.max_bgerror_resume_count = 32;  // outlast the burst
  o.bgerror_resume_retry_interval_ms = 2;
  auto listener = std::make_shared<ErrorRecordingListener>(fault.get());
  o.listeners.push_back(listener);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db->Put({}, "pre" + std::to_string(i), "v").ok());
  }

  FaultInjectionConfig fc;
  fc.write_error = 1.0;
  fc.retryable = true;
  fc.transient_ops = 6;  // the "device" heals after 6 hook calls
  fc.kinds = {IOFileKind::kWal};
  fault->SetErrorInjection(fc);
  ASSERT_FALSE(db->Put({}, "during", "x").ok());

  // No manual Resume(): the DB must clear the episode on its own once
  // the burst expires (failed writes keep consuming the burst budget).
  Status s;
  for (int i = 0; i < 200; i++) {
    db->WaitForBackgroundWork();
    s = db->Put({}, "probe", std::to_string(i));
    if (s.ok()) break;
    fault->SleepForMicroseconds(2000);
  }
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(fault->InjectionArmed());
  EXPECT_FALSE(Degraded(db.get()));
  EXPECT_GE(listener->recoveries_completed_ok, 1);

  // Nothing acked was lost.
  std::string v;
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db->Get({}, "pre" + std::to_string(i), &v).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  ASSERT_TRUE(db->Put({}, "post", "y").ok());
  db.reset();
}

TEST(DbErrorHandler, NoSpacePausesBackgroundWorkAndResumes) {
  auto env = std::make_unique<MemEnv>();
  Options o;
  o.env = env.get();
  o.create_if_missing = true;
  o.free_space_reserved_bytes = 1 << 20;  // keep 1 MiB headroom
  o.free_space_poll_interval_ms = 0;      // poll on every check
  // A small budget so the blocked FlushMemTable call returns quickly
  // (soft NoSpace escalates to hard once retries run out).
  o.max_bgerror_resume_count = 2;
  o.bgerror_resume_retry_interval_ms = 2;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db->Put({}, "key" + std::to_string(i),
                        std::string(512, 'v'))
                    .ok());
  }

  // Shrink the device: free space drops under the reservation, so the
  // flush must pause with a soft NoSpace instead of writing the disk
  // full.
  env->fs()->SetCapacity(env->fs()->TotalBytes() + (64 << 10));
  Status s = db->FlushMemTable();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNoSpace()) << s.ToString();
  EXPECT_NE(std::string::npos,
            BgErrorProperty(db.get()).find("\"kind\":\"no_space\""));
  // Reads still serve while paused.
  std::string v;
  ASSERT_TRUE(db->Get({}, "key1", &v).ok());

  // Free the device: resume re-polls, background work reschedules, and
  // the flush goes through.
  env->fs()->SetCapacity(0);  // unlimited again
  ASSERT_TRUE(db->Resume().ok());
  EXPECT_FALSE(Degraded(db.get()));
  ASSERT_TRUE(db->FlushMemTable().ok());
  ASSERT_TRUE(db->Put({}, "after", "w").ok());
  db.reset();
}

TEST(DbErrorHandler, PlantedPermanentFaultStaysFatal) {
  auto base = std::make_unique<MemEnv>();
  auto fault = std::make_unique<FaultInjectionEnv>(base.get(), 42);
  Options o;
  o.env = fault.get();
  o.create_if_missing = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());
  ASSERT_TRUE(db->Put({}, "a", "1").ok());

  FaultInjectionConfig fc;
  fc.write_error = 1.0;
  fc.retryable = false;  // permanent: hard failure on the WAL -> fatal
  fc.kinds = {IOFileKind::kWal};
  fault->SetErrorInjection(fc);
  ASSERT_FALSE(db->Put({}, "b", "2").ok());
  EXPECT_NE(std::string::npos,
            BgErrorProperty(db.get()).find("\"severity\":\"fatal\""));

  // Fatal means reopen required: even with the fault gone, neither
  // auto-resume nor a manual Resume() may clear it.
  fault->ClearFaults();
  db->WaitForBackgroundWork();
  EXPECT_FALSE(db->Resume().ok());
  Status s = db->Put({}, "c", "3");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(std::string::npos, s.ToString().find("reopen required"))
      << s.ToString();
  // Reads still drain the acked state for an orderly shutdown.
  std::string v;
  ASSERT_TRUE(db->Get({}, "a", &v).ok());
  EXPECT_EQ("1", v);
  db.reset();
}

// Same seed, same hardware, same script -> byte-identical recovery
// timeline (every event name, classification, retry count and
// engine-clock timestamp).
std::vector<std::string> RunSimRecoveryScenario(uint64_t seed) {
  auto sim = std::make_unique<SimEnv>(
      HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd()), seed);
  auto fault = std::make_unique<FaultInjectionEnv>(sim.get(), seed ^ 0xabc);
  Options o;
  o.env = fault.get();
  o.create_if_missing = true;
  o.max_bgerror_resume_count = 32;
  auto listener = std::make_shared<ErrorRecordingListener>(fault.get());
  o.listeners.push_back(listener);
  std::unique_ptr<DB> db;
  EXPECT_TRUE(DB::Open(o, "/db", &db).ok());
  for (int i = 0; i < 30; i++) {
    EXPECT_TRUE(db->Put({}, "pre" + std::to_string(i),
                        std::string(128, 'v'))
                    .ok());
  }

  FaultInjectionConfig fc;
  fc.write_error = 1.0;
  fc.retryable = true;
  fc.transient_ops = 5;
  fc.kinds = {IOFileKind::kWal};
  fault->SetErrorInjection(fc);
  (void)db->Put({}, "during", "x");
  Status s;
  for (int i = 0; i < 200; i++) {
    db->WaitForBackgroundWork();
    s = db->Put({}, "probe", std::to_string(i));
    if (s.ok()) break;
    fault->SleepForMicroseconds(2000);
  }
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(db->FlushMemTable().ok());

  std::vector<std::string> timeline = listener->events;
  // Fold the final engine clock and resume counters in as well: equal
  // event lists with diverging clocks would still be a regression.
  std::string prop;
  EXPECT_TRUE(db->GetProperty("elmo.bg_error", &prop));
  timeline.push_back(prop + "@" + std::to_string(fault->NowMicros()));
  db.reset();
  return timeline;
}

TEST(DbErrorHandler, SameSeedSimRunsReplayIdenticalRecoveryTimeline) {
  const std::vector<std::string> a = RunSimRecoveryScenario(7);
  const std::vector<std::string> b = RunSimRecoveryScenario(7);
  ASSERT_FALSE(a.empty());
  // The scenario must actually have exercised an error + recovery.
  EXPECT_NE(std::string::npos, a.front().find("error:hard:wal_append"));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace elmo::lsm
