#include "elmo/history_export.h"

#include <gtest/gtest.h>

#include "lsm/db.h"
#include "util/string_util.h"

namespace elmo::tune {
namespace {

TuningOutcome MakeOutcome() {
  TuningOutcome out;
  out.baseline.ops_per_sec = 1000;
  for (int i = 0; i < 1000; i++) out.baseline.write_micros.Add(10.0);

  IterationRecord it1;
  it1.iteration = 1;
  it1.result.ops_per_sec = 1500;
  for (int i = 0; i < 1000; i++) it1.result.write_micros.Add(8.0);
  it1.kept = true;
  it1.applied_changes = {{"max_background_jobs", "4"},
                         {"wal_bytes_per_sync", "1048576"}};
  out.iterations.push_back(it1);

  IterationRecord it2;
  it2.iteration = 2;
  it2.result.ops_per_sec = 900;
  it2.kept = false;
  it2.applied_changes = {{"max_background_jobs", "8"}};
  out.iterations.push_back(it2);

  out.best_result = it1.result;
  return out;
}

TEST(HistoryExport, CsvShape) {
  std::string csv = ExportIterationCsv(MakeOutcome());
  auto lines = SplitLines(csv);
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ("iteration,throughput_ops_sec,p99_write_us,p99_read_us,kept",
            lines[0]);
  EXPECT_NE(lines[1].find("0,1000.00"), std::string::npos);
  EXPECT_NE(lines[1].find("baseline"), std::string::npos);
  EXPECT_NE(lines[2].find("1,1500.00"), std::string::npos);
  EXPECT_NE(lines[2].find("kept"), std::string::npos);
  EXPECT_NE(lines[3].find("2,900.00"), std::string::npos);
  EXPECT_NE(lines[3].find("reverted"), std::string::npos);
}

TEST(HistoryExport, MarkdownTraceShape) {
  std::string md = ExportOptionTraceMarkdown(MakeOutcome());
  EXPECT_NE(md.find("| Parameter | Default | Iter 1 | Iter 2 |"),
            std::string::npos);
  // max_background_jobs: default 2, kept "4" at iter 1, reverted "8\*"
  // at iter 2.
  EXPECT_NE(md.find("| max_background_jobs | 2 | 4 | 8\\* |"),
            std::string::npos);
  // wal_bytes_per_sync appears only in iteration 1.
  EXPECT_NE(md.find("| wal_bytes_per_sync | 0 | 1048576 |  |"),
            std::string::npos);
}

TEST(HistoryExport, EmptyOutcome) {
  TuningOutcome out;
  std::string csv = ExportIterationCsv(out);
  // Header + baseline row (+ trailing newline artifact).
  auto lines = SplitLines(csv);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_TRUE(lines.back().empty());
  EXPECT_EQ(3u, lines.size());
  std::string md = ExportOptionTraceMarkdown(out);
  EXPECT_NE(md.find("| Parameter | Default |"), std::string::npos);
}

}  // namespace
}  // namespace elmo::tune
