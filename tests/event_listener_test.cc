// EventListener: flush/compaction/stall callbacks must fire with
// correct payloads on both the real (MemEnv) and simulated (SimEnv)
// execution paths.
#include "lsm/event_listener.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "env/mem_env.h"
#include "env/sim_env.h"
#include "lsm/db.h"

namespace elmo::lsm {
namespace {

// Records every event payload for later inspection.
class RecordingListener : public EventListener {
 public:
  void OnFlushBegin(const FlushJobInfo& info) override {
    flush_begin.push_back(info);
  }
  void OnFlushCompleted(const FlushJobInfo& info) override {
    flush_completed.push_back(info);
  }
  void OnCompactionBegin(const CompactionJobInfo& info) override {
    compaction_begin.push_back(info);
  }
  void OnCompactionCompleted(const CompactionJobInfo& info) override {
    compaction_completed.push_back(info);
  }
  void OnStallConditionChanged(const StallInfo& info) override {
    stall_changes.push_back(info);
  }
  void OnWriteStop(const StallInfo& info) override {
    write_stops.push_back(info);
  }

  std::vector<FlushJobInfo> flush_begin;
  std::vector<FlushJobInfo> flush_completed;
  std::vector<CompactionJobInfo> compaction_begin;
  std::vector<CompactionJobInfo> compaction_completed;
  std::vector<StallInfo> stall_changes;
  std::vector<StallInfo> write_stops;
};

class EventListenerTest : public ::testing::Test {
 protected:
  void Open() {
    env_ = std::make_unique<MemEnv>();
    options_.env = env_.get();
    options_.create_if_missing = true;
    listener_ = std::make_shared<RecordingListener>();
    options_.listeners.push_back(listener_);
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }

  // Writes a permutation of 0..n-1 so files overlap and compactions
  // actually rewrite data (sequential keys would all trivially move).
  void Fill(int n, int value_size = 256) {
    std::string value(value_size, 'v');
    for (int i = 0; i < n; i++) {
      char key[24];
      snprintf(key, sizeof(key), "%016d", i * 7919 % n);
      ASSERT_TRUE(db_->Put({}, Slice(key, 16), value).ok());
    }
  }

  std::unique_ptr<MemEnv> env_;
  Options options_;
  std::unique_ptr<DB> db_;
  std::shared_ptr<RecordingListener> listener_;
};

TEST_F(EventListenerTest, FlushEventsCarryBytesAndLevel) {
  Open();
  Fill(100);
  ASSERT_TRUE(db_->FlushMemTable().ok());

  ASSERT_EQ(1u, listener_->flush_begin.size());
  ASSERT_EQ(1u, listener_->flush_completed.size());
  const FlushJobInfo& info = listener_->flush_completed[0];
  EXPECT_EQ(1, info.imms_merged);
  EXPECT_EQ(0, info.output_level);
  EXPECT_GT(info.file_number, 0u);
  EXPECT_GT(info.output_bytes, 0u);
  EXPECT_EQ(db_->stats().Get(Ticker::kFlushBytes), info.output_bytes);
}

TEST_F(EventListenerTest, ManualCompactionReportsManualReason) {
  Open();
  Fill(200);
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());

  ASSERT_FALSE(listener_->compaction_completed.empty());
  uint64_t total_output = 0;
  for (const CompactionJobInfo& info : listener_->compaction_completed) {
    EXPECT_EQ(CompactionReason::kManual, info.reason);
    EXPECT_GT(info.num_input_files, 0);
    EXPECT_GE(info.output_level, info.level);
    total_output += info.output_bytes;
  }
  EXPECT_GT(total_output, 0u);
  EXPECT_EQ(listener_->compaction_begin.size(),
            listener_->compaction_completed.size());
}

TEST_F(EventListenerTest, BackgroundCompactionReportsLevelReason) {
  options_.write_buffer_size = 32 << 10;
  options_.max_bytes_for_level_base = 128 << 10;
  Open();
  Fill(5000, 128);
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());

  ASSERT_FALSE(listener_->compaction_completed.empty());
  bool saw_rewrite = false;
  for (const CompactionJobInfo& info : listener_->compaction_completed) {
    EXPECT_EQ(CompactionReason::kLevelScore, info.reason);
    if (!info.trivial_move) {
      saw_rewrite = true;
      EXPECT_GT(info.input_bytes, 0u);
      EXPECT_GT(info.output_bytes, 0u);
      EXPECT_GT(info.num_output_files, 0);
    }
  }
  EXPECT_TRUE(saw_rewrite);
}

TEST_F(EventListenerTest, UniversalCompactionReportsUniversalReason) {
  options_.compaction_style = CompactionStyle::kUniversal;
  options_.write_buffer_size = 32 << 10;
  options_.level0_file_num_compaction_trigger = 4;
  Open();
  Fill(4000, 128);
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());

  ASSERT_FALSE(listener_->compaction_completed.empty());
  for (const CompactionJobInfo& info : listener_->compaction_completed) {
    EXPECT_EQ(CompactionReason::kUniversal, info.reason);
  }
}

TEST_F(EventListenerTest, StallTransitionsFireUnderMemtablePressure) {
  options_.write_buffer_size = 16 << 10;
  options_.max_write_buffer_number = 2;
  Open();
  Fill(5000, 200);
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());

  // Tiny buffers force memtable-limit stops; each stop must surface as
  // a kNormal -> kStopped transition plus an OnWriteStop with the wait.
  ASSERT_FALSE(listener_->write_stops.empty());
  for (const StallInfo& info : listener_->write_stops) {
    EXPECT_EQ(StallCondition::kStopped, info.current);
    EXPECT_EQ(StallReason::kMemtableLimit, info.reason);
  }
  ASSERT_FALSE(listener_->stall_changes.empty());
  bool saw_stop = false, saw_recover = false;
  for (const StallInfo& info : listener_->stall_changes) {
    EXPECT_NE(info.previous, info.current);
    if (info.current == StallCondition::kStopped) {
      saw_stop = true;
      EXPECT_EQ(StallReason::kMemtableLimit, info.reason);
    }
    if (info.current == StallCondition::kNormal) saw_recover = true;
  }
  EXPECT_TRUE(saw_stop);
  EXPECT_TRUE(saw_recover);
  EXPECT_EQ(listener_->write_stops.size(),
            db_->stats().Get(Ticker::kStallMemtableStopCount));
}

// The same callbacks must fire when the engine runs on the simulated
// clock: durations come from the job meter, not wall time.
TEST(EventListenerSimTest, FlushAndCompactionEventsUnderSimEnv) {
  auto hw = HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd());
  auto env = std::make_unique<SimEnv>(hw, 42);
  Options options;
  options.env = env.get();
  options.create_if_missing = true;
  options.write_buffer_size = 32 << 10;
  options.max_bytes_for_level_base = 128 << 10;
  auto listener = std::make_shared<RecordingListener>();
  options.listeners.push_back(listener);

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  const std::string value(256, 'v');
  for (int i = 0; i < 5000; i++) {
    char key[24];
    snprintf(key, sizeof(key), "%016d", i * 7919 % 5000);
    ASSERT_TRUE(db->Put({}, Slice(key, 16), value).ok());
  }
  ASSERT_TRUE(db->WaitForBackgroundWork().ok());

  ASSERT_FALSE(listener->flush_completed.empty());
  ASSERT_FALSE(listener->compaction_completed.empty());
  // Sim job meter charges virtual time to every flush; compaction
  // durations are virtual too (trivial moves may cost ~0).
  for (const FlushJobInfo& info : listener->flush_completed) {
    EXPECT_GT(info.duration_micros, 0u);
    EXPECT_GT(info.output_bytes, 0u);
  }
  bool some_compaction_took_time = false;
  for (const CompactionJobInfo& info : listener->compaction_completed) {
    if (info.duration_micros > 0) some_compaction_took_time = true;
  }
  EXPECT_TRUE(some_compaction_took_time);
  EXPECT_EQ(db->stats().Get(Ticker::kFlushCount),
            listener->flush_completed.size());
  EXPECT_EQ(db->stats().Get(Ticker::kCompactionCount) +
                db->stats().Get(Ticker::kTrivialMoveCount),
            listener->compaction_completed.size());
}

}  // namespace
}  // namespace elmo::lsm
