// OptionsSchema: the registry every option-text consumer depends on.
#include "lsm/options_schema.h"

#include <gtest/gtest.h>

#include <set>

namespace elmo::lsm {
namespace {

const OptionsSchema& S() { return OptionsSchema::Instance(); }

TEST(OptionsSchema, RegistryIsSubstantial) {
  EXPECT_GE(S().all().size(), 35u);
  EXPECT_GE(S().deprecated().size(), 5u);
}

TEST(OptionsSchema, DefaultsMatchOptionsStruct) {
  Options defaults;
  for (const auto& info : S().all()) {
    EXPECT_EQ(info.default_value, info.get(defaults))
        << "option " << info.name
        << ": schema default disagrees with Options{} field";
  }
}

TEST(OptionsSchema, EveryOptionRoundTripsThroughSetGet) {
  Options opts;
  for (const auto& info : S().all()) {
    std::string original = info.get(opts);
    Status s = info.set(&opts, original);
    EXPECT_TRUE(s.ok()) << info.name << ": " << s.ToString();
    EXPECT_EQ(original, info.get(opts)) << info.name;
  }
}

TEST(OptionsSchema, FindIsExact) {
  EXPECT_NE(nullptr, S().Find("write_buffer_size"));
  EXPECT_EQ(nullptr, S().Find("Write_Buffer_Size"));
  EXPECT_EQ(nullptr, S().Find("write_buffer_siz"));
  EXPECT_EQ(nullptr, S().Find(""));
}

TEST(OptionsSchema, ApplyUnknownRejected) {
  Options opts;
  Status s = S().Apply(&opts, "memtable_prefetch_depth", "4");
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("unknown option"), std::string::npos);
}

TEST(OptionsSchema, ApplyDeprecatedExplained) {
  Options opts;
  Status s = S().Apply(&opts, "flush_job_count", "4");
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("deprecated"), std::string::npos);
  EXPECT_NE(s.ToString().find("max_background_flushes"),
            std::string::npos);
}

TEST(OptionsSchema, TypeValidation) {
  Options opts;
  EXPECT_FALSE(S().Apply(&opts, "write_buffer_size", "lots").ok());
  EXPECT_FALSE(S().Apply(&opts, "enable_pipelined_write", "7ish").ok());
  EXPECT_FALSE(S().Apply(&opts, "compaction_style", "quantum").ok());
  EXPECT_TRUE(S().Apply(&opts, "compaction_style", "universal").ok());
  EXPECT_EQ(CompactionStyle::kUniversal, opts.compaction_style);
}

TEST(OptionsSchema, RangeValidation) {
  Options opts;
  EXPECT_FALSE(S().Apply(&opts, "max_write_buffer_number", "99999").ok());
  EXPECT_FALSE(S().Apply(&opts, "max_write_buffer_number", "0").ok());
  EXPECT_FALSE(S().Apply(&opts, "block_size", "1").ok());
  EXPECT_FALSE(
      S().Apply(&opts, "max_bytes_for_level_multiplier", "1000").ok());
  EXPECT_TRUE(S().Apply(&opts, "max_write_buffer_number", "8").ok());
  EXPECT_EQ(8, opts.max_write_buffer_number);
}

TEST(OptionsSchema, SizeSuffixesAccepted) {
  Options opts;
  ASSERT_TRUE(S().Apply(&opts, "write_buffer_size", "128MB").ok());
  EXPECT_EQ(128ull << 20, opts.write_buffer_size);
  ASSERT_TRUE(S().Apply(&opts, "block_cache_size", "1G").ok());
  EXPECT_EQ(1ull << 30, opts.block_cache_size);
}

TEST(OptionsSchema, BlacklistFlagOnWalDisable) {
  const OptionInfo* info = S().Find("disable_wal");
  ASSERT_NE(nullptr, info);
  EXPECT_TRUE(info->blacklisted);
  // And nothing else is blacklisted by default.
  int blacklisted = 0;
  for (const auto& o : S().all()) {
    if (o.blacklisted) blacklisted++;
  }
  EXPECT_EQ(1, blacklisted);
}

TEST(OptionsSchema, RuntimeMutablePartitionIsExplicit) {
  // The dynamic subset DB::SetOptions() accepts, spelled out in full:
  // adding an option to (or removing one from) the schema's mutable
  // list must update this test too. Everything else in the registry is
  // immutable-at-runtime.
  const std::set<std::string> kMutable = {
      "write_buffer_size",
      "max_write_buffer_number",
      "level0_slowdown_writes_trigger",
      "level0_stop_writes_trigger",
      "max_background_jobs",
      "max_background_flushes",
      "max_background_compactions",
      "max_subcompactions",
      "delayed_write_rate",
      "soft_pending_compaction_bytes_limit",
      "hard_pending_compaction_bytes_limit",
      "block_cache_size",
      "stats_sample_interval_ms",
  };
  for (const auto& info : S().all()) {
    const bool expected = kMutable.count(info.name) > 0;
    EXPECT_EQ(expected, info.runtime_mutable)
        << info.name << ": expected "
        << (expected ? "runtime-mutable" : "immutable-at-runtime");
    EXPECT_EQ(expected, S().IsMutable(info.name)) << info.name;
  }
  // MutableNames() is exactly the partition, in registration order.
  const std::vector<std::string> names = S().MutableNames();
  EXPECT_EQ(kMutable.size(), names.size());
  for (const std::string& n : names) {
    EXPECT_EQ(1u, kMutable.count(n)) << n;
  }
  // Unknown names are never mutable; the WAL kill-switch stays locked.
  EXPECT_FALSE(S().IsMutable("no_such_option"));
  EXPECT_FALSE(S().IsMutable("disable_wal"));
}

TEST(OptionsSchema, DescribeMutableCoversExactlyTheDynamicSubset) {
  Options defaults;
  const std::string desc = S().DescribeMutable(defaults);
  for (const auto& info : S().all()) {
    // Each listed option renders one "name = value" line; matching on
    // "name = " keeps prose mentions in descriptions from counting.
    const bool listed =
        desc.find(info.name + " = ") != std::string::npos;
    EXPECT_EQ(info.runtime_mutable, listed) << info.name;
  }
}

TEST(OptionsSchema, IniRoundTripPreservesEveryOption) {
  Options tuned;
  tuned.write_buffer_size = 32ull << 20;
  tuned.max_background_jobs = 6;
  tuned.bloom_filter_bits_per_key = 10;
  tuned.compaction_style = CompactionStyle::kUniversal;
  tuned.enable_pipelined_write = false;
  tuned.max_bytes_for_level_multiplier = 8;

  std::string text = S().ToIniText(tuned);
  IniDoc doc;
  ASSERT_TRUE(IniDoc::Parse(text, &doc).ok());

  Options parsed;
  std::vector<std::string> unknown, invalid;
  ASSERT_TRUE(S().FromIni(doc, &parsed, &unknown, &invalid).ok());
  EXPECT_TRUE(unknown.empty());
  EXPECT_TRUE(invalid.empty());
  for (const auto& info : S().all()) {
    EXPECT_EQ(info.get(tuned), info.get(parsed)) << info.name;
  }
}

TEST(OptionsSchema, IniUsesRocksDbStyleSections) {
  Options defaults;
  IniDoc doc = S().ToIni(defaults);
  EXPECT_TRUE(doc.HasSection("DBOptions"));
  EXPECT_TRUE(doc.HasSection("CFOptions"));
  EXPECT_TRUE(doc.HasSection("TableOptions"));
  EXPECT_TRUE(
      doc.Get("CFOptions", "write_buffer_size").has_value());
  EXPECT_TRUE(
      doc.Get("TableOptions", "block_cache_size").has_value());
}

TEST(OptionsSchema, FromIniCollectsUnknownAndInvalid) {
  IniDoc doc;
  doc.Set("DBOptions", "max_background_jobs", "4");
  doc.Set("DBOptions", "made_up_option", "1");
  doc.Set("CFOptions", "write_buffer_size", "banana");
  Options opts;
  std::vector<std::string> unknown, invalid;
  ASSERT_TRUE(S().FromIni(doc, &opts, &unknown, &invalid).ok());
  EXPECT_EQ(4, opts.max_background_jobs);
  ASSERT_EQ(1u, unknown.size());
  EXPECT_EQ("made_up_option", unknown[0]);
  ASSERT_EQ(1u, invalid.size());
  EXPECT_NE(invalid[0].find("write_buffer_size"), std::string::npos);
}

TEST(OptionsSchema, DescribeAllMentionsEveryOption) {
  Options defaults;
  std::string desc = S().DescribeAll(defaults);
  for (const auto& info : S().all()) {
    EXPECT_NE(desc.find(info.name), std::string::npos) << info.name;
  }
  EXPECT_NE(desc.find("[LOCKED]"), std::string::npos);
}

TEST(OptionsSchema, ResolvedBackgroundSlots) {
  Options o;
  o.max_background_jobs = 8;
  o.max_background_flushes = -1;
  o.max_background_compactions = -1;
  EXPECT_EQ(2, o.ResolvedFlushSlots());
  EXPECT_EQ(6, o.ResolvedCompactionSlots());
  o.max_background_flushes = 3;
  EXPECT_EQ(3, o.ResolvedFlushSlots());
  o.max_background_jobs = 1;
  o.max_background_flushes = -1;
  EXPECT_EQ(1, o.ResolvedFlushSlots());
  EXPECT_GE(o.ResolvedCompactionSlots(), 1);
}

TEST(OptionsSchema, ConfiguredMemoryFootprint) {
  Options o;
  o.write_buffer_size = 64ull << 20;
  o.max_write_buffer_number = 4;
  o.block_cache_size = 1ull << 30;
  EXPECT_EQ((1ull << 30) + 4 * (64ull << 20),
            o.ConfiguredMemoryFootprint());
}

TEST(OptionsSchema, EnumHelpers) {
  EXPECT_EQ(CompactionStyle::kLevel,
            CompactionStyleFromString("LEVEL").value());
  EXPECT_EQ(CompactionStyle::kUniversal,
            CompactionStyleFromString("kCompactionStyleUniversal").value());
  EXPECT_FALSE(CompactionStyleFromString("tiered?").has_value());
  EXPECT_EQ("level", CompactionStyleToString(CompactionStyle::kLevel));
  EXPECT_EQ(CompressionType::kNoCompression,
            CompressionFromString("none").value());
  EXPECT_EQ(CompressionType::kRleCompression,
            CompressionFromString("RLE").value());
  EXPECT_FALSE(CompressionFromString("snappy").has_value());
}

}  // namespace
}  // namespace elmo::lsm
