#include "bench_kit/workload.h"

#include <gtest/gtest.h>

namespace elmo::bench {
namespace {

TEST(Workload, FactoryShapesMatchPaperSetup) {
  auto fr = WorkloadSpec::FillRandom();
  EXPECT_EQ(WorkloadType::kFillRandom, fr.type);
  EXPECT_EQ(0u, fr.preload_keys);
  EXPECT_EQ(1, fr.threads);

  auto rr = WorkloadSpec::ReadRandom();
  EXPECT_EQ(WorkloadType::kReadRandom, rr.type);
  EXPECT_GT(rr.preload_keys, 0u) << "paper preloads the DB for RR";
  EXPECT_EQ(rr.preload_keys, rr.num_keys);

  auto rrwr = WorkloadSpec::ReadRandomWriteRandom();
  EXPECT_EQ(2, rrwr.threads) << "paper runs RRWR with 2 threads";
  EXPECT_DOUBLE_EQ(0.5, rrwr.write_fraction);
  EXPECT_GT(rrwr.num_keys, rrwr.preload_keys);

  auto mg = WorkloadSpec::Mixgraph();
  EXPECT_DOUBLE_EQ(0.5, mg.write_fraction) << "paper: 50% writes";
  EXPECT_GT(mg.zipf_theta, 0.0);
  EXPECT_LT(mg.zipf_theta, 1.0);
}

TEST(Workload, TypeNames) {
  EXPECT_STREQ("fillrandom", WorkloadTypeName(WorkloadType::kFillRandom));
  EXPECT_STREQ("readrandom", WorkloadTypeName(WorkloadType::kReadRandom));
  EXPECT_STREQ("readrandomwriterandom",
               WorkloadTypeName(WorkloadType::kReadRandomWriteRandom));
  EXPECT_STREQ("mixgraph", WorkloadTypeName(WorkloadType::kMixgraph));
}

TEST(Workload, DescribeMentionsKeyFacts) {
  auto spec = WorkloadSpec::ReadRandomWriteRandom(200000);
  std::string d = spec.Describe();
  EXPECT_NE(d.find("readrandomwriterandom"), std::string::npos);
  EXPECT_NE(d.find("200000 ops"), std::string::npos);
  EXPECT_NE(d.find("2 thread"), std::string::npos);
  EXPECT_NE(d.find("50% writes"), std::string::npos);

  std::string fr = WorkloadSpec::FillRandom().Describe();
  EXPECT_NE(fr.find("100% writes"), std::string::npos);
  std::string rr = WorkloadSpec::ReadRandom().Describe();
  EXPECT_NE(rr.find("0% writes"), std::string::npos);
}

TEST(Workload, OpCountsScaleTogether) {
  auto big = WorkloadSpec::Mixgraph(500000);
  auto small = WorkloadSpec::Mixgraph(50000);
  EXPECT_EQ(big.num_ops, 10 * small.num_ops);
  EXPECT_EQ(big.preload_keys, 10 * small.preload_keys);
}

}  // namespace
}  // namespace elmo::bench
