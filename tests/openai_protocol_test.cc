#include "llm/openai_protocol.h"

#include <gtest/gtest.h>

#include "util/json.h"

namespace elmo::llm {
namespace {

TEST(OpenAiProtocol, RequestShape) {
  ChatCompletionParams params;
  params.model = "gpt-4";
  params.temperature = 0.4;
  params.max_tokens = 2048;
  std::vector<ChatMessage> messages = {
      {"system", "You are an expert."},
      {"user", "Tune my \"db\"\nplease."},
  };
  std::string body = BuildChatCompletionRequest(params, messages);

  json::Value root;
  ASSERT_TRUE(json::Parse(body, &root).ok());
  EXPECT_EQ("gpt-4", root.Find("model")->as_string());
  EXPECT_DOUBLE_EQ(0.4, root.Find("temperature")->as_double());
  EXPECT_EQ(2048, root.Find("max_tokens")->as_int());
  const auto& msgs = root.Find("messages")->as_array();
  ASSERT_EQ(2u, msgs.size());
  EXPECT_EQ("system", msgs[0].Find("role")->as_string());
  EXPECT_EQ("user", msgs[1].Find("role")->as_string());
  EXPECT_EQ("Tune my \"db\"\nplease.",
            msgs[1].Find("content")->as_string());
}

TEST(OpenAiProtocol, ParseSuccessResponse) {
  std::string body = R"({
    "id": "chatcmpl-123",
    "object": "chat.completion",
    "choices": [{
      "index": 0,
      "message": {"role": "assistant", "content": "set jobs = 4"},
      "finish_reason": "stop"
    }],
    "usage": {"prompt_tokens": 100, "completion_tokens": 10}
  })";
  std::string content;
  ASSERT_TRUE(ParseChatCompletionResponse(body, &content).ok());
  EXPECT_EQ("set jobs = 4", content);
}

TEST(OpenAiProtocol, ParseErrorBody) {
  std::string body = R"({
    "error": {"message": "Rate limit reached", "type": "rate_limit_error"}
  })";
  std::string content;
  Status s = ParseChatCompletionResponse(body, &content);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_NE(s.ToString().find("Rate limit reached"), std::string::npos);
}

TEST(OpenAiProtocol, ParseMalformedBodies) {
  std::string content;
  EXPECT_FALSE(ParseChatCompletionResponse("not json", &content).ok());
  EXPECT_FALSE(ParseChatCompletionResponse("{}", &content).ok());
  EXPECT_FALSE(
      ParseChatCompletionResponse(R"({"choices": []})", &content).ok());
  EXPECT_FALSE(
      ParseChatCompletionResponse(R"({"choices": [{"index": 0}]})",
                                  &content)
          .ok());
  EXPECT_FALSE(ParseChatCompletionResponse(
                   R"({"choices": [{"message": {"content": 42}}]})",
                   &content)
                   .ok());
}

TEST(ScriptedLlm, ReplaysAndRepeatsLast) {
  ScriptedLlm llm({"first", "second"});
  std::string out;
  std::vector<ChatMessage> chat = {{"user", "x"}};
  ASSERT_TRUE(llm.Complete(chat, &out).ok());
  EXPECT_EQ("first", out);
  ASSERT_TRUE(llm.Complete(chat, &out).ok());
  EXPECT_EQ("second", out);
  ASSERT_TRUE(llm.Complete(chat, &out).ok());
  EXPECT_EQ("second", out);  // repeats last
  EXPECT_EQ(3u, llm.calls());
}

TEST(ScriptedLlm, EmptyScriptErrors) {
  ScriptedLlm llm({});
  std::string out;
  EXPECT_FALSE(llm.Complete({{"user", "x"}}, &out).ok());
}

}  // namespace
}  // namespace elmo::llm
