#include <gtest/gtest.h>

#include "env/mem_env.h"
#include "lsm/db.h"

namespace elmo::lsm {
namespace {

TEST(GetApproximateSizes, ProportionalToData) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.write_buffer_size = 32 << 10;
  // Small output files so ranges partition cleanly after compaction.
  options.target_file_size_base = 64 << 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  // Keys a000000..a004999 small values, b000000..b004999 big values.
  for (int i = 0; i < 5000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "a%06d", i);
    ASSERT_TRUE(db->Put({}, Slice(key, 7), std::string(50, 'x')).ok());
    snprintf(key, sizeof(key), "b%06d", i);
    ASSERT_TRUE(db->Put({}, Slice(key, 7), std::string(500, 'y')).ok());
  }
  // Fully compact so SST files are range-partitioned (the estimate
  // charges partially-overlapping files only half).
  ASSERT_TRUE(db->CompactRange(nullptr, nullptr).ok());

  DB::Range ranges[3] = {
      DB::Range("a", "b"),  // the small-value half
      DB::Range("b", "c"),  // the big-value half
      DB::Range("z", "zz"), // empty
  };
  uint64_t sizes[3];
  db->GetApproximateSizes(ranges, 3, sizes);

  EXPECT_GT(sizes[0], 100u << 10);          // ~250KB of small values
  EXPECT_GT(sizes[1], sizes[0] * 3);        // big half is ~10x bigger
  EXPECT_LT(sizes[2], sizes[0] / 4);        // empty range ~ 0
}

TEST(GetApproximateSizes, EmptyDbIsZero) {
  MemEnv env;
  Options options;
  options.env = &env;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  DB::Range r("a", "z");
  uint64_t size = 123;
  db->GetApproximateSizes(&r, 1, &size);
  EXPECT_EQ(0u, size);
}

}  // namespace
}  // namespace elmo::lsm
