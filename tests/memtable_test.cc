#include "lsm/memtable.h"

#include <gtest/gtest.h>

#include <map>

#include "util/random.h"

namespace elmo {
namespace {

class MemTableTest : public ::testing::Test {
 protected:
  MemTableTest() : icmp_(BytewiseComparator()), mem_(icmp_) {}

  std::string Get(const std::string& key, SequenceNumber seq) {
    LookupKey lk(key, seq);
    std::string value;
    Status s;
    if (!mem_.Get(lk, &value, &s)) return "ABSENT";
    if (s.IsNotFound()) return "DELETED";
    return value;
  }

  InternalKeyComparator icmp_;
  MemTable mem_;
};

TEST_F(MemTableTest, AddGet) {
  mem_.Add(1, kTypeValue, "key", "value");
  EXPECT_EQ("value", Get("key", 5));
  EXPECT_EQ("ABSENT", Get("other", 5));
}

TEST_F(MemTableTest, SequenceVisibility) {
  mem_.Add(10, kTypeValue, "k", "v10");
  mem_.Add(20, kTypeValue, "k", "v20");
  EXPECT_EQ("v20", Get("k", 25));
  EXPECT_EQ("v20", Get("k", 20));
  EXPECT_EQ("v10", Get("k", 15));
  EXPECT_EQ("ABSENT", Get("k", 5));
}

TEST_F(MemTableTest, DeletionVisible) {
  mem_.Add(1, kTypeValue, "k", "v");
  mem_.Add(2, kTypeDeletion, "k", "");
  EXPECT_EQ("DELETED", Get("k", 5));
  EXPECT_EQ("v", Get("k", 1));
}

TEST_F(MemTableTest, PrefixKeysDontCollide) {
  mem_.Add(1, kTypeValue, "abc", "1");
  mem_.Add(2, kTypeValue, "ab", "2");
  mem_.Add(3, kTypeValue, "abcd", "3");
  EXPECT_EQ("1", Get("abc", 10));
  EXPECT_EQ("2", Get("ab", 10));
  EXPECT_EQ("3", Get("abcd", 10));
}

TEST_F(MemTableTest, IteratorOrdered) {
  mem_.Add(3, kTypeValue, "c", "3");
  mem_.Add(1, kTypeValue, "a", "1");
  mem_.Add(2, kTypeValue, "b", "2");
  auto it = mem_.NewIterator();
  std::string keys;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    keys += ExtractUserKey(it->key()).ToString();
  }
  EXPECT_EQ("abc", keys);
}

TEST_F(MemTableTest, IteratorSeek) {
  for (int i = 0; i < 100; i += 2) {
    char key[16];
    snprintf(key, sizeof(key), "key%03d", i);
    mem_.Add(i + 1, kTypeValue, Slice(key, 6), "v");
  }
  auto it = mem_.NewIterator();
  // Seek to an internal key for key017 (odd: absent) at max seq.
  std::string target;
  AppendInternalKey(&target, ParsedInternalKey("key017", kMaxSequenceNumber,
                                               kValueTypeForSeek));
  it->Seek(target);
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("key018", ExtractUserKey(it->key()).ToString());
}

TEST_F(MemTableTest, MemoryUsageGrows) {
  size_t before = mem_.ApproximateMemoryUsage();
  for (int i = 0; i < 1000; i++) {
    mem_.Add(i + 1, kTypeValue, "key" + std::to_string(i),
             std::string(100, 'v'));
  }
  EXPECT_GT(mem_.ApproximateMemoryUsage(), before + 100 * 1000);
  EXPECT_EQ(1000u, mem_.NumEntries());
}

TEST_F(MemTableTest, EmptyKeyAndValue) {
  mem_.Add(1, kTypeValue, "", "");
  EXPECT_EQ("", Get("", 5));
}

TEST_F(MemTableTest, LargeValues) {
  std::string big(300000, 'B');
  mem_.Add(1, kTypeValue, "big", big);
  EXPECT_EQ(big, Get("big", 5));
}

TEST_F(MemTableTest, RandomizedAgainstModel) {
  Random64 rng(99);
  std::map<std::string, std::pair<uint64_t, std::string>> latest;
  for (uint64_t seq = 1; seq <= 3000; seq++) {
    std::string key = "k" + std::to_string(rng.Uniform(200));
    if (rng.Uniform(5) == 0) {
      mem_.Add(seq, kTypeDeletion, key, "");
      latest[key] = {seq, "DELETED"};
    } else {
      std::string value = "v" + std::to_string(seq);
      mem_.Add(seq, kTypeValue, key, value);
      latest[key] = {seq, value};
    }
  }
  for (const auto& [key, expected] : latest) {
    EXPECT_EQ(expected.second, Get(key, 3001)) << key;
  }
}

}  // namespace
}  // namespace elmo
