// StatsSampler and the "elmo.timeseries" property: interval deltas,
// ring bounds, JSON round-trip, and monotone virtual-clock timestamps
// on a SimEnv-backed DB.
#include <gtest/gtest.h>

#include <memory>

#include "env/mem_env.h"
#include "env/sim_env.h"
#include "lsm/db.h"
#include "lsm/stats_sampler.h"
#include "util/json.h"

namespace elmo::lsm {
namespace {

TEST(StatsSamplerTest, TicksProduceIntervalDeltas) {
  DbStats stats;
  StatsSampler sampler(&stats, /*interval_us=*/1000, /*capacity=*/64,
                       /*start_ts_us=*/0);
  EXPECT_FALSE(sampler.Due(999));
  EXPECT_TRUE(sampler.Due(1000));

  stats.Add(Ticker::kWriteCount, 100);
  stats.Measure(HistogramType::kWriteMicros, 50);
  EngineGauges g;
  g.num_levels = 3;
  g.level_files[0] = 2;
  ASSERT_TRUE(sampler.Tick(1000, g));

  stats.Add(Ticker::kWriteCount, 40);
  stats.Add(Ticker::kGetHit, 10);
  ASSERT_TRUE(sampler.Tick(2000, g));

  auto samples = sampler.Samples();
  ASSERT_EQ(samples.size(), 2u);
  // First interval: 100 writes over 1000us.
  EXPECT_EQ(samples[0].writes, 100u);
  EXPECT_DOUBLE_EQ(samples[0].ops_per_sec, 100 * 1e6 / 1000);
  // Second interval sees only the delta, not the cumulative counts.
  EXPECT_EQ(samples[1].writes, 40u);
  EXPECT_EQ(samples[1].gets, 10u);
  EXPECT_EQ(samples[1].ops, 50u);
  EXPECT_EQ(samples[1].l0_files, 2);
}

TEST(StatsSamplerTest, NotDueAndNonMonotoneTicksRejected) {
  DbStats stats;
  StatsSampler sampler(&stats, 1000, 64, 0);
  EngineGauges g;
  EXPECT_FALSE(sampler.Tick(500, g));  // not due yet
  ASSERT_TRUE(sampler.Tick(1500, g));
  EXPECT_FALSE(sampler.Tick(1500, g));  // same timestamp: rejected
  EXPECT_FALSE(sampler.Tick(1400, g));  // going backwards: rejected
  EXPECT_EQ(sampler.NumSamples(), 1u);
}

TEST(StatsSamplerTest, RingDropsOldestAndCounts) {
  DbStats stats;
  StatsSampler sampler(&stats, 10, /*capacity=*/4, 0);
  EngineGauges g;
  for (uint64_t t = 10; t <= 100; t += 10) {
    ASSERT_TRUE(sampler.Tick(t, g));
  }
  EXPECT_EQ(sampler.NumSamples(), 4u);
  EXPECT_EQ(sampler.DroppedSamples(), 6u);
  auto samples = sampler.Samples();
  EXPECT_EQ(samples.front().ts_us, 70u);  // oldest retained
  EXPECT_EQ(samples.back().ts_us, 100u);
}

TEST(StatsSamplerTest, JsonRoundTrip) {
  DbStats stats;
  StatsSampler sampler(&stats, 1000, 8, 0);
  stats.Add(Ticker::kWriteCount, 7);
  stats.Add(Ticker::kWriteStallMicros, 250);
  EngineGauges g;
  g.memtable_bytes = 12345;
  g.pending_compaction_bytes = 1 << 20;
  g.num_levels = 2;
  g.level_files[0] = 3;
  g.level_files[1] = 5;
  ASSERT_TRUE(sampler.Tick(1000, g));

  const std::string text = sampler.ToJson();
  json::Value doc;
  ASSERT_TRUE(json::Parse(text, &doc).ok()) << text;

  std::vector<IntervalSample> parsed;
  uint64_t interval = 0, dropped = 99;
  ASSERT_TRUE(TimeSeriesFromJson(text, &parsed, &interval, &dropped).ok());
  EXPECT_EQ(interval, 1000u);
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].ts_us, 1000u);
  EXPECT_EQ(parsed[0].writes, 7u);
  EXPECT_EQ(parsed[0].stall_micros, 250u);
  EXPECT_EQ(parsed[0].memtable_bytes, 12345u);
  EXPECT_EQ(parsed[0].pending_compaction_bytes, 1u << 20);
  ASSERT_EQ(parsed[0].num_levels, 2);
  EXPECT_EQ(parsed[0].level_files[0], 3);
  EXPECT_EQ(parsed[0].level_files[1], 5);
}

TEST(StatsSamplerTest, SeeksSurviveJsonRoundTrip) {
  DbStats stats;
  StatsSampler sampler(&stats, 1000, 8, 0);
  stats.Add(Ticker::kSeekCount, 13);
  stats.Add(Ticker::kGetHit, 2);
  EngineGauges g;
  ASSERT_TRUE(sampler.Tick(1000, g));
  std::vector<IntervalSample> parsed;
  ASSERT_TRUE(TimeSeriesFromJson(sampler.ToJson(), &parsed).ok());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].seeks, 13u);
  // Seeks are a separate stream: not folded into ops.
  EXPECT_EQ(parsed[0].ops, 2u);
}

TEST(StatsSamplerTest, LateTicksCounted) {
  DbStats stats;
  StatsSampler sampler(&stats, 1000, 64, 0);
  EngineGauges g;
  ASSERT_TRUE(sampler.Tick(1000, g));  // on time
  ASSERT_TRUE(sampler.Tick(2000, g));  // on time
  EXPECT_EQ(sampler.LateTicks(), 0u);
  ASSERT_TRUE(sampler.Tick(4100, g));  // 2100us gap >= 2 intervals: late
  EXPECT_EQ(sampler.LateTicks(), 1u);
  ASSERT_TRUE(sampler.Tick(5200, g));  // 1100us gap: back on cadence
  EXPECT_EQ(sampler.LateTicks(), 1u);
}

// Shutdown-ordering audit for the real-env sampler thread: open/close
// DBs rapidly with a 1ms cadence so destruction races a due tick. The
// destructor must join the thread before the info LOG closes — any
// ordering bug shows up as a crash/use-after-free under sanitizers.
TEST(StatsSamplerTest, RapidOpenCloseWithSamplerThread) {
  MemEnv env;
  for (int round = 0; round < 8; round++) {
    Options o;
    o.env = &env;
    o.create_if_missing = true;
    o.stats_sample_interval_ms = 1;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(o, "/rapid_db", &db).ok());
    const std::string value(128, 'v');
    for (int i = 0; i < 200; i++) {
      char key[32];
      snprintf(key, sizeof(key), "%08d", i);
      ASSERT_TRUE(db->Put({}, key, value).ok());
    }
    if (round % 2 == 1) {
      // Give the sampler thread a real chance to tick before teardown.
      env.SleepForMicroseconds(3000);
    }
    db.reset();  // joins the sampler thread, then closes the LOG
  }
}

TEST(StatsSamplerTest, SimEnvDbRecordsMonotoneVirtualTimeSeries) {
  auto hw = HardwareProfile::Make(2, 4, DeviceModel::NvmeSsd());
  auto env = std::make_unique<SimEnv>(hw, /*seed=*/7);
  Options o;
  o.env = env.get();
  o.create_if_missing = true;
  o.write_buffer_size = 256 << 10;
  o.stats_sample_interval_ms = 20;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());

  const std::string value(1024, 'v');
  for (int i = 0; i < 20000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "%016d", i);
    ASSERT_TRUE(db->Put({}, key, value).ok());
  }
  db->WaitForBackgroundWork();

  std::string text;
  ASSERT_TRUE(db->GetProperty("elmo.timeseries", &text));
  std::vector<IntervalSample> samples;
  uint64_t interval = 0;
  ASSERT_TRUE(TimeSeriesFromJson(text, &samples, &interval).ok()) << text;
  EXPECT_EQ(interval, 20'000u);
  ASSERT_GE(samples.size(), 3u) << text;

  // Virtual-clock timestamps must be strictly monotone, and every
  // interval must be positive.
  for (size_t i = 0; i < samples.size(); i++) {
    EXPECT_GT(samples[i].interval_us, 0u);
    if (i > 0) {
      EXPECT_GT(samples[i].ts_us, samples[i - 1].ts_us);
    }
  }

  // The series must account for the work: interval write counts sum to
  // at most the total, and at least one sample saw writes.
  uint64_t writes = 0;
  for (const auto& s : samples) writes += s.writes;
  EXPECT_GT(writes, 0u);
  EXPECT_LE(writes, 20000u);
  db.reset();
}

TEST(StatsSamplerTest, PropertyWithoutSamplerReturnsEmptySeries) {
  auto hw = HardwareProfile::Make(2, 4, DeviceModel::NvmeSsd());
  auto env = std::make_unique<SimEnv>(hw, 7);
  Options o;
  o.env = env.get();
  o.create_if_missing = true;  // stats_sample_interval_ms stays 0
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());
  std::string text;
  ASSERT_TRUE(db->GetProperty("elmo.timeseries", &text));
  std::vector<IntervalSample> samples;
  ASSERT_TRUE(TimeSeriesFromJson(text, &samples).ok());
  EXPECT_TRUE(samples.empty());
  db.reset();
}

}  // namespace
}  // namespace elmo::lsm
