// OnlineTuner golden tests on SimEnv bench runs: the phased workload's
// observe -> propose -> apply flow (deltas land within a few sampler
// intervals of each detected phase shift), byte-identical timelines
// across same-seed runs, and automatic rollback of a planted harmful
// delta that collapses throughput with no phase shift to blame.
#include "elmo/online_tuner.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bench_kit/bench_runner.h"
#include "env/device_model.h"
#include "env/hardware_profile.h"
#include "env/sim_env.h"
#include "llm/expert_llm.h"

namespace elmo::tune {
namespace {

// The bench runs /64-scaled capacities; the tuner's budget is the
// bench-scale share of what the box leaves after the OS baseline.
uint64_t BenchBudget(const HardwareProfile& hw) {
  return (hw.memory_bytes - SimEnv::kOsBaselineBytes) /
         bench::kCapacityScale;
}

struct OnlineRun {
  bench::BenchResult result;
  std::unique_ptr<OnlineTuner> tuner;
};

// One phased bench run with a live tuner on the hook; `llm` may be
// null (heuristic proposals only).
OnlineRun RunPhasedOnline(llm::LlmClient* llm) {
  OnlineRun run;
  const auto hw = HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd());
  bench::BenchRunner runner(hw, /*seed=*/42);
  OnlineTunerConfig cfg;
  cfg.memory_budget_bytes = BenchBudget(hw);
  lsm::DB* tuner_db = nullptr;
  auto hook = [&](lsm::DB* db, uint64_t) {
    if (db != tuner_db) {
      tuner_db = db;
      run.tuner = std::make_unique<OnlineTuner>(db, llm, cfg);
    }
    run.tuner->Poll();
  };
  run.result = runner.RunWithHook(bench::WorkloadSpec::Phased(),
                                  lsm::Options(), hook);
  return run;
}

std::string StepString(const TimelineStep& step, const char* key) {
  auto it = step.detail.find(key);
  if (it == step.detail.end() || !it->second.is_string()) return "";
  return it->second.as_string();
}

TEST(OnlineTuner, PhasedSessionAppliesDeltasAtEachShift) {
  llm::ExpertConfig ecfg;
  ecfg.seed = 42;
  llm::SimulatedExpertLlm expert(ecfg);
  OnlineRun run = RunPhasedOnline(&expert);
  ASSERT_NE(nullptr, run.tuner);

  EXPECT_GE(run.tuner->applied_deltas(), 2);
  EXPECT_EQ(0, run.tuner->rollbacks());
  EXPECT_EQ(0, run.tuner->oscillations());

  // Every detected phase shift gets a delta within 3 sampler intervals
  // (the bench sampler runs at 250 ms).
  const uint64_t kWindowUs = 3 * 250000;
  const auto& steps = run.tuner->timeline();
  int shifts = 0;
  for (size_t i = 0; i < steps.size(); i++) {
    if (steps[i].kind != "observe" ||
        StepString(steps[i], "trigger").rfind("phase shift", 0) != 0) {
      continue;
    }
    shifts++;
    bool applied = false;
    for (size_t j = i + 1; j < steps.size(); j++) {
      if (steps[j].ts_us > steps[i].ts_us + kWindowUs) break;
      if (steps[j].kind == "apply" &&
          steps[j].detail.find("error") == steps[j].detail.end()) {
        applied = true;
        break;
      }
    }
    EXPECT_TRUE(applied) << "phase shift at t=" << steps[i].ts_us
                         << "us got no delta within 3 intervals";
  }
  // The three-phase workload has two mix changes; the detector must
  // have confirmed at least one for the golden flow to mean anything.
  EXPECT_GE(shifts, 1);

  // The session also kicks off a cold-start fit before any shift.
  ASSERT_FALSE(steps.empty());
  EXPECT_EQ("observe", steps.front().kind);
  EXPECT_EQ("session start: fitting the live mix",
            StepString(steps.front(), "trigger"));
}

TEST(OnlineTuner, TimelineIsDeterministicAcrossSameSeedRuns) {
  llm::ExpertConfig ecfg;
  ecfg.seed = 42;
  llm::SimulatedExpertLlm expert_a(ecfg);
  llm::SimulatedExpertLlm expert_b(ecfg);
  OnlineRun a = RunPhasedOnline(&expert_a);
  OnlineRun b = RunPhasedOnline(&expert_b);
  ASSERT_NE(nullptr, a.tuner);
  ASSERT_NE(nullptr, b.tuner);
  EXPECT_EQ(a.tuner->TimelineJson(), b.tuner->TimelineJson());
  EXPECT_EQ(a.result.ops_per_sec, b.result.ops_per_sec);
}

TEST(OnlineTuner, PlantedHarmfulDeltaIsRolledBack) {
  // Steady fillrandom: no phase shift ever excuses a collapse. Once the
  // organic cold-start delta is out, plant a 64 KiB write buffer — a
  // flush-storm config the verdict machinery must revert on its own.
  const auto hw = HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd());
  bench::BenchRunner runner(hw, /*seed=*/42);
  OnlineTunerConfig cfg;
  cfg.memory_budget_bytes = BenchBudget(hw);
  std::unique_ptr<OnlineTuner> tuner;
  lsm::DB* tuner_db = nullptr;
  bool planted = false;
  auto hook = [&](lsm::DB* db, uint64_t) {
    if (db != tuner_db) {
      tuner_db = db;
      tuner = std::make_unique<OnlineTuner>(db, nullptr, cfg);
    }
    tuner->Poll();
    if (!planted) {
      for (const TimelineStep& step : tuner->timeline()) {
        if (step.kind == "apply") {
          ASSERT_TRUE(
              tuner->InjectDelta({{"write_buffer_size", "65536"}}, "planted")
                  .ok());
          planted = true;
          break;
        }
      }
    }
  };
  runner.RunWithHook(bench::WorkloadSpec::FillRandom(240000),
                     lsm::Options(), hook);
  ASSERT_NE(nullptr, tuner);
  ASSERT_TRUE(planted);

  EXPECT_GE(tuner->rollbacks(), 1);
  bool saw_rollback = false;
  for (const TimelineStep& step : tuner->timeline()) {
    if (step.kind == "rollback" && StepString(step, "origin") == "planted") {
      saw_rollback = true;
    }
  }
  EXPECT_TRUE(saw_rollback);
  // The planted delta is blacklisted, not retried: no oscillation loop.
  EXPECT_EQ(0, tuner->oscillations());
}

}  // namespace
}  // namespace elmo::tune
