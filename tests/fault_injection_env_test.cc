// FaultInjectionEnv + kill-point registry: unsynced-region tracking
// across rename/reuse/remove, crash drop modes, filesystem power gating,
// seeded error injection, equal-seed schedule determinism, and a
// whole-DB crash at the CURRENT swap.
#include "fault/fault_injection_env.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "env/mem_env.h"
#include "fault/kill_point.h"
#include "lsm/db.h"
#include "util/random.h"

namespace elmo {
namespace {

class FaultInjectionEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::make_unique<MemEnv>();
    fault_ = std::make_unique<FaultInjectionEnv>(base_.get(), 42);
    ASSERT_TRUE(fault_->CreateDirIfMissing("/d").ok());
  }

  void TearDown() override { KillPointRegistry::Instance().Disarm(); }

  // Appends `data` through the fault env; returns the open file.
  std::unique_ptr<WritableFile> Create(const std::string& path,
                                       const std::string& data) {
    std::unique_ptr<WritableFile> f;
    EXPECT_TRUE(fault_->NewWritableFile(path, &f).ok());
    EXPECT_TRUE(f->Append(data).ok());
    return f;
  }

  std::string Contents(const std::string& path) {
    std::string data;
    EXPECT_TRUE(fault_->ReadFileToString(path, &data).ok());
    return data;
  }

  std::unique_ptr<MemEnv> base_;
  std::unique_ptr<FaultInjectionEnv> fault_;
};

TEST_F(FaultInjectionEnvTest, SyncAdvancesDurablePrefix) {
  auto f = Create("/d/f", "0123456789");
  EXPECT_EQ(10u, fault_->TrackedSize("/d/f"));
  EXPECT_EQ(0u, fault_->SyncedBytes("/d/f"));
  ASSERT_TRUE(f->Sync().ok());
  EXPECT_EQ(10u, fault_->SyncedBytes("/d/f"));
  ASSERT_TRUE(f->Append("abcde").ok());
  EXPECT_EQ(15u, fault_->TrackedSize("/d/f"));
  EXPECT_EQ(10u, fault_->SyncedBytes("/d/f"));  // tail not durable yet
  ASSERT_TRUE(f->Close().ok());

  ASSERT_TRUE(fault_->DropUnsyncedData(DropMode::kDropAll).ok());
  EXPECT_EQ("0123456789", Contents("/d/f"));
  EXPECT_EQ(fault_->counters().files_dropped, 1u);
  EXPECT_EQ(fault_->counters().bytes_dropped, 5u);
}

TEST_F(FaultInjectionEnvTest, RangeSyncAdvancesPartially) {
  auto f = Create("/d/f", "0123456789");
  ASSERT_TRUE(f->RangeSync(4).ok());
  // MemEnv's WritableFile inherits the default RangeSync (= full Sync),
  // but the tracker must still record only what the caller asked for.
  EXPECT_EQ(4u, fault_->SyncedBytes("/d/f"));
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(fault_->DropUnsyncedData(DropMode::kDropAll).ok());
  EXPECT_EQ("0123", Contents("/d/f"));
}

TEST_F(FaultInjectionEnvTest, RenameMovesTrackingState) {
  auto f = Create("/d/old", "0123456789");
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("tail").ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(fault_->RenameFile("/d/old", "/d/new").ok());
  EXPECT_FALSE(fault_->IsTracked("/d/old"));
  ASSERT_TRUE(fault_->IsTracked("/d/new"));
  EXPECT_EQ(10u, fault_->SyncedBytes("/d/new"));
  ASSERT_TRUE(fault_->DropUnsyncedData(DropMode::kDropAll).ok());
  EXPECT_EQ("0123456789", Contents("/d/new"));
}

TEST_F(FaultInjectionEnvTest, ReusingPathResetsState) {
  auto f = Create("/d/f", "old-old-old");
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Close().ok());
  // Re-creating the file truncates: the old synced watermark must not
  // leak into the new incarnation.
  auto g = Create("/d/f", "new");
  EXPECT_EQ(3u, fault_->TrackedSize("/d/f"));
  EXPECT_EQ(0u, fault_->SyncedBytes("/d/f"));
  ASSERT_TRUE(g->Close().ok());
  ASSERT_TRUE(fault_->DropUnsyncedData(DropMode::kDropAll).ok());
  EXPECT_EQ("", Contents("/d/f"));
}

TEST_F(FaultInjectionEnvTest, RemoveFileUntracks) {
  auto f = Create("/d/f", "data");
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(fault_->RemoveFile("/d/f").ok());
  EXPECT_FALSE(fault_->IsTracked("/d/f"));
}

TEST_F(FaultInjectionEnvTest, TornTailKeepsPrefixBetweenSyncedAndSize) {
  auto f = Create("/d/f", std::string(1000, 'a'));
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append(std::string(9000, 'b')).ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(fault_->DropUnsyncedData(DropMode::kTornTail).ok());
  const std::string after = Contents("/d/f");
  EXPECT_GE(after.size(), 1000u);
  EXPECT_LE(after.size(), 10000u);
  EXPECT_EQ(std::string(1000, 'a'), after.substr(0, 1000));
}

TEST_F(FaultInjectionEnvTest, PartialPageCutsAtPageBoundary) {
  auto f = Create("/d/f", std::string(1000, 'a'));
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append(std::string(19480, 'b')).ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(fault_->DropUnsyncedData(DropMode::kPartialPage).ok());
  const size_t after = Contents("/d/f").size();
  // Cut at a 4 KiB boundary unless that would drop synced bytes.
  EXPECT_TRUE(after % 4096 == 0 || after == 1000u) << after;
  EXPECT_GE(after, 1000u);
}

TEST_F(FaultInjectionEnvTest, InactiveFilesystemRefusesMutations) {
  auto f = Create("/d/f", "synced");
  ASSERT_TRUE(f->Sync().ok());
  fault_->SetFilesystemActive(false);
  EXPECT_TRUE(f->Append("x").IsIOError());
  EXPECT_TRUE(f->Sync().IsIOError());
  EXPECT_TRUE(f->Close().ok());  // closing a dead handle must not fail

  std::unique_ptr<WritableFile> g;
  EXPECT_TRUE(fault_->NewWritableFile("/d/g", &g).IsIOError());
  EXPECT_TRUE(fault_->RemoveFile("/d/f").IsIOError());
  EXPECT_TRUE(fault_->RenameFile("/d/f", "/d/h").IsIOError());

  // Reads survive the power cut (the data is on the platter).
  EXPECT_EQ("synced", Contents("/d/f"));

  fault_->SetFilesystemActive(true);
  auto h = Create("/d/g", "after reboot");
  EXPECT_TRUE(h->Close().ok());
}

TEST_F(FaultInjectionEnvTest, SeededReadErrorsFireAtConfiguredRate) {
  auto f = Create("/d/000005.ldb", std::string(4096, 'x'));
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Close().ok());

  FaultInjectionConfig cfg;
  cfg.read_error = 1.0;
  fault_->SetErrorInjection(cfg);
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(fault_->NewRandomAccessFile("/d/000005.ldb", &r).ok());
  char scratch[64];
  Slice result;
  EXPECT_TRUE(r->Read(0, 64, &result, scratch).IsIOError());
  EXPECT_GE(fault_->counters().read_errors, 1u);

  fault_->ClearErrorInjection();
  EXPECT_TRUE(r->Read(0, 64, &result, scratch).ok());
  EXPECT_EQ(64u, result.size());
}

TEST_F(FaultInjectionEnvTest, ShortReadsAndBitFlips) {
  auto f = Create("/d/000007.ldb", std::string(4096, 'x'));
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Close().ok());

  FaultInjectionConfig cfg;
  cfg.short_read = 1.0;
  fault_->SetErrorInjection(cfg);
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(fault_->NewRandomAccessFile("/d/000007.ldb", &r).ok());
  char scratch[128];
  Slice result;
  ASSERT_TRUE(r->Read(0, 128, &result, scratch).ok());
  EXPECT_LT(result.size(), 128u);
  EXPECT_GE(fault_->counters().short_reads, 1u);

  cfg.short_read = 0;
  cfg.read_corruption = 1.0;
  fault_->SetErrorInjection(cfg);
  ASSERT_TRUE(r->Read(0, 128, &result, scratch).ok());
  ASSERT_EQ(128u, result.size());
  EXPECT_NE(std::string(128, 'x'), result.ToString());
  EXPECT_GE(fault_->counters().read_corruptions, 1u);
  // Exactly one bit differs.
  int bits = 0;
  for (size_t i = 0; i < 128; i++) {
    unsigned char diff =
        static_cast<unsigned char>(result[i]) ^ 'x';
    while (diff) {
      bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(1, bits);
}

TEST_F(FaultInjectionEnvTest, KindFilterLimitsInjection) {
  auto f = Create("/d/000009.log", std::string(512, 'w'));
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Close().ok());

  FaultInjectionConfig cfg;
  cfg.read_error = 1.0;
  cfg.kinds = {IOFileKind::kSstData};  // SSTs only; the WAL is exempt
  fault_->SetErrorInjection(cfg);
  std::unique_ptr<SequentialFile> r;
  ASSERT_TRUE(fault_->NewSequentialFile("/d/000009.log", &r).ok());
  char scratch[64];
  Slice result;
  EXPECT_TRUE(r->Read(64, &result, scratch).ok());
  EXPECT_EQ(0u, fault_->counters().read_errors);
}

TEST_F(FaultInjectionEnvTest, EqualSeedsGiveIdenticalFaultSchedules) {
  auto run = [](uint64_t seed) {
    MemEnv base;
    FaultInjectionEnv fault(&base, seed);
    EXPECT_TRUE(fault.CreateDirIfMissing("/d").ok());
    std::unique_ptr<WritableFile> f;
    EXPECT_TRUE(fault.NewWritableFile("/d/000011.ldb", &f).ok());
    EXPECT_TRUE(f->Append(std::string(8192, 'q')).ok());
    EXPECT_TRUE(f->Sync().ok());
    EXPECT_TRUE(f->Close().ok());

    FaultInjectionConfig cfg;
    cfg.read_error = 0.3;
    cfg.short_read = 0.2;
    fault.SetErrorInjection(cfg);
    std::unique_ptr<RandomAccessFile> r;
    EXPECT_TRUE(fault.NewRandomAccessFile("/d/000011.ldb", &r).ok());
    std::string pattern;
    char scratch[256];
    for (int i = 0; i < 200; i++) {
      Slice result;
      Status s = r->Read((i * 37) % 8000, 128, &result, scratch);
      pattern += s.ok() ? (result.size() == 128 ? 'o' : 's') : 'e';
    }
    return pattern;
  };
  const std::string a = run(1234);
  const std::string b = run(1234);
  const std::string c = run(99);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide over 200 draws
  EXPECT_NE(std::string::npos, a.find('e'));
  EXPECT_NE(std::string::npos, a.find('o'));
}

TEST(KillPointRegistryTest, ArmSkipFireDisarm) {
  auto& reg = KillPointRegistry::Instance();
  int fires = 0;
  reg.Arm("test:point", [&fires] { fires++; }, /*skip=*/2);
  EXPECT_TRUE(reg.armed());
  ELMO_KILL_POINT("test:other");  // wrong name: no effect
  ELMO_KILL_POINT("test:point");  // skip 1
  ELMO_KILL_POINT("test:point");  // skip 2
  EXPECT_EQ(0, fires);
  EXPECT_FALSE(reg.fired());
  ELMO_KILL_POINT("test:point");  // fires and disarms
  EXPECT_EQ(1, fires);
  EXPECT_TRUE(reg.fired());
  EXPECT_EQ("test:point", reg.fired_point());
  EXPECT_FALSE(reg.armed());
  ELMO_KILL_POINT("test:point");  // disarmed: no effect
  EXPECT_EQ(1, fires);
  reg.Disarm();
}

TEST(KillPointRegistryTest, TrackingRecordsSeenPoints) {
  auto& reg = KillPointRegistry::Instance();
  reg.SetTracking(true);
  ELMO_KILL_POINT("track:a");
  ELMO_KILL_POINT("track:b");
  ELMO_KILL_POINT("track:a");
  auto seen = reg.SeenPoints();
  reg.SetTracking(false);
  int a = 0, b = 0;
  for (const auto& p : seen) {
    if (p == "track:a") a++;
    if (p == "track:b") b++;
  }
  EXPECT_EQ(1, a);  // deduplicated
  EXPECT_EQ(1, b);
}

TEST_F(FaultInjectionEnvTest, CrashAtCurrentSwapIsRecoverable) {
  // End-to-end: kill the machine in the middle of the CURRENT swap that
  // recovery performs, then verify the DB reopens from the old MANIFEST
  // with every synced write intact.
  lsm::Options opts;
  opts.env = fault_.get();
  opts.create_if_missing = true;
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(opts, "/cdb", &db).ok());
  lsm::WriteOptions sync_write;
  sync_write.sync = true;
  ASSERT_TRUE(db->Put(sync_write, "k", "v").ok());
  db.reset();

  // Reopen replays the WAL into L0 and installs a new MANIFEST; cut the
  // power right before the CURRENT rename.
  auto& reg = KillPointRegistry::Instance();
  reg.Arm("current:before_rename",
          [env = fault_.get()] { env->CrashNow(); });
  Status s = lsm::DB::Open(opts, "/cdb", &db);
  EXPECT_FALSE(s.ok()) << "open should fail once power is cut";
  EXPECT_TRUE(reg.fired());
  reg.Disarm();
  db.reset();

  ASSERT_TRUE(fault_->DropUnsyncedData(DropMode::kDropAll).ok());
  fault_->SetFilesystemActive(true);
  ASSERT_TRUE(lsm::DB::Open(opts, "/cdb", &db).ok());
  std::string value;
  ASSERT_TRUE(db->Get({}, "k", &value).ok());
  EXPECT_EQ("v", value);
}

}  // namespace
}  // namespace elmo
