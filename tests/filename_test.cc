#include "lsm/filename.h"

#include <gtest/gtest.h>

namespace elmo {
namespace {

TEST(FileName, Construction) {
  EXPECT_EQ("/db/000007.log", LogFileName("/db", 7));
  EXPECT_EQ("/db/000123.sst", TableFileName("/db", 123));
  EXPECT_EQ("/db/MANIFEST-000005", DescriptorFileName("/db", 5));
  EXPECT_EQ("/db/CURRENT", CurrentFileName("/db"));
  EXPECT_EQ("/db/LOCK", LockFileName("/db"));
  EXPECT_EQ("/db/LOG", InfoLogFileName("/db"));
}

TEST(FileName, ParseValid) {
  uint64_t number;
  FileType type;

  ASSERT_TRUE(ParseFileName("000007.log", &number, &type));
  EXPECT_EQ(7u, number);
  EXPECT_EQ(FileType::kLogFile, type);

  ASSERT_TRUE(ParseFileName("000123.sst", &number, &type));
  EXPECT_EQ(123u, number);
  EXPECT_EQ(FileType::kTableFile, type);

  ASSERT_TRUE(ParseFileName("MANIFEST-000005", &number, &type));
  EXPECT_EQ(5u, number);
  EXPECT_EQ(FileType::kDescriptorFile, type);

  ASSERT_TRUE(ParseFileName("CURRENT", &number, &type));
  EXPECT_EQ(FileType::kCurrentFile, type);
  ASSERT_TRUE(ParseFileName("LOCK", &number, &type));
  EXPECT_EQ(FileType::kLockFile, type);
  ASSERT_TRUE(ParseFileName("LOG", &number, &type));
  EXPECT_EQ(FileType::kInfoLogFile, type);
  ASSERT_TRUE(ParseFileName("000009.dbtmp", &number, &type));
  EXPECT_EQ(FileType::kTempFile, type);
}

TEST(FileName, RoundTripThroughParse) {
  uint64_t number;
  FileType type;
  for (uint64_t n : {0ull, 1ull, 99999ull, 12345678ull}) {
    std::string log = LogFileName("/d", n).substr(3);
    ASSERT_TRUE(ParseFileName(log, &number, &type));
    EXPECT_EQ(n, number);
    EXPECT_EQ(FileType::kLogFile, type);
  }
}

TEST(FileName, ParseRejectsGarbage) {
  uint64_t number;
  FileType type;
  EXPECT_FALSE(ParseFileName("", &number, &type));
  EXPECT_FALSE(ParseFileName("foo", &number, &type));
  EXPECT_FALSE(ParseFileName("foo-dx-100.log", &number, &type));
  EXPECT_FALSE(ParseFileName(".log", &number, &type));
  EXPECT_FALSE(ParseFileName("100.unknowntype", &number, &type));
  EXPECT_FALSE(ParseFileName("MANIFEST", &number, &type));
  EXPECT_FALSE(ParseFileName("MANIFEST-abc", &number, &type));
}

}  // namespace
}  // namespace elmo
