#include "lsm/options_file.h"

#include <gtest/gtest.h>

#include "env/mem_env.h"
#include "lsm/db.h"
#include "lsm/options_schema.h"

namespace elmo::lsm {
namespace {

TEST(OptionsFile, SaveLoadRoundTrip) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing("/d").ok());
  Options tuned;
  tuned.max_background_jobs = 6;
  tuned.write_buffer_size = 32ull << 20;
  tuned.bloom_filter_bits_per_key = 10;
  tuned.compaction_style = CompactionStyle::kUniversal;
  ASSERT_TRUE(SaveOptionsFile(&env, "/d/OPTIONS-000001", tuned).ok());

  Options loaded;
  ASSERT_TRUE(LoadOptionsFile(&env, "/d/OPTIONS-000001", &loaded).ok());
  for (const auto& info : OptionsSchema::Instance().all()) {
    EXPECT_EQ(info.get(tuned), info.get(loaded)) << info.name;
  }
}

TEST(OptionsFile, LoadReportsUnknownAndInvalid) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing("/d").ok());
  std::string text =
      "[DBOptions]\n"
      "max_background_jobs = 4\n"
      "mystery_option = 1\n"
      "[CFOptions]\n"
      "write_buffer_size = banana\n";
  ASSERT_TRUE(env.WriteStringToFile(text, "/d/opts").ok());
  Options loaded;
  std::vector<std::string> unknown, invalid;
  ASSERT_TRUE(
      LoadOptionsFile(&env, "/d/opts", &loaded, &unknown, &invalid).ok());
  EXPECT_EQ(4, loaded.max_background_jobs);
  ASSERT_EQ(1u, unknown.size());
  EXPECT_EQ("mystery_option", unknown[0]);
  EXPECT_EQ(1u, invalid.size());
}

TEST(OptionsFile, LoadMissingFileFails) {
  MemEnv env;
  Options loaded;
  EXPECT_FALSE(LoadOptionsFile(&env, "/nope", &loaded).ok());
}

TEST(OptionsFile, FindLatestPicksHighestNumber) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing("/d").ok());
  Options o;
  ASSERT_TRUE(SaveOptionsFile(&env, OptionsFileName("/d", 3), o).ok());
  ASSERT_TRUE(SaveOptionsFile(&env, OptionsFileName("/d", 12), o).ok());
  ASSERT_TRUE(SaveOptionsFile(&env, OptionsFileName("/d", 7), o).ok());
  EXPECT_EQ("/d/OPTIONS-000012", FindLatestOptionsFile(&env, "/d"));
}

TEST(OptionsFile, FindLatestEmptyDir) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing("/d").ok());
  EXPECT_EQ("", FindLatestOptionsFile(&env, "/d"));
}

TEST(OptionsFile, DbOpenPersistsActiveConfig) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.create_if_missing = true;
  options.max_background_jobs = 5;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  std::string latest = FindLatestOptionsFile(&env, "/db");
  ASSERT_FALSE(latest.empty());
  Options loaded;
  ASSERT_TRUE(LoadOptionsFile(&env, latest, &loaded).ok());
  EXPECT_EQ(5, loaded.max_background_jobs);
}

TEST(OptionsFile, ReopenReplacesOldOptionsFile) {
  MemEnv env;
  Options options;
  options.env = &env;
  options.create_if_missing = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());
  db.reset();
  options.max_background_jobs = 7;
  ASSERT_TRUE(DB::Open(options, "/db", &db).ok());

  // Only one OPTIONS file remains, and it carries the new value.
  std::vector<std::string> children;
  ASSERT_TRUE(env.GetChildren("/db", &children).ok());
  int options_files = 0;
  for (const auto& c : children) {
    if (c.rfind("OPTIONS-", 0) == 0) options_files++;
  }
  EXPECT_EQ(1, options_files);
  Options loaded;
  ASSERT_TRUE(
      LoadOptionsFile(&env, FindLatestOptionsFile(&env, "/db"), &loaded)
          .ok());
  EXPECT_EQ(7, loaded.max_background_jobs);
}

TEST(OptionsFile, TunedSessionOutputLoadsBack) {
  // The tuning loop's final_options_file text must load into a usable
  // Options — the handoff the paper's framework performs.
  MemEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing("/d").ok());
  Options tuned;
  tuned.wal_bytes_per_sync = 1 << 20;
  std::string text = OptionsSchema::Instance().ToIniText(tuned);
  ASSERT_TRUE(env.WriteStringToFile(text, "/d/final").ok());
  Options loaded;
  std::vector<std::string> unknown, invalid;
  ASSERT_TRUE(
      LoadOptionsFile(&env, "/d/final", &loaded, &unknown, &invalid).ok());
  EXPECT_TRUE(unknown.empty());
  EXPECT_TRUE(invalid.empty());
  EXPECT_EQ(1u << 20, loaded.wal_bytes_per_sync);
}

}  // namespace
}  // namespace elmo::lsm
