// VersionEdit encoding, FindFile/overlap helpers, compaction scoring
// and picking (level + universal).
#include <gtest/gtest.h>

#include "env/mem_env.h"
#include "lsm/version_set.h"

namespace elmo::lsm {
namespace {

TEST(VersionEdit, EncodeDecodeRoundTrip) {
  VersionEdit edit;
  for (int i = 0; i < 4; i++) {
    edit.AddFile(3, 300 + i, 555 + i,
                 InternalKey("aoo" + std::to_string(i), 100 + i, kTypeValue),
                 InternalKey("zoo" + std::to_string(i), 200 + i,
                             kTypeDeletion));
    edit.RemoveFile(4, 700 + i);
  }
  edit.SetComparatorName("foo-comparator");
  edit.SetLogNumber(8);
  edit.SetNextFile(9);
  edit.SetLastSequence(10);

  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit parsed;
  ASSERT_TRUE(parsed.DecodeFrom(encoded).ok());
  std::string reencoded;
  parsed.EncodeTo(&reencoded);
  EXPECT_EQ(encoded, reencoded);
  EXPECT_EQ("foo-comparator", parsed.comparator_);
  EXPECT_EQ(8u, parsed.log_number_);
  EXPECT_EQ(4u, parsed.new_files_.size());
  EXPECT_EQ(4u, parsed.deleted_files_.size());
}

TEST(VersionEdit, DecodeRejectsGarbage) {
  VersionEdit edit;
  EXPECT_FALSE(edit.DecodeFrom(Slice("\x42\x99garbage")).ok());
}

// Harness exposing FindFile / SomeFileOverlapsRange over a synthetic
// file list.
class FindFileTest : public ::testing::Test {
 protected:
  void Add(const char* smallest, const char* largest,
           SequenceNumber smallest_seq = 100,
           SequenceNumber largest_seq = 100) {
    auto f = std::make_shared<FileMetaData>();
    f->number = files_.size() + 1;
    f->smallest = InternalKey(smallest, smallest_seq, kTypeValue);
    f->largest = InternalKey(largest, largest_seq, kTypeValue);
    files_.push_back(f);
  }

  int Find(const char* key) {
    InternalKey target(key, 100, kTypeValue);
    return FindFile(icmp_, files_, target.Encode());
  }

  bool Overlaps(const char* smallest, const char* largest) {
    Slice s(smallest != nullptr ? smallest : "");
    Slice l(largest != nullptr ? largest : "");
    return SomeFileOverlapsRange(icmp_, /*disjoint=*/true, files_,
                                 (smallest != nullptr ? &s : nullptr),
                                 (largest != nullptr ? &l : nullptr));
  }

  InternalKeyComparator icmp_{BytewiseComparator()};
  std::vector<FileRef> files_;
};

TEST_F(FindFileTest, Empty) {
  EXPECT_EQ(0, Find("foo"));
  EXPECT_FALSE(Overlaps("a", "z"));
  EXPECT_FALSE(Overlaps(nullptr, nullptr));
}

TEST_F(FindFileTest, Single) {
  Add("p", "q");
  EXPECT_EQ(0, Find("a"));
  EXPECT_EQ(0, Find("p"));
  EXPECT_EQ(0, Find("q"));
  EXPECT_EQ(1, Find("q1"));
  EXPECT_EQ(1, Find("z"));

  EXPECT_FALSE(Overlaps("a", "b"));
  EXPECT_FALSE(Overlaps("z1", "z2"));
  EXPECT_TRUE(Overlaps("a", "p"));
  EXPECT_TRUE(Overlaps("p1", "p2"));
  EXPECT_TRUE(Overlaps("q", "z"));
  EXPECT_TRUE(Overlaps(nullptr, "p"));
  EXPECT_TRUE(Overlaps("q", nullptr));
  EXPECT_TRUE(Overlaps(nullptr, nullptr));
  EXPECT_FALSE(Overlaps(nullptr, "b"));
  EXPECT_FALSE(Overlaps("z", nullptr));
}

TEST_F(FindFileTest, Multiple) {
  Add("150", "200");
  Add("200", "250");
  Add("300", "350");
  Add("400", "450");
  EXPECT_EQ(0, Find("100"));
  EXPECT_EQ(0, Find("150"));
  EXPECT_EQ(1, Find("201"));
  EXPECT_EQ(2, Find("251"));
  EXPECT_EQ(2, Find("301"));
  EXPECT_EQ(3, Find("351"));
  EXPECT_EQ(4, Find("451"));

  EXPECT_TRUE(Overlaps("100", "150"));
  EXPECT_FALSE(Overlaps("251", "299"));
  EXPECT_TRUE(Overlaps("251", "300"));
  EXPECT_TRUE(Overlaps("100", "500"));
}

// Compaction picking through a real VersionSet on MemEnv.
class VersionSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options_.env = &env_;
    options_.level0_file_num_compaction_trigger = 4;
    icmp_ = std::make_unique<InternalKeyComparator>(BytewiseComparator());
    table_cache_ = std::make_unique<TableCache>("/vdb", options_, icmp_.get(),
                                                nullptr, nullptr, 100);
    vset_ = std::make_unique<VersionSet>("/vdb", &options_,
                                         table_cache_.get(), icmp_.get());
    ASSERT_TRUE(env_.CreateDirIfMissing("/vdb").ok());
  }

  // Install a file at `level` spanning [smallest, largest].
  void AddFile(int level, const char* smallest, const char* largest,
               uint64_t size = 1 << 20) {
    VersionEdit edit;
    uint64_t number = vset_->NewFileNumber();
    edit.AddFile(level, number, size,
                 InternalKey(smallest, 1, kTypeValue),
                 InternalKey(largest, 1, kTypeValue));
    ASSERT_TRUE(vset_->LogAndApply(&edit).ok());
  }

  MemEnv env_;
  Options options_;
  std::unique_ptr<InternalKeyComparator> icmp_;
  std::unique_ptr<TableCache> table_cache_;
  std::unique_ptr<VersionSet> vset_;
};

TEST_F(VersionSetTest, NoCompactionWhenEmpty) {
  EXPECT_FALSE(vset_->NeedsCompaction());
  EXPECT_EQ(nullptr, vset_->PickCompaction());
}

TEST_F(VersionSetTest, L0TriggerFiresAtThreshold) {
  AddFile(0, "a", "m");
  AddFile(0, "b", "n");
  AddFile(0, "c", "o");
  EXPECT_FALSE(vset_->NeedsCompaction());
  AddFile(0, "d", "p");
  EXPECT_TRUE(vset_->NeedsCompaction());

  auto c = vset_->PickCompaction();
  ASSERT_NE(nullptr, c);
  EXPECT_EQ(0, c->level());
  EXPECT_EQ(1, c->output_level());
  // All overlapping L0 files come along.
  EXPECT_EQ(4, c->num_input_files(0));
}

TEST_F(VersionSetTest, L0CompactionPullsOverlappingL1) {
  AddFile(1, "a", "e");
  AddFile(1, "f", "j");
  AddFile(1, "x", "z");
  for (int i = 0; i < 4; i++) {
    AddFile(0, "b", "g");  // overlaps first two L1 files only
  }
  auto c = vset_->PickCompaction();
  ASSERT_NE(nullptr, c);
  EXPECT_EQ(4, c->num_input_files(0));
  EXPECT_EQ(2, c->num_input_files(1));
}

TEST_F(VersionSetTest, SizeTriggeredLevelCompaction) {
  // L1 target is max_bytes_for_level_base (256 MiB); exceed it.
  AddFile(1, "a", "b", 200ull << 20);
  AddFile(1, "c", "d", 200ull << 20);
  EXPECT_TRUE(vset_->NeedsCompaction());
  auto c = vset_->PickCompaction();
  ASSERT_NE(nullptr, c);
  EXPECT_EQ(1, c->level());
  EXPECT_EQ(1, c->num_input_files(0));
  // No overlap in empty L2: trivially movable.
  EXPECT_TRUE(c->IsTrivialMove());
}

TEST_F(VersionSetTest, DisableAutoCompactionsSuppressesPicking) {
  options_.disable_auto_compactions = true;
  for (int i = 0; i < 10; i++) AddFile(0, "a", "z");
  EXPECT_FALSE(vset_->NeedsCompaction());
  EXPECT_EQ(nullptr, vset_->PickCompaction());
}

TEST_F(VersionSetTest, UniversalMergesAllL0Runs) {
  options_.compaction_style = CompactionStyle::kUniversal;
  for (int i = 0; i < 4; i++) AddFile(0, "a", "z");
  EXPECT_TRUE(vset_->NeedsCompaction());
  auto c = vset_->PickCompaction();
  ASSERT_NE(nullptr, c);
  EXPECT_EQ(0, c->level());
  EXPECT_EQ(0, c->output_level());
  EXPECT_EQ(4, c->num_input_files(0));
  EXPECT_FALSE(c->IsTrivialMove());
}

TEST_F(VersionSetTest, PendingCompactionBytesGrowWithDebt) {
  uint64_t before = vset_->EstimatePendingCompactionBytes();
  AddFile(1, "a", "b", 400ull << 20);  // above the 256 MiB target
  AddFile(1, "c", "d", 400ull << 20);
  EXPECT_GT(vset_->EstimatePendingCompactionBytes(), before);
}

TEST_F(VersionSetTest, RecoverRestoresState) {
  AddFile(0, "a", "m");
  AddFile(2, "p", "q", 7777);
  SequenceNumber seq = 42;
  vset_->SetLastSequence(seq);
  VersionEdit edit;
  ASSERT_TRUE(vset_->LogAndApply(&edit).ok());

  // Fresh VersionSet recovering from the same manifest.
  VersionSet recovered("/vdb", &options_, table_cache_.get(), icmp_.get());
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(1, recovered.NumLevelFiles(0));
  EXPECT_EQ(1, recovered.NumLevelFiles(2));
  EXPECT_EQ(7777u, recovered.NumLevelBytes(2));
  EXPECT_EQ(seq, recovered.LastSequence());
}

TEST_F(VersionSetTest, DynamicLevelBytesChangesScoring) {
  options_.level_compaction_dynamic_level_bytes = true;
  // A big last level sets targets for upper levels.
  AddFile(6, "a", "z", 10ull << 30);
  AddFile(2, "a", "m", 500ull << 20);
  // Under dynamic sizing, L2's target derives from L6 downward; the
  // version must still produce a sane compaction decision.
  (void)vset_->NeedsCompaction();  // must not crash / assert
  SUCCEED();
}

}  // namespace
}  // namespace elmo::lsm
