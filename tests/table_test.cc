// SST TableBuilder/Table: roundtrips, filter integration, block cache,
// compression, corruption detection.
#include <gtest/gtest.h>

#include <map>

#include "env/mem_env.h"
#include "table/table.h"
#include "table/table_builder.h"

namespace elmo {
namespace {

class TableTest : public ::testing::Test {
 protected:
  // Builds a table from `entries` and opens it with `ropts`.
  void BuildAndOpen(const std::map<std::string, std::string>& entries,
                    TableBuildOptions bopts, TableReadOptions ropts) {
    std::unique_ptr<WritableFile> wf;
    ASSERT_TRUE(env_.NewWritableFile("/t.sst", &wf).ok());
    TableBuilder builder(bopts, wf.get());
    for (const auto& [k, v] : entries) {
      builder.Add(k, v);
    }
    ASSERT_TRUE(builder.Finish().ok());
    file_size_ = builder.FileSize();
    ASSERT_TRUE(wf->Close().ok());

    std::unique_ptr<RandomAccessFile> rf;
    ASSERT_TRUE(env_.NewRandomAccessFile("/t.sst", &rf).ok());
    ASSERT_TRUE(
        Table::Open(ropts, std::move(rf), file_size_, &table_).ok());
  }

  std::map<std::string, std::string> MakeEntries(int n) {
    std::map<std::string, std::string> entries;
    for (int i = 0; i < n; i++) {
      char key[32];
      snprintf(key, sizeof(key), "key%06d", i);
      entries[key] = "value" + std::to_string(i);
    }
    return entries;
  }

  MemEnv env_;
  uint64_t file_size_ = 0;
  std::unique_ptr<Table> table_;
};

TEST_F(TableTest, IterateRoundTrip) {
  auto entries = MakeEntries(2000);
  BuildAndOpen(entries, {}, {});
  auto iter = table_->NewIterator();
  auto mit = entries.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(mit, entries.end());
    EXPECT_EQ(mit->first, iter->key().ToString());
    EXPECT_EQ(mit->second, iter->value().ToString());
  }
  EXPECT_EQ(mit, entries.end());
}

TEST_F(TableTest, SeekAcrossBlocks) {
  auto entries = MakeEntries(2000);  // many 4K blocks
  BuildAndOpen(entries, {}, {});
  auto iter = table_->NewIterator();
  iter->Seek("key001234");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key001234", iter->key().ToString());
  iter->Seek("key0012345");  // between keys
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key001235", iter->key().ToString());
}

TEST_F(TableTest, InternalGetCallsHandlerOnMatch) {
  auto entries = MakeEntries(500);
  BuildAndOpen(entries, {}, {});
  std::string found_key, found_value;
  ASSERT_TRUE(table_
                  ->InternalGet("key000123",
                                [&](const Slice& k, const Slice& v) {
                                  found_key = k.ToString();
                                  found_value = v.ToString();
                                })
                  .ok());
  EXPECT_EQ("key000123", found_key);
  EXPECT_EQ("value123", found_value);
}

TEST_F(TableTest, BloomFilterSkipsAbsentKeys) {
  BloomFilterPolicy policy(10);
  TableBuildOptions bopts;
  bopts.filter_policy = &policy;
  TableReadOptions ropts;
  ropts.filter_policy = &policy;
  BuildAndOpen(MakeEntries(500), bopts, ropts);

  int calls = 0;
  ASSERT_TRUE(table_
                  ->InternalGet("key999999x",
                                [&](const Slice&, const Slice&) { calls++; })
                  .ok());
  EXPECT_EQ(0, calls);  // bloom filter rejected before any block read

  // Present keys still work.
  calls = 0;
  ASSERT_TRUE(table_
                  ->InternalGet("key000001",
                                [&](const Slice&, const Slice&) { calls++; })
                  .ok());
  EXPECT_EQ(1, calls);
}

TEST_F(TableTest, BlockCachePopulatedAndHit) {
  TableReadOptions ropts;
  ropts.block_cache = NewLruCache(1 << 20);
  BuildAndOpen(MakeEntries(2000), {}, ropts);

  std::string v;
  table_->InternalGet("key000100", [&](const Slice&, const Slice& val) {
    v = val.ToString();
  });
  auto stats1 = ropts.block_cache->GetStats();
  EXPECT_EQ(1u, stats1.inserts);

  // Same block again: served from cache.
  table_->InternalGet("key000101", [&](const Slice&, const Slice&) {});
  auto stats2 = ropts.block_cache->GetStats();
  EXPECT_EQ(stats2.hits, stats1.hits + 1);
  EXPECT_EQ(stats2.inserts, stats1.inserts);
}

TEST_F(TableTest, RleCompressionRoundTrip) {
  TableBuildOptions bopts;
  bopts.compression = CompressionType::kRleCompression;
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 200; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = std::string(200, 'R');  // highly compressible
  }
  BuildAndOpen(entries, bopts, {});
  auto iter = table_->NewIterator();
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    EXPECT_EQ(std::string(200, 'R'), iter->value().ToString());
    count++;
  }
  EXPECT_EQ(200, count);
  // Compressible payload: file much smaller than raw data.
  EXPECT_LT(file_size_, 200 * 200 / 2);
}

TEST_F(TableTest, EmptyTable) {
  BuildAndOpen({}, {}, {});
  auto iter = table_->NewIterator();
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

TEST_F(TableTest, CorruptedFooterRejected) {
  ASSERT_TRUE(env_.WriteStringToFile(std::string(100, 'x'), "/bad.sst").ok());
  std::unique_ptr<RandomAccessFile> rf;
  ASSERT_TRUE(env_.NewRandomAccessFile("/bad.sst", &rf).ok());
  std::unique_ptr<Table> table;
  Status s = Table::Open({}, std::move(rf), 100, &table);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(TableTest, TruncatedFileRejected) {
  std::unique_ptr<RandomAccessFile> rf;
  ASSERT_TRUE(env_.WriteStringToFile("tiny", "/tiny.sst").ok());
  ASSERT_TRUE(env_.NewRandomAccessFile("/tiny.sst", &rf).ok());
  std::unique_ptr<Table> table;
  EXPECT_FALSE(Table::Open({}, std::move(rf), 4, &table).ok());
}

TEST_F(TableTest, FlippedBitDetectedByChecksum) {
  BuildAndOpen(MakeEntries(2000), {}, {});
  // Flip one byte in the middle of the data region.
  MemFs::FileRef node;
  ASSERT_TRUE(env_.fs()->Open("/t.sst", &node).ok());
  {
    std::lock_guard<std::mutex> l(node->mu);
    node->data[node->data.size() / 3] ^= 0x40;
  }
  std::unique_ptr<RandomAccessFile> rf;
  ASSERT_TRUE(env_.NewRandomAccessFile("/t.sst", &rf).ok());
  std::unique_ptr<Table> fresh;
  Status open_status = Table::Open({}, std::move(rf), file_size_, &fresh);
  if (open_status.ok()) {
    // The flipped byte is in some data block: scanning must surface a
    // checksum error rather than silently returning bad data.
    auto iter = fresh->NewIterator();
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    }
    EXPECT_TRUE(iter->status().IsCorruption());
  } else {
    EXPECT_TRUE(open_status.IsCorruption());
  }
}

TEST(TableRle, CodecRoundTrip) {
  std::string runs = "aaaaabbbbbcccccdddddeeeee";
  std::string compressed;
  RleCompress(runs, &compressed);
  EXPECT_LT(compressed.size(), runs.size());
  std::string back;
  ASSERT_TRUE(RleUncompress(compressed, &back).ok());
  EXPECT_EQ(runs, back);
}

TEST(TableRle, TruncatedInputRejected) {
  std::string out;
  EXPECT_FALSE(RleUncompress(Slice("\x05", 1), &out).ok());
  EXPECT_FALSE(RleUncompress(Slice("\x00x", 2), &out).ok());
}

}  // namespace
}  // namespace elmo
