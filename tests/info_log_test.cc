// Structured info LOG: the DB must write a JSONL LOG file through its
// Env whose every line parses, whose timestamps are monotone virtual
// time under SimEnv, and whose flush/compaction event counts agree with
// the engine tickers.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "env/sim_env.h"
#include "lsm/db.h"
#include "lsm/filename.h"
#include "util/json.h"
#include "util/string_util.h"

namespace elmo::lsm {
namespace {

struct LogLine {
  std::string event;
  uint64_t ts_us;
  json::Value doc;
};

std::vector<LogLine> ReadInfoLog(Env* env, const std::string& dbname) {
  std::string contents;
  EXPECT_TRUE(
      env->ReadFileToString(InfoLogFileName(dbname), &contents).ok());
  std::vector<LogLine> out;
  for (const std::string& line : SplitLines(contents)) {
    if (line.empty()) continue;
    LogLine l;
    Status s = json::Parse(line, &l.doc);
    EXPECT_TRUE(s.ok()) << "unparseable LOG line: " << line;
    if (!s.ok()) continue;
    const json::Value* event = l.doc.Find("event");
    const json::Value* ts = l.doc.Find("ts_us");
    EXPECT_NE(event, nullptr) << line;
    EXPECT_NE(ts, nullptr) << line;
    if (event == nullptr || ts == nullptr) continue;
    l.event = event->as_string();
    l.ts_us = static_cast<uint64_t>(ts->as_int());
    out.push_back(std::move(l));
  }
  return out;
}

uint64_t CountEvents(const std::vector<LogLine>& lines,
                     const std::string& event) {
  uint64_t n = 0;
  for (const auto& l : lines) n += l.event == event;
  return n;
}

TEST(InfoLogTest, JsonlEventsMatchEngineTickers) {
  auto hw = HardwareProfile::Make(2, 4, DeviceModel::NvmeSsd());
  auto env = std::make_unique<SimEnv>(hw, /*seed=*/11);
  Options o;
  o.env = env.get();
  o.create_if_missing = true;
  o.write_buffer_size = 128 << 10;  // small: force flushes/compactions
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());

  const std::string value(512, 'v');
  for (int i = 0; i < 8000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "%016d", i);
    ASSERT_TRUE(db->Put({}, key, value).ok());
  }
  db->WaitForBackgroundWork();

  const uint64_t flushes = db->stats().Get(Ticker::kFlushCount);
  // Trivial moves fire compaction events too (flagged trivial_move), so
  // the LOG count matches the sum of both tickers.
  const uint64_t compactions = db->stats().Get(Ticker::kCompactionCount) +
                               db->stats().Get(Ticker::kTrivialMoveCount);
  ASSERT_GT(flushes, 0u);
  db.reset();  // "close" event + final sync

  auto lines = ReadInfoLog(env.get(), "/db");
  ASSERT_FALSE(lines.empty());

  // Lifecycle bookends.
  EXPECT_EQ(lines.front().event, "open");
  EXPECT_EQ(CountEvents(lines, "options"), 1u);
  EXPECT_EQ(lines.back().event, "close");

  // Every completed job logged exactly once, matching the tickers.
  EXPECT_EQ(CountEvents(lines, "flush_end"), flushes);
  EXPECT_EQ(CountEvents(lines, "compaction_end"), compactions);

  // Engine-clock timestamps never go backwards within the LOG.
  for (size_t i = 1; i < lines.size(); i++) {
    EXPECT_GE(lines[i].ts_us, lines[i - 1].ts_us)
        << "line " << i << " (" << lines[i].event << ")";
  }
}

TEST(InfoLogTest, StallTransitionsAreLogged) {
  auto hw = HardwareProfile::Make(1, 4, DeviceModel::SataHdd());
  auto env = std::make_unique<SimEnv>(hw, 13);
  Options o;
  o.env = env.get();
  o.create_if_missing = true;
  o.write_buffer_size = 64 << 10;
  o.level0_slowdown_writes_trigger = 2;
  o.level0_stop_writes_trigger = 3;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());

  const std::string value(1024, 'v');
  for (int i = 0; i < 4000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "%016d", i);
    ASSERT_TRUE(db->Put({}, key, value).ok());
  }
  const bool stalled = db->stats().Get(Ticker::kWriteSlowdownCount) > 0 ||
                       db->stats().Get(Ticker::kWriteStopCount) > 0;
  db.reset();

  auto lines = ReadInfoLog(env.get(), "/db");
  if (stalled) {
    EXPECT_GT(CountEvents(lines, "stall_transition"), 0u);
  }
  // Transition records carry the reason fields.
  for (const auto& l : lines) {
    if (l.event != "stall_transition") continue;
    EXPECT_NE(l.doc.Find("previous"), nullptr);
    EXPECT_NE(l.doc.Find("current"), nullptr);
    EXPECT_NE(l.doc.Find("reason"), nullptr);
  }
}

}  // namespace
}  // namespace elmo::lsm
