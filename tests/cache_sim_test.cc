// Block-cache trace + ghost-LRU simulator: record framing, corruption
// rejection, known-answer LRU replay, and the accuracy contract — the
// simulated hit ratio at the configured capacity must track the live
// cache's measured hit ratio.
#include "bench_kit/cache_sim.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>

#include "env/sim_env.h"
#include "lsm/db.h"
#include "table/block_cache_tracer.h"

namespace elmo {
namespace {

class CacheTraceTest : public ::testing::Test {
 protected:
  CacheTraceTest()
      : env_(HardwareProfile::Make(2, 4, DeviceModel::NvmeSsd()), 42),
        tracer_(&env_) {}

  SimEnv env_;
  BlockCacheTracer tracer_;
};

TEST_F(CacheTraceTest, WriteReadRoundTrip) {
  ASSERT_TRUE(tracer_.Start("/cache.trace").ok());
  EXPECT_TRUE(tracer_.active());
  tracer_.Record(TraceBlockType::kData, /*hit=*/false, /*fill=*/true,
                 /*level=*/1, /*file_number=*/7, /*offset=*/4096,
                 /*charge=*/4111);
  tracer_.Record(TraceBlockType::kIndex, /*hit=*/true, /*fill=*/true,
                 /*level=*/-1, /*file_number=*/7, /*offset=*/65536,
                 /*charge=*/900);
  uint64_t records = 0;
  ASSERT_TRUE(tracer_.Stop(&records).ok());
  EXPECT_EQ(2u, records);
  EXPECT_FALSE(tracer_.active());

  BlockCacheTraceReader reader(&env_);
  ASSERT_TRUE(reader.Open("/cache.trace").ok());
  BlockCacheAccessRecord rec;
  bool eof = false;
  ASSERT_TRUE(reader.Next(&rec, &eof).ok());
  ASSERT_FALSE(eof);
  EXPECT_EQ(TraceBlockType::kData, rec.type);
  EXPECT_FALSE(rec.hit);
  EXPECT_TRUE(rec.fill);
  EXPECT_EQ(1, rec.level);
  EXPECT_EQ(7u, rec.file_number);
  EXPECT_EQ(4096u, rec.offset);
  EXPECT_EQ(4111u, rec.charge);
  ASSERT_TRUE(reader.Next(&rec, &eof).ok());
  EXPECT_EQ(TraceBlockType::kIndex, rec.type);
  EXPECT_TRUE(rec.hit);
  EXPECT_EQ(-1, rec.level);
  ASSERT_TRUE(reader.Next(&rec, &eof).ok());
  EXPECT_TRUE(eof);
}

TEST_F(CacheTraceTest, RecordIsNoOpWithoutActiveTrace) {
  tracer_.Record(TraceBlockType::kData, false, true, 0, 1, 0, 100);
  // No trace was started; nothing to stop.
  EXPECT_FALSE(tracer_.Stop(nullptr).ok());
}

TEST_F(CacheTraceTest, CorruptedTraceRejected) {
  ASSERT_TRUE(tracer_.Start("/cache.trace").ok());
  tracer_.Record(TraceBlockType::kData, false, true, 0, 1, 0, 100);
  ASSERT_TRUE(tracer_.Stop(nullptr).ok());

  std::string contents;
  ASSERT_TRUE(env_.ReadFileToString("/cache.trace", &contents).ok());
  std::string corrupt = contents;
  corrupt[corrupt.size() - 2] ^= 0x01;
  ASSERT_TRUE(env_.WriteStringToFile(corrupt, "/bad.trace").ok());

  BlockCacheTraceReader reader(&env_);
  ASSERT_TRUE(reader.Open("/bad.trace").ok());
  BlockCacheAccessRecord rec;
  bool eof = false;
  Status s = reader.Next(&rec, &eof);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // The simulator surfaces the same corruption instead of a bogus curve.
  bench::CacheSimResult result;
  s = bench::SimulateCacheTrace(&env_, "/bad.trace", {1024}, 0, &result);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

// Known-answer replay: a cyclic scan over 3 blocks against a 2-block
// ghost is all misses (LRU's pathological case); a large-enough ghost
// hits on every revisit.
TEST_F(CacheTraceTest, GhostLruKnownAnswer) {
  ASSERT_TRUE(tracer_.Start("/cache.trace").ok());
  for (int round = 0; round < 10; round++) {
    for (uint64_t block = 0; block < 3; block++) {
      tracer_.Record(TraceBlockType::kData, false, true, 0,
                     /*file_number=*/1, /*offset=*/block * 100,
                     /*charge=*/100);
    }
  }
  ASSERT_TRUE(tracer_.Stop(nullptr).ok());

  // Single shard so capacities are exact.
  bench::CacheSimResult result;
  ASSERT_TRUE(bench::SimulateCacheTrace(&env_, "/cache.trace",
                                        {200, 300, 600}, /*num_shard_bits=*/0,
                                        &result)
                  .ok());
  ASSERT_EQ(3u, result.curve.size());
  EXPECT_EQ(30u, result.records);
  EXPECT_EQ(3u, result.unique_blocks);
  // capacity 200 (2 blocks): cyclic scan of 3 evicts the next victim
  // right before its reuse — every access misses.
  EXPECT_EQ(0u, result.curve[0].hits);
  // capacity 300 (3 blocks): only the 3 cold misses.
  EXPECT_EQ(3u, result.curve[1].misses);
  EXPECT_EQ(27u, result.curve[1].hits);
  // Bigger never hurts.
  EXPECT_EQ(27u, result.curve[2].hits);
  EXPECT_DOUBLE_EQ(1.0, result.curve[0].miss_ratio);
  EXPECT_DOUBLE_EQ(0.1, result.curve[1].miss_ratio);
}

TEST_F(CacheTraceTest, DefaultCapacityLadder) {
  auto caps = bench::DefaultCapacityLadder(1 << 20);
  ASSERT_GE(caps.size(), 4u);  // the prompt needs a >= 4-point curve
  for (size_t i = 1; i < caps.size(); i++) {
    EXPECT_LT(caps[i - 1], caps[i]);
  }
  EXPECT_EQ(1u << 18, caps.front());
  EXPECT_EQ(8u << 20, caps.back());
}

// The accuracy contract behind the miss-ratio curve: replaying the
// trace at the capacity the engine actually ran with must reproduce the
// live cache's measured hit ratio within 2 points.
TEST(CacheSimAccuracy, SimTracksLiveHitRatioAtConfiguredCapacity) {
  auto hw = HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd());
  SimEnv env(hw, 42);
  lsm::Options opts;
  opts.env = &env;
  opts.create_if_missing = true;
  opts.write_buffer_size = 64 << 10;
  opts.block_cache_size = 128 << 10;

  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(opts, "/db", &db).ok());
  // Trace from before the first access so trace and live stats cover
  // the same window.
  ASSERT_TRUE(db->StartBlockCacheTrace("/cache.trace").ok());

  const std::string value(512, 'v');
  for (int i = 0; i < 4000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "%016d", i % 1000);
    ASSERT_TRUE(db->Put({}, key, value).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  std::string out;
  unsigned int rng = 12345;
  for (int i = 0; i < 3000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "%016d", rand_r(&rng) % 1000);
    db->Get({}, key, &out);
  }

  ASSERT_TRUE(db->EndBlockCacheTrace().ok());
  std::string prop;
  ASSERT_TRUE(db->GetProperty("elmo.block-cache-hit-rate", &prop));
  const double live_hit_ratio = atof(prop.c_str());
  db.reset();

  bench::CacheSimResult result;
  ASSERT_TRUE(bench::SimulateCacheTrace(
                  &env, "/cache.trace",
                  bench::DefaultCapacityLadder(opts.block_cache_size),
                  /*num_shard_bits=*/4, &result)
                  .ok());
  ASSERT_GT(result.records, 0u);

  const bench::CacheSimPoint* at_configured = nullptr;
  for (const auto& p : result.curve) {
    if (p.capacity == opts.block_cache_size) at_configured = &p;
  }
  ASSERT_NE(nullptr, at_configured);
  EXPECT_NEAR(live_hit_ratio, at_configured->hit_ratio, 0.02)
      << "live=" << live_hit_ratio << " sim=" << at_configured->hit_ratio;
}

}  // namespace
}  // namespace elmo
