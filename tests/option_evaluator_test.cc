// OptionEvaluator: the three response shapes the paper names — pure
// text, single code block, interleaved — plus malformed variants.
#include "elmo/option_evaluator.h"

#include <gtest/gtest.h>

#include <map>

namespace elmo::tune {
namespace {

std::map<std::string, std::string> Pairs(const std::string& text) {
  auto p = OptionEvaluator::Extract(text);
  std::map<std::string, std::string> m;
  for (auto& [k, v] : p.pairs) m[k] = v;
  return m;
}

TEST(OptionEvaluator, FencedIniBlock) {
  auto got = Pairs(
      "Here you go:\n"
      "```ini\n"
      "[DBOptions]\n"
      "max_background_jobs = 4\n"
      "bytes_per_sync = 1048576\n"
      "[CFOptions]\n"
      "write_buffer_size = 67108864\n"
      "```\n");
  EXPECT_EQ(3u, got.size());
  EXPECT_EQ("4", got["max_background_jobs"]);
  EXPECT_EQ("1048576", got["bytes_per_sync"]);
  EXPECT_EQ("67108864", got["write_buffer_size"]);
}

TEST(OptionEvaluator, UntaggedFence) {
  auto got = Pairs("```\nmax_write_buffer_number = 4\n```\n");
  EXPECT_EQ("4", got["max_write_buffer_number"]);
}

TEST(OptionEvaluator, PureProse) {
  auto got = Pairs(
      "You should set write_buffer_size = 134217728 and also "
      "max_background_jobs = 6; then try again.");
  EXPECT_EQ("134217728", got["write_buffer_size"]);
  EXPECT_EQ("6", got["max_background_jobs"]);
}

TEST(OptionEvaluator, InterleavedProseAndBlocks) {
  auto p = OptionEvaluator::Extract(
      "First apply wal_bytes_per_sync = 1048576 manually.\n"
      "Then the rest:\n"
      "```ini\n"
      "max_background_flushes = 2\n"
      "```\n"
      "And finally consider enable_pipelined_write = false.\n"
      "```\n"
      "level0_file_num_compaction_trigger = 6\n"
      "```\n");
  EXPECT_TRUE(p.had_code_block);
  std::map<std::string, std::string> got;
  for (auto& [k, v] : p.pairs) got[k] = v;
  EXPECT_EQ(4u, got.size());
  EXPECT_EQ("1048576", got["wal_bytes_per_sync"]);
  EXPECT_EQ("2", got["max_background_flushes"]);
  EXPECT_EQ("false", got["enable_pipelined_write"]);
  EXPECT_EQ("6", got["level0_file_num_compaction_trigger"]);
}

TEST(OptionEvaluator, MarkdownEmphasisStripped) {
  auto got = Pairs("1. **max_background_jobs = 5** — match cores.\n");
  EXPECT_EQ("5", got["max_background_jobs"]);
}

TEST(OptionEvaluator, SentencePunctuationStripped) {
  auto got = Pairs("Set bloom_filter_bits_per_key = 10.\n");
  EXPECT_EQ("10", got["bloom_filter_bits_per_key"]);
}

TEST(OptionEvaluator, LastOccurrenceWins) {
  auto got = Pairs(
      "Start with write_buffer_size = 1000.\n"
      "```ini\nwrite_buffer_size = 2000\n```\n");
  EXPECT_EQ("2000", got["write_buffer_size"]);
}

TEST(OptionEvaluator, ProseWordsWithoutUnderscoresIgnored) {
  auto p = OptionEvaluator::Extract(
      "In math, x = 5 and speed = fast. Nothing here is an option.");
  EXPECT_TRUE(p.pairs.empty());
}

TEST(OptionEvaluator, UnterminatedFenceStillParsed) {
  auto got = Pairs("```ini\nmax_background_jobs = 3\n");
  EXPECT_EQ("3", got["max_background_jobs"]);
}

TEST(OptionEvaluator, EmptyAndNoiseInputs) {
  EXPECT_TRUE(OptionEvaluator::Extract("").pairs.empty());
  EXPECT_TRUE(OptionEvaluator::Extract("Your DB looks great!").pairs.empty());
  EXPECT_FALSE(OptionEvaluator::Extract("").had_code_block);
}

TEST(OptionEvaluator, HallucinatedNamesStillExtracted) {
  // Extraction is mechanical; judgment belongs to the safeguard.
  auto got = Pairs("```ini\nmemtable_prefetch_depth = 8\n```\n");
  EXPECT_EQ("8", got["memtable_prefetch_depth"]);
}

TEST(OptionEvaluator, BooleanAndEnumValues) {
  auto got = Pairs(
      "```ini\n"
      "strict_bytes_per_sync = true\n"
      "compaction_style = universal\n"
      "compression = none\n"
      "```\n");
  EXPECT_EQ("true", got["strict_bytes_per_sync"]);
  EXPECT_EQ("universal", got["compaction_style"]);
  EXPECT_EQ("none", got["compression"]);
}

}  // namespace
}  // namespace elmo::tune
