#include "util/coding.h"

#include <gtest/gtest.h>

namespace elmo {
namespace {

TEST(Coding, Fixed32RoundTrip) {
  std::string s;
  for (uint32_t v = 0; v < 100000; v += 7777) {
    PutFixed32(&s, v);
  }
  const char* p = s.data();
  for (uint32_t v = 0; v < 100000; v += 7777) {
    EXPECT_EQ(v, DecodeFixed32(p));
    p += sizeof(uint32_t);
  }
}

TEST(Coding, Fixed64RoundTrip) {
  std::string s;
  for (int power = 0; power <= 63; power++) {
    uint64_t v = 1ull << power;
    PutFixed64(&s, v - 1);
    PutFixed64(&s, v);
    PutFixed64(&s, v + 1);
  }
  const char* p = s.data();
  for (int power = 0; power <= 63; power++) {
    uint64_t v = 1ull << power;
    EXPECT_EQ(v - 1, DecodeFixed64(p));
    p += 8;
    EXPECT_EQ(v, DecodeFixed64(p));
    p += 8;
    EXPECT_EQ(v + 1, DecodeFixed64(p));
    p += 8;
  }
}

TEST(Coding, Varint32RoundTrip) {
  std::string s;
  for (uint32_t i = 0; i < (32 * 32); i++) {
    uint32_t v = (i / 32) << (i % 32);
    PutVarint32(&s, v);
  }
  Slice input(s);
  for (uint32_t i = 0; i < (32 * 32); i++) {
    uint32_t expected = (i / 32) << (i % 32);
    uint32_t actual;
    ASSERT_TRUE(GetVarint32(&input, &actual));
    EXPECT_EQ(expected, actual);
  }
  EXPECT_TRUE(input.empty());
}

TEST(Coding, Varint64RoundTrip) {
  std::vector<uint64_t> values = {0, 100, ~0ull, ~0ull - 1};
  for (uint32_t k = 0; k < 64; k++) {
    const uint64_t power = 1ull << k;
    values.push_back(power);
    values.push_back(power - 1);
    values.push_back(power + 1);
  }
  std::string s;
  for (uint64_t v : values) PutVarint64(&s, v);
  Slice input(s);
  for (uint64_t expected : values) {
    uint64_t actual;
    ASSERT_TRUE(GetVarint64(&input, &actual));
    EXPECT_EQ(expected, actual);
  }
  EXPECT_TRUE(input.empty());
}

TEST(Coding, Varint32Truncated) {
  std::string s;
  PutVarint32(&s, 1u << 30);
  for (size_t len = 0; len < s.size() - 1; len++) {
    Slice input(s.data(), len);
    uint32_t result;
    EXPECT_FALSE(GetVarint32(&input, &result)) << "len " << len;
  }
}

TEST(Coding, Varint64Truncated) {
  std::string s;
  PutVarint64(&s, ~0ull);
  for (size_t len = 0; len < s.size() - 1; len++) {
    Slice input(s.data(), len);
    uint64_t result;
    EXPECT_FALSE(GetVarint64(&input, &result)) << "len " << len;
  }
}

TEST(Coding, Varint32Overflow) {
  uint32_t result;
  std::string input("\x81\x82\x83\x84\x85\x11");
  EXPECT_EQ(nullptr,
            GetVarint32Ptr(input.data(), input.data() + input.size(),
                           &result));
}

TEST(Coding, VarintLengths) {
  EXPECT_EQ(1, VarintLength(0));
  EXPECT_EQ(1, VarintLength(127));
  EXPECT_EQ(2, VarintLength(128));
  EXPECT_EQ(5, VarintLength(0xFFFFFFFFull));
  EXPECT_EQ(10, VarintLength(~0ull));
}

TEST(Coding, LengthPrefixedSlice) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice("foo"));
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice(std::string(300, 'x')));

  Slice input(s);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("foo", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ(std::string(300, 'x'), v.ToString());
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &v));
}

TEST(Coding, LengthPrefixedSliceTruncatedPayload) {
  std::string s;
  PutVarint32(&s, 100);  // claims 100 bytes
  s += "short";
  Slice input(s);
  Slice v;
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &v));
}

}  // namespace
}  // namespace elmo
