#include "lsm/stats.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace elmo::lsm {
namespace {

TEST(StatsTest, TickersStartAtZeroAndAccumulate) {
  DbStats stats;
  for (int t = 0; t < static_cast<int>(Ticker::kTickerMax); t++) {
    EXPECT_EQ(0u, stats.Get(static_cast<Ticker>(t)));
  }
  stats.Add(Ticker::kBytesWritten, 100);
  stats.Add(Ticker::kBytesWritten, 23);
  stats.Add(Ticker::kStallL0StopCount, 1);
  EXPECT_EQ(123u, stats.Get(Ticker::kBytesWritten));
  EXPECT_EQ(1u, stats.Get(Ticker::kStallL0StopCount));
  EXPECT_EQ(0u, stats.Get(Ticker::kBytesRead));
}

TEST(StatsTest, HistogramMeasureAndSnapshot) {
  DbStats stats;
  EXPECT_EQ(0u, stats.HistogramCount(HistogramType::kGetMicros));

  for (uint64_t v = 1; v <= 100; v++) {
    stats.Measure(HistogramType::kGetMicros, v);
  }
  EXPECT_EQ(100u, stats.HistogramCount(HistogramType::kGetMicros));

  Histogram h = stats.GetHistogram(HistogramType::kGetMicros);
  EXPECT_EQ(100u, h.Count());
  EXPECT_DOUBLE_EQ(1.0, h.Min());
  EXPECT_DOUBLE_EQ(100.0, h.Max());
  EXPECT_DOUBLE_EQ(50.5, h.Average());
  // Bucketed percentiles are approximate; generous envelope.
  EXPECT_GE(h.Percentile(50), 30.0);
  EXPECT_LE(h.Percentile(50), 70.0);
  EXPECT_GE(h.Percentile(99), h.Percentile(50));
  EXPECT_LE(h.Percentile(99), 100.0);

  // Other histograms are untouched.
  EXPECT_EQ(0u, stats.HistogramCount(HistogramType::kWriteMicros));
}

TEST(StatsTest, AtomicHistogramMatchesPlainHistogram) {
  AtomicHistogram ah;
  Histogram plain;
  const uint64_t values[] = {0, 1, 2, 9, 10, 55, 1000, 123456, 9999999};
  for (uint64_t v : values) {
    ah.Add(v);
    plain.Add(static_cast<double>(v));
  }
  Histogram snap = ah.Snapshot();
  EXPECT_EQ(plain.Count(), snap.Count());
  EXPECT_DOUBLE_EQ(plain.Min(), snap.Min());
  EXPECT_DOUBLE_EQ(plain.Max(), snap.Max());
  EXPECT_DOUBLE_EQ(plain.Average(), snap.Average());
  EXPECT_DOUBLE_EQ(plain.Percentile(50), snap.Percentile(50));
  EXPECT_DOUBLE_EQ(plain.Percentile(99), snap.Percentile(99));
}

TEST(StatsTest, AtomicHistogramConcurrentAdds) {
  AtomicHistogram ah;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&ah] {
      for (int i = 1; i <= kPerThread; i++) {
        ah.Add(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  Histogram h = ah.Snapshot();
  EXPECT_EQ(static_cast<uint64_t>(kThreads) * kPerThread, h.Count());
  EXPECT_DOUBLE_EQ(1.0, h.Min());
  EXPECT_DOUBLE_EQ(static_cast<double>(kPerThread), h.Max());
  EXPECT_DOUBLE_EQ((1.0 + kPerThread) / 2.0, h.Average());
}

TEST(StatsTest, PerLevelCounters) {
  DbStats stats;
  stats.AddLevelWriteBytes(0, 4096);
  stats.AddLevelInBytes(0, 4096);
  stats.AddLevelReadBytes(1, 1000);
  stats.AddLevelWriteBytes(1, 5000);
  stats.AddLevelInBytes(1, 2500);
  stats.AddLevelCompaction(1);
  stats.AddLevelCompaction(1);

  EXPECT_EQ(4096u, stats.LevelWriteBytes(0));
  EXPECT_EQ(4096u, stats.LevelInBytes(0));
  EXPECT_EQ(0u, stats.LevelReadBytes(0));
  EXPECT_EQ(1000u, stats.LevelReadBytes(1));
  EXPECT_EQ(5000u, stats.LevelWriteBytes(1));
  EXPECT_EQ(2500u, stats.LevelInBytes(1));
  EXPECT_EQ(2u, stats.LevelCompactions(1));

  // Out-of-range levels are ignored, not UB.
  stats.AddLevelWriteBytes(-1, 7);
  stats.AddLevelWriteBytes(DbStats::kMaxLevels, 7);
  EXPECT_EQ(0u, stats.LevelWriteBytes(-1));
  EXPECT_EQ(0u, stats.LevelWriteBytes(DbStats::kMaxLevels));
}

TEST(StatsTest, ResetClearsEverything) {
  DbStats stats;
  stats.Add(Ticker::kFlushCount, 3);
  stats.Measure(HistogramType::kFlushMicros, 1234);
  stats.AddLevelWriteBytes(2, 999);
  stats.AddLevelCompaction(2);

  stats.Reset();

  EXPECT_EQ(0u, stats.Get(Ticker::kFlushCount));
  EXPECT_EQ(0u, stats.HistogramCount(HistogramType::kFlushMicros));
  EXPECT_EQ(0u, stats.GetHistogram(HistogramType::kFlushMicros).Count());
  EXPECT_EQ(0u, stats.LevelWriteBytes(2));
  EXPECT_EQ(0u, stats.LevelCompactions(2));
}

TEST(StatsTest, SnapshotDeltaNeverUnderflowsUnderConcurrentWriters) {
  DbStats stats;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  // Baseline before the writers start, so the interval deltas below
  // partition every operation.
  StatsSnapshot prev = stats.GetSnapshot();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&stats] {
      for (int i = 0; i < kPerThread; i++) {
        stats.Add(Ticker::kWriteCount, 1);
        stats.Add(Ticker::kBytesWritten, 64);
        stats.Measure(HistogramType::kWriteMicros,
                      static_cast<uint64_t>(i % 100) + 1);
      }
    });
  }

  // Snapshot repeatedly while the writers run. Cumulative snapshots must
  // be non-decreasing, so every interval delta must be >= 0 (clamped) and
  // histogram bucket subtraction must never produce a negative count.
  uint64_t delta_writes = 0;
  uint64_t delta_hist = 0;
  for (int round = 0; round < 200; round++) {
    StatsSnapshot cur = stats.GetSnapshot();
    StatsSnapshot d = cur.Delta(prev);
    EXPECT_GE(cur.Get(Ticker::kWriteCount), prev.Get(Ticker::kWriteCount));
    delta_writes += d.Get(Ticker::kWriteCount);
    delta_hist += d.GetHistogram(HistogramType::kWriteMicros).Count();
    if (d.GetHistogram(HistogramType::kWriteMicros).Count() > 0) {
      EXPECT_GE(d.GetHistogram(HistogramType::kWriteMicros).Min(), 1.0);
      EXPECT_LE(d.GetHistogram(HistogramType::kWriteMicros).Percentile(99),
                d.GetHistogram(HistogramType::kWriteMicros).Max());
    }
    prev = cur;
    std::this_thread::yield();
  }
  for (auto& th : threads) th.join();

  // A final interval picks up whatever the mid-run snapshots missed:
  // intervals partition the cumulative totals exactly.
  StatsSnapshot last = stats.GetSnapshot().Delta(prev);
  delta_writes += last.Get(Ticker::kWriteCount);
  delta_hist += last.GetHistogram(HistogramType::kWriteMicros).Count();
  const uint64_t total = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(stats.Get(Ticker::kWriteCount), total);
  EXPECT_EQ(delta_writes, total);
  EXPECT_EQ(delta_hist, total);
}

TEST(StatsTest, HistogramTypeNamesAreUniqueAndNonEmpty) {
  std::vector<std::string> names;
  for (int h = 0; h < static_cast<int>(HistogramType::kHistogramMax); h++) {
    std::string name = HistogramTypeName(static_cast<HistogramType>(h));
    EXPECT_FALSE(name.empty());
    for (const auto& prev : names) EXPECT_NE(prev, name);
    names.push_back(name);
  }
}

TEST(StatsTest, ToStringContainsHistogramTableAndStallReasons) {
  DbStats stats;
  stats.Add(Ticker::kStallL0SlowdownCount, 2);
  stats.Add(Ticker::kStallMemtableStopCount, 1);
  stats.Measure(HistogramType::kGetMicros, 10);
  stats.Measure(HistogramType::kWriteMicros, 20);
  stats.Measure(HistogramType::kFlushMicros, 30);
  stats.Measure(HistogramType::kCompactionMicros, 40);
  stats.Measure(HistogramType::kStallMicros, 50);

  std::string dump = stats.ToString();

  EXPECT_NE(std::string::npos, dump.find("stall reasons:"));
  EXPECT_NE(std::string::npos, dump.find("l0-slowdown 2"));
  EXPECT_NE(std::string::npos, dump.find("memtable-stop 1"));

  // Search the histogram table only — ticker lines above it also
  // mention "stall micros" etc.
  size_t table = dump.find("histograms (count / p50 / p99 / max):");
  ASSERT_NE(std::string::npos, table);
  // All five core latency histograms appear with the p50/p99/max columns.
  const char* expected[] = {"get micros", "write micros", "flush micros",
                            "compaction micros", "stall micros"};
  for (const char* name : expected) {
    size_t pos = dump.find(name, table);
    ASSERT_NE(std::string::npos, pos) << name;
    size_t eol = dump.find('\n', pos);
    std::string line = dump.substr(pos, eol - pos);
    EXPECT_NE(std::string::npos, line.find("count 1")) << line;
    EXPECT_NE(std::string::npos, line.find("p50")) << line;
    EXPECT_NE(std::string::npos, line.find("p99")) << line;
    EXPECT_NE(std::string::npos, line.find("max")) << line;
  }
}

}  // namespace
}  // namespace elmo::lsm
