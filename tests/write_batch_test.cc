#include "lsm/write_batch.h"

#include <gtest/gtest.h>

#include "lsm/memtable.h"

namespace elmo {
namespace {

// Renders batch contents by applying to a memtable and scanning it.
std::string PrintContents(WriteBatch* b) {
  InternalKeyComparator cmp(BytewiseComparator());
  MemTable mem(cmp);
  EXPECT_TRUE(b->InsertInto(&mem).ok());
  std::string state;
  auto iter = mem.NewIterator();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ParsedInternalKey ikey;
    EXPECT_TRUE(ParseInternalKey(iter->key(), &ikey));
    if (ikey.type == kTypeValue) {
      state += "Put(" + ikey.user_key.ToString() + ", " +
               iter->value().ToString() + ")@" +
               std::to_string(ikey.sequence);
    } else {
      state += "Delete(" + ikey.user_key.ToString() + ")@" +
               std::to_string(ikey.sequence);
    }
    state += ";";
  }
  return state;
}

TEST(WriteBatch, Empty) {
  WriteBatch batch;
  EXPECT_EQ(0, batch.Count());
  EXPECT_EQ("", PrintContents(&batch));
}

TEST(WriteBatch, Multiple) {
  WriteBatch batch;
  batch.Put("foo", "bar");
  batch.Delete("box");
  batch.Put("baz", "boo");
  batch.SetSequence(100);
  EXPECT_EQ(100u, batch.Sequence());
  EXPECT_EQ(3, batch.Count());
  EXPECT_EQ(
      "Put(baz, boo)@102;"
      "Delete(box)@101;"
      "Put(foo, bar)@100;",
      PrintContents(&batch));
}

TEST(WriteBatch, Append) {
  WriteBatch b1, b2;
  b1.Put("a", "va");
  b2.Put("b", "vb");
  b2.Delete("c");
  b1.Append(b2);
  b1.SetSequence(200);
  EXPECT_EQ(3, b1.Count());
  EXPECT_EQ(
      "Put(a, va)@200;"
      "Put(b, vb)@201;"
      "Delete(c)@202;",
      PrintContents(&b1));
}

TEST(WriteBatch, Clear) {
  WriteBatch batch;
  batch.Put("k", "v");
  batch.Clear();
  EXPECT_EQ(0, batch.Count());
}

TEST(WriteBatch, ApproximateSizeGrows) {
  WriteBatch batch;
  size_t empty = batch.ApproximateSize();
  batch.Put("key", "value");
  size_t one = batch.ApproximateSize();
  batch.Put("key2", std::string(1000, 'v'));
  size_t two = batch.ApproximateSize();
  EXPECT_LT(empty, one);
  EXPECT_LT(one + 1000, two + 100);
}

TEST(WriteBatch, CorruptedContentsRejected) {
  WriteBatch batch;
  batch.Put("k", "v");
  std::string raw = batch.Contents().ToString();
  raw.resize(raw.size() - 1);  // truncate payload
  WriteBatch corrupt;
  corrupt.SetContentsFrom(raw);
  InternalKeyComparator cmp(BytewiseComparator());
  MemTable mem(cmp);
  EXPECT_FALSE(corrupt.InsertInto(&mem).ok());
}

TEST(WriteBatch, WrongCountDetected) {
  WriteBatch batch;
  batch.Put("k", "v");
  std::string raw = batch.Contents().ToString();
  raw[8] = 9;  // claim 9 entries
  WriteBatch corrupt;
  corrupt.SetContentsFrom(raw);
  InternalKeyComparator cmp(BytewiseComparator());
  MemTable mem(cmp);
  EXPECT_FALSE(corrupt.InsertInto(&mem).ok());
}

TEST(WriteBatch, BinaryPayloads) {
  WriteBatch batch;
  std::string key("\x00\x01", 2), value("\xff\x00\xfe", 3);
  batch.Put(key, value);
  batch.SetSequence(1);
  InternalKeyComparator cmp(BytewiseComparator());
  MemTable mem(cmp);
  ASSERT_TRUE(batch.InsertInto(&mem).ok());
  LookupKey lk(key, 10);
  std::string got;
  Status s;
  ASSERT_TRUE(mem.Get(lk, &got, &s));
  EXPECT_EQ(value, got);
}

}  // namespace
}  // namespace elmo
