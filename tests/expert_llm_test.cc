// SimulatedExpertLlm: prompt comprehension, hardware/workload
// awareness, determinism, and fault injection.
#include "llm/expert_llm.h"

#include <gtest/gtest.h>

#include "elmo/option_evaluator.h"
#include "lsm/options_schema.h"
#include "util/string_util.h"

namespace elmo::llm {
namespace {

std::string MakePrompt(const std::string& device, int cores, int mem_gib,
                       const std::string& workload,
                       const std::string& extra = "") {
  lsm::Options defaults;
  std::string options_ini =
      lsm::OptionsSchema::Instance().ToIniText(defaults);
  std::string p;
  p += "## Task\nTune the store. This is tuning iteration 1.\n\n";
  p += "## System Information\n";
  p += "CPU cores: " + std::to_string(cores) + "\n";
  p += "Total memory: " + std::to_string(mem_gib) + " GiB\n";
  p += "Storage device: " + device + "\n\n";
  p += "## Workload\n" + workload +
       ": 400000 ops over 400000 keys, 1 thread(s)\n\n";
  p += "## Current Configuration\n```ini\n" + options_ini + "```\n\n";
  p += "## Last Benchmark Report\n" + workload +
       " : 3.1 micros/op 320000 ops/sec; elapsed 1.2 seconds\n"
       "Stalls: slowdown 0, stop 12, stall-micros 2000000, "
       "os-writeback-bursts 15\n\n";
  p += extra;
  p += "## Instructions\nRespond with option changes in a ```ini block.\n";
  return p;
}

std::string Ask(LlmClient* llm, const std::string& prompt) {
  std::string response;
  EXPECT_TRUE(llm->Complete({{"system", "sys"}, {"user", prompt}},
                            &response)
                  .ok());
  return response;
}

std::map<std::string, std::string> ExtractPairs(const std::string& resp) {
  auto proposals = tune::OptionEvaluator::Extract(resp);
  std::map<std::string, std::string> m;
  for (auto& [k, v] : proposals.pairs) m[k] = v;
  return m;
}

TEST(ExpertLlm, ParsesPromptFacts) {
  PromptFacts facts = SimulatedExpertLlm::ParsePrompt(
      MakePrompt("SATA HDD", 2, 4, "fillrandom"));
  EXPECT_EQ(2, facts.cpu_cores);
  EXPECT_EQ(4ull << 30, facts.memory_bytes);
  EXPECT_TRUE(facts.is_hdd);
  EXPECT_EQ("fillrandom", facts.workload);
  EXPECT_TRUE(facts.write_heavy);
  EXPECT_FALSE(facts.read_heavy);
  EXPECT_NEAR(320000.0, facts.last_ops_per_sec, 1.0);
  EXPECT_EQ(2000000u, facts.stall_micros);
  EXPECT_EQ(15u, facts.writeback_bursts);
  EXPECT_EQ(1, facts.iteration);
  EXPECT_FALSE(facts.deteriorated);
  EXPECT_TRUE(facts.current_options.HasSection("DBOptions"));
}

TEST(ExpertLlm, ParsesDeteriorationNote) {
  PromptFacts facts = SimulatedExpertLlm::ParsePrompt(MakePrompt(
      "NVMe SSD", 4, 8, "fillrandom",
      "## Feedback\nThe previous configuration DECREASED performance "
      "and was reverted.\n\n"));
  EXPECT_FALSE(facts.is_hdd);
  EXPECT_TRUE(facts.deteriorated);
}

TEST(ExpertLlm, RespondsWithParseableConfig) {
  ExpertConfig cfg;
  cfg.hallucination_rate = 0;
  cfg.deprecated_rate = 0;
  cfg.blacklist_poke_rate = 0;
  SimulatedExpertLlm llm(cfg);
  std::string resp = Ask(&llm, MakePrompt("NVMe SSD", 4, 4, "fillrandom"));
  EXPECT_NE(resp.find("```"), std::string::npos);
  auto pairs = ExtractPairs(resp);
  EXPECT_GE(pairs.size(), 3u);
  // Every proposal must be a real option when faults are disabled.
  for (const auto& [name, value] : pairs) {
    EXPECT_NE(nullptr, lsm::OptionsSchema::Instance().Find(name)) << name;
  }
}

TEST(ExpertLlm, HddGetsReadahead) {
  ExpertConfig cfg;
  cfg.hallucination_rate = 0;
  cfg.deprecated_rate = 0;
  cfg.blacklist_poke_rate = 0;
  cfg.min_changes = 10;
  cfg.max_changes = 14;  // take everything the knowledge base offers
  SimulatedExpertLlm llm(cfg);
  auto pairs =
      ExtractPairs(Ask(&llm, MakePrompt("SATA HDD", 2, 4, "fillrandom")));
  EXPECT_TRUE(pairs.count("compaction_readahead_size"))
      << "HDD tuning should touch readahead";
}

TEST(ExpertLlm, ReadWorkloadGetsBloomAndCache) {
  ExpertConfig cfg;
  cfg.hallucination_rate = 0;
  cfg.deprecated_rate = 0;
  cfg.blacklist_poke_rate = 0;
  cfg.min_changes = 10;
  cfg.max_changes = 14;
  SimulatedExpertLlm llm(cfg);
  auto pairs =
      ExtractPairs(Ask(&llm, MakePrompt("NVMe SSD", 4, 4, "readrandom")));
  EXPECT_TRUE(pairs.count("bloom_filter_bits_per_key"));
  EXPECT_TRUE(pairs.count("block_cache_size"));
  // Cache sized to a fraction of the 4 GiB machine.
  auto cache = ParseInt64(pairs["block_cache_size"]);
  ASSERT_TRUE(cache.has_value());
  EXPECT_GE(*cache, 64ll << 20);
  EXPECT_LE(*cache, 2ll << 30);
}

TEST(ExpertLlm, MemoryBudgetRespected) {
  ExpertConfig cfg;
  cfg.hallucination_rate = 0;
  cfg.deprecated_rate = 0;
  cfg.blacklist_poke_rate = 0;
  cfg.min_changes = 10;
  cfg.max_changes = 14;
  SimulatedExpertLlm llm(cfg);
  // Small machine: 4 GiB.
  auto pairs =
      ExtractPairs(Ask(&llm, MakePrompt("NVMe SSD", 4, 4, "fillrandom")));
  if (pairs.count("write_buffer_size")) {
    auto wbs = ParseInt64(pairs["write_buffer_size"]);
    ASSERT_TRUE(wbs.has_value());
    EXPECT_LE(*wbs, 256ll << 20)
        << "4 GiB machine must not get giant memtables";
  }
}

TEST(ExpertLlm, DeterministicGivenSeed) {
  ExpertConfig cfg;
  cfg.seed = 123;
  SimulatedExpertLlm a(cfg), b(cfg);
  std::string prompt = MakePrompt("SATA HDD", 2, 4, "mixgraph");
  EXPECT_EQ(Ask(&a, prompt), Ask(&b, prompt));
}

TEST(ExpertLlm, FaultInjectionProducesBadOptions) {
  ExpertConfig cfg;
  cfg.seed = 5;
  cfg.hallucination_rate = 1.0;
  cfg.deprecated_rate = 1.0;
  cfg.blacklist_poke_rate = 1.0;
  SimulatedExpertLlm llm(cfg);
  auto pairs =
      ExtractPairs(Ask(&llm, MakePrompt("NVMe SSD", 4, 4, "fillrandom")));
  bool has_unknown = false, has_deprecated = false, has_blacklisted = false;
  for (const auto& [name, value] : pairs) {
    if (name == "disable_wal") has_blacklisted = true;
    if (lsm::OptionsSchema::Instance().FindDeprecated(name) != nullptr) {
      has_deprecated = true;
    } else if (lsm::OptionsSchema::Instance().Find(name) == nullptr) {
      has_unknown = true;
    }
  }
  EXPECT_TRUE(has_unknown);
  EXPECT_TRUE(has_deprecated);
  EXPECT_TRUE(has_blacklisted);
}

TEST(ExpertLlm, AvoidsRepeatingAfterRevert) {
  ExpertConfig cfg;
  cfg.seed = 9;
  cfg.hallucination_rate = 0;
  cfg.deprecated_rate = 0;
  cfg.blacklist_poke_rate = 0;
  SimulatedExpertLlm llm(cfg);
  // Responses may echo the whole options file, so compare only real
  // CHANGES — extracted values that differ from the defaults the prompt
  // carried.
  auto changes_of = [](const std::map<std::string, std::string>& pairs) {
    std::set<std::string> changed;
    lsm::Options defaults;
    for (const auto& [name, value] : pairs) {
      const auto* info = lsm::OptionsSchema::Instance().Find(name);
      if (info == nullptr || info->get(defaults) != value) {
        changed.insert(name);
      }
    }
    return changed;
  };
  auto first = changes_of(
      ExtractPairs(Ask(&llm, MakePrompt("NVMe SSD", 4, 4, "fillrandom"))));
  auto second = changes_of(ExtractPairs(Ask(
      &llm, MakePrompt("NVMe SSD", 4, 4, "fillrandom",
                       "## Feedback\nThe previous configuration DECREASED "
                       "performance and was reverted.\n\n"))));
  for (const auto& name : second) {
    EXPECT_EQ(0u, first.count(name))
        << "re-proposed " << name << " right after a revert";
  }
  EXPECT_FALSE(second.empty());
}

TEST(ExpertLlm, MentionsHardwareInProse) {
  SimulatedExpertLlm llm;
  std::string resp = Ask(&llm, MakePrompt("SATA HDD", 2, 8, "mixgraph"));
  EXPECT_NE(resp.find("SATA HDD"), std::string::npos);
  EXPECT_NE(resp.find("2 CPU"), std::string::npos);
  EXPECT_NE(resp.find("8 GiB"), std::string::npos);
}

TEST(ExpertLlm, EmptyChatRejected) {
  SimulatedExpertLlm llm;
  std::string out;
  EXPECT_FALSE(llm.Complete({}, &out).ok());
}

}  // namespace
}  // namespace elmo::llm
