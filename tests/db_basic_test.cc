// Core DB behavior: put/get/delete, overwrite, flush, compaction,
// iterators, snapshots, recovery.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "env/mem_env.h"
#include "lsm/db.h"
#include "util/random.h"

namespace elmo::lsm {
namespace {

class DbBasicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<MemEnv>();
    options_.env = env_.get();
    options_.create_if_missing = true;
    // Small buffers so tests exercise flush/compaction quickly.
    options_.write_buffer_size = 64 << 10;
    options_.level0_file_num_compaction_trigger = 4;
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }

  void Reopen() {
    db_.reset();
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERR: " + s.ToString();
    return value;
  }

  std::unique_ptr<MemEnv> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbBasicTest, Empty) {
  EXPECT_EQ("NOT_FOUND", Get("missing"));
}

TEST_F(DbBasicTest, PutGet) {
  ASSERT_TRUE(db_->Put({}, "foo", "v1").ok());
  EXPECT_EQ("v1", Get("foo"));
  EXPECT_EQ("NOT_FOUND", Get("bar"));
}

TEST_F(DbBasicTest, Overwrite) {
  ASSERT_TRUE(db_->Put({}, "foo", "v1").ok());
  ASSERT_TRUE(db_->Put({}, "foo", "v2").ok());
  EXPECT_EQ("v2", Get("foo"));
}

TEST_F(DbBasicTest, DeleteBasic) {
  ASSERT_TRUE(db_->Put({}, "foo", "v1").ok());
  ASSERT_TRUE(db_->Delete({}, "foo").ok());
  EXPECT_EQ("NOT_FOUND", Get("foo"));
}

TEST_F(DbBasicTest, WriteBatchAtomicity) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  ASSERT_TRUE(db_->Write({}, &batch).ok());
  EXPECT_EQ("NOT_FOUND", Get("a"));
  EXPECT_EQ("2", Get("b"));
}

TEST_F(DbBasicTest, GetFromImmutableAndSst) {
  // Fill enough to force multiple memtable switches and flushes.
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(
        db_->Put({}, "key" + std::to_string(i), "value" + std::to_string(i))
            .ok());
  }
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  for (int i = 0; i < 2000; i += 97) {
    EXPECT_EQ("value" + std::to_string(i), Get("key" + std::to_string(i)));
  }
  std::string files;
  ASSERT_TRUE(db_->GetProperty("elmo.levelsummary", &files));
  EXPECT_NE(files.find("files"), std::string::npos);
}

TEST_F(DbBasicTest, FlushMemTableExplicit) {
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  std::string n;
  ASSERT_TRUE(db_->GetProperty("elmo.num-files-at-level0", &n));
  EXPECT_GE(std::stoi(n), 1);
  EXPECT_EQ("v", Get("k"));
}

TEST_F(DbBasicTest, OverwritesAcrossFlushes) {
  ASSERT_TRUE(db_->Put({}, "k", "v1").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->Put({}, "k", "v2").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->Put({}, "k", "v3").ok());
  EXPECT_EQ("v3", Get("k"));
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  EXPECT_EQ("v3", Get("k"));
}

TEST_F(DbBasicTest, DeleteShadowsOlderSstValue) {
  ASSERT_TRUE(db_->Put({}, "k", "v1").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->Delete({}, "k").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_EQ("NOT_FOUND", Get("k"));
}

TEST_F(DbBasicTest, IteratorForward) {
  ASSERT_TRUE(db_->Put({}, "a", "1").ok());
  ASSERT_TRUE(db_->Put({}, "c", "3").ok());
  ASSERT_TRUE(db_->Put({}, "b", "2").ok());
  auto it = db_->NewIterator(ReadOptions());
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("a", it->key().ToString());
  it->Next();
  EXPECT_EQ("b", it->key().ToString());
  it->Next();
  EXPECT_EQ("c", it->key().ToString());
  it->Next();
  EXPECT_FALSE(it->Valid());
}

TEST_F(DbBasicTest, IteratorBackward) {
  ASSERT_TRUE(db_->Put({}, "a", "1").ok());
  ASSERT_TRUE(db_->Put({}, "b", "2").ok());
  ASSERT_TRUE(db_->Put({}, "c", "3").ok());
  auto it = db_->NewIterator(ReadOptions());
  it->SeekToLast();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("c", it->key().ToString());
  it->Prev();
  EXPECT_EQ("b", it->key().ToString());
  it->Prev();
  EXPECT_EQ("a", it->key().ToString());
  it->Prev();
  EXPECT_FALSE(it->Valid());
}

TEST_F(DbBasicTest, IteratorSkipsDeletedAndSeesAcrossLevels) {
  ASSERT_TRUE(db_->Put({}, "a", "1").ok());
  ASSERT_TRUE(db_->Put({}, "b", "2").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->Delete({}, "b").ok());
  ASSERT_TRUE(db_->Put({}, "c", "3").ok());

  auto it = db_->NewIterator(ReadOptions());
  std::string seen;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    seen += it->key().ToString() + "=" + it->value().ToString() + ";";
  }
  EXPECT_EQ("a=1;c=3;", seen);
}

TEST_F(DbBasicTest, IteratorSeek) {
  for (char c = 'a'; c <= 'j'; c++) {
    ASSERT_TRUE(db_->Put({}, std::string(1, c), "v").ok());
  }
  auto it = db_->NewIterator(ReadOptions());
  it->Seek("dd");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("e", it->key().ToString());
  it->Seek("a");
  EXPECT_EQ("a", it->key().ToString());
  it->Seek("zz");
  EXPECT_FALSE(it->Valid());
}

TEST_F(DbBasicTest, SnapshotIsolation) {
  ASSERT_TRUE(db_->Put({}, "k", "before").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put({}, "k", "after").ok());

  ReadOptions ropts;
  ropts.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(ropts, "k", &value).ok());
  EXPECT_EQ("before", value);
  ASSERT_TRUE(db_->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ("after", value);
  db_->ReleaseSnapshot(snap);
}

TEST_F(DbBasicTest, SnapshotSurvivesFlushAndCompaction) {
  ASSERT_TRUE(db_->Put({}, "k", "v1").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put({}, "k", "v2").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());

  ReadOptions ropts;
  ropts.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(ropts, "k", &value).ok());
  EXPECT_EQ("v1", value);
  db_->ReleaseSnapshot(snap);
}

TEST_F(DbBasicTest, RecoveryFromWal) {
  ASSERT_TRUE(db_->Put({}, "persist", "me").ok());
  ASSERT_TRUE(db_->Put({}, "and", "me too").ok());
  Reopen();
  EXPECT_EQ("me", Get("persist"));
  EXPECT_EQ("me too", Get("and"));
}

TEST_F(DbBasicTest, RecoveryFromSstAndWal) {
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->Put({}, "fresh", "wal-only").ok());
  Reopen();
  EXPECT_EQ("v", Get("key500"));
  EXPECT_EQ("wal-only", Get("fresh"));
}

TEST_F(DbBasicTest, RecoveryPreservesDeletes) {
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->Delete({}, "k").ok());
  Reopen();
  EXPECT_EQ("NOT_FOUND", Get("k"));
}

TEST_F(DbBasicTest, CompactRangeDrainsLevel0) {
  for (int f = 0; f < 6; f++) {
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(
          db_->Put({}, "key" + std::to_string(i), "f" + std::to_string(f))
              .ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
  }
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
  std::string n0;
  ASSERT_TRUE(db_->GetProperty("elmo.num-files-at-level0", &n0));
  EXPECT_EQ("0", n0);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ("f5", Get("key" + std::to_string(i)));
  }
}

TEST_F(DbBasicTest, DestroyRemovesEverything) {
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  db_.reset();
  ASSERT_TRUE(DB::DestroyDB("/db", options_).ok());
  options_.create_if_missing = false;
  std::unique_ptr<DB> db2;
  EXPECT_FALSE(DB::Open(options_, "/db", &db2).ok());
}

TEST_F(DbBasicTest, PropertiesExist) {
  std::string v;
  EXPECT_TRUE(db_->GetProperty("elmo.stats", &v));
  EXPECT_TRUE(db_->GetProperty("elmo.options", &v));
  EXPECT_NE(v.find("write_buffer_size"), std::string::npos);
  EXPECT_TRUE(db_->GetProperty("elmo.block-cache-usage", &v));
  EXPECT_FALSE(db_->GetProperty("elmo.not-a-property", &v));
}

TEST_F(DbBasicTest, LargeValues) {
  std::string big(200000, 'x');
  ASSERT_TRUE(db_->Put({}, "big", big).ok());
  EXPECT_EQ(big, Get("big"));
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_EQ(big, Get("big"));
}

TEST_F(DbBasicTest, EmptyKeyAndValue) {
  ASSERT_TRUE(db_->Put({}, "", "empty-key").ok());
  ASSERT_TRUE(db_->Put({}, "empty-value", "").ok());
  EXPECT_EQ("empty-key", Get(""));
  EXPECT_EQ("", Get("empty-value"));
}

// Model-based randomized test: the DB must agree with std::map under a
// random stream of puts/deletes/flushes/reopens.
TEST_F(DbBasicTest, RandomizedAgainstModel) {
  Random rnd(301);
  std::map<std::string, std::string> model;
  for (int step = 0; step < 5000; step++) {
    int op = rnd.Uniform(100);
    std::string key = "k" + std::to_string(rnd.Uniform(500));
    if (op < 60) {
      std::string value = "v" + std::to_string(rnd.Next());
      ASSERT_TRUE(db_->Put({}, key, value).ok());
      model[key] = value;
    } else if (op < 85) {
      ASSERT_TRUE(db_->Delete({}, key).ok());
      model.erase(key);
    } else if (op < 95) {
      std::string expected =
          model.count(key) ? model[key] : "NOT_FOUND";
      EXPECT_EQ(expected, Get(key)) << "step " << step;
    } else if (op < 98) {
      ASSERT_TRUE(db_->FlushMemTable().ok());
    } else {
      Reopen();
    }
  }
  // Full verification via iterator.
  auto it = db_->NewIterator(ReadOptions());
  auto mit = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(mit->first, it->key().ToString());
    EXPECT_EQ(mit->second, it->value().ToString());
  }
  EXPECT_EQ(mit, model.end());
}

}  // namespace
}  // namespace elmo::lsm
