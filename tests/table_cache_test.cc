#include "lsm/table_cache.h"

#include <gtest/gtest.h>

#include "env/mem_env.h"
#include "lsm/filename.h"
#include "table/table_builder.h"

namespace elmo::lsm {
namespace {

class TableCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options_.env = &env_;
    icmp_ = std::make_unique<InternalKeyComparator>(BytewiseComparator());
    ASSERT_TRUE(env_.CreateDirIfMissing("/db").ok());
  }

  // Writes an SST with `n` keys prefixed `prefix`, returns (number,size).
  std::pair<uint64_t, uint64_t> WriteTable(uint64_t number,
                                           const std::string& prefix,
                                           int n) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(
        env_.NewWritableFile(TableFileName("/db", number), &file).ok());
    TableBuildOptions topts;
    topts.comparator = icmp_.get();
    TableBuilder builder(topts, file.get());
    for (int i = 0; i < n; i++) {
      char user_key[32];
      snprintf(user_key, sizeof(user_key), "%s%06d", prefix.c_str(), i);
      std::string ikey;
      AppendInternalKey(
          &ikey, ParsedInternalKey(Slice(user_key, prefix.size() + 6),
                                   100, kTypeValue));
      builder.Add(ikey, "value" + std::to_string(i));
    }
    EXPECT_TRUE(builder.Finish().ok());
    uint64_t size = builder.FileSize();
    EXPECT_TRUE(file->Close().ok());
    return {number, size};
  }

  std::string LookupUser(TableCache* cache, uint64_t number, uint64_t size,
                         const std::string& user_key) {
    LookupKey lk(user_key, 200);
    std::string result = "ABSENT";
    Status s = cache->Get(number, size, lk.internal_key(),
                          [&](const Slice& k, const Slice& v) {
                            if (ExtractUserKey(k) == Slice(user_key)) {
                              result = v.ToString();
                            }
                          });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return result;
  }

  MemEnv env_;
  Options options_;
  std::unique_ptr<InternalKeyComparator> icmp_;
};

TEST_F(TableCacheTest, GetThroughCache) {
  auto [num, size] = WriteTable(5, "key", 100);
  TableCache cache("/db", options_, icmp_.get(), nullptr, nullptr, 10);
  EXPECT_EQ("value42", LookupUser(&cache, num, size, "key000042"));
  EXPECT_EQ("ABSENT", LookupUser(&cache, num, size, "key999999"));
  // Second lookup hits the cached Table reader.
  EXPECT_EQ("value7", LookupUser(&cache, num, size, "key000007"));
}

TEST_F(TableCacheTest, IteratorKeepsTableAlive) {
  auto [num, size] = WriteTable(6, "it", 50);
  TableCache cache("/db", options_, icmp_.get(), nullptr, nullptr, 1);
  auto iter = cache.NewIterator(num, size);
  // Force the entry out of the tiny cache by opening another table.
  auto [num2, size2] = WriteTable(7, "other", 50);
  auto iter2 = cache.NewIterator(num2, size2);
  // The first iterator still works (shared ownership).
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) count++;
  EXPECT_EQ(50, count);
}

TEST_F(TableCacheTest, EvictForcesReopen) {
  auto [num, size] = WriteTable(8, "ev", 20);
  TableCache cache("/db", options_, icmp_.get(), nullptr, nullptr, 10);
  EXPECT_EQ("value3", LookupUser(&cache, num, size, "ev000003"));
  cache.Evict(num);
  // Reopen from disk transparently.
  EXPECT_EQ("value3", LookupUser(&cache, num, size, "ev000003"));
}

TEST_F(TableCacheTest, MissingFileSurfacesError) {
  TableCache cache("/db", options_, icmp_.get(), nullptr, nullptr, 10);
  LookupKey lk("k", 100);
  Status s = cache.Get(999, 1000, lk.internal_key(),
                       [](const Slice&, const Slice&) {});
  EXPECT_FALSE(s.ok());
  auto iter = cache.NewIterator(999, 1000);
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  EXPECT_FALSE(iter->status().ok());
}

TEST_F(TableCacheTest, BloomFilterWiredThroughOptions) {
  options_.bloom_filter_bits_per_key = 10;
  auto [num, size] = WriteTable(9, "bf", 100);
  // Build again WITH the filter policy active so the file carries one.
  {
    TableCache cache("/db", options_, icmp_.get(), nullptr, nullptr, 10);
    EXPECT_EQ("value5", LookupUser(&cache, num, size, "bf000005"));
    EXPECT_EQ("ABSENT", LookupUser(&cache, num, size, "zz999999"));
  }
}

}  // namespace
}  // namespace elmo::lsm
