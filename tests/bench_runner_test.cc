#include "bench_kit/bench_runner.h"

#include <gtest/gtest.h>

#include "util/json.h"

namespace elmo::bench {
namespace {

HardwareProfile TestHw() {
  return HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd());
}

TEST(ScaleCapacities, DividesByteCapacities) {
  lsm::Options o;
  o.write_buffer_size = 64ull << 20;
  o.block_cache_size = 1ull << 30;
  o.max_bytes_for_level_base = 256ull << 20;
  o.target_file_size_base = 64ull << 20;
  lsm::Options scaled = ScaleCapacities(o);
  EXPECT_EQ((64ull << 20) / kCapacityScale, scaled.write_buffer_size);
  EXPECT_EQ((1ull << 30) / kCapacityScale, scaled.block_cache_size);
  // Non-capacity options untouched.
  EXPECT_EQ(o.max_background_jobs, scaled.max_background_jobs);
  EXPECT_EQ(o.compaction_readahead_size, scaled.compaction_readahead_size);
}

TEST(ScaleCapacities, FloorsPreserved) {
  lsm::Options o;
  o.write_buffer_size = 1 << 16;  // tiny already
  lsm::Options scaled = ScaleCapacities(o);
  EXPECT_GE(scaled.write_buffer_size, 64u << 10);
}

TEST(BenchRunner, FillRandomProducesSaneResult) {
  BenchRunner runner(TestHw());
  auto spec = WorkloadSpec::FillRandom(20000);
  auto r = runner.Run(spec, lsm::Options());
  EXPECT_EQ("fillrandom", r.workload);
  EXPECT_EQ(20000u, r.ops);
  EXPECT_GT(r.ops_per_sec, 1000.0);
  EXPECT_EQ(20000u, r.write_micros.Count());
  EXPECT_EQ(0u, r.read_micros.Count());
  EXPECT_GT(r.flushes, 0u);
}

TEST(BenchRunner, ReadRandomMeasuresReads) {
  BenchRunner runner(TestHw());
  auto spec = WorkloadSpec::ReadRandom(5000, 50000);
  auto r = runner.Run(spec, lsm::Options());
  EXPECT_EQ(5000u, r.read_micros.Count());
  EXPECT_EQ(0u, r.write_micros.Count());
  EXPECT_GT(r.p99_read_us(), 0.0);
}

TEST(BenchRunner, MixedWorkloadSplitsOps) {
  BenchRunner runner(TestHw());
  auto spec = WorkloadSpec::ReadRandomWriteRandom(20000);
  auto r = runner.Run(spec, lsm::Options());
  EXPECT_EQ(20000u, r.write_micros.Count() + r.read_micros.Count());
  // Roughly 50/50 split.
  EXPECT_NEAR(10000.0, static_cast<double>(r.write_micros.Count()), 600);
}

TEST(BenchRunner, DeterministicAcrossRuns) {
  BenchRunner a(TestHw());
  BenchRunner b(TestHw());
  auto spec = WorkloadSpec::FillRandom(10000);
  auto ra = a.Run(spec, lsm::Options());
  auto rb = b.Run(spec, lsm::Options());
  EXPECT_EQ(ra.ops_per_sec, rb.ops_per_sec);
  EXPECT_EQ(ra.p99_write_us(), rb.p99_write_us());
}

TEST(BenchRunner, ProbeRunsFewerOps) {
  BenchRunner runner(TestHw());
  auto spec = WorkloadSpec::FillRandom(50000);
  auto probe = runner.RunProbe(spec, lsm::Options(), 2000);
  EXPECT_EQ(2000u, probe.ops);
  EXPECT_GT(probe.ops_per_sec, 0.0);
}

TEST(BenchRunner, ReportRoundTripsThroughParser) {
  BenchRunner runner(TestHw());
  auto spec = WorkloadSpec::Mixgraph(5000);
  spec.preload_keys = 2000;
  spec.num_keys = 10000;
  auto r = runner.Run(spec, lsm::Options());
  auto parsed = ParseReport(r.ToReport());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ("mixgraph", parsed->workload);
  EXPECT_NEAR(r.ops_per_sec, parsed->ops_per_sec,
              r.ops_per_sec * 0.01 + 1);
}

TEST(BenchRunner, ThreadsContractWallClock) {
  auto spec1 = WorkloadSpec::ReadRandomWriteRandom(10000);
  spec1.threads = 1;
  auto spec2 = spec1;
  spec2.threads = 2;
  BenchRunner a(TestHw()), b(TestHw());
  auto r1 = a.Run(spec1, lsm::Options());
  auto r2 = b.Run(spec2, lsm::Options());
  EXPECT_GT(r2.ops_per_sec, r1.ops_per_sec * 1.5);
}

// Every benchmark run carries IO-trace and cache-sim evidence: a
// non-empty per-kind breakdown and a >= 4-point miss-ratio curve, both
// as prompt text and as embedded JSON.
TEST(BenchRunner, RunProducesIoAndCacheEvidence) {
  BenchRunner runner(TestHw());
  auto spec = WorkloadSpec::ReadRandomWriteRandom(20000);
  auto r = runner.Run(spec, lsm::Options());

  ASSERT_FALSE(r.io_breakdown.empty());
  EXPECT_NE(r.io_breakdown.find("Per-kind IO"), std::string::npos);
  EXPECT_NE(r.io_breakdown.find("wal"), std::string::npos);

  ASSERT_FALSE(r.cache_sim_summary.empty());
  EXPECT_NE(r.cache_sim_summary.find("Miss-ratio curve"), std::string::npos);
  EXPECT_NE(r.cache_sim_summary.find("(configured)"), std::string::npos);

  json::Value sim;
  ASSERT_TRUE(json::Parse(r.cache_sim_json, &sim).ok());
  const json::Value* curve = sim.Find("curve");
  ASSERT_NE(nullptr, curve);
  ASSERT_TRUE(curve->is_array());
  EXPECT_GE(curve->as_array().size(), 4u);

  json::Value io;
  ASSERT_TRUE(json::Parse(r.io_analysis_json, &io).ok());
  ASSERT_NE(nullptr, io.Find("by_kind"));

  // The combined evidence block reaches reports and the prompt.
  EXPECT_NE(r.IoCacheEvidence().find("Per-kind IO"), std::string::npos);
  EXPECT_NE(r.ToReport().find("IO & cache evidence"), std::string::npos);
}

TEST(BenchRunner, MixgraphUsesVariableValueSizes) {
  BenchRunner runner(TestHw());
  auto spec = WorkloadSpec::Mixgraph(5000);
  spec.preload_keys = 1000;
  auto r = runner.Run(spec, lsm::Options());
  EXPECT_GT(r.ops_per_sec, 0.0);
}

}  // namespace
}  // namespace elmo::bench
