#include "bench_kit/regression.h"

#include <gtest/gtest.h>

#include "bench_kit/workload.h"
#include "env/device_model.h"
#include "env/hardware_profile.h"

namespace elmo::bench {
namespace {

// Hand-built reports for the comparison golden cases. A realistic cell:
// the quick-matrix fillrandom block.
MatrixReport GoldenBaseline() {
  MatrixReport r;
  r.git_sha = "baseline000000";
  r.seed = 42;
  r.mode = "quick";
  r.cells.emplace_back(
      "nvme_4c4g/fillrandom",
      MetricMap{{"ops_per_sec", 160000.0},
                {"p99_write_us", 9.0},
                {"p999_write_us", 12.0},
                {"write_amp", 3.7}});
  r.cells.emplace_back("nvme_4c4g/readrandom",
                       MetricMap{{"ops_per_sec", 15000.0},
                                 {"p99_read_us", 90.0},
                                 {"p999_read_us", 95.0}});
  return r;
}

const MetricDelta* FindDelta(const CompareReport& cmp,
                             const std::string& cell,
                             const std::string& metric) {
  for (const auto& d : cmp.deltas) {
    if (d.cell == cell && d.metric == metric) return &d;
  }
  return nullptr;
}

TEST(CompareMatrix, ImprovementPasses) {
  MatrixReport base = GoldenBaseline();
  MatrixReport cur = GoldenBaseline();
  cur.git_sha = "current0000000";
  // Faster and lower-latency everywhere: never a breach.
  for (auto& [cell, m] : cur.cells) {
    m["ops_per_sec"] *= 1.30;
    for (auto& [k, v] : m) {
      if (k.rfind("p99", 0) == 0) v *= 0.8;
    }
  }
  CompareReport cmp = CompareMatrix(base, cur);
  EXPECT_TRUE(cmp.comparable);
  EXPECT_FALSE(cmp.HasBreach());
  EXPECT_TRUE(cmp.breaches.empty());
  const MetricDelta* d = FindDelta(cmp, "nvme_4c4g/fillrandom", "ops_per_sec");
  ASSERT_NE(d, nullptr);
  EXPECT_NEAR(d->delta_pct, 30.0, 0.01);
  EXPECT_TRUE(d->gated);
  EXPECT_FALSE(d->breach);
}

TEST(CompareMatrix, Planted20PctSlowdownBreaches) {
  // The acceptance scenario: a planted 20% throughput regression must
  // trip the default 15% gate.
  MatrixReport base = GoldenBaseline();
  MatrixReport cur = GoldenBaseline();
  for (auto& [cell, m] : cur.cells) m["ops_per_sec"] *= 0.80;
  CompareReport cmp = CompareMatrix(base, cur);
  EXPECT_TRUE(cmp.comparable);
  EXPECT_TRUE(cmp.HasBreach());
  EXPECT_EQ(cmp.breaches.size(), 2u);  // both cells' ops_per_sec
  const MetricDelta* d = FindDelta(cmp, "nvme_4c4g/fillrandom", "ops_per_sec");
  ASSERT_NE(d, nullptr);
  EXPECT_NEAR(d->delta_pct, -20.0, 0.01);
  EXPECT_TRUE(d->breach);
  // The report text names the breach.
  EXPECT_NE(cmp.ToText().find("REGRESSION BREACH"), std::string::npos);
  EXPECT_NE(cmp.ToJson().find("\"has_breach\": true"), std::string::npos);
}

TEST(CompareMatrix, SlowdownWithinThresholdPasses) {
  MatrixReport base = GoldenBaseline();
  MatrixReport cur = GoldenBaseline();
  for (auto& [cell, m] : cur.cells) m["ops_per_sec"] *= 0.90;  // -10%
  EXPECT_FALSE(CompareMatrix(base, cur).HasBreach());
  // ...until the thresholds are tightened below the drop.
  RegressionThresholds tight;
  tight.max_throughput_drop_pct = 5.0;
  EXPECT_TRUE(CompareMatrix(base, cur, tight).HasBreach());
}

TEST(CompareMatrix, P99RiseBreaches) {
  MatrixReport base = GoldenBaseline();
  MatrixReport cur = GoldenBaseline();
  cur.cells[1].second["p99_read_us"] = 90.0 * 1.30;  // +30% > 25% gate
  CompareReport cmp = CompareMatrix(base, cur);
  EXPECT_TRUE(cmp.HasBreach());
  const MetricDelta* d = FindDelta(cmp, "nvme_4c4g/readrandom", "p99_read_us");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->breach);
  // p99.9 has its own wider gate: +30% is fine there.
  const MetricDelta* d999 =
      FindDelta(cmp, "nvme_4c4g/readrandom", "p999_read_us");
  ASSERT_NE(d999, nullptr);
  EXPECT_FALSE(d999->breach);
}

TEST(CompareMatrix, InfoMetricsNeverGate) {
  MatrixReport base = GoldenBaseline();
  MatrixReport cur = GoldenBaseline();
  cur.cells[0].second["write_amp"] = 37.0;  // 10x worse, info-only
  CompareReport cmp = CompareMatrix(base, cur);
  EXPECT_FALSE(cmp.HasBreach());
  const MetricDelta* d = FindDelta(cmp, "nvme_4c4g/fillrandom", "write_amp");
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(d->gated);
}

TEST(CompareMatrix, MissingMetricIsABreach) {
  MatrixReport base = GoldenBaseline();
  MatrixReport cur = GoldenBaseline();
  cur.cells[0].second.erase("p99_write_us");
  CompareReport cmp = CompareMatrix(base, cur);
  EXPECT_TRUE(cmp.HasBreach());
  ASSERT_EQ(cmp.missing_metrics.size(), 1u);
  EXPECT_EQ(cmp.missing_metrics[0], "nvme_4c4g/fillrandom: p99_write_us");
}

TEST(CompareMatrix, MissingCellIsABreachNewCellIsNot) {
  MatrixReport base = GoldenBaseline();
  MatrixReport cur = GoldenBaseline();
  cur.cells.erase(cur.cells.begin());  // drop fillrandom
  cur.cells.emplace_back("nvme_4c4g/brandnew",
                         MetricMap{{"ops_per_sec", 1.0}});
  CompareReport cmp = CompareMatrix(base, cur);
  EXPECT_TRUE(cmp.HasBreach());
  ASSERT_EQ(cmp.missing_cells.size(), 1u);
  EXPECT_EQ(cmp.missing_cells[0], "nvme_4c4g/fillrandom");
  ASSERT_EQ(cmp.new_cells.size(), 1u);
  EXPECT_EQ(cmp.new_cells[0], "nvme_4c4g/brandnew");

  // A new cell alone must not fail the gate.
  MatrixReport cur2 = GoldenBaseline();
  cur2.cells.emplace_back("nvme_4c4g/brandnew",
                          MetricMap{{"ops_per_sec", 1.0}});
  EXPECT_FALSE(CompareMatrix(base, cur2).HasBreach());
}

TEST(CompareMatrix, SchemaMismatchFailsClosed) {
  MatrixReport base = GoldenBaseline();
  MatrixReport cur = GoldenBaseline();
  base.schema_version = kBenchSchemaVersion - 1;
  CompareReport cmp = CompareMatrix(base, cur);
  EXPECT_FALSE(cmp.comparable);
  EXPECT_TRUE(cmp.HasBreach());
  EXPECT_NE(cmp.incomparable_reason.find("schema_version"),
            std::string::npos);
  EXPECT_NE(cmp.ToText().find("INCOMPARABLE"), std::string::npos);
}

TEST(CompareMatrix, ModeMismatchFailsClosed) {
  MatrixReport base = GoldenBaseline();
  MatrixReport cur = GoldenBaseline();
  cur.mode = "full";
  CompareReport cmp = CompareMatrix(base, cur);
  EXPECT_FALSE(cmp.comparable);
  EXPECT_TRUE(cmp.HasBreach());
  EXPECT_NE(cmp.incomparable_reason.find("mode"), std::string::npos);
}

TEST(MatrixReport, JsonRoundTrip) {
  MatrixReport r = GoldenBaseline();
  MatrixReport parsed;
  ASSERT_TRUE(MatrixReport::FromJson(r.ToJson(), &parsed).ok());
  EXPECT_EQ(parsed.schema_version, r.schema_version);
  EXPECT_EQ(parsed.git_sha, r.git_sha);
  EXPECT_EQ(parsed.seed, r.seed);
  EXPECT_EQ(parsed.mode, r.mode);
  EXPECT_EQ(parsed.MetricsFingerprint(), r.MetricsFingerprint());
  // Round-tripped report compares clean against the original.
  EXPECT_FALSE(CompareMatrix(r, parsed).HasBreach());
}

TEST(MatrixReport, FromJsonRejectsGarbage) {
  MatrixReport out;
  EXPECT_FALSE(MatrixReport::FromJson("not json", &out).ok());
  EXPECT_FALSE(MatrixReport::FromJson("{}", &out).ok());
  EXPECT_FALSE(
      MatrixReport::FromJson("{\"kind\": \"bench_tournament\"}", &out).ok());
  EXPECT_FALSE(
      MatrixReport::FromJson("{\"kind\": \"bench_matrix\"}", &out).ok());
}

TEST(MatrixReport, PreVersionedFileRefused) {
  // A baseline written before schema_version existed parses (version 0)
  // but can never pass the gate against a current-version run.
  MatrixReport old;
  ASSERT_TRUE(MatrixReport::FromJson(
                  "{\"kind\": \"bench_matrix\", \"cells\": {}}", &old)
                  .ok());
  EXPECT_EQ(old.schema_version, 0);
  CompareReport cmp = CompareMatrix(old, GoldenBaseline());
  EXPECT_FALSE(cmp.comparable);
  EXPECT_TRUE(cmp.HasBreach());
}

TEST(RunMatrix, SameSeedIsDeterministic) {
  // Two same-seed runs of a tiny custom matrix must agree byte-for-byte
  // on the metric blocks (the fingerprint excludes git SHA/metadata).
  std::vector<MatrixCell> cells;
  cells.push_back({"tiny/fillrandom",
                   HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd()),
                   WorkloadSpec::FillRandom(30000)});
  cells.push_back({"tiny/mixgraph",
                   HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd()),
                   WorkloadSpec::Mixgraph(20000)});
  MatrixReport a = RunMatrix(cells, 7, "quick");
  MatrixReport b = RunMatrix(cells, 7, "quick");
  EXPECT_EQ(a.MetricsFingerprint(), b.MetricsFingerprint());
  EXPECT_FALSE(CompareMatrix(a, b).HasBreach());
  // A different seed must actually change something (the fingerprint is
  // not vacuously constant).
  MatrixReport c = RunMatrix(cells, 8, "quick");
  EXPECT_NE(a.MetricsFingerprint(), c.MetricsFingerprint());
}

TEST(RunMatrix, ProducesCompleteMetricBlocks) {
  std::vector<MatrixCell> cells = DefaultMatrix(true);
  ASSERT_GE(cells.size(), 5u);
  // Run just the first cell (fresh-runner-per-cell means the subset
  // reproduces the full run's numbers).
  std::vector<MatrixCell> one{cells[0]};
  one[0].spec.num_ops = 30000;  // keep the unit test fast
  one[0].spec.num_keys = 30000;
  MatrixReport r = RunMatrix(one, 42, "quick");
  ASSERT_EQ(r.cells.size(), 1u);
  const MetricMap& m = r.cells[0].second;
  for (const char* key :
       {"ops_per_sec", "mb_per_sec", "p99_write_us", "p999_write_us",
        "write_amp", "stall_seconds", "flushes", "compactions"}) {
    EXPECT_TRUE(m.count(key)) << key;
  }
  EXPECT_GT(m.at("ops_per_sec"), 0);
  EXPECT_GT(m.at("write_amp"), 0);
  EXPECT_EQ(r.seed, 42u);
  EXPECT_EQ(r.schema_version, kBenchSchemaVersion);
}

}  // namespace
}  // namespace elmo::bench
