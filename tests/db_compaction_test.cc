// Compaction behavior: level invariants under load, deletion dropping,
// universal style, trivial moves, option effects on tree shape.
#include <gtest/gtest.h>

#include <atomic>

#include "env/mem_env.h"
#include "lsm/db.h"
#include "lsm/event_listener.h"
#include "util/random.h"

namespace elmo::lsm {
namespace {

// Counts every event; the fixture cross-checks the counts against the
// engine tickers so no flush/compaction escapes the listener.
class CountingListener : public EventListener {
 public:
  void OnFlushBegin(const FlushJobInfo&) override { flush_begin++; }
  void OnFlushCompleted(const FlushJobInfo& info) override {
    flush_completed++;
    flush_bytes += info.output_bytes;
    EXPECT_GT(info.imms_merged, 0);
    EXPECT_EQ(0, info.output_level);
  }
  void OnCompactionBegin(const CompactionJobInfo&) override {
    compaction_begin++;
  }
  void OnCompactionCompleted(const CompactionJobInfo& info) override {
    compaction_completed++;
    if (info.trivial_move) trivial_moves++;
    EXPECT_GE(info.output_level, info.level);
    EXPECT_GT(info.num_input_files, 0);
  }
  void OnStallConditionChanged(const StallInfo& info) override {
    stall_changes++;
    EXPECT_NE(info.previous, info.current);
  }
  void OnWriteStop(const StallInfo&) override { write_stops++; }

  std::atomic<uint64_t> flush_begin{0};
  std::atomic<uint64_t> flush_completed{0};
  std::atomic<uint64_t> flush_bytes{0};
  std::atomic<uint64_t> compaction_begin{0};
  std::atomic<uint64_t> compaction_completed{0};
  std::atomic<uint64_t> trivial_moves{0};
  std::atomic<uint64_t> stall_changes{0};
  std::atomic<uint64_t> write_stops{0};
};

class DbCompactionTest : public ::testing::Test {
 protected:
  void Open() {
    env_ = std::make_unique<MemEnv>();
    options_.env = env_.get();
    options_.create_if_missing = true;
    listener_ = std::make_shared<CountingListener>();
    options_.listeners.push_back(listener_);
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }

  void TearDown() override {
    if (db_ == nullptr || listener_ == nullptr) return;
    // The listener must have observed every flush and compaction the
    // engine counted, on whichever path (background, sim, manual).
    EXPECT_TRUE(db_->WaitForBackgroundWork().ok());
    const auto& stats = db_->stats();
    EXPECT_EQ(stats.Get(Ticker::kFlushCount), listener_->flush_completed);
    EXPECT_EQ(stats.Get(Ticker::kFlushBytes), listener_->flush_bytes);
    EXPECT_EQ(stats.Get(Ticker::kCompactionCount) +
                  stats.Get(Ticker::kTrivialMoveCount),
              listener_->compaction_completed);
    EXPECT_EQ(stats.Get(Ticker::kTrivialMoveCount),
              listener_->trivial_moves);
    EXPECT_GE(listener_->flush_begin, listener_->flush_completed);
    EXPECT_GE(listener_->compaction_begin, listener_->compaction_completed);
  }

  int FilesAt(int level) {
    std::string v;
    EXPECT_TRUE(db_->GetProperty(
        "elmo.num-files-at-level" + std::to_string(level), &v));
    return std::stoi(v);
  }

  void FillKeys(int n, int value_size = 256, uint32_t seed = 42) {
    Random64 rng(seed);
    std::string value(value_size, 'v');
    for (int i = 0; i < n; i++) {
      char key[24];
      snprintf(key, sizeof(key), "%016llu",
               (unsigned long long)rng.Uniform(n));
      ASSERT_TRUE(db_->Put({}, Slice(key, 16), value).ok());
    }
  }

  std::unique_ptr<MemEnv> env_;
  Options options_;
  std::unique_ptr<DB> db_;
  std::shared_ptr<CountingListener> listener_;
};

TEST_F(DbCompactionTest, LeveledLoadPushesDataDown) {
  options_.write_buffer_size = 32 << 10;
  options_.max_bytes_for_level_base = 256 << 10;
  options_.target_file_size_base = 64 << 10;
  Open();
  FillKeys(20000, 128);
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());

  // Data must have flowed past L0/L1.
  int deep_files = 0;
  for (int level = 2; level < options_.num_levels; level++) {
    deep_files += FilesAt(level);
  }
  EXPECT_GT(deep_files, 0) << "expected multi-level tree";
  // L0 must be bounded by the trigger region.
  EXPECT_LE(FilesAt(0), options_.level0_slowdown_writes_trigger);
}

TEST_F(DbCompactionTest, DataIntactAfterHeavyCompaction) {
  options_.write_buffer_size = 32 << 10;
  options_.max_bytes_for_level_base = 128 << 10;
  options_.target_file_size_base = 32 << 10;
  Open();
  // Sequential keys with known values, written twice (second overwrite
  // wins everywhere).
  for (int round = 0; round < 2; round++) {
    for (int i = 0; i < 5000; i++) {
      char key[24];
      snprintf(key, sizeof(key), "%016d", i);
      ASSERT_TRUE(db_->Put({}, Slice(key, 16),
                           "r" + std::to_string(round) + "-" +
                               std::to_string(i))
                      .ok());
    }
  }
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  Random64 rng(7);
  for (int probe = 0; probe < 500; probe++) {
    int i = static_cast<int>(rng.Uniform(5000));
    char key[24];
    snprintf(key, sizeof(key), "%016d", i);
    std::string v;
    ASSERT_TRUE(db_->Get({}, Slice(key, 16), &v).ok()) << i;
    EXPECT_EQ("r1-" + std::to_string(i), v);
  }
}

TEST_F(DbCompactionTest, DeletionMarkersDroppedAtBottom) {
  options_.write_buffer_size = 32 << 10;
  Open();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i),
                         std::string(100, 'v'))
                    .ok());
  }
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Delete({}, "key" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());

  // Everything deleted and tombstones dropped: the tree is empty-ish.
  uint64_t total_bytes = 0;
  for (int level = 0; level < options_.num_levels; level++) {
    std::string v;
    (void)total_bytes;
    EXPECT_EQ(0, FilesAt(level)) << "level " << level;
  }
  auto it = db_->NewIterator({});
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
}

TEST_F(DbCompactionTest, DeletionsSurviveWhenSnapshotNeedsThem) {
  options_.write_buffer_size = 32 << 10;
  Open();
  ASSERT_TRUE(db_->Put({}, "pinned", "old").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Delete({}, "pinned").ok());
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());

  ReadOptions at_snap;
  at_snap.snapshot = snap;
  std::string v;
  EXPECT_TRUE(db_->Get(at_snap, "pinned", &v).ok());
  EXPECT_EQ("old", v);
  EXPECT_TRUE(db_->Get({}, "pinned", &v).IsNotFound());
  db_->ReleaseSnapshot(snap);
}

TEST_F(DbCompactionTest, UniversalStyleKeepsDataInL0) {
  options_.compaction_style = CompactionStyle::kUniversal;
  options_.write_buffer_size = 32 << 10;
  options_.level0_file_num_compaction_trigger = 4;
  Open();
  FillKeys(8000, 128);
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  // Universal keeps all data as L0 runs, merged when count hits the
  // trigger.
  EXPECT_LT(FilesAt(0), 8);
  for (int level = 1; level < options_.num_levels; level++) {
    EXPECT_EQ(0, FilesAt(level));
  }
  // Reads still correct.
  std::string v;
  char key[24];
  snprintf(key, sizeof(key), "%016llu", 0ull);
  (void)v;
}

TEST_F(DbCompactionTest, UniversalReadsCorrect) {
  options_.compaction_style = CompactionStyle::kUniversal;
  options_.write_buffer_size = 32 << 10;
  Open();
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(
        db_->Put({}, "key" + std::to_string(i), "v" + std::to_string(i))
            .ok());
  }
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  for (int i = 0; i < 3000; i += 111) {
    std::string v;
    ASSERT_TRUE(db_->Get({}, "key" + std::to_string(i), &v).ok()) << i;
    EXPECT_EQ("v" + std::to_string(i), v);
  }
}

TEST_F(DbCompactionTest, DisableAutoCompactionsLeavesL0Deep) {
  options_.write_buffer_size = 32 << 10;
  options_.disable_auto_compactions = true;
  options_.level0_slowdown_writes_trigger = 1000;  // avoid stalls
  options_.level0_stop_writes_trigger = 2000;
  Open();
  FillKeys(5000, 128);
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  EXPECT_GT(FilesAt(0), options_.level0_file_num_compaction_trigger);
  for (int level = 1; level < options_.num_levels; level++) {
    EXPECT_EQ(0, FilesAt(level));
  }
}

TEST_F(DbCompactionTest, StallCountersMoveUnderPressure) {
  options_.write_buffer_size = 16 << 10;
  options_.max_write_buffer_number = 2;
  Open();
  FillKeys(20000, 200);
  const auto& stats = db_->stats();
  // With tiny buffers the writer must have waited for flushes at least
  // once.
  EXPECT_GT(stats.Get(Ticker::kFlushCount), 10u);
}

TEST_F(DbCompactionTest, TrivialMoveCounted) {
  // Non-overlapping sequential files moved down without rewrite.
  options_.write_buffer_size = 32 << 10;
  options_.max_bytes_for_level_base = 64 << 10;
  Open();
  for (int i = 0; i < 10000; i++) {
    char key[24];
    snprintf(key, sizeof(key), "%016d", i);  // strictly increasing
    ASSERT_TRUE(db_->Put({}, Slice(key, 16), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  EXPECT_GT(db_->stats().Get(Ticker::kTrivialMoveCount), 0u);
}

TEST_F(DbCompactionTest, CompressionShrinksFiles) {
  options_.write_buffer_size = 64 << 10;
  options_.compression = CompressionType::kRleCompression;
  Open();
  // Highly compressible values.
  for (int i = 0; i < 3000; i++) {
    char key[24];
    snprintf(key, sizeof(key), "%016d", i);
    ASSERT_TRUE(db_->Put({}, Slice(key, 16), std::string(256, 'C')).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  uint64_t flush_bytes = db_->stats().Get(Ticker::kFlushBytes);
  // ~3000 * 272B raw ~ 800KB; RLE should crush the value payload.
  EXPECT_LT(flush_bytes, 400u << 10);
  std::string v;
  ASSERT_TRUE(db_->Get({}, Slice("0000000000000042", 16), &v).ok());
  EXPECT_EQ(std::string(256, 'C'), v);
}

}  // namespace
}  // namespace elmo::lsm
