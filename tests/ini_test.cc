#include "util/ini.h"

#include <gtest/gtest.h>

namespace elmo {
namespace {

TEST(Ini, ParseBasic) {
  IniDoc doc;
  ASSERT_TRUE(IniDoc::Parse("a = 1\nb=2\n\n[Sec]\nc = three\n", &doc).ok());
  EXPECT_EQ("1", doc.Get("", "a").value());
  EXPECT_EQ("2", doc.Get("", "b").value());
  EXPECT_EQ("three", doc.Get("Sec", "c").value());
  EXPECT_FALSE(doc.Get("Sec", "a").has_value());
  EXPECT_FALSE(doc.Get("", "missing").has_value());
}

TEST(Ini, CommentsAndWhitespace) {
  IniDoc doc;
  ASSERT_TRUE(IniDoc::Parse("# comment\n; also comment\n  key  =  value  \n",
                            &doc)
                  .ok());
  EXPECT_EQ("value", doc.Get("", "key").value());
}

TEST(Ini, MalformedLinesReported) {
  IniDoc doc;
  std::vector<std::string> bad;
  ASSERT_TRUE(
      IniDoc::Parse("good = 1\nthis is not a pair\n= novalue\n", &doc, &bad)
          .ok());
  EXPECT_EQ(2u, bad.size());
  EXPECT_EQ("1", doc.Get("", "good").value());
}

TEST(Ini, UnterminatedSectionFails) {
  IniDoc doc;
  EXPECT_FALSE(IniDoc::Parse("[Sec\nkey = 1\n", &doc).ok());
}

TEST(Ini, SerializeRoundTrip) {
  IniDoc doc;
  doc.Set("DBOptions", "max_background_jobs", "4");
  doc.Set("DBOptions", "bytes_per_sync", "1048576");
  doc.Set("CFOptions", "write_buffer_size", "67108864");
  std::string text = doc.Serialize();

  IniDoc parsed;
  ASSERT_TRUE(IniDoc::Parse(text, &parsed).ok());
  EXPECT_EQ("4", parsed.Get("DBOptions", "max_background_jobs").value());
  EXPECT_EQ("1048576", parsed.Get("DBOptions", "bytes_per_sync").value());
  EXPECT_EQ("67108864",
            parsed.Get("CFOptions", "write_buffer_size").value());
}

TEST(Ini, SetOverwritesInPlace) {
  IniDoc doc;
  doc.Set("S", "k", "1");
  doc.Set("S", "k2", "x");
  doc.Set("S", "k", "2");
  EXPECT_EQ("2", doc.Get("S", "k").value());
  // Order preserved: k before k2.
  ASSERT_EQ(1u, doc.sections().size());
  EXPECT_EQ("k", doc.sections()[0].entries[0].key);
  EXPECT_EQ("k2", doc.sections()[0].entries[1].key);
}

TEST(Ini, Erase) {
  IniDoc doc;
  doc.Set("S", "k", "1");
  EXPECT_TRUE(doc.Erase("S", "k"));
  EXPECT_FALSE(doc.Erase("S", "k"));
  EXPECT_FALSE(doc.Get("S", "k").has_value());
}

TEST(Ini, ValuesMayContainEquals) {
  IniDoc doc;
  ASSERT_TRUE(IniDoc::Parse("k = a=b=c\n", &doc).ok());
  EXPECT_EQ("a=b=c", doc.Get("", "k").value());
}

TEST(Ini, EmptySectionSurvives) {
  IniDoc doc;
  ASSERT_TRUE(IniDoc::Parse("[Empty]\n[Full]\nk = 1\n", &doc).ok());
  EXPECT_TRUE(doc.HasSection("Empty"));
  EXPECT_TRUE(doc.HasSection("Full"));
  EXPECT_FALSE(doc.HasSection("Missing"));
}

TEST(Ini, CrLfInput) {
  IniDoc doc;
  ASSERT_TRUE(IniDoc::Parse("[S]\r\nk = v\r\n", &doc).ok());
  EXPECT_EQ("v", doc.Get("S", "k").value());
}

}  // namespace
}  // namespace elmo
