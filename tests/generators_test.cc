#include "bench_kit/generators.h"

#include <gtest/gtest.h>

#include <map>

namespace elmo::bench {
namespace {

TEST(MakeKey, FixedWidthOrdered) {
  EXPECT_EQ(16u, MakeKey(0).size());
  EXPECT_EQ(16u, MakeKey(999999999).size());
  EXPECT_LT(MakeKey(1), MakeKey(2));
  EXPECT_LT(MakeKey(99), MakeKey(100));
  EXPECT_EQ("0000000000000042", MakeKey(42));
}

TEST(Zipfian, InRangeAndDeterministic) {
  ZipfianGenerator a(1000, 0.9, 7);
  ZipfianGenerator b(1000, 0.9, 7);
  for (int i = 0; i < 10000; i++) {
    uint64_t va = a.Next();
    EXPECT_LT(va, 1000u);
    EXPECT_EQ(va, b.Next());
  }
}

TEST(Zipfian, SkewConcentratesMass) {
  const uint64_t n = 10000;
  ZipfianGenerator gen(n, 0.99, 11);
  std::map<uint64_t, int> counts;
  const int draws = 200000;
  for (int i = 0; i < draws; i++) counts[gen.Next()]++;

  // Top 1% of distinct keys should absorb a large share of accesses.
  std::vector<int> freq;
  for (const auto& [k, c] : counts) freq.push_back(c);
  std::sort(freq.rbegin(), freq.rend());
  int64_t top = 0;
  size_t top_n = n / 100;
  for (size_t i = 0; i < std::min(top_n, freq.size()); i++) top += freq[i];
  EXPECT_GT(top, draws / 4) << "zipf(0.99) should be heavily skewed";
}

TEST(Zipfian, LowerThetaLessSkewed) {
  auto top_share = [](double theta) {
    ZipfianGenerator gen(10000, theta, 11);
    std::map<uint64_t, int> counts;
    for (int i = 0; i < 100000; i++) counts[gen.Next()]++;
    std::vector<int> freq;
    for (const auto& [k, c] : counts) freq.push_back(c);
    std::sort(freq.rbegin(), freq.rend());
    int64_t top = 0;
    for (size_t i = 0; i < 100 && i < freq.size(); i++) top += freq[i];
    return top;
  };
  EXPECT_GT(top_share(0.99), top_share(0.5));
}

TEST(Pareto, BoundsRespected) {
  ParetoValueSize gen(0.2615, 25.45, 35.0, 9, /*min=*/1, /*max=*/8192);
  for (int i = 0; i < 100000; i++) {
    uint32_t size = gen.Next();
    ASSERT_GE(size, 1u);
    ASSERT_LE(size, 8192u);
  }
}

TEST(Pareto, HeavyTailButModestMean) {
  ParetoValueSize gen(0.2615, 25.45, 35.0, 9);
  uint64_t sum = 0;
  uint32_t max_seen = 0;
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    uint32_t v = gen.Next();
    sum += v;
    max_seen = std::max(max_seen, v);
  }
  double mean = sum / static_cast<double>(n);
  EXPECT_GT(mean, 30.0);
  EXPECT_LT(mean, 200.0);
  // The tail must reach far beyond the mean.
  EXPECT_GT(max_seen, 10 * mean);
}

TEST(ValueGenerator, DeterministicAndSized) {
  ValueGenerator a(5), b(5), c(6);
  Slice va = a.Generate(100);
  EXPECT_EQ(100u, va.size());
  std::string saved = va.ToString();
  EXPECT_EQ(saved, b.Generate(100).ToString());
  EXPECT_NE(saved, c.Generate(100).ToString());
}

TEST(ValueGenerator, Incompressible) {
  ValueGenerator gen(5);
  Slice v = gen.Generate(4096);
  // Rough entropy check: all 256 byte values spread out.
  std::map<char, int> hist;
  for (size_t i = 0; i < v.size(); i++) hist[v[i]]++;
  EXPECT_GT(hist.size(), 200u);
}

}  // namespace
}  // namespace elmo::bench
