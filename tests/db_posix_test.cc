// The engine on real disk (PosixEnv): the same guarantees the MemEnv
// suites check must hold against the actual filesystem.
#include <gtest/gtest.h>

#include <cstdlib>

#include "lsm/db.h"
#include "lsm/options_file.h"

namespace elmo::lsm {
namespace {

class DbPosixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/elmo_db_posix_XXXXXX";
    dbname_ = mkdtemp(tmpl);
    // DB::Open wants to own the directory contents; point it at a
    // subdir so DestroyDB can remove it cleanly.
    dbname_ += "/db";
    options_.create_if_missing = true;
    options_.write_buffer_size = 256 << 10;
    ASSERT_TRUE(DB::Open(options_, dbname_, &db_).ok());
  }

  void TearDown() override {
    db_.reset();
    DB::DestroyDB(dbname_, options_);
    Env::Posix()->RemoveDir(dbname_.substr(0, dbname_.rfind('/')));
  }

  void Reopen() {
    db_.reset();
    ASSERT_TRUE(DB::Open(options_, dbname_, &db_).ok());
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbPosixTest, WriteFlushCompactReadOnRealDisk) {
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i),
                         "value" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
  for (int i = 0; i < 5000; i += 137) {
    std::string v;
    ASSERT_TRUE(db_->Get({}, "key" + std::to_string(i), &v).ok()) << i;
    EXPECT_EQ("value" + std::to_string(i), v);
  }
}

TEST_F(DbPosixTest, RecoveryFromRealFiles) {
  ASSERT_TRUE(db_->Put({}, "persist", "across reopen").ok());
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put({}, "bulk" + std::to_string(i),
                         std::string(100, 'b'))
                    .ok());
  }
  Reopen();
  std::string v;
  ASSERT_TRUE(db_->Get({}, "persist", &v).ok());
  EXPECT_EQ("across reopen", v);
  ASSERT_TRUE(db_->Get({}, "bulk1234", &v).ok());

  Reopen();  // second cycle exercises manifest rollover
  ASSERT_TRUE(db_->Get({}, "bulk2345", &v).ok());
}

TEST_F(DbPosixTest, OptionsFileOnDisk) {
  std::string latest = FindLatestOptionsFile(Env::Posix(), dbname_);
  ASSERT_FALSE(latest.empty());
  Options loaded;
  ASSERT_TRUE(LoadOptionsFile(Env::Posix(), latest, &loaded).ok());
  EXPECT_EQ(options_.write_buffer_size, loaded.write_buffer_size);
}

TEST_F(DbPosixTest, SyncWritesDurable) {
  WriteOptions sync;
  sync.sync = true;
  ASSERT_TRUE(db_->Put(sync, "fsynced", "yes").ok());
  Reopen();
  std::string v;
  ASSERT_TRUE(db_->Get({}, "fsynced", &v).ok());
  EXPECT_EQ("yes", v);
}

TEST_F(DbPosixTest, IteratorOverRealSsts) {
  for (char c = 'a'; c <= 'z'; c++) {
    ASSERT_TRUE(db_->Put({}, std::string(1, c), std::string(1, c)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  auto it = db_->NewIterator({});
  std::string seen;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    seen += it->key().ToString();
  }
  EXPECT_EQ("abcdefghijklmnopqrstuvwxyz", seen);
}

}  // namespace
}  // namespace elmo::lsm
