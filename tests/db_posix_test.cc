// The engine on real disk (PosixEnv): the same guarantees the MemEnv
// suites check must hold against the actual filesystem.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "lsm/options_file.h"
#include "lsm/stats_sampler.h"

namespace elmo::lsm {
namespace {

class DbPosixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/elmo_db_posix_XXXXXX";
    dbname_ = mkdtemp(tmpl);
    // DB::Open wants to own the directory contents; point it at a
    // subdir so DestroyDB can remove it cleanly.
    dbname_ += "/db";
    options_.create_if_missing = true;
    options_.write_buffer_size = 256 << 10;
    ASSERT_TRUE(DB::Open(options_, dbname_, &db_).ok());
  }

  void TearDown() override {
    db_.reset();
    DB::DestroyDB(dbname_, options_);
    Env::Posix()->RemoveDir(dbname_.substr(0, dbname_.rfind('/')));
  }

  void Reopen() {
    db_.reset();
    ASSERT_TRUE(DB::Open(options_, dbname_, &db_).ok());
  }

  std::string dbname_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbPosixTest, WriteFlushCompactReadOnRealDisk) {
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i),
                         "value" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
  for (int i = 0; i < 5000; i += 137) {
    std::string v;
    ASSERT_TRUE(db_->Get({}, "key" + std::to_string(i), &v).ok()) << i;
    EXPECT_EQ("value" + std::to_string(i), v);
  }
}

TEST_F(DbPosixTest, RecoveryFromRealFiles) {
  ASSERT_TRUE(db_->Put({}, "persist", "across reopen").ok());
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put({}, "bulk" + std::to_string(i),
                         std::string(100, 'b'))
                    .ok());
  }
  Reopen();
  std::string v;
  ASSERT_TRUE(db_->Get({}, "persist", &v).ok());
  EXPECT_EQ("across reopen", v);
  ASSERT_TRUE(db_->Get({}, "bulk1234", &v).ok());

  Reopen();  // second cycle exercises manifest rollover
  ASSERT_TRUE(db_->Get({}, "bulk2345", &v).ok());
}

TEST_F(DbPosixTest, OptionsFileOnDisk) {
  std::string latest = FindLatestOptionsFile(Env::Posix(), dbname_);
  ASSERT_FALSE(latest.empty());
  Options loaded;
  ASSERT_TRUE(LoadOptionsFile(Env::Posix(), latest, &loaded).ok());
  EXPECT_EQ(options_.write_buffer_size, loaded.write_buffer_size);
}

TEST_F(DbPosixTest, SyncWritesDurable) {
  WriteOptions sync;
  sync.sync = true;
  ASSERT_TRUE(db_->Put(sync, "fsynced", "yes").ok());
  Reopen();
  std::string v;
  ASSERT_TRUE(db_->Get({}, "fsynced", &v).ok());
  EXPECT_EQ("yes", v);
}

TEST_F(DbPosixTest, IteratorOverRealSsts) {
  for (char c = 'a'; c <= 'z'; c++) {
    ASSERT_TRUE(db_->Put({}, std::string(1, c), std::string(1, c)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  auto it = db_->NewIterator({});
  std::string seen;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    seen += it->key().ToString();
  }
  EXPECT_EQ("abcdefghijklmnopqrstuvwxyz", seen);
}

// On a real Env the sampler runs as a background thread on the wall
// clock; it must produce samples without any foreground traffic and be
// joined cleanly when the DB closes (sanitizer jobs cover the latter).
TEST_F(DbPosixTest, WallClockSamplerThreadTicksAndJoins) {
  options_.stats_sample_interval_ms = 5;
  Reopen();

  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i), "value").ok());
  }

  // Give the sampler thread a few intervals; bounded wait, not a fixed
  // sleep, so the test is fast on idle machines and robust on loaded
  // ones.
  std::string text;
  std::vector<IntervalSample> samples;
  for (int attempt = 0; attempt < 200 && samples.size() < 2; attempt++) {
    Env::Posix()->SleepForMicroseconds(5000);
    ASSERT_TRUE(db_->GetProperty("elmo.timeseries", &text));
    samples.clear();
    ASSERT_TRUE(TimeSeriesFromJson(text, &samples).ok()) << text;
  }
  ASSERT_GE(samples.size(), 2u) << text;
  for (size_t i = 1; i < samples.size(); i++) {
    EXPECT_GT(samples[i].ts_us, samples[i - 1].ts_us);
  }
  db_.reset();  // joins the sampler thread
}

}  // namespace
}  // namespace elmo::lsm
