// DB-on-SimEnv integration: virtual time must move, devices must
// differ, option changes must shift performance in the documented
// directions, and everything must be deterministic.
#include <gtest/gtest.h>

#include <memory>

#include "env/sim_env.h"
#include "lsm/db.h"

namespace elmo::lsm {
namespace {

struct RunResult {
  uint64_t elapsed_us;
  uint64_t stall_micros;
  uint64_t writeback_stalls;
};

// Write `n` ~1 KiB entries on the given hardware/options; return the
// virtual elapsed time.
RunResult RunFill(const HardwareProfile& hw, Options base, int n,
                  uint64_t seed = 42) {
  auto env = std::make_unique<SimEnv>(hw, seed);
  base.env = env.get();
  base.create_if_missing = true;
  std::unique_ptr<DB> db;
  EXPECT_TRUE(DB::Open(base, "/db", &db).ok());

  const std::string value(1024, 'v');
  uint64_t start = env->NowMicros();
  for (int i = 0; i < n; i++) {
    char key[32];
    snprintf(key, sizeof(key), "%016d", i * 7919 % n);
    Status s = db->Put({}, key, value);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  uint64_t elapsed = env->NowMicros() - start;
  RunResult r;
  r.elapsed_us = elapsed;
  r.stall_micros = db->stats().Get(Ticker::kWriteStallMicros);
  r.writeback_stalls = env->io_stats().writeback_stalls;
  db.reset();
  return r;
}

TEST(SimDbTest, VirtualTimeAdvances) {
  auto hw = HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd());
  Options o;
  o.write_buffer_size = 1 << 20;
  RunResult r = RunFill(hw, o, 5000);
  EXPECT_GT(r.elapsed_us, 0u);
  // 5000 writes should take between 1ms and 100s of virtual time.
  EXPECT_LT(r.elapsed_us, 100'000'000ull);
}

TEST(SimDbTest, Deterministic) {
  auto hw = HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd());
  Options o;
  o.write_buffer_size = 1 << 20;
  RunResult a = RunFill(hw, o, 5000);
  RunResult b = RunFill(hw, o, 5000);
  EXPECT_EQ(a.elapsed_us, b.elapsed_us);
  EXPECT_EQ(a.stall_micros, b.stall_micros);
}

TEST(SimDbTest, HddSlowerThanNvme) {
  Options o;
  o.write_buffer_size = 1 << 20;
  RunResult ssd = RunFill(HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd()),
                          o, 20000);
  RunResult hdd = RunFill(HardwareProfile::Make(4, 4, DeviceModel::SataHdd()),
                          o, 20000);
  EXPECT_GT(hdd.elapsed_us, ssd.elapsed_us);
}

TEST(SimDbTest, SmallMemtableStallsMore) {
  auto hw = HardwareProfile::Make(2, 4, DeviceModel::SataHdd());
  Options small;
  small.write_buffer_size = 256 << 10;
  Options big = small;
  big.write_buffer_size = 8 << 20;
  RunResult s = RunFill(hw, small, 20000);
  RunResult b = RunFill(hw, big, 20000);
  EXPECT_GT(s.elapsed_us, b.elapsed_us)
      << "tiny memtables should flush constantly and stall writers";
}

TEST(SimDbTest, WalBytesPerSyncReducesWritebackBursts) {
  auto hw = HardwareProfile::Make(2, 4, DeviceModel::SataHdd());
  Options bursty;
  bursty.write_buffer_size = 4 << 20;
  Options smooth = bursty;
  smooth.wal_bytes_per_sync = 1 << 20;
  smooth.bytes_per_sync = 1 << 20;
  RunResult a = RunFill(hw, bursty, 60000);
  RunResult b = RunFill(hw, smooth, 60000);
  EXPECT_GT(a.writeback_stalls, b.writeback_stalls)
      << "incremental syncing should avoid forced OS writebacks";
}

TEST(SimDbTest, MoreBackgroundJobsHelpOnFastDevice) {
  auto hw = HardwareProfile::Make(4, 8, DeviceModel::NvmeSsd());
  Options one;
  one.write_buffer_size = 1 << 20;
  one.max_background_jobs = 1;
  Options four = one;
  four.max_background_jobs = 4;
  RunResult a = RunFill(hw, one, 40000);
  RunResult b = RunFill(hw, four, 40000);
  EXPECT_GE(a.elapsed_us, b.elapsed_us);
}

TEST(SimDbTest, OvercommittingMemoryIsPenalized) {
  auto hw = HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd());
  Options sane;
  sane.write_buffer_size = 8 << 20;
  Options greedy = sane;
  // 2 GiB memtables x4 + cache blows through the 4 GiB budget.
  greedy.write_buffer_size = 2ull << 30;
  greedy.max_write_buffer_number = 4;
  greedy.block_cache_size = 2ull << 30;
  RunResult a = RunFill(hw, sane, 10000);
  RunResult g = RunFill(hw, greedy, 10000);
  EXPECT_GT(g.elapsed_us, a.elapsed_us)
      << "paging penalty should punish overcommitted configs";
}

TEST(SimDbTest, ReadsBenefitFromBloomFilters) {
  auto hw = HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd());
  auto run_reads = [&](int bloom_bits) {
    auto env = std::make_unique<SimEnv>(hw, 7);
    Options o;
    o.env = env.get();
    o.write_buffer_size = 1 << 20;
    o.bloom_filter_bits_per_key = bloom_bits;
    o.level0_file_num_compaction_trigger = 100;  // keep many L0 files
    std::unique_ptr<DB> db;
    EXPECT_TRUE(DB::Open(o, "/db", &db).ok());
    const std::string value(512, 'v');
    // Only even keys exist, so odd keys are absent but inside every
    // file's key range — the worst case for filterless lookups.
    for (int i = 0; i < 20000; i += 2) {
      char key[32];
      snprintf(key, sizeof(key), "%016d", i);
      EXPECT_TRUE(db->Put({}, key, value).ok());
    }
    uint64_t start = env->NowMicros();
    std::string v;
    for (int i = 1; i < 4000; i += 2) {
      char key[32];
      snprintf(key, sizeof(key), "%016d", i);
      EXPECT_TRUE(db->Get({}, key, &v).IsNotFound());
    }
    return env->NowMicros() - start;
  };
  uint64_t without = run_reads(0);
  uint64_t with = run_reads(10);
  EXPECT_GT(without, with)
      << "negative lookups without filters must touch many files";
}

TEST(SimDbTest, CompactionReadaheadHelpsOnHdd) {
  auto hw = HardwareProfile::Make(2, 4, DeviceModel::SataHdd());
  Options no_ra;
  no_ra.write_buffer_size = 1 << 20;
  no_ra.compaction_readahead_size = 0;
  Options ra = no_ra;
  ra.compaction_readahead_size = 4 << 20;
  RunResult a = RunFill(hw, no_ra, 40000);
  RunResult b = RunFill(hw, ra, 40000);
  EXPECT_GE(a.elapsed_us, b.elapsed_us);
}

TEST(SimDbTest, CorrectnessUnchangedUnderSim) {
  auto hw = HardwareProfile::Make(2, 4, DeviceModel::SataHdd());
  auto env = std::make_unique<SimEnv>(hw, 99);
  Options o;
  o.env = env.get();
  o.write_buffer_size = 64 << 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(
        db->Put({}, "key" + std::to_string(i), "val" + std::to_string(i))
            .ok());
  }
  for (int i = 0; i < 3000; i += 111) {
    std::string v;
    ASSERT_TRUE(db->Get({}, "key" + std::to_string(i), &v).ok());
    EXPECT_EQ("val" + std::to_string(i), v);
  }
  // Reopen on the same SimEnv: recovery must work under the device
  // model too.
  db.reset();
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());
  std::string v;
  ASSERT_TRUE(db->Get({}, "key42", &v).ok());
  EXPECT_EQ("val42", v);
}

}  // namespace
}  // namespace elmo::lsm
