#include "elmo/safeguard.h"

#include <gtest/gtest.h>

namespace elmo::tune {
namespace {

using Proposal = std::vector<std::pair<std::string, std::string>>;

TEST(Safeguard, AppliesValidChanges) {
  SafeguardEnforcer guard;
  lsm::Options base, result;
  auto report = guard.Validate(
      base,
      Proposal{{"max_background_jobs", "6"}, {"write_buffer_size", "33554432"}},
      &result);
  EXPECT_EQ(2u, report.applied.size());
  EXPECT_EQ(0, report.total_rejected());
  EXPECT_EQ(6, result.max_background_jobs);
  EXPECT_EQ(33554432u, result.write_buffer_size);
  // Base untouched.
  EXPECT_EQ(2, base.max_background_jobs);
}

TEST(Safeguard, RejectsHallucinations) {
  SafeguardEnforcer guard;
  lsm::Options base, result;
  auto report = guard.Validate(
      base, Proposal{{"memtable_prefetch_depth", "8"}}, &result);
  ASSERT_EQ(1u, report.rejected_unknown.size());
  EXPECT_EQ("memtable_prefetch_depth", report.rejected_unknown[0]);
  EXPECT_TRUE(report.applied.empty());
}

TEST(Safeguard, RejectsDeprecatedWithDistinctCategory) {
  SafeguardEnforcer guard;
  lsm::Options base, result;
  auto report =
      guard.Validate(base, Proposal{{"flush_job_count", "4"}}, &result);
  ASSERT_EQ(1u, report.rejected_deprecated.size());
  EXPECT_TRUE(report.rejected_unknown.empty());
}

TEST(Safeguard, BlocksBlacklistedBeforeValidation) {
  SafeguardEnforcer guard;
  lsm::Options base, result;
  auto report =
      guard.Validate(base, Proposal{{"disable_wal", "true"}}, &result);
  ASSERT_EQ(1u, report.rejected_blacklisted.size());
  EXPECT_FALSE(result.disable_wal);
}

TEST(Safeguard, ExtraBlacklistHonored) {
  SafeguardEnforcer guard({"max_open_files"});
  lsm::Options base, result;
  auto report = guard.Validate(
      base, Proposal{{"max_open_files", "100"}, {"block_size", "8192"}},
      &result);
  EXPECT_EQ(1u, report.rejected_blacklisted.size());
  EXPECT_EQ(1u, report.applied.size());
  EXPECT_EQ(-1, result.max_open_files);
  EXPECT_EQ(8192u, result.block_size);
}

TEST(Safeguard, RejectsInvalidValues) {
  SafeguardEnforcer guard;
  lsm::Options base, result;
  auto report = guard.Validate(
      base,
      Proposal{{"write_buffer_size", "a-lot"},
               {"max_write_buffer_number", "100000"}},
      &result);
  EXPECT_EQ(2u, report.rejected_invalid.size());
  EXPECT_EQ(base.write_buffer_size, result.write_buffer_size);
}

TEST(Safeguard, NoOpChangesNotCounted) {
  SafeguardEnforcer guard;
  lsm::Options base, result;
  // Echoing the default back is not a change.
  auto report = guard.Validate(
      base,
      Proposal{{"max_background_jobs", "2"},  // default
               {"max_background_jobs", "5"}},
      &result);
  ASSERT_EQ(1u, report.applied.size());
  EXPECT_EQ("5", report.applied[0].second);
}

TEST(Safeguard, EmptyProposalsIsFormatFailure) {
  SafeguardEnforcer guard;
  lsm::Options base, result;
  auto report = guard.Validate(base, {}, &result);
  EXPECT_FALSE(report.format_ok);
}

TEST(Safeguard, MixedBatchPartiallyApplied) {
  SafeguardEnforcer guard;
  lsm::Options base, result;
  auto report = guard.Validate(
      base,
      Proposal{{"max_background_jobs", "8"},
               {"disable_wal", "true"},
               {"made_up", "1"},
               {"flush_job_count", "2"},
               {"block_size", "-5"}},
      &result);
  EXPECT_EQ(1u, report.applied.size());
  EXPECT_EQ(1u, report.rejected_blacklisted.size());
  EXPECT_EQ(1u, report.rejected_unknown.size());
  EXPECT_EQ(1u, report.rejected_deprecated.size());
  EXPECT_EQ(1u, report.rejected_invalid.size());
  EXPECT_EQ(4, report.total_rejected());
  EXPECT_EQ(8, result.max_background_jobs);

  std::string summary = report.Summary();
  EXPECT_NE(summary.find("hallucinated"), std::string::npos);
  EXPECT_NE(summary.find("deprecated"), std::string::npos);
  EXPECT_NE(summary.find("blacklisted"), std::string::npos);
}

TEST(Safeguard, ValueNormalizedThroughSchema) {
  SafeguardEnforcer guard;
  lsm::Options base, result;
  auto report = guard.Validate(
      base, Proposal{{"write_buffer_size", "128MB"}}, &result);
  ASSERT_EQ(1u, report.applied.size());
  // Stored canonical (bytes), not the suffixed form.
  EXPECT_EQ("134217728", report.applied[0].second);
  EXPECT_EQ(128ull << 20, result.write_buffer_size);
}

}  // namespace
}  // namespace elmo::tune
