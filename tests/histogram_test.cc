#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace elmo {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(0u, h.Count());
  EXPECT_EQ(0.0, h.Average());
  EXPECT_EQ(0.0, h.Percentile(99));
  EXPECT_EQ(0.0, h.Min());
  EXPECT_EQ(0.0, h.Max());
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Add(42);
  EXPECT_EQ(1u, h.Count());
  EXPECT_DOUBLE_EQ(42.0, h.Average());
  EXPECT_DOUBLE_EQ(42.0, h.Min());
  EXPECT_DOUBLE_EQ(42.0, h.Max());
  // Percentiles clamp to [min, max].
  EXPECT_DOUBLE_EQ(42.0, h.Percentile(99));
  EXPECT_DOUBLE_EQ(42.0, h.Percentile(1));
}

TEST(Histogram, AverageAndStdDev) {
  Histogram h;
  for (int i = 1; i <= 100; i++) h.Add(i);
  EXPECT_NEAR(50.5, h.Average(), 1e-9);
  EXPECT_NEAR(28.866, h.StandardDeviation(), 0.01);
}

// Parameterized sweep: percentile estimates of a uniform distribution
// must land within bucket resolution of the true quantile.
class HistogramPercentileTest : public ::testing::TestWithParam<double> {};

TEST_P(HistogramPercentileTest, UniformQuantileAccuracy) {
  const double p = GetParam();
  Histogram h;
  Random64 rng(42);
  const int n = 200000;
  const double upper = 10000.0;
  for (int i = 0; i < n; i++) {
    h.Add(rng.NextDouble() * upper);
  }
  double expected = upper * p / 100.0;
  double measured = h.Percentile(p);
  // Bucket boundaries are ~10-20% apart at this magnitude.
  EXPECT_NEAR(measured, expected, expected * 0.25 + 5.0) << "p" << p;
}

INSTANTIATE_TEST_SUITE_P(Percentiles, HistogramPercentileTest,
                         ::testing::Values(10.0, 25.0, 50.0, 75.0, 90.0,
                                           99.0, 99.9));

TEST(Histogram, TailSensitivity) {
  Histogram h;
  for (int i = 0; i < 9900; i++) h.Add(5.0);
  for (int i = 0; i < 100; i++) h.Add(10000.0);
  // p50 near 5, p99.5 near 10000.
  EXPECT_LT(h.Percentile(50), 10.0);
  EXPECT_GT(h.Percentile(99.5), 5000.0);
}

TEST(Histogram, Merge) {
  Histogram a, b;
  for (int i = 0; i < 1000; i++) a.Add(10);
  for (int i = 0; i < 1000; i++) b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(2000u, a.Count());
  EXPECT_NEAR(505.0, a.Average(), 1.0);
  EXPECT_DOUBLE_EQ(10.0, a.Min());
  EXPECT_DOUBLE_EQ(1000.0, a.Max());
}

TEST(Histogram, Clear) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(0u, h.Count());
  EXPECT_EQ(0.0, h.Percentile(99));
}

TEST(Histogram, HugeValuesClampToLastBucket) {
  Histogram h;
  h.Add(1e300);
  EXPECT_EQ(1u, h.Count());
  EXPECT_DOUBLE_EQ(1e300, h.Max());
}

TEST(Histogram, ToStringContainsFields) {
  Histogram h;
  for (int i = 0; i < 100; i++) h.Add(i);
  std::string s = h.ToString();
  EXPECT_NE(s.find("Count: 100"), std::string::npos);
  EXPECT_NE(s.find("P99:"), std::string::npos);
  EXPECT_NE(s.find("Median:"), std::string::npos);
}

}  // namespace
}  // namespace elmo
