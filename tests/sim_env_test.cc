// SimEnv mechanics: device model costs, lane scheduler, job meter,
// page cache / dirty pool, determinism. (The DB-level behavior on
// SimEnv lives in sim_db_test.cc.)
#include <gtest/gtest.h>

#include "env/lane_scheduler.h"
#include "env/sim_env.h"

namespace elmo {
namespace {

HardwareProfile Nvme(int cores = 4, int mem_gib = 4) {
  return HardwareProfile::Make(cores, mem_gib, DeviceModel::NvmeSsd());
}
HardwareProfile Hdd(int cores = 4, int mem_gib = 4) {
  return HardwareProfile::Make(cores, mem_gib, DeviceModel::SataHdd());
}

TEST(DeviceModel, SequentialCheaperThanRandom) {
  auto hdd = DeviceModel::SataHdd();
  EXPECT_LT(hdd.ReadCostMicros(4096, true), hdd.ReadCostMicros(4096, false));
  auto nvme = DeviceModel::NvmeSsd();
  EXPECT_LT(nvme.ReadCostMicros(4096, true),
            nvme.ReadCostMicros(4096, false));
}

TEST(DeviceModel, HddSeeksDominateNvme) {
  EXPECT_GT(DeviceModel::SataHdd().ReadCostMicros(4096, false),
            20 * DeviceModel::NvmeSsd().ReadCostMicros(4096, false));
}

TEST(DeviceModel, SyncCostGrowsWithDirty) {
  auto d = DeviceModel::SataHdd();
  EXPECT_LT(d.SyncCostMicros(0), d.SyncCostMicros(16 << 20));
}

TEST(LaneScheduler, SerializesOnSingleSlot) {
  LaneScheduler lanes;
  lanes.Configure(/*cores=*/4, /*flush=*/1, /*compaction=*/1);
  uint64_t a = lanes.Schedule(JobPriority::kHigh, 0, 100);
  uint64_t b = lanes.Schedule(JobPriority::kHigh, 0, 100);
  EXPECT_EQ(100u, a);
  EXPECT_EQ(200u, b);  // same flush slot: must queue
}

TEST(LaneScheduler, ParallelWithMultipleSlots) {
  LaneScheduler lanes;
  lanes.Configure(4, 2, 2);
  uint64_t a = lanes.Schedule(JobPriority::kHigh, 0, 100);
  uint64_t b = lanes.Schedule(JobPriority::kHigh, 0, 100);
  EXPECT_EQ(100u, a);
  EXPECT_EQ(100u, b);  // two slots, two cores: concurrent
}

TEST(LaneScheduler, CoresBoundTotalParallelism) {
  LaneScheduler lanes;
  lanes.Configure(/*cores=*/1, /*flush=*/4, /*compaction=*/4);
  uint64_t a = lanes.Schedule(JobPriority::kHigh, 0, 100);
  uint64_t b = lanes.Schedule(JobPriority::kLow, 0, 100);
  EXPECT_EQ(100u, a);
  EXPECT_EQ(200u, b);  // only one core
}

TEST(LaneScheduler, RespectsReadyTime) {
  LaneScheduler lanes;
  lanes.Configure(4, 2, 2);
  EXPECT_EQ(600u, lanes.Schedule(JobPriority::kLow, 500, 100));
}

TEST(LaneScheduler, BusyCoresAndNextCompletion) {
  LaneScheduler lanes;
  lanes.Configure(2, 2, 2);
  lanes.Schedule(JobPriority::kHigh, 0, 100);
  lanes.Schedule(JobPriority::kLow, 0, 300);
  EXPECT_EQ(2, lanes.BusyCores(50));
  EXPECT_EQ(1, lanes.BusyCores(150));
  EXPECT_EQ(0, lanes.BusyCores(350));
  EXPECT_EQ(100u, lanes.NextCompletionAfter(50));
  EXPECT_EQ(300u, lanes.NextCompletionAfter(150));
  EXPECT_EQ(400u, lanes.NextCompletionAfter(400));  // idle: returns now
}

TEST(SimEnv, ClockStartsAtZeroAndAdvances) {
  SimEnv env(Nvme());
  EXPECT_EQ(0u, env.NowMicros());
  env.SleepForMicroseconds(1234);
  EXPECT_EQ(1234u, env.NowMicros());
  env.AdvanceTo(500);  // backwards: no-op
  EXPECT_EQ(1234u, env.NowMicros());
  env.AdvanceTo(5000);
  EXPECT_EQ(5000u, env.NowMicros());
}

TEST(SimEnv, MeterCapturesChargesWithoutMovingClock) {
  SimEnv env(Nvme());
  env.BeginJobMeter();
  env.SleepForMicroseconds(700);
  uint64_t metered = env.EndJobMeter();
  EXPECT_EQ(700u, metered);
  EXPECT_EQ(0u, env.NowMicros());
}

TEST(SimEnv, WritesChargeOnAppendAndSync) {
  SimEnv env(Hdd());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("/f", &f).ok());
  uint64_t t0 = env.NowMicros();
  ASSERT_TRUE(f->Append(std::string(1 << 20, 'x')).ok());
  uint64_t after_append = env.NowMicros();
  EXPECT_GT(after_append, t0);  // DRAM copy cost
  ASSERT_TRUE(f->Sync().ok());
  uint64_t after_sync = env.NowMicros();
  // Sync drains 1 MiB at HDD speeds: milliseconds.
  EXPECT_GT(after_sync - after_append, 4000u);
}

TEST(SimEnv, GlobalDirtyPoolForcesWritebackBurst) {
  SimEnv env(Hdd());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("/f", &f).ok());
  // Push far past the dirty limit without ever syncing.
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(f->Append(std::string(1 << 20, 'x')).ok());
  }
  EXPECT_GT(env.io_stats().writeback_stalls, 0u);
}

TEST(SimEnv, RangeSyncPreventsBursts) {
  SimEnv env(Hdd());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("/f", &f).ok());
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(f->Append(std::string(1 << 20, 'x')).ok());
    ASSERT_TRUE(f->RangeSync(1 << 20).ok());
  }
  EXPECT_EQ(0u, env.io_stats().writeback_stalls);
}

TEST(SimEnv, SequentialHeadModel) {
  // With a huge app footprint the page cache is zero, so every read
  // touches the device and the head model is observable.
  SimEnv env(Hdd());
  env.SetAppMemoryFootprint(64ull << 30);
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("/f", &w).ok());
  ASSERT_TRUE(w->Append(std::string(1 << 20, 'x')).ok());
  ASSERT_TRUE(w->Sync().ok());

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &r).ok());
  char scratch[4096];
  Slice out;

  // Sequential pass: first read pays the seek, rest stream.
  uint64_t t0 = env.NowMicros();
  for (uint64_t off = 0; off < (1 << 20); off += 4096) {
    ASSERT_TRUE(r->Read(off, 4096, &out, scratch).ok());
  }
  uint64_t sequential_cost = env.NowMicros() - t0;

  // Random pass over the same blocks.
  t0 = env.NowMicros();
  uint64_t off = 0;
  for (int i = 0; i < 256; i++) {
    off = (off + 999 * 4096) % (1 << 20);
    ASSERT_TRUE(r->Read(off, 4096, &out, scratch).ok());
  }
  uint64_t random_cost = env.NowMicros() - t0;

  EXPECT_GT(random_cost, sequential_cost);
}

TEST(SimEnv, ReadaheadMakesWindowReadsCheap) {
  SimEnv env(Hdd());
  env.SetAppMemoryFootprint(64ull << 30);  // no page cache
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("/f", &w).ok());
  ASSERT_TRUE(w->Append(std::string(4 << 20, 'x')).ok());
  ASSERT_TRUE(w->Sync().ok());

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &r).ok());
  r->Readahead(0, 4 << 20);
  uint64_t t0 = env.NowMicros();
  char scratch[4096];
  Slice out;
  ASSERT_TRUE(r->Read(1 << 20, 4096, &out, scratch).ok());
  // Within the window: DRAM cost, far below a seek.
  EXPECT_LT(env.NowMicros() - t0, 100u);
}

TEST(SimEnv, PagingPenaltyWhenOvercommitted) {
  SimEnv sane(Nvme(4, 4));
  SimEnv greedy(Nvme(4, 4));
  greedy.SetAppMemoryFootprint(8ull << 30);  // 8 GiB app on 4 GiB box
  sane.ChargeCpu(1000);
  greedy.ChargeCpu(1000);
  EXPECT_GT(greedy.NowMicros(), sane.NowMicros());
}

TEST(SimEnv, DeterministicAcrossInstances) {
  auto run = [] {
    SimEnv env(Hdd(), 77);
    std::unique_ptr<WritableFile> f;
    env.NewWritableFile("/f", &f);
    for (int i = 0; i < 100; i++) {
      f->Append(std::string(10000, 'x'));
    }
    f->Sync();
    std::unique_ptr<RandomAccessFile> r;
    env.NewRandomAccessFile("/f", &r);
    char scratch[512];
    Slice out;
    for (int i = 0; i < 50; i++) {
      r->Read((i * 7919) % 900000, 512, &out, scratch);
    }
    return env.NowMicros();
  };
  EXPECT_EQ(run(), run());
}

TEST(SimEnv, FilesystemSemanticsMatchMemEnv) {
  SimEnv env(Nvme());
  ASSERT_TRUE(env.CreateDirIfMissing("/d").ok());
  ASSERT_TRUE(env.WriteStringToFile("payload", "/d/f").ok());
  std::string data;
  ASSERT_TRUE(env.ReadFileToString("/d/f", &data).ok());
  EXPECT_EQ("payload", data);
  std::vector<std::string> kids;
  ASSERT_TRUE(env.GetChildren("/d", &kids).ok());
  ASSERT_EQ(1u, kids.size());
  EXPECT_EQ("f", kids[0]);
  ASSERT_TRUE(env.RenameFile("/d/f", "/d/g").ok());
  EXPECT_TRUE(env.FileExists("/d/g"));
  ASSERT_TRUE(env.RemoveFile("/d/g").ok());
  EXPECT_FALSE(env.FileExists("/d/g"));
}

}  // namespace
}  // namespace elmo
