#include "util/json.h"

#include <gtest/gtest.h>

namespace elmo::json {
namespace {

Value MustParse(const std::string& text) {
  Value v;
  Status s = Parse(text, &v);
  EXPECT_TRUE(s.ok()) << s.ToString() << " for " << text;
  return v;
}

TEST(Json, Scalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_EQ(true, MustParse("true").as_bool());
  EXPECT_EQ(false, MustParse("false").as_bool());
  EXPECT_EQ(42, MustParse("42").as_int());
  EXPECT_EQ(-7, MustParse("-7").as_int());
  EXPECT_DOUBLE_EQ(2.5, MustParse("2.5").as_double());
  EXPECT_DOUBLE_EQ(1e10, MustParse("1e10").as_double());
  EXPECT_EQ("hi", MustParse("\"hi\"").as_string());
}

TEST(Json, StringEscapes) {
  EXPECT_EQ("a\"b", MustParse("\"a\\\"b\"").as_string());
  EXPECT_EQ("tab\there", MustParse("\"tab\\there\"").as_string());
  EXPECT_EQ("line\nbreak", MustParse("\"line\\nbreak\"").as_string());
  EXPECT_EQ("back\\slash", MustParse("\"back\\\\slash\"").as_string());
  EXPECT_EQ("A", MustParse("\"\\u0041\"").as_string());
  EXPECT_EQ("\xc3\xa9", MustParse("\"\\u00e9\"").as_string());  // é
}

TEST(Json, Arrays) {
  Value v = MustParse("[1, \"two\", [3], {}]");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(4u, v.as_array().size());
  EXPECT_EQ(1, v.as_array()[0].as_int());
  EXPECT_EQ("two", v.as_array()[1].as_string());
  EXPECT_TRUE(v.as_array()[2].is_array());
  EXPECT_TRUE(v.as_array()[3].is_object());
  EXPECT_TRUE(MustParse("[]").as_array().empty());
}

TEST(Json, Objects) {
  Value v = MustParse("{\"a\": 1, \"b\": {\"c\": [true]}}");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(1, v.Find("a")->as_int());
  EXPECT_EQ(true, v.Find("b")->Find("c")->as_array()[0].as_bool());
  EXPECT_EQ(nullptr, v.Find("missing"));
}

TEST(Json, ParseErrors) {
  Value v;
  EXPECT_FALSE(Parse("", &v).ok());
  EXPECT_FALSE(Parse("{", &v).ok());
  EXPECT_FALSE(Parse("[1,]", &v).ok());
  EXPECT_FALSE(Parse("{\"a\" 1}", &v).ok());
  EXPECT_FALSE(Parse("\"unterminated", &v).ok());
  EXPECT_FALSE(Parse("tru", &v).ok());
  EXPECT_FALSE(Parse("42 garbage", &v).ok());
  EXPECT_FALSE(Parse("{'single': 1}", &v).ok());
}

TEST(Json, DeepNestingLimited) {
  std::string deep(500, '[');
  deep += std::string(500, ']');
  Value v;
  EXPECT_FALSE(Parse(deep, &v).ok());
}

TEST(Json, DumpRoundTrip) {
  Object o;
  o["name"] = "gpt-4";
  o["temperature"] = 0.4;
  o["max_tokens"] = 2048;
  o["stop"] = nullptr;
  Array msgs;
  Object m;
  m["role"] = "user";
  m["content"] = "tune my \"db\"\nplease";
  msgs.push_back(m);
  o["messages"] = msgs;

  std::string dumped = Value(o).Dump();
  Value reparsed = MustParse(dumped);
  EXPECT_EQ("gpt-4", reparsed.Find("name")->as_string());
  EXPECT_DOUBLE_EQ(0.4, reparsed.Find("temperature")->as_double());
  EXPECT_EQ(2048, reparsed.Find("max_tokens")->as_int());
  EXPECT_TRUE(reparsed.Find("stop")->is_null());
  EXPECT_EQ("tune my \"db\"\nplease",
            reparsed.Find("messages")->as_array()[0].Find("content")
                ->as_string());
}

TEST(Json, DumpPrettyParses) {
  Object o;
  o["k"] = Array{1, 2, 3};
  std::string pretty = Value(o).Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  Value v = MustParse(pretty);
  EXPECT_EQ(3u, v.Find("k")->as_array().size());
}

TEST(Json, NumberTypesPreserved) {
  EXPECT_TRUE(MustParse("3").is_int());
  EXPECT_TRUE(MustParse("3.0").is_double());
  EXPECT_EQ(3, MustParse("3.0").as_int());
  EXPECT_DOUBLE_EQ(3.0, MustParse("3").as_double());
}

}  // namespace
}  // namespace elmo::json
