// Crash-recovery scenarios: torn WAL tails, corrupted records, repeated
// reopen cycles, manifest integrity, obsolete-file GC.
#include <gtest/gtest.h>

#include <map>

#include "env/mem_env.h"
#include "lsm/db.h"
#include "lsm/filename.h"
#include "util/random.h"

namespace elmo::lsm {
namespace {

class DbRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<MemEnv>();
    options_.env = env_.get();
    options_.create_if_missing = true;
    options_.write_buffer_size = 64 << 10;
    Open();
  }

  void Open() { ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok()); }
  void Close() { db_.reset(); }
  void Reopen() {
    Close();
    Open();
  }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = db_->Get({}, key, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERR";
    return value;
  }

  // Finds the newest WAL file in the db dir.
  std::string NewestWal() {
    std::vector<std::string> children;
    EXPECT_TRUE(env_->GetChildren("/db", &children).ok());
    uint64_t best = 0;
    std::string best_name;
    for (const auto& c : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(c, &number, &type) &&
          type == FileType::kLogFile && number >= best) {
        best = number;
        best_name = c;
      }
    }
    return "/db/" + best_name;
  }

  void TruncateFile(const std::string& path, size_t remove_bytes) {
    MemFs::FileRef node;
    ASSERT_TRUE(env_->fs()->Open(path, &node).ok());
    std::lock_guard<std::mutex> l(node->mu);
    ASSERT_GE(node->data.size(), remove_bytes);
    node->data.resize(node->data.size() - remove_bytes);
  }

  void FlipByte(const std::string& path, size_t pos) {
    MemFs::FileRef node;
    ASSERT_TRUE(env_->fs()->Open(path, &node).ok());
    std::lock_guard<std::mutex> l(node->mu);
    ASSERT_LT(pos, node->data.size());
    node->data[pos] ^= 0xff;
  }

  void AppendBytes(const std::string& path, const std::string& bytes) {
    MemFs::FileRef node;
    ASSERT_TRUE(env_->fs()->Open(path, &node).ok());
    std::lock_guard<std::mutex> l(node->mu);
    node->data.append(bytes);
  }

  size_t SizeOf(const std::string& path) {
    uint64_t size = 0;
    EXPECT_TRUE(env_->GetFileSize(path, &size).ok());
    return static_cast<size_t>(size);
  }

  std::string NewestFileOfType(FileType want) {
    std::vector<std::string> children;
    EXPECT_TRUE(env_->GetChildren("/db", &children).ok());
    uint64_t best = 0;
    std::string best_name;
    for (const auto& c : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(c, &number, &type) && type == want &&
          number >= best) {
        best = number;
        best_name = c;
      }
    }
    return "/db/" + best_name;
  }

  std::unique_ptr<MemEnv> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbRecoveryTest, TornWalTailLosesOnlyLastWrite) {
  ASSERT_TRUE(db_->Put({}, "a", "1").ok());
  ASSERT_TRUE(db_->Put({}, "b", "2").ok());
  std::string wal = NewestWal();
  Close();
  // Chop a few bytes off the WAL tail: the crash tore the last record.
  TruncateFile(wal, 3);
  Open();
  EXPECT_EQ("1", Get("a"));
  EXPECT_EQ("NOT_FOUND", Get("b"));
}

TEST_F(DbRecoveryTest, CorruptedFinalWalRecordIsTornTail) {
  // A torn write that garbles the *last* record of the WAL is what a
  // power cut looks like: recovery must treat it as a clean EOF and
  // lose only the torn write, not refuse to open.
  ASSERT_TRUE(db_->Put({}, "a", "1").ok());
  ASSERT_TRUE(db_->Put({}, "b", "2").ok());
  std::string wal = NewestWal();
  Close();
  FlipByte(wal, SizeOf(wal) - 1);
  Open();
  EXPECT_EQ("1", Get("a"));
  EXPECT_EQ("NOT_FOUND", Get("b"));
}

TEST_F(DbRecoveryTest, MidWalCorruptionStillFailsOpen) {
  // Corruption in the *middle* of the log — valid records follow the bad
  // one — is bit rot, not a torn tail. Silently skipping it would drop
  // an acknowledged write while keeping later ones, so Open must fail.
  ASSERT_TRUE(db_->Put({}, "a", "1").ok());
  ASSERT_TRUE(db_->Put({}, "b", "2").ok());
  std::string wal = NewestWal();
  Close();
  FlipByte(wal, 8);  // inside the first record's payload
  std::unique_ptr<DB> db2;
  Status s = DB::Open(options_, "/db", &db2);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(DbRecoveryTest, ManifestTornTailTolerated) {
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  Close();
  std::string manifest = NewestFileOfType(FileType::kDescriptorFile);
  // Append a half-written record: garbage CRC, len=3, kFullType header
  // plus its 3 payload bytes, exactly reaching EOF.
  AppendBytes(manifest,
              std::string("\xde\xad\xbe\xef\x03\x00\x01", 7) + "xyz");
  Open();
  EXPECT_EQ("v", Get("k"));
}

TEST_F(DbRecoveryTest, ManifestMidCorruptionFailsOpen) {
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  // The flush appends a version edit, so the MANIFEST holds at least two
  // records and the flipped byte below cannot read as a torn tail.
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  Close();
  std::string manifest = NewestFileOfType(FileType::kDescriptorFile);
  FlipByte(manifest, 8);
  std::unique_ptr<DB> db2;
  Status s = DB::Open(options_, "/db", &db2);
  EXPECT_FALSE(s.ok()) << s.ToString();
}

TEST_F(DbRecoveryTest, RepeatedReopenCyclesStable) {
  std::map<std::string, std::string> model;
  Random64 rng(5);
  for (int cycle = 0; cycle < 8; cycle++) {
    for (int i = 0; i < 300; i++) {
      std::string key = "k" + std::to_string(rng.Uniform(500));
      std::string value = "c" + std::to_string(cycle) + "-" +
                          std::to_string(i);
      ASSERT_TRUE(db_->Put({}, key, value).ok());
      model[key] = value;
    }
    Reopen();
    for (int probe = 0; probe < 50; probe++) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_EQ(it->second, Get(it->first))
          << "cycle " << cycle << " key " << it->first;
    }
  }
}

TEST_F(DbRecoveryTest, RecoveryFlushesOversizedWalToL0) {
  // Write more into the WAL than one memtable holds, then reopen: the
  // recovery path must spill to L0 tables.
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(
        db_->Put({}, "key" + std::to_string(i), std::string(100, 'v'))
            .ok());
  }
  Reopen();
  EXPECT_EQ(std::string(100, 'v'), Get("key1500"));
  std::string n0;
  ASSERT_TRUE(db_->GetProperty("elmo.num-files-at-level0", &n0));
  EXPECT_GE(std::stoi(n0), 1);
}

TEST_F(DbRecoveryTest, ObsoleteFilesRemovedAfterCompaction) {
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(
        db_->Put({}, "key" + std::to_string(i), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(db_->CompactRange(nullptr, nullptr).ok());
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());

  // Count live SSTs vs dir contents: no orphaned tables.
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/db", &children).ok());
  int ssts = 0, wals = 0, manifests = 0;
  for (const auto& c : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(c, &number, &type)) continue;
    if (type == FileType::kTableFile) ssts++;
    if (type == FileType::kLogFile) wals++;
    if (type == FileType::kDescriptorFile) manifests++;
  }
  std::string summary;
  ASSERT_TRUE(db_->GetProperty("elmo.levelsummary", &summary));
  // After full compaction, very few files should remain.
  EXPECT_LE(ssts, 12) << summary;
  EXPECT_LE(wals, 2);
  EXPECT_LE(manifests, 2);
}

TEST_F(DbRecoveryTest, MissingCurrentFailsCleanly) {
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  Close();
  ASSERT_TRUE(env_->RemoveFile("/db/CURRENT").ok());
  options_.create_if_missing = false;
  std::unique_ptr<DB> db2;
  Status s = DB::Open(options_, "/db", &db2);
  EXPECT_FALSE(s.ok());
}

TEST_F(DbRecoveryTest, SequenceNumbersMonotoneAcrossReopen) {
  ASSERT_TRUE(db_->Put({}, "k", "v1").ok());
  const Snapshot* before = db_->GetSnapshot();
  db_->ReleaseSnapshot(before);
  Reopen();
  // New writes after reopen must still shadow old ones.
  ASSERT_TRUE(db_->Put({}, "k", "v2").ok());
  EXPECT_EQ("v2", Get("k"));
  Reopen();
  EXPECT_EQ("v2", Get("k"));
}

TEST_F(DbRecoveryTest, BatchAtomicityAcrossCrash) {
  WriteBatch batch;
  batch.Put("x", "1");
  batch.Put("y", "2");
  batch.Put("z", "3");
  ASSERT_TRUE(db_->Write({}, &batch).ok());
  Reopen();
  // The batch is one WAL record: all-or-nothing.
  EXPECT_EQ("1", Get("x"));
  EXPECT_EQ("2", Get("y"));
  EXPECT_EQ("3", Get("z"));
}

TEST_F(DbRecoveryTest, LargeValueSpanningWalBlocks) {
  std::string big(200000, 'W');  // spans multiple 32 KiB WAL blocks
  ASSERT_TRUE(db_->Put({}, "big", big).ok());
  Reopen();
  EXPECT_EQ(big, Get("big"));
}

TEST_F(DbRecoveryTest, SyncedWritesSurvive) {
  WriteOptions sync_opts;
  sync_opts.sync = true;
  ASSERT_TRUE(db_->Put(sync_opts, "durable", "yes").ok());
  EXPECT_GT(db_->stats().Get(Ticker::kWalSyncs), 0u);
  Reopen();
  EXPECT_EQ("yes", Get("durable"));
}

TEST_F(DbRecoveryTest, DisableWalWritesLostOnCrashButDbHealthy) {
  WriteOptions no_wal;
  no_wal.disable_wal = true;
  ASSERT_TRUE(db_->Put(no_wal, "volatile", "gone").ok());
  ASSERT_TRUE(db_->Put({}, "logged", "kept").ok());
  EXPECT_EQ("gone", Get("volatile"));
  Reopen();
  // The paper's safeguard blacklists disable_wal for exactly this
  // reason: unflushed non-WAL writes evaporate.
  EXPECT_EQ("NOT_FOUND", Get("volatile"));
  EXPECT_EQ("kept", Get("logged"));
}

}  // namespace
}  // namespace elmo::lsm
