// dump_tool: SST dissection must round-trip what the engine wrote (key
// counts, ranges, bloom stats), MANIFEST/LOG dumps must decode real
// files, and the whole-directory walk must cover every artifact.
#include "bench_kit/dump_tool.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "env/sim_env.h"
#include "lsm/db.h"
#include "lsm/filename.h"

namespace elmo {
namespace {

class SstDumpTest : public ::testing::Test {
 protected:
  SstDumpTest()
      : env_(HardwareProfile::Make(2, 4, DeviceModel::NvmeSsd()), 42) {}

  // Fill a DB with `keys` distinct keys (one version each), flush, and
  // return the paths of all live SSTs.
  std::vector<std::string> FillDb(const std::string& dbname, int keys,
                                  lsm::Options opts) {
    opts.env = &env_;
    opts.create_if_missing = true;
    std::unique_ptr<lsm::DB> db;
    EXPECT_TRUE(lsm::DB::Open(opts, dbname, &db).ok());
    const std::string value(256, 'v');
    for (int i = 0; i < keys; i++) {
      char key[32];
      snprintf(key, sizeof(key), "key%06d", i);
      EXPECT_TRUE(db->Put({}, key, value).ok());
    }
    EXPECT_TRUE(db->FlushMemTable().ok());
    db.reset();

    std::vector<std::string> children;
    EXPECT_TRUE(env_.GetChildren(dbname, &children).ok());
    std::vector<std::string> ssts;
    for (const std::string& child : children) {
      uint64_t number = 0;
      FileType type;
      if (ParseFileName(child, &number, &type) &&
          type == FileType::kTableFile) {
        ssts.push_back(dbname + "/" + child);
      }
    }
    return ssts;
  }

  SimEnv env_;
};

TEST_F(SstDumpTest, SstRoundTripsKeyCountAndRange) {
  lsm::Options opts;
  opts.write_buffer_size = 32 << 10;  // force several flush-sized SSTs
  std::vector<std::string> ssts = FillDb("/db", 500, opts);
  ASSERT_FALSE(ssts.empty());

  uint64_t total_entries = 0;
  std::string smallest, largest;
  for (const std::string& path : ssts) {
    bench::SstSummary summary;
    std::string text;
    Status s = bench::DumpSst(&env_, path, /*scan=*/true,
                              /*list_blocks=*/true, &summary, &text);
    ASSERT_TRUE(s.ok()) << path << ": " << s.ToString();
    EXPECT_GT(summary.file_size, 0u);
    EXPECT_GT(summary.num_data_blocks, 0u);
    EXPECT_GT(summary.num_entries, 0u);
    EXPECT_EQ(0u, summary.num_deletions);
    EXPECT_LE(summary.smallest_user_key, summary.largest_user_key);
    total_entries += summary.num_entries;
    if (smallest.empty() || summary.smallest_user_key < smallest) {
      smallest = summary.smallest_user_key;
    }
    largest = std::max(largest, summary.largest_user_key);
    EXPECT_NE(std::string::npos, text.find("data block"));
  }
  // Every key written exactly once -> SST entries sum to the key count.
  EXPECT_EQ(500u, total_entries);
  EXPECT_EQ("key000000", smallest);
  EXPECT_EQ("key000499", largest);
}

TEST_F(SstDumpTest, BloomStatsSurface) {
  lsm::Options opts;
  opts.bloom_filter_bits_per_key = 10;
  std::vector<std::string> ssts = FillDb("/bloomdb", 200, opts);
  ASSERT_FALSE(ssts.empty());

  bench::SstSummary summary;
  std::string text;
  ASSERT_TRUE(bench::DumpSst(&env_, ssts[0], true, false, &summary, &text)
                  .ok());
  EXPECT_GT(summary.filter_size, 0u);
  // leveldb bloom scheme stores the probe count in the last byte;
  // 10 bits/key -> k = 10 * ln2 ~= 6.
  EXPECT_GE(summary.bloom_probes, 1);
  EXPECT_LE(summary.bloom_probes, 30);
  EXPECT_NE(std::string::npos, text.find("bloom"));
}

TEST_F(SstDumpTest, RejectsNonSstFiles) {
  ASSERT_TRUE(env_.CreateDirIfMissing("/junkdir").ok());
  ASSERT_TRUE(
      env_.WriteStringToFile("definitely not an sst", "/junkdir/000001.sst")
          .ok());
  bench::SstSummary summary;
  Status s =
      bench::DumpSst(&env_, "/junkdir/000001.sst", true, false, &summary,
                     nullptr);
  EXPECT_FALSE(s.ok());
}

TEST_F(SstDumpTest, ManifestAndLogAndDirDump) {
  lsm::Options opts;
  FillDb("/db2", 100, opts);

  std::vector<std::string> children;
  ASSERT_TRUE(env_.GetChildren("/db2", &children).ok());
  std::string manifest, info_log;
  for (const std::string& child : children) {
    uint64_t number = 0;
    FileType type;
    if (!ParseFileName(child, &number, &type)) continue;
    if (type == FileType::kDescriptorFile) manifest = "/db2/" + child;
    if (type == FileType::kInfoLogFile) info_log = "/db2/" + child;
  }
  ASSERT_FALSE(manifest.empty());
  ASSERT_FALSE(info_log.empty());

  std::string text;
  ASSERT_TRUE(bench::DumpManifest(&env_, manifest, &text).ok());
  EXPECT_NE(std::string::npos, text.find("edit"));

  text.clear();
  ASSERT_TRUE(bench::DumpInfoLog(&env_, info_log, false, &text).ok());
  // The structured LOG always records open and close events.
  EXPECT_NE(std::string::npos, text.find("open"));
  EXPECT_NE(std::string::npos, text.find("close"));

  // A non-JSONL file is rejected, not half-parsed.
  ASSERT_TRUE(env_.WriteStringToFile("plain text line", "/db2/fake_log").ok());
  text.clear();
  EXPECT_TRUE(
      bench::DumpInfoLog(&env_, "/db2/fake_log", false, &text).IsCorruption());

  text.clear();
  ASSERT_TRUE(bench::DumpDbDir(&env_, "/db2", &text).ok());
  EXPECT_NE(std::string::npos, text.find("CURRENT ->"));
  EXPECT_NE(std::string::npos, text.find("entries:"));
  EXPECT_NE(std::string::npos, text.find("manifest"));
}

}  // namespace
}  // namespace elmo
