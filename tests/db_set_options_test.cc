// DB::SetOptions(): validation against the schema's runtime-mutable
// subset, all-or-nothing application, re-plumbing of dependent state,
// the options_change record trail (ticker, property, LOG event), and
// OPTIONS-file persistence across a reopen.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "env/mem_env.h"
#include "lsm/db.h"
#include "lsm/options_schema.h"
#include "util/ini.h"
#include "util/json.h"

namespace elmo::lsm {
namespace {

class DbSetOptionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<MemEnv>();
    options_.env = env_.get();
    options_.create_if_missing = true;
    Open();
  }

  void Open() { ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok()); }
  void Reopen() {
    db_.reset();
    Open();
  }

  // One live option's value, read back through the options property
  // (the schema's ini serialization of the DB's current config).
  std::string LiveOption(const std::string& name) {
    std::string text;
    EXPECT_TRUE(db_->GetProperty("elmo.options", &text));
    IniDoc doc;
    EXPECT_TRUE(IniDoc::Parse(text, &doc).ok());
    for (const char* section : {"DBOptions", "CFOptions", "TableOptions"}) {
      auto v = doc.Get(section, name);
      if (v.has_value()) return *v;
    }
    return "<absent>";
  }

  int64_t ChangeCount() {
    std::string text;
    EXPECT_TRUE(db_->GetProperty("elmo.options_changes", &text));
    json::Value doc;
    EXPECT_TRUE(json::Parse(text, &doc).ok());
    const json::Value* count = doc.Find("count");
    return count != nullptr ? count->as_int() : -1;
  }

  std::unique_ptr<MemEnv> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbSetOptionsTest, AppliesMutableBatchAndRecords) {
  ASSERT_EQ(0, ChangeCount());
  Status s = db_->SetOptions({{"write_buffer_size", "1048576"},
                              {"max_background_jobs", "4"},
                              {"delayed_write_rate", "8388608"}});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ("1048576", LiveOption("write_buffer_size"));
  EXPECT_EQ("4", LiveOption("max_background_jobs"));
  EXPECT_EQ("8388608", LiveOption("delayed_write_rate"));
  EXPECT_EQ(1, ChangeCount());

  // The ledger records each delta's from -> to.
  std::string text;
  ASSERT_TRUE(db_->GetProperty("elmo.options_changes", &text));
  EXPECT_NE(text.find("set_options"), std::string::npos);
  EXPECT_NE(text.find("write_buffer_size"), std::string::npos);
  EXPECT_NE(text.find("1048576"), std::string::npos);
}

TEST_F(DbSetOptionsTest, RejectsUnknownWithClearStatus) {
  Status s = db_->SetOptions({{"memtable_prefetch_depth", "4"}});
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("unknown option"), std::string::npos);
  EXPECT_EQ(0, ChangeCount());
}

TEST_F(DbSetOptionsTest, RejectsDeprecatedWithPointer) {
  Status s = db_->SetOptions({{"soft_rate_limit", "0.5"}});
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("deprecated"), std::string::npos);
  EXPECT_NE(s.ToString().find("delayed_write_rate"), std::string::npos);
}

TEST_F(DbSetOptionsTest, RejectsImmutableWithClearStatus) {
  // Registered and valid at open time, but not runtime-mutable.
  Status s = db_->SetOptions({{"compaction_style", "universal"}});
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("immutable at runtime"), std::string::npos);
  EXPECT_EQ("level", LiveOption("compaction_style"));
}

TEST_F(DbSetOptionsTest, RejectsIllTypedAndOutOfRange) {
  EXPECT_TRUE(db_->SetOptions({{"write_buffer_size", "lots"}})
                  .IsInvalidArgument());
  EXPECT_TRUE(db_->SetOptions({{"max_write_buffer_number", "99999"}})
                  .IsInvalidArgument());
  EXPECT_TRUE(db_->SetOptions({}).IsInvalidArgument());
  EXPECT_EQ(0, ChangeCount());
}

TEST_F(DbSetOptionsTest, MixedBatchIsAllOrNothing) {
  // One valid entry next to one invalid: nothing may be applied.
  Status s = db_->SetOptions({{"write_buffer_size", "1048576"},
                              {"no_such_option", "1"}});
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ("67108864", LiveOption("write_buffer_size"));
  EXPECT_EQ(0, ChangeCount());

  s = db_->SetOptions({{"max_background_jobs", "4"},
                       {"compaction_style", "universal"}});
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ("2", LiveOption("max_background_jobs"));
  EXPECT_EQ(0, ChangeCount());
}

TEST_F(DbSetOptionsTest, NoOpBatchSucceedsWithoutRecording) {
  // Same values as the live config: accepted, but no change recorded.
  Status s = db_->SetOptions({{"write_buffer_size", "67108864"}});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(0, ChangeCount());
}

TEST_F(DbSetOptionsTest, StallTriggerOrderingReimposed) {
  // A stop trigger below the slowdown trigger would wedge the stall
  // state machine; SetOptions re-imposes the open-time ordering.
  ASSERT_TRUE(db_->SetOptions({{"level0_stop_writes_trigger", "6"},
                               {"level0_slowdown_writes_trigger", "10"}})
                  .ok());
  EXPECT_EQ("10", LiveOption("level0_slowdown_writes_trigger"));
  EXPECT_EQ("10", LiveOption("level0_stop_writes_trigger"));
}

TEST_F(DbSetOptionsTest, SamplerCannotCrossZero) {
  // This DB opened with the sampler off; a live cadence cannot create
  // the sampler thread.
  Status s = db_->SetOptions({{"stats_sample_interval_ms", "100"}});
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("sampler"), std::string::npos);
}

TEST_F(DbSetOptionsTest, ShrinkingBlockCacheEvictsDown) {
  const std::string value(1024, 'v');
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put({}, "key" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  std::string out;
  for (int i = 0; i < 2000; i++) {
    db_->Get({}, "key" + std::to_string(i), &out);
  }
  std::string usage_text;
  ASSERT_TRUE(db_->GetProperty("elmo.block-cache-usage", &usage_text));
  ASSERT_TRUE(db_->SetOptions({{"block_cache_size", "65536"}}).ok());
  ASSERT_TRUE(db_->GetProperty("elmo.block-cache-usage", &usage_text));
  EXPECT_LE(std::stoull(usage_text), 65536ull);
}

TEST_F(DbSetOptionsTest, ChangeLandsInInfoLog) {
  ASSERT_TRUE(db_->SetOptions({{"max_subcompactions", "3"}}).ok());
  std::string log;
  ASSERT_TRUE(env_->ReadFileToString("/db/LOG", &log).ok());
  EXPECT_NE(log.find("options_change"), std::string::npos);
  EXPECT_NE(log.find("max_subcompactions"), std::string::npos);
}

TEST_F(DbSetOptionsTest, MutateReopenRecoversPersistedOptions) {
  ASSERT_TRUE(db_->SetOptions({{"write_buffer_size", "1048576"},
                               {"max_background_jobs", "6"}})
                  .ok());
  // Reopen with the caller's original (stale) Options plus the opt-in:
  // recovery must replay the last applied values from the OPTIONS file.
  options_.recover_persisted_options = true;
  Reopen();
  EXPECT_EQ("1048576", LiveOption("write_buffer_size"));
  EXPECT_EQ("6", LiveOption("max_background_jobs"));
  // The replay itself is a recorded change in the new incarnation.
  std::string text;
  ASSERT_TRUE(db_->GetProperty("elmo.options_changes", &text));
  EXPECT_NE(text.find("recovery"), std::string::npos);
}

TEST_F(DbSetOptionsTest, ReopenWithoutOptInKeepsCallerOptions) {
  ASSERT_TRUE(db_->SetOptions({{"write_buffer_size", "1048576"}}).ok());
  Reopen();  // recover_persisted_options stays false
  EXPECT_EQ("67108864", LiveOption("write_buffer_size"));
}

}  // namespace
}  // namespace elmo::lsm
