// Latency-attribution analyzer and Chrome trace-event exporter
// (bench_kit/span_analyzer.h) on a hand-planted tail-latency trace with
// known percentiles and component shares, plus golden prompt-text
// output and Perfetto-export sanity checks.
#include <gtest/gtest.h>

#include <string>

#include "bench_kit/span_analyzer.h"
#include "env/mem_env.h"
#include "lsm/span.h"
#include "util/json.h"

namespace elmo::bench {
namespace {

using lsm::GetSpanCollector;
using lsm::SpanCollector;
using lsm::SpanKind;
using lsm::SpanTraceOptions;
using lsm::SpanTracer;

// Emits a root-only tree of `kind` with the given duration.
void PlantLeafTree(SpanTracer* tracer, SpanKind kind, uint64_t start_us,
                   uint64_t duration_us) {
  SpanCollector* c = GetSpanCollector();
  const size_t h = c->OpenRoot(kind, start_us, tracer);
  c->Close(h, start_us + duration_us);
}

// Writes the planted tail-latency trace to /planted on `env`:
//   write: 10 fast root-only trees (100us) + 1 slow tree (10000us) whose
//          time splits wal_sync 9000 / wal_append 500 / self 500
//   get:   5 trees (200us) with an sst_probe child (150us) each
//   flush: 1 tree (5000us) with a table_build child (4500us)
// Expected nearest-rank percentiles and p99 tail shares are asserted in
// the tests below.
void PlantTrace(MemEnv* env) {
  SpanTracer tracer(env);
  SpanTraceOptions opts;
  opts.slow_op_threshold_us = 0;  // capture everything as "slow"
  opts.sample_every = 0;
  ASSERT_TRUE(tracer.Start("/planted", opts, /*base_ts_us=*/1000).ok());
  SpanCollector* c = GetSpanCollector();

  uint64_t t = 0;
  for (int i = 0; i < 10; i++) {
    PlantLeafTree(&tracer, SpanKind::kWrite, t, 100);
    t += 1000;
  }
  {
    const size_t root = c->OpenRoot(SpanKind::kWrite, t, &tracer);
    const size_t sync = c->OpenChild(SpanKind::kWalSync, t + 100);
    c->Close(sync, t + 9100);  // 9000us
    const size_t append = c->OpenChild(SpanKind::kWalAppend, t + 9200);
    c->Close(append, t + 9700);  // 500us
    c->Close(root, t + 10000);   // self = 10000 - 9500 = 500us
    t += 20000;
  }
  for (int i = 0; i < 5; i++) {
    const size_t root = c->OpenRoot(SpanKind::kGet, t, &tracer);
    const size_t probe = c->OpenChild(SpanKind::kSstProbe, t + 25);
    c->Close(probe, t + 175);  // 150us
    c->Close(root, t + 200);   // self = 50us
    t += 1000;
  }
  {
    const size_t root = c->OpenRoot(SpanKind::kFlush, t, &tracer);
    const size_t build = c->OpenChild(SpanKind::kTableBuild, t + 100);
    c->Close(build, t + 4600);  // 4500us
    c->Close(root, t + 5000);   // self = 500us
  }
  ASSERT_TRUE(tracer.Stop(nullptr).ok());
}

const SpanOpAttribution* FindOp(const SpanAttribution& attr,
                                const std::string& name) {
  for (const SpanOpAttribution& op : attr.ops) {
    if (op.op == name) return &op;
  }
  return nullptr;
}

TEST(SpanAnalyzerTest, AttributesPlantedTailLatency) {
  MemEnv env;
  PlantTrace(&env);

  SpanAttribution attr;
  ASSERT_TRUE(AnalyzeSpanTrace(&env, "/planted", &attr).ok());
  EXPECT_EQ(attr.trees, 17u);
  EXPECT_EQ(attr.slow, 17u);  // threshold 0: everything is slow
  EXPECT_EQ(attr.sampled, 0u);
  EXPECT_EQ(attr.base_ts_us, 1000u);
  // Ops ordered by kind value: write(1), get(2), flush(5).
  ASSERT_EQ(attr.ops.size(), 3u);
  EXPECT_EQ(attr.ops[0].op, "write");
  EXPECT_EQ(attr.ops[1].op, "get");
  EXPECT_EQ(attr.ops[2].op, "flush");

  const SpanOpAttribution* write = FindOp(attr, "write");
  ASSERT_NE(write, nullptr);
  EXPECT_EQ(write->count, 11u);
  EXPECT_EQ(write->p50_us, 100u);
  EXPECT_EQ(write->p99_us, 10000u);
  EXPECT_EQ(write->p999_us, 10000u);
  EXPECT_EQ(write->max_us, 10000u);
  EXPECT_NEAR(write->mean_us, 11000.0 / 11, 1e-9);
  EXPECT_EQ(write->tail_trees, 1u);
  // Largest component first; the 500us tie breaks by name ("self" <
  // "wal_append").
  ASSERT_EQ(write->tail_components.size(), 3u);
  EXPECT_EQ(write->tail_components[0].name, "wal_sync");
  EXPECT_EQ(write->tail_components[0].total_us, 9000u);
  EXPECT_NEAR(write->tail_components[0].share, 0.90, 1e-9);
  EXPECT_EQ(write->tail_components[1].name, "self");
  EXPECT_EQ(write->tail_components[1].total_us, 500u);
  EXPECT_NEAR(write->tail_components[1].share, 0.05, 1e-9);
  EXPECT_EQ(write->tail_components[2].name, "wal_append");
  EXPECT_EQ(write->tail_components[2].total_us, 500u);
  EXPECT_NEAR(write->tail_components[2].share, 0.05, 1e-9);

  const SpanOpAttribution* get = FindOp(attr, "get");
  ASSERT_NE(get, nullptr);
  EXPECT_EQ(get->count, 5u);
  EXPECT_EQ(get->p50_us, 200u);
  EXPECT_EQ(get->p99_us, 200u);
  EXPECT_EQ(get->p999_us, 200u);
  // Every tree sits at the p99 cut, so the whole sample is the tail.
  EXPECT_EQ(get->tail_trees, 5u);
  ASSERT_EQ(get->tail_components.size(), 2u);
  EXPECT_EQ(get->tail_components[0].name, "sst_probe");
  EXPECT_EQ(get->tail_components[0].total_us, 750u);
  EXPECT_NEAR(get->tail_components[0].share, 0.75, 1e-9);
  EXPECT_EQ(get->tail_components[1].name, "self");
  EXPECT_NEAR(get->tail_components[1].share, 0.25, 1e-9);

  const SpanOpAttribution* flush = FindOp(attr, "flush");
  ASSERT_NE(flush, nullptr);
  EXPECT_EQ(flush->count, 1u);
  EXPECT_EQ(flush->p99_us, 5000u);
  EXPECT_EQ(flush->tail_trees, 1u);
  ASSERT_EQ(flush->tail_components.size(), 2u);
  EXPECT_EQ(flush->tail_components[0].name, "table_build");
  EXPECT_NEAR(flush->tail_components[0].share, 0.90, 1e-9);
  EXPECT_EQ(flush->tail_components[1].name, "self");
  EXPECT_NEAR(flush->tail_components[1].share, 0.10, 1e-9);

  // The decomposition is exhaustive: shares sum to ~100% per op.
  for (const SpanOpAttribution& op : attr.ops) {
    double sum = 0;
    for (const auto& c : op.tail_components) sum += c.share;
    EXPECT_NEAR(sum, 1.0, 1e-9) << op.op;
  }
}

TEST(SpanAnalyzerTest, GoldenPromptAndTextOutput) {
  MemEnv env;
  PlantTrace(&env);
  SpanAttribution attr;
  ASSERT_TRUE(AnalyzeSpanTrace(&env, "/planted", &attr).ok());

  EXPECT_EQ(attr.ToPromptText(),
            "write: p50=100us p99=10000us p999=10000us | p99 tail "
            "breakdown: wal_sync 90.0% self 5.0% wal_append 5.0%\n"
            "get: p50=200us p99=200us p999=200us | p99 tail breakdown: "
            "sst_probe 75.0% self 25.0%\n"
            "flush: p50=5000us p99=5000us p999=5000us | p99 tail "
            "breakdown: table_build 90.0% self 10.0%\n");

  const std::string text = attr.ToText();
  EXPECT_NE(text.find("span trace: 17 trees (17 slow, 0 sampled)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("p99 tail: wal_sync          90.0% (9000 us)"),
            std::string::npos)
      << text;

  // Analysis is a pure function of the trace bytes.
  SpanAttribution again;
  ASSERT_TRUE(AnalyzeSpanTrace(&env, "/planted", &again).ok());
  EXPECT_EQ(json::Value(attr.ToJson()).Dump(2),
            json::Value(again.ToJson()).Dump(2));
}

TEST(SpanAnalyzerTest, JsonShapeCarriesSharesAndCounts) {
  MemEnv env;
  PlantTrace(&env);
  SpanAttribution attr;
  ASSERT_TRUE(AnalyzeSpanTrace(&env, "/planted", &attr).ok());

  const json::Value doc(attr.ToJson());
  const json::Value* trees = doc.Find("trees");
  ASSERT_NE(trees, nullptr);
  EXPECT_EQ(trees->as_int(), 17);
  const json::Value* ops = doc.Find("ops");
  ASSERT_NE(ops, nullptr);
  ASSERT_TRUE(ops->is_array());
  ASSERT_EQ(ops->as_array().size(), 3u);
  const json::Value& write = ops->as_array()[0];
  ASSERT_TRUE(write.is_object());
  EXPECT_EQ(write.Find("op")->as_string(), "write");
  EXPECT_EQ(write.Find("p99_us")->as_int(), 10000);
  const json::Value* comps = write.Find("tail_components");
  ASSERT_NE(comps, nullptr);
  ASSERT_EQ(comps->as_array().size(), 3u);
  EXPECT_EQ(comps->as_array()[0].Find("name")->as_string(), "wal_sync");
  EXPECT_NEAR(comps->as_array()[0].Find("share")->as_double(), 0.9, 1e-6);
}

TEST(SpanAnalyzerTest, EmptyTraceYieldsNoOps) {
  MemEnv env;
  SpanTracer tracer(&env);
  ASSERT_TRUE(tracer.Start("/empty", {}, 0).ok());
  ASSERT_TRUE(tracer.Stop(nullptr).ok());

  SpanAttribution attr;
  ASSERT_TRUE(AnalyzeSpanTrace(&env, "/empty", &attr).ok());
  EXPECT_EQ(attr.trees, 0u);
  EXPECT_TRUE(attr.ops.empty());
  EXPECT_EQ(attr.ToPromptText(), "");

  EXPECT_TRUE(AnalyzeSpanTrace(&env, "/missing", &attr).IsNotFound() ||
              AnalyzeSpanTrace(&env, "/missing", &attr).IsIOError());
}

TEST(SpanAnalyzerTest, ChromeExportSeparatesForegroundAndBackground) {
  MemEnv env;
  PlantTrace(&env);
  std::string json_text;
  ASSERT_TRUE(ExportChromeTrace(&env, "/planted", &json_text).ok());

  json::Value doc;
  ASSERT_TRUE(json::Parse(json_text, &doc).ok());
  const json::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int meta = 0, foreground = 0, background = 0;
  bool flush_on_bg = true, write_on_fg = true;
  for (const json::Value& e : events->as_array()) {
    const std::string ph = e.Find("ph")->as_string();
    const int64_t pid = e.Find("pid")->as_int();
    if (ph == "M") {
      meta++;
      continue;
    }
    ASSERT_EQ(ph, "X");
    const std::string name = e.Find("name")->as_string();
    if (pid == 1) foreground++;
    if (pid == 2) background++;
    if ((name == "flush" || name == "table_build") && pid != 2) {
      flush_on_bg = false;
    }
    if (name == "write" && pid != 1) write_on_fg = false;
  }
  EXPECT_EQ(meta, 2);  // the two process_name records
  // 11 write trees (13 spans) + 5 get trees (10 spans) = 23 foreground;
  // flush tree = 2 background spans.
  EXPECT_EQ(foreground, 23);
  EXPECT_EQ(background, 2);
  EXPECT_TRUE(flush_on_bg);
  EXPECT_TRUE(write_on_fg);
}

}  // namespace
}  // namespace elmo::bench
