// Stress-kit coverage: expected-state oracle semantics (cut
// verification, durability floors, value self-identification), clean
// deterministic stress campaigns under SimEnv, equal-seed
// reproducibility, kill-point reachability, and the planted-violation
// run that must end in a detected divergence.
#include <gtest/gtest.h>

#include <initializer_list>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fault/kill_point.h"
#include "stress_kit/expected_state.h"
#include "stress_kit/stress_driver.h"

namespace elmo::stress {
namespace {

TEST(StressValueTest, SelfIdentifyingRoundTrip) {
  const std::string v = StressValueFor(17, 12345, 64);
  EXPECT_EQ(64u, v.size());
  uint32_t key = 0;
  uint64_t op = 0;
  ASSERT_TRUE(DecodeStressValue(v, &key, &op));
  EXPECT_EQ(17u, key);
  EXPECT_EQ(12345u, op);

  // Any tampering breaks decode: the filler is re-derived and compared.
  std::string bad = v;
  bad.back() ^= 1;
  EXPECT_FALSE(DecodeStressValue(bad, &key, &op));
}

TEST(StressKeyTest, LexicographicEqualsNumericOrder) {
  EXPECT_LT(StressKeyName(9), StressKeyName(10));
  EXPECT_LT(StressKeyName(99), StressKeyName(100));
  uint32_t k = 0;
  ASSERT_TRUE(ParseStressKey(StressKeyName(42), &k));
  EXPECT_EQ(42u, k);
  EXPECT_FALSE(ParseStressKey("stranger", &k));
}

class ExpectedStateTest : public ::testing::Test {
 protected:
  ExpectedStateTest() : st_(8, /*shards=*/4) {}

  std::vector<ExpectedState::Observed> Observe(
      std::initializer_list<std::pair<uint32_t, uint64_t>> found) {
    std::vector<ExpectedState::Observed> obs(st_.num_keys());
    for (const auto& [key, op] : found) {
      obs[key].found = true;
      obs[key].op_index = op;
    }
    return obs;
  }

  ExpectedState st_;
};

TEST_F(ExpectedStateTest, LatestTracksNewestPut) {
  st_.RecordWrite(3, 10, /*is_delete=*/false, /*acked=*/true);
  st_.RecordWrite(3, 20, /*is_delete=*/false, /*acked=*/true);
  auto e = st_.Latest(3);
  EXPECT_TRUE(e.exists);
  EXPECT_EQ(20u, e.op_index);
  st_.RecordWrite(3, 30, /*is_delete=*/true, /*acked=*/true);
  EXPECT_FALSE(st_.Latest(3).exists);
  EXPECT_EQ(0u, st_.LiveKeyCount());
}

TEST_F(ExpectedStateTest, CutAcceptsAnyConsistentPrefix) {
  st_.RecordWrite(1, 10, false, true);
  st_.RecordWrite(2, 20, false, true);
  st_.RecordWrite(1, 30, false, true);
  // Recovery kept ops <= 20: key1@10, key2@20.
  uint64_t cut = 0;
  std::string divergence;
  ASSERT_TRUE(st_.VerifyCrashCut(Observe({{1, 10}, {2, 20}}), 30, &cut,
                                 &divergence))
      << divergence;
  EXPECT_GE(cut, 20u);
  EXPECT_LT(cut, 30u);
  // The cut is now durable and the history truncated: key1's op 30 is
  // gone, so its latest is op 10 again.
  EXPECT_EQ(10u, st_.Latest(1).op_index);
  EXPECT_GE(st_.last_sync(), 20u);
}

TEST_F(ExpectedStateTest, CutRejectsLostSyncedWrite) {
  st_.RecordWrite(1, 10, false, true);
  st_.RecordSyncPoint(10);  // op 10 acknowledged durable
  st_.RecordWrite(2, 20, false, true);
  uint64_t cut = 0;
  std::string divergence;
  // Recovery lost key1 entirely: no cut >= 10 allows that.
  EXPECT_FALSE(st_.VerifyCrashCut(Observe({{2, 20}}), 20, &cut,
                                  &divergence));
  EXPECT_NE(std::string::npos, divergence.find("key"));
}

TEST_F(ExpectedStateTest, CutRejectsTornPrefix) {
  st_.RecordWrite(1, 10, false, true);
  st_.RecordWrite(2, 20, false, true);
  st_.RecordWrite(1, 30, false, true);
  uint64_t cut = 0;
  std::string divergence;
  // key1@30 present but key2@20 missing: ops 20 and 30 are on the same
  // WAL prefix, so no single cut explains this state.
  EXPECT_FALSE(st_.VerifyCrashCut(Observe({{1, 30}}), 30, &cut,
                                  &divergence));
  EXPECT_FALSE(divergence.empty());
}

TEST_F(ExpectedStateTest, CutRejectsResurrectedDelete) {
  st_.RecordWrite(1, 10, false, true);
  st_.RecordWrite(1, 20, true, true);  // delete
  st_.RecordWrite(2, 30, false, true);
  uint64_t cut = 0;
  std::string divergence;
  // key2@30 implies cut >= 30, but then key1 must be deleted — seeing
  // the old value back is resurrection.
  EXPECT_FALSE(st_.VerifyCrashCut(Observe({{1, 10}, {2, 30}}), 30, &cut,
                                  &divergence));
  EXPECT_FALSE(divergence.empty());
}

TEST_F(ExpectedStateTest, UnackedWriteMaySurfaceOrNot) {
  st_.RecordWrite(1, 10, false, true);
  st_.RecordWrite(2, 20, false, /*acked=*/false);  // error returned
  uint64_t cut = 0;
  std::string divergence;
  // Both worlds are legal: the unacked write reached the WAL...
  ASSERT_TRUE(st_.VerifyCrashCut(Observe({{1, 10}, {2, 20}}), 20, &cut,
                                 &divergence))
      << divergence;
  // (state now truncated to that cut — rebuild for the other world)
  ExpectedState st2(8, 4);
  st2.RecordWrite(1, 10, false, true);
  st2.RecordWrite(2, 20, false, false);
  ASSERT_TRUE(st2.VerifyCrashCut(Observe({{1, 10}}), 20, &cut,
                                 &divergence))
      << divergence;
}

TEST_F(ExpectedStateTest, RelaxedChecksPerKeyFloors) {
  st_.RecordWrite(1, 10, false, true);
  st_.RecordKeySync(1, 10);
  st_.RecordWrite(2, 20, false, true);  // never synced
  std::string divergence;
  // key2 missing is fine (no floor); key1 missing is not.
  EXPECT_TRUE(st_.VerifyCrashRelaxed(Observe({{1, 10}}), &divergence))
      << divergence;
  ExpectedState st2(8, 4);
  st2.RecordWrite(1, 10, false, true);
  st2.RecordKeySync(1, 10);
  EXPECT_FALSE(st2.VerifyCrashRelaxed(Observe({}), &divergence));
  EXPECT_FALSE(divergence.empty());
}

TEST(StressRunTest, CleanRunPassesAndIsDeterministic) {
  StressConfig cfg;
  cfg.seed = 7;
  cfg.ops = 3000;
  cfg.crash_cycles = 4;
  cfg.num_keys = 128;
  cfg.db_path = "/stress_clean";
  const StressReport a = RunStress(cfg);
  EXPECT_TRUE(a.ok) << a.first_divergence;
  EXPECT_GE(a.crash_cycles_done, 4);  // truncated segments add cycles
  EXPECT_EQ(cfg.ops, a.ops_executed);

  const StressReport b = RunStress(cfg);
  EXPECT_TRUE(b.ok) << b.first_divergence;
  // Same seed, SimEnv, one thread: byte-identical campaign.
  EXPECT_EQ(a.schedule_hash, b.schedule_hash);
  EXPECT_EQ(a.ToJson(), b.ToJson());

  cfg.seed = 8;
  const StressReport c = RunStress(cfg);
  EXPECT_TRUE(c.ok) << c.first_divergence;
  EXPECT_NE(a.schedule_hash, c.schedule_hash);
}

TEST(StressRunTest, KillPointsAreReachable) {
  // Track which points the engine executes during a plain campaign: the
  // driver's arming list must not contain stale names.
  auto& reg = KillPointRegistry::Instance();
  reg.SetTracking(true);
  StressConfig cfg;
  cfg.seed = 11;
  cfg.ops = 4000;
  cfg.crash_cycles = 2;
  cfg.num_keys = 128;
  cfg.flush_every = 63;  // flush often so compaction happens too
  cfg.use_kill_points = false;  // pure tracking run
  cfg.db_path = "/stress_track";
  const StressReport r = RunStress(cfg);
  const auto seen_list = reg.SeenPoints();
  reg.SetTracking(false);
  EXPECT_TRUE(r.ok) << r.first_divergence;
  const std::set<std::string> seen(seen_list.begin(), seen_list.end());
  for (const auto& p : StressKillPoints()) {
    EXPECT_TRUE(seen.count(p) > 0) << "kill point never executed: " << p;
  }
}

TEST(StressRunTest, PlantedWalSyncViolationIsDetected) {
  StressConfig cfg;
  cfg.seed = 3;
  cfg.ops = 600;
  cfg.crash_cycles = 1;
  cfg.num_keys = 64;
  cfg.sync_every = 5;   // plenty of acked-synced writes to lose
  cfg.flush_every = 0;  // WAL is the only durability path
  cfg.drop_mode = 0;    // kDropAll: the lie always destroys data
  cfg.read_faults = false;
  cfg.write_faults = false;
  cfg.use_kill_points = false;
  cfg.plant_wal_sync_violation = true;
  cfg.db_path = "/stress_planted";
  const StressReport r = RunStress(cfg);
  EXPECT_FALSE(r.ok) << "a lying WAL sync must not pass certification";
  EXPECT_FALSE(r.first_divergence.empty());
  EXPECT_GT(r.fault_counters.wal_sync_lies, 0u);
}

TEST(StressSeedTest, NumericAndStringSeeds) {
  EXPECT_EQ(123u, StressSeedFromString("123"));
  EXPECT_EQ(StressSeedFromString("ci"), StressSeedFromString("ci"));
  EXPECT_NE(StressSeedFromString("ci"), StressSeedFromString("ci2"));
}

}  // namespace
}  // namespace elmo::stress
