// MemFs / MemEnv / PosixEnv behavior.
#include <gtest/gtest.h>

#include <cstdlib>

#include "env/mem_env.h"

namespace elmo {
namespace {

class EnvKind {
 public:
  virtual ~EnvKind() = default;
  virtual Env* env() = 0;
  virtual std::string dir() = 0;
};

class MemKind : public EnvKind {
 public:
  Env* env() override { return &env_; }
  std::string dir() override { return "/dir"; }

 private:
  MemEnv env_;
};

class PosixKind : public EnvKind {
 public:
  PosixKind() {
    char tmpl[] = "/tmp/elmo_env_test_XXXXXX";
    dir_ = mkdtemp(tmpl);
  }
  ~PosixKind() override {
    // Best-effort cleanup.
    std::vector<std::string> children;
    if (Env::Posix()->GetChildren(dir_, &children).ok()) {
      for (const auto& c : children) {
        Env::Posix()->RemoveFile(dir_ + "/" + c);
      }
    }
    Env::Posix()->RemoveDir(dir_);
  }
  Env* env() override { return Env::Posix(); }
  std::string dir() override { return dir_; }

 private:
  std::string dir_;
};

class EnvTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "mem") {
      kind_ = std::make_unique<MemKind>();
    } else {
      kind_ = std::make_unique<PosixKind>();
    }
    env_ = kind_->env();
    dir_ = kind_->dir();
    ASSERT_TRUE(env_->CreateDirIfMissing(dir_).ok());
  }

  std::unique_ptr<EnvKind> kind_;
  Env* env_ = nullptr;
  std::string dir_;
};

TEST_P(EnvTest, WriteReadRoundTrip) {
  std::string fname = dir_ + "/f1";
  ASSERT_TRUE(env_->WriteStringToFile("hello env", fname).ok());
  ASSERT_TRUE(env_->FileExists(fname));
  std::string data;
  ASSERT_TRUE(env_->ReadFileToString(fname, &data).ok());
  EXPECT_EQ("hello env", data);
}

TEST_P(EnvTest, SequentialReadChunks) {
  std::string fname = dir_ + "/chunks";
  std::string payload;
  for (int i = 0; i < 1000; i++) payload += "0123456789";
  ASSERT_TRUE(env_->WriteStringToFile(payload, fname).ok());

  std::unique_ptr<SequentialFile> f;
  ASSERT_TRUE(env_->NewSequentialFile(fname, &f).ok());
  std::string got;
  char scratch[333];
  while (true) {
    Slice out;
    ASSERT_TRUE(f->Read(sizeof(scratch), &out, scratch).ok());
    if (out.empty()) break;
    got.append(out.data(), out.size());
  }
  EXPECT_EQ(payload, got);
}

TEST_P(EnvTest, SequentialSkip) {
  std::string fname = dir_ + "/skip";
  ASSERT_TRUE(env_->WriteStringToFile("abcdefghij", fname).ok());
  std::unique_ptr<SequentialFile> f;
  ASSERT_TRUE(env_->NewSequentialFile(fname, &f).ok());
  ASSERT_TRUE(f->Skip(4).ok());
  Slice out;
  char scratch[16];
  ASSERT_TRUE(f->Read(3, &out, scratch).ok());
  EXPECT_EQ("efg", out.ToString());
}

TEST_P(EnvTest, RandomAccessRead) {
  std::string fname = dir_ + "/rand";
  ASSERT_TRUE(env_->WriteStringToFile("abcdefghij", fname).ok());
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &f).ok());
  Slice out;
  char scratch[16];
  ASSERT_TRUE(f->Read(3, 4, &out, scratch).ok());
  EXPECT_EQ("defg", out.ToString());
  // Past-EOF read returns empty/short, not an error.
  ASSERT_TRUE(f->Read(100, 4, &out, scratch).ok());
  EXPECT_TRUE(out.empty());
}

TEST_P(EnvTest, MissingFileIsNotFoundish) {
  std::unique_ptr<SequentialFile> f;
  EXPECT_FALSE(env_->NewSequentialFile(dir_ + "/nope", &f).ok());
  EXPECT_FALSE(env_->FileExists(dir_ + "/nope"));
  uint64_t size;
  EXPECT_FALSE(env_->GetFileSize(dir_ + "/nope", &size).ok());
}

TEST_P(EnvTest, GetChildrenListsFiles) {
  ASSERT_TRUE(env_->WriteStringToFile("1", dir_ + "/a").ok());
  ASSERT_TRUE(env_->WriteStringToFile("2", dir_ + "/b").ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  EXPECT_NE(std::find(children.begin(), children.end(), "a"),
            children.end());
  EXPECT_NE(std::find(children.begin(), children.end(), "b"),
            children.end());
}

TEST_P(EnvTest, RenameReplaces) {
  ASSERT_TRUE(env_->WriteStringToFile("new", dir_ + "/src").ok());
  ASSERT_TRUE(env_->WriteStringToFile("old", dir_ + "/dst").ok());
  ASSERT_TRUE(env_->RenameFile(dir_ + "/src", dir_ + "/dst").ok());
  EXPECT_FALSE(env_->FileExists(dir_ + "/src"));
  std::string data;
  ASSERT_TRUE(env_->ReadFileToString(dir_ + "/dst", &data).ok());
  EXPECT_EQ("new", data);
}

TEST_P(EnvTest, RemoveFile) {
  ASSERT_TRUE(env_->WriteStringToFile("x", dir_ + "/gone").ok());
  ASSERT_TRUE(env_->RemoveFile(dir_ + "/gone").ok());
  EXPECT_FALSE(env_->FileExists(dir_ + "/gone"));
  EXPECT_FALSE(env_->RemoveFile(dir_ + "/gone").ok());
}

TEST_P(EnvTest, GetFileSize) {
  ASSERT_TRUE(env_->WriteStringToFile(std::string(1234, 'z'),
                                      dir_ + "/sized").ok());
  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize(dir_ + "/sized", &size).ok());
  EXPECT_EQ(1234u, size);
}

TEST_P(EnvTest, OverwriteTruncates) {
  ASSERT_TRUE(env_->WriteStringToFile("long content here",
                                      dir_ + "/trunc").ok());
  ASSERT_TRUE(env_->WriteStringToFile("short", dir_ + "/trunc").ok());
  std::string data;
  ASSERT_TRUE(env_->ReadFileToString(dir_ + "/trunc", &data).ok());
  EXPECT_EQ("short", data);
}

TEST_P(EnvTest, NowMicrosMonotonicNonDecreasing) {
  uint64_t a = env_->NowMicros();
  uint64_t b = env_->NowMicros();
  EXPECT_LE(a, b);
}

INSTANTIATE_TEST_SUITE_P(AllEnvs, EnvTest,
                         ::testing::Values("mem", "posix"));

}  // namespace
}  // namespace elmo
