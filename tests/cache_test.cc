#include "table/cache.h"

#include <gtest/gtest.h>

namespace elmo {
namespace {

std::shared_ptr<void> Val(int v) { return std::make_shared<int>(v); }

int AsInt(const std::shared_ptr<void>& p) {
  return *std::static_pointer_cast<int>(p);
}

TEST(Cache, InsertLookup) {
  auto cache = NewLruCache(1000, /*shard_bits=*/0);
  cache->Insert("a", Val(1), 10);
  cache->Insert("b", Val(2), 10);
  EXPECT_EQ(1, AsInt(cache->Lookup("a")));
  EXPECT_EQ(2, AsInt(cache->Lookup("b")));
  EXPECT_EQ(nullptr, cache->Lookup("c"));
}

TEST(Cache, OverwriteReplaces) {
  auto cache = NewLruCache(1000, 0);
  cache->Insert("k", Val(1), 10);
  cache->Insert("k", Val(2), 10);
  EXPECT_EQ(2, AsInt(cache->Lookup("k")));
  EXPECT_EQ(10u, cache->TotalCharge());
}

TEST(Cache, EvictsLeastRecentlyUsed) {
  auto cache = NewLruCache(30, 0);
  cache->Insert("a", Val(1), 10);
  cache->Insert("b", Val(2), 10);
  cache->Insert("c", Val(3), 10);
  // Touch "a" so "b" is the LRU victim.
  cache->Lookup("a");
  cache->Insert("d", Val(4), 10);
  EXPECT_NE(nullptr, cache->Lookup("a"));
  EXPECT_EQ(nullptr, cache->Lookup("b"));
  EXPECT_NE(nullptr, cache->Lookup("c"));
  EXPECT_NE(nullptr, cache->Lookup("d"));
}

TEST(Cache, ChargeAccounting) {
  auto cache = NewLruCache(100, 0);
  cache->Insert("a", Val(1), 60);
  cache->Insert("b", Val(2), 60);  // evicts a (120 > 100)
  EXPECT_EQ(60u, cache->TotalCharge());
  EXPECT_EQ(nullptr, cache->Lookup("a"));
}

TEST(Cache, OversizedEntryEvictedImmediately) {
  auto cache = NewLruCache(50, 0);
  cache->Insert("big", Val(1), 500);
  EXPECT_EQ(nullptr, cache->Lookup("big"));
  EXPECT_EQ(0u, cache->TotalCharge());
}

TEST(Cache, EraseRemoves) {
  auto cache = NewLruCache(100, 0);
  cache->Insert("k", Val(1), 10);
  cache->Erase("k");
  EXPECT_EQ(nullptr, cache->Lookup("k"));
  EXPECT_EQ(0u, cache->TotalCharge());
  cache->Erase("k");  // idempotent
}

TEST(Cache, ValueOutlivesEviction) {
  auto cache = NewLruCache(20, 0);
  cache->Insert("k", Val(42), 10);
  auto held = cache->Lookup("k");
  cache->Insert("evictor", Val(0), 20);  // evicts k
  EXPECT_EQ(nullptr, cache->Lookup("k"));
  EXPECT_EQ(42, AsInt(held));  // still alive through shared_ptr
}

TEST(Cache, StatsCount) {
  auto cache = NewLruCache(100, 0);
  cache->Insert("k", Val(1), 10);
  cache->Lookup("k");
  cache->Lookup("k");
  cache->Lookup("missing");
  auto stats = cache->GetStats();
  EXPECT_EQ(1u, stats.inserts);
  EXPECT_EQ(2u, stats.hits);
  EXPECT_EQ(1u, stats.misses);
}

TEST(Cache, SetCapacityShrinksAndEvicts) {
  auto cache = NewLruCache(100, 0);
  for (int i = 0; i < 10; i++) {
    cache->Insert("k" + std::to_string(i), Val(i), 10);
  }
  EXPECT_EQ(100u, cache->TotalCharge());
  cache->SetCapacity(30);
  EXPECT_LE(cache->TotalCharge(), 30u);
}

TEST(Cache, ShardedSpreadsKeys) {
  auto cache = NewLruCache(1600, 4);  // 16 shards x 100
  for (int i = 0; i < 100; i++) {
    cache->Insert("key" + std::to_string(i), Val(i), 10);
  }
  // Most keys should still be resident (spread over shards).
  int resident = 0;
  for (int i = 0; i < 100; i++) {
    if (cache->Lookup("key" + std::to_string(i)) != nullptr) resident++;
  }
  EXPECT_GT(resident, 80);
}

TEST(Cache, ZeroCapacityHoldsNothing) {
  auto cache = NewLruCache(0, 0);
  cache->Insert("k", Val(1), 1);
  EXPECT_EQ(nullptr, cache->Lookup("k"));
}

}  // namespace
}  // namespace elmo
