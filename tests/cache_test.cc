#include "table/cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace elmo {
namespace {

std::shared_ptr<void> Val(int v) { return std::make_shared<int>(v); }

int AsInt(const std::shared_ptr<void>& p) {
  return *std::static_pointer_cast<int>(p);
}

TEST(Cache, InsertLookup) {
  auto cache = NewLruCache(1000, /*shard_bits=*/0);
  cache->Insert("a", Val(1), 10);
  cache->Insert("b", Val(2), 10);
  EXPECT_EQ(1, AsInt(cache->Lookup("a")));
  EXPECT_EQ(2, AsInt(cache->Lookup("b")));
  EXPECT_EQ(nullptr, cache->Lookup("c"));
}

TEST(Cache, OverwriteReplaces) {
  auto cache = NewLruCache(1000, 0);
  cache->Insert("k", Val(1), 10);
  cache->Insert("k", Val(2), 10);
  EXPECT_EQ(2, AsInt(cache->Lookup("k")));
  EXPECT_EQ(10u, cache->TotalCharge());
}

TEST(Cache, EvictsLeastRecentlyUsed) {
  auto cache = NewLruCache(30, 0);
  cache->Insert("a", Val(1), 10);
  cache->Insert("b", Val(2), 10);
  cache->Insert("c", Val(3), 10);
  // Touch "a" so "b" is the LRU victim.
  cache->Lookup("a");
  cache->Insert("d", Val(4), 10);
  EXPECT_NE(nullptr, cache->Lookup("a"));
  EXPECT_EQ(nullptr, cache->Lookup("b"));
  EXPECT_NE(nullptr, cache->Lookup("c"));
  EXPECT_NE(nullptr, cache->Lookup("d"));
}

TEST(Cache, ChargeAccounting) {
  auto cache = NewLruCache(100, 0);
  cache->Insert("a", Val(1), 60);
  cache->Insert("b", Val(2), 60);  // evicts a (120 > 100)
  EXPECT_EQ(60u, cache->TotalCharge());
  EXPECT_EQ(nullptr, cache->Lookup("a"));
}

TEST(Cache, OversizedEntryEvictedImmediately) {
  auto cache = NewLruCache(50, 0);
  cache->Insert("big", Val(1), 500);
  EXPECT_EQ(nullptr, cache->Lookup("big"));
  EXPECT_EQ(0u, cache->TotalCharge());
}

TEST(Cache, EraseRemoves) {
  auto cache = NewLruCache(100, 0);
  cache->Insert("k", Val(1), 10);
  cache->Erase("k");
  EXPECT_EQ(nullptr, cache->Lookup("k"));
  EXPECT_EQ(0u, cache->TotalCharge());
  cache->Erase("k");  // idempotent
}

TEST(Cache, ValueOutlivesEviction) {
  auto cache = NewLruCache(20, 0);
  cache->Insert("k", Val(42), 10);
  auto held = cache->Lookup("k");
  cache->Insert("evictor", Val(0), 20);  // evicts k
  EXPECT_EQ(nullptr, cache->Lookup("k"));
  EXPECT_EQ(42, AsInt(held));  // still alive through shared_ptr
}

TEST(Cache, StatsCount) {
  auto cache = NewLruCache(100, 0);
  cache->Insert("k", Val(1), 10);
  cache->Lookup("k");
  cache->Lookup("k");
  cache->Lookup("missing");
  auto stats = cache->GetStats();
  EXPECT_EQ(1u, stats.inserts);
  EXPECT_EQ(2u, stats.hits);
  EXPECT_EQ(1u, stats.misses);
}

TEST(Cache, SetCapacityShrinksAndEvicts) {
  auto cache = NewLruCache(100, 0);
  for (int i = 0; i < 10; i++) {
    cache->Insert("k" + std::to_string(i), Val(i), 10);
  }
  EXPECT_EQ(100u, cache->TotalCharge());
  cache->SetCapacity(30);
  EXPECT_LE(cache->TotalCharge(), 30u);
}

TEST(Cache, ShardedSpreadsKeys) {
  auto cache = NewLruCache(1600, 4);  // 16 shards x 100
  for (int i = 0; i < 100; i++) {
    cache->Insert("key" + std::to_string(i), Val(i), 10);
  }
  // Most keys should still be resident (spread over shards).
  int resident = 0;
  for (int i = 0; i < 100; i++) {
    if (cache->Lookup("key" + std::to_string(i)) != nullptr) resident++;
  }
  EXPECT_GT(resident, 80);
}

TEST(Cache, ZeroCapacityHoldsNothing) {
  auto cache = NewLruCache(0, 0);
  cache->Insert("k", Val(1), 1);
  EXPECT_EQ(nullptr, cache->Lookup("k"));
}

// Hammer a sharded cache held exactly at capacity from many threads:
// charge accounting must never exceed capacity (per-shard ceil rounding
// aside) and no operation may lose an update or crash.
TEST(Cache, ConcurrentInsertsRespectCapacity) {
  constexpr size_t kCapacity = 1600;  // 16 shards x 100
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  auto cache = NewLruCache(kCapacity, 4);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; i++) {
        cache->Insert("key" + std::to_string((t * kOpsPerThread + i) % 400),
                      Val(i), 10);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Each of the 16 shards caps at ceil(1600/16) = 100, so the sharded
  // total can never exceed the configured capacity.
  EXPECT_LE(cache->TotalCharge(), kCapacity);
  auto stats = cache->GetStats();
  EXPECT_EQ(static_cast<uint64_t>(kThreads) * kOpsPerThread, stats.inserts);
}

// Per-shard hit/miss counters must not lose updates under concurrent
// lookups: hits + misses == total lookups, exactly.
TEST(Cache, ConcurrentLookupStatsBalance) {
  constexpr int kThreads = 8;
  constexpr int kLookupsPerThread = 5000;
  auto cache = NewLruCache(10000, 4);
  for (int i = 0; i < 100; i++) {
    cache->Insert("key" + std::to_string(i), Val(i), 10);
  }

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      // Half the keys exist, half do not, interleaved per thread.
      for (int i = 0; i < kLookupsPerThread; i++) {
        cache->Lookup("key" + std::to_string((t + i) % 200));
      }
    });
  }
  for (auto& th : threads) th.join();

  auto stats = cache->GetStats();
  EXPECT_EQ(static_cast<uint64_t>(kThreads) * kLookupsPerThread,
            stats.hits + stats.misses);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

// Shrinking capacity while readers and writers are live must converge
// to the new bound once the dust settles.
TEST(Cache, ConcurrentSetCapacityShrink) {
  auto cache = NewLruCache(3200, 4);
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; t++) {
    workers.emplace_back([&, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        cache->Insert("key" + std::to_string((t * 1000 + i) % 500), Val(i),
                      10);
        cache->Lookup("key" + std::to_string(i % 500));
        i++;
      }
    });
  }

  for (size_t cap : {1600u, 800u, 160u}) {
    cache->SetCapacity(cap);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : workers) th.join();

  // One more shrink with the cache quiescent: the bound must hold.
  cache->SetCapacity(160);
  EXPECT_LE(cache->TotalCharge(), 160u);
  EXPECT_EQ(160u, cache->Capacity());
}

}  // namespace
}  // namespace elmo
