// Concurrent access: parallel writers, readers racing background
// flush/compaction, snapshot stability under churn.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "env/mem_env.h"
#include "lsm/db.h"
#include "util/random.h"

namespace elmo::lsm {
namespace {

class DbConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<MemEnv>();
    options_.env = env_.get();
    options_.create_if_missing = true;
    options_.write_buffer_size = 64 << 10;  // force background churn
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }

  std::unique_ptr<MemEnv> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbConcurrencyTest, ParallelWritersAllLand) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        if (!db_->Put({}, key, "v" + std::to_string(i)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(0, failures.load());
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());

  Random64 rng(3);
  for (int probe = 0; probe < 400; probe++) {
    int t = static_cast<int>(rng.Uniform(kThreads));
    int i = static_cast<int>(rng.Uniform(kPerThread));
    std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
    std::string value;
    ASSERT_TRUE(db_->Get({}, key, &value).ok()) << key;
    EXPECT_EQ("v" + std::to_string(i), value);
  }
}

TEST_F(DbConcurrencyTest, ReadersDuringWriteStorm) {
  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};

  // Pre-populate a stable key the readers hammer.
  ASSERT_TRUE(db_->Put({}, "stable", "rock").ok());

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([&] {
      std::string value;
      while (!stop.load()) {
        Status s = db_->Get({}, "stable", &value);
        if (!s.ok() || value != "rock") read_errors.fetch_add(1);
      }
    });
  }

  for (int i = 0; i < 8000; i++) {
    ASSERT_TRUE(
        db_->Put({}, "churn" + std::to_string(i), std::string(200, 'x'))
            .ok());
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(0, read_errors.load());
}

TEST_F(DbConcurrencyTest, IteratorStableWhileWritersRun) {
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db_->Put({}, "base" + std::to_string(i), "v").ok());
  }
  auto iter = db_->NewIterator({});

  std::thread writer([&] {
    for (int i = 0; i < 4000; i++) {
      db_->Put({}, "new" + std::to_string(i), std::string(100, 'n'));
    }
  });

  // The iterator sees a consistent snapshot: exactly the base keys.
  int base_seen = 0, new_seen = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    if (iter->key().starts_with("base")) base_seen++;
    if (iter->key().starts_with("new")) new_seen++;
  }
  writer.join();
  EXPECT_EQ(1000, base_seen);
  EXPECT_EQ(0, new_seen);
}

TEST_F(DbConcurrencyTest, SnapshotStableUnderChurnAndCompaction) {
  ASSERT_TRUE(db_->Put({}, "watched", "original").ok());
  const Snapshot* snap = db_->GetSnapshot();

  std::thread churn([&] {
    for (int i = 0; i < 4000; i++) {
      db_->Put({}, "watched", "overwrite" + std::to_string(i));
      db_->Put({}, "filler" + std::to_string(i), std::string(150, 'f'));
    }
  });
  churn.join();
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());

  ReadOptions at_snap;
  at_snap.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(at_snap, "watched", &value).ok());
  EXPECT_EQ("original", value);
  db_->ReleaseSnapshot(snap);
}

TEST_F(DbConcurrencyTest, MixedBatchAndSingleWriters) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; i++) {
        WriteBatch batch;
        batch.Put("b" + std::to_string(t) + "-" + std::to_string(i), "1");
        batch.Put("c" + std::to_string(t) + "-" + std::to_string(i), "2");
        batch.Delete("b" + std::to_string(t) + "-" + std::to_string(i));
        db_->Write({}, &batch);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
  std::string v;
  EXPECT_TRUE(db_->Get({}, "b1-100", &v).IsNotFound());
  ASSERT_TRUE(db_->Get({}, "c1-100", &v).ok());
  EXPECT_EQ("2", v);
}

}  // namespace
}  // namespace elmo::lsm
