// WAL record-log format: roundtrips across block boundaries, corruption
// tolerance, torn-tail handling.
#include <gtest/gtest.h>

#include "env/mem_env.h"
#include "lsm/log_reader.h"
#include "lsm/log_writer.h"
#include "util/random.h"

namespace elmo::log {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(env_.NewWritableFile("/log", &dest_).ok());
    writer_ = std::make_unique<Writer>(dest_.get());
  }

  void Write(const std::string& record) {
    ASSERT_TRUE(writer_->AddRecord(record).ok());
  }

  struct Reporter : public Reader::Reporter {
    size_t dropped_bytes = 0;
    int corruptions = 0;
    void Corruption(size_t bytes, const Status&) override {
      dropped_bytes += bytes;
      corruptions++;
    }
  };

  // Read back every record.
  std::vector<std::string> ReadAll(bool tolerate_torn_tail = false) {
    std::unique_ptr<SequentialFile> src;
    EXPECT_TRUE(env_.NewSequentialFile("/log", &src).ok());
    Reader reader(src.get(), &reporter_, /*checksum=*/true,
                  tolerate_torn_tail);
    std::vector<std::string> records;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      records.push_back(record.ToString());
    }
    return records;
  }

  void CorruptByte(size_t offset, char delta) {
    MemFs::FileRef node;
    ASSERT_TRUE(env_.fs()->Open("/log", &node).ok());
    std::lock_guard<std::mutex> l(node->mu);
    ASSERT_LT(offset, node->data.size());
    node->data[offset] += delta;
  }

  void TruncateTo(size_t size) {
    MemFs::FileRef node;
    ASSERT_TRUE(env_.fs()->Open("/log", &node).ok());
    std::lock_guard<std::mutex> l(node->mu);
    node->data.resize(size);
  }

  size_t FileSize() {
    uint64_t size = 0;
    EXPECT_TRUE(env_.GetFileSize("/log", &size).ok());
    return size;
  }

  MemEnv env_;
  std::unique_ptr<WritableFile> dest_;
  std::unique_ptr<Writer> writer_;
  Reporter reporter_;
};

TEST_F(LogTest, EmptyLog) {
  EXPECT_TRUE(ReadAll().empty());
}

TEST_F(LogTest, SmallRecords) {
  Write("foo");
  Write("bar");
  Write("");
  Write("xxxx");
  auto records = ReadAll();
  ASSERT_EQ(4u, records.size());
  EXPECT_EQ("foo", records[0]);
  EXPECT_EQ("bar", records[1]);
  EXPECT_EQ("", records[2]);
  EXPECT_EQ("xxxx", records[3]);
  EXPECT_EQ(0, reporter_.corruptions);
}

TEST_F(LogTest, RecordSpanningBlocks) {
  std::string big(3 * kBlockSize + 1000, 'A');
  Write("before");
  Write(big);
  Write("after");
  auto records = ReadAll();
  ASSERT_EQ(3u, records.size());
  EXPECT_EQ("before", records[0]);
  EXPECT_EQ(big, records[1]);
  EXPECT_EQ("after", records[2]);
}

TEST_F(LogTest, ManyRandomSizes) {
  Random rnd(301);
  std::vector<std::string> expected;
  for (int i = 0; i < 300; i++) {
    std::string rec(rnd.Skewed(15), static_cast<char>('a' + (i % 26)));
    expected.push_back(rec);
    Write(rec);
  }
  auto records = ReadAll();
  ASSERT_EQ(expected.size(), records.size());
  for (size_t i = 0; i < expected.size(); i++) {
    EXPECT_EQ(expected[i], records[i]) << i;
  }
}

TEST_F(LogTest, BlockTrailerPadding) {
  // Fill a block so fewer than kHeaderSize bytes remain, forcing
  // trailer padding before the next record.
  std::string almost(kBlockSize - 2 * kHeaderSize - 2, 'P');
  Write(almost);
  Write("next");
  auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ("next", records[1]);
}

TEST_F(LogTest, ChecksumCorruptionDropsRestOfBlock) {
  Write("record-one");
  Write("record-two");
  CorruptByte(kHeaderSize + 2, 1);  // payload of record one
  // Corruption poisons the remainder of the 32 KiB block (leveldb
  // semantics): both records are dropped, and the drop is reported.
  auto records = ReadAll();
  EXPECT_TRUE(records.empty());
  EXPECT_GE(reporter_.corruptions, 1);
  EXPECT_GT(reporter_.dropped_bytes, 0u);
}

TEST_F(LogTest, CorruptionInLaterBlockKeepsEarlierRecords) {
  // Exactly fill block 0 so the next record starts block 1.
  std::string filler(kBlockSize - kHeaderSize, 'F');
  Write(filler);
  Write("in-block1");
  CorruptByte(kBlockSize + kHeaderSize + 1, 1);
  auto records = ReadAll();
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ(filler, records[0]);
  EXPECT_GE(reporter_.corruptions, 1);
}

TEST_F(LogTest, TornTailIsSilentlyIgnored) {
  Write("durable");
  std::string big(2 * kBlockSize, 'T');
  Write(big);
  // Simulate a crash mid-write of the second record.
  TruncateTo(FileSize() - kBlockSize);
  auto records = ReadAll();
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("durable", records[0]);
  // Torn tails are an expected crash artifact, not corruption.
  EXPECT_EQ(0, reporter_.corruptions);
}

TEST_F(LogTest, TruncatedHeaderAtEof) {
  Write("keep");
  Write("lost");
  TruncateTo(FileSize() - 3);
  auto records = ReadAll();
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("keep", records[0]);
}

TEST_F(LogTest, UnknownRecordTypeReported) {
  Write("one");
  // Corrupt the type byte to an undefined record type. The checksum
  // covers the type byte, so this reports as corruption.
  CorruptByte(6, 50);
  auto records = ReadAll();
  EXPECT_TRUE(records.empty());
  EXPECT_GE(reporter_.corruptions, 1);
}

TEST_F(LogTest, TornTailToleranceIsOptIn) {
  // Recovery mode: a CRC mismatch in the final record, extending
  // exactly to EOF, is read as a clean end of log (a power cut tore the
  // last write). Strict mode (the default, exercised by the tests
  // above) keeps reporting the same bytes as corruption.
  Write("kept");
  Write("torn");
  CorruptByte(FileSize() - 1, 1);
  auto records = ReadAll(/*tolerate_torn_tail=*/true);
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("kept", records[0]);
  EXPECT_EQ(0, reporter_.corruptions);
}

TEST_F(LogTest, ToleranceStillReportsMidLogCorruption) {
  // Even in recovery mode, a bad record with valid records *after* it
  // is bit rot, not a torn tail.
  Write("one");
  Write("two");
  CorruptByte(kHeaderSize + 1, 1);  // payload of the first record
  auto records = ReadAll(/*tolerate_torn_tail=*/true);
  EXPECT_TRUE(records.empty());  // corruption poisons the block
  EXPECT_GE(reporter_.corruptions, 1);
}

TEST_F(LogTest, OversizedLengthAtEofTreatedAsTornTail) {
  Write("one");
  // Length field claims more bytes than the file holds; at EOF this is
  // indistinguishable from a torn write and must NOT report corruption.
  CorruptByte(4, 100);
  auto records = ReadAll();
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(0, reporter_.corruptions);
}

TEST_F(LogTest, ReopenedWriterContinuesAtOffset) {
  Write("first");
  uint64_t size = FileSize();
  writer_.reset();
  // Reopen the same file for append (MemFs keeps contents via the
  // node; emulate by re-wrapping a writer at the current length).
  MemFs::FileRef node;
  ASSERT_TRUE(env_.fs()->Open("/log", &node).ok());
  class AppendFile : public WritableFile {
   public:
    explicit AppendFile(MemFs::FileRef n) : node_(std::move(n)) {}
    Status Append(const Slice& data) override {
      std::lock_guard<std::mutex> l(node_->mu);
      node_->data.append(data.data(), data.size());
      return Status::OK();
    }
    Status Close() override { return Status::OK(); }
    Status Flush() override { return Status::OK(); }
    Status Sync() override { return Status::OK(); }
    uint64_t GetFileSize() const override {
      std::lock_guard<std::mutex> l(node_->mu);
      return node_->data.size();
    }

   private:
    MemFs::FileRef node_;
  };
  AppendFile append_file(node);
  Writer reopened(&append_file, size);
  ASSERT_TRUE(reopened.AddRecord("second").ok());

  auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ("first", records[0]);
  EXPECT_EQ("second", records[1]);
}

}  // namespace
}  // namespace elmo::log
