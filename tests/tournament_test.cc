#include "elmo/tournament.h"

#include <gtest/gtest.h>

#include "env/device_model.h"
#include "env/hardware_profile.h"

namespace elmo::tune {
namespace {

TournamentConfig TinyConfig() {
  TournamentConfig cfg;
  cfg.hw = HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd());
  cfg.workload = bench::WorkloadSpec::Mixgraph(15000);
  cfg.budget = 3;
  cfg.seed = 42;
  return cfg;
}

TEST(Tournament, RunsAllContendersUnderIdenticalBudgets) {
  TournamentConfig cfg = TinyConfig();
  TournamentReport report = RunTournament(cfg);

  ASSERT_EQ(report.runs.size(), 4u);
  EXPECT_EQ(report.runs[0].name, "llm");
  EXPECT_EQ(report.runs[1].name, "cost_model");
  EXPECT_EQ(report.runs[2].name, "grid");
  EXPECT_EQ(report.runs[3].name, "random");
  EXPECT_GT(report.default_ops_per_sec, 0);

  for (const auto& r : report.runs) {
    // Identical budgets: defaults baseline + `budget` proposals each.
    ASSERT_EQ(r.trial_ops_per_sec.size(),
              static_cast<size_t>(cfg.budget) + 1);
    ASSERT_EQ(r.best_curve.size(), r.trial_ops_per_sec.size());
    // Every contender shares the same trial-0 baseline.
    EXPECT_EQ(r.trial_ops_per_sec[0], report.default_ops_per_sec);
    // The best-so-far curve is non-decreasing and ends at the best.
    for (size_t i = 1; i < r.best_curve.size(); i++) {
      EXPECT_GE(r.best_curve[i], r.best_curve[i - 1]) << r.name;
    }
    EXPECT_EQ(r.best_curve.back(), r.best_ops_per_sec) << r.name;
    EXPECT_GE(r.best_ops_per_sec, report.default_ops_per_sec) << r.name;
    EXPECT_FALSE(r.best_options_ini.empty()) << r.name;
  }

  // The winner is a real contender with the tournament-best throughput,
  // and its own curve reaches within 5% of itself.
  double best = 0;
  for (const auto& r : report.runs) best = std::max(best, r.best_ops_per_sec);
  bool winner_found = false;
  for (const auto& r : report.runs) {
    if (r.name == report.winner) {
      winner_found = true;
      EXPECT_EQ(r.best_ops_per_sec, best);
      EXPECT_GE(r.trials_to_within_5pct, 0);
      EXPECT_LE(r.trials_to_within_5pct, cfg.budget);
    }
  }
  EXPECT_TRUE(winner_found);
}

TEST(Tournament, ContenderSubsetIsRespected) {
  TournamentConfig cfg = TinyConfig();
  cfg.budget = 2;
  cfg.contenders = {"grid", "random"};
  TournamentReport report = RunTournament(cfg);
  ASSERT_EQ(report.runs.size(), 2u);
  EXPECT_EQ(report.runs[0].name, "grid");
  EXPECT_EQ(report.runs[1].name, "random");
}

TEST(Tournament, SameSeedIsDeterministic) {
  TournamentConfig cfg = TinyConfig();
  cfg.budget = 2;
  TournamentReport a = RunTournament(cfg);
  TournamentReport b = RunTournament(cfg);
  EXPECT_EQ(a.ToJson(), b.ToJson());

  // A different seed changes the measurements (determinism is not
  // vacuous).
  cfg.seed = 43;
  TournamentReport c = RunTournament(cfg);
  EXPECT_NE(a.default_ops_per_sec, c.default_ops_per_sec);
}

TEST(Tournament, ReportSerializesWithMetadata) {
  TournamentConfig cfg = TinyConfig();
  cfg.budget = 1;
  cfg.contenders = {"grid"};
  TournamentReport report = RunTournament(cfg);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"kind\": \"bench_tournament\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"best_curve\""), std::string::npos);
  const std::string table = report.SummaryTable();
  EXPECT_NE(table.find("| grid"), std::string::npos);
  EXPECT_NE(table.find("**(winner)**"), std::string::npos);
}

TEST(Tournament, GridBudgetBeyondGridReproposesBest) {
  // 15 grid points + defaults; budget 20 exhausts the grid and the
  // tail must stay flat at the best observed throughput.
  TournamentConfig cfg = TinyConfig();
  cfg.budget = 20;
  cfg.contenders = {"grid"};
  TournamentReport report = RunTournament(cfg);
  ASSERT_EQ(report.runs.size(), 1u);
  const TunerRun& r = report.runs[0];
  ASSERT_EQ(r.trial_ops_per_sec.size(), 21u);
  EXPECT_EQ(r.best_curve.back(), r.best_ops_per_sec);
}

}  // namespace
}  // namespace elmo::tune
