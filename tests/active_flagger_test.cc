#include "elmo/active_flagger.h"

#include <gtest/gtest.h>

#include "lsm/stats_sampler.h"

namespace elmo::tune {
namespace {

bench::BenchResult Result(double ops, double p99w = 10.0,
                          double p99r = 0.0) {
  bench::BenchResult r;
  r.ops_per_sec = ops;
  // Populate histograms so p99 accessors return roughly p99w/p99r.
  if (p99w > 0) {
    for (int i = 0; i < 1000; i++) r.write_micros.Add(p99w);
  }
  if (p99r > 0) {
    for (int i = 0; i < 1000; i++) r.read_micros.Add(p99r);
  }
  return r;
}

TEST(ActiveFlagger, KeepsClearImprovement) {
  ActiveFlagger flagger;
  auto d = flagger.Judge(Result(100000), Result(120000));
  EXPECT_TRUE(d.keep);
  EXPECT_NE(d.reason.find("improved"), std::string::npos);
}

TEST(ActiveFlagger, RevertsRegression) {
  ActiveFlagger flagger;
  auto d = flagger.Judge(Result(100000), Result(80000));
  EXPECT_FALSE(d.keep);
  EXPECT_NE(d.reason.find("reverting"), std::string::npos);
}

TEST(ActiveFlagger, RevertsFlatResult) {
  ActiveFlagger flagger;
  // Same throughput, same p99: no reason to churn configs.
  auto d = flagger.Judge(Result(100000, 10.0), Result(100000, 10.0));
  EXPECT_FALSE(d.keep);
}

TEST(ActiveFlagger, KeepsTailLatencyWinAtFlatThroughput) {
  ActiveFlagger flagger;
  auto d = flagger.Judge(Result(100000, /*p99w=*/50.0),
                         Result(99800, /*p99w=*/20.0));
  EXPECT_TRUE(d.keep);
  EXPECT_NE(d.reason.find("p99"), std::string::npos);
}

TEST(ActiveFlagger, TailWinDoesNotExcuseBigThroughputLoss) {
  ActiveFlagger flagger;
  auto d = flagger.Judge(Result(100000, 50.0), Result(80000, 5.0));
  EXPECT_FALSE(d.keep);
}

TEST(ActiveFlagger, WorstP99ConsidersReads) {
  ActiveFlagger flagger;
  // Read tail dominates; improving it while writes stay flat counts.
  auto best = Result(100000, 10.0, /*p99r=*/500.0);
  auto cand = Result(99900, 10.0, /*p99r=*/100.0);
  EXPECT_TRUE(flagger.Judge(best, cand).keep);
}

TEST(ActiveFlagger, EarlyAbortOnCollapse) {
  ActiveFlagger flagger;
  EXPECT_TRUE(flagger.ShouldAbortEarly(Result(100000), Result(30000)));
  EXPECT_FALSE(flagger.ShouldAbortEarly(Result(100000), Result(70000)));
  EXPECT_FALSE(flagger.ShouldAbortEarly(Result(0), Result(1)));
}

// Fabricate a probe whose time series runs at `head_rate` ops/s for
// `head` samples, then `tail_rate` for `tail` samples. `scan_tail`
// moves the tail's ops into iterator seeks, which flips the detector's
// scan-share phase metric at the boundary.
bench::BenchResult ProbeWithSeries(double overall, double head_rate,
                                   int head, double tail_rate, int tail,
                                   bool scan_tail = false) {
  bench::BenchResult r = Result(overall);
  uint64_t ts = 0;
  for (int i = 0; i < head + tail; i++) {
    lsm::IntervalSample s;
    s.ts_us = ts += 1'000'000;
    s.interval_us = 1'000'000;
    const double rate = i < head ? head_rate : tail_rate;
    if (i >= head && scan_tail) {
      s.seeks = static_cast<uint64_t>(rate);
    } else {
      s.writes = static_cast<uint64_t>(rate);
      s.ops = s.writes;
    }
    s.ops_per_sec = rate;
    r.timeseries.push_back(s);
  }
  r.sample_interval_us = 1'000'000;
  return r;
}

TEST(ActiveFlagger, MidProbeCollapseAbortsDespiteHealthyAverage) {
  ActiveFlagger flagger;
  // Averages to 70% of best — above the 50% floor — but the run
  // collapsed to 20% partway through and stayed there.
  auto probe = ProbeWithSeries(/*overall=*/70000, /*head_rate=*/100000,
                               /*head=*/8, /*tail_rate=*/20000, /*tail=*/6);
  auto v = flagger.JudgeProbe(Result(100000), probe);
  EXPECT_TRUE(v.abort);
  EXPECT_NE(v.reason.find("collapse"), std::string::npos);
}

TEST(ActiveFlagger, StableProbeDoesNotAbort) {
  ActiveFlagger flagger;
  auto probe = ProbeWithSeries(70000, 70000, 8, 70000, 6);
  EXPECT_FALSE(flagger.JudgeProbe(Result(100000), probe).abort);
}

TEST(ActiveFlagger, PhaseShiftExplainsCollapseNoAbort) {
  ActiveFlagger flagger;
  // Same throughput collapse, but the tail is a scan phase: the
  // workload changed shape, so the configuration is not condemned.
  auto probe = ProbeWithSeries(70000, 100000, 8, 20000, 6,
                               /*scan_tail=*/true);
  EXPECT_FALSE(flagger.JudgeProbe(Result(100000), probe).abort);
}

TEST(ActiveFlagger, ConfigurableThresholds) {
  FlaggerConfig cfg;
  cfg.min_gain = 0.5;  // demand +50%
  ActiveFlagger strict(cfg);
  EXPECT_FALSE(strict.Judge(Result(100000, 10), Result(120000, 10)).keep);
  EXPECT_TRUE(strict.Judge(Result(100000, 10), Result(160000, 10)).keep);
}

}  // namespace
}  // namespace elmo::tune
