// Arena, Random, RateLimiter, ThreadPool, Slice, Status, logging.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/arena.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/rate_limiter.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace elmo {
namespace {

TEST(Arena, SmallAllocations) {
  Arena arena;
  std::vector<std::pair<char*, size_t>> allocated;
  Random rnd(301);
  for (int i = 0; i < 1000; i++) {
    size_t size = 1 + rnd.Uniform(100);
    char* p = arena.Allocate(size);
    memset(p, i % 256, size);
    allocated.emplace_back(p, size);
  }
  // No overlap corruption: each block still holds its fill byte.
  for (size_t i = 0; i < allocated.size(); i++) {
    auto [p, size] = allocated[i];
    for (size_t j = 0; j < size; j++) {
      ASSERT_EQ(static_cast<char>(i % 256), p[j]);
    }
  }
  EXPECT_GT(arena.MemoryUsage(), 1000u);
}

TEST(Arena, LargeAllocationsGetDedicatedBlocks) {
  Arena arena;
  char* big = arena.Allocate(100000);
  memset(big, 7, 100000);
  char* small = arena.Allocate(16);
  memset(small, 9, 16);
  EXPECT_EQ(7, big[99999]);
  EXPECT_GE(arena.MemoryUsage(), 100000u);
}

TEST(Arena, AlignedAllocations) {
  Arena arena;
  for (int i = 0; i < 100; i++) {
    arena.Allocate(1);  // misalign the bump pointer
    char* p = arena.AllocateAligned(24);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) % 8);
  }
}

TEST(Random, DeterministicGivenSeed) {
  Random64 a(123), b(123), c(124);
  bool all_equal = true;
  bool any_diff_seed_matches = true;
  for (int i = 0; i < 100; i++) {
    uint64_t va = a.Next();
    if (va != b.Next()) all_equal = false;
    if (va != c.Next()) any_diff_seed_matches = false;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_FALSE(any_diff_seed_matches);
}

TEST(Random, NextDoubleInUnitInterval) {
  Random64 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; i++) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(0.5, sum / 10000, 0.02);
}

TEST(Random, UniformCoverage) {
  Random64 rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; i++) seen.insert(rng.Uniform(10));
  EXPECT_EQ(10u, seen.size());
}

TEST(RateLimiter, DisabledIsFree) {
  RateLimiter limiter(0);
  EXPECT_EQ(0u, limiter.Request(1 << 20, 0));
}

TEST(RateLimiter, EnforcesRate) {
  RateLimiter limiter(1 << 20);  // 1 MiB/s
  uint64_t now = 0;
  // First request is free; subsequent ones must wait ~1s per MiB.
  EXPECT_EQ(0u, limiter.Request(1 << 20, now));
  uint64_t wait = limiter.Request(1 << 20, now);
  EXPECT_NEAR(1000000.0, static_cast<double>(wait), 10000.0);
}

TEST(RateLimiter, CatchesUpAfterIdle) {
  RateLimiter limiter(1 << 20);
  limiter.Request(1 << 20, 0);
  limiter.Request(1 << 20, 0);
  // Long idle: bucket refills, no wait.
  EXPECT_EQ(0u, limiter.Request(1024, 100000000));
}

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; i++) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(100, count.load());
}

TEST(ThreadPool, WaitIdleWaitsForRunningJob) {
  ThreadPool pool(1);
  std::atomic<bool> done{false};
  pool.Submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done.store(true);
  });
  pool.WaitIdle();
  EXPECT_TRUE(done.load());
}

TEST(ThreadPool, GrowsOnDemand) {
  ThreadPool pool(1);
  pool.SetBackgroundThreads(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; i++) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(50, count.load());
}

TEST(Slice, Basics) {
  Slice s("hello");
  EXPECT_EQ(5u, s.size());
  EXPECT_EQ('h', s[0]);
  EXPECT_TRUE(s.starts_with("he"));
  EXPECT_FALSE(s.starts_with("hello!"));
  s.remove_prefix(2);
  EXPECT_EQ("llo", s.ToString());
  s.remove_suffix(1);
  EXPECT_EQ("ll", s.ToString());
}

TEST(Slice, Compare) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(0, Slice("a").compare(Slice("a")));
  EXPECT_LT(Slice("a").compare(Slice("aa")), 0);
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
}

TEST(Status, Categories) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ("OK", Status::OK().ToString());
  Status nf = Status::NotFound("key", "k1");
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_FALSE(nf.ok());
  EXPECT_EQ("NotFound: key: k1", nf.ToString());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
}

TEST(Status, CopyPreservesMessage) {
  Status a = Status::Corruption("bad block");
  Status b = a;
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(Logging, BufferLoggerCapturesFormatted) {
  BufferLogger logger;
  logger.Log(LogLevel::kInfo, "value=%d name=%s", 42, "x");
  logger.Log(LogLevel::kDebug, "hidden");  // below min level
  std::string all = logger.Contents();
  EXPECT_NE(all.find("value=42 name=x"), std::string::npos);
  EXPECT_EQ(all.find("hidden"), std::string::npos);
}

TEST(Logging, LongMessagesNotTruncated) {
  BufferLogger logger;
  std::string big(5000, 'y');
  logger.Log(LogLevel::kInfo, "%s", big.c_str());
  EXPECT_NE(logger.Contents().find(big), std::string::npos);
}

TEST(Logging, BufferLoggerCapDropsOldestAndCounts) {
  BufferLogger logger(LogLevel::kInfo, /*max_lines=*/3);
  for (int i = 0; i < 10; i++) {
    logger.Log(LogLevel::kInfo, "line %d", i);
  }
  EXPECT_EQ(logger.dropped_lines(), 7u);

  // Only the newest max_lines survive, in order.
  std::vector<std::string> lines = logger.TakeLines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("line 7"), std::string::npos);
  EXPECT_NE(lines[1].find("line 8"), std::string::npos);
  EXPECT_NE(lines[2].find("line 9"), std::string::npos);

  // TakeLines drains the buffer but the drop counter is cumulative.
  EXPECT_TRUE(logger.TakeLines().empty());
  EXPECT_EQ(logger.dropped_lines(), 7u);

  // Below-threshold lines neither occupy the ring nor count as dropped.
  logger.Log(LogLevel::kDebug, "invisible");
  EXPECT_TRUE(logger.TakeLines().empty());
  EXPECT_EQ(logger.dropped_lines(), 7u);
}

}  // namespace
}  // namespace elmo
