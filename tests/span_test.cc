// Span tracing: collector tree assembly (including nested roots from
// inline background jobs), tracer slow/sampled filtering, trace
// round-trip + corruption detection, the "elmo.perf" property, and the
// headline determinism guarantee — two same-seed SimEnv runs produce a
// byte-identical span trace.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "env/mem_env.h"
#include "env/sim_env.h"
#include "lsm/db.h"
#include "lsm/perf_context.h"
#include "lsm/span.h"

namespace elmo::lsm {
namespace {

// Buffers every consumed tree.
class CapturingSink : public SpanSink {
 public:
  void Consume(const SpanTree& tree) override { trees.push_back(tree); }
  std::vector<SpanTree> trees;
};

TEST(SpanCollectorTest, BuildsTreeWithChildrenAndAnnotations) {
  SpanCollector* c = GetSpanCollector();
  ASSERT_EQ(c->open_depth(), 0u);
  CapturingSink sink;

  const size_t root = c->OpenRoot(SpanKind::kWrite, 100, &sink);
  const size_t wal = c->OpenChild(SpanKind::kWalAppend, 110);
  c->Annotate(wal, SpanTag::kBytes, 512);
  c->Close(wal, 130);
  const size_t mem = c->OpenChild(SpanKind::kMemtableInsert, 140);
  c->Close(mem, 170);
  c->Annotate(root, SpanTag::kEntries, 3);
  c->Close(root, 200);

  ASSERT_EQ(sink.trees.size(), 1u);
  const SpanTree& t = sink.trees[0];
  ASSERT_EQ(t.spans.size(), 3u);
  EXPECT_EQ(t.root().kind, SpanKind::kWrite);
  EXPECT_EQ(t.root().start_us, 100u);
  EXPECT_EQ(t.root().duration_us, 100u);
  EXPECT_EQ(t.spans[1].kind, SpanKind::kWalAppend);
  EXPECT_EQ(t.spans[1].parent, 0);
  EXPECT_EQ(t.spans[1].duration_us, 20u);
  ASSERT_EQ(t.spans[1].annotations.size(), 1u);
  EXPECT_EQ(t.spans[1].annotations[0].first, SpanTag::kBytes);
  EXPECT_EQ(t.spans[1].annotations[0].second, 512u);
  EXPECT_EQ(t.spans[2].kind, SpanKind::kMemtableInsert);
  // Root self time = 100 - (20 + 30).
  EXPECT_EQ(t.ChildrenDuration(0), 50u);
  EXPECT_EQ(t.SelfDuration(0), 50u);
  EXPECT_EQ(c->open_depth(), 0u);
}

TEST(SpanCollectorTest, NestedRootIsExtractedAsItsOwnTree) {
  // A flush root opening inside a foreground write (SimEnv inline
  // background work) must be delivered separately, and the outer tree
  // must keep only its own spans.
  SpanCollector* c = GetSpanCollector();
  CapturingSink sink;

  const size_t write = c->OpenRoot(SpanKind::kWrite, 1000, &sink);
  const size_t wal = c->OpenChild(SpanKind::kWalAppend, 1010);
  c->Close(wal, 1020);

  const size_t flush = c->OpenRoot(SpanKind::kFlush, 1030, &sink);
  const size_t build = c->OpenChild(SpanKind::kTableBuild, 1040);
  c->Close(build, 1090);
  c->Close(flush, 1100);

  const size_t mem = c->OpenChild(SpanKind::kMemtableInsert, 1110);
  c->Close(mem, 1120);
  c->Close(write, 1150);

  ASSERT_EQ(sink.trees.size(), 2u);
  // Inner tree first (closed first), parents remapped to tree-local.
  const SpanTree& inner = sink.trees[0];
  ASSERT_EQ(inner.spans.size(), 2u);
  EXPECT_EQ(inner.root().kind, SpanKind::kFlush);
  EXPECT_EQ(inner.spans[1].kind, SpanKind::kTableBuild);
  EXPECT_EQ(inner.spans[1].parent, 0);

  const SpanTree& outer = sink.trees[1];
  ASSERT_EQ(outer.spans.size(), 3u);
  EXPECT_EQ(outer.root().kind, SpanKind::kWrite);
  EXPECT_EQ(outer.spans[1].kind, SpanKind::kWalAppend);
  EXPECT_EQ(outer.spans[2].kind, SpanKind::kMemtableInsert);
  EXPECT_EQ(c->open_depth(), 0u);
}

TEST(SpanCollectorTest, OrphanChildAndEscapedScopesAreSafe) {
  SpanCollector* c = GetSpanCollector();
  // No root open: children are no-ops.
  EXPECT_EQ(c->OpenChild(SpanKind::kWalSync, 10), SpanCollector::kNoSpan);
  c->Annotate(SpanCollector::kNoSpan, SpanTag::kBytes, 1);
  c->Close(SpanCollector::kNoSpan, 20);

  // A child left open when the root closes gets closed at that instant.
  CapturingSink sink;
  const size_t root = c->OpenRoot(SpanKind::kGet, 100, &sink);
  c->OpenChild(SpanKind::kSstProbe, 120);
  c->Close(root, 180);
  ASSERT_EQ(sink.trees.size(), 1u);
  ASSERT_EQ(sink.trees[0].spans.size(), 2u);
  EXPECT_EQ(sink.trees[0].spans[1].duration_us, 60u);
  EXPECT_EQ(c->open_depth(), 0u);
}

TEST(SpanTracerTest, SlowThresholdAndDeterministicSampling) {
  MemEnv env;
  SpanTracer tracer(&env);
  SpanTraceOptions opts;
  opts.slow_op_threshold_us = 1000;
  opts.sample_every = 4;
  ASSERT_TRUE(tracer.Start("/span", opts, /*base_ts_us=*/0).ok());

  SpanCollector* c = GetSpanCollector();
  uint64_t now = 10000;
  // 10 fast writes (100us): sampling keeps ops 1, 5, 9.
  for (int i = 0; i < 10; i++) {
    const size_t h = c->OpenRoot(SpanKind::kWrite, now, &tracer);
    c->Close(h, now + 100);
    now += 1000;
  }
  // 2 slow writes (2000us): ops 11 and 12, not on the sample grid.
  for (int i = 0; i < 2; i++) {
    const size_t h = c->OpenRoot(SpanKind::kWrite, now, &tracer);
    c->Close(h, now + 2000);
    now += 3000;
  }
  EXPECT_EQ(tracer.trees_written(), 5u);
  EXPECT_EQ(tracer.slow_trees(), 2u);
  EXPECT_EQ(tracer.sampled_trees(), 3u);
  uint64_t written = 0;
  ASSERT_TRUE(tracer.Stop(&written).ok());
  EXPECT_EQ(written, 5u);
  EXPECT_TRUE(tracer.Stop(nullptr).IsInvalidArgument());

  SpanTraceReader reader(&env);
  ASSERT_TRUE(reader.Open("/span").ok());
  int slow = 0, sampled = 0, trees = 0;
  SpanTree t;
  bool eof = false;
  while (true) {
    ASSERT_TRUE(reader.Next(&t, &eof).ok());
    if (eof) break;
    trees++;
    if (t.flags & kSpanTreeSlow) {
      slow++;
      EXPECT_EQ(t.root().duration_us, 2000u);
    }
    if (t.flags & kSpanTreeSampled) sampled++;
  }
  EXPECT_EQ(trees, 5);
  EXPECT_EQ(slow, 2);
  EXPECT_EQ(sampled, 3);
}

TEST(SpanTracerTest, ZeroThresholdCapturesEverything) {
  MemEnv env;
  SpanTracer tracer(&env);
  SpanTraceOptions opts;
  opts.slow_op_threshold_us = 0;
  opts.sample_every = 0;
  ASSERT_TRUE(tracer.Start("/span", opts, 0).ok());
  EXPECT_TRUE(tracer.Start("/other", opts, 0).IsBusy());

  SpanCollector* c = GetSpanCollector();
  for (int i = 0; i < 7; i++) {
    const size_t h = c->OpenRoot(SpanKind::kGet, 100 * i, &tracer);
    c->Close(h, 100 * i + 1);
  }
  EXPECT_EQ(tracer.trees_written(), 7u);
  ASSERT_TRUE(tracer.Stop(nullptr).ok());
}

TEST(SpanTracerTest, CorruptionDetected) {
  MemEnv env;
  SpanTracer tracer(&env);
  ASSERT_TRUE(tracer.Start("/span", {0, 0}, 0).ok());
  SpanCollector* c = GetSpanCollector();
  const size_t h = c->OpenRoot(SpanKind::kWrite, 500, &tracer);
  const size_t child = c->OpenChild(SpanKind::kWalSync, 510);
  c->Annotate(child, SpanTag::kBytes, 4096);
  c->Close(child, 550);
  c->Close(h, 600);
  ASSERT_TRUE(tracer.Stop(nullptr).ok());

  std::string contents;
  ASSERT_TRUE(env.ReadFileToString("/span", &contents).ok());
  contents[contents.size() - 2] ^= 0x20;
  ASSERT_TRUE(env.WriteStringToFile(Slice(contents), "/span", false).ok());

  SpanTraceReader reader(&env);
  ASSERT_TRUE(reader.Open("/span").ok());
  SpanTree t;
  bool eof = false;
  EXPECT_TRUE(reader.Next(&t, &eof).IsCorruption());

  // A non-trace file is rejected at Open.
  ASSERT_TRUE(env.WriteStringToFile(Slice("not a span trace at all"),
                                    "/junk", false)
                  .ok());
  SpanTraceReader reader2(&env);
  EXPECT_TRUE(reader2.Open("/junk").IsCorruption());
}

// One fixed workload against a DB on the given SimEnv; returns the raw
// span trace bytes.
std::string RunTracedWorkload(uint64_t seed, uint64_t* trees_out) {
  auto hw = HardwareProfile::Make(2, 2, DeviceModel::NvmeSsd());
  auto env = std::make_unique<SimEnv>(hw, seed);
  Options o;
  o.env = env.get();
  o.create_if_missing = true;
  o.write_buffer_size = 64 << 10;  // force flushes (background roots)
  std::unique_ptr<DB> db;
  EXPECT_TRUE(DB::Open(o, "/db", &db).ok());

  SpanTraceOptions opts;
  opts.slow_op_threshold_us = 0;  // capture every op
  opts.sample_every = 0;
  EXPECT_TRUE(db->StartSpanTrace("/span.trace", opts).ok());
  EXPECT_TRUE(db->StartSpanTrace("/other.trace", opts).IsBusy());

  const std::string value(512, 'v');
  std::string out;
  for (int i = 0; i < 800; i++) {
    char key[32];
    snprintf(key, sizeof(key), "%08d", i * 131 % 500);
    EXPECT_TRUE(db->Put({}, key, value).ok());
    if (i % 10 == 0) db->Get({}, key, &out);
  }
  auto it = db->NewIterator({});
  int scanned = 0;
  for (it->SeekToFirst(); it->Valid() && scanned < 50; it->Next()) scanned++;
  it.reset();
  EXPECT_TRUE(db->EndSpanTrace().ok());
  EXPECT_TRUE(db->EndSpanTrace().IsInvalidArgument());
  if (trees_out != nullptr) {
    // Count trees by replaying the trace.
    SpanTraceReader reader(env.get());
    EXPECT_TRUE(reader.Open("/span.trace").ok());
    SpanTree t;
    bool eof = false;
    uint64_t n = 0;
    while (reader.Next(&t, &eof).ok() && !eof) n++;
    *trees_out = n;
  }
  std::string bytes;
  EXPECT_TRUE(env->ReadFileToString("/span.trace", &bytes).ok());
  db.reset();
  return bytes;
}

TEST(SpanDbTest, SameSeedRunsProduceByteIdenticalTraces) {
  uint64_t trees_a = 0;
  const std::string a = RunTracedWorkload(77, &trees_a);
  const std::string b = RunTracedWorkload(77, nullptr);
  ASSERT_FALSE(a.empty());
  EXPECT_GT(trees_a, 800u);  // every op plus background jobs
  EXPECT_EQ(a, b);
}

TEST(SpanDbTest, TraceContainsExpectedTreeShapes) {
  auto hw = HardwareProfile::Make(2, 2, DeviceModel::NvmeSsd());
  auto env = std::make_unique<SimEnv>(hw, 5);
  Options o;
  o.env = env.get();
  o.create_if_missing = true;
  o.write_buffer_size = 64 << 10;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());
  ASSERT_TRUE(db->StartSpanTrace("/span.trace", {0, 0}).ok());

  const std::string value(512, 'v');
  std::string out;
  for (int i = 0; i < 500; i++) {
    char key[32];
    snprintf(key, sizeof(key), "%08d", i);
    ASSERT_TRUE(db->Put({}, key, value).ok());
  }
  db->FlushMemTable();
  for (int i = 0; i < 20; i++) {
    char key[32];
    snprintf(key, sizeof(key), "%08d", i);
    db->Get({}, key, &out);
  }
  ASSERT_TRUE(db->EndSpanTrace().ok());

  SpanTraceReader reader(env.get());
  ASSERT_TRUE(reader.Open("/span.trace").ok());
  bool saw_write_with_wal = false, saw_get_with_probe = false;
  bool saw_flush_with_build = false;
  SpanTree t;
  bool eof = false;
  while (true) {
    ASSERT_TRUE(reader.Next(&t, &eof).ok());
    if (eof) break;
    ASSERT_FALSE(t.spans.empty());
    EXPECT_TRUE(IsRootSpanKind(t.root().kind));
    for (size_t i = 1; i < t.spans.size(); i++) {
      // Parents precede children and stay inside the tree.
      ASSERT_GE(t.spans[i].parent, 0);
      ASSERT_LT(static_cast<size_t>(t.spans[i].parent), i);
    }
    if (t.root().kind == SpanKind::kWrite) {
      for (size_t i = 1; i < t.spans.size(); i++) {
        if (t.spans[i].kind == SpanKind::kWalAppend) {
          saw_write_with_wal = true;
        }
      }
    }
    if (t.root().kind == SpanKind::kGet) {
      for (size_t i = 1; i < t.spans.size(); i++) {
        if (t.spans[i].kind == SpanKind::kMemtableProbe ||
            t.spans[i].kind == SpanKind::kSstProbe) {
          saw_get_with_probe = true;
        }
      }
    }
    if (t.root().kind == SpanKind::kFlush) {
      for (size_t i = 1; i < t.spans.size(); i++) {
        if (t.spans[i].kind == SpanKind::kTableBuild) {
          saw_flush_with_build = true;
        }
      }
    }
  }
  EXPECT_TRUE(saw_write_with_wal);
  EXPECT_TRUE(saw_get_with_probe);
  EXPECT_TRUE(saw_flush_with_build);
  db.reset();
}

TEST(SpanDbTest, PerfPropertyReportsSpansAndIteratorCounters) {
  auto hw = HardwareProfile::Make(2, 2, DeviceModel::NvmeSsd());
  auto env = std::make_unique<SimEnv>(hw, 9);
  Options o;
  o.env = env.get();
  o.create_if_missing = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(o, "/db", &db).ok());

  GetPerfContext()->Reset();
  const std::string value(64, 'v');
  for (int i = 0; i < 100; i++) {
    char key[32];
    snprintf(key, sizeof(key), "%08d", i);
    ASSERT_TRUE(db->Put({}, key, value).ok());
  }
  auto it = db->NewIterator({});
  it->Seek("00000050");
  int steps = 0;
  while (it->Valid() && steps < 10) {
    it->Next();
    steps++;
  }
  it.reset();

  const PerfContext* perf = GetPerfContext();
  EXPECT_EQ(perf->iter_seek_count, 1u);
  EXPECT_EQ(perf->iter_next_count, 10u);
  EXPECT_GT(perf->iter_read_bytes, 0u);

  std::string prop;
  ASSERT_TRUE(db->GetProperty("elmo.perf", &prop));
  EXPECT_NE(prop.find("iter_seek_count=1"), std::string::npos) << prop;
  EXPECT_NE(prop.find("span op write:"), std::string::npos) << prop;
  EXPECT_NE(prop.find("span op iter_next:"), std::string::npos) << prop;
  EXPECT_NE(prop.find("span phase memtable_insert:"), std::string::npos)
      << prop;
  db.reset();
}

}  // namespace
}  // namespace elmo::lsm
