// IO tracing: classification, context scopes, writer/reader framing,
// corruption rejection, DB-level capture, and SimEnv determinism (two
// identical runs must produce byte-identical traces).
#include "env/io_trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bench_kit/io_analyzer.h"
#include "env/sim_env.h"
#include "lsm/db.h"

namespace elmo {
namespace {

TEST(IOTraceClassify, FileKinds) {
  EXPECT_EQ(IOFileKind::kWal, ClassifyIOFileKind("/db/000005.log", false));
  EXPECT_EQ(IOFileKind::kSstData, ClassifyIOFileKind("/db/000007.sst", false));
  EXPECT_EQ(IOFileKind::kSstIndexFilter,
            ClassifyIOFileKind("/db/000007.sst", true));
  EXPECT_EQ(IOFileKind::kManifest,
            ClassifyIOFileKind("/db/MANIFEST-000002", false));
  EXPECT_EQ(IOFileKind::kInfoLog, ClassifyIOFileKind("/db/LOG", false));
  EXPECT_EQ(IOFileKind::kCurrent, ClassifyIOFileKind("/db/CURRENT", false));
  EXPECT_EQ(IOFileKind::kOther, ClassifyIOFileKind("/db/LOCK", false));
  EXPECT_EQ(IOFileKind::kOther, ClassifyIOFileKind("/db/io.trace", false));
  EXPECT_EQ(IOFileKind::kOther, ClassifyIOFileKind("abc.log", false));
}

TEST(IOTraceClassify, ContextScopesNest) {
  EXPECT_EQ(IOContextTag::kUnknown, CurrentIOContext());
  {
    IOContextScope outer(IOContextTag::kUserWrite);
    EXPECT_EQ(IOContextTag::kUserWrite, CurrentIOContext());
    {
      IOContextScope inner(IOContextTag::kFlush);
      EXPECT_EQ(IOContextTag::kFlush, CurrentIOContext());
    }
    EXPECT_EQ(IOContextTag::kUserWrite, CurrentIOContext());
  }
  EXPECT_EQ(IOContextTag::kUnknown, CurrentIOContext());
}

class IOTraceFileTest : public ::testing::Test {
 protected:
  IOTraceFileTest()
      : env_(HardwareProfile::Make(2, 4, DeviceModel::NvmeSsd()), 42) {}

  IOTraceRecord MakeRecord(uint64_t i) {
    IOTraceRecord rec;
    rec.op = IOOp::kRead;
    rec.kind = IOFileKind::kSstData;
    rec.context = IOContextTag::kUserGet;
    rec.ts_us = 1000 + i;
    rec.offset = i * 4096;
    rec.len = 4096;
    rec.latency_us = 80 + i;
    rec.fname = "/db/000001.sst";
    return rec;
  }

  SimEnv env_;
};

TEST_F(IOTraceFileTest, WriteReadRoundTrip) {
  IOTracer tracer(&env_);
  ASSERT_TRUE(env_.CreateDirIfMissing("/t").ok());
  ASSERT_TRUE(tracer.Open("/t/io.trace", /*base_ts_us=*/999).ok());
  for (uint64_t i = 0; i < 10; i++) {
    ASSERT_TRUE(tracer.AddRecord(MakeRecord(i)).ok());
  }
  EXPECT_EQ(10u, tracer.records());
  ASSERT_TRUE(tracer.Close().ok());

  IOTraceReader reader(&env_);
  ASSERT_TRUE(reader.Open("/t/io.trace").ok());
  EXPECT_EQ(999u, reader.base_ts_us());
  IOTraceRecord rec;
  bool eof = false;
  for (uint64_t i = 0; i < 10; i++) {
    ASSERT_TRUE(reader.Next(&rec, &eof).ok());
    ASSERT_FALSE(eof);
    EXPECT_EQ(IOOp::kRead, rec.op);
    EXPECT_EQ(IOFileKind::kSstData, rec.kind);
    EXPECT_EQ(IOContextTag::kUserGet, rec.context);
    EXPECT_EQ(1000 + i, rec.ts_us);
    EXPECT_EQ(i * 4096, rec.offset);
    EXPECT_EQ(4096u, rec.len);
    EXPECT_EQ(80 + i, rec.latency_us);
    EXPECT_EQ("/db/000001.sst", rec.fname);
  }
  ASSERT_TRUE(reader.Next(&rec, &eof).ok());
  EXPECT_TRUE(eof);
}

TEST_F(IOTraceFileTest, CorruptedRecordRejected) {
  IOTracer tracer(&env_);
  ASSERT_TRUE(env_.CreateDirIfMissing("/t").ok());
  ASSERT_TRUE(tracer.Open("/t/io.trace", 0).ok());
  ASSERT_TRUE(tracer.AddRecord(MakeRecord(0)).ok());
  ASSERT_TRUE(tracer.Close().ok());

  std::string contents;
  ASSERT_TRUE(env_.ReadFileToString("/t/io.trace", &contents).ok());
  // Flip one payload byte past the header + frame prefix.
  std::string corrupt = contents;
  corrupt[corrupt.size() - 3] ^= 0x40;
  ASSERT_TRUE(env_.WriteStringToFile(corrupt, "/t/bad.trace").ok());

  IOTraceReader reader(&env_);
  ASSERT_TRUE(reader.Open("/t/bad.trace").ok());
  IOTraceRecord rec;
  bool eof = false;
  Status s = reader.Next(&rec, &eof);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // A truncated record (torn write) is corruption too, not clean EOF.
  std::string truncated = contents.substr(0, contents.size() - 5);
  ASSERT_TRUE(env_.WriteStringToFile(truncated, "/t/torn.trace").ok());
  IOTraceReader reader2(&env_);
  ASSERT_TRUE(reader2.Open("/t/torn.trace").ok());
  s = reader2.Next(&rec, &eof);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // A file that is not a trace at all fails at Open.
  ASSERT_TRUE(env_.WriteStringToFile("not a trace", "/t/junk").ok());
  IOTraceReader reader3(&env_);
  EXPECT_FALSE(reader3.Open("/t/junk").ok());
}

// ---------------------------------------------------------------------
// DB-level capture on SimEnv.

struct DbTraceResult {
  std::string io_trace;     // raw trace file bytes
  std::string cache_trace;  // raw trace file bytes
};

DbTraceResult RunTracedWorkload(uint64_t seed) {
  auto hw = HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd());
  SimEnv env(hw, seed);
  lsm::Options opts;
  opts.env = &env;
  opts.create_if_missing = true;
  opts.write_buffer_size = 64 << 10;
  opts.block_cache_size = 256 << 10;

  std::unique_ptr<lsm::DB> db;
  EXPECT_TRUE(lsm::DB::Open(opts, "/db", &db).ok());
  EXPECT_TRUE(db->StartIOTrace("/io.trace").ok());
  EXPECT_TRUE(db->StartBlockCacheTrace("/cache.trace").ok());

  // Double-start is rejected while a trace is active.
  EXPECT_FALSE(db->StartIOTrace("/io2.trace").ok());

  const std::string value(512, 'v');
  for (int i = 0; i < 2000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "%016d", i * 7919 % 500);
    EXPECT_TRUE(db->Put({}, key, value).ok());
  }
  EXPECT_TRUE(db->FlushMemTable().ok());
  std::string out;
  for (int i = 0; i < 500; i++) {
    char key[32];
    snprintf(key, sizeof(key), "%016d", i);
    db->Get({}, key, &out);
  }

  EXPECT_TRUE(db->EndIOTrace().ok());
  EXPECT_TRUE(db->EndBlockCacheTrace().ok());
  // Ending again without an active trace is an error.
  EXPECT_FALSE(db->EndIOTrace().ok());
  EXPECT_FALSE(db->EndBlockCacheTrace().ok());
  db.reset();

  DbTraceResult r;
  EXPECT_TRUE(env.ReadFileToString("/io.trace", &r.io_trace).ok());
  EXPECT_TRUE(env.ReadFileToString("/cache.trace", &r.cache_trace).ok());
  return r;
}

TEST(DbIOTrace, CapturesClassifiedTraffic) {
  DbTraceResult r = RunTracedWorkload(42);
  ASSERT_FALSE(r.io_trace.empty());
  ASSERT_FALSE(r.cache_trace.empty());

  // Replay through the analyzer: WAL writes, SST traffic, and both
  // user-write and flush contexts must all be attributed.
  SimEnv env(HardwareProfile::Make(2, 4, DeviceModel::NvmeSsd()), 1);
  ASSERT_TRUE(env.WriteStringToFile(r.io_trace, "/replay.trace").ok());
  bench::IOAnalysis analysis;
  ASSERT_TRUE(
      bench::AnalyzeIOTrace(&env, "/replay.trace", 10, &analysis).ok());
  EXPECT_GT(analysis.records, 0u);
  EXPECT_GT(
      analysis.by_kind[static_cast<int>(IOFileKind::kWal)].bytes, 0u);
  EXPECT_GT(
      analysis.by_kind[static_cast<int>(IOFileKind::kSstData)].bytes, 0u);
  EXPECT_GT(
      analysis.by_context[static_cast<int>(IOContextTag::kUserWrite)].ops,
      0u);
  EXPECT_GT(analysis.by_context[static_cast<int>(IOContextTag::kFlush)].ops,
            0u);
  EXPECT_GT(analysis.by_context[static_cast<int>(IOContextTag::kUserGet)].ops,
            0u);
  EXPECT_FALSE(analysis.heatmap.empty());
}

TEST(DbIOTrace, DeterministicAcrossIdenticalRuns) {
  DbTraceResult a = RunTracedWorkload(42);
  DbTraceResult b = RunTracedWorkload(42);
  // Byte-identical traces: same ops, offsets, virtual timestamps,
  // latencies, record order — the SimEnv determinism guarantee extends
  // to the observability layer.
  EXPECT_EQ(a.io_trace, b.io_trace);
  EXPECT_EQ(a.cache_trace, b.cache_trace);
  ASSERT_FALSE(a.io_trace.empty());
  ASSERT_FALSE(a.cache_trace.empty());
}

}  // namespace
}  // namespace elmo
