#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace elmo::crc32c {
namespace {

TEST(Crc32c, StandardVectors) {
  // Known CRC32C test vectors (iSCSI polynomial).
  char buf[32];

  memset(buf, 0, sizeof(buf));
  EXPECT_EQ(0x8a9136aau, Value(buf, sizeof(buf)));

  memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(0x62a8ab43u, Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; i++) buf[i] = static_cast<char>(i);
  EXPECT_EQ(0x46dd794eu, Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; i++) buf[i] = static_cast<char>(31 - i);
  EXPECT_EQ(0x113fdb5cu, Value(buf, sizeof(buf)));
}

TEST(Crc32c, iSCSIReadCommand) {
  uint8_t data[48] = {
      0x01, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x04, 0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x18, 0x28,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00,
  };
  EXPECT_EQ(0xd9963a56u,
            Value(reinterpret_cast<char*>(data), sizeof(data)));
}

TEST(Crc32c, DifferentInputsDiffer) {
  EXPECT_NE(Value("a", 1), Value("foo", 3));
  EXPECT_NE(Value("foo", 3), Value("bar", 3));
}

TEST(Crc32c, ExtendEqualsConcat) {
  std::string hello = "hello ";
  std::string world = "world";
  std::string both = hello + world;
  EXPECT_EQ(Value(both.data(), both.size()),
            Extend(Value(hello.data(), hello.size()), world.data(),
                   world.size()));
}

TEST(Crc32c, MaskRoundTrip) {
  uint32_t crc = Value("foo", 3);
  EXPECT_NE(crc, Mask(crc));
  EXPECT_NE(crc, Mask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Unmask(Mask(Mask(crc)))));
}

TEST(Crc32c, EmptyInput) {
  EXPECT_EQ(0u, Value("", 0));
}

}  // namespace
}  // namespace elmo::crc32c
