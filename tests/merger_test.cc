// Merging iterator + DBIter semantics over synthetic children.
#include <gtest/gtest.h>

#include <map>

#include "lsm/db_iter.h"
#include "lsm/merger.h"
#include "table/block.h"
#include "table/block_builder.h"

namespace elmo::lsm {
namespace {

// Build a Block-backed iterator from sorted (key, value) pairs.
struct BlockHolder {
  std::unique_ptr<Block> block;
  std::unique_ptr<Iterator> NewIter(const Comparator* cmp) {
    return block->NewIterator(cmp);
  }
};

BlockHolder MakeBlock(const std::map<std::string, std::string>& kvs) {
  BlockBuilder builder(4);
  for (const auto& [k, v] : kvs) builder.Add(k, v);
  BlockHolder holder;
  holder.block = std::make_unique<Block>(builder.Finish().ToString());
  return holder;
}

TEST(Merger, InterleavesSortedStreams) {
  auto b1 = MakeBlock({{"a", "1"}, {"c", "3"}, {"e", "5"}});
  auto b2 = MakeBlock({{"b", "2"}, {"d", "4"}, {"f", "6"}});
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(b1.NewIter(BytewiseComparator()));
  children.push_back(b2.NewIter(BytewiseComparator()));
  auto merged =
      NewMergingIterator(BytewiseComparator(), std::move(children));

  std::string out;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    out += merged->key().ToString() + merged->value().ToString();
  }
  EXPECT_EQ("a1b2c3d4e5f6", out);
}

TEST(Merger, TiesPreferEarlierChild) {
  // Same key in both children: the earlier (newer) child must win the
  // tie in forward order.
  auto newer = MakeBlock({{"k", "new"}});
  auto older = MakeBlock({{"k", "old"}});
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(newer.NewIter(BytewiseComparator()));
  children.push_back(older.NewIter(BytewiseComparator()));
  auto merged =
      NewMergingIterator(BytewiseComparator(), std::move(children));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("new", merged->value().ToString());
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("old", merged->value().ToString());
}

TEST(Merger, BackwardIteration) {
  auto b1 = MakeBlock({{"a", "1"}, {"c", "3"}});
  auto b2 = MakeBlock({{"b", "2"}, {"d", "4"}});
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(b1.NewIter(BytewiseComparator()));
  children.push_back(b2.NewIter(BytewiseComparator()));
  auto merged =
      NewMergingIterator(BytewiseComparator(), std::move(children));
  std::string out;
  for (merged->SeekToLast(); merged->Valid(); merged->Prev()) {
    out += merged->key().ToString();
  }
  EXPECT_EQ("dcba", out);
}

TEST(Merger, DirectionSwitchMidStream) {
  auto b1 = MakeBlock({{"a", "1"}, {"c", "3"}});
  auto b2 = MakeBlock({{"b", "2"}, {"d", "4"}});
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(b1.NewIter(BytewiseComparator()));
  children.push_back(b2.NewIter(BytewiseComparator()));
  auto merged =
      NewMergingIterator(BytewiseComparator(), std::move(children));
  merged->Seek("c");
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("c", merged->key().ToString());
  merged->Prev();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("b", merged->key().ToString());
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("c", merged->key().ToString());
}

TEST(Merger, SingleChildPassesThrough) {
  auto b = MakeBlock({{"x", "1"}});
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(b.NewIter(BytewiseComparator()));
  auto merged =
      NewMergingIterator(BytewiseComparator(), std::move(children));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("x", merged->key().ToString());
}

TEST(Merger, NoChildrenIsEmpty) {
  auto merged = NewMergingIterator(BytewiseComparator(), {});
  merged->SeekToFirst();
  EXPECT_FALSE(merged->Valid());
  EXPECT_TRUE(merged->status().ok());
}

// ---- DBIter over hand-built internal keys ----

std::string IK(const std::string& user_key, uint64_t seq, ValueType t) {
  std::string s;
  AppendInternalKey(&s, ParsedInternalKey(user_key, seq, t));
  return s;
}

TEST(DbIter, HidesShadowedVersionsAndTombstones) {
  InternalKeyComparator icmp(BytewiseComparator());
  // Internal entries added in internal-key order (user key asc,
  // sequence desc) by hand — std::map's bytewise order would disagree.
  BlockBuilder builder(4);
  builder.Add(IK("a", 5, kTypeValue), "a5");
  builder.Add(IK("a", 3, kTypeValue), "a3");
  builder.Add(IK("b", 6, kTypeDeletion), "");
  builder.Add(IK("b", 2, kTypeValue), "b2");
  builder.Add(IK("c", 4, kTypeValue), "c4");
  Block real_block(builder.Finish().ToString());

  auto db_iter =
      NewDBIterator(BytewiseComparator(), real_block.NewIterator(&icmp),
                    /*sequence=*/10);
  std::string out;
  for (db_iter->SeekToFirst(); db_iter->Valid(); db_iter->Next()) {
    out += db_iter->key().ToString() + "=" +
           db_iter->value().ToString() + ";";
  }
  EXPECT_EQ("a=a5;c=c4;", out);
}

TEST(DbIter, SnapshotSequenceFiltersNewWrites) {
  InternalKeyComparator icmp(BytewiseComparator());
  BlockBuilder builder(4);
  builder.Add(IK("k", 9, kTypeValue), "new");
  builder.Add(IK("k", 4, kTypeValue), "old");
  Block block(builder.Finish().ToString());

  auto at_5 = NewDBIterator(BytewiseComparator(),
                            block.NewIterator(&icmp), /*sequence=*/5);
  at_5->SeekToFirst();
  ASSERT_TRUE(at_5->Valid());
  EXPECT_EQ("old", at_5->value().ToString());

  auto at_9 = NewDBIterator(BytewiseComparator(),
                            block.NewIterator(&icmp), /*sequence=*/9);
  at_9->SeekToFirst();
  ASSERT_TRUE(at_9->Valid());
  EXPECT_EQ("new", at_9->value().ToString());
}

TEST(DbIter, ReverseSkipsTombstones) {
  InternalKeyComparator icmp(BytewiseComparator());
  BlockBuilder builder(4);
  builder.Add(IK("a", 2, kTypeValue), "1");
  builder.Add(IK("b", 5, kTypeDeletion), "");
  builder.Add(IK("b", 1, kTypeValue), "dead");
  builder.Add(IK("c", 3, kTypeValue), "3");
  Block block(builder.Finish().ToString());

  auto iter = NewDBIterator(BytewiseComparator(),
                            block.NewIterator(&icmp), 10);
  std::string out;
  for (iter->SeekToLast(); iter->Valid(); iter->Prev()) {
    out += iter->key().ToString();
  }
  EXPECT_EQ("ca", out);
}

}  // namespace
}  // namespace elmo::lsm
