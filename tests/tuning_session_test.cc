// TuningSession end-to-end: scripted LLMs drive deterministic keep /
// revert / reject paths; the simulated expert must actually improve
// the store.
#include "elmo/tuning_session.h"

#include <gtest/gtest.h>

#include "elmo/prompt_generator.h"
#include "llm/expert_llm.h"

namespace elmo::tune {
namespace {

HardwareProfile TestHw() {
  return HardwareProfile::Make(2, 4, DeviceModel::SataHdd());
}

bench::WorkloadSpec SmallFill() {
  return bench::WorkloadSpec::FillRandom(60000);
}

TEST(TuningSession, BaselineAlwaysRecorded) {
  bench::BenchRunner runner(TestHw());
  llm::ScriptedLlm llm({"nothing useful"});
  TuningConfig cfg;
  cfg.max_iterations = 1;
  TuningSession session(&runner, &llm, SmallFill(), cfg);
  auto out = session.Run();
  EXPECT_GT(out.baseline.ops_per_sec, 0);
  EXPECT_EQ(1u, out.iterations.size());
  // Unusable response: not kept, flagged as format failure.
  EXPECT_FALSE(out.iterations[0].kept);
  EXPECT_FALSE(out.iterations[0].safeguard.format_ok);
  // Best stays at baseline.
  EXPECT_EQ(out.baseline.ops_per_sec, out.best_result.ops_per_sec);
}

TEST(TuningSession, GoodSuggestionKeptAndFinalFileUpdated) {
  bench::BenchRunner runner(TestHw());
  // A genuinely good HDD fillrandom change.
  llm::ScriptedLlm llm({
      "Increase parallelism and smooth syncs.\n"
      "```ini\n"
      "max_background_jobs = 4\n"
      "wal_bytes_per_sync = 1048576\n"
      "bytes_per_sync = 1048576\n"
      "max_write_buffer_number = 4\n"
      "```\n",
  });
  TuningConfig cfg;
  cfg.max_iterations = 1;
  TuningSession session(&runner, &llm, SmallFill(), cfg);
  auto out = session.Run();
  ASSERT_EQ(1u, out.iterations.size());
  EXPECT_EQ(4u, out.iterations[0].applied_changes.size());
  if (out.iterations[0].kept) {
    EXPECT_NE(out.final_options_file.find("max_background_jobs = 4"),
              std::string::npos);
    EXPECT_GE(out.best_result.ops_per_sec, out.baseline.ops_per_sec);
  }
}

TEST(TuningSession, CertifyGateRunsOnKeptCandidates) {
  bench::BenchRunner runner(TestHw());
  llm::ScriptedLlm llm({
      "```ini\n"
      "max_background_jobs = 4\n"
      "wal_bytes_per_sync = 1048576\n"
      "```\n",
  });
  TuningConfig cfg;
  cfg.max_iterations = 1;
  cfg.certify_ops = 800;  // crash-certify anything the flagger keeps
  cfg.certify_crash_cycles = 2;
  TuningSession session(&runner, &llm, SmallFill(), cfg);
  auto out = session.Run();
  ASSERT_EQ(1u, out.iterations.size());
  if (out.iterations[0].kept) {
    // A kept candidate must have passed through certification.
    EXPECT_EQ("certified: ok", out.iterations[0].certify_summary);
  }
}

TEST(TuningSession, BadConfigRevertedAndReportedToLlm) {
  bench::BenchRunner runner(TestHw());
  // Iteration 1: a pathological config; iteration 2 inspects the
  // deterioration note (ScriptedLlm ignores it, but the session's
  // history must mark the revert).
  llm::ScriptedLlm llm({
      "```ini\n"
      "write_buffer_size = 65536\n"  // pathologically tiny memtable
      "max_background_jobs = 1\n"
      "```\n",
      "```ini\nmax_background_jobs = 4\n```\n",
  });
  TuningConfig cfg;
  cfg.max_iterations = 2;
  cfg.probe_fraction = 0;  // force full runs so Judge() decides
  TuningSession session(&runner, &llm, SmallFill(), cfg);
  auto out = session.Run();
  ASSERT_EQ(2u, out.iterations.size());
  EXPECT_FALSE(out.iterations[0].kept);
  // Best options must NOT contain the bad change.
  EXPECT_EQ(out.final_options_file.find("write_buffer_size = 65536"),
            std::string::npos);
}

TEST(TuningSession, EarlyAbortPathTriggers) {
  bench::BenchRunner runner(TestHw());
  llm::ScriptedLlm llm({
      "```ini\nwrite_buffer_size = 65536\nmax_background_jobs = 1\n```\n",
  });
  TuningConfig cfg;
  cfg.max_iterations = 1;
  cfg.probe_fraction = 0.2;
  TuningSession session(&runner, &llm, SmallFill(), cfg);
  auto out = session.Run();
  ASSERT_EQ(1u, out.iterations.size());
  if (out.iterations[0].early_aborted) {
    EXPECT_FALSE(out.iterations[0].kept);
    EXPECT_NE(out.iterations[0].decision_reason.find("early"),
              std::string::npos);
  }
}

TEST(TuningSession, BlacklistedOnlyResponseRejected) {
  bench::BenchRunner runner(TestHw());
  llm::ScriptedLlm llm({"```ini\ndisable_wal = true\n```\n"});
  TuningConfig cfg;
  cfg.max_iterations = 1;
  TuningSession session(&runner, &llm, SmallFill(), cfg);
  auto out = session.Run();
  ASSERT_EQ(1u, out.iterations.size());
  EXPECT_FALSE(out.iterations[0].kept);
  EXPECT_EQ(1u, out.iterations[0].safeguard.rejected_blacklisted.size());
  EXPECT_NE(out.final_options_file.find("disable_wal = false"),
            std::string::npos);
}

TEST(TuningSession, ExpertImprovesOverDefaults) {
  bench::BenchRunner runner(TestHw());
  llm::SimulatedExpertLlm gpt;
  TuningConfig cfg;
  cfg.max_iterations = 5;
  TuningSession session(&runner, &gpt, SmallFill(), cfg);
  auto out = session.Run();
  EXPECT_GE(out.best_result.ops_per_sec, out.baseline.ops_per_sec);
  EXPECT_GE(out.ThroughputGain(), 1.0);
  EXPECT_EQ(5u, out.iterations.size());
}

TEST(TuningSession, DeterministicEndToEnd) {
  auto run = [] {
    bench::BenchRunner runner(TestHw());
    llm::SimulatedExpertLlm gpt;
    TuningConfig cfg;
    cfg.max_iterations = 3;
    TuningSession session(&runner, &gpt, SmallFill(), cfg);
    return session.Run();
  };
  auto a = run();
  auto b = run();
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (size_t i = 0; i < a.iterations.size(); i++) {
    EXPECT_EQ(a.iterations[i].result.ops_per_sec,
              b.iterations[i].result.ops_per_sec);
    EXPECT_EQ(a.iterations[i].kept, b.iterations[i].kept);
  }
}

TEST(TuningSession, PromptCarriesAllSections) {
  bench::BenchRunner runner(TestHw());
  llm::ScriptedLlm llm({"```ini\nmax_background_jobs = 4\n```\n"});
  TuningConfig cfg;
  cfg.max_iterations = 1;
  TuningSession session(&runner, &llm, SmallFill(), cfg);
  auto out = session.Run();
  const std::string& prompt = out.iterations[0].prompt;
  EXPECT_NE(prompt.find("## System Information"), std::string::npos);
  EXPECT_NE(prompt.find("CPU cores: 2"), std::string::npos);
  EXPECT_NE(prompt.find("SATA HDD"), std::string::npos);
  EXPECT_NE(prompt.find("## Workload"), std::string::npos);
  EXPECT_NE(prompt.find("fillrandom"), std::string::npos);
  EXPECT_NE(prompt.find("## Current Configuration"), std::string::npos);
  EXPECT_NE(prompt.find("write_buffer_size"), std::string::npos);
  EXPECT_NE(prompt.find("## Last Benchmark Report"), std::string::npos);
  EXPECT_NE(prompt.find("ops/sec"), std::string::npos);
  EXPECT_NE(prompt.find("Do not modify: disable_wal"), std::string::npos);
  // The span trace captured during the benchmark surfaces as a p99
  // decomposition the model can act on.
  EXPECT_NE(prompt.find("## Latency Attribution Evidence"),
            std::string::npos);
  EXPECT_NE(prompt.find("p99 tail breakdown"), std::string::npos);
}

TEST(PromptGenerator, TimeseriesRendersTelemetrySection) {
  PromptInputs in;
  in.iteration = 2;
  in.workload_description = "fillrandom";
  in.current_options_ini = "k = v\n";
  lsm::IntervalSample s;
  s.ts_us = 250000;
  s.interval_us = 250000;
  s.ops = 50000;
  s.ops_per_sec = 200000.0;
  s.stall_fraction = 0.25;
  in.timeseries = {s};
  std::string p = PromptGenerator::Generate(in);
  EXPECT_NE(p.find("## Telemetry Over The Run"), std::string::npos);
  EXPECT_NE(p.find("ops/s"), std::string::npos);
  EXPECT_NE(p.find("200000"), std::string::npos);

  // Without samples the section is omitted entirely.
  in.timeseries.clear();
  p = PromptGenerator::Generate(in);
  EXPECT_EQ(p.find("## Telemetry Over The Run"), std::string::npos);
}

TEST(PromptGenerator, IoCacheEvidenceSectionRendersWhenPresent) {
  PromptInputs in;
  in.iteration = 2;
  in.workload_description = "readrandom";
  in.current_options_ini = "k = v\n";
  in.io_cache_evidence =
      "Per-kind IO (from the engine's IO trace):\n"
      "- wal: 10 ops, 4096 bytes (50.0%)\n"
      "Miss-ratio curve (ghost LRU replay of the block-cache trace):\n"
      "- 1 MiB: miss 40.0%\n";
  std::string p = PromptGenerator::Generate(in);
  EXPECT_NE(p.find("## IO & Cache Evidence"), std::string::npos);
  EXPECT_NE(p.find("Per-kind IO"), std::string::npos);
  EXPECT_NE(p.find("Miss-ratio curve"), std::string::npos);

  // Without evidence the section is omitted entirely.
  in.io_cache_evidence.clear();
  p = PromptGenerator::Generate(in);
  EXPECT_EQ(p.find("## IO & Cache Evidence"), std::string::npos);
}

TEST(PromptGenerator, LatencyAttributionSectionRendersWhenPresent) {
  PromptInputs in;
  in.iteration = 2;
  in.workload_description = "fillrandom";
  in.current_options_ini = "k = v\n";
  in.latency_attribution =
      "write: p50=9us p99=120us p999=400us | p99 tail breakdown: "
      "wal_sync 62.0% stall_wait 21.0% self 17.0%\n";
  std::string p = PromptGenerator::Generate(in);
  EXPECT_NE(p.find("## Latency Attribution Evidence"), std::string::npos);
  EXPECT_NE(p.find("wal_sync 62.0%"), std::string::npos);

  // Without attribution the section is omitted entirely.
  in.latency_attribution.clear();
  p = PromptGenerator::Generate(in);
  EXPECT_EQ(p.find("## Latency Attribution Evidence"), std::string::npos);
}

TEST(PromptGenerator, DeteriorationNoteIncludedWhenSet) {
  PromptInputs in;
  in.iteration = 3;
  in.workload_description = "fillrandom: stuff";
  in.current_options_ini = "k = v\n";
  in.deterioration_note = "The previous configuration DECREASED performance.";
  in.history = {"Iteration 1: 100 ops/sec (kept)"};
  std::string p = PromptGenerator::Generate(in);
  EXPECT_NE(p.find("## Feedback"), std::string::npos);
  EXPECT_NE(p.find("DECREASED"), std::string::npos);
  EXPECT_NE(p.find("## Tuning History"), std::string::npos);
  EXPECT_NE(p.find("tuning iteration 3"), std::string::npos);
}

}  // namespace
}  // namespace elmo::tune
