#include "table/bloom.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/coding.h"

namespace elmo {
namespace {

std::string IntKey(int i) {
  std::string s;
  PutFixed32(&s, i);
  return s;
}

TEST(Bloom, EmptyFilterRejects) {
  BloomFilterPolicy policy(10);
  std::string filter;
  policy.CreateFilter(nullptr, 0, &filter);
  EXPECT_FALSE(policy.KeyMayMatch("hello", filter));
}

TEST(Bloom, NoFalseNegativesSmall) {
  BloomFilterPolicy policy(10);
  std::vector<std::string> storage = {"hello", "world", "", "x",
                                      std::string(1000, 'a')};
  std::vector<Slice> keys(storage.begin(), storage.end());
  std::string filter;
  policy.CreateFilter(keys.data(), (int)keys.size(), &filter);
  for (const auto& k : storage) {
    EXPECT_TRUE(policy.KeyMayMatch(k, filter)) << k.substr(0, 20);
  }
}

// Property sweep: for every (bits_per_key, n) combination, zero false
// negatives and a false-positive rate consistent with theory.
class BloomPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BloomPropertyTest, FprWithinTheory) {
  auto [bits_per_key, n] = GetParam();
  BloomFilterPolicy policy(bits_per_key);

  std::vector<std::string> storage;
  storage.reserve(n);
  for (int i = 0; i < n; i++) storage.push_back(IntKey(i));
  std::vector<Slice> keys(storage.begin(), storage.end());
  std::string filter;
  policy.CreateFilter(keys.data(), n, &filter);

  // No false negatives, ever.
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(policy.KeyMayMatch(IntKey(i), filter)) << i;
  }

  // False positives on fresh keys.
  int fp = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; i++) {
    if (policy.KeyMayMatch(IntKey(1000000000 + i), filter)) fp++;
  }
  double rate = fp / static_cast<double>(probes);
  // Theory: (1 - e^{-k n / m})^k ~= 0.0082 at 10 bits/key. Allow a
  // generous 3x envelope for hash imperfection and small n.
  double theory =
      std::pow(1.0 - std::exp(-0.69), 0.69 * bits_per_key);
  EXPECT_LT(rate, std::max(0.03, theory * 3)) << "bits " << bits_per_key;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BloomPropertyTest,
    ::testing::Combine(::testing::Values(6, 10, 16),
                       ::testing::Values(100, 1000, 10000)));

TEST(Bloom, MoreBitsFewerFalsePositives) {
  auto fpr = [](int bits) {
    BloomFilterPolicy policy(bits);
    std::vector<std::string> storage;
    for (int i = 0; i < 5000; i++) storage.push_back(IntKey(i));
    std::vector<Slice> keys(storage.begin(), storage.end());
    std::string filter;
    policy.CreateFilter(keys.data(), (int)keys.size(), &filter);
    int fp = 0;
    for (int i = 0; i < 20000; i++) {
      if (policy.KeyMayMatch(IntKey(900000 + i), filter)) fp++;
    }
    return fp;
  };
  EXPECT_GT(fpr(4), fpr(16));
}

TEST(Bloom, FilterSizeScalesWithBits) {
  std::vector<std::string> storage;
  for (int i = 0; i < 1000; i++) storage.push_back(IntKey(i));
  std::vector<Slice> keys(storage.begin(), storage.end());
  std::string f4, f16;
  BloomFilterPolicy(4).CreateFilter(keys.data(), 1000, &f4);
  BloomFilterPolicy(16).CreateFilter(keys.data(), 1000, &f16);
  EXPECT_GT(f16.size(), 3 * f4.size());
}

TEST(Bloom, GarbageFilterDoesNotCrash) {
  BloomFilterPolicy policy(10);
  EXPECT_FALSE(policy.KeyMayMatch("k", Slice("")));
  EXPECT_FALSE(policy.KeyMayMatch("k", Slice("x")));
  // Unknown probe count encoding: conservatively match.
  std::string weird(100, '\xff');
  EXPECT_TRUE(policy.KeyMayMatch("k", weird));
}

}  // namespace
}  // namespace elmo
