// SimulatedExpertLlm: the reproduction's GPT-4 stand-in.
//
// The paper's premise is that a modern LLM has absorbed the RocksDB
// tuning guide, engineering blogs and the source code itself, and can
// apply that knowledge to a prompt describing hardware + workload +
// current options + benchmark feedback. This class implements exactly
// that persona as an explicit rule base:
//
//  * it reads ONLY the prompt text (like the API would) — hardware
//    facts, workload, the current options file, performance numbers and
//    revert notices are all parsed out of natural language;
//  * its knowledge base encodes the same couplings the tuning guide
//    teaches (background jobs ~ cores, sync granularity vs tail
//    latency, bloom filters for reads, memory budgeting, readahead for
//    HDDs), with blog-like biases: it prefers famous options, revisits
//    the same ones with oscillating values (paper Table 5), and
//    sometimes fixates on deprecated names;
//  * it exhibits the failure modes the paper's Safeguard Enforcer
//    exists for — hallucinated options, attempts to disable the WAL,
//    malformed formatting — at configurable seeded rates;
//  * responses are rendered as GPT-style prose with fenced ``` blocks,
//    sometimes interleaved, exercising the Option Evaluator's parser.
//
// Everything is deterministic given the seed.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "llm/llm_client.h"
#include "util/ini.h"
#include "util/random.h"

namespace elmo::llm {

struct ExpertConfig {
  uint64_t seed = 7;
  // Probability per response of proposing a hallucinated (non-existent)
  // option.
  double hallucination_rate = 0.20;
  // Probability per response of proposing a deprecated option name.
  double deprecated_rate = 0.15;
  // Probability per response of touching a blacklisted option
  // (disable_wal) "to speed up the benchmark".
  double blacklist_poke_rate = 0.10;
  // Probability of sloppy formatting: changes outside the fenced block.
  double interleave_rate = 0.25;
  // Changes proposed per iteration (the paper observes >10 per
  // iteration stops helping).
  int min_changes = 3;
  int max_changes = 8;
};

// Facts the expert extracted from the prompt; exposed for tests.
struct PromptFacts {
  int cpu_cores = 4;
  uint64_t memory_bytes = 4ull << 30;
  bool is_hdd = false;
  std::string workload;  // "fillrandom" | "readrandom" | ...
  bool write_heavy = false;
  bool read_heavy = false;
  double last_ops_per_sec = 0;
  bool deteriorated = false;       // framework reported a revert
  uint64_t stall_micros = 0;
  uint64_t writeback_bursts = 0;
  int iteration = 0;
  IniDoc current_options;
};

class SimulatedExpertLlm : public LlmClient {
 public:
  explicit SimulatedExpertLlm(const ExpertConfig& config = {});

  Status Complete(const std::vector<ChatMessage>& messages,
                  std::string* response) override;

  const char* Name() const override { return "simulated-gpt4-expert"; }

  // Exposed for unit tests.
  static PromptFacts ParsePrompt(const std::string& prompt);

 private:
  struct Change {
    std::string option;
    std::string value;
    std::string rationale;
  };

  std::vector<Change> ProposeChanges(const PromptFacts& facts);
  std::string RenderResponse(const PromptFacts& facts,
                             const std::vector<Change>& changes);

  ExpertConfig cfg_;
  Random64 rng_;
  int calls_ = 0;
  // Options changed on the previous call; avoided after a revert.
  std::set<std::string> last_changed_;
};

}  // namespace elmo::llm
