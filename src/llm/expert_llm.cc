#include "llm/expert_llm.h"

#include <algorithm>
#include <cstdio>

#include "util/string_util.h"

namespace elmo::llm {

SimulatedExpertLlm::SimulatedExpertLlm(const ExpertConfig& config)
    : cfg_(config), rng_(config.seed) {}

namespace {

// Finds "label" in text and parses the integer right after it.
bool FindInt(const std::string& text, const std::string& label,
             uint64_t* out) {
  size_t pos = text.find(label);
  if (pos == std::string::npos) return false;
  pos += label.size();
  while (pos < text.size() && text[pos] == ' ') pos++;
  char* end = nullptr;
  unsigned long long v = strtoull(text.c_str() + pos, &end, 10);
  if (end == text.c_str() + pos) return false;
  *out = v;
  return true;
}

bool FindDouble(const std::string& text, const std::string& label,
                double* out) {
  size_t pos = text.find(label);
  if (pos == std::string::npos) return false;
  pos += label.size();
  while (pos < text.size() && text[pos] == ' ') pos++;
  char* end = nullptr;
  double v = strtod(text.c_str() + pos, &end);
  if (end == text.c_str() + pos) return false;
  *out = v;
  return true;
}

// Extracts the first fenced block tagged ```ini.
std::string ExtractIniFence(const std::string& text) {
  size_t open = text.find("```ini");
  if (open == std::string::npos) return "";
  open = text.find('\n', open);
  if (open == std::string::npos) return "";
  size_t close = text.find("```", open);
  if (close == std::string::npos) return "";
  return text.substr(open + 1, close - open - 1);
}

uint64_t MiB(uint64_t n) { return n << 20; }

}  // namespace

PromptFacts SimulatedExpertLlm::ParsePrompt(const std::string& prompt) {
  PromptFacts facts;

  uint64_t v;
  if (FindInt(prompt, "CPU cores:", &v)) facts.cpu_cores = static_cast<int>(v);

  double mem;
  if (FindDouble(prompt, "Total memory:", &mem)) {
    size_t pos = prompt.find("Total memory:");
    std::string tail = prompt.substr(pos, 64);
    if (tail.find("GiB") != std::string::npos) {
      facts.memory_bytes = static_cast<uint64_t>(mem * (1ull << 30));
    } else if (tail.find("MiB") != std::string::npos) {
      facts.memory_bytes = static_cast<uint64_t>(mem * (1ull << 20));
    } else {
      facts.memory_bytes = static_cast<uint64_t>(mem);
    }
  }

  facts.is_hdd = ContainsIgnoreCase(prompt, "HDD") ||
                 ContainsIgnoreCase(prompt, "spinning") ||
                 ContainsIgnoreCase(prompt, "hard disk");

  for (const char* name :
       {"readrandomwriterandom", "readrandom", "fillrandom", "mixgraph"}) {
    if (prompt.find(name) != std::string::npos) {
      facts.workload = name;
      break;
    }
  }
  facts.write_heavy = (facts.workload == "fillrandom" ||
                       facts.workload == "readrandomwriterandom" ||
                       facts.workload == "mixgraph");
  facts.read_heavy = (facts.workload == "readrandom" ||
                      facts.workload == "readrandomwriterandom" ||
                      facts.workload == "mixgraph");
  if (facts.workload.empty()) {
    facts.write_heavy = true;  // default persona: assume ingest tuning
  }

  FindDouble(prompt, "micros/op", &facts.last_ops_per_sec);
  // The report line reads "... micros/op <N> ops/sec"; the number we
  // want precedes "ops/sec".
  {
    size_t pos = prompt.find(" ops/sec");
    if (pos != std::string::npos) {
      size_t begin = prompt.rfind(' ', pos - 1);
      if (begin != std::string::npos) {
        auto val = ParseDouble(prompt.substr(begin, pos - begin));
        if (val.has_value()) facts.last_ops_per_sec = *val;
      }
    }
  }

  facts.deteriorated = ContainsIgnoreCase(prompt, "decreased") ||
                       ContainsIgnoreCase(prompt, "reverted") ||
                       ContainsIgnoreCase(prompt, "deteriorat");
  FindInt(prompt, "stall-micros", &facts.stall_micros);
  FindInt(prompt, "os-writeback-bursts", &facts.writeback_bursts);
  if (FindInt(prompt, "tuning iteration", &v)) {
    facts.iteration = static_cast<int>(v);
  }

  std::string ini = ExtractIniFence(prompt);
  if (!ini.empty()) {
    IniDoc::Parse(ini, &facts.current_options);
  }
  return facts;
}

std::vector<SimulatedExpertLlm::Change> SimulatedExpertLlm::ProposeChanges(
    const PromptFacts& facts) {
  std::vector<Change> candidates;
  const int cores = std::max(1, facts.cpu_cores);
  const uint64_t mem = facts.memory_bytes;
  const int it = std::max(facts.iteration, calls_);

  auto current = [&](const std::string& name) -> std::string {
    for (const char* sec : {"DBOptions", "CFOptions", "TableOptions", ""}) {
      auto v = facts.current_options.Get(sec, name);
      if (v.has_value()) return *v;
    }
    return "";
  };
  auto add = [&](const std::string& name, const std::string& value,
                 const std::string& why) {
    if (current(name) == value) return;           // no-op change
    if (facts.deteriorated && last_changed_.count(name)) return;
    candidates.push_back({name, value, why});
  };
  // Oscillation helper: cycle through a small value set as iterations
  // advance — the blog-knowledge behavior Table 5 shows.
  auto cycle = [&](std::initializer_list<const char*> values) {
    std::vector<const char*> v(values);
    return std::string(v[(it + rng_.Uniform(2)) % v.size()]);
  };

  // ---- background parallelism: the single most blogged-about knob ----
  {
    int jobs = std::clamp(cores + static_cast<int>(rng_.Uniform(3)) - 1 +
                              (it % 2),
                          2, 2 * cores + 2);
    add("max_background_jobs", std::to_string(jobs),
        "match background parallelism to the " + std::to_string(cores) +
            " available cores");
    add("max_background_flushes", cycle({"2", "1", "2"}),
        "dedicated flush thread(s) so memtables drain promptly");
    add("max_background_compactions",
        std::to_string(std::clamp(cores - 1 + (it % 3), 2, 8)),
        "let compaction keep up with the ingest rate");
  }

  if (facts.write_heavy) {
    // Memory-budget aware memtable sizing (the paper highlights that
    // the model keeps the total budget in check).
    int mwbn = 3 + static_cast<int>((it + rng_.Uniform(2)) % 3);  // 3..5
    uint64_t wbs = MiB(64);
    if (mem >= (8ull << 30)) {
      wbs = MiB(128);
    } else if (mem <= (4ull << 30) && mwbn >= 4) {
      wbs = MiB(32);  // stay inside the budget with more memtables
    }
    add("write_buffer_size", std::to_string(wbs),
        "size memtables for the available " +
            FormatBytesHuman(mem) + " while keeping the total budget sane");
    add("max_write_buffer_number", std::to_string(mwbn),
        "more in-flight memtables absorb flush latency spikes");
    add("min_write_buffer_number_to_merge", cycle({"2", "1", "3"}),
        "merging memtables before flushing reduces write amplification");

    add("wal_bytes_per_sync", cycle({"1048576", "524288", "1048576"}),
        "sync the WAL incrementally to avoid bursty OS writeback");
    add("bytes_per_sync", cycle({"1048576", "524288", "1048576"}),
        "same smoothing for SST writes — big p99 win");
    if (it >= 2) {
      add("strict_bytes_per_sync", "true",
          "enforce the sync cadence strictly for predictable tails");
    }
    add("level0_file_num_compaction_trigger", cycle({"6", "4", "6"}),
        "slightly deeper L0 batches compaction work");
    add("target_file_size_base", cycle({"33554432", "67108864"}),
        "smaller files give finer-grained compaction scheduling");
    add("max_bytes_for_level_multiplier", cycle({"8", "10"}),
        "a tighter level fanout reduces worst-case read amplification");
    if (it >= 1) {
      add("enable_pipelined_write", "false",
          "several deployments report steadier tails without the "
          "pipelined writer");
      add("dump_malloc_stats", "false",
          "drop allocator-stat dumps to shave background CPU");
    }
    if (facts.stall_micros > 1000000 || facts.writeback_bursts > 10) {
      add("max_subcompactions", std::to_string(std::min(cores, 4)),
          "parallelize large compactions; stalls indicate compaction "
          "debt");
    }
    // The modern option LLMs tend to overlook (paper §6): proposed only
    // occasionally.
    if (rng_.NextDouble() < 0.10) {
      add("level_compaction_dynamic_level_bytes", "true",
          "modern level sizing keeps space amplification bounded");
    }
  }

  if (facts.read_heavy) {
    add("bloom_filter_bits_per_key", cycle({"10", "12", "10"}),
        "bloom filters skip SSTs that cannot contain the key — the "
        "classic read-path fix");
    uint64_t cache = std::max<uint64_t>(mem / 4, MiB(64));
    add("block_cache_size", std::to_string(cache),
        "give the block cache a real share (1/4) of system memory");
    add("cache_index_and_filter_blocks", "true",
        "account index/filter blocks inside the cache budget");
    if (facts.is_hdd) {
      add("block_size", "16384",
          "bigger blocks amortize seek latency on spinning media");
    }
  }

  if (facts.is_hdd) {
    add("compaction_readahead_size", cycle({"4194304", "8388608"}),
        "large sequential readahead hides seek latency during "
        "compaction on HDDs");
  }

  // Sample down to the per-iteration change budget, preserving the
  // knowledge-base priority order.
  int budget = cfg_.min_changes +
               static_cast<int>(rng_.Uniform(
                   cfg_.max_changes - cfg_.min_changes + 1));
  if (facts.deteriorated) budget = std::max(cfg_.min_changes, budget / 2);
  if (static_cast<int>(candidates.size()) > budget) {
    // Keep the first `budget` high-priority entries but randomly swap a
    // couple of tail entries in for variety.
    for (int i = 0; i < 2; i++) {
      size_t from = budget + rng_.Uniform(candidates.size() - budget);
      size_t to = rng_.Uniform(budget);
      std::swap(candidates[to], candidates[from]);
    }
    candidates.resize(budget);
  }

  last_changed_.clear();
  for (const auto& c : candidates) last_changed_.insert(c.option);

  // ---- persona faults (the safeguard exists because of these) ----
  // Injected after sampling so a fault, when rolled, always reaches the
  // response.
  if (rng_.NextDouble() < cfg_.hallucination_rate) {
    const char* made_up[] = {"memtable_prefetch_depth",
                             "level0_compaction_parallelism",
                             "write_buffer_manager_shards",
                             "compaction_pri_boost"};
    candidates.push_back({made_up[rng_.Uniform(4)],
                          std::to_string(2 + rng_.Uniform(6)),
                          "fine-tune internal scheduling"});
  }
  if (rng_.NextDouble() < cfg_.deprecated_rate) {
    candidates.push_back({"flush_job_count", std::to_string(1 + it % 3),
                          "raise the flush job count (classic advice)"});
  }
  if (rng_.NextDouble() < cfg_.blacklist_poke_rate) {
    candidates.push_back({"disable_wal", "true",
                          "skip the write-ahead log entirely since this "
                          "is a benchmark"});
  }
  return candidates;
}

std::string SimulatedExpertLlm::RenderResponse(
    const PromptFacts& facts, const std::vector<Change>& changes) {
  std::string out;
  char buf[512];
  snprintf(buf, sizeof(buf),
           "Based on your %s system with %d CPU core%s and %s of memory "
           "running a %s workload, here is my analysis.\n\n",
           facts.is_hdd ? "SATA HDD" : "NVMe SSD", facts.cpu_cores,
           facts.cpu_cores == 1 ? "" : "s",
           FormatBytesHuman(facts.memory_bytes).c_str(),
           facts.workload.empty() ? "key-value" : facts.workload.c_str());
  out += buf;

  if (facts.deteriorated) {
    out +=
        "Since the previous adjustment regressed performance, I am "
        "taking a more conservative step this round and avoiding the "
        "options changed last time.\n\n";
  }

  out += "Recommended changes:\n\n";
  for (size_t i = 0; i < changes.size(); i++) {
    snprintf(buf, sizeof(buf), "%zu. **%s = %s** — %s.\n", i + 1,
             changes[i].option.c_str(), changes[i].value.c_str(),
             changes[i].rationale.c_str());
    out += buf;
  }
  out += "\n";

  // Occasionally bury one change in prose instead of the block — the
  // interleaved-format case the paper's parser must handle.
  std::vector<Change> in_block = changes;
  if (!in_block.empty() && rng_.NextDouble() < cfg_.interleave_rate) {
    const Change c = in_block.back();
    in_block.pop_back();
    out += "Additionally, apply " + c.option + " = " + c.value +
           " directly; it pairs with the settings below.\n\n";
  }

  // Apply the changes onto the current options file and emit either the
  // full updated file or just the delta (both occur in real LLM
  // output).
  IniDoc updated = facts.current_options;
  const bool full_file =
      updated.sections().size() > 0 && rng_.NextDouble() < 0.5;
  out += full_file ? "Here is the complete updated configuration:\n\n"
                   : "Updated settings:\n\n";
  out += "```ini\n";
  if (full_file) {
    for (const auto& c : in_block) {
      // Keep each key in its existing section if present; default to
      // DBOptions otherwise.
      bool placed = false;
      for (const auto& sec : updated.sections()) {
        if (updated.Get(sec.name, c.option).has_value()) {
          updated.Set(sec.name, c.option, c.value);
          placed = true;
          break;
        }
      }
      if (!placed) updated.Set("DBOptions", c.option, c.value);
    }
    out += updated.Serialize();
  } else {
    for (const auto& c : in_block) {
      out += c.option + " = " + c.value + "\n";
    }
  }
  out += "```\n\n";
  out +=
      "Re-run the benchmark and share the results; I can refine "
      "further based on the stall counters and cache hit rate.\n";
  return out;
}

Status SimulatedExpertLlm::Complete(const std::vector<ChatMessage>& messages,
                                    std::string* response) {
  response->clear();
  if (messages.empty()) {
    return Status::InvalidArgument("empty chat");
  }
  // The newest user turn carries the tuning prompt.
  std::string prompt;
  for (auto it = messages.rbegin(); it != messages.rend(); ++it) {
    if (it->role == "user") {
      prompt = it->content;
      break;
    }
  }
  PromptFacts facts = ParsePrompt(prompt);
  std::vector<Change> changes = ProposeChanges(facts);
  *response = RenderResponse(facts, changes);
  calls_++;
  return Status::OK();
}

}  // namespace elmo::llm
