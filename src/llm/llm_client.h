// LlmClient: the chat-completion interface the tuning framework talks
// to. Three implementations:
//   SimulatedExpertLlm — rule-based GPT-4 stand-in (expert_llm.h); the
//                        default for every experiment in this repo.
//   ScriptedLlm        — replays canned responses (tests).
//   (a networked OpenAI client can be built on openai_protocol.h; this
//    repo ships the protocol layer but no sockets.)
#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace elmo::llm {

struct ChatMessage {
  std::string role;  // "system" | "user" | "assistant"
  std::string content;
};

class LlmClient {
 public:
  virtual ~LlmClient() = default;

  // Append-only chat semantics: `messages` is the full conversation so
  // far; *response receives the assistant turn.
  virtual Status Complete(const std::vector<ChatMessage>& messages,
                          std::string* response) = 0;

  virtual const char* Name() const = 0;
};

// Replays a fixed sequence of responses; repeats the last one when the
// script runs out. For tests.
class ScriptedLlm : public LlmClient {
 public:
  explicit ScriptedLlm(std::vector<std::string> responses)
      : responses_(std::move(responses)) {}

  Status Complete(const std::vector<ChatMessage>& messages,
                  std::string* response) override {
    (void)messages;
    if (responses_.empty()) {
      return Status::NotSupported("ScriptedLlm has no responses");
    }
    size_t idx = std::min(next_, responses_.size() - 1);
    next_++;
    *response = responses_[idx];
    return Status::OK();
  }

  const char* Name() const override { return "scripted"; }

  size_t calls() const { return next_; }

 private:
  std::vector<std::string> responses_;
  size_t next_ = 0;
};

}  // namespace elmo::llm
