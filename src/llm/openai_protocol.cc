#include "llm/openai_protocol.h"

#include "util/json.h"

namespace elmo::llm {

std::string BuildChatCompletionRequest(
    const ChatCompletionParams& params,
    const std::vector<ChatMessage>& messages) {
  json::Array msgs;
  for (const auto& m : messages) {
    json::Object o;
    o["role"] = m.role;
    o["content"] = m.content;
    msgs.push_back(std::move(o));
  }
  json::Object req;
  req["model"] = params.model;
  req["temperature"] = params.temperature;
  req["max_tokens"] = params.max_tokens;
  req["messages"] = std::move(msgs);
  return json::Value(std::move(req)).Dump();
}

Status ParseChatCompletionResponse(const std::string& body,
                                   std::string* content) {
  content->clear();
  json::Value root;
  Status s = json::Parse(body, &root);
  if (!s.ok()) return s;

  if (const json::Value* err = root.Find("error")) {
    std::string msg = "API error";
    if (const json::Value* m = err->Find("message");
        m != nullptr && m->is_string()) {
      msg = m->as_string();
    }
    return Status::IOError("openai", msg);
  }

  const json::Value* choices = root.Find("choices");
  if (choices == nullptr || !choices->is_array() ||
      choices->as_array().empty()) {
    return Status::Corruption("openai response has no choices");
  }
  const json::Value& first = choices->as_array()[0];
  const json::Value* message = first.Find("message");
  if (message == nullptr) {
    return Status::Corruption("openai choice has no message");
  }
  const json::Value* text = message->Find("content");
  if (text == nullptr || !text->is_string()) {
    return Status::Corruption("openai message has no content");
  }
  *content = text->as_string();
  return Status::OK();
}

}  // namespace elmo::llm
