// OpenAI Chat Completions wire format — request building and response
// parsing as pure functions, so a live GPT-4 client only needs to add a
// transport. Tested offline against captured payload shapes.
#pragma once

#include <string>
#include <vector>

#include "llm/llm_client.h"
#include "util/status.h"

namespace elmo::llm {

struct ChatCompletionParams {
  std::string model = "gpt-4";
  double temperature = 0.4;
  int max_tokens = 2048;
};

// Serializes a /v1/chat/completions request body.
std::string BuildChatCompletionRequest(const ChatCompletionParams& params,
                                       const std::vector<ChatMessage>& messages);

// Extracts choices[0].message.content. Handles API error bodies
// ({"error": {...}}) by returning a Status with the server message.
Status ParseChatCompletionResponse(const std::string& body,
                                   std::string* content);

}  // namespace elmo::llm
