// Offline IO-trace analyzer. Replays a trace produced by
// DB::StartIOTrace (env/io_trace.h) and aggregates per-file-kind and
// per-context byte/op/latency breakdowns plus a time-bucketed heatmap of
// bytes moved per kind — the "where do the device bytes go" evidence the
// tuning prompt consumes.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "env/env.h"
#include "env/io_trace.h"
#include "util/json.h"
#include "util/status.h"

namespace elmo::bench {

constexpr int kNumIOFileKinds = static_cast<int>(IOFileKind::kOther) + 1;
constexpr int kNumIOContexts = static_cast<int>(IOContextTag::kRecovery) + 1;
constexpr int kNumIOOps = static_cast<int>(IOOp::kRangeSync) + 1;

struct IOBreakdown {
  uint64_t ops = 0;
  uint64_t bytes = 0;
  uint64_t latency_us = 0;  // summed engine-clock latency
};

struct IOAnalysis {
  uint64_t records = 0;
  uint64_t base_ts_us = 0;
  uint64_t first_ts_us = 0;
  uint64_t last_ts_us = 0;

  std::array<IOBreakdown, kNumIOFileKinds> by_kind;
  std::array<IOBreakdown, kNumIOContexts> by_context;
  std::array<IOBreakdown, kNumIOOps> by_op;

  // Heatmap: bytes moved per [bucket][kind] over the trace's time span.
  uint64_t bucket_us = 0;
  std::vector<std::array<uint64_t, kNumIOFileKinds>> heatmap;

  uint64_t total_bytes() const;
  uint64_t total_latency_us() const;

  json::Object ToJson() const;
  // Human-readable tables (elmo_dump / bench report).
  std::string ToText() const;
  // Compact per-kind + per-context summary for the tuning prompt.
  std::string ToPromptText() const;
};

// Read the trace at `path` through `env` and aggregate. The heatmap gets
// at most `heatmap_buckets` buckets (0 disables it). Fails with
// Corruption on a damaged trace.
Status AnalyzeIOTrace(Env* env, const std::string& path,
                      size_t heatmap_buckets, IOAnalysis* out);

}  // namespace elmo::bench
