#include "bench_kit/trace_replay.h"

#include "bench_kit/generators.h"
#include "lsm/trace.h"

namespace elmo::bench {

Status ReplayTrace(Env* env, const std::string& trace_path, lsm::DB* db,
                   bool preserve_timing, ReplayStats* stats) {
  *stats = ReplayStats();
  lsm::TraceReader reader(env);
  Status s = reader.Open(trace_path);
  if (!s.ok()) return s;

  // Same seed on every replay: a record's value depends only on its
  // size and position, keeping replays byte-deterministic.
  ValueGenerator values(0x7ace);
  const uint64_t replay_start = env->NowMicros();
  const uint64_t trace_base = reader.base_ts_us();
  uint64_t last_ts = trace_base;

  lsm::TraceRecord rec;
  bool eof = false;
  while (true) {
    s = reader.Next(&rec, &eof);
    if (!s.ok()) return s;
    if (eof) break;

    if (preserve_timing && rec.ts_us > trace_base) {
      const uint64_t target = replay_start + (rec.ts_us - trace_base);
      const uint64_t now = env->NowMicros();
      if (target > now) {
        env->SleepForMicroseconds(target - now);
      }
    }

    Status op_status;
    switch (rec.op) {
      case lsm::TraceOp::kPut:
        op_status = db->Put({}, rec.key, values.Generate(rec.value_size));
        stats->puts++;
        break;
      case lsm::TraceOp::kDelete:
        op_status = db->Delete({}, rec.key);
        stats->deletes++;
        break;
      case lsm::TraceOp::kGet: {
        std::string value;
        op_status = db->Get({}, rec.key, &value);
        if (op_status.IsNotFound()) op_status = Status::OK();
        stats->gets++;
        break;
      }
    }
    stats->ops++;
    if (!op_status.ok()) stats->failed++;
    if (rec.ts_us > last_ts) last_ts = rec.ts_us;
  }

  stats->trace_span_us = last_ts - trace_base;
  stats->replay_elapsed_us = env->NowMicros() - replay_start;
  return Status::OK();
}

}  // namespace elmo::bench
