// Offline span-trace analyzer: latency attribution + Perfetto export.
//
// Replays a slow-op span trace produced by DB::StartSpanTrace
// (lsm/span.h) and answers "where did the tail latency go": for each
// root op kind it computes duration percentiles over the captured trees
// and decomposes the tail (trees at or above the p99 cut) into
// per-child-phase self-time shares plus the root's own self time. The
// shares are fractions of total tail root duration, so they sum to
// ~100% by construction.
//
// ExportChromeTrace renders the same trace as Chrome trace-event JSON
// (chrome://tracing or https://ui.perfetto.dev): foreground ops on
// pid 1 (one track per engine thread), background flush/compaction
// trees on pid 2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "env/env.h"
#include "lsm/span.h"
#include "util/json.h"
#include "util/status.h"

namespace elmo::bench {

// Attribution for one root-span kind (write/get/iter_seek/iter_next/
// flush/compaction).
struct SpanOpAttribution {
  std::string op;  // SpanKindName of the root
  uint64_t count = 0;

  // Root-duration percentiles over every captured tree of this kind.
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  uint64_t p999_us = 0;
  uint64_t max_us = 0;
  double mean_us = 0;

  // Tail decomposition over trees with root duration >= p99_us: each
  // component's share of the summed tail root time, in [0,1].
  struct Component {
    std::string name;  // child SpanKindName, or "self" for root self-time
    double share = 0;
    uint64_t total_us = 0;  // summed micros across the tail trees
  };
  std::vector<Component> tail_components;
  uint64_t tail_trees = 0;  // trees in the tail sample
};

struct SpanAttribution {
  uint64_t trees = 0;    // trees read from the trace
  uint64_t slow = 0;     // flagged kSpanTreeSlow
  uint64_t sampled = 0;  // flagged kSpanTreeSampled
  uint64_t base_ts_us = 0;

  std::vector<SpanOpAttribution> ops;  // one entry per root kind seen

  json::Object ToJson() const;
  // Human-readable attribution tables (elmo_dump / bench report).
  std::string ToText() const;
  // Compact per-op p99 decomposition for the tuning prompt.
  std::string ToPromptText() const;
};

// Read the span trace at `path` through `env` and attribute. Fails with
// Corruption on a damaged trace; an empty trace yields empty `ops`.
Status AnalyzeSpanTrace(Env* env, const std::string& path,
                        SpanAttribution* out);

// Render the span trace as Chrome trace-event JSON. Foreground root
// kinds map to pid 1 / tid = engine thread id; background jobs (flush,
// compaction) to pid 2. Child spans become nested "X" events.
Status ExportChromeTrace(Env* env, const std::string& path,
                         std::string* json_out);

}  // namespace elmo::bench
