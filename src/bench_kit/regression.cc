#include "bench_kit/regression.h"

#include <cmath>
#include <cstdio>

#include "bench_kit/bench_runner.h"
#include "env/device_model.h"
#include "util/json.h"

namespace elmo::bench {

namespace {

// Committed BENCH files should be stable and readable: three decimals
// is far below any gate threshold and keeps %.17g noise out of diffs.
double RoundMetric(double v) { return std::round(v * 1000.0) / 1000.0; }

}  // namespace

std::vector<MatrixCell> DefaultMatrix(bool quick) {
  const auto nvme =
      HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd());
  const auto hdd = HardwareProfile::Make(4, 4, DeviceModel::SataHdd());

  auto scale = [quick](uint64_t full_ops) {
    return quick ? full_ops / 4 : full_ops;
  };

  std::vector<MatrixCell> cells;
  cells.push_back({"nvme_4c4g/fillrandom", nvme,
                   WorkloadSpec::FillRandom(scale(600000))});
  cells.push_back({"nvme_4c4g/readrandom", nvme,
                   WorkloadSpec::ReadRandom(scale(120000), scale(800000))});
  cells.push_back(
      {"nvme_4c4g/readwhilewriting", nvme,
       WorkloadSpec::ReadWhileWriting(scale(240000), scale(600000))});
  cells.push_back({"nvme_4c4g/seekrandom", nvme,
                   WorkloadSpec::SeekRandom(scale(32000), scale(600000),
                                            /*scan_length=*/50)});
  cells.push_back({"nvme_4c4g/mixgraph", nvme,
                   WorkloadSpec::Mixgraph(scale(240000))});
  if (!quick) {
    // The device axis only in the full (push-to-main) matrix: HDD cells
    // are slow and mostly move with the same code paths.
    cells.push_back({"hdd_4c4g/fillrandom", hdd,
                     WorkloadSpec::FillRandom(scale(400000))});
    cells.push_back({"hdd_4c4g/mixgraph", hdd,
                     WorkloadSpec::Mixgraph(scale(120000))});
  }
  return cells;
}

MetricMap MetricsFromResult(const BenchResult& r) {
  MetricMap m;
  m["ops_per_sec"] = RoundMetric(r.ops_per_sec);
  m["mb_per_sec"] = RoundMetric(r.mb_per_sec);
  m["p99_write_us"] = RoundMetric(r.p99_write_us());
  m["p99_read_us"] = RoundMetric(r.p99_read_us());
  m["p999_write_us"] = RoundMetric(r.p999_write_us());
  m["p999_read_us"] = RoundMetric(r.p999_read_us());
  m["stall_seconds"] = RoundMetric(r.write_stall_micros / 1e6);
  m["write_amp"] = RoundMetric(r.WriteAmplification());
  m["cache_hit_rate"] = RoundMetric(r.block_cache_hit_rate);
  m["flushes"] = static_cast<double>(r.flushes);
  m["compactions"] = static_cast<double>(r.compactions);

  // p99 tail-attribution shares from the run's span trace. The names
  // are FIXED and always emitted (0.0 when the trace captured no tail
  // for that op) so CompareMatrix never flags them as dropped metrics.
  static const struct {
    const char* metric;
    const char* op;
    const char* component;
  } kAttrMetrics[] = {
      {"attr_p99_write_wal_sync", "write", "wal_sync"},
      {"attr_p99_write_wal_append", "write", "wal_append"},
      {"attr_p99_write_memtable", "write", "memtable_insert"},
      {"attr_p99_write_stall", "write", "stall_wait"},
      {"attr_p99_write_self", "write", "self"},
      {"attr_p99_get_memtable", "get", "memtable_probe"},
      {"attr_p99_get_sst", "get", "sst_probe"},
      {"attr_p99_get_self", "get", "self"},
  };
  for (const auto& am : kAttrMetrics) m[am.metric] = 0.0;
  json::Value attr;
  if (!r.span_attribution_json.empty() &&
      json::Parse(r.span_attribution_json, &attr).ok() &&
      attr.is_object()) {
    if (const json::Value* ops = attr.Find("ops");
        ops != nullptr && ops->is_array()) {
      for (const json::Value& op : ops->as_array()) {
        if (!op.is_object()) continue;
        const json::Value* name = op.Find("op");
        const json::Value* comps = op.Find("tail_components");
        if (name == nullptr || !name->is_string() || comps == nullptr ||
            !comps->is_array()) {
          continue;
        }
        for (const json::Value& c : comps->as_array()) {
          if (!c.is_object()) continue;
          const json::Value* cname = c.Find("name");
          const json::Value* share = c.Find("share");
          if (cname == nullptr || !cname->is_string() || share == nullptr ||
              !share->is_number()) {
            continue;
          }
          for (const auto& am : kAttrMetrics) {
            if (name->as_string() == am.op &&
                cname->as_string() == am.component) {
              m[am.metric] = RoundMetric(share->as_double());
            }
          }
        }
      }
    }
  }
  return m;
}

const MetricMap* MatrixReport::Find(const std::string& name) const {
  for (const auto& [cell, metrics] : cells) {
    if (cell == name) return &metrics;
  }
  return nullptr;
}

std::string MatrixReport::ToJson() const {
  json::Object doc;
  doc["kind"] = "bench_matrix";
  doc["schema_version"] = schema_version;
  doc["git_sha"] = git_sha;
  doc["sim_seed"] = static_cast<int64_t>(seed);
  doc["mode"] = mode;
  json::Object cell_obj;
  for (const auto& [name, metrics] : cells) {
    json::Object mo;
    for (const auto& [k, v] : metrics) mo[k] = v;
    cell_obj[name] = std::move(mo);
  }
  doc["cells"] = std::move(cell_obj);
  return json::Value(std::move(doc)).Dump(2);
}

Status MatrixReport::FromJson(const std::string& text, MatrixReport* out) {
  json::Value doc;
  Status s = json::Parse(text, &doc);
  if (!s.ok()) return s;
  if (!doc.is_object()) {
    return Status::Corruption("bench_matrix", "top-level not an object");
  }
  const json::Value* kind = doc.Find("kind");
  if (kind == nullptr || !kind->is_string() ||
      kind->as_string() != "bench_matrix") {
    return Status::Corruption("bench_matrix", "missing kind=bench_matrix");
  }
  *out = MatrixReport();
  if (const json::Value* v = doc.Find("schema_version");
      v != nullptr && v->is_number()) {
    out->schema_version = static_cast<int>(v->as_int());
  } else {
    out->schema_version = 0;  // pre-versioned file; comparison refuses it
  }
  if (const json::Value* v = doc.Find("git_sha");
      v != nullptr && v->is_string()) {
    out->git_sha = v->as_string();
  }
  if (const json::Value* v = doc.Find("sim_seed");
      v != nullptr && v->is_number()) {
    out->seed = static_cast<uint64_t>(v->as_int());
  }
  if (const json::Value* v = doc.Find("mode");
      v != nullptr && v->is_string()) {
    out->mode = v->as_string();
  }
  const json::Value* cells = doc.Find("cells");
  if (cells == nullptr || !cells->is_object()) {
    return Status::Corruption("bench_matrix", "missing cells object");
  }
  for (const auto& [name, metrics] : cells->as_object()) {
    if (!metrics.is_object()) {
      return Status::Corruption("bench_matrix",
                                "cell " + name + " not an object");
    }
    MetricMap m;
    for (const auto& [k, v] : metrics.as_object()) {
      if (v.is_number()) m[k] = v.as_double();
    }
    out->cells.emplace_back(name, std::move(m));
  }
  return Status::OK();
}

std::string MatrixReport::MetricsFingerprint() const {
  json::Object cell_obj;
  for (const auto& [name, metrics] : cells) {
    json::Object mo;
    for (const auto& [k, v] : metrics) mo[k] = v;
    cell_obj[name] = std::move(mo);
  }
  return json::Value(std::move(cell_obj)).Dump();
}

MatrixReport RunMatrix(
    const std::vector<MatrixCell>& cells, uint64_t seed,
    const std::string& mode,
    const std::function<void(const MatrixCell&, const MetricMap&)>& on_cell,
    const std::function<void(const MatrixCell&, const BenchResult&)>&
        on_result) {
  MatrixReport report;
  report.git_sha = BuildGitSha();
  report.seed = seed;
  report.mode = mode;
  for (const auto& cell : cells) {
    // A fresh runner per cell: no state leaks between cells, and any
    // subset of the matrix reproduces the full run's numbers.
    BenchRunner runner(cell.hw, seed);
    BenchResult result = runner.Run(cell.spec, lsm::Options());
    MetricMap metrics = MetricsFromResult(result);
    if (on_cell) on_cell(cell, metrics);
    if (on_result) on_result(cell, result);
    report.cells.emplace_back(cell.name, std::move(metrics));
  }
  return report;
}

namespace {

// Gate table: how each metric participates in the breach decision.
enum class Gate { kThroughputDrop, kP99Rise, kP999Rise, kInfoOnly };

Gate GateFor(const std::string& metric) {
  if (metric == "ops_per_sec" || metric == "mb_per_sec") {
    return metric == "ops_per_sec" ? Gate::kThroughputDrop : Gate::kInfoOnly;
  }
  if (metric == "p99_write_us" || metric == "p99_read_us") {
    return Gate::kP99Rise;
  }
  if (metric == "p999_write_us" || metric == "p999_read_us") {
    return Gate::kP999Rise;
  }
  return Gate::kInfoOnly;
}

}  // namespace

CompareReport CompareMatrix(const MatrixReport& baseline,
                            const MatrixReport& current,
                            const RegressionThresholds& thresholds) {
  CompareReport out;
  out.baseline_git_sha = baseline.git_sha;
  out.current_git_sha = current.git_sha;

  if (baseline.schema_version != current.schema_version) {
    out.incomparable_reason =
        "schema_version mismatch: baseline v" +
        std::to_string(baseline.schema_version) + " vs current v" +
        std::to_string(current.schema_version);
    return out;
  }
  if (baseline.mode != current.mode) {
    out.incomparable_reason = "mode mismatch: baseline '" + baseline.mode +
                              "' vs current '" + current.mode + "'";
    return out;
  }
  out.comparable = true;

  char buf[256];
  for (const auto& [cell, base_metrics] : baseline.cells) {
    const MetricMap* cur_metrics = current.Find(cell);
    if (cur_metrics == nullptr) {
      out.missing_cells.push_back(cell);
      continue;
    }
    for (const auto& [metric, base_v] : base_metrics) {
      auto it = cur_metrics->find(metric);
      if (it == cur_metrics->end()) {
        out.missing_metrics.push_back(cell + ": " + metric);
        continue;
      }
      const double cur_v = it->second;
      if (base_v == 0 && cur_v == 0) continue;

      MetricDelta d;
      d.cell = cell;
      d.metric = metric;
      d.baseline = base_v;
      d.current = cur_v;
      d.delta_pct =
          base_v == 0 ? 0 : (cur_v - base_v) / base_v * 100.0;

      const Gate gate = GateFor(metric);
      d.gated = gate != Gate::kInfoOnly && base_v != 0;
      if (d.gated) {
        switch (gate) {
          case Gate::kThroughputDrop:
            d.breach = d.delta_pct < -thresholds.max_throughput_drop_pct;
            break;
          case Gate::kP99Rise:
            d.breach = d.delta_pct > thresholds.max_p99_rise_pct;
            break;
          case Gate::kP999Rise:
            d.breach = d.delta_pct > thresholds.max_p999_rise_pct;
            break;
          case Gate::kInfoOnly:
            break;
        }
      }
      if (d.breach) {
        snprintf(buf, sizeof(buf), "%s: %s %.3f -> %.3f (%+.1f%%)",
                 cell.c_str(), metric.c_str(), d.baseline, d.current,
                 d.delta_pct);
        out.breaches.push_back(buf);
      }
      out.deltas.push_back(std::move(d));
    }
  }
  for (const auto& [cell, metrics] : current.cells) {
    (void)metrics;
    if (baseline.Find(cell) == nullptr) out.new_cells.push_back(cell);
  }
  return out;
}

std::string CompareReport::ToText() const {
  std::string out;
  char buf[256];
  if (!comparable) {
    return "INCOMPARABLE: " + incomparable_reason + "\n";
  }
  snprintf(buf, sizeof(buf), "baseline %s vs current %s\n",
           baseline_git_sha.c_str(), current_git_sha.c_str());
  out += buf;
  out +=
      "cell                           metric          baseline     "
      "current    delta\n";
  for (const auto& d : deltas) {
    snprintf(buf, sizeof(buf), "%-30s %-14s %11.3f %11.3f %+7.1f%%%s%s\n",
             d.cell.c_str(), d.metric.c_str(), d.baseline, d.current,
             d.delta_pct, d.gated ? "" : "  (info)",
             d.breach ? "  << BREACH" : "");
    out += buf;
  }
  for (const auto& c : missing_cells) {
    out += "MISSING CELL (in current run): " + c + "\n";
  }
  for (const auto& m : missing_metrics) {
    out += "MISSING METRIC (in current run): " + m + "\n";
  }
  for (const auto& c : new_cells) {
    out += "new cell (no baseline): " + c + "\n";
  }
  if (HasBreach()) {
    out += "RESULT: REGRESSION BREACH (" +
           std::to_string(breaches.size() + missing_cells.size() +
                          missing_metrics.size()) +
           " finding(s))\n";
  } else {
    out += "RESULT: ok\n";
  }
  return out;
}

std::string CompareReport::ToJson() const {
  json::Object doc;
  doc["kind"] = "bench_matrix_diff";
  doc["comparable"] = comparable;
  doc["incomparable_reason"] = incomparable_reason;
  doc["baseline_git_sha"] = baseline_git_sha;
  doc["current_git_sha"] = current_git_sha;
  doc["has_breach"] = HasBreach();
  json::Array deltas_arr;
  for (const auto& d : deltas) {
    json::Object o;
    o["cell"] = d.cell;
    o["metric"] = d.metric;
    o["baseline"] = d.baseline;
    o["current"] = d.current;
    o["delta_pct"] = d.delta_pct;
    o["gated"] = d.gated;
    o["breach"] = d.breach;
    deltas_arr.push_back(json::Value(std::move(o)));
  }
  doc["deltas"] = std::move(deltas_arr);
  auto to_arr = [](const std::vector<std::string>& v) {
    json::Array a;
    for (const auto& s : v) a.push_back(json::Value(s));
    return a;
  };
  doc["missing_cells"] = to_arr(missing_cells);
  doc["missing_metrics"] = to_arr(missing_metrics);
  doc["new_cells"] = to_arr(new_cells);
  doc["breaches"] = to_arr(breaches);
  return json::Value(std::move(doc)).Dump(2);
}

}  // namespace elmo::bench
