#include "bench_kit/report.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/json.h"
#include "util/string_util.h"

namespace elmo::bench {

#ifndef ELMO_GIT_SHA
#define ELMO_GIT_SHA "unknown"
#endif

const char* BuildGitSha() { return ELMO_GIT_SHA; }

std::string TimeSeriesTable(const std::vector<lsm::IntervalSample>& samples,
                            size_t max_rows) {
  if (samples.empty()) return "";
  const size_t stride =
      max_rows == 0 ? 1 : std::max<size_t>(1, (samples.size() + max_rows - 1) /
                                                  max_rows);
  std::string out =
      "    t(s)      ops/s   p99w(us)   p99r(us)  stall%  L0  pend(MB)\n";
  char buf[160];
  for (size_t i = 0; i < samples.size(); i += stride) {
    // Keep the final sample visible even when striding skips it.
    const lsm::IntervalSample& s =
        (i + stride >= samples.size()) ? samples.back() : samples[i];
    snprintf(buf, sizeof(buf),
             "%8.2f %10.0f %10.1f %10.1f %6.1f %3d %9.1f\n",
             s.ts_us / 1e6, s.ops_per_sec, s.p99_write_us, s.p99_get_us,
             s.stall_fraction * 100.0, s.l0_files,
             s.pending_compaction_bytes / 1048576.0);
    out += buf;
    if (i + stride >= samples.size()) break;
  }
  return out;
}

std::string BenchResult::IoCacheEvidence() const {
  std::string out;
  if (!io_breakdown.empty()) out += io_breakdown;
  if (!cache_sim_summary.empty()) {
    if (!out.empty()) out += "\n";
    out += cache_sim_summary;
  }
  return out;
}

std::string BenchResult::LatencyAttributionEvidence() const {
  return span_attribution_summary;
}

std::string BenchResult::HealthEvidence() const { return health_text; }

std::string BenchResult::ToReport() const {
  std::string out;
  char buf[512];
  double micros_per_op =
      ops == 0 ? 0 : elapsed_seconds * 1e6 / static_cast<double>(ops);
  snprintf(buf, sizeof(buf),
           "%-22s : %11.3f micros/op %.0f ops/sec; %.1f MB/s; "
           "%llu ops done; elapsed %.3f seconds\n",
           workload.c_str(), micros_per_op, ops_per_sec, mb_per_sec,
           (unsigned long long)ops, elapsed_seconds);
  out += buf;

  if (write_micros.Count() > 0) {
    out += "Microseconds per write:\n";
    out += write_micros.ToString();
  }
  if (read_micros.Count() > 0) {
    out += "Microseconds per read:\n";
    out += read_micros.ToString();
  }

  snprintf(buf, sizeof(buf),
           "Stalls: slowdown %llu, stop %llu, stall-micros %llu, "
           "os-writeback-bursts %llu\n",
           (unsigned long long)write_slowdowns,
           (unsigned long long)write_stops,
           (unsigned long long)write_stall_micros,
           (unsigned long long)writeback_stalls);
  out += buf;
  snprintf(buf, sizeof(buf),
           "Background: flushes %llu, compactions %llu; block cache hit "
           "rate %.4f\n",
           (unsigned long long)flushes, (unsigned long long)compactions,
           block_cache_hit_rate);
  out += buf;
  if (!level_summary.empty()) {
    out += "LSM shape: " + level_summary + "\n";
  }
  if (!engine_stats.empty()) {
    out += "Engine statistics:\n";
    out += engine_stats;
    if (engine_stats.back() != '\n') out += '\n';
  }
  if (!timeseries.empty()) {
    // Rows deliberately avoid the "micros/op ... ops/sec" shape so
    // ParseReport's throughput scan cannot match them.
    out += "Throughput over time:\n";
    out += TimeSeriesTable(timeseries, 20);
  }
  const std::string evidence = IoCacheEvidence();
  if (!evidence.empty()) {
    out += "IO & cache evidence:\n";
    out += evidence;
    if (evidence.back() != '\n') out += '\n';
  }
  if (!span_attribution_text.empty()) {
    out += "Latency attribution:\n";
    out += span_attribution_text;
    if (span_attribution_text.back() != '\n') out += '\n';
  }
  if (!health_text.empty()) {
    out += "Health & diagnosis:\n";
    out += health_text;
    if (health_text.back() != '\n') out += '\n';
  }
  return out;
}

std::string BenchResult::ToJson() const {
  json::Object doc;
  // Self-description first: every BENCH artifact carries the schema
  // version, the build's git revision and the SimEnv seed, so files
  // from different PRs are comparable (or provably not).
  doc["schema_version"] = kBenchSchemaVersion;
  doc["git_sha"] = BuildGitSha();
  doc["sim_seed"] = static_cast<int64_t>(sim_seed);
  doc["workload"] = workload;
  doc["ops"] = static_cast<int64_t>(ops);
  doc["elapsed_seconds"] = elapsed_seconds;
  doc["ops_per_sec"] = ops_per_sec;
  doc["mb_per_sec"] = mb_per_sec;
  doc["p99_write_us"] = p99_write_us();
  doc["p99_read_us"] = p99_read_us();
  doc["write_stall_micros"] = static_cast<int64_t>(write_stall_micros);
  doc["write_slowdowns"] = static_cast<int64_t>(write_slowdowns);
  doc["write_stops"] = static_cast<int64_t>(write_stops);
  doc["flushes"] = static_cast<int64_t>(flushes);
  doc["compactions"] = static_cast<int64_t>(compactions);
  doc["block_cache_hit_rate"] = block_cache_hit_rate;
  doc["level_summary"] = level_summary;
  doc["p999_write_us"] = p999_write_us();
  doc["p999_read_us"] = p999_read_us();
  doc["user_bytes_written"] = static_cast<int64_t>(user_bytes_written);
  doc["wal_bytes"] = static_cast<int64_t>(wal_bytes);
  doc["flush_bytes"] = static_cast<int64_t>(flush_bytes);
  doc["compaction_bytes_written"] =
      static_cast<int64_t>(compaction_bytes_written);
  doc["write_amplification"] = WriteAmplification();
  // Embed the engine's own time-series JSON as a sub-document so the
  // artifact round-trips through the same parser as the property.
  json::Value series;
  if (json::Parse(lsm::TimeSeriesToJson(sample_interval_us, 0, timeseries),
                  &series)
          .ok()) {
    doc["timeseries"] = std::move(series);
  }
  // The offline-analyzer documents ride along so one artifact carries
  // the whole run: throughput, telemetry, IO breakdown, miss-ratio curve.
  json::Value io_analysis;
  if (!io_analysis_json.empty() &&
      json::Parse(io_analysis_json, &io_analysis).ok()) {
    doc["io_analysis"] = std::move(io_analysis);
  }
  json::Value cache_sim;
  if (!cache_sim_json.empty() &&
      json::Parse(cache_sim_json, &cache_sim).ok()) {
    doc["cache_sim"] = std::move(cache_sim);
  }
  json::Value span_attr;
  if (!span_attribution_json.empty() &&
      json::Parse(span_attribution_json, &span_attr).ok()) {
    doc["span_attribution"] = std::move(span_attr);
  }
  json::Value health;
  if (!health_json.empty() && json::Parse(health_json, &health).ok()) {
    doc["health"] = std::move(health);
  }
  return json::Value(std::move(doc)).Dump(2);
}

namespace {

// Pull "P99: <x>" and "Average: <x>" out of a histogram block.
void ParseHistogramBlock(const std::vector<std::string>& lines, size_t start,
                         double* p99, double* avg) {
  for (size_t i = start; i < lines.size() && i < start + 4; i++) {
    const std::string& line = lines[i];
    // Stop at the next histogram header so this block's numbers are not
    // overwritten by the following one's.
    if (line.find("Microseconds per") != std::string::npos) break;
    size_t pos = line.find("P99: ");
    if (pos != std::string::npos) {
      auto v = ParseDouble(line.substr(pos + 5,
                                       line.find(' ', pos + 5) - pos - 5));
      if (v.has_value()) *p99 = *v;
    }
    pos = line.find("Average: ");
    if (pos != std::string::npos) {
      size_t begin = pos + 9;
      size_t end = line.find(' ', begin);
      auto v = ParseDouble(line.substr(begin, end - begin));
      if (v.has_value()) *avg = *v;
    }
  }
}

}  // namespace

std::optional<ParsedReport> ParseReport(const std::string& text) {
  ParsedReport r;
  bool found_throughput = false;
  std::vector<std::string> lines = SplitLines(text);
  for (size_t i = 0; i < lines.size(); i++) {
    const std::string& line = lines[i];
    size_t ops_pos = line.find(" ops/sec");
    if (!found_throughput && ops_pos != std::string::npos &&
        line.find("micros/op") != std::string::npos) {
      // "<workload> : X micros/op Y ops/sec; ..."
      size_t colon = line.find(':');
      if (colon != std::string::npos) {
        r.workload = TrimWhitespace(line.substr(0, colon));
      }
      size_t num_begin = line.rfind(' ', ops_pos - 1);
      // ops_pos points at the space before "ops/sec"; the number sits
      // between num_begin and ops_pos.
      size_t mid = line.find("micros/op");
      size_t begin = mid + strlen("micros/op");
      auto v = ParseDouble(TrimWhitespace(
          line.substr(begin, ops_pos - begin)));
      (void)num_begin;
      if (v.has_value()) {
        r.ops_per_sec = *v;
        found_throughput = true;
      }
    } else if (line.find("Microseconds per write:") != std::string::npos) {
      ParseHistogramBlock(lines, i + 1, &r.p99_write_us, &r.avg_write_us);
    } else if (line.find("Microseconds per read:") != std::string::npos) {
      ParseHistogramBlock(lines, i + 1, &r.p99_read_us, &r.avg_read_us);
    }
  }
  if (!found_throughput) return std::nullopt;
  return r;
}

}  // namespace elmo::bench
