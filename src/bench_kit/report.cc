#include "bench_kit/report.h"

#include <cstdio>
#include <cstring>

#include "util/string_util.h"

namespace elmo::bench {

std::string BenchResult::ToReport() const {
  std::string out;
  char buf[512];
  double micros_per_op =
      ops == 0 ? 0 : elapsed_seconds * 1e6 / static_cast<double>(ops);
  snprintf(buf, sizeof(buf),
           "%-22s : %11.3f micros/op %.0f ops/sec; %.1f MB/s; "
           "%llu ops done; elapsed %.3f seconds\n",
           workload.c_str(), micros_per_op, ops_per_sec, mb_per_sec,
           (unsigned long long)ops, elapsed_seconds);
  out += buf;

  if (write_micros.Count() > 0) {
    out += "Microseconds per write:\n";
    out += write_micros.ToString();
  }
  if (read_micros.Count() > 0) {
    out += "Microseconds per read:\n";
    out += read_micros.ToString();
  }

  snprintf(buf, sizeof(buf),
           "Stalls: slowdown %llu, stop %llu, stall-micros %llu, "
           "os-writeback-bursts %llu\n",
           (unsigned long long)write_slowdowns,
           (unsigned long long)write_stops,
           (unsigned long long)write_stall_micros,
           (unsigned long long)writeback_stalls);
  out += buf;
  snprintf(buf, sizeof(buf),
           "Background: flushes %llu, compactions %llu; block cache hit "
           "rate %.4f\n",
           (unsigned long long)flushes, (unsigned long long)compactions,
           block_cache_hit_rate);
  out += buf;
  if (!level_summary.empty()) {
    out += "LSM shape: " + level_summary + "\n";
  }
  if (!engine_stats.empty()) {
    out += "Engine statistics:\n";
    out += engine_stats;
    if (engine_stats.back() != '\n') out += '\n';
  }
  return out;
}

namespace {

// Pull "P99: <x>" and "Average: <x>" out of a histogram block.
void ParseHistogramBlock(const std::vector<std::string>& lines, size_t start,
                         double* p99, double* avg) {
  for (size_t i = start; i < lines.size() && i < start + 4; i++) {
    const std::string& line = lines[i];
    // Stop at the next histogram header so this block's numbers are not
    // overwritten by the following one's.
    if (line.find("Microseconds per") != std::string::npos) break;
    size_t pos = line.find("P99: ");
    if (pos != std::string::npos) {
      auto v = ParseDouble(line.substr(pos + 5,
                                       line.find(' ', pos + 5) - pos - 5));
      if (v.has_value()) *p99 = *v;
    }
    pos = line.find("Average: ");
    if (pos != std::string::npos) {
      size_t begin = pos + 9;
      size_t end = line.find(' ', begin);
      auto v = ParseDouble(line.substr(begin, end - begin));
      if (v.has_value()) *avg = *v;
    }
  }
}

}  // namespace

std::optional<ParsedReport> ParseReport(const std::string& text) {
  ParsedReport r;
  bool found_throughput = false;
  std::vector<std::string> lines = SplitLines(text);
  for (size_t i = 0; i < lines.size(); i++) {
    const std::string& line = lines[i];
    size_t ops_pos = line.find(" ops/sec");
    if (!found_throughput && ops_pos != std::string::npos &&
        line.find("micros/op") != std::string::npos) {
      // "<workload> : X micros/op Y ops/sec; ..."
      size_t colon = line.find(':');
      if (colon != std::string::npos) {
        r.workload = TrimWhitespace(line.substr(0, colon));
      }
      size_t num_begin = line.rfind(' ', ops_pos - 1);
      // ops_pos points at the space before "ops/sec"; the number sits
      // between num_begin and ops_pos.
      size_t mid = line.find("micros/op");
      size_t begin = mid + strlen("micros/op");
      auto v = ParseDouble(TrimWhitespace(
          line.substr(begin, ops_pos - begin)));
      (void)num_begin;
      if (v.has_value()) {
        r.ops_per_sec = *v;
        found_throughput = true;
      }
    } else if (line.find("Microseconds per write:") != std::string::npos) {
      ParseHistogramBlock(lines, i + 1, &r.p99_write_us, &r.avg_write_us);
    } else if (line.find("Microseconds per read:") != std::string::npos) {
      ParseHistogramBlock(lines, i + 1, &r.p99_read_us, &r.avg_read_us);
    }
  }
  if (!found_throughput) return std::nullopt;
  return r;
}

}  // namespace elmo::bench
