// Perf-trajectory regression harness: runs a fixed, SimEnv-seeded
// workload matrix, persists the per-cell metrics as a schema-versioned
// BENCH_matrix.json at the repo root, and diffs a fresh run against the
// previously committed file with configurable regression thresholds.
// The committed file is the repo's performance trajectory: every PR
// regenerates it deterministically and CI fails when a cell regresses
// beyond the thresholds (tools/elmo_bench_matrix is the CLI driver).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_kit/report.h"
#include "bench_kit/workload.h"
#include "env/hardware_profile.h"
#include "util/status.h"

namespace elmo::bench {

// One matrix entry: a named (hardware, workload) cell. Names are stable
// keys ("nvme_4c4g/fillrandom") — the comparison joins on them.
struct MatrixCell {
  std::string name;
  HardwareProfile hw;
  WorkloadSpec spec;
};

// The fixed matrix CI runs. `quick` is the PR-sized variant (same cells,
// reduced op counts) — comparisons are only valid between same-mode
// files, which the mode field enforces.
std::vector<MatrixCell> DefaultMatrix(bool quick);

// Flat metric block of one cell. A map (not a struct) so the comparison
// is generic over metric names and older files with missing metrics are
// detected rather than silently defaulted.
using MetricMap = std::map<std::string, double>;

MetricMap MetricsFromResult(const BenchResult& r);

struct MatrixReport {
  int schema_version = kBenchSchemaVersion;
  std::string git_sha;
  uint64_t seed = 0;
  std::string mode;  // "quick" | "full"
  // Insertion order preserved (matrix order) for readable reports.
  std::vector<std::pair<std::string, MetricMap>> cells;

  const MetricMap* Find(const std::string& name) const;

  std::string ToJson() const;
  static Status FromJson(const std::string& text, MatrixReport* out);

  // The metric blocks only — no git SHA, no metadata. Two same-seed
  // runs must produce identical fingerprints (test-enforced).
  std::string MetricsFingerprint() const;
};

// Runs every cell on a fresh seeded BenchRunner under the engine's
// default options (the trajectory tracks the *engine*, not a tuner).
// `on_cell` (optional) observes progress; `on_result` (optional) sees
// the full BenchResult per cell — how the CLI exports span-trace /
// Perfetto / attribution artifacts without RunMatrix knowing about
// filesystems.
MatrixReport RunMatrix(
    const std::vector<MatrixCell>& cells, uint64_t seed,
    const std::string& mode,
    const std::function<void(const MatrixCell&, const MetricMap&)>& on_cell =
        {},
    const std::function<void(const MatrixCell&, const BenchResult&)>&
        on_result = {});

struct RegressionThresholds {
  // Throughput may drop at most this much before the gate trips.
  double max_throughput_drop_pct = 15.0;
  // p99 latencies may rise at most this much.
  double max_p99_rise_pct = 25.0;
  // p99.9 is noisier; wider gate.
  double max_p999_rise_pct = 40.0;
};

struct MetricDelta {
  std::string cell;
  std::string metric;
  double baseline = 0;
  double current = 0;
  double delta_pct = 0;  // (current - baseline) / baseline * 100
  bool gated = false;    // participates in the breach decision
  bool breach = false;
};

struct CompareReport {
  // False when the files cannot be diffed at all (schema version or
  // mode mismatch); the gate fails closed with `incomparable_reason`.
  bool comparable = false;
  std::string incomparable_reason;

  // Metadata of the two sides, echoed for the report header.
  std::string baseline_git_sha;
  std::string current_git_sha;

  std::vector<MetricDelta> deltas;
  // Cells/metrics present in the baseline but absent from the current
  // run — a silently dropped measurement is treated as a breach.
  std::vector<std::string> missing_cells;
  std::vector<std::string> missing_metrics;  // "cell: metric"
  // Present only in the current run; informational.
  std::vector<std::string> new_cells;

  // Human-readable one-liners for every tripped gate.
  std::vector<std::string> breaches;

  bool HasBreach() const {
    return !comparable || !breaches.empty() || !missing_cells.empty() ||
           !missing_metrics.empty();
  }

  std::string ToText() const;
  std::string ToJson() const;
};

CompareReport CompareMatrix(const MatrixReport& baseline,
                            const MatrixReport& current,
                            const RegressionThresholds& thresholds = {});

}  // namespace elmo::bench
