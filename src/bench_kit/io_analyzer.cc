#include "bench_kit/io_analyzer.h"

#include <algorithm>
#include <cstdio>

namespace elmo::bench {

namespace {

json::Object BreakdownToJson(const IOBreakdown& b) {
  json::Object o;
  o["ops"] = static_cast<int64_t>(b.ops);
  o["bytes"] = static_cast<int64_t>(b.bytes);
  o["latency_us"] = static_cast<int64_t>(b.latency_us);
  return o;
}

void AppendBreakdownLine(std::string* out, const char* name,
                         const IOBreakdown& b) {
  if (b.ops == 0) return;
  char buf[160];
  const double avg_us =
      static_cast<double>(b.latency_us) / static_cast<double>(b.ops);
  snprintf(buf, sizeof(buf),
           "  %-16s ops %10llu  bytes %12llu  avg latency %8.1f us\n", name,
           (unsigned long long)b.ops, (unsigned long long)b.bytes, avg_us);
  *out += buf;
}

}  // namespace

uint64_t IOAnalysis::total_bytes() const {
  uint64_t total = 0;
  for (const IOBreakdown& b : by_kind) total += b.bytes;
  return total;
}

uint64_t IOAnalysis::total_latency_us() const {
  uint64_t total = 0;
  for (const IOBreakdown& b : by_kind) total += b.latency_us;
  return total;
}

json::Object IOAnalysis::ToJson() const {
  json::Object doc;
  doc["records"] = static_cast<int64_t>(records);
  doc["base_ts_us"] = static_cast<int64_t>(base_ts_us);
  doc["first_ts_us"] = static_cast<int64_t>(first_ts_us);
  doc["last_ts_us"] = static_cast<int64_t>(last_ts_us);
  doc["total_bytes"] = static_cast<int64_t>(total_bytes());

  json::Object kinds;
  for (int k = 0; k < kNumIOFileKinds; k++) {
    if (by_kind[k].ops == 0) continue;
    kinds[IOFileKindName(static_cast<IOFileKind>(k))] =
        BreakdownToJson(by_kind[k]);
  }
  doc["by_kind"] = std::move(kinds);

  json::Object contexts;
  for (int c = 0; c < kNumIOContexts; c++) {
    if (by_context[c].ops == 0) continue;
    contexts[IOContextTagName(static_cast<IOContextTag>(c))] =
        BreakdownToJson(by_context[c]);
  }
  doc["by_context"] = std::move(contexts);

  json::Object ops;
  for (int o = 0; o < kNumIOOps; o++) {
    if (by_op[o].ops == 0) continue;
    ops[IOOpName(static_cast<IOOp>(o))] = BreakdownToJson(by_op[o]);
  }
  doc["by_op"] = std::move(ops);

  doc["heatmap_bucket_us"] = static_cast<int64_t>(bucket_us);
  json::Array rows;
  rows.reserve(heatmap.size());
  for (const auto& row : heatmap) {
    json::Object cell;
    for (int k = 0; k < kNumIOFileKinds; k++) {
      if (row[k] == 0) continue;
      cell[IOFileKindName(static_cast<IOFileKind>(k))] =
          static_cast<int64_t>(row[k]);
    }
    rows.emplace_back(std::move(cell));
  }
  doc["heatmap_bytes"] = std::move(rows);
  return doc;
}

std::string IOAnalysis::ToText() const {
  std::string out;
  char buf[160];
  snprintf(buf, sizeof(buf),
           "io trace: %llu records, %llu bytes moved, span %.3f s\n",
           (unsigned long long)records, (unsigned long long)total_bytes(),
           static_cast<double>(last_ts_us - first_ts_us) / 1e6);
  out += buf;

  out += "by file kind:\n";
  for (int k = 0; k < kNumIOFileKinds; k++) {
    AppendBreakdownLine(&out, IOFileKindName(static_cast<IOFileKind>(k)),
                        by_kind[k]);
  }
  out += "by context:\n";
  for (int c = 0; c < kNumIOContexts; c++) {
    AppendBreakdownLine(&out, IOContextTagName(static_cast<IOContextTag>(c)),
                        by_context[c]);
  }
  out += "by op:\n";
  for (int o = 0; o < kNumIOOps; o++) {
    AppendBreakdownLine(&out, IOOpName(static_cast<IOOp>(o)), by_op[o]);
  }

  if (!heatmap.empty()) {
    snprintf(buf, sizeof(buf), "heatmap (%zu buckets x %llu us, bytes):\n",
             heatmap.size(), (unsigned long long)bucket_us);
    out += buf;
    for (size_t i = 0; i < heatmap.size(); i++) {
      uint64_t row_total = 0;
      for (int k = 0; k < kNumIOFileKinds; k++) row_total += heatmap[i][k];
      snprintf(buf, sizeof(buf),
               "  [%3zu] total %10llu  wal %10llu  sst-data %10llu"
               "  sst-meta %10llu\n",
               i, (unsigned long long)row_total,
               (unsigned long long)heatmap[i][static_cast<int>(
                   IOFileKind::kWal)],
               (unsigned long long)heatmap[i][static_cast<int>(
                   IOFileKind::kSstData)],
               (unsigned long long)heatmap[i][static_cast<int>(
                   IOFileKind::kSstIndexFilter)]);
      out += buf;
    }
  }
  return out;
}

std::string IOAnalysis::ToPromptText() const {
  std::string out;
  char buf[160];
  const uint64_t total = total_bytes();
  out += "Per-kind IO (from the engine's IO trace):\n";
  for (int k = 0; k < kNumIOFileKinds; k++) {
    const IOBreakdown& b = by_kind[k];
    if (b.ops == 0) continue;
    const double pct =
        total > 0 ? 100.0 * static_cast<double>(b.bytes) / total : 0.0;
    snprintf(buf, sizeof(buf), "- %s: %llu ops, %llu bytes (%.1f%%)\n",
             IOFileKindName(static_cast<IOFileKind>(k)),
             (unsigned long long)b.ops, (unsigned long long)b.bytes, pct);
    out += buf;
  }
  out += "Per-context IO attribution:\n";
  for (int c = 0; c < kNumIOContexts; c++) {
    const IOBreakdown& b = by_context[c];
    if (b.ops == 0) continue;
    snprintf(buf, sizeof(buf), "- %s: %llu ops, %llu bytes\n",
             IOContextTagName(static_cast<IOContextTag>(c)),
             (unsigned long long)b.ops, (unsigned long long)b.bytes);
    out += buf;
  }
  return out;
}

Status AnalyzeIOTrace(Env* env, const std::string& path,
                      size_t heatmap_buckets, IOAnalysis* out) {
  *out = IOAnalysis();
  IOTraceReader reader(env);
  Status s = reader.Open(path);
  if (!s.ok()) return s;
  out->base_ts_us = reader.base_ts_us();

  // Keep (ts, kind, len) per record so the heatmap can be bucketed once
  // the span is known; bench-scale traces fit comfortably in memory.
  struct Sample {
    uint64_t ts_us;
    uint8_t kind;
    uint64_t len;
  };
  std::vector<Sample> samples;

  IOTraceRecord rec;
  bool eof = false;
  while (true) {
    s = reader.Next(&rec, &eof);
    if (!s.ok()) return s;
    if (eof) break;
    const int kind = static_cast<int>(rec.kind);
    const int ctx = static_cast<int>(rec.context);
    const int op = static_cast<int>(rec.op);
    out->by_kind[kind].ops++;
    out->by_kind[kind].bytes += rec.len;
    out->by_kind[kind].latency_us += rec.latency_us;
    out->by_context[ctx].ops++;
    out->by_context[ctx].bytes += rec.len;
    out->by_context[ctx].latency_us += rec.latency_us;
    out->by_op[op].ops++;
    out->by_op[op].bytes += rec.len;
    out->by_op[op].latency_us += rec.latency_us;
    if (out->records == 0) out->first_ts_us = rec.ts_us;
    out->first_ts_us = std::min(out->first_ts_us, rec.ts_us);
    out->last_ts_us = std::max(out->last_ts_us, rec.ts_us);
    out->records++;
    if (heatmap_buckets > 0) {
      samples.push_back(
          {rec.ts_us, static_cast<uint8_t>(kind), rec.len});
    }
  }

  if (heatmap_buckets > 0 && !samples.empty()) {
    const uint64_t span = out->last_ts_us - out->first_ts_us + 1;
    const uint64_t bucket_us =
        std::max<uint64_t>(1, (span + heatmap_buckets - 1) / heatmap_buckets);
    const size_t buckets =
        static_cast<size_t>((span + bucket_us - 1) / bucket_us);
    out->bucket_us = bucket_us;
    out->heatmap.assign(buckets, {});
    for (const Sample& sm : samples) {
      const size_t b =
          static_cast<size_t>((sm.ts_us - out->first_ts_us) / bucket_us);
      out->heatmap[b][sm.kind] += sm.len;
    }
  }
  return Status::OK();
}

}  // namespace elmo::bench
