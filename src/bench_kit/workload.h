// Workload specifications mirroring the paper's evaluation setup
// (§5.1): fillrandom, readrandom (preloaded), readrandomwriterandom,
// and Mixgraph. Op counts are scaled from the paper's 10-50M to keep
// simulated runs fast; virtual time preserves the reported ops/sec
// magnitudes.
#pragma once

#include <cstdint>
#include <string>

namespace elmo::bench {

enum class WorkloadType {
  kFillRandom,
  kReadRandom,
  kReadRandomWriteRandom,
  kMixgraph,
  // db_bench readwhilewriting: reader threads against a steady
  // background-writer stream (write_fraction models the writer share).
  kReadWhileWriting,
  // db_bench seekrandom: scan-heavy — random Seek + `scan_length`
  // Next() calls per operation.
  kSeekRandom,
  // Time-varying workload for online-tuning evaluation: the op stream
  // switches phase at fixed op-count boundaries — first third pure
  // writes (load), second third point reads, final third scans. No
  // single static configuration is right for all three phases, which
  // is exactly what DB::SetOptions() + the online tuner exploit.
  kPhased,
};

const char* WorkloadTypeName(WorkloadType type);

struct WorkloadSpec {
  WorkloadType type = WorkloadType::kFillRandom;
  uint64_t num_ops = 100000;
  // Key space size (and preload count for read workloads).
  uint64_t num_keys = 100000;
  uint64_t preload_keys = 0;
  uint32_t value_size = 100;  // db_bench default
  int threads = 1;
  // Fraction of writes for mixed workloads.
  double write_fraction = 0.5;
  // Mixgraph distribution parameters (FAST'20-flavored; theta softened
  // so the hot set is not fully cache-resident at reproduction scale).
  double zipf_theta = 0.85;
  double pareto_k = 0.2615;
  double pareto_sigma = 25.45;
  // Entries iterated per Seek for scan workloads.
  uint32_t scan_length = 50;
  uint64_t seed = 42;

  // The paper's four workloads, at reproduction scale (paper-scale op
  // counts in parentheses).
  static WorkloadSpec FillRandom(uint64_t ops = 1000000);  // paper: 50M
  static WorkloadSpec ReadRandom(uint64_t ops = 50000,    // paper: 10M
                                 uint64_t preload = 500000);  // paper: 25M
  static WorkloadSpec ReadRandomWriteRandom(uint64_t ops = 300000);  // 25M
  static WorkloadSpec Mixgraph(uint64_t ops = 300000);              // 25M

  // Regression-matrix extras (not in the paper's §5.1 set).
  static WorkloadSpec ReadWhileWriting(uint64_t ops = 100000,
                                       uint64_t preload = 200000);
  static WorkloadSpec SeekRandom(uint64_t ops = 20000,
                                 uint64_t preload = 200000,
                                 uint32_t scan_length = 50);
  // Three equal phases (write -> read -> scan) over `ops`; preloaded so
  // the read phase has data beyond the phase-1 writes.
  static WorkloadSpec Phased(uint64_t ops = 120000,
                             uint64_t preload = 200000,
                             uint32_t scan_length = 20);

  std::string Describe() const;  // one-line summary for prompts/logs
};

}  // namespace elmo::bench
