#include "bench_kit/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace elmo::bench {

std::string MakeKey(uint64_t index) {
  char buf[24];
  snprintf(buf, sizeof(buf), "%016llu",
           static_cast<unsigned long long>(index));
  return std::string(buf, 16);
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  // Incremental zeta is O(n); n stays <= a few hundred thousand here.
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / n_, 1.0 - theta_)) / (1.0 - zeta2 / zetan_);
  threshold_ = 1.0 + std::pow(0.5, theta_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) const {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  uint64_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < threshold_) {
    rank = 1;
  } else {
    rank = static_cast<uint64_t>(
        n_ * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= n_) rank = n_ - 1;
  }
  // Scramble so hot keys are spread across the key space (FNV-style).
  uint64_t h = rank * 0x9e3779b97f4a7c15ull;
  h ^= h >> 29;
  return h % n_;
}

ParetoValueSize::ParetoValueSize(double k, double sigma, double loc,
                                 uint64_t seed, uint32_t min_size,
                                 uint32_t max_size)
    : k_(k),
      sigma_(sigma),
      loc_(loc),
      min_size_(min_size),
      max_size_(max_size),
      rng_(seed) {}

uint32_t ParetoValueSize::Next() {
  double u = rng_.NextDouble();
  if (u >= 1.0) u = 0.9999999;
  double size;
  if (k_ == 0.0) {
    size = loc_ - sigma_ * std::log(1.0 - u);
  } else {
    size = loc_ + sigma_ * (std::pow(1.0 - u, -k_) - 1.0) / k_;
  }
  if (size < min_size_) return min_size_;
  if (size > max_size_) return max_size_;
  return static_cast<uint32_t>(size);
}

ValueGenerator::ValueGenerator(uint64_t seed) : rng_(seed) {
  buffer_.reserve(8192);
}

Slice ValueGenerator::Generate(uint32_t size) {
  buffer_.resize(size);
  // Fill 8 bytes at a time with pseudo-random data (incompressible,
  // like db_bench's default compression_ratio=0.5 upper half).
  size_t i = 0;
  while (i + 8 <= size) {
    uint64_t v = rng_.Next();
    memcpy(buffer_.data() + i, &v, 8);
    i += 8;
  }
  while (i < size) {
    buffer_[i++] = static_cast<char>('a' + (rng_.Next() % 26));
  }
  return Slice(buffer_);
}

}  // namespace elmo::bench
