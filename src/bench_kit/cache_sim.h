// Offline block-cache simulator. Replays a trace produced by
// DB::StartBlockCacheTrace (table/block_cache_tracer.h) against "ghost"
// LRU caches — same sharding, hashing, and eviction policy as the real
// table/cache.cc, but holding no block payloads — at a ladder of
// capacities, producing the miss-ratio-vs-capacity curve the tuning
// prompt uses to argue for or against a bigger block_cache_size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "env/env.h"
#include "util/json.h"
#include "util/status.h"

namespace elmo::bench {

struct CacheSimPoint {
  uint64_t capacity = 0;  // simulated cache capacity in bytes
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  double hit_ratio = 0.0;
  double miss_ratio = 0.0;
};

struct CacheSimResult {
  uint64_t records = 0;        // trace records replayed
  uint64_t unique_blocks = 0;  // distinct (file, offset) blocks seen
  uint64_t total_charge = 0;   // sum of distinct block charges (working set)
  std::vector<CacheSimPoint> curve;  // sorted by ascending capacity
  // Index into `curve` of the diminishing-returns knee (max curvature of
  // miss ratio over log-capacity); 0 when the curve is too short.
  size_t knee_index = 0;

  json::Object ToJson() const;
  std::string ToText() const;
  // Compact curve summary for the tuning prompt.
  std::string ToPromptText(uint64_t configured_capacity) const;
};

// Replay the trace at `path` through ghost LRUs at each capacity in
// `capacities` (deduplicated + sorted internally; must be non-empty).
// `num_shard_bits` should match the real cache (NewLruCache default 4).
Status SimulateCacheTrace(Env* env, const std::string& path,
                          const std::vector<uint64_t>& capacities,
                          int num_shard_bits, CacheSimResult* out);

// The default capacity ladder for miss-ratio curves: {1/4, 1/2, 1, 2, 4,
// 8} x base (deduplicated, zero-free). `base` is the configured
// block_cache_size.
std::vector<uint64_t> DefaultCapacityLadder(uint64_t base);

}  // namespace elmo::bench
