#include "bench_kit/span_analyzer.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace elmo::bench {

namespace {

using lsm::SpanKind;
using lsm::SpanKindName;
using lsm::SpanNode;
using lsm::SpanTag;
using lsm::SpanTagName;
using lsm::SpanTree;
using lsm::SpanTraceReader;

// Nearest-rank percentile over an ascending-sorted vector.
uint64_t Percentile(const std::vector<uint64_t>& sorted, double pct) {
  if (sorted.empty()) return 0;
  const double pos = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t idx = static_cast<size_t>(pos + 0.5);
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

// Round a share to 4 decimals so JSON output is deterministic across
// libm implementations.
double Round4(double v) {
  return static_cast<double>(static_cast<int64_t>(v * 10000.0 + 0.5)) /
         10000.0;
}

struct KindAccum {
  std::vector<uint64_t> durations;
  std::vector<const SpanTree*> trees;
};

}  // namespace

json::Object SpanAttribution::ToJson() const {
  json::Object doc;
  doc["trees"] = static_cast<int64_t>(trees);
  doc["slow"] = static_cast<int64_t>(slow);
  doc["sampled"] = static_cast<int64_t>(sampled);
  doc["base_ts_us"] = static_cast<int64_t>(base_ts_us);
  json::Array arr;
  arr.reserve(ops.size());
  for (const SpanOpAttribution& op : ops) {
    json::Object o;
    o["op"] = op.op;
    o["count"] = static_cast<int64_t>(op.count);
    o["p50_us"] = static_cast<int64_t>(op.p50_us);
    o["p99_us"] = static_cast<int64_t>(op.p99_us);
    o["p999_us"] = static_cast<int64_t>(op.p999_us);
    o["max_us"] = static_cast<int64_t>(op.max_us);
    o["mean_us"] = Round4(op.mean_us);
    o["tail_trees"] = static_cast<int64_t>(op.tail_trees);
    json::Array comps;
    comps.reserve(op.tail_components.size());
    for (const auto& c : op.tail_components) {
      json::Object co;
      co["name"] = c.name;
      co["share"] = Round4(c.share);
      co["total_us"] = static_cast<int64_t>(c.total_us);
      comps.emplace_back(std::move(co));
    }
    o["tail_components"] = std::move(comps);
    arr.emplace_back(std::move(o));
  }
  doc["ops"] = std::move(arr);
  return doc;
}

std::string SpanAttribution::ToText() const {
  std::string out;
  char buf[192];
  snprintf(buf, sizeof(buf),
           "span trace: %llu trees (%llu slow, %llu sampled)\n",
           (unsigned long long)trees, (unsigned long long)slow,
           (unsigned long long)sampled);
  out += buf;
  if (ops.empty()) return out;
  snprintf(buf, sizeof(buf), "%-12s %8s %8s %8s %8s %8s\n", "op", "count",
           "p50_us", "p99_us", "p999_us", "max_us");
  out += buf;
  for (const SpanOpAttribution& op : ops) {
    snprintf(buf, sizeof(buf), "%-12s %8llu %8llu %8llu %8llu %8llu\n",
             op.op.c_str(), (unsigned long long)op.count,
             (unsigned long long)op.p50_us, (unsigned long long)op.p99_us,
             (unsigned long long)op.p999_us, (unsigned long long)op.max_us);
    out += buf;
    for (const auto& c : op.tail_components) {
      snprintf(buf, sizeof(buf), "    p99 tail: %-16s %5.1f%% (%llu us)\n",
               c.name.c_str(), c.share * 100.0,
               (unsigned long long)c.total_us);
      out += buf;
    }
  }
  return out;
}

std::string SpanAttribution::ToPromptText() const {
  std::string out;
  char buf[160];
  for (const SpanOpAttribution& op : ops) {
    snprintf(buf, sizeof(buf), "%s: p50=%lluus p99=%lluus p999=%lluus",
             op.op.c_str(), (unsigned long long)op.p50_us,
             (unsigned long long)op.p99_us, (unsigned long long)op.p999_us);
    out += buf;
    if (!op.tail_components.empty()) {
      out += " | p99 tail breakdown:";
      for (const auto& c : op.tail_components) {
        snprintf(buf, sizeof(buf), " %s %.1f%%", c.name.c_str(),
                 c.share * 100.0);
        out += buf;
      }
    }
    out += '\n';
  }
  return out;
}

Status AnalyzeSpanTrace(Env* env, const std::string& path,
                        SpanAttribution* out) {
  *out = SpanAttribution{};
  SpanTraceReader reader(env);
  Status s = reader.Open(path);
  if (!s.ok()) return s;
  out->base_ts_us = reader.base_ts_us();

  // Keep every tree in memory: slow-op traces are sparse by design
  // (threshold + 1-in-N sampling), not full op logs.
  std::vector<SpanTree> all;
  while (true) {
    SpanTree tree;
    bool eof = false;
    s = reader.Next(&tree, &eof);
    if (!s.ok()) return s;
    if (eof) break;
    all.push_back(std::move(tree));
  }
  out->trees = all.size();

  // Group by root kind, ordered by kind value for stable output.
  std::map<uint8_t, KindAccum> by_kind;
  for (const SpanTree& t : all) {
    if (t.flags & lsm::kSpanTreeSlow) out->slow++;
    if (t.flags & lsm::kSpanTreeSampled) out->sampled++;
    KindAccum& acc = by_kind[static_cast<uint8_t>(t.root().kind)];
    acc.durations.push_back(t.root().duration_us);
    acc.trees.push_back(&t);
  }

  for (auto& [kind, acc] : by_kind) {
    SpanOpAttribution op;
    op.op = SpanKindName(static_cast<SpanKind>(kind));
    op.count = acc.durations.size();
    std::sort(acc.durations.begin(), acc.durations.end());
    op.p50_us = Percentile(acc.durations, 50.0);
    op.p99_us = Percentile(acc.durations, 99.0);
    op.p999_us = Percentile(acc.durations, 99.9);
    op.max_us = acc.durations.back();
    uint64_t sum = 0;
    for (uint64_t d : acc.durations) sum += d;
    op.mean_us = static_cast<double>(sum) /
                 static_cast<double>(acc.durations.size());

    // Tail decomposition: self-time per child kind (plus root self)
    // across every tree whose root is at or above the p99 cut. Shares
    // are fractions of the summed tail root time, so they add to ~1
    // (exactly 1 when child intervals nest inside the root).
    uint64_t tail_root_us = 0;
    std::map<uint8_t, uint64_t> comp;  // child kind -> summed self us
    uint64_t self_us = 0;
    for (const SpanTree* t : acc.trees) {
      if (t->root().duration_us < op.p99_us) continue;
      op.tail_trees++;
      tail_root_us += t->root().duration_us;
      self_us += t->SelfDuration(0);
      for (size_t i = 1; i < t->spans.size(); i++) {
        comp[static_cast<uint8_t>(t->spans[i].kind)] +=
            t->SelfDuration(i);
      }
    }
    if (tail_root_us > 0) {
      for (const auto& [child_kind, us] : comp) {
        SpanOpAttribution::Component c;
        c.name = SpanKindName(static_cast<SpanKind>(child_kind));
        c.total_us = us;
        c.share = static_cast<double>(us) /
                  static_cast<double>(tail_root_us);
        op.tail_components.push_back(std::move(c));
      }
      SpanOpAttribution::Component self;
      self.name = "self";
      self.total_us = self_us;
      self.share = static_cast<double>(self_us) /
                   static_cast<double>(tail_root_us);
      op.tail_components.push_back(std::move(self));
      // Largest share first; ties broken by name for determinism.
      std::sort(op.tail_components.begin(), op.tail_components.end(),
                [](const SpanOpAttribution::Component& a,
                   const SpanOpAttribution::Component& b) {
                  if (a.total_us != b.total_us) {
                    return a.total_us > b.total_us;
                  }
                  return a.name < b.name;
                });
    }
    out->ops.push_back(std::move(op));
  }
  return Status::OK();
}

Status ExportChromeTrace(Env* env, const std::string& path,
                         std::string* json_out) {
  json_out->clear();
  SpanTraceReader reader(env);
  Status s = reader.Open(path);
  if (!s.ok()) return s;

  json::Array events;
  auto add_process_name = [&events](int pid, const char* name) {
    json::Object m;
    m["name"] = std::string("process_name");
    m["ph"] = std::string("M");
    m["pid"] = pid;
    m["tid"] = 0;
    json::Object args;
    args["name"] = std::string(name);
    m["args"] = std::move(args);
    events.emplace_back(std::move(m));
  };
  add_process_name(1, "foreground ops");
  add_process_name(2, "background jobs");

  while (true) {
    SpanTree tree;
    bool eof = false;
    s = reader.Next(&tree, &eof);
    if (!s.ok()) return s;
    if (eof) break;

    const SpanKind root_kind = tree.root().kind;
    const int pid = (root_kind == SpanKind::kFlush ||
                     root_kind == SpanKind::kCompaction)
                        ? 2
                        : 1;
    for (size_t i = 0; i < tree.spans.size(); i++) {
      const SpanNode& n = tree.spans[i];
      json::Object e;
      e["name"] = std::string(SpanKindName(n.kind));
      e["ph"] = std::string("X");
      e["ts"] = static_cast<int64_t>(n.start_us);
      e["dur"] = static_cast<int64_t>(n.duration_us);
      e["pid"] = pid;
      e["tid"] = static_cast<int64_t>(tree.thread_id);
      json::Object args;
      for (const auto& [tag, value] : n.annotations) {
        args[SpanTagName(tag)] = static_cast<int64_t>(value);
      }
      if (i == 0) {
        args["slow"] = (tree.flags & lsm::kSpanTreeSlow) != 0;
        args["sampled"] = (tree.flags & lsm::kSpanTreeSampled) != 0;
      }
      e["args"] = std::move(args);
      events.emplace_back(std::move(e));
    }
  }

  json::Object doc;
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = std::string("ms");
  *json_out = json::Value(std::move(doc)).Dump();
  return Status::OK();
}

}  // namespace elmo::bench
