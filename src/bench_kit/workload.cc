#include "bench_kit/workload.h"

#include <cstdio>

namespace elmo::bench {

const char* WorkloadTypeName(WorkloadType type) {
  switch (type) {
    case WorkloadType::kFillRandom: return "fillrandom";
    case WorkloadType::kReadRandom: return "readrandom";
    case WorkloadType::kReadRandomWriteRandom: return "readrandomwriterandom";
    case WorkloadType::kMixgraph: return "mixgraph";
  }
  return "unknown";
}

WorkloadSpec WorkloadSpec::FillRandom(uint64_t ops) {
  WorkloadSpec w;
  w.type = WorkloadType::kFillRandom;
  w.num_ops = ops;
  w.num_keys = ops;
  return w;
}

WorkloadSpec WorkloadSpec::ReadRandom(uint64_t ops, uint64_t preload) {
  WorkloadSpec w;
  w.type = WorkloadType::kReadRandom;
  w.num_ops = ops;
  w.num_keys = preload;
  w.preload_keys = preload;
  return w;
}

WorkloadSpec WorkloadSpec::ReadRandomWriteRandom(uint64_t ops) {
  WorkloadSpec w;
  w.type = WorkloadType::kReadRandomWriteRandom;
  w.num_ops = ops;
  // Key space well beyond what memory can cache, as in the paper's
  // 25M-op runs.
  w.num_keys = ops * 2;
  w.preload_keys = ops;
  w.threads = 2;  // the paper runs RRWR with 2 threads
  w.write_fraction = 0.5;
  return w;
}

WorkloadSpec WorkloadSpec::Mixgraph(uint64_t ops) {
  WorkloadSpec w;
  w.type = WorkloadType::kMixgraph;
  w.num_ops = ops;
  w.num_keys = ops * 2;
  w.preload_keys = ops;
  w.write_fraction = 0.5;  // paper: 50% writes / 50% reads
  return w;
}

std::string WorkloadSpec::Describe() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "%s: %llu ops over %llu keys (%llu preloaded), value ~%u B, "
           "%d thread(s), %.0f%% writes",
           WorkloadTypeName(type), (unsigned long long)num_ops,
           (unsigned long long)num_keys, (unsigned long long)preload_keys,
           value_size, threads,
           (type == WorkloadType::kFillRandom
                ? 100.0
                : (type == WorkloadType::kReadRandom ? 0.0
                                                     : write_fraction * 100)));
  return buf;
}

}  // namespace elmo::bench
