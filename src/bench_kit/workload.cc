#include "bench_kit/workload.h"

#include <cstdio>

namespace elmo::bench {

const char* WorkloadTypeName(WorkloadType type) {
  switch (type) {
    case WorkloadType::kFillRandom: return "fillrandom";
    case WorkloadType::kReadRandom: return "readrandom";
    case WorkloadType::kReadRandomWriteRandom: return "readrandomwriterandom";
    case WorkloadType::kMixgraph: return "mixgraph";
    case WorkloadType::kReadWhileWriting: return "readwhilewriting";
    case WorkloadType::kSeekRandom: return "seekrandom";
    case WorkloadType::kPhased: return "phased";
  }
  return "unknown";
}

WorkloadSpec WorkloadSpec::FillRandom(uint64_t ops) {
  WorkloadSpec w;
  w.type = WorkloadType::kFillRandom;
  w.num_ops = ops;
  w.num_keys = ops;
  return w;
}

WorkloadSpec WorkloadSpec::ReadRandom(uint64_t ops, uint64_t preload) {
  WorkloadSpec w;
  w.type = WorkloadType::kReadRandom;
  w.num_ops = ops;
  w.num_keys = preload;
  w.preload_keys = preload;
  return w;
}

WorkloadSpec WorkloadSpec::ReadRandomWriteRandom(uint64_t ops) {
  WorkloadSpec w;
  w.type = WorkloadType::kReadRandomWriteRandom;
  w.num_ops = ops;
  // Key space well beyond what memory can cache, as in the paper's
  // 25M-op runs.
  w.num_keys = ops * 2;
  w.preload_keys = ops;
  w.threads = 2;  // the paper runs RRWR with 2 threads
  w.write_fraction = 0.5;
  return w;
}

WorkloadSpec WorkloadSpec::Mixgraph(uint64_t ops) {
  WorkloadSpec w;
  w.type = WorkloadType::kMixgraph;
  w.num_ops = ops;
  w.num_keys = ops * 2;
  w.preload_keys = ops;
  w.write_fraction = 0.5;  // paper: 50% writes / 50% reads
  return w;
}

WorkloadSpec WorkloadSpec::ReadWhileWriting(uint64_t ops, uint64_t preload) {
  WorkloadSpec w;
  w.type = WorkloadType::kReadWhileWriting;
  w.num_ops = ops;
  w.num_keys = preload;
  w.preload_keys = preload;
  w.threads = 4;  // db_bench default: N readers + 1 writer
  // One unthrottled writer among the reader threads.
  w.write_fraction = 1.0 / w.threads;
  return w;
}

WorkloadSpec WorkloadSpec::SeekRandom(uint64_t ops, uint64_t preload,
                                      uint32_t scan_length) {
  WorkloadSpec w;
  w.type = WorkloadType::kSeekRandom;
  w.num_ops = ops;
  w.num_keys = preload;
  w.preload_keys = preload;
  w.scan_length = scan_length;
  return w;
}

WorkloadSpec WorkloadSpec::Phased(uint64_t ops, uint64_t preload,
                                  uint32_t scan_length) {
  WorkloadSpec w;
  w.type = WorkloadType::kPhased;
  w.num_ops = ops;
  w.num_keys = preload;
  w.preload_keys = preload;
  w.scan_length = scan_length;
  // Heavier values than the microbenchmarks: the write phase must move
  // real data for memtable sizing to matter, and the dataset must
  // outgrow any affordable cache so the phases compete for memory.
  w.value_size = 400;
  return w;
}

std::string WorkloadSpec::Describe() const {
  double write_pct = write_fraction * 100;
  if (type == WorkloadType::kFillRandom) write_pct = 100.0;
  if (type == WorkloadType::kReadRandom ||
      type == WorkloadType::kSeekRandom) {
    write_pct = 0.0;
  }
  char buf[256];
  snprintf(buf, sizeof(buf),
           "%s: %llu ops over %llu keys (%llu preloaded), value ~%u B, "
           "%d thread(s), %.0f%% writes",
           WorkloadTypeName(type), (unsigned long long)num_ops,
           (unsigned long long)num_keys, (unsigned long long)preload_keys,
           value_size, threads, write_pct);
  std::string out = buf;
  if (type == WorkloadType::kSeekRandom) {
    snprintf(buf, sizeof(buf), ", %u-entry scans", scan_length);
    out += buf;
  }
  if (type == WorkloadType::kPhased) {
    snprintf(buf, sizeof(buf),
             "; three equal phases: write -> read -> %u-entry scans",
             scan_length);
    out += buf;
  }
  return out;
}

}  // namespace elmo::bench
