// TraceReplayer: re-execute a workload trace captured with
// DB::StartTrace against another DB instance. Values are regenerated
// deterministically at the recorded sizes (traces store sizes, not
// bytes), so a replayed fillrandom produces the same key set and the
// same data volume as the original run — on any hardware profile.
//
// Two modes:
//   - full speed (preserve_timing=false): issue ops back to back; use
//     this to rebuild a DB state or stress a different configuration.
//   - timing-preserving (preserve_timing=true): sleep out the recorded
//     inter-op gaps on the target Env's clock. Under SimEnv the sleeps
//     charge virtual time, so the replay reproduces the original
//     arrival process deterministically.
#pragma once

#include <cstdint>
#include <string>

#include "env/env.h"
#include "lsm/db.h"
#include "util/status.h"

namespace elmo::bench {

struct ReplayStats {
  uint64_t ops = 0;
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t gets = 0;
  // Ops whose DB call returned an error (NotFound on Get is not an
  // error: a traced read of a since-deleted key legitimately misses).
  uint64_t failed = 0;
  uint64_t trace_span_us = 0;     // last record ts - trace base ts
  uint64_t replay_elapsed_us = 0; // on the target Env's clock
};

Status ReplayTrace(Env* env, const std::string& trace_path, lsm::DB* db,
                   bool preserve_timing, ReplayStats* stats);

}  // namespace elmo::bench
