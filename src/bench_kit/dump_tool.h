// Offline inspection of every on-disk artifact the engine produces:
// SST files (block layout, bloom stats, key range, entry counts),
// MANIFEST (VersionEdit history), the structured JSONL info LOG, and
// both trace formats (env/io_trace.h, table/block_cache_tracer.h).
// Everything reads through an Env*, so the same code inspects a real
// directory (PosixEnv) and a simulated one (SimEnv/MemEnv) in tests.
// The tools/elmo_dump CLI is a thin argv wrapper over these.
#pragma once

#include <cstdint>
#include <string>

#include "env/env.h"
#include "util/status.h"

namespace elmo::bench {

// Summary of one SST file, gathered by walking the footer, index block,
// and (optionally) every data block.
struct SstSummary {
  uint64_t file_size = 0;
  uint64_t index_offset = 0;
  uint64_t index_size = 0;   // on-disk index block bytes (pre-trailer)
  uint64_t filter_offset = 0;
  uint64_t filter_size = 0;  // 0 when the table has no filter
  int bloom_probes = 0;      // k from the filter's last byte; 0 if none
  uint64_t num_data_blocks = 0;
  uint64_t data_bytes = 0;  // on-disk data block bytes (pre-trailer)
  // Filled only when `scan` was requested.
  uint64_t num_entries = 0;
  uint64_t num_deletions = 0;
  uint64_t min_sequence = 0;
  uint64_t max_sequence = 0;
  std::string smallest_user_key;
  std::string largest_user_key;
};

// Dissect the SST at `path`. With `scan`, every data block is read and
// each entry's internal key parsed (key counts + range + sequence
// span); without it only the footer/index/filter are touched. `text`
// (optional) receives a human-readable report; with `list_blocks` it
// includes one line per data block.
Status DumpSst(Env* env, const std::string& path, bool scan, bool list_blocks,
               SstSummary* out, std::string* text);

// Decode every VersionEdit record in the MANIFEST at `path`.
Status DumpManifest(Env* env, const std::string& path, std::string* text);

// Validate + summarize a structured JSONL info LOG: per-event counts,
// plus the raw lines when `verbose`. Fails with Corruption on a
// non-JSON line.
Status DumpInfoLog(Env* env, const std::string& path, bool verbose,
                   std::string* text);

// Decode an IO trace / block-cache trace record-by-record. With
// `verbose` each record is listed; the aggregate analyzer summary is
// always appended. Corrupted traces surface as Status::Corruption.
Status DumpIOTrace(Env* env, const std::string& path, bool verbose,
                   std::string* text);
Status DumpBlockCacheTrace(Env* env, const std::string& path, bool verbose,
                           std::string* text);

// Decode a span trace (lsm/span.h, DB::StartSpanTrace) tree-by-tree.
// With `verbose` every span of every tree is listed (indented by
// depth, with annotations); the latency-attribution summary from
// bench_kit/span_analyzer.h is always appended.
Status DumpSpanTrace(Env* env, const std::string& path, bool verbose,
                     std::string* text);

// Walk a DB directory and dump every recognized file (CURRENT,
// MANIFEST, LOG, SSTs with scan on). Unknown files are listed by name.
Status DumpDbDir(Env* env, const std::string& dbname, std::string* text);

}  // namespace elmo::bench
