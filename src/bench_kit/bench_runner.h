// BenchRunner: opens a fresh DB on a fresh SimEnv for the given
// hardware profile, runs one workload under the given options, and
// returns the measured result. One Run() == one db_bench invocation in
// the paper's loop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "bench_kit/report.h"
#include "bench_kit/workload.h"
#include "env/hardware_profile.h"
#include "lsm/db.h"
#include "lsm/options.h"

namespace elmo::bench {

// Byte-capacity options are divided by this factor when instantiating
// the engine: our datasets are ~100x smaller than the paper's, so
// capacities (memtable, cache, level targets) shrink alongside to keep
// flush/compaction cadence and cache-coverage ratios faithful. The
// options *file* the tuning loop sees always carries full-size values.
inline constexpr uint64_t kCapacityScale = 64;

lsm::Options ScaleCapacities(const lsm::Options& opts);

class BenchRunner {
 public:
  BenchRunner(const HardwareProfile& hw, uint64_t seed = 42);

  // Runs `spec` with `tuning_opts` (unscaled, as written in the options
  // file). A fresh environment and DB are created per call, like the
  // paper's per-iteration db_bench runs.
  BenchResult Run(const WorkloadSpec& spec, const lsm::Options& tuning_opts);

  // Early-probe variant used by the Active Flagger's benchmark monitor:
  // runs only `probe_ops` operations and reports the interim result
  // (ELMo-Tune's "first 30s" check).
  BenchResult RunProbe(const WorkloadSpec& spec,
                       const lsm::Options& tuning_opts, uint64_t probe_ops);

  // Mid-run observation point: called with the live DB every
  // `hook_every` ops during the timed phase (and once after the last
  // op). The online tuner hangs off this to watch the sampler ring and
  // apply SetOptions() deltas while the workload runs.
  using LiveHook = std::function<void(lsm::DB*, uint64_t op_index)>;
  BenchResult RunWithHook(const WorkloadSpec& spec,
                          const lsm::Options& tuning_opts,
                          const LiveHook& hook, uint64_t hook_every = 512);

  const HardwareProfile& hardware() const { return hw_; }

 private:
  BenchResult RunInternal(const WorkloadSpec& spec,
                          const lsm::Options& tuning_opts,
                          uint64_t op_limit,
                          const LiveHook& hook = nullptr,
                          uint64_t hook_every = 512);

  HardwareProfile hw_;
  uint64_t seed_;
};

}  // namespace elmo::bench
