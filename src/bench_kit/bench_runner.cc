#include "bench_kit/bench_runner.h"

#include <algorithm>

#include "bench_kit/cache_sim.h"
#include "bench_kit/generators.h"
#include "bench_kit/io_analyzer.h"
#include "bench_kit/span_analyzer.h"
#include "env/sim_env.h"
#include "lsm/db.h"
#include "monitor/health_monitor.h"
#include "util/json.h"

namespace elmo::bench {

using lsm::DB;
using lsm::Options;
using lsm::ReadOptions;
using lsm::Ticker;
using lsm::WriteOptions;

lsm::Options ScaleCapacities(const lsm::Options& opts) {
  Options o = opts;
  auto scale = [](uint64_t v) {
    return std::max<uint64_t>(v / kCapacityScale, 1);
  };
  o.write_buffer_size = std::max<uint64_t>(
      scale(opts.write_buffer_size), 64 << 10);
  o.block_cache_size = scale(opts.block_cache_size);
  o.max_bytes_for_level_base =
      std::max<uint64_t>(scale(opts.max_bytes_for_level_base), 1 << 20);
  o.target_file_size_base =
      std::max<uint64_t>(scale(opts.target_file_size_base), 256 << 10);
  o.max_total_wal_size = opts.max_total_wal_size == 0
                             ? 0
                             : std::max<uint64_t>(
                                   scale(opts.max_total_wal_size), 1 << 20);
  return o;
}

BenchRunner::BenchRunner(const HardwareProfile& hw, uint64_t seed)
    : hw_(hw), seed_(seed) {}

BenchResult BenchRunner::Run(const WorkloadSpec& spec,
                             const lsm::Options& tuning_opts) {
  return RunInternal(spec, tuning_opts, spec.num_ops);
}

BenchResult BenchRunner::RunProbe(const WorkloadSpec& spec,
                                  const lsm::Options& tuning_opts,
                                  uint64_t probe_ops) {
  return RunInternal(spec, tuning_opts, std::min(probe_ops, spec.num_ops));
}

BenchResult BenchRunner::RunWithHook(const WorkloadSpec& spec,
                                     const lsm::Options& tuning_opts,
                                     const LiveHook& hook,
                                     uint64_t hook_every) {
  return RunInternal(spec, tuning_opts, spec.num_ops, hook,
                     std::max<uint64_t>(hook_every, 1));
}

BenchResult BenchRunner::RunInternal(const WorkloadSpec& spec,
                                     const lsm::Options& tuning_opts,
                                     uint64_t op_limit,
                                     const LiveHook& hook,
                                     uint64_t hook_every) {
  BenchResult result;
  result.workload = WorkloadTypeName(spec.type);

  auto env = std::make_unique<SimEnv>(hw_, seed_);
  // Capacities run at 1/kCapacityScale of their configured size; the
  // memory model must debit the footprint at full size or a config
  // that hoards memory (huge cache AND huge memtables) pays nothing
  // for it and the cache/memtable budget trade-off disappears.
  env->SetFootprintScale(kCapacityScale);
  Options opts = ScaleCapacities(tuning_opts);
  opts.env = env.get();
  opts.create_if_missing = true;
  // Benchmarks always record a time series (virtual-time intervals under
  // SimEnv) unless the caller configured a cadence explicitly.
  if (opts.stats_sample_interval_ms == 0) {
    opts.stats_sample_interval_ms = 250;
  }

  std::unique_ptr<DB> db;
  Status s = DB::Open(opts, "/bench/db", &db);
  if (!s.ok()) {
    result.workload += " OPEN-FAILED: " + s.ToString();
    return result;
  }

  // Capture device IO and block-cache accesses for the whole run (the
  // preload included — its flush/compaction traffic is part of the
  // evidence). Trace files live outside the DB dir, on the same SimEnv.
  const std::string io_trace_path = "/bench/io.trace";
  const std::string cache_trace_path = "/bench/cache.trace";
  const bool io_tracing = db->StartIOTrace(io_trace_path).ok();
  const bool cache_tracing =
      db->StartBlockCacheTrace(cache_trace_path).ok();

  // Span-trace every run: slow ops above 5ms plus 1-in-32 sampling of
  // normal ops gives the analyzer both the tail and a baseline.
  const std::string span_trace_path = "/bench/span.trace";
  lsm::SpanTraceOptions span_opts;
  span_opts.slow_op_threshold_us = 5000;
  span_opts.sample_every = 32;
  const bool span_tracing =
      db->StartSpanTrace(span_trace_path, span_opts).ok();

  // Fold the runner's seed into the workload streams: distinct harness
  // seeds must measure distinct (still reproducible) runs even at
  // scales where the simulated page cache never consults its RNG.
  const uint64_t run_seed = spec.seed * 0x9e3779b97f4a7c15ull + seed_;
  Random64 op_rng(run_seed ^ 0x5ca1ab1e);
  ValueGenerator value_gen(run_seed + 1);
  ZipfianGenerator zipf(std::max<uint64_t>(spec.num_keys, 2),
                        spec.zipf_theta, run_seed + 2);
  ParetoValueSize pareto(spec.pareto_k, spec.pareto_sigma,
                         /*loc=*/spec.value_size / 4.0, run_seed + 3);

  // ---- preload phase (not timed), like db_bench's pre-filled DB ----
  if (spec.preload_keys > 0) {
    for (uint64_t i = 0; i < spec.preload_keys; i++) {
      Status ps =
          db->Put(WriteOptions(), MakeKey(i),
                  value_gen.Generate(spec.value_size));
      if (!ps.ok()) {
        result.workload += " PRELOAD-FAILED: " + ps.ToString();
        return result;
      }
    }
    // Drain memtables but do NOT force compactions to settle: like
    // db_bench, the read phase starts against whatever L0 residue the
    // configuration's compaction settings left behind — which is
    // precisely what bloom filters and compaction tuning then fix.
    db->FlushMemTable();
  }

  // ---- timed phase ----
  const uint64_t t_start = env->NowMicros();
  uint64_t bytes_processed = 0;

  std::string read_value;
  const uint64_t phase_len = std::max<uint64_t>(op_limit / 3, 1);
  for (uint64_t i = 0; i < op_limit; i++) {
    if (hook && i % hook_every == 0) hook(db.get(), i);
    bool is_write = false;
    bool is_scan = false;
    switch (spec.type) {
      case WorkloadType::kFillRandom: is_write = true; break;
      case WorkloadType::kReadRandom: is_write = false; break;
      case WorkloadType::kSeekRandom: is_scan = true; break;
      case WorkloadType::kPhased:
        // Hard phase boundaries at thirds: load -> point reads -> scans.
        is_write = i < phase_len;
        is_scan = !is_write && i >= 2 * phase_len;
        break;
      case WorkloadType::kReadRandomWriteRandom:
      case WorkloadType::kMixgraph:
      case WorkloadType::kReadWhileWriting:
        is_write = op_rng.NextDouble() < spec.write_fraction;
        break;
    }

    const uint64_t op_start = env->NowMicros();
    if (is_scan) {
      // Scan-heavy op: fresh iterator, random Seek, scan_length Next()s
      // (db_bench seekrandom with --seek_nexts).
      uint64_t key_index = op_rng.Uniform(spec.num_keys);
      auto iter = db->NewIterator(ReadOptions());
      iter->Seek(MakeKey(key_index));
      for (uint32_t n = 0; n < spec.scan_length && iter->Valid(); n++) {
        bytes_processed += iter->key().size() + iter->value().size();
        iter->Next();
      }
      result.read_micros.Add(
          static_cast<double>(env->NowMicros() - op_start));
    } else if (is_write) {
      uint64_t key_index;
      uint32_t vsize;
      if (spec.type == WorkloadType::kMixgraph) {
        key_index = zipf.Next();
        vsize = pareto.Next();
      } else {
        key_index = op_rng.Uniform(spec.num_keys);
        vsize = spec.value_size;
      }
      Status ws = db->Put(WriteOptions(), MakeKey(key_index),
                          value_gen.Generate(vsize));
      if (!ws.ok()) break;
      bytes_processed += 16 + vsize;
      result.write_micros.Add(
          static_cast<double>(env->NowMicros() - op_start));
    } else {
      uint64_t key_index = (spec.type == WorkloadType::kMixgraph)
                               ? zipf.Next()
                               : op_rng.Uniform(spec.num_keys);
      Status rs = db->Get(ReadOptions(), MakeKey(key_index), &read_value);
      if (rs.ok()) bytes_processed += 16 + read_value.size();
      result.read_micros.Add(
          static_cast<double>(env->NowMicros() - op_start));
    }
  }

  if (hook) hook(db.get(), op_limit);  // final observation

  uint64_t elapsed_us = env->NowMicros() - t_start;
  if (elapsed_us == 0) elapsed_us = 1;

  // T logical threads interleave their independent op streams; with
  // enough cores the wall-clock contracts accordingly (first-order
  // model — see DESIGN.md).
  const double parallel = std::min(spec.threads, hw_.cpu_cores);
  const double wall_seconds = (elapsed_us / 1e6) / std::max(1.0, parallel);

  result.ops = op_limit;
  result.elapsed_seconds = wall_seconds;
  result.ops_per_sec = op_limit / wall_seconds;
  result.mb_per_sec = bytes_processed / 1048576.0 / wall_seconds;

  const auto& st = db->stats();
  result.sim_seed = seed_;
  result.user_bytes_written = st.Get(Ticker::kBytesWritten);
  result.wal_bytes = st.Get(Ticker::kWalBytes);
  result.flush_bytes = st.Get(Ticker::kFlushBytes);
  result.compaction_bytes_written = st.Get(Ticker::kCompactionBytesWritten);
  result.write_stall_micros = st.Get(Ticker::kWriteStallMicros);
  result.write_slowdowns = st.Get(Ticker::kWriteSlowdownCount);
  result.write_stops = st.Get(Ticker::kWriteStopCount);
  result.flushes = st.Get(Ticker::kFlushCount);
  result.compactions = st.Get(Ticker::kCompactionCount);
  result.writeback_stalls = env->io_stats().writeback_stalls;
  std::string prop;
  if (db->GetProperty("elmo.block-cache-hit-rate", &prop)) {
    result.block_cache_hit_rate = atof(prop.c_str());
  }
  if (db->GetProperty("elmo.levelsummary", &prop)) {
    result.level_summary = prop;
  }
  if (db->GetProperty("elmo.stats", &prop)) {
    result.engine_stats = prop;
  }
  if (db->GetProperty("elmo.timeseries", &prop)) {
    lsm::TimeSeriesFromJson(prop, &result.timeseries,
                            &result.sample_interval_us);
  }
  if (db->GetProperty("elmo.health", &prop) && !prop.empty()) {
    monitor::HealthReport health;
    if (monitor::HealthReport::FromJson(prop, &health).ok()) {
      result.health_json = prop;
      result.health_text = health.ToText();
    }
  }
  if (db->GetProperty("elmo.options_changes", &prop)) {
    result.options_changes_json = prop;
  }

  // Close out the traces and distill them offline: per-kind/context IO
  // breakdown plus the miss-ratio-vs-capacity curve simulated around the
  // *scaled* capacity the engine actually ran with.
  if (io_tracing && db->EndIOTrace().ok()) {
    IOAnalysis analysis;
    if (AnalyzeIOTrace(env.get(), io_trace_path, /*heatmap_buckets=*/20,
                       &analysis)
            .ok()) {
      result.io_breakdown = analysis.ToPromptText();
      result.io_analysis_json = json::Value(analysis.ToJson()).Dump();
    }
  }
  if (cache_tracing && db->EndBlockCacheTrace().ok()) {
    CacheSimResult sim;
    if (SimulateCacheTrace(env.get(), cache_trace_path,
                           DefaultCapacityLadder(opts.block_cache_size),
                           /*num_shard_bits=*/4, &sim)
            .ok() &&
        sim.records > 0) {
      result.cache_sim_summary = sim.ToPromptText(opts.block_cache_size);
      result.cache_sim_json = json::Value(sim.ToJson()).Dump();
    }
  }
  if (span_tracing && db->EndSpanTrace().ok()) {
    SpanAttribution attr;
    if (AnalyzeSpanTrace(env.get(), span_trace_path, &attr).ok() &&
        attr.trees > 0) {
      result.span_attribution_summary = attr.ToPromptText();
      result.span_attribution_text = attr.ToText();
      result.span_attribution_json = json::Value(attr.ToJson()).Dump();
    }
    std::string perfetto;
    if (ExportChromeTrace(env.get(), span_trace_path, &perfetto).ok()) {
      result.perfetto_json = std::move(perfetto);
    }
    // Keep the raw trace bytes: the SimEnv (and its filesystem) dies
    // with this function, but callers may want to persist the artifact.
    env->ReadFileToString(span_trace_path, &result.span_trace);
  }
  return result;
}

}  // namespace elmo::bench
