// Key/value generators for the db_bench-style workloads, including the
// Zipfian hot-key and generalized-Pareto value-size distributions that
// define the Mixgraph production workload (Cao et al., FAST'20).
#pragma once

#include <cstdint>
#include <string>

#include "util/random.h"
#include "util/slice.h"

namespace elmo::bench {

// Fixed-width 16-byte decimal keys, db_bench's format.
std::string MakeKey(uint64_t index);

// YCSB-style Zipfian over [0, n). Deterministic given the seed; items
// are scrambled so popular keys spread over the key space.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  double theta() const { return theta_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  const uint64_t n_;
  const double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double threshold_;
  Random64 rng_;
};

// Generalized Pareto value sizes — the Mixgraph value-size model.
// size = loc + sigma * ((1-u)^(-k) - 1) / k, clamped to [min, max].
class ParetoValueSize {
 public:
  ParetoValueSize(double k, double sigma, double loc, uint64_t seed,
                  uint32_t min_size = 1, uint32_t max_size = 8192);

  uint32_t Next();

 private:
  const double k_, sigma_, loc_;
  const uint32_t min_size_, max_size_;
  Random64 rng_;
};

// Deterministic compressible-or-not value bytes.
class ValueGenerator {
 public:
  explicit ValueGenerator(uint64_t seed);

  // Returns a string_view-stable value of the given size (reuses an
  // internal buffer; copy if you need to keep it).
  Slice Generate(uint32_t size);

 private:
  std::string buffer_;
  Random64 rng_;
};

}  // namespace elmo::bench
