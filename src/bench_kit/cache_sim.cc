#include "bench_kit/cache_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "table/block_cache_tracer.h"
#include "util/coding.h"

namespace elmo::bench {

namespace {

// Same FNV-1a as table/cache.cc so ghost shard assignment matches the
// real cache's distribution.
uint32_t HashKey(const std::string& s) {
  uint32_t h = 2166136261u;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

// One ghost shard: the real LruShard's bookkeeping (recency list +
// charge accounting, evict-from-tail while over capacity) without block
// payloads.
class GhostShard {
 public:
  void SetCapacity(uint64_t capacity) { capacity_ = capacity; }

  bool Lookup(const std::string& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }

  void Insert(const std::string& key, uint64_t charge) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      usage_ -= it->second->charge;
      lru_.erase(it->second);
      map_.erase(it);
    }
    lru_.push_front(Entry{key, charge});
    map_[key] = lru_.begin();
    usage_ += charge;
    while (usage_ > capacity_ && !lru_.empty()) {
      Entry& victim = lru_.back();
      usage_ -= victim.charge;
      map_.erase(victim.key);
      lru_.pop_back();
    }
  }

 private:
  struct Entry {
    std::string key;
    uint64_t charge;
  };
  uint64_t capacity_ = 0;
  uint64_t usage_ = 0;
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
};

class GhostCache {
 public:
  GhostCache(uint64_t capacity, int num_shard_bits)
      : shards_(1u << num_shard_bits),
        shard_mask_((1u << num_shard_bits) - 1) {
    const uint64_t per_shard =
        (capacity + shards_.size() - 1) / shards_.size();
    for (auto& s : shards_) s.SetCapacity(per_shard);
  }

  // Mirrors the table reader's flow: lookup; on a miss that would fill
  // the real cache, insert.
  void Access(const std::string& key, bool fill, uint64_t charge,
              CacheSimPoint* point) {
    point->lookups++;
    GhostShard& shard = shards_[HashKey(key) & shard_mask_];
    if (shard.Lookup(key)) {
      point->hits++;
    } else {
      point->misses++;
      if (fill) shard.Insert(key, charge);
    }
  }

 private:
  std::vector<GhostShard> shards_;
  const uint32_t shard_mask_;
};

// Knee of the miss-ratio curve: the point of maximum curvature (largest
// |second difference|) of miss ratio against log2(capacity).
size_t KneeIndex(const std::vector<CacheSimPoint>& curve) {
  if (curve.size() < 3) return 0;
  size_t best = 1;
  double best_curv = -1.0;
  for (size_t i = 1; i + 1 < curve.size(); i++) {
    const double x0 = std::log2(static_cast<double>(curve[i - 1].capacity));
    const double x1 = std::log2(static_cast<double>(curve[i].capacity));
    const double x2 = std::log2(static_cast<double>(curve[i + 1].capacity));
    const double left =
        (curve[i].miss_ratio - curve[i - 1].miss_ratio) / (x1 - x0);
    const double right =
        (curve[i + 1].miss_ratio - curve[i].miss_ratio) / (x2 - x1);
    const double curv = std::fabs(right - left);
    if (curv > best_curv) {
      best_curv = curv;
      best = i;
    }
  }
  return best;
}

}  // namespace

json::Object CacheSimResult::ToJson() const {
  json::Object doc;
  doc["records"] = static_cast<int64_t>(records);
  doc["unique_blocks"] = static_cast<int64_t>(unique_blocks);
  doc["working_set_bytes"] = static_cast<int64_t>(total_charge);
  json::Array points;
  points.reserve(curve.size());
  for (const CacheSimPoint& p : curve) {
    json::Object o;
    o["capacity"] = static_cast<int64_t>(p.capacity);
    o["lookups"] = static_cast<int64_t>(p.lookups);
    o["hits"] = static_cast<int64_t>(p.hits);
    o["misses"] = static_cast<int64_t>(p.misses);
    o["hit_ratio"] = p.hit_ratio;
    o["miss_ratio"] = p.miss_ratio;
    points.emplace_back(std::move(o));
  }
  doc["curve"] = std::move(points);
  doc["knee_capacity"] = static_cast<int64_t>(
      curve.empty() ? 0 : curve[knee_index].capacity);
  return doc;
}

std::string CacheSimResult::ToText() const {
  std::string out;
  char buf[160];
  snprintf(buf, sizeof(buf),
           "cache sim: %llu accesses, %llu unique blocks,"
           " working set %llu bytes\n",
           (unsigned long long)records, (unsigned long long)unique_blocks,
           (unsigned long long)total_charge);
  out += buf;
  out += "miss-ratio curve:\n";
  for (size_t i = 0; i < curve.size(); i++) {
    const CacheSimPoint& p = curve[i];
    snprintf(buf, sizeof(buf),
             "  capacity %12llu  hit %6.2f%%  miss %6.2f%%%s\n",
             (unsigned long long)p.capacity, 100.0 * p.hit_ratio,
             100.0 * p.miss_ratio, i == knee_index ? "   <- knee" : "");
    out += buf;
  }
  return out;
}

std::string CacheSimResult::ToPromptText(uint64_t configured_capacity) const {
  std::string out;
  char buf[160];
  snprintf(buf, sizeof(buf),
           "Miss-ratio curve (simulated from the block-cache trace; %llu"
           " accesses, working set %llu bytes):\n",
           (unsigned long long)records, (unsigned long long)total_charge);
  out += buf;
  for (size_t i = 0; i < curve.size(); i++) {
    const CacheSimPoint& p = curve[i];
    const char* marker = "";
    if (p.capacity == configured_capacity) {
      marker = " (configured)";
    } else if (i == knee_index) {
      marker = " (knee)";
    }
    snprintf(buf, sizeof(buf), "- capacity %llu: miss ratio %.3f%s\n",
             (unsigned long long)p.capacity, p.miss_ratio, marker);
    out += buf;
  }
  return out;
}

Status SimulateCacheTrace(Env* env, const std::string& path,
                          const std::vector<uint64_t>& capacities,
                          int num_shard_bits, CacheSimResult* out) {
  *out = CacheSimResult();
  std::vector<uint64_t> caps = capacities;
  std::sort(caps.begin(), caps.end());
  caps.erase(std::unique(caps.begin(), caps.end()), caps.end());
  if (caps.empty()) {
    return Status::InvalidArgument("cache sim: no capacities given");
  }

  BlockCacheTraceReader reader(env);
  Status s = reader.Open(path);
  if (!s.ok()) return s;

  std::vector<GhostCache> ghosts;
  ghosts.reserve(caps.size());
  out->curve.resize(caps.size());
  for (size_t i = 0; i < caps.size(); i++) {
    ghosts.emplace_back(caps[i], num_shard_bits);
    out->curve[i].capacity = caps[i];
  }

  std::unordered_set<std::string> seen;
  BlockCacheAccessRecord rec;
  bool eof = false;
  std::string key;
  while (true) {
    s = reader.Next(&rec, &eof);
    if (!s.ok()) return s;
    if (eof) break;
    key.clear();
    PutFixed64(&key, rec.file_number);
    PutFixed64(&key, rec.offset);
    if (seen.insert(key).second) {
      out->unique_blocks++;
      out->total_charge += rec.charge;
    }
    for (size_t i = 0; i < ghosts.size(); i++) {
      ghosts[i].Access(key, rec.fill, rec.charge, &out->curve[i]);
    }
    out->records++;
  }

  for (CacheSimPoint& p : out->curve) {
    if (p.lookups > 0) {
      p.hit_ratio = static_cast<double>(p.hits) / p.lookups;
      p.miss_ratio = static_cast<double>(p.misses) / p.lookups;
    }
  }
  out->knee_index = KneeIndex(out->curve);
  return Status::OK();
}

std::vector<uint64_t> DefaultCapacityLadder(uint64_t base) {
  std::vector<uint64_t> caps;
  if (base == 0) base = 8 << 20;  // curve around 8 MiB when cache is off
  for (uint64_t c : {base / 4, base / 2, base, base * 2, base * 4, base * 8}) {
    if (c > 0) caps.push_back(c);
  }
  std::sort(caps.begin(), caps.end());
  caps.erase(std::unique(caps.begin(), caps.end()), caps.end());
  return caps;
}

}  // namespace elmo::bench
