#include "bench_kit/dump_tool.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_kit/cache_sim.h"
#include "bench_kit/io_analyzer.h"
#include "bench_kit/span_analyzer.h"
#include "env/io_trace.h"
#include "lsm/span.h"
#include "lsm/dbformat.h"
#include "lsm/filename.h"
#include "lsm/log_reader.h"
#include "lsm/version_edit.h"
#include "table/block.h"
#include "table/block_cache_tracer.h"
#include "table/comparator.h"
#include "table/format.h"
#include "util/json.h"

namespace elmo::bench {

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

// Render a user key for display: printable bytes as-is, the rest as \xNN.
std::string EscapeKey(const Slice& key) {
  std::string out;
  for (size_t i = 0; i < key.size() && i < 64; i++) {
    const auto c = static_cast<unsigned char>(key[i]);
    if (c >= 32 && c < 127) {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[8];
      snprintf(buf, sizeof(buf), "\\x%02x", c);
      out += buf;
    }
  }
  if (key.size() > 64) out += "...";
  return out;
}

class CollectingReporter : public log::Reader::Reporter {
 public:
  void Corruption(size_t bytes, const Status& status) override {
    corrupt_bytes += bytes;
    if (first.ok()) first = status;
  }
  size_t corrupt_bytes = 0;
  Status first;
};

}  // namespace

Status DumpSst(Env* env, const std::string& path, bool scan, bool list_blocks,
               SstSummary* out, std::string* text) {
  *out = SstSummary();

  std::unique_ptr<RandomAccessFile> file;
  Status s = env->NewRandomAccessFile(path, &file);
  if (!s.ok()) return s;
  s = env->GetFileSize(path, &out->file_size);
  if (!s.ok()) return s;
  if (out->file_size < Footer::kEncodedLength) {
    return Status::Corruption(path + ": shorter than an SST footer");
  }

  char footer_buf[Footer::kEncodedLength];
  Slice footer_slice;
  s = file->Read(out->file_size - Footer::kEncodedLength,
                 Footer::kEncodedLength, &footer_slice, footer_buf);
  if (!s.ok()) return s;
  Footer footer;
  s = footer.DecodeFrom(&footer_slice);
  if (!s.ok()) return s;

  out->index_offset = footer.index_handle().offset();
  out->index_size = footer.index_handle().size();
  out->filter_offset = footer.filter_handle().offset();
  out->filter_size = footer.filter_handle().size();
  if (out->filter_size > 0) {
    BlockContents filter;
    s = ReadBlock(file.get(), footer.filter_handle(), &filter);
    if (!s.ok()) return s;
    // leveldb bloom scheme: bit array then one byte of probe count.
    if (!filter.data.empty()) {
      out->bloom_probes = static_cast<unsigned char>(filter.data.back());
    }
  }

  BlockContents index_contents;
  s = ReadBlock(file.get(), footer.index_handle(), &index_contents);
  if (!s.ok()) return s;
  Block index_block(std::move(index_contents.data));

  if (text != nullptr) {
    Appendf(text, "sst %s: %llu bytes\n", path.c_str(),
            (unsigned long long)out->file_size);
    Appendf(text, "  index block: offset %llu size %llu\n",
            (unsigned long long)out->index_offset,
            (unsigned long long)out->index_size);
    if (out->filter_size > 0) {
      Appendf(text,
              "  filter block: offset %llu size %llu (bloom, %d probes)\n",
              (unsigned long long)out->filter_offset,
              (unsigned long long)out->filter_size, out->bloom_probes);
    } else {
      *text += "  filter block: none\n";
    }
  }

  // The comparator only matters for Seek; SeekToFirst/Next scans are
  // order-agnostic, so bytewise is safe for index keys (separators).
  std::unique_ptr<Iterator> index_iter =
      index_block.NewIterator(BytewiseComparator());
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    Slice handle_input = index_iter->value();
    BlockHandle handle;
    s = handle.DecodeFrom(&handle_input);
    if (!s.ok()) return s;
    out->num_data_blocks++;
    out->data_bytes += handle.size();

    uint64_t block_entries = 0;
    if (scan) {
      BlockContents contents;
      s = ReadBlock(file.get(), handle, &contents);
      if (!s.ok()) return s;
      Block block(std::move(contents.data));
      std::unique_ptr<Iterator> it = block.NewIterator(BytewiseComparator());
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        ParsedInternalKey parsed;
        if (!ParseInternalKey(it->key(), &parsed)) {
          return Status::Corruption(path + ": unparsable internal key");
        }
        if (out->num_entries == 0) {
          out->smallest_user_key = parsed.user_key.ToString();
          out->min_sequence = parsed.sequence;
          out->max_sequence = parsed.sequence;
        }
        out->largest_user_key = parsed.user_key.ToString();
        out->min_sequence = std::min(out->min_sequence, parsed.sequence);
        out->max_sequence = std::max(out->max_sequence, parsed.sequence);
        if (parsed.type == kTypeDeletion) out->num_deletions++;
        out->num_entries++;
        block_entries++;
      }
      if (!it->status().ok()) return it->status();
    }

    if (text != nullptr && list_blocks) {
      Appendf(text, "  data block %llu: offset %llu size %llu",
              (unsigned long long)(out->num_data_blocks - 1),
              (unsigned long long)handle.offset(),
              (unsigned long long)handle.size());
      if (scan) {
        Appendf(text, " entries %llu", (unsigned long long)block_entries);
      }
      *text += "\n";
    }
  }
  if (!index_iter->status().ok()) return index_iter->status();

  if (text != nullptr) {
    Appendf(text, "  data blocks: %llu (%llu bytes)\n",
            (unsigned long long)out->num_data_blocks,
            (unsigned long long)out->data_bytes);
    if (scan) {
      Appendf(text, "  entries: %llu (%llu deletions)\n",
              (unsigned long long)out->num_entries,
              (unsigned long long)out->num_deletions);
      if (out->num_entries > 0) {
        Appendf(text, "  key range: [%s .. %s]\n",
                EscapeKey(out->smallest_user_key).c_str(),
                EscapeKey(out->largest_user_key).c_str());
        Appendf(text, "  sequence span: [%llu .. %llu]\n",
                (unsigned long long)out->min_sequence,
                (unsigned long long)out->max_sequence);
      }
    }
  }
  return Status::OK();
}

Status DumpManifest(Env* env, const std::string& path, std::string* text) {
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(path, &file);
  if (!s.ok()) return s;

  CollectingReporter reporter;
  log::Reader reader(file.get(), &reporter, /*checksum=*/true);
  Slice record;
  std::string scratch;
  uint64_t edits = 0;
  Appendf(text, "manifest %s:\n", path.c_str());
  while (reader.ReadRecord(&record, &scratch)) {
    lsm::VersionEdit edit;
    s = edit.DecodeFrom(record);
    if (!s.ok()) return s;
    Appendf(text, "--- edit %llu ---\n", (unsigned long long)edits);
    *text += edit.DebugString();
    edits++;
  }
  if (reporter.corrupt_bytes > 0) {
    return Status::Corruption(path + ": " + reporter.first.ToString());
  }
  Appendf(text, "%llu edits\n", (unsigned long long)edits);
  return Status::OK();
}

Status DumpInfoLog(Env* env, const std::string& path, bool verbose,
                   std::string* text) {
  std::string contents;
  Status s = env->ReadFileToString(path, &contents);
  if (!s.ok()) return s;

  std::map<std::string, uint64_t> event_counts;
  uint64_t lines = 0;
  size_t pos = 0;
  while (pos < contents.size()) {
    size_t eol = contents.find('\n', pos);
    if (eol == std::string::npos) eol = contents.size();
    const std::string line = contents.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    json::Value v;
    s = json::Parse(line, &v);
    if (!s.ok() || !v.is_object()) {
      return Status::Corruption(path + ": non-JSON LOG line: " + line);
    }
    const json::Value* event = v.Find("event");
    event_counts[event != nullptr && event->is_string() ? event->as_string()
                                                        : "<missing>"]++;
    lines++;
    if (verbose) {
      *text += line;
      *text += "\n";
    }
  }
  Appendf(text, "info LOG %s: %llu lines\n", path.c_str(),
          (unsigned long long)lines);
  for (const auto& [event, count] : event_counts) {
    Appendf(text, "  %-24s %llu\n", event.c_str(), (unsigned long long)count);
  }
  return Status::OK();
}

Status DumpIOTrace(Env* env, const std::string& path, bool verbose,
                   std::string* text) {
  if (verbose) {
    IOTraceReader reader(env);
    Status s = reader.Open(path);
    if (!s.ok()) return s;
    IOTraceRecord rec;
    bool eof = false;
    while (true) {
      s = reader.Next(&rec, &eof);
      if (!s.ok()) return s;
      if (eof) break;
      Appendf(text, "%llu %s %s %s off=%llu len=%llu lat=%lluus %s\n",
              (unsigned long long)rec.ts_us, IOOpName(rec.op),
              IOFileKindName(rec.kind), IOContextTagName(rec.context),
              (unsigned long long)rec.offset, (unsigned long long)rec.len,
              (unsigned long long)rec.latency_us, rec.fname.c_str());
    }
  }
  IOAnalysis analysis;
  Status s = AnalyzeIOTrace(env, path, /*heatmap_buckets=*/20, &analysis);
  if (!s.ok()) return s;
  *text += analysis.ToText();
  return Status::OK();
}

Status DumpBlockCacheTrace(Env* env, const std::string& path, bool verbose,
                           std::string* text) {
  BlockCacheTraceReader reader(env);
  Status s = reader.Open(path);
  if (!s.ok()) return s;
  BlockCacheAccessRecord rec;
  bool eof = false;
  uint64_t records = 0, hits = 0;
  uint64_t charge_sum = 0;
  while (true) {
    s = reader.Next(&rec, &eof);
    if (!s.ok()) return s;
    if (eof) break;
    records++;
    if (rec.hit) hits++;
    charge_sum += rec.charge;
    if (verbose) {
      Appendf(text, "%llu %s %s%s level=%d file=%llu off=%llu charge=%llu\n",
              (unsigned long long)rec.ts_us, TraceBlockTypeName(rec.type),
              rec.hit ? "hit" : "miss", rec.fill ? "" : " nofill", rec.level,
              (unsigned long long)rec.file_number,
              (unsigned long long)rec.offset,
              (unsigned long long)rec.charge);
    }
  }
  Appendf(text, "block cache trace %s: %llu accesses, %llu hits (%.2f%%)\n",
          path.c_str(), (unsigned long long)records, (unsigned long long)hits,
          records > 0 ? 100.0 * static_cast<double>(hits) /
                            static_cast<double>(records)
                      : 0.0);
  Appendf(text, "  total charge touched: %llu bytes\n",
          (unsigned long long)charge_sum);
  return Status::OK();
}

Status DumpSpanTrace(Env* env, const std::string& path, bool verbose,
                     std::string* text) {
  if (verbose) {
    lsm::SpanTraceReader reader(env);
    Status s = reader.Open(path);
    if (!s.ok()) return s;
    Appendf(text, "span trace %s: base_ts=%llu us\n", path.c_str(),
            (unsigned long long)reader.base_ts_us());
    lsm::SpanTree tree;
    bool eof = false;
    uint64_t n = 0;
    while (true) {
      s = reader.Next(&tree, &eof);
      if (!s.ok()) return s;
      if (eof) break;
      Appendf(text, "--- tree %llu: thread %u%s%s ---\n",
              (unsigned long long)n, tree.thread_id,
              (tree.flags & lsm::kSpanTreeSlow) ? " slow" : "",
              (tree.flags & lsm::kSpanTreeSampled) ? " sampled" : "");
      // Depth by parent-chain walk: spans are appended in open order so
      // every parent precedes its children.
      std::vector<int> depth(tree.spans.size(), 0);
      for (size_t i = 0; i < tree.spans.size(); i++) {
        const lsm::SpanNode& node = tree.spans[i];
        if (i > 0) depth[i] = depth[static_cast<size_t>(node.parent)] + 1;
        for (int d = 0; d < depth[i]; d++) *text += "  ";
        Appendf(text, "%s start=%llu dur=%llu",
                lsm::SpanKindName(node.kind),
                (unsigned long long)node.start_us,
                (unsigned long long)node.duration_us);
        for (const auto& [tag, value] : node.annotations) {
          Appendf(text, " %s=%llu", lsm::SpanTagName(tag),
                  (unsigned long long)value);
        }
        *text += "\n";
      }
      n++;
    }
  }
  SpanAttribution attr;
  Status s = AnalyzeSpanTrace(env, path, &attr);
  if (!s.ok()) return s;
  *text += attr.ToText();
  return Status::OK();
}

Status DumpDbDir(Env* env, const std::string& dbname, std::string* text) {
  std::vector<std::string> children;
  Status s = env->GetChildren(dbname, &children);
  if (!s.ok()) return s;
  std::sort(children.begin(), children.end());

  Appendf(text, "db dir %s: %zu files\n", dbname.c_str(), children.size());
  for (const std::string& child : children) {
    uint64_t number = 0;
    FileType type;
    if (!ParseFileName(child, &number, &type)) {
      Appendf(text, "unrecognized file: %s\n", child.c_str());
      continue;
    }
    const std::string path = dbname + "/" + child;
    switch (type) {
      case FileType::kCurrentFile: {
        std::string current;
        s = env->ReadFileToString(path, &current);
        if (!s.ok()) return s;
        while (!current.empty() && current.back() == '\n') current.pop_back();
        Appendf(text, "CURRENT -> %s\n", current.c_str());
        break;
      }
      case FileType::kDescriptorFile:
        s = DumpManifest(env, path, text);
        if (!s.ok()) return s;
        break;
      case FileType::kInfoLogFile:
        s = DumpInfoLog(env, path, /*verbose=*/false, text);
        if (!s.ok()) return s;
        break;
      case FileType::kTableFile: {
        SstSummary summary;
        s = DumpSst(env, path, /*scan=*/true, /*list_blocks=*/false, &summary,
                    text);
        if (!s.ok()) return s;
        break;
      }
      case FileType::kLogFile: {
        uint64_t size = 0;
        s = env->GetFileSize(path, &size);
        if (!s.ok()) return s;
        Appendf(text, "wal %s: %llu bytes\n", child.c_str(),
                (unsigned long long)size);
        break;
      }
      default:
        Appendf(text, "%s\n", child.c_str());
        break;
    }
  }
  return Status::OK();
}

}  // namespace elmo::bench
