// BenchResult: measured outcome of one benchmark run, its db_bench-
// style text rendering, and the parser the tuning framework uses to
// read throughput / p99 numbers back out of that text (ELMo-Tune's
// "Benchmark Parser" module consumes text, not structs).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bench_kit/workload.h"
#include "lsm/stats_sampler.h"
#include "util/histogram.h"

namespace elmo::bench {

// Version of the JSON layout emitted by BenchResult::ToJson and the
// BENCH_*.json trajectory files (bench_kit/regression.h). Bump whenever
// a field is renamed/removed or its semantics change; comparisons across
// different schema versions are refused, not guessed at.
inline constexpr int kBenchSchemaVersion = 2;

// Git revision the binary was built from (CMake-injected at configure
// time; "unknown" outside a git checkout). Metadata only — never part
// of metric comparisons.
const char* BuildGitSha();

struct BenchResult {
  std::string workload;
  uint64_t ops = 0;
  double elapsed_seconds = 0;
  double ops_per_sec = 0;
  double mb_per_sec = 0;

  Histogram write_micros;
  Histogram read_micros;

  // Engine/environment counters worth showing the LLM.
  uint64_t write_stall_micros = 0;
  uint64_t write_slowdowns = 0;
  uint64_t write_stops = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t writeback_stalls = 0;
  double block_cache_hit_rate = 0;
  std::string level_summary;

  // Write-amplification inputs (cumulative tickers at end of run):
  // user bytes acknowledged vs. everything the engine wrote for them.
  uint64_t user_bytes_written = 0;
  uint64_t wal_bytes = 0;
  uint64_t flush_bytes = 0;
  uint64_t compaction_bytes_written = 0;

  // SimEnv seed the run used; 0 when unknown (non-simulated envs).
  uint64_t sim_seed = 0;

  // Full "elmo.stats" dump (tickers, stall reasons, latency/size
  // histograms, per-level table) captured at the end of the run.
  std::string engine_stats;

  // Per-interval telemetry recorded by the engine's StatsSampler
  // (GetProperty("elmo.timeseries")): the throughput-over-time data the
  // figures and the tuning prompt use.
  std::vector<lsm::IntervalSample> timeseries;
  uint64_t sample_interval_us = 0;

  // Offline-analyzer output from the run's IO and block-cache traces
  // (bench_kit/io_analyzer.h, bench_kit/cache_sim.h): compact prompt
  // text plus the full JSON documents embedded in ToJson().
  std::string io_breakdown;       // IOAnalysis::ToPromptText()
  std::string cache_sim_summary;  // CacheSimResult::ToPromptText()
  std::string io_analysis_json;   // IOAnalysis::ToJson() dump
  std::string cache_sim_json;     // CacheSimResult::ToJson() dump

  // Latency-attribution output from the run's span trace
  // (bench_kit/span_analyzer.h): per-op p99 decomposition as prompt
  // text, text tables, and the full JSON document embedded in ToJson().
  // Plus the Chrome trace-event export and the raw trace bytes so
  // callers can persist artifacts after the run env is gone.
  std::string span_attribution_summary;  // SpanAttribution::ToPromptText()
  std::string span_attribution_text;     // SpanAttribution::ToText()
  std::string span_attribution_json;     // SpanAttribution::ToJson() dump
  std::string perfetto_json;             // ExportChromeTrace output
  std::string span_trace;                // raw ELMOSPN1 trace bytes

  // Live-monitor verdict captured at the end of the run:
  // GetProperty("elmo.health") JSON and its text rendering
  // (monitor::HealthReport::ToText).
  std::string health_json;
  std::string health_text;

  // Dynamic-option ledger captured at the end of the run
  // (GetProperty("elmo.options_changes")): every SetOptions() delta the
  // run applied. Kept out of ToJson() — the online-tuning harness
  // persists its own timeline artifact.
  std::string options_changes_json;

  // The "IO & Cache Evidence" prompt section body; empty when the run
  // captured no traces.
  std::string IoCacheEvidence() const;

  // The "Latency Attribution Evidence" prompt section body; empty when
  // the run captured no span trace.
  std::string LatencyAttributionEvidence() const;

  // The "Health & Diagnosis Evidence" prompt section body; empty when
  // the run recorded no health verdict.
  std::string HealthEvidence() const;

  // Convenience accessors used by tables/figures.
  double p99_write_us() const {
    return write_micros.Count() ? write_micros.Percentile(99.0) : 0;
  }
  double p99_read_us() const {
    return read_micros.Count() ? read_micros.Percentile(99.0) : 0;
  }
  double p999_write_us() const {
    return write_micros.Count() ? write_micros.Percentile(99.9) : 0;
  }
  double p999_read_us() const {
    return read_micros.Count() ? read_micros.Percentile(99.9) : 0;
  }

  // (WAL + flush + compaction bytes) / user bytes; 0 when no user
  // writes happened (pure-read runs).
  double WriteAmplification() const {
    if (user_bytes_written == 0) return 0;
    return static_cast<double>(wal_bytes + flush_bytes +
                               compaction_bytes_written) /
           static_cast<double>(user_bytes_written);
  }

  std::string ToReport() const;

  // Machine-readable variant of the report (headline numbers + the full
  // time series); what CI uploads as the smoke-run artifact.
  std::string ToJson() const;
};

// Render a time series as the fixed-width "Throughput over time" table
// used by reports and figure output. At most `max_rows` rows are shown
// (strided evenly); 0 means no limit. Empty input yields "".
std::string TimeSeriesTable(const std::vector<lsm::IntervalSample>& samples,
                            size_t max_rows);

// Subset of a report the tuning loop needs; parsed back from text.
struct ParsedReport {
  std::string workload;
  double ops_per_sec = 0;
  double p99_write_us = 0;
  double p99_read_us = 0;
  double avg_write_us = 0;
  double avg_read_us = 0;
};

std::optional<ParsedReport> ParseReport(const std::string& text);

}  // namespace elmo::bench
