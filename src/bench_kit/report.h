// BenchResult: measured outcome of one benchmark run, its db_bench-
// style text rendering, and the parser the tuning framework uses to
// read throughput / p99 numbers back out of that text (ELMo-Tune's
// "Benchmark Parser" module consumes text, not structs).
#pragma once

#include <optional>
#include <string>

#include "bench_kit/workload.h"
#include "util/histogram.h"

namespace elmo::bench {

struct BenchResult {
  std::string workload;
  uint64_t ops = 0;
  double elapsed_seconds = 0;
  double ops_per_sec = 0;
  double mb_per_sec = 0;

  Histogram write_micros;
  Histogram read_micros;

  // Engine/environment counters worth showing the LLM.
  uint64_t write_stall_micros = 0;
  uint64_t write_slowdowns = 0;
  uint64_t write_stops = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t writeback_stalls = 0;
  double block_cache_hit_rate = 0;
  std::string level_summary;

  // Full "elmo.stats" dump (tickers, stall reasons, latency/size
  // histograms, per-level table) captured at the end of the run.
  std::string engine_stats;

  // Convenience accessors used by tables/figures.
  double p99_write_us() const {
    return write_micros.Count() ? write_micros.Percentile(99.0) : 0;
  }
  double p99_read_us() const {
    return read_micros.Count() ? read_micros.Percentile(99.0) : 0;
  }

  std::string ToReport() const;
};

// Subset of a report the tuning loop needs; parsed back from text.
struct ParsedReport {
  std::string workload;
  double ops_per_sec = 0;
  double p99_write_us = 0;
  double p99_read_us = 0;
  double avg_write_us = 0;
  double avg_read_us = 0;
};

std::optional<ParsedReport> ParseReport(const std::string& text);

}  // namespace elmo::bench
