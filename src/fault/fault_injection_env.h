// FaultInjectionEnv: a decorator Env that simulates crashes and I/O
// faults. It passes every operation through to a base Env (SimEnv,
// MemEnv or Posix) while tracking, per file, how many bytes have been
// made durable by Sync/RangeSync. A "crash" is then two steps:
//
//   env.SetFilesystemActive(false);   // at the chosen instant: every
//                                     // subsequent write fails (power off)
//   ... tear down the DB object ...
//   env.DropUnsyncedData(mode);       // rewind each file to what the
//                                     // device had actually persisted
//   env.SetFilesystemActive(true);    // "reboot"; reopen the DB
//
// DropUnsyncedData never touches synced bytes; the unsynced tail is
// dropped entirely (kDropAll), torn at a seeded-random byte
// (kTornTail), or torn at a 4 KiB page boundary (kPartialPage) — the
// three shapes a real power loss leaves behind.
//
// Independently, seeded probabilistic error injection can return
// Status::IOError from read/write/sync, deliver short reads, or flip a
// bit in read buffers (exercising block CRC paths), filtered by the
// classified file kind from env/io_trace.h. Everything random is driven
// by one Random64 from the constructor seed, so under SimEnv a whole
// fault schedule is reproducible from a single integer.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "env/env.h"
#include "env/io_trace.h"
#include "util/random.h"

namespace elmo {

// How DropUnsyncedData mutilates the unsynced tail of each file.
enum class DropMode {
  kDropAll,      // truncate to exactly the synced prefix
  kTornTail,     // keep a seeded-random prefix of the unsynced bytes
  kPartialPage,  // like kTornTail but cut down to a 4 KiB page boundary
};

struct FaultInjectionConfig {
  // Per-operation injection probabilities in [0, 1].
  double read_error = 0;
  double write_error = 0;
  double sync_error = 0;
  double short_read = 0;       // read returns fewer bytes than asked
  double read_corruption = 0;  // flip one bit in the returned buffer
  // Only files of these kinds are eligible; empty means every kind.
  std::set<IOFileKind> kinds;
  // Planted bug: report WAL syncs as successful without marking the
  // bytes durable. DropUnsyncedData then erases data the DB had
  // acknowledged as synced — exactly the violation the stress oracle
  // must catch. Never set outside violation-detection tests.
  bool lie_on_wal_sync = false;
  // Transient-fault mode: injected read/write/sync errors are marked
  // retryable (Status::IsRetryable), telling the DB's ErrorHandler the
  // fault is expected to clear — the auto-resume path is exercised
  // instead of permanent degradation.
  bool retryable = false;
  // Transient-fault burst length: injection disarms itself after this
  // many operations have passed through the fault hooks (eligible or
  // not), as if the device recovered. 0 = stay armed until
  // ClearFaults()/ClearErrorInjection().
  uint64_t transient_ops = 0;
};

struct FaultCounters {
  uint64_t read_errors = 0;
  uint64_t write_errors = 0;
  uint64_t sync_errors = 0;
  uint64_t short_reads = 0;
  uint64_t read_corruptions = 0;
  uint64_t wal_sync_lies = 0;
  uint64_t files_dropped = 0;   // files rewound by DropUnsyncedData
  uint64_t bytes_dropped = 0;   // unsynced bytes erased across all drops
  uint64_t transient_expiries = 0;  // bursts that disarmed themselves
};

class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base, uint64_t seed = 42);
  ~FaultInjectionEnv() override;

  Env* base() const { return base_; }

  // ---- crash simulation ----
  // While inactive, every mutating operation (append, sync, file
  // create/remove/rename) fails with Status::IOError; reads still work.
  void SetFilesystemActive(bool active);
  bool filesystem_active() const {
    return active_.load(std::memory_order_acquire);
  }
  // Kill-point handler shape: "power is cut at this instruction".
  void CrashNow() { SetFilesystemActive(false); }

  // Rewind every tracked file to its durable prefix (see file comment).
  // Call with the DB torn down and the filesystem inactive or quiescent.
  Status DropUnsyncedData(DropMode mode = DropMode::kDropAll);

  // ---- error injection ----
  void SetErrorInjection(const FaultInjectionConfig& config);
  void ClearErrorInjection();
  // Transient-fault vocabulary: the device "recovered" — same effect as
  // a burst expiring via FaultInjectionConfig::transient_ops.
  void ClearFaults() { ClearErrorInjection(); }
  // True while error injection is armed (a transient burst that hit its
  // transient_ops budget reports false).
  bool InjectionArmed() const;
  FaultCounters counters() const;

  // Forget all per-file durability tracking (e.g. after DestroyDB).
  void ResetState();

  // Introspection for tests.
  uint64_t SyncedBytes(const std::string& fname) const;
  uint64_t TrackedSize(const std::string& fname) const;
  bool IsTracked(const std::string& fname) const;

  // Env interface: file factories wrap, the rest forwards (mutating ops
  // gated on filesystem_active()).
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src, const std::string& target) override;
  Status GetFreeSpace(const std::string& path, uint64_t* bytes) override {
    return base_->GetFreeSpace(path, bytes);
  }
  uint64_t NowMicros() override;
  void SleepForMicroseconds(uint64_t micros) override;
  void Schedule(std::function<void()> job, JobPriority pri) override;
  void WaitForBackgroundWork() override;
  void SetBackgroundThreads(int n, JobPriority pri) override;
  bool is_deterministic() const override;
  void ChargeCpu(uint64_t micros) override;

 private:
  friend class FaultSequentialFile;
  friend class FaultRandomAccessFile;
  friend class FaultWritableFile;

  struct FileState {
    uint64_t size = 0;    // bytes appended through the wrapper
    uint64_t synced = 0;  // durable prefix length
  };

  // Write-side bookkeeping (called by FaultWritableFile).
  void OnAppend(const std::string& fname, uint64_t bytes);
  void OnSync(const std::string& fname);
  void OnRangeSync(const std::string& fname, uint64_t offset);

  // Injection decisions. Read hooks may mutate `result` in place
  // (bit-flip corruption lands in the caller's scratch buffer).
  Status MaybeInjectWriteError(const std::string& fname);
  Status MaybeInjectSyncError(const std::string& fname, bool* lied);
  Status MaybeInjectReadFault(const std::string& fname, Slice* result);

  bool KindEligibleLocked(const std::string& fname) const;  // holds mu_
  // Charge one operation against a transient burst and report whether
  // injection is still live; disarms once transient_ops is exhausted.
  bool InjectionLiveLocked();
  Status InjectedError(const std::string& what,
                       const std::string& fname) const;  // holds mu_

  Env* const base_;
  std::atomic<bool> active_{true};
  mutable std::mutex mu_;  // guards files_, cfg_, inject_, rng_, counters_
  std::map<std::string, FileState> files_;
  FaultInjectionConfig cfg_;
  bool inject_ = false;
  uint64_t burst_ops_seen_ = 0;  // hook calls since SetErrorInjection
  Random64 rng_;
  FaultCounters counters_;
};

}  // namespace elmo
