#include "fault/kill_point.h"

namespace elmo {

KillPointRegistry& KillPointRegistry::Instance() {
  static KillPointRegistry registry;
  return registry;
}

void KillPointRegistry::Arm(const std::string& name,
                            std::function<void()> handler, int skip) {
  std::lock_guard<std::mutex> l(mu_);
  armed_ = true;
  fired_ = false;
  armed_name_ = name;
  fired_point_.clear();
  handler_ = std::move(handler);
  remaining_skips_ = skip;
  UpdateActive();
}

void KillPointRegistry::Disarm() {
  std::lock_guard<std::mutex> l(mu_);
  armed_ = false;
  armed_name_.clear();
  handler_ = nullptr;
  remaining_skips_ = 0;
  UpdateActive();
}

bool KillPointRegistry::armed() const {
  std::lock_guard<std::mutex> l(mu_);
  return armed_;
}

bool KillPointRegistry::fired() const {
  std::lock_guard<std::mutex> l(mu_);
  return fired_;
}

std::string KillPointRegistry::fired_point() const {
  std::lock_guard<std::mutex> l(mu_);
  return fired_point_;
}

void KillPointRegistry::SetTracking(bool on) {
  std::lock_guard<std::mutex> l(mu_);
  tracking_ = on;
  if (!on) seen_.clear();
  UpdateActive();
}

std::vector<std::string> KillPointRegistry::SeenPoints() const {
  std::lock_guard<std::mutex> l(mu_);
  return {seen_.begin(), seen_.end()};
}

void KillPointRegistry::HitSlow(const char* name) {
  std::function<void()> run;
  {
    std::lock_guard<std::mutex> l(mu_);
    if (tracking_) seen_.insert(name);
    if (armed_ && armed_name_ == name) {
      if (remaining_skips_ > 0) {
        remaining_skips_--;
      } else {
        run = std::move(handler_);
        armed_ = false;
        fired_ = true;
        fired_point_ = armed_name_;
        armed_name_.clear();
        handler_ = nullptr;
        UpdateActive();
      }
    }
  }
  // Run outside mu_ so a handler can query the registry if it wants to.
  if (run) run();
}

void KillPointRegistry::UpdateActive() {
  active_.store(armed_ || tracking_, std::memory_order_relaxed);
}

}  // namespace elmo
