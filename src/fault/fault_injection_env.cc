#include "fault/fault_injection_env.h"

#include <algorithm>
#include <utility>

namespace elmo {

namespace {

constexpr uint64_t kPageSize = 4096;

Status Dead(const char* what) {
  return Status::IOError(std::string("fault: filesystem inactive (") + what +
                         ")");
}

}  // namespace

// ---------------------------------------------------------------------
// File wrappers.

class FaultSequentialFile : public SequentialFile {
 public:
  FaultSequentialFile(FaultInjectionEnv* env, std::string fname,
                      std::unique_ptr<SequentialFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = base_->Read(n, result, scratch);
    if (s.ok()) s = env_->MaybeInjectReadFault(fname_, result);
    return s;
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<SequentialFile> base_;
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultInjectionEnv* env, std::string fname,
                        std::unique_ptr<RandomAccessFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok()) s = env_->MaybeInjectReadFault(fname_, result);
    return s;
  }
  void Readahead(uint64_t offset, uint64_t length) override {
    base_->Readahead(offset, length);
  }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<RandomAccessFile> base_;
};

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string fname,
                    std::unique_ptr<WritableFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    if (!env_->filesystem_active()) return Dead("append");
    Status s = env_->MaybeInjectWriteError(fname_);
    if (!s.ok()) return s;
    s = base_->Append(data);
    if (s.ok()) env_->OnAppend(fname_, data.size());
    return s;
  }

  Status Close() override {
    // Closing is allowed on a dead filesystem (the process is tearing
    // down its own memory, not the device), but confers no durability.
    return base_->Close();
  }

  Status Flush() override {
    // Flush pushes user-space buffers toward the OS; it is not a
    // durability barrier, so the synced watermark does not move.
    if (!env_->filesystem_active()) return Dead("flush");
    return base_->Flush();
  }

  Status Sync() override {
    if (!env_->filesystem_active()) return Dead("sync");
    bool lied = false;
    Status s = env_->MaybeInjectSyncError(fname_, &lied);
    if (!s.ok()) return s;
    s = base_->Sync();
    if (s.ok() && !lied) env_->OnSync(fname_);
    return s;
  }

  Status RangeSync(uint64_t offset) override {
    if (!env_->filesystem_active()) return Dead("range_sync");
    bool lied = false;
    Status s = env_->MaybeInjectSyncError(fname_, &lied);
    if (!s.ok()) return s;
    s = base_->RangeSync(offset);
    if (s.ok() && !lied) env_->OnRangeSync(fname_, offset);
    return s;
  }

  uint64_t GetFileSize() const override { return base_->GetFileSize(); }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<WritableFile> base_;
};

// ---------------------------------------------------------------------
// FaultInjectionEnv.

FaultInjectionEnv::FaultInjectionEnv(Env* base, uint64_t seed)
    : base_(base), rng_(seed) {}

FaultInjectionEnv::~FaultInjectionEnv() = default;

void FaultInjectionEnv::SetFilesystemActive(bool active) {
  active_.store(active, std::memory_order_release);
}

Status FaultInjectionEnv::DropUnsyncedData(DropMode mode) {
  std::lock_guard<std::mutex> l(mu_);
  // std::map iterates in name order, so the per-file random tear points
  // consume the rng in a deterministic sequence.
  for (auto& [fname, state] : files_) {
    if (state.size <= state.synced) continue;
    uint64_t keep = state.synced;
    const uint64_t unsynced = state.size - state.synced;
    switch (mode) {
      case DropMode::kDropAll:
        break;
      case DropMode::kTornTail:
        keep += rng_.Uniform(unsynced + 1);
        break;
      case DropMode::kPartialPage: {
        const uint64_t torn = keep + rng_.Uniform(unsynced + 1);
        keep = std::max(state.synced, (torn / kPageSize) * kPageSize);
        break;
      }
    }
    if (!base_->FileExists(fname)) {
      // Created but already unlinked underneath us; nothing to rewind.
      state.size = state.synced = 0;
      continue;
    }
    std::string contents;
    Status s = base_->ReadFileToString(fname, &contents);
    if (!s.ok()) return s;
    if (contents.size() > keep) contents.resize(keep);
    std::unique_ptr<WritableFile> f;
    s = base_->NewWritableFile(fname, &f);  // truncates
    if (!s.ok()) return s;
    if (!contents.empty()) s = f->Append(contents);
    if (s.ok()) s = f->Sync();
    if (s.ok()) s = f->Close();
    if (!s.ok()) return s;
    counters_.files_dropped++;
    counters_.bytes_dropped += state.size - keep;
    state.size = keep;
    state.synced = keep;
  }
  return Status::OK();
}

void FaultInjectionEnv::SetErrorInjection(const FaultInjectionConfig& config) {
  std::lock_guard<std::mutex> l(mu_);
  cfg_ = config;
  burst_ops_seen_ = 0;
  inject_ = cfg_.read_error > 0 || cfg_.write_error > 0 ||
            cfg_.sync_error > 0 || cfg_.short_read > 0 ||
            cfg_.read_corruption > 0 || cfg_.lie_on_wal_sync;
}

void FaultInjectionEnv::ClearErrorInjection() {
  std::lock_guard<std::mutex> l(mu_);
  cfg_ = FaultInjectionConfig();
  inject_ = false;
}

bool FaultInjectionEnv::InjectionArmed() const {
  std::lock_guard<std::mutex> l(mu_);
  if (!inject_) return false;
  return cfg_.transient_ops == 0 || burst_ops_seen_ < cfg_.transient_ops;
}

bool FaultInjectionEnv::InjectionLiveLocked() {
  if (!inject_) return false;
  if (cfg_.transient_ops > 0) {
    if (burst_ops_seen_ >= cfg_.transient_ops) {
      // The burst ran its course: the device is healthy again.
      cfg_ = FaultInjectionConfig();
      inject_ = false;
      counters_.transient_expiries++;
      return false;
    }
    burst_ops_seen_++;
  }
  return true;
}

Status FaultInjectionEnv::InjectedError(const std::string& what,
                                        const std::string& fname) const {
  const std::string msg = "fault: injected " + what + " on " + fname;
  return cfg_.retryable ? Status::RetryableIOError(msg) : Status::IOError(msg);
}

FaultCounters FaultInjectionEnv::counters() const {
  std::lock_guard<std::mutex> l(mu_);
  return counters_;
}

void FaultInjectionEnv::ResetState() {
  std::lock_guard<std::mutex> l(mu_);
  files_.clear();
}

uint64_t FaultInjectionEnv::SyncedBytes(const std::string& fname) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = files_.find(fname);
  return it == files_.end() ? 0 : it->second.synced;
}

uint64_t FaultInjectionEnv::TrackedSize(const std::string& fname) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = files_.find(fname);
  return it == files_.end() ? 0 : it->second.size;
}

bool FaultInjectionEnv::IsTracked(const std::string& fname) const {
  std::lock_guard<std::mutex> l(mu_);
  return files_.count(fname) > 0;
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> base;
  Status s = base_->NewSequentialFile(fname, &base);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultSequentialFile>(this, fname,
                                                  std::move(base));
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> base;
  Status s = base_->NewRandomAccessFile(fname, &base);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultRandomAccessFile>(this, fname,
                                                    std::move(base));
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  if (!filesystem_active()) return Dead("create");
  std::unique_ptr<WritableFile> base;
  Status s = base_->NewWritableFile(fname, &base);
  if (!s.ok()) return s;
  {
    // Creation truncates: nothing of this name is durable any more.
    std::lock_guard<std::mutex> l(mu_);
    files_[fname] = FileState{};
  }
  *result = std::make_unique<FaultWritableFile>(this, fname, std::move(base));
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status FaultInjectionEnv::GetChildren(const std::string& dir,
                                      std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  if (!filesystem_active()) return Dead("remove");
  Status s = base_->RemoveFile(fname);
  if (s.ok()) {
    std::lock_guard<std::mutex> l(mu_);
    files_.erase(fname);
  }
  return s;
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& dirname) {
  if (!filesystem_active()) return Dead("mkdir");
  return base_->CreateDirIfMissing(dirname);
}

Status FaultInjectionEnv::RemoveDir(const std::string& dirname) {
  if (!filesystem_active()) return Dead("rmdir");
  return base_->RemoveDir(dirname);
}

Status FaultInjectionEnv::GetFileSize(const std::string& fname,
                                      uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target) {
  if (!filesystem_active()) return Dead("rename");
  Status s = base_->RenameFile(src, target);
  if (s.ok()) {
    // Durability travels with the bytes: the target inherits the
    // source's synced watermark (rename of a fully synced temp file is
    // how CURRENT is swapped atomically).
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(src);
    if (it != files_.end()) {
      files_[target] = it->second;
      files_.erase(it);
    } else {
      files_.erase(target);
    }
  }
  return s;
}

uint64_t FaultInjectionEnv::NowMicros() { return base_->NowMicros(); }

void FaultInjectionEnv::SleepForMicroseconds(uint64_t micros) {
  base_->SleepForMicroseconds(micros);
}

void FaultInjectionEnv::Schedule(std::function<void()> job, JobPriority pri) {
  base_->Schedule(std::move(job), pri);
}

void FaultInjectionEnv::WaitForBackgroundWork() {
  base_->WaitForBackgroundWork();
}

void FaultInjectionEnv::SetBackgroundThreads(int n, JobPriority pri) {
  base_->SetBackgroundThreads(n, pri);
}

bool FaultInjectionEnv::is_deterministic() const {
  return base_->is_deterministic();
}

void FaultInjectionEnv::ChargeCpu(uint64_t micros) { base_->ChargeCpu(micros); }

// ---------------------------------------------------------------------
// Bookkeeping + injection.

void FaultInjectionEnv::OnAppend(const std::string& fname, uint64_t bytes) {
  std::lock_guard<std::mutex> l(mu_);
  files_[fname].size += bytes;
}

void FaultInjectionEnv::OnSync(const std::string& fname) {
  std::lock_guard<std::mutex> l(mu_);
  auto& st = files_[fname];
  st.synced = st.size;
}

void FaultInjectionEnv::OnRangeSync(const std::string& fname,
                                    uint64_t offset) {
  std::lock_guard<std::mutex> l(mu_);
  auto& st = files_[fname];
  st.synced = std::max(st.synced, std::min(offset, st.size));
}

bool FaultInjectionEnv::KindEligibleLocked(const std::string& fname) const {
  if (cfg_.kinds.empty()) return true;
  return cfg_.kinds.count(
             ClassifyIOFileKind(fname, CurrentIOMetadataHint())) > 0;
}

Status FaultInjectionEnv::MaybeInjectWriteError(const std::string& fname) {
  std::lock_guard<std::mutex> l(mu_);
  if (!InjectionLiveLocked() || cfg_.write_error <= 0 ||
      !KindEligibleLocked(fname)) {
    return Status::OK();
  }
  if (rng_.NextDouble() < cfg_.write_error) {
    counters_.write_errors++;
    return InjectedError("write error", fname);
  }
  return Status::OK();
}

Status FaultInjectionEnv::MaybeInjectSyncError(const std::string& fname,
                                               bool* lied) {
  *lied = false;
  std::lock_guard<std::mutex> l(mu_);
  if (!InjectionLiveLocked()) return Status::OK();
  const IOFileKind kind = ClassifyIOFileKind(fname, false);
  if (cfg_.lie_on_wal_sync && kind == IOFileKind::kWal) {
    counters_.wal_sync_lies++;
    *lied = true;
    return Status::OK();
  }
  if (cfg_.sync_error <= 0 || !KindEligibleLocked(fname)) return Status::OK();
  if (rng_.NextDouble() < cfg_.sync_error) {
    counters_.sync_errors++;
    return InjectedError("sync error", fname);
  }
  return Status::OK();
}

Status FaultInjectionEnv::MaybeInjectReadFault(const std::string& fname,
                                               Slice* result) {
  std::lock_guard<std::mutex> l(mu_);
  if (!InjectionLiveLocked() || !KindEligibleLocked(fname)) {
    return Status::OK();
  }
  if (cfg_.read_error > 0 && rng_.NextDouble() < cfg_.read_error) {
    counters_.read_errors++;
    return InjectedError("read error", fname);
  }
  if (cfg_.short_read > 0 && result->size() > 1 &&
      rng_.NextDouble() < cfg_.short_read) {
    counters_.short_reads++;
    *result = Slice(result->data(), result->size() / 2);
    return Status::OK();
  }
  if (cfg_.read_corruption > 0 && !result->empty() &&
      rng_.NextDouble() < cfg_.read_corruption) {
    counters_.read_corruptions++;
    // The result of every env in this repo points into the caller's
    // scratch buffer, so flipping through it is safe; block CRCs are
    // expected to catch the damage downstream.
    char* bytes = const_cast<char*>(result->data());
    const uint64_t pos = rng_.Uniform(result->size());
    bytes[pos] = static_cast<char>(bytes[pos] ^ (1u << rng_.Uniform(8)));
  }
  return Status::OK();
}

}  // namespace elmo
