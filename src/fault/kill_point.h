// Kill points: named crash hooks compiled into the engine's durability
// paths (flush, compaction, MANIFEST write, CURRENT swap, WAL append).
// Each hook is a single relaxed atomic load when nothing is armed, so
// they stay in production builds. A test or the stress driver arms one
// point with a handler (typically FaultInjectionEnv::CrashNow) and the
// handler runs synchronously the next time execution reaches the point
// — "the machine dies at this instruction".
//
//   ELMO_KILL_POINT("flush:after_sst_sync");
//
// Handlers must be async-signal-style: flip atomics, never take engine
// locks (kill points fire while DB mutexes are held) and never re-enter
// the registry.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace elmo {

class KillPointRegistry {
 public:
  static KillPointRegistry& Instance();

  // Arm `name`: the handler runs on the (skip+1)-th hit of that point,
  // then the registry disarms itself. Re-arming replaces the previous
  // armed point.
  void Arm(const std::string& name, std::function<void()> handler,
           int skip = 0);
  void Disarm();
  bool armed() const;
  // True once the armed handler has run (cleared by the next Arm).
  bool fired() const;
  // Name of the point whose handler last ran ("" if none).
  std::string fired_point() const;

  // While tracking, every distinct point name that executes is recorded
  // (used by tests to discover which points a workload exercises).
  void SetTracking(bool on);
  std::vector<std::string> SeenPoints() const;

  // Hook entry. Call through ELMO_KILL_POINT so the fast path stays a
  // single atomic load.
  void Hit(const char* name) {
    if (active_.load(std::memory_order_relaxed)) HitSlow(name);
  }

 private:
  KillPointRegistry() = default;
  void HitSlow(const char* name);
  void UpdateActive();  // caller holds mu_

  std::atomic<bool> active_{false};  // armed or tracking
  mutable std::mutex mu_;
  bool tracking_ = false;
  bool armed_ = false;
  bool fired_ = false;
  int remaining_skips_ = 0;
  std::string armed_name_;
  std::string fired_point_;
  std::function<void()> handler_;
  std::set<std::string> seen_;
};

#define ELMO_KILL_POINT(point_name) \
  ::elmo::KillPointRegistry::Instance().Hit(point_name)

}  // namespace elmo
