#include "stress_kit/expected_state.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/random.h"

namespace elmo::stress {

namespace {

using Interval = std::pair<uint64_t, uint64_t>;  // [lo, hi)

std::vector<Interval> Intersect(const std::vector<Interval>& a,
                                const std::vector<Interval>& b) {
  std::vector<Interval> out;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const uint64_t lo = std::max(a[i].first, b[j].first);
    const uint64_t hi = std::min(a[i].second, b[j].second);
    if (lo < hi) out.push_back({lo, hi});
    if (a[i].second < b[j].second) {
      i++;
    } else {
      j++;
    }
  }
  return out;
}

}  // namespace

std::string StressKeyName(uint32_t key_index) {
  char buf[16];
  snprintf(buf, sizeof(buf), "key%08u", key_index);
  return buf;
}

bool ParseStressKey(const Slice& key, uint32_t* key_index) {
  if (key.size() != 11 || memcmp(key.data(), "key", 3) != 0) return false;
  uint32_t v = 0;
  for (size_t i = 3; i < key.size(); i++) {
    const char c = key.data()[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint32_t>(c - '0');
  }
  *key_index = v;
  return true;
}

std::string StressValueFor(uint32_t key_index, uint64_t op_index, size_t len) {
  char hdr[48];
  const int n = snprintf(hdr, sizeof(hdr), "v:%u:%" PRIu64 ":", key_index,
                         op_index);
  std::string value(hdr, static_cast<size_t>(n));
  Random64 filler(op_index * 0x9e3779b97f4a7c15ull ^ key_index);
  while (value.size() < len) {
    value.push_back(static_cast<char>('a' + filler.Uniform(26)));
  }
  return value;
}

bool DecodeStressValue(const Slice& value, uint32_t* key_index,
                       uint64_t* op_index) {
  unsigned key = 0;
  unsigned long long op = 0;
  int consumed = 0;
  const std::string v = value.ToString();
  if (sscanf(v.c_str(), "v:%u:%llu:%n", &key, &op, &consumed) < 2 ||
      consumed <= 0) {
    return false;
  }
  *key_index = key;
  *op_index = op;
  // The filler is a pure function of (key, op); any flipped byte that
  // survived the engine's CRCs shows up as a mismatch here.
  return v == StressValueFor(key, op, v.size());
}

ExpectedState::ExpectedState(uint32_t num_keys, int shards)
    : num_keys_(num_keys),
      shard_mu_(std::max(1, shards)),
      history_(num_keys),
      key_floor_(num_keys, 0) {}

void ExpectedState::RecordWrite(uint32_t key, uint64_t op_index,
                                bool is_delete, bool acked) {
  std::lock_guard<std::mutex> l(MuFor(key));
  history_[key].push_back(Entry{op_index, is_delete, acked});
}

void ExpectedState::RecordSyncPoint(uint64_t op_index) {
  uint64_t cur = last_sync_.load(std::memory_order_relaxed);
  while (cur < op_index &&
         !last_sync_.compare_exchange_weak(cur, op_index,
                                           std::memory_order_acq_rel)) {
  }
}

void ExpectedState::RecordKeySync(uint32_t key, uint64_t op_index) {
  std::lock_guard<std::mutex> l(MuFor(key));
  key_floor_[key] = std::max(key_floor_[key], op_index);
}

ExpectedState::Expected ExpectedState::Latest(uint32_t key) const {
  std::lock_guard<std::mutex> l(MuFor(key));
  const auto& h = history_[key];
  Expected e;
  if (!h.empty() && !h.back().is_delete) {
    e.exists = true;
    e.op_index = h.back().op;
  }
  return e;
}

void ExpectedState::PruneUnacked() {
  for (uint32_t k = 0; k < num_keys_; k++) {
    std::lock_guard<std::mutex> l(MuFor(k));
    auto& h = history_[k];
    h.erase(std::remove_if(h.begin(), h.end(),
                           [](const Entry& e) { return !e.acked; }),
            h.end());
  }
}

uint64_t ExpectedState::LiveKeyCount() const {
  uint64_t n = 0;
  for (uint32_t k = 0; k < num_keys_; k++) {
    if (Latest(k).exists) n++;
  }
  return n;
}

std::string ExpectedState::DescribeKey(uint32_t key,
                                       const Observed& obs) const {
  char buf[256];
  std::string tail;
  const auto& h = history_[key];
  const size_t start = h.size() > 3 ? h.size() - 3 : 0;
  for (size_t i = start; i < h.size(); i++) {
    char e[64];
    snprintf(e, sizeof(e), "%s%s@%" PRIu64 "%s", i == start ? "" : ", ",
             h[i].is_delete ? "del" : "put", h[i].op,
             h[i].acked ? "" : "(unacked)");
    tail += e;
  }
  if (obs.found) {
    snprintf(buf, sizeof(buf),
             "key %u: observed value from op %" PRIu64
             "; history tail [%s]; last_sync=%" PRIu64,
             key, obs.op_index, tail.c_str(), last_sync());
  } else {
    snprintf(buf, sizeof(buf),
             "key %u: observed MISSING; history tail [%s]; last_sync=%" PRIu64,
             key, tail.c_str(), last_sync());
  }
  return buf;
}

bool ExpectedState::VerifyCrashCut(const std::vector<Observed>& observed,
                                   uint64_t max_op_index, uint64_t* cut,
                                   std::string* divergence) {
  // Caller guarantees quiescence (workers joined, DB reopened).
  const uint64_t horizon = max_op_index + 1;  // cuts live in [0, max_op]
  std::vector<Interval> acc{{last_sync(), horizon}};
  for (uint32_t key = 0; key < num_keys_ && key < observed.size(); key++) {
    const auto& h = history_[key];
    const Observed& obs = observed[key];
    std::vector<Interval> allowed;
    if (obs.found) {
      for (size_t i = 0; i < h.size(); i++) {
        if (!h[i].is_delete && h[i].op == obs.op_index) {
          allowed.push_back(
              {h[i].op, i + 1 < h.size() ? h[i + 1].op : horizon});
          break;
        }
      }
      if (allowed.empty()) {
        *divergence = DescribeKey(key, obs) +
                      " — value does not correspond to any recorded write "
                      "(resurrected or corrupt)";
        return false;
      }
    } else {
      if (h.empty()) {
        continue;  // never written: missing is consistent with every cut
      }
      if (h[0].op > 0) allowed.push_back({0, h[0].op});
      for (size_t i = 0; i < h.size(); i++) {
        if (h[i].is_delete) {
          allowed.push_back(
              {h[i].op, i + 1 < h.size() ? h[i + 1].op : horizon});
        }
      }
      if (allowed.empty()) {
        *divergence = DescribeKey(key, obs) +
                      " — key was written before any crash window and never "
                      "deleted (lost write)";
        return false;
      }
    }
    acc = Intersect(acc, allowed);
    if (acc.empty()) {
      *divergence =
          DescribeKey(key, obs) +
          " — no single WAL cut at or after last_sync explains all keys";
      return false;
    }
  }
  *cut = acc.front().first;
  // Lost ops (op > cut) never happened; recovery also flushed the WAL
  // into synced L0 tables, so the surviving prefix is durable now.
  for (uint32_t key = 0; key < num_keys_; key++) {
    auto& h = history_[key];
    while (!h.empty() && h.back().op > *cut) h.pop_back();
    key_floor_[key] = h.empty() ? 0 : h.back().op;
  }
  last_sync_.store(*cut, std::memory_order_release);
  return true;
}

bool ExpectedState::VerifyCrashRelaxed(const std::vector<Observed>& observed,
                                       std::string* divergence) {
  for (uint32_t key = 0; key < num_keys_ && key < observed.size(); key++) {
    auto& h = history_[key];
    const Observed& obs = observed[key];
    // Durability floor: the key's own synced entry (RecordKeySync) —
    // anything observed must be at least this new.
    const uint64_t floor = key_floor_[key];
    if (obs.found) {
      size_t hit = h.size();
      for (size_t i = 0; i < h.size(); i++) {
        if (!h[i].is_delete && h[i].op == obs.op_index) {
          hit = i;
          break;
        }
      }
      if (hit == h.size()) {
        *divergence = DescribeKey(key, obs) +
                      " — value does not correspond to any recorded write";
        return false;
      }
      if (obs.op_index < floor) {
        *divergence = DescribeKey(key, obs) +
                      " — older than the key's synced write (durable data "
                      "lost)";
        return false;
      }
      h.resize(hit + 1);
      key_floor_[key] = obs.op_index;
    } else {
      if (floor > 0) {
        // The synced entry could itself be a delete; find it.
        bool floor_is_delete = false;
        for (const auto& e : h) {
          if (e.op == floor) floor_is_delete = e.is_delete;
        }
        bool delete_at_or_after_floor = floor_is_delete;
        for (const auto& e : h) {
          if (e.is_delete && e.op >= floor) delete_at_or_after_floor = true;
        }
        if (!delete_at_or_after_floor) {
          *divergence = DescribeKey(key, obs) +
                        " — synced value vanished without a delete";
          return false;
        }
      }
      // Recovery kept "missing": truncate to the newest delete (or
      // empty) so future expectations start from the observed state.
      while (!h.empty() && !h.back().is_delete) h.pop_back();
      key_floor_[key] = h.empty() ? 0 : h.back().op;
    }
  }
  return true;
}

}  // namespace elmo::stress
