// The expected-state oracle behind elmo_stress. Every write the driver
// issues is recorded here as a (key, op_index, put|delete, acked)
// history entry; op indexes are globally unique and monotonically
// increasing, and every stored value encodes its own (key, op_index),
// so any byte the DB later returns can be located in the history.
//
// After a crash + DropUnsyncedData + reopen, WAL-prefix semantics say
// the recovered database must equal the oracle's state at SOME single
// cut S: all writes with op_index <= S applied, everything later gone —
// and S must be at least the last acknowledged synced write (nothing
// durable may be lost). VerifyCrashCut checks exactly that: it
// intersects, across all keys, the set of cuts each key's observed
// value allows, then truncates the history to the chosen cut. This
// strict check is sound when the driver runs single-threaded (op order
// == WAL order); multi-threaded runs use VerifyCrashRelaxed, which
// checks per-key history membership and per-key durability floors
// instead of a global cut.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/slice.h"

namespace elmo::stress {

// Keys are "key%08u" so lexicographic order == numeric order.
std::string StressKeyName(uint32_t key_index);
bool ParseStressKey(const Slice& key, uint32_t* key_index);

// Values are "v:<key>:<op>:" plus deterministic filler derived from
// (key, op) — self-identifying and cheap to re-derive for validation.
std::string StressValueFor(uint32_t key_index, uint64_t op_index, size_t len);
// Decode + integrity-check (the filler must match a regeneration).
bool DecodeStressValue(const Slice& value, uint32_t* key_index,
                       uint64_t* op_index);

class ExpectedState {
 public:
  explicit ExpectedState(uint32_t num_keys, int shards = 16);

  uint32_t num_keys() const { return num_keys_; }

  // Record a write the driver attempted. `acked` = the DB returned OK.
  // Unacked writes stay in the history: they may legally surface after
  // a crash (they can have reached the WAL before the error).
  void RecordWrite(uint32_t key, uint64_t op_index, bool is_delete,
                   bool acked);
  // All acked ops with index <= op_index are durable (single-threaded
  // driver only: op order there matches WAL order).
  void RecordSyncPoint(uint64_t op_index);
  // Multi-threaded form: only key's own entry at op_index is known
  // durable.
  void RecordKeySync(uint32_t key, uint64_t op_index);
  uint64_t last_sync() const {
    return last_sync_.load(std::memory_order_acquire);
  }

  // Steady-state expectation for reads between crashes.
  struct Expected {
    bool exists = false;
    uint64_t op_index = 0;  // of the newest put when exists
  };
  Expected Latest(uint32_t key) const;
  uint64_t LiveKeyCount() const;

  // Transient-fault campaigns (no crash, no reopen): a write the DB
  // refused can never become visible — the memtable insert is gated on
  // WAL success and only a reopen replays WAL bytes. Drop every unacked
  // entry so Latest() states exactly what the open DB must serve.
  void PruneUnacked();

  // What a post-recovery scan found for each key.
  struct Observed {
    bool found = false;
    uint64_t op_index = 0;
  };

  // Strict WAL-prefix verification (see file comment). On success picks
  // the smallest consistent cut, truncates the history to it, marks it
  // durable (recovery flushed the WAL into synced L0 tables) and
  // returns it in *cut. On failure fills *divergence with the first
  // inconsistent key. `max_op_index` = highest op index ever issued.
  bool VerifyCrashCut(const std::vector<Observed>& observed,
                      uint64_t max_op_index, uint64_t* cut,
                      std::string* divergence);

  // Relaxed per-key verification for multi-threaded runs: each observed
  // value must exist in its key's history at or above the key's
  // durability floor; missing keys need a delete (or empty history) at
  // or above the floor. Truncates each key's history to what recovery
  // kept.
  bool VerifyCrashRelaxed(const std::vector<Observed>& observed,
                          std::string* divergence);

 private:
  struct Entry {
    uint64_t op = 0;
    bool is_delete = false;
    bool acked = false;
  };

  std::mutex& MuFor(uint32_t key) const {
    return shard_mu_[key % shard_mu_.size()];
  }
  std::string DescribeKey(uint32_t key, const Observed& obs) const;

  const uint32_t num_keys_;
  mutable std::vector<std::mutex> shard_mu_;
  std::vector<std::vector<Entry>> history_;  // per key, op ascending
  std::vector<uint64_t> key_floor_;          // per-key durable op floor
  std::atomic<uint64_t> last_sync_{0};
};

}  // namespace elmo::stress
