// The crash-recovery stress driver behind tools/elmo_stress: randomized
// Put/Get/Delete/WriteBatch/Iterator/property traffic against a DB
// running on FaultInjectionEnv, punctuated by crash → DropUnsyncedData
// → reopen cycles triggered either by arming a random engine kill point
// or by cutting power directly between ops. After every recovery the
// expected-state oracle (expected_state.h) checks WAL-prefix
// consistency, an iterator/point-read cross-check runs over every key,
// and the whole DB directory must pass elmo_dump-level dissection.
//
// Under SimEnv (env_kind="sim", threads=1) a run is a pure function of
// the seed: same seed → same op stream, same fault schedule, same
// verdict, same schedule_hash. That makes
//   elmo_stress --options_file=<llm proposal> --seed=N
// a reproducible crash-certification gate for tuning proposals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_injection_env.h"
#include "lsm/options.h"

namespace elmo::stress {

struct StressConfig {
  uint64_t seed = 42;
  uint64_t ops = 20000;  // total ops, split evenly across crash cycles
  int crash_cycles = 10;
  int threads = 1;  // >1 switches the oracle to relaxed per-key checks
  uint32_t num_keys = 512;  // rounded up to a multiple of `shards`
  size_t value_len = 64;
  // Op mix in percent (remainder = plain puts).
  int delete_pct = 10;
  int get_pct = 30;
  int iterate_pct = 8;
  int batch_pct = 10;
  int property_pct = 2;
  int sync_every = 31;    // ~1/N of writes use sync=true (0 = never)
  int flush_every = 511;  // ~1/N ops call FlushMemTable (0 = never)
  // "sim" (deterministic virtual clock), "mem" (in-memory, real clock)
  // or "posix" (db_path must be a real directory).
  std::string env_kind = "sim";
  std::string db_path = "/stress_db";
  // Starting options; env/create_if_missing are overridden by the
  // driver. Load an LLM proposal into this to crash-certify it.
  lsm::Options base_options;
  int shards = 16;
  bool use_kill_points = true;  // arm a random kill point on ~half the cycles
  bool read_faults = true;      // seeded read-fault segments (errors, short
                                // reads, SST bit flips vs block CRCs)
  bool write_faults = true;     // occasional injected write-error segments
  int drop_mode = -1;  // -1: random per crash; else a DropMode value
  // Plant a real consistency bug (FaultInjectionEnv lies about WAL
  // sync): the run MUST end with ok=false and a first_divergence.
  bool plant_wal_sync_violation = false;
  // Transient-fault recovery campaign: instead of crash → drop → reopen
  // cycles, each cycle arms a seeded *retryable* write/sync error burst
  // (FaultInjectionConfig{retryable, transient_ops}) mid-traffic and the
  // DB is NEVER reopened — it must ride the burst out via the
  // ErrorHandler's auto-resume (writes stall or fail fast while
  // degraded, reads keep serving). After each burst the driver waits for
  // the error state to clear, proves writes ack again, and checks every
  // key against the oracle: no acknowledged write may be lost. Disables
  // kill points and crash cycles.
  bool transient_faults = false;
  // Hook-operation budget per transient burst (the burst disarms itself
  // after this many fault-hook calls, as if the device recovered).
  uint64_t transient_burst_ops = 40;
  // When non-empty, every DB open (re)starts a span trace at this path
  // (lsm/span.h); the file holds the last cycle's trace. Best-effort:
  // a crash can drop the unsynced tail with everything else.
  std::string span_trace_path;
};

struct StressReport {
  bool ok = false;
  std::string first_divergence;  // empty when ok
  uint64_t ops_executed = 0;
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t gets = 0;
  uint64_t iterator_ops = 0;
  uint64_t batches = 0;
  uint64_t sync_writes = 0;
  uint64_t flushes = 0;
  uint64_t property_checks = 0;
  int crash_cycles_done = 0;
  // Transient-fault campaign: retryable bursts ridden out (no reopen),
  // split by how the error state cleared — auto-resume alone vs a
  // manual DB::Resume() fallback (the CI leg alerts when the fallback
  // ever fires).
  int transient_bursts_done = 0;
  uint64_t auto_resumes = 0;
  uint64_t manual_resumes = 0;
  uint64_t kill_point_fires = 0;
  uint64_t write_failures = 0;        // ops refused by faults/cut power
  uint64_t read_faults_tolerated = 0;  // reads failed under injection
  uint64_t final_live_keys = 0;
  uint64_t schedule_hash = 0;  // op/fault/verdict fingerprint (stable
                               // for equal seeds when threads==1 + sim)
  FaultCounters fault_counters;
  // Final "elmo.perf" property dump: process-aggregated PerfContext
  // counters plus the per-op-kind span aggregate.
  std::string perf_breakdown;
  std::string ToJson() const;
};

// Run one full stress campaign. Never throws; violations and setup
// failures both land in report.ok / report.first_divergence.
StressReport RunStress(const StressConfig& config);

// Kill-point names the driver arms (must exist in the engine; see
// stress_kit_test which asserts they are reachable).
const std::vector<std::string>& StressKillPoints();

// "123" → 123; anything non-numeric hashes (FNV-1a) so --seed=ci works.
uint64_t StressSeedFromString(const std::string& s);

}  // namespace elmo::stress
