#include "stress_kit/stress_driver.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_kit/dump_tool.h"
#include "env/hardware_profile.h"
#include "env/mem_env.h"
#include "env/sim_env.h"
#include "fault/kill_point.h"
#include "lsm/db.h"
#include "lsm/perf_context.h"
#include "stress_kit/expected_state.h"
#include "util/json.h"
#include "util/random.h"

namespace elmo::stress {

const std::vector<std::string>& StressKillPoints() {
  static const std::vector<std::string> kPoints = {
      "wal:after_append",
      "wal:after_sync",
      "flush:before_sst_sync",
      "flush:after_sst_sync",
      "flush:before_manifest_apply",
      "compaction:before_output_sync",
      "compaction:after_apply",
      "manifest:before_sync",
      "manifest:after_sync",
      "current:before_rename",
      "current:after_rename",
  };
  return kPoints;
}

uint64_t StressSeedFromString(const std::string& s) {
  if (!s.empty() && s.find_first_not_of("0123456789") == std::string::npos) {
    return strtoull(s.c_str(), nullptr, 10);
  }
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string StressReport::ToJson() const {
  const auto escape = [](const std::string& in) {
    std::string out;
    for (const char c : in) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  };
  const std::string escaped = escape(first_divergence);
  char buf[2048];
  snprintf(
      buf, sizeof(buf),
      "{\"ok\": %s, \"first_divergence\": \"%s\", \"ops_executed\": %" PRIu64
      ", \"puts\": %" PRIu64 ", \"deletes\": %" PRIu64 ", \"gets\": %" PRIu64
      ", \"iterator_ops\": %" PRIu64 ", \"batches\": %" PRIu64
      ", \"sync_writes\": %" PRIu64 ", \"flushes\": %" PRIu64
      ", \"property_checks\": %" PRIu64 ", \"crash_cycles_done\": %d"
      ", \"transient_bursts_done\": %d, \"auto_resumes\": %" PRIu64
      ", \"manual_resumes\": %" PRIu64
      ", \"kill_point_fires\": %" PRIu64 ", \"write_failures\": %" PRIu64
      ", \"read_faults_tolerated\": %" PRIu64 ", \"final_live_keys\": %" PRIu64
      ", \"schedule_hash\": \"%016" PRIx64 "\", \"fault_counters\": "
      "{\"read_errors\": %" PRIu64 ", \"write_errors\": %" PRIu64
      ", \"sync_errors\": %" PRIu64 ", \"short_reads\": %" PRIu64
      ", \"read_corruptions\": %" PRIu64 ", \"wal_sync_lies\": %" PRIu64
      ", \"transient_expiries\": %" PRIu64
      ", \"files_dropped\": %" PRIu64 ", \"bytes_dropped\": %" PRIu64 "}",
      ok ? "true" : "false", escaped.c_str(), ops_executed, puts, deletes,
      gets, iterator_ops, batches, sync_writes, flushes, property_checks,
      crash_cycles_done, transient_bursts_done, auto_resumes, manual_resumes,
      kill_point_fires, write_failures,
      read_faults_tolerated, final_live_keys, schedule_hash,
      fault_counters.read_errors, fault_counters.write_errors,
      fault_counters.sync_errors, fault_counters.short_reads,
      fault_counters.read_corruptions, fault_counters.wal_sync_lies,
      fault_counters.transient_expiries,
      fault_counters.files_dropped, fault_counters.bytes_dropped);
  std::string out = buf;
  out += ", \"perf_breakdown\": \"" + escape(perf_breakdown) + "\"}";
  return out;
}

namespace {

StressConfig Sanitize(StressConfig cfg) {
  cfg.shards = std::max(1, cfg.shards);
  cfg.crash_cycles = std::max(1, cfg.crash_cycles);
  cfg.threads = std::max(1, cfg.threads);
  cfg.ops = std::max<uint64_t>(cfg.ops, 1);
  // Batches pick shard-congruent keys (one order lock); keep enough
  // keys that 4 congruent picks stay distinct.
  const uint32_t min_keys = static_cast<uint32_t>(4 * cfg.shards);
  cfg.num_keys = std::max(cfg.num_keys, min_keys);
  const uint32_t rem = cfg.num_keys % cfg.shards;
  if (rem != 0) cfg.num_keys += cfg.shards - rem;
  cfg.value_len = std::max<size_t>(cfg.value_len, 24);
  if (cfg.transient_faults) {
    // The transient campaign is a pure error-handling exercise: one op
    // stream, the retryable burst as the only fault source, and no
    // power cuts — the strict oracle check then demands every acked
    // write stays exactly visible.
    cfg.threads = 1;
    cfg.use_kill_points = false;
    cfg.read_faults = false;
    cfg.write_faults = false;
    cfg.plant_wal_sync_violation = false;
    cfg.transient_burst_ops = std::max<uint64_t>(cfg.transient_burst_ops, 4);
  }
  return cfg;
}

class StressDriver {
 public:
  explicit StressDriver(const StressConfig& config)
      : cfg_(Sanitize(config)),
        oracle_(cfg_.num_keys, cfg_.shards),
        rng_(cfg_.seed),
        order_mu_(cfg_.shards) {}

  StressReport Run() {
    Status s = Setup();
    if (!s.ok()) {
      Violation("setup failed: " + s.ToString());
      return Finish();
    }
    if (cfg_.transient_faults) {
      RunTransientCampaign();
      return Finish();
    }
    // A fired kill point cuts its segment short, so undone ops roll
    // forward: extra cycles run until the campaign has executed exactly
    // cfg_.ops (every cycle makes progress — the filesystem is active
    // at segment start, so op counts cannot stall).
    int cycle = 0;
    while (!violation_ &&
           (cycle < cfg_.crash_cycles || ops_executed_ < cfg_.ops)) {
      const uint64_t done = ops_executed_;
      const uint64_t remaining = cfg_.ops > done ? cfg_.ops - done : 0;
      const int cycles_left = std::max(1, cfg_.crash_cycles - cycle);
      const uint64_t n = std::max<uint64_t>(
          1, remaining / static_cast<uint64_t>(cycles_left));
      RunSegment(cycle, n);
      if (violation_) break;
      CrashAndRecover();
      cycle++;
    }
    return Finish();
  }

 private:
  struct SegmentPlan {
    bool arm = false;
    std::string point;
    int skip = 0;
    bool read_faults = false;
    bool write_faults = false;
  };

  bool single_threaded() const { return cfg_.threads <= 1; }

  void Fold(uint64_t v) {
    // FNV-1a over every decision; only meaningful (and only folded from
    // one thread) in single-threaded mode.
    hash_ ^= v;
    hash_ *= 1099511628211ull;
  }
  void FoldST(uint64_t v) {
    if (single_threaded()) Fold(v);
  }

  void Violation(const std::string& why) {
    std::lock_guard<std::mutex> l(violation_mu_);
    if (!violation_) first_divergence_ = why;
    violation_ = true;
    segment_stop_ = true;
  }

  Status Setup() {
    // The report embeds "elmo.perf" (thread-local PerfContext plus the
    // process-wide span aggregate). Zero both so same-seed campaigns in
    // one process produce byte-identical reports. Safe here: no other
    // DB is open while a stress campaign runs.
    lsm::GetPerfContext()->Reset();
    lsm::GlobalSpanAggregate()->Reset();
    if (cfg_.env_kind == "sim") {
      sim_env_ = std::make_unique<SimEnv>(
          HardwareProfile::Make(4, 4, DeviceModel::NvmeSsd()), cfg_.seed);
      base_env_ = sim_env_.get();
    } else if (cfg_.env_kind == "mem") {
      mem_env_ = std::make_unique<MemEnv>();
      base_env_ = mem_env_.get();
    } else if (cfg_.env_kind == "posix") {
      base_env_ = Env::Posix();
    } else {
      return Status::InvalidArgument("unknown env_kind: " + cfg_.env_kind);
    }
    fault_ = std::make_unique<FaultInjectionEnv>(base_env_,
                                                 cfg_.seed ^ 0x5deece66dull);
    if (cfg_.env_kind == "posix") {
      lsm::Options destroy_opts = cfg_.base_options;
      destroy_opts.env = fault_.get();
      lsm::DB::DestroyDB(cfg_.db_path, destroy_opts);
      fault_->ResetState();
    }
    ApplyBaseInjection();
    return OpenDb();
  }

  Status OpenDb() {
    lsm::Options o = cfg_.base_options;
    o.env = fault_.get();
    o.create_if_missing = true;
    if (cfg_.read_faults) {
      // Bit-flip injection relies on block CRCs being checked on every
      // SST read (including compaction inputs).
      o.paranoid_checks = true;
    }
    db_.reset();
    Status s = lsm::DB::Open(o, cfg_.db_path, &db_);
    if (s.ok() && !cfg_.span_trace_path.empty()) {
      // Best-effort per-cycle span trace; the file holds the last
      // cycle's capture. A crash may drop its unsynced tail.
      db_->StartSpanTrace(cfg_.span_trace_path);
    }
    return s;
  }

  // Error injection that outlives segment plans (the planted WAL-sync
  // lie must persist so the oracle can catch it).
  void ApplyBaseInjection() {
    FaultInjectionConfig fc;
    fc.lie_on_wal_sync = cfg_.plant_wal_sync_violation;
    fault_->SetErrorInjection(fc);
    faults_active_ = false;
  }

  void ApplySegmentInjection(const SegmentPlan& plan) {
    FaultInjectionConfig fc;
    fc.lie_on_wal_sync = cfg_.plant_wal_sync_violation;
    if (plan.read_faults) {
      fc.read_error = 0.002;
      fc.short_read = 0.002;
      fc.read_corruption = 0.01;
      // Never fault WAL/MANIFEST reads: a short read there looks like a
      // clean EOF to the log reader and would silently hide records.
      fc.kinds = {IOFileKind::kSstData, IOFileKind::kSstIndexFilter};
    } else if (plan.write_faults) {
      fc.write_error = 0.001;
      fc.kinds = {IOFileKind::kWal, IOFileKind::kSstData,
                  IOFileKind::kManifest};
    }
    fault_->SetErrorInjection(fc);
    faults_active_ = plan.read_faults || plan.write_faults;
  }

  SegmentPlan PlanSegment() {
    SegmentPlan plan;
    if (cfg_.use_kill_points) {
      const auto& points = StressKillPoints();
      plan.arm = rng_.Uniform(2) == 0;
      plan.point = points[rng_.Uniform(points.size())];
      plan.skip = static_cast<int>(rng_.Uniform(3));
    }
    plan.read_faults = cfg_.read_faults && rng_.Uniform(4) == 0;
    plan.write_faults =
        !plan.read_faults && cfg_.write_faults && rng_.Uniform(8) == 0;
    Fold(plan.arm ? StressSeedFromString(plan.point) : 0);
    Fold(plan.skip);
    Fold((plan.read_faults ? 2u : 0u) | (plan.write_faults ? 1u : 0u));
    return plan;
  }

  uint64_t WorkerSeed(int cycle, int tid) const {
    const uint64_t x =
        cfg_.seed ^
        0x9e3779b97f4a7c15ull * static_cast<uint64_t>(cycle * 64 + tid + 1);
    return x ? x : 1;
  }

  void RunSegment(int cycle, uint64_t n) {
    const SegmentPlan plan = PlanSegment();
    auto& registry = KillPointRegistry::Instance();
    if (plan.arm) {
      registry.Arm(plan.point, [env = fault_.get()] { env->CrashNow(); },
                   plan.skip);
    }
    ApplySegmentInjection(plan);
    segment_stop_ = false;
    if (single_threaded()) {
      Random64 rng(WorkerSeed(cycle, 0));
      for (uint64_t i = 0; i < n && !segment_stop_ && !violation_; i++) {
        DoOneOp(rng);
      }
    } else {
      const uint64_t each = std::max<uint64_t>(1, n / cfg_.threads);
      std::vector<std::thread> workers;
      for (int t = 0; t < cfg_.threads; t++) {
        workers.emplace_back([this, cycle, t, each] {
          Random64 rng(WorkerSeed(cycle, t));
          for (uint64_t i = 0; i < each && !segment_stop_ && !violation_;
               i++) {
            DoOneOp(rng);
          }
        });
      }
      for (auto& w : workers) w.join();
    }
    ApplyBaseInjection();
    if (plan.arm) {
      if (registry.fired()) {
        kill_point_fires_++;
      } else {
        registry.Disarm();
      }
    }
  }

  void CrashAndRecover() {
    // Power off (idempotent if a kill point already cut it), tear the
    // process state down, rewind the device, reboot, reopen, verify.
    fault_->CrashNow();
    const uint64_t max_op = next_op_.load() - 1;
    db_.reset();
    DropMode mode = cfg_.drop_mode >= 0
                        ? static_cast<DropMode>(cfg_.drop_mode)
                        : static_cast<DropMode>(rng_.Uniform(3));
    FoldST(static_cast<uint64_t>(mode));
    Status s = fault_->DropUnsyncedData(mode);
    if (!s.ok()) {
      Violation("DropUnsyncedData failed: " + s.ToString());
      return;
    }
    fault_->SetFilesystemActive(true);
    Status open = OpenDb();
    if (!open.ok()) {
      Violation("recovery failed to open the DB: " + open.ToString());
      return;
    }
    VerifyRecovery(max_op);
    crash_cycles_done_++;
  }

  void VerifyRecovery(uint64_t max_op) {
    // elmo_dump must be able to dissect every recovered artifact.
    std::string text;
    Status ds = bench::DumpDbDir(fault_.get(), cfg_.db_path, &text);
    if (!ds.ok()) {
      Violation("post-recovery elmo_dump integrity check failed: " +
                ds.ToString());
      return;
    }

    std::vector<ExpectedState::Observed> obs(cfg_.num_keys);
    lsm::ReadOptions ro;
    ro.verify_checksums = true;
    uint64_t found = 0;
    {
      auto it = db_->NewIterator(ro);
      std::string prev;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        uint32_t k = 0, vk = 0;
        uint64_t op = 0;
        const std::string cur = it->key().ToString();
        if (!ParseStressKey(it->key(), &k) || k >= cfg_.num_keys) {
          Violation("recovered scan returned a foreign key: " + cur);
          return;
        }
        if (!DecodeStressValue(it->value(), &vk, &op) || vk != k) {
          Violation("recovered value for " + cur +
                    " is corrupt or mislabeled");
          return;
        }
        if (!prev.empty() && prev >= cur) {
          Violation("recovered iterator order broken at " + cur);
          return;
        }
        if (obs[k].found) {
          Violation("recovered scan returned " + cur + " twice");
          return;
        }
        obs[k] = {true, op};
        found++;
        prev = cur;
      }
      if (!it->status().ok()) {
        Violation("recovered iterator failed: " + it->status().ToString());
        return;
      }
    }

    // Point reads must agree with the scan.
    for (uint32_t k = 0; k < cfg_.num_keys; k++) {
      std::string v;
      Status gs = db_->Get(ro, StressKeyName(k), &v);
      if (gs.ok() != obs[k].found) {
        Violation(StressKeyName(k) +
                  (obs[k].found
                       ? ": present in scan but Get says " + gs.ToString()
                       : ": missing in scan but Get found a value"));
        return;
      }
      if (!gs.ok() && !gs.IsNotFound()) {
        Violation("post-recovery Get(" + StressKeyName(k) +
                  ") failed: " + gs.ToString());
        return;
      }
      if (gs.ok()) {
        uint32_t vk = 0;
        uint64_t op = 0;
        if (!DecodeStressValue(v, &vk, &op) || vk != k ||
            op != obs[k].op_index) {
          Violation("Get and iterator disagree on " + StressKeyName(k));
          return;
        }
      }
    }

    std::string why;
    if (single_threaded()) {
      uint64_t cut = 0;
      if (!oracle_.VerifyCrashCut(obs, max_op, &cut, &why)) {
        Violation(why);
        return;
      }
      Fold(cut);
    } else {
      if (!oracle_.VerifyCrashRelaxed(obs, &why)) {
        Violation(why);
        return;
      }
    }
    FoldST(found);
  }

  // ---- transient-fault campaign (no crash, no reopen) ----

  // True while the engine reports an active background error.
  bool DbDegraded() {
    std::string text;
    if (!db_->GetProperty("elmo.bg_error", &text)) return false;
    json::Value doc;
    if (!json::Parse(text, &doc).ok()) return false;
    const json::Value* sev = doc.Find("severity");
    return sev != nullptr && sev->as_string() != "none";
  }

  void RunTransientCampaign() {
    // cfg_.crash_cycles counts burst/recover cycles here; the DB opened
    // in Setup() stays open for the whole campaign.
    int cycle = 0;
    while (!violation_ &&
           (cycle < cfg_.crash_cycles || ops_executed_ < cfg_.ops)) {
      const uint64_t done = ops_executed_;
      const uint64_t remaining = cfg_.ops > done ? cfg_.ops - done : 0;
      const int cycles_left = std::max(1, cfg_.crash_cycles - cycle);
      const uint64_t n = std::max<uint64_t>(
          4, remaining / static_cast<uint64_t>(cycles_left));
      RunTransientCycle(cycle, n);
      cycle++;
    }
  }

  void RunTransientCycle(int cycle, uint64_t n) {
    // Clean traffic first, then a seeded retryable burst mid-stream
    // while ops keep coming (failed writes land in the oracle as
    // unacked), then recovery + the no-lost-acks check.
    segment_stop_ = false;
    Random64 rng(WorkerSeed(cycle, 0));
    const uint64_t clean = n / 3 + 1;
    for (uint64_t i = 0; i < clean && !violation_; i++) DoOneOp(rng);
    if (violation_) return;

    FaultInjectionConfig fc;
    fc.retryable = true;
    fc.transient_ops = cfg_.transient_burst_ops;
    fc.write_error = 0.2;
    fc.sync_error = 0.2;
    fc.kinds = {IOFileKind::kWal, IOFileKind::kSstData,
                IOFileKind::kManifest};
    fault_->SetErrorInjection(fc);
    faults_active_ = true;
    Fold(0x7f417f41u ^ static_cast<uint64_t>(cycle));

    for (uint64_t i = clean; i < n && !violation_; i++) {
      DoOneOp(rng);
      if (!fault_->InjectionArmed()) break;  // burst budget spent
    }
    ApplyBaseInjection();  // clears any remaining injection
    if (violation_) return;
    transient_bursts_done_++;

    if (!AwaitRecovery(rng)) return;
    VerifyNoLostAcks();
  }

  // Wait for the error state to clear — auto-resume first (under SimEnv
  // WaitForBackgroundWork drives the retry schedule inline by advancing
  // the virtual clock; on real envs the recovery thread polls), manual
  // Resume() as a counted last resort — then prove writes ack again.
  bool AwaitRecovery(Random64& rng) {
    bool manual = false;
    for (int i = 0; i < 64 && DbDegraded(); i++) {
      db_->WaitForBackgroundWork();
      if (!DbDegraded()) break;
      if (i >= 8) {
        manual = true;
        db_->Resume();
      } else {
        base_env_->SleepForMicroseconds(10 * 1000);
      }
    }
    if (DbDegraded()) {
      std::string text;
      db_->GetProperty("elmo.bg_error", &text);
      Violation("DB still degraded after a transient fault burst: " + text);
      return false;
    }
    if (manual) {
      manual_resumes_++;
    } else {
      auto_resumes_++;
    }
    FoldST(manual ? 2 : 1);
    // The probe write must ack — and a fully-acked write resets the
    // error handler's episode retry budget before the next burst.
    const uint32_t key = static_cast<uint32_t>(rng.Uniform(cfg_.num_keys));
    const uint64_t op = next_op_.fetch_add(1);
    lsm::WriteOptions wo;
    wo.sync = true;
    Status s = db_->Put(wo, StressKeyName(key),
                        StressValueFor(key, op, cfg_.value_len));
    oracle_.RecordWrite(key, op, /*is_delete=*/false, s.ok());
    FoldST(0x600 | key);
    if (!s.ok()) {
      Violation("post-recovery probe write failed: " + s.ToString());
      return false;
    }
    puts_++;
    sync_writes_++;
    NoteAck(op);
    oracle_.RecordSyncPoint(op);
    return true;
  }

  void VerifyNoLostAcks() {
    // No crash happened and refused writes can never surface (the
    // memtable insert is gated on WAL success), so after pruning the
    // unacked entries the oracle's Latest() per key must be EXACTLY
    // what the still-open DB serves: any acked write missing — or any
    // refused write visible — is a divergence.
    oracle_.PruneUnacked();
    lsm::ReadOptions ro;
    ro.verify_checksums = true;
    std::vector<ExpectedState::Observed> obs(cfg_.num_keys);
    {
      auto it = db_->NewIterator(ro);
      std::string prev;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        uint32_t k = 0, vk = 0;
        uint64_t op = 0;
        const std::string cur = it->key().ToString();
        if (!ParseStressKey(it->key(), &k) || k >= cfg_.num_keys) {
          Violation("post-resume scan returned a foreign key: " + cur);
          return;
        }
        if (!DecodeStressValue(it->value(), &vk, &op) || vk != k) {
          Violation("post-resume value for " + cur +
                    " is corrupt or mislabeled");
          return;
        }
        if (!prev.empty() && prev >= cur) {
          Violation("post-resume iterator order broken at " + cur);
          return;
        }
        if (obs[k].found) {
          Violation("post-resume scan returned " + cur + " twice");
          return;
        }
        obs[k] = {true, op};
        prev = cur;
      }
      if (!it->status().ok()) {
        Violation("post-resume iterator failed: " + it->status().ToString());
        return;
      }
    }
    uint64_t found = 0;
    for (uint32_t k = 0; k < cfg_.num_keys; k++) {
      const auto expected = oracle_.Latest(k);
      if (expected.exists != obs[k].found ||
          (expected.exists && expected.op_index != obs[k].op_index)) {
        char buf[192];
        snprintf(buf, sizeof(buf),
                 "acked write diverged after transient-fault recovery: %s "
                 "expected %s op %" PRIu64 ", observed %s op %" PRIu64,
                 StressKeyName(k).c_str(),
                 expected.exists ? "value" : "nothing", expected.op_index,
                 obs[k].found ? "value" : "nothing", obs[k].op_index);
        Violation(buf);
        return;
      }
      // Point reads must agree with the scan.
      std::string v;
      Status gs = db_->Get(ro, StressKeyName(k), &v);
      if (!gs.ok() && !gs.IsNotFound()) {
        Violation("post-resume Get(" + StressKeyName(k) +
                  ") failed: " + gs.ToString());
        return;
      }
      if (gs.ok() != obs[k].found) {
        Violation("post-resume Get and iterator disagree on " +
                  StressKeyName(k));
        return;
      }
      if (gs.ok()) found++;
    }
    FoldST(found);
  }

  // ---- ops ----

  std::unique_lock<std::mutex> MaybeOrderLock(uint32_t key) {
    // In multi-threaded mode the shard lock is held across DB call +
    // oracle record so each key's history order matches its WAL order.
    if (single_threaded()) return {};
    return std::unique_lock<std::mutex>(order_mu_[key % cfg_.shards]);
  }

  void NoteAck(uint64_t op) {
    uint64_t cur = last_acked_.load(std::memory_order_relaxed);
    while (cur < op && !last_acked_.compare_exchange_weak(cur, op)) {
    }
  }

  void DoOneOp(Random64& rng) {
    if (!fault_->filesystem_active()) {
      segment_stop_ = true;
      return;
    }
    ops_executed_++;
    if (cfg_.flush_every > 0 && rng.Uniform(cfg_.flush_every) == 0) {
      DoFlush();
      return;
    }
    const uint64_t pick = rng.Uniform(100);
    FoldST(pick);
    uint64_t cursor = 0;
    if (pick < (cursor += cfg_.get_pct)) {
      DoGet(rng);
    } else if (pick < (cursor += cfg_.iterate_pct)) {
      DoIterate(rng);
    } else if (pick < (cursor += cfg_.delete_pct)) {
      DoDelete(rng);
    } else if (pick < (cursor += cfg_.batch_pct)) {
      DoBatch(rng);
    } else if (pick < (cursor += cfg_.property_pct)) {
      DoProperty();
    } else {
      DoPut(rng);
    }
  }

  void DoPut(Random64& rng) {
    const uint32_t key = static_cast<uint32_t>(rng.Uniform(cfg_.num_keys));
    const bool sync =
        cfg_.sync_every > 0 && rng.Uniform(cfg_.sync_every) == 0;
    auto lock = MaybeOrderLock(key);
    const uint64_t op = next_op_.fetch_add(1);
    lsm::WriteOptions wo;
    wo.sync = sync;
    Status s = db_->Put(wo, StressKeyName(key),
                        StressValueFor(key, op, cfg_.value_len));
    oracle_.RecordWrite(key, op, /*is_delete=*/false, s.ok());
    FoldST(0x100 | key);
    FoldST(s.ok() ? 1 : 0);
    if (s.ok()) {
      puts_++;
      NoteAck(op);
      if (sync) {
        sync_writes_++;
        if (single_threaded()) {
          oracle_.RecordSyncPoint(op);
        } else {
          oracle_.RecordKeySync(key, op);
        }
      }
    } else {
      write_failures_++;
      segment_stop_ = true;
    }
  }

  void DoDelete(Random64& rng) {
    const uint32_t key = static_cast<uint32_t>(rng.Uniform(cfg_.num_keys));
    const bool sync =
        cfg_.sync_every > 0 && rng.Uniform(cfg_.sync_every) == 0;
    auto lock = MaybeOrderLock(key);
    const uint64_t op = next_op_.fetch_add(1);
    lsm::WriteOptions wo;
    wo.sync = sync;
    Status s = db_->Delete(wo, StressKeyName(key));
    oracle_.RecordWrite(key, op, /*is_delete=*/true, s.ok());
    FoldST(0x200 | key);
    FoldST(s.ok() ? 1 : 0);
    if (s.ok()) {
      deletes_++;
      NoteAck(op);
      if (sync) {
        sync_writes_++;
        if (single_threaded()) {
          oracle_.RecordSyncPoint(op);
        } else {
          oracle_.RecordKeySync(key, op);
        }
      }
    } else {
      write_failures_++;
      segment_stop_ = true;
    }
  }

  void DoBatch(Random64& rng) {
    const int count = 2 + static_cast<int>(rng.Uniform(3));
    const uint32_t k0 = static_cast<uint32_t>(rng.Uniform(cfg_.num_keys));
    auto lock = MaybeOrderLock(k0);  // all batch keys share k0's shard
    const uint64_t base = next_op_.fetch_add(count);
    WriteBatch batch;
    struct Pending {
      uint32_t key;
      uint64_t op;
      bool is_delete;
    };
    std::vector<Pending> pending;
    for (int j = 0; j < count; j++) {
      const uint32_t key = static_cast<uint32_t>(
          (k0 + static_cast<uint64_t>(j) * cfg_.shards) % cfg_.num_keys);
      const uint64_t op = base + j;
      const bool del = rng.Uniform(4) == 0;
      if (del) {
        batch.Delete(StressKeyName(key));
      } else {
        batch.Put(StressKeyName(key),
                  StressValueFor(key, op, cfg_.value_len));
      }
      pending.push_back({key, op, del});
      FoldST(0x300 | key);
    }
    Status s = db_->Write({}, &batch);
    for (const auto& p : pending) {
      oracle_.RecordWrite(p.key, p.op, p.is_delete, s.ok());
    }
    FoldST(s.ok() ? 1 : 0);
    if (s.ok()) {
      batches_++;
      NoteAck(base + count - 1);
    } else {
      write_failures_++;
      segment_stop_ = true;
    }
  }

  void DoGet(Random64& rng) {
    const uint32_t key = static_cast<uint32_t>(rng.Uniform(cfg_.num_keys));
    lsm::ReadOptions ro;
    ro.verify_checksums = true;
    std::string v;
    Status s = db_->Get(ro, StressKeyName(key), &v);
    gets_++;
    FoldST(0x400 | key);
    if (!s.ok() && !s.IsNotFound()) {
      if (faults_active_) {
        read_faults_tolerated_++;
      } else {
        Violation("Get(" + StressKeyName(key) + ") failed: " + s.ToString());
      }
      return;
    }
    uint32_t vk = 0;
    uint64_t op = 0;
    if (s.ok() && (!DecodeStressValue(v, &vk, &op) || vk != key)) {
      Violation("Get(" + StressKeyName(key) + ") returned a corrupt value");
      return;
    }
    if (single_threaded() && !faults_active_) {
      const auto expected = oracle_.Latest(key);
      if (expected.exists != s.ok() ||
          (s.ok() && op != expected.op_index)) {
        char buf[160];
        snprintf(buf, sizeof(buf),
                 "Get(%s): expected %s op %" PRIu64 ", got %s op %" PRIu64,
                 StressKeyName(key).c_str(),
                 expected.exists ? "value" : "nothing", expected.op_index,
                 s.ok() ? "value" : "nothing", op);
        Violation(buf);
      }
      FoldST(s.ok() ? op : 0);
    }
  }

  void DoIterate(Random64& rng) {
    const uint32_t start = static_cast<uint32_t>(rng.Uniform(cfg_.num_keys));
    const int steps = 1 + static_cast<int>(rng.Uniform(10));
    lsm::ReadOptions ro;
    ro.verify_checksums = true;
    auto it = db_->NewIterator(ro);
    it->Seek(StressKeyName(start));
    iterator_ops_++;
    FoldST(0x500 | start);
    std::string prev;
    for (int i = 0; i < steps && it->Valid(); i++, it->Next()) {
      uint32_t k = 0, vk = 0;
      uint64_t op = 0;
      const std::string cur = it->key().ToString();
      if (!ParseStressKey(it->key(), &k) ||
          !DecodeStressValue(it->value(), &vk, &op) || vk != k) {
        Violation("iterator surfaced a corrupt entry at " + cur);
        return;
      }
      if (!prev.empty() && prev >= cur) {
        Violation("iterator order broken at " + cur);
        return;
      }
      if (single_threaded() && !faults_active_) {
        const auto expected = oracle_.Latest(k);
        if (!expected.exists || expected.op_index != op) {
          Violation("iterator shows stale entry for " + cur);
          return;
        }
      }
      prev = cur;
    }
    if (!it->status().ok()) {
      if (faults_active_) {
        read_faults_tolerated_++;
      } else {
        Violation("iterator failed: " + it->status().ToString());
      }
    }
  }

  void DoProperty() {
    property_checks_++;
    std::string v;
    if (!db_->GetProperty("elmo.stats", &v) || v.empty()) {
      Violation("property elmo.stats unavailable");
      return;
    }
    if (!db_->GetProperty("elmo.levelstats", &v) || v.empty()) {
      Violation("property elmo.levelstats unavailable");
    }
  }

  void DoFlush() {
    const uint64_t acked_before = last_acked_.load();
    Status s = db_->FlushMemTable();
    if (s.ok()) {
      flushes_++;
      // A completed flush made every previously acked write durable
      // (SST synced + MANIFEST synced before the call returns).
      if (single_threaded()) oracle_.RecordSyncPoint(acked_before);
    } else if (faults_active_ || !fault_->filesystem_active()) {
      write_failures_++;
      segment_stop_ = true;
    } else {
      Violation("FlushMemTable failed on a healthy filesystem: " +
                s.ToString());
    }
  }

  StressReport Finish() {
    StressReport r;
    {
      std::lock_guard<std::mutex> l(violation_mu_);
      r.ok = !violation_;
      r.first_divergence = first_divergence_;
    }
    r.ops_executed = ops_executed_;
    r.puts = puts_;
    r.deletes = deletes_;
    r.gets = gets_;
    r.iterator_ops = iterator_ops_;
    r.batches = batches_;
    r.sync_writes = sync_writes_;
    r.flushes = flushes_;
    r.property_checks = property_checks_;
    r.crash_cycles_done = crash_cycles_done_;
    r.transient_bursts_done = transient_bursts_done_;
    r.auto_resumes = auto_resumes_;
    r.manual_resumes = manual_resumes_;
    r.kill_point_fires = kill_point_fires_;
    r.write_failures = write_failures_;
    r.read_faults_tolerated = read_faults_tolerated_;
    r.final_live_keys = oracle_.LiveKeyCount();
    if (fault_ != nullptr) r.fault_counters = fault_->counters();
    r.schedule_hash = hash_;
    if (db_ != nullptr) db_->GetProperty("elmo.perf", &r.perf_breakdown);
    db_.reset();
    return r;
  }

  const StressConfig cfg_;
  ExpectedState oracle_;
  Random64 rng_;  // driver decisions: plans, drop modes, crash points
  std::vector<std::mutex> order_mu_;

  std::unique_ptr<SimEnv> sim_env_;
  std::unique_ptr<MemEnv> mem_env_;
  Env* base_env_ = nullptr;
  std::unique_ptr<FaultInjectionEnv> fault_;
  std::unique_ptr<lsm::DB> db_;

  std::atomic<uint64_t> next_op_{1};
  std::atomic<uint64_t> last_acked_{0};
  std::atomic<bool> segment_stop_{false};
  std::atomic<bool> faults_active_{false};
  std::atomic<bool> violation_{false};
  std::mutex violation_mu_;
  std::string first_divergence_;
  uint64_t hash_ = 1469598103934665603ull;

  std::atomic<uint64_t> ops_executed_{0}, puts_{0}, deletes_{0}, gets_{0},
      iterator_ops_{0}, batches_{0}, sync_writes_{0}, flushes_{0},
      property_checks_{0}, kill_point_fires_{0}, write_failures_{0},
      read_faults_tolerated_{0};
  int crash_cycles_done_ = 0;
  int transient_bursts_done_ = 0;
  uint64_t auto_resumes_ = 0;
  uint64_t manual_resumes_ = 0;
};

}  // namespace

StressReport RunStress(const StressConfig& config) {
  StressDriver driver(config);
  return driver.Run();
}

}  // namespace elmo::stress
