#include "sysinfo/system_probe.h"

#include <cstdio>
#include <thread>

#include "env/sim_env.h"
#include "util/random.h"
#include "util/string_util.h"

namespace elmo::sysinfo {

namespace {

// fio-like micro-probe: sequential write + sync, sequential read,
// random 4 KiB reads. Small enough to finish instantly, big enough to
// exercise bandwidth terms.
void RunIoProbe(Env* env, const std::string& scratch_dir,
                SystemProfile* profile) {
  const std::string path = scratch_dir + "/ioprobe.tmp";
  env->CreateDirIfMissing(scratch_dir);

  constexpr uint64_t kProbeBytes = 8ull << 20;
  constexpr size_t kChunk = 1 << 20;
  std::string chunk(kChunk, 'p');

  // Sequential write + one sync.
  std::unique_ptr<WritableFile> wf;
  if (!env->NewWritableFile(path, &wf).ok()) return;
  uint64_t t0 = env->NowMicros();
  for (uint64_t off = 0; off < kProbeBytes; off += kChunk) {
    if (!wf->Append(Slice(chunk)).ok()) return;
  }
  uint64_t t_sync0 = env->NowMicros();
  wf->Sync();
  uint64_t t1 = env->NowMicros();
  wf->Close();
  profile->sync_latency_us = static_cast<double>(t1 - t_sync0);
  if (t1 > t0) {
    profile->seq_write_mbps =
        (kProbeBytes / 1048576.0) / ((t1 - t0) / 1e6);
  }

  // Sequential read.
  std::unique_ptr<SequentialFile> sf;
  if (!env->NewSequentialFile(path, &sf).ok()) return;
  std::string scratch(kChunk, '\0');
  Slice out;
  t0 = env->NowMicros();
  uint64_t total = 0;
  while (sf->Read(kChunk, &out, scratch.data()).ok() && !out.empty()) {
    total += out.size();
  }
  t1 = env->NowMicros();
  if (t1 > t0 && total > 0) {
    profile->seq_read_mbps = (total / 1048576.0) / ((t1 - t0) / 1e6);
  }

  // Random 4 KiB reads.
  std::unique_ptr<RandomAccessFile> rf;
  if (!env->NewRandomAccessFile(path, &rf).ok()) return;
  Random64 rng(123);
  constexpr int kProbes = 64;
  t0 = env->NowMicros();
  for (int i = 0; i < kProbes; i++) {
    uint64_t off = (rng.Uniform(kProbeBytes - 4096) / 4096) * 4096;
    char buf[4096];
    rf->Read(off, sizeof(buf), &out, buf);
  }
  t1 = env->NowMicros();
  profile->rand_read_latency_us = static_cast<double>(t1 - t0) / kProbes;

  env->RemoveFile(path);
}

void ReadHostFacts(SystemProfile* profile) {
  profile->cpu_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  // /proc/meminfo: "MemTotal:       16384 kB"
  FILE* f = fopen("/proc/meminfo", "r");
  if (f != nullptr) {
    char line[256];
    while (fgets(line, sizeof(line), f) != nullptr) {
      unsigned long long kb;
      if (sscanf(line, "MemTotal: %llu kB", &kb) == 1) {
        profile->memory_bytes = kb * 1024ull;
        break;
      }
    }
    fclose(f);
  }
  profile->device_name = "unknown local storage";
}

}  // namespace

std::string SystemProfile::ToPromptText() const {
  char buf[640];
  snprintf(buf, sizeof(buf),
           "CPU cores: %d\n"
           "Total memory: %s\n"
           "Storage device: %s\n"
           "Measured IO (fio-style probe): sequential write %.0f MB/s, "
           "sequential read %.0f MB/s, random 4KiB read latency %.0f us, "
           "fsync latency %.0f us\n",
           cpu_cores, FormatBytesHuman(memory_bytes).c_str(),
           device_name.c_str(), seq_write_mbps, seq_read_mbps,
           rand_read_latency_us, sync_latency_us);
  return buf;
}

SystemProfile SystemProbe::Collect(Env* env, const std::string& scratch_dir) {
  SystemProfile profile;
  if (auto* sim = dynamic_cast<SimEnv*>(env)) {
    profile.cpu_cores = sim->hardware().cpu_cores;
    profile.memory_bytes = sim->hardware().memory_bytes;
    profile.device_name = sim->hardware().device.name;
  } else {
    ReadHostFacts(&profile);
  }
  RunIoProbe(env, scratch_dir, &profile);
  return profile;
}

}  // namespace elmo::sysinfo
