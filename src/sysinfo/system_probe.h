// SystemProbe: the reproduction's stand-in for ELMo-Tune's psutil +
// fio calls — collects CPU/memory facts and micro-benchmarks the
// storage device *through the Env*, so on SimEnv it measures the device
// model and on PosixEnv it measures the real machine.
#pragma once

#include <cstdint>
#include <string>

#include "env/env.h"

namespace elmo::sysinfo {

struct SystemProfile {
  int cpu_cores = 0;
  uint64_t memory_bytes = 0;
  std::string device_name;

  // Measured by the IO probe.
  double seq_write_mbps = 0;
  double seq_read_mbps = 0;
  double rand_read_latency_us = 0;
  double sync_latency_us = 0;

  // Human-readable block for the tuning prompt.
  std::string ToPromptText() const;
};

class SystemProbe {
 public:
  // Collects a profile. On a SimEnv, cores/memory/device name come from
  // the configured HardwareProfile; on other envs they are read from
  // the host (/proc). The IO probe always runs through `env` using
  // scratch files under `scratch_dir`.
  static SystemProfile Collect(Env* env, const std::string& scratch_dir);
};

}  // namespace elmo::sysinfo
