#include "elmo/option_evaluator.h"

#include <algorithm>
#include <cctype>

#include "util/ini.h"
#include "util/string_util.h"

namespace elmo::tune {

namespace {

bool IsOptionNameChar(char c) {
  return std::islower(static_cast<unsigned char>(c)) ||
         std::isdigit(static_cast<unsigned char>(c)) || c == '_';
}

bool LooksLikeOptionName(const std::string& s) {
  if (s.empty() || !std::islower(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  // Single words like "a" or prose words without underscores are too
  // ambiguous; real option names contain at least one underscore or are
  // known-short names (none are, here).
  bool has_underscore = false;
  for (char c : s) {
    if (!IsOptionNameChar(c)) return false;
    if (c == '_') has_underscore = true;
  }
  return has_underscore;
}

bool LooksLikeValue(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// Scan prose for "name = value" occurrences.
void ExtractFromProse(const std::string& text, ExtractedProposals* out) {
  size_t pos = 0;
  while ((pos = text.find('=', pos)) != std::string::npos) {
    // Walk left over spaces, then over the name.
    size_t name_end = pos;
    while (name_end > 0 && text[name_end - 1] == ' ') name_end--;
    size_t name_begin = name_end;
    while (name_begin > 0 && IsOptionNameChar(text[name_begin - 1])) {
      name_begin--;
    }
    std::string name = text.substr(name_begin, name_end - name_begin);

    // Walk right over spaces, then take the value token.
    size_t val_begin = pos + 1;
    while (val_begin < text.size() && text[val_begin] == ' ') val_begin++;
    size_t val_end = val_begin;
    while (val_end < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[val_end])) &&
           text[val_end] != ';' && text[val_end] != ',' &&
           text[val_end] != ')' && text[val_end] != '`') {
      val_end++;
    }
    std::string value = text.substr(val_begin, val_end - val_begin);
    // Strip markdown emphasis and sentence punctuation.
    while (!value.empty() &&
           (value.back() == '.' || value.back() == '"' ||
            value.back() == '*' || value.back() == '\'')) {
      value.pop_back();
    }

    if (LooksLikeOptionName(name) && LooksLikeValue(value)) {
      out->pairs.emplace_back(name, value);
    }
    pos++;
  }
}

}  // namespace

ExtractedProposals OptionEvaluator::Extract(const std::string& response) {
  ExtractedProposals out;

  // Walk the response in order, alternating prose segments and fenced
  // blocks, so "last occurrence wins" matches the document's textual
  // order (a block after prose finalizes values the prose mentioned).
  size_t pos = 0;
  while (true) {
    size_t open = response.find("```", pos);
    if (open == std::string::npos) {
      ExtractFromProse(response.substr(pos), &out);
      break;
    }
    ExtractFromProse(response.substr(pos, open - pos), &out);
    size_t body_begin = response.find('\n', open);
    if (body_begin == std::string::npos) break;
    size_t close = response.find("```", body_begin);
    if (close == std::string::npos) {
      // Unterminated fence: treat the rest as block content anyway
      // (LLMs do truncate).
      close = response.size();
    }
    out.had_code_block = true;
    std::string block = response.substr(body_begin + 1, close - body_begin - 1);
    IniDoc doc;
    std::vector<std::string> bad_lines;
    if (IniDoc::Parse(block, &doc, &bad_lines).ok()) {
      for (const auto& section : doc.sections()) {
        for (const auto& entry : section.entries) {
          out.pairs.emplace_back(entry.key, entry.value);
        }
      }
    }
    pos = std::min(close + 3, response.size());
  }

  // Deduplicate by name, keeping the LAST occurrence (the fenced block
  // normally repeats and finalizes values mentioned in prose).
  std::vector<std::pair<std::string, std::string>> deduped;
  for (auto it = out.pairs.rbegin(); it != out.pairs.rend(); ++it) {
    bool seen = false;
    for (const auto& d : deduped) {
      if (d.first == it->first) {
        seen = true;
        break;
      }
    }
    if (!seen) deduped.push_back(*it);
  }
  std::reverse(deduped.begin(), deduped.end());
  out.pairs = std::move(deduped);
  return out;
}

}  // namespace elmo::tune
