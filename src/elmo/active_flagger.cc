#include "elmo/active_flagger.h"

#include <algorithm>
#include <cstdio>

#include "monitor/detector.h"

namespace elmo::tune {

double ActiveFlagger::WorstP99(const bench::BenchResult& r) {
  return std::max(r.p99_write_us(), r.p99_read_us());
}

FlaggerDecision ActiveFlagger::Judge(
    const bench::BenchResult& best,
    const bench::BenchResult& candidate) const {
  FlaggerDecision d;
  char buf[256];

  if (candidate.ops_per_sec > best.ops_per_sec * (1.0 + cfg_.min_gain)) {
    d.keep = true;
    snprintf(buf, sizeof(buf),
             "throughput improved %.0f -> %.0f ops/sec (+%.1f%%)",
             best.ops_per_sec, candidate.ops_per_sec,
             (candidate.ops_per_sec / best.ops_per_sec - 1.0) * 100);
    d.reason = buf;
    return d;
  }

  const double best_p99 = WorstP99(best);
  const double cand_p99 = WorstP99(candidate);
  if (candidate.ops_per_sec >= best.ops_per_sec * (1.0 - cfg_.tolerance) &&
      best_p99 > 0 && cand_p99 < best_p99) {
    d.keep = true;
    snprintf(buf, sizeof(buf),
             "throughput held (%.0f ops/sec) while worst p99 improved "
             "%.2f -> %.2f us",
             candidate.ops_per_sec, best_p99, cand_p99);
    d.reason = buf;
    return d;
  }

  snprintf(buf, sizeof(buf),
           "performance did not improve (%.0f vs %.0f ops/sec, p99 %.2f "
           "vs %.2f us); reverting to the previous configuration",
           candidate.ops_per_sec, best.ops_per_sec, cand_p99, best_p99);
  d.keep = false;
  d.reason = buf;
  return d;
}

bool ActiveFlagger::ShouldAbortEarly(const bench::BenchResult& best,
                                     const bench::BenchResult& probe) const {
  return JudgeProbe(best, probe).abort;
}

ProbeVerdict ActiveFlagger::JudgeProbe(
    const bench::BenchResult& best, const bench::BenchResult& probe) const {
  ProbeVerdict v;
  if (best.ops_per_sec <= 0) return v;
  char buf[256];

  const double floor = best.ops_per_sec * cfg_.early_abort_fraction;
  if (probe.ops_per_sec < floor) {
    v.abort = true;
    snprintf(buf, sizeof(buf),
             "probe throughput %.0f ops/sec below %.0f%% of best (%.0f)",
             probe.ops_per_sec, cfg_.early_abort_fraction * 100,
             best.ops_per_sec);
    v.reason = buf;
    return v;
  }

  // Average looked fine — but a probe that started strong and collapsed
  // mid-run hides the collapse in its average. Replay the probe's own
  // time series through the changepoint detector and abort on a
  // confirmed downward throughput shift whose post-shift regime sits
  // below the same floor. A workload phase shift near the collapse
  // exonerates the configuration: mixed-phase workloads legitimately
  // drop throughput when the phase turns.
  if (!cfg_.detect_mid_probe_collapse || probe.timeseries.size() < 6) {
    return v;
  }
  const auto events =
      monitor::DetectSeries(probe.timeseries, monitor::DetectorConfig{});
  const monitor::AnomalyEvent* collapse = nullptr;
  for (const auto& e : events) {
    if (e.metric == monitor::Metric::kOpsPerSec &&
        e.kind == monitor::AnomalyKind::kLevelShift && e.direction < 0) {
      collapse = &e;
    }
  }
  if (collapse == nullptr) return v;
  for (const auto& e : events) {
    if (e.phase_shift &&
        (e.ts_us >= collapse->ts_us
             ? e.ts_us - collapse->ts_us
             : collapse->ts_us - e.ts_us) <=
            2 * std::max<uint64_t>(probe.sample_interval_us, 1)) {
      return v;  // collapse explained by a workload phase change
    }
  }
  double tail_sum = 0;
  size_t tail_n = 0;
  for (const auto& s : probe.timeseries) {
    if (s.ts_us >= collapse->ts_us) {
      tail_sum += s.ops_per_sec;
      tail_n++;
    }
  }
  if (tail_n == 0) return v;
  const double tail_mean = tail_sum / static_cast<double>(tail_n);
  if (tail_mean < floor) {
    v.abort = true;
    snprintf(buf, sizeof(buf),
             "mid-probe throughput collapse at t=%.1fs: post-shift mean "
             "%.0f ops/sec below %.0f%% of best (%.0f)",
             collapse->ts_us / 1e6, tail_mean,
             cfg_.early_abort_fraction * 100, best.ops_per_sec);
    v.reason = buf;
  }
  return v;
}

}  // namespace elmo::tune
