#include "elmo/active_flagger.h"

#include <algorithm>
#include <cstdio>

namespace elmo::tune {

double ActiveFlagger::WorstP99(const bench::BenchResult& r) {
  return std::max(r.p99_write_us(), r.p99_read_us());
}

FlaggerDecision ActiveFlagger::Judge(
    const bench::BenchResult& best,
    const bench::BenchResult& candidate) const {
  FlaggerDecision d;
  char buf[256];

  if (candidate.ops_per_sec > best.ops_per_sec * (1.0 + cfg_.min_gain)) {
    d.keep = true;
    snprintf(buf, sizeof(buf),
             "throughput improved %.0f -> %.0f ops/sec (+%.1f%%)",
             best.ops_per_sec, candidate.ops_per_sec,
             (candidate.ops_per_sec / best.ops_per_sec - 1.0) * 100);
    d.reason = buf;
    return d;
  }

  const double best_p99 = WorstP99(best);
  const double cand_p99 = WorstP99(candidate);
  if (candidate.ops_per_sec >= best.ops_per_sec * (1.0 - cfg_.tolerance) &&
      best_p99 > 0 && cand_p99 < best_p99) {
    d.keep = true;
    snprintf(buf, sizeof(buf),
             "throughput held (%.0f ops/sec) while worst p99 improved "
             "%.2f -> %.2f us",
             candidate.ops_per_sec, best_p99, cand_p99);
    d.reason = buf;
    return d;
  }

  snprintf(buf, sizeof(buf),
           "performance did not improve (%.0f vs %.0f ops/sec, p99 %.2f "
           "vs %.2f us); reverting to the previous configuration",
           candidate.ops_per_sec, best.ops_per_sec, cand_p99, best_p99);
  d.keep = false;
  d.reason = buf;
  return d;
}

bool ActiveFlagger::ShouldAbortEarly(const bench::BenchResult& best,
                                     const bench::BenchResult& probe) const {
  if (best.ops_per_sec <= 0) return false;
  return probe.ops_per_sec <
         best.ops_per_sec * cfg_.early_abort_fraction;
}

}  // namespace elmo::tune
