// TuningSession: the ELMo-Tune feedback loop (paper Figure 2).
//
//   prompt -> LLM -> Option Evaluator -> Safeguard Enforcer ->
//   benchmark (with early-stop monitor) -> Active Flagger ->
//   keep / revert -> next prompt,
//
// until a stopping criterion (max iterations or sustained lack of
// improvement) is met. The full per-iteration history is retained so
// the benches can regenerate the paper's Figures 3/4 and Table 5.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_kit/bench_runner.h"
#include "elmo/active_flagger.h"
#include "elmo/safeguard.h"
#include "llm/llm_client.h"

namespace elmo::tune {

struct TuningConfig {
  int max_iterations = 7;  // the paper converges within 7
  // Stop early after this many consecutive non-improvements.
  int patience = 1000;  // effectively off by default, like the paper
  // Early-abort probe: fraction of the workload run before the monitor
  // decides whether to redo (0 disables the probe).
  double probe_fraction = 0.1;
  FlaggerConfig flagger;
  std::set<std::string> extra_blacklist;
  // Crash certification: before a winning configuration is kept, run it
  // through the elmo_stress harness (FaultInjectionEnv + crash/reopen
  // cycles + expected-state oracle). A config that loses acknowledged
  // writes is reverted no matter how fast it is. 0 ops disables.
  uint64_t certify_ops = 0;
  int certify_crash_cycles = 2;
  uint64_t certify_seed = 42;
};

struct IterationRecord {
  int iteration = 0;
  std::string prompt;
  std::string response;
  SafeguardReport safeguard;
  // Option name -> value for changes that were actually applied.
  std::map<std::string, std::string> applied_changes;
  bench::BenchResult result;
  bool early_aborted = false;  // probe triggered a redo
  bool kept = false;
  std::string decision_reason;
  // Verdict of the crash-certification stress run ("" when disabled).
  std::string certify_summary;
};

struct TuningOutcome {
  bench::BenchResult baseline;            // iteration 0 (defaults)
  std::vector<IterationRecord> iterations;
  lsm::Options best_options;
  bench::BenchResult best_result;
  std::string final_options_file;

  double ThroughputGain() const {
    return baseline.ops_per_sec > 0
               ? best_result.ops_per_sec / baseline.ops_per_sec
               : 0;
  }
};

class TuningSession {
 public:
  TuningSession(bench::BenchRunner* runner, llm::LlmClient* llm,
                const bench::WorkloadSpec& workload,
                const TuningConfig& config = {});

  // Runs the full loop starting from `initial` (engine defaults by
  // default) and returns the complete history.
  TuningOutcome Run(const lsm::Options& initial = {});

 private:
  bench::BenchRunner* runner_;
  llm::LlmClient* llm_;
  bench::WorkloadSpec workload_;
  TuningConfig cfg_;
};

}  // namespace elmo::tune
