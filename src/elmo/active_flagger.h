// ActiveFlagger: ELMo-Tune's keep-or-revert judge plus the constant
// benchmark monitor that aborts a clearly-regressing run early (the
// paper's "first 30s" redo check).
#pragma once

#include <string>

#include "bench_kit/report.h"

namespace elmo::tune {

struct FlaggerConfig {
  // Candidate must beat the best throughput by this much to be kept...
  double min_gain = 0.005;
  // ...unless it is within `tolerance` and improves tail latency.
  double tolerance = 0.01;
  // A probe below this fraction of best throughput aborts + redoes.
  double early_abort_fraction = 0.5;
  // Probe time series are additionally screened by the monitor's
  // changepoint detector: a confirmed downward throughput shift whose
  // post-shift mean falls below `early_abort_fraction` of best aborts
  // the run even when the probe's *average* still looks acceptable —
  // unless the collapse coincides with a workload phase shift (the
  // drop is then the workload's doing, not the configuration's).
  bool detect_mid_probe_collapse = true;
};

struct FlaggerDecision {
  bool keep = false;
  std::string reason;
};

// Outcome of the probe screen: whether to abort, and why.
struct ProbeVerdict {
  bool abort = false;
  std::string reason;
};

class ActiveFlagger {
 public:
  explicit ActiveFlagger(const FlaggerConfig& config = {})
      : cfg_(config) {}

  FlaggerDecision Judge(const bench::BenchResult& best,
                        const bench::BenchResult& candidate) const;

  bool ShouldAbortEarly(const bench::BenchResult& best,
                        const bench::BenchResult& probe) const;

  // Full probe screen: the whole-probe throughput check plus the
  // phase-shift-aware mid-probe collapse detector (see FlaggerConfig).
  ProbeVerdict JudgeProbe(const bench::BenchResult& best,
                          const bench::BenchResult& probe) const;

 private:
  static double WorstP99(const bench::BenchResult& r);

  FlaggerConfig cfg_;
};

}  // namespace elmo::tune
