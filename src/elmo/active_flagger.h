// ActiveFlagger: ELMo-Tune's keep-or-revert judge plus the constant
// benchmark monitor that aborts a clearly-regressing run early (the
// paper's "first 30s" redo check).
#pragma once

#include <string>

#include "bench_kit/report.h"

namespace elmo::tune {

struct FlaggerConfig {
  // Candidate must beat the best throughput by this much to be kept...
  double min_gain = 0.005;
  // ...unless it is within `tolerance` and improves tail latency.
  double tolerance = 0.01;
  // A probe below this fraction of best throughput aborts + redoes.
  double early_abort_fraction = 0.5;
};

struct FlaggerDecision {
  bool keep = false;
  std::string reason;
};

class ActiveFlagger {
 public:
  explicit ActiveFlagger(const FlaggerConfig& config = {})
      : cfg_(config) {}

  FlaggerDecision Judge(const bench::BenchResult& best,
                        const bench::BenchResult& candidate) const;

  bool ShouldAbortEarly(const bench::BenchResult& best,
                        const bench::BenchResult& probe) const;

 private:
  static double WorstP99(const bench::BenchResult& r);

  FlaggerConfig cfg_;
};

}  // namespace elmo::tune
