// Tuner tournament: SimulatedExpertLlm head-to-head against stronger
// baselines — random search, grid search, and a CAMAL-style cost-model
// tuner — under an identical evaluation budget. Each contender proposes
// one configuration per trial; the tournament benchmarks every proposal
// on the same seeded BenchRunner and records the convergence curve, the
// best configuration, and how many trials each tuner needed to get
// within 5% of the overall winner. Output: BENCH_tournament.json plus
// the EXPERIMENTS.md summary table (tools/elmo_bench_matrix --tournament).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bench_kit/bench_runner.h"
#include "bench_kit/workload.h"
#include "env/hardware_profile.h"
#include "lsm/options.h"

namespace elmo::tune {

// One evaluated trial, visible to the tuner when proposing the next
// configuration. Trial 0 is always the engine defaults.
struct TunerObservation {
  lsm::Options options;
  bench::BenchResult result;
};

// A configuration-search strategy. Propose() must be deterministic
// given the construction seed and the observation history.
class Tuner {
 public:
  virtual ~Tuner() = default;
  virtual const char* Name() const = 0;
  virtual lsm::Options Propose(
      const std::vector<TunerObservation>& history) = 0;
};

// Naive baseline 1: seeded random sampling from a fixed search space of
// plausible values per option (what a practitioner would randomize over,
// not the schema's full legal ranges).
std::unique_ptr<Tuner> MakeRandomSearchTuner(uint64_t seed);

// Naive baseline 2: deterministic row-major enumeration of a coarse
// grid over the four highest-leverage options (bloom bits, block cache,
// memtable size, background jobs).
std::unique_ptr<Tuner> MakeGridSearchTuner();

// CAMAL-style baseline: scores the whole search space with an analytic
// LSM cost model (lsm/cost_model.h constants + the device model +
// workload mix), proposes best-predicted-first, and refines the model's
// calibration from every observed result (active learning loop).
std::unique_ptr<Tuner> MakeCostModelTuner(const HardwareProfile& hw,
                                          const bench::WorkloadSpec& workload,
                                          uint64_t seed);

// The paper's contender: SimulatedExpertLlm behind the full ELMo-Tune
// pipeline (prompt generation -> LLM -> option evaluator -> safeguard),
// driven one proposal per trial so budgets are identical.
std::unique_ptr<Tuner> MakeLlmTuner(const HardwareProfile& hw,
                                    const bench::WorkloadSpec& workload,
                                    uint64_t seed);

struct TournamentConfig {
  HardwareProfile hw;
  bench::WorkloadSpec workload;
  // Evaluations per tuner after the shared defaults baseline.
  int budget = 10;
  uint64_t seed = 42;
  // Contender names to run; empty = all four. Valid names:
  // "llm", "random", "grid", "cost_model".
  std::vector<std::string> contenders;
};

struct TunerRun {
  std::string name;
  // ops/sec of each evaluated trial, starting with the shared defaults
  // baseline at index 0 (length budget + 1).
  std::vector<double> trial_ops_per_sec;
  // Best-so-far curve over the same indices (non-decreasing).
  std::vector<double> best_curve;
  double best_ops_per_sec = 0;
  double gain_vs_default = 0;
  // First trial index whose best-so-far is within 5% of the overall
  // tournament-best throughput; -1 if never reached.
  int trials_to_within_5pct = -1;
  // Options-file text of the best configuration found.
  std::string best_options_ini;
};

struct TournamentReport {
  int schema_version = 0;  // filled from kBenchSchemaVersion
  std::string git_sha;
  uint64_t seed = 0;
  std::string hardware;
  std::string workload;
  int budget = 0;
  double default_ops_per_sec = 0;
  std::vector<TunerRun> runs;
  std::string winner;  // name of the run with the best throughput

  std::string ToJson() const;
  // Markdown table for EXPERIMENTS.md.
  std::string SummaryTable() const;
};

TournamentReport RunTournament(const TournamentConfig& config);

// Online-vs-offline comparison on a time-varying workload (default:
// WorkloadSpec::Phased — load, then point reads, then scans). Each
// static contender runs the whole workload with its configuration
// fixed, the way offline tuning must; the online run starts from the
// engine defaults and lets an OnlineTuner apply DB::SetOptions()
// deltas as the health monitor detects the phase shifts. On a workload
// whose phases want opposite memory splits, no static configuration
// can match per-phase reconfiguration — which is the measurement.
struct OnlineVsOfflineConfig {
  HardwareProfile hw;
  bench::WorkloadSpec workload = bench::WorkloadSpec::Phased();
  uint64_t seed = 42;
  // Route proposals through the SimulatedExpertLlm live-delta prompt
  // first (heuristic fallback); false = heuristic only.
  bool use_llm = true;
};

struct OnlineVsOfflineReport {
  int schema_version = 0;
  std::string git_sha;
  uint64_t seed = 0;
  std::string hardware;
  std::string workload;
  struct StaticRun {
    std::string name;
    std::string description;
    double ops_per_sec = 0;
  };
  std::vector<StaticRun> static_runs;
  std::string best_static;
  double best_static_ops_per_sec = 0;
  double online_ops_per_sec = 0;
  // online / best static; > 1 means reconfiguring mid-run won.
  double online_gain_vs_best_static = 0;
  int applied_deltas = 0;
  int rollbacks = 0;
  int oscillations = 0;
  // Full observe -> propose -> apply -> verdict timeline of the online
  // run (OnlineTuner::TimelineJson()).
  std::string timeline_json;

  std::string ToJson() const;
  // Markdown table for EXPERIMENTS.md.
  std::string SummaryTable() const;
};

OnlineVsOfflineReport RunOnlineVsOffline(const OnlineVsOfflineConfig& config);

}  // namespace elmo::tune
