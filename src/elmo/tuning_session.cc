#include "elmo/tuning_session.h"

#include <cstdio>

#include "elmo/option_evaluator.h"
#include "elmo/prompt_generator.h"
#include "env/sim_env.h"
#include "lsm/options_schema.h"
#include "stress_kit/stress_driver.h"
#include "sysinfo/system_probe.h"

namespace elmo::tune {

using lsm::Options;
using lsm::OptionsSchema;

TuningSession::TuningSession(bench::BenchRunner* runner,
                             llm::LlmClient* llm,
                             const bench::WorkloadSpec& workload,
                             const TuningConfig& config)
    : runner_(runner), llm_(llm), workload_(workload), cfg_(config) {}

TuningOutcome TuningSession::Run(const Options& initial) {
  TuningOutcome outcome;
  SafeguardEnforcer safeguard(cfg_.extra_blacklist);
  ActiveFlagger flagger(cfg_.flagger);

  // Probe the hardware once (own throwaway SimEnv so the probe does not
  // disturb benchmark clocks).
  sysinfo::SystemProfile profile;
  {
    SimEnv probe_env(runner_->hardware(), /*seed=*/1);
    profile = sysinfo::SystemProbe::Collect(&probe_env, "/probe");
  }

  // Iteration 0: the out-of-box configuration.
  Options best_options = initial;
  outcome.baseline = runner_->Run(workload_, best_options);
  bench::BenchResult best_result = outcome.baseline;

  std::vector<llm::ChatMessage> chat;
  chat.push_back({"system", PromptGenerator::SystemMessage()});

  std::vector<std::string> history;
  {
    char line[128];
    snprintf(line, sizeof(line), "Iteration 0 (defaults): %.0f ops/sec",
             outcome.baseline.ops_per_sec);
    history.push_back(line);
  }

  std::string deterioration_note;
  int non_improvements = 0;

  for (int it = 1; it <= cfg_.max_iterations; it++) {
    IterationRecord rec;
    rec.iteration = it;

    PromptInputs inputs;
    inputs.iteration = it;
    inputs.system = profile;
    inputs.workload_description = workload_.Describe();
    inputs.current_options_ini =
        OptionsSchema::Instance().ToIniText(best_options);
    inputs.last_benchmark_report = best_result.ToReport();
    inputs.engine_telemetry = best_result.engine_stats;
    inputs.timeseries = best_result.timeseries;
    inputs.io_cache_evidence = best_result.IoCacheEvidence();
    inputs.latency_attribution = best_result.LatencyAttributionEvidence();
    inputs.health_evidence = best_result.HealthEvidence();
    inputs.deterioration_note = deterioration_note;
    inputs.history = history;
    for (const auto& name : safeguard.blacklist()) {
      inputs.locked_options.push_back(name);
    }
    rec.prompt = PromptGenerator::Generate(inputs);
    deterioration_note.clear();

    chat.push_back({"user", rec.prompt});
    Status s = llm_->Complete(chat, &rec.response);
    if (!s.ok()) {
      rec.decision_reason = "LLM call failed: " + s.ToString();
      rec.kept = false;
      outcome.iterations.push_back(std::move(rec));
      break;
    }
    chat.push_back({"assistant", rec.response});

    ExtractedProposals proposals = OptionEvaluator::Extract(rec.response);
    Options candidate;
    rec.safeguard = safeguard.Validate(best_options, proposals.pairs,
                                       &candidate);
    rec.safeguard.format_ok =
        rec.safeguard.format_ok && (proposals.had_code_block ||
                                    !proposals.pairs.empty());

    if (rec.safeguard.applied.empty()) {
      // Nothing usable came back (pure hallucination / format break):
      // tell the model and retry next iteration.
      rec.kept = false;
      rec.result = best_result;
      rec.decision_reason =
          "no valid changes extracted (" + rec.safeguard.Summary() + ")";
      deterioration_note =
          "Your previous response could not be applied: " +
          rec.safeguard.Summary() +
          ". Respond again with valid options inside a ```ini block.";
      history.push_back("Iteration " + std::to_string(it) +
                        ": rejected (unusable response)");
      outcome.iterations.push_back(std::move(rec));
      continue;
    }
    for (const auto& [k, v] : rec.safeguard.applied) {
      rec.applied_changes[k] = v;
    }

    // Benchmark monitor: quick probe first; a collapsing config is
    // aborted and reported back without paying for a full run.
    if (cfg_.probe_fraction > 0) {
      uint64_t probe_ops = static_cast<uint64_t>(
          workload_.num_ops * cfg_.probe_fraction);
      if (probe_ops >= 100) {
        bench::BenchResult probe =
            runner_->RunProbe(workload_, candidate, probe_ops);
        if (flagger.ShouldAbortEarly(best_result, probe)) {
          rec.early_aborted = true;
          rec.kept = false;
          rec.result = probe;
          char buf[160];
          snprintf(buf, sizeof(buf),
                   "early monitor abort: probe ran at %.0f ops/sec vs "
                   "best %.0f; reverting",
                   probe.ops_per_sec, best_result.ops_per_sec);
          rec.decision_reason = buf;
          deterioration_note =
              "The configuration you proposed DECREASED performance "
              "sharply (probe at " +
              std::to_string((long long)probe.ops_per_sec) +
              " ops/sec vs best " +
              std::to_string((long long)best_result.ops_per_sec) +
              ") and was reverted. Please take a different, more "
              "conservative direction.";
          history.push_back("Iteration " + std::to_string(it) +
                            ": reverted (early abort)");
          non_improvements++;
          outcome.iterations.push_back(std::move(rec));
          if (non_improvements >= cfg_.patience) break;
          continue;
        }
      }
    }

    rec.result = runner_->Run(workload_, candidate);
    FlaggerDecision decision = flagger.Judge(best_result, rec.result);

    // A faster configuration still has to survive crash certification
    // before it can become the new best: the stress harness crashes and
    // recovers it under FaultInjectionEnv and checks the oracle.
    if (decision.keep && cfg_.certify_ops > 0) {
      stress::StressConfig scfg;
      scfg.seed = cfg_.certify_seed;
      scfg.ops = cfg_.certify_ops;
      scfg.crash_cycles = cfg_.certify_crash_cycles;
      scfg.base_options = candidate;
      scfg.db_path = "/certify_db";
      const stress::StressReport sr = stress::RunStress(scfg);
      if (sr.ok) {
        rec.certify_summary = "certified: ok";
      } else {
        decision.keep = false;
        decision.reason =
            "crash certification failed: " + sr.first_divergence;
        rec.certify_summary = "certification FAILED: " +
                              sr.first_divergence;
      }
    }

    rec.kept = decision.keep;
    rec.decision_reason = decision.reason;

    char line[160];
    if (decision.keep) {
      best_options = candidate;
      best_result = rec.result;
      non_improvements = 0;
      snprintf(line, sizeof(line), "Iteration %d: %.0f ops/sec (kept)",
               it, rec.result.ops_per_sec);
    } else {
      non_improvements++;
      deterioration_note =
          "The previous configuration DECREASED performance (" +
          decision.reason +
          "). It was reverted; the configuration above is the "
          "best-known one.";
      snprintf(line, sizeof(line),
               "Iteration %d: %.0f ops/sec (reverted)", it,
               rec.result.ops_per_sec);
    }
    history.push_back(line);
    outcome.iterations.push_back(std::move(rec));
    if (non_improvements >= cfg_.patience) break;
  }

  outcome.best_options = best_options;
  outcome.best_result = best_result;
  outcome.final_options_file =
      OptionsSchema::Instance().ToIniText(best_options);
  return outcome;
}

}  // namespace elmo::tune
