#include "elmo/prompt_generator.h"

#include "bench_kit/report.h"
#include "util/string_util.h"

namespace elmo::tune {

std::string PromptGenerator::SystemMessage() {
  return
      "You are an expert storage-systems engineer specializing in "
      "LSM-tree key-value stores (RocksDB-style engines). You tune "
      "configurations for specific hardware and workloads. Always "
      "answer with a short analysis followed by the updated options in "
      "a fenced ```ini code block using key = value lines.";
}

std::string PromptGenerator::Generate(const PromptInputs& in) {
  std::string p;
  p += "## Task\n";
  p += "Tune the key-value store configuration below for maximum "
       "throughput and low tail latency. This is tuning iteration " +
       std::to_string(in.iteration) + ".\n\n";

  p += "## System Information\n";
  p += in.system.ToPromptText();
  p += "\n";

  p += "## Workload\n";
  p += in.workload_description + "\n\n";

  p += "## Current Configuration\n";
  p += "```ini\n" + in.current_options_ini + "```\n\n";

  if (!in.last_benchmark_report.empty()) {
    p += "## Last Benchmark Report\n";
    p += in.last_benchmark_report;
    p += "\n";
  }

  // Skip the standalone section when the report above already embeds
  // the same dump (BenchResult::ToReport inlines engine_stats).
  if (!in.engine_telemetry.empty() &&
      in.last_benchmark_report.find(in.engine_telemetry) ==
          std::string::npos) {
    p += "## Engine Telemetry\n";
    p += "```\n" + in.engine_telemetry;
    if (in.engine_telemetry.back() != '\n') p += "\n";
    p += "```\n\n";
  }

  if (!in.timeseries.empty()) {
    p += "## Telemetry Over The Run\n";
    p += "Per-interval engine samples (condensed). Watch for throughput "
         "collapses, stall spikes, and growing compaction debt:\n";
    p += "```\n" + bench::TimeSeriesTable(in.timeseries, 12) + "```\n\n";
  }

  if (!in.io_cache_evidence.empty()) {
    p += "## IO & Cache Evidence\n";
    p += "Measured device IO attribution and the simulated miss-ratio "
         "curve from the engine's traces:\n";
    p += "```\n" + in.io_cache_evidence;
    if (in.io_cache_evidence.back() != '\n') p += "\n";
    p += "```\n\n";
  }

  if (!in.latency_attribution.empty()) {
    p += "## Latency Attribution Evidence\n";
    p += "Per-op latency percentiles from the span trace, with the p99 "
         "tail decomposed into engine-phase self-time shares:\n";
    p += "```\n" + in.latency_attribution;
    if (in.latency_attribution.back() != '\n') p += "\n";
    p += "```\n\n";
  }

  if (!in.health_evidence.empty()) {
    p += "## Health & Diagnosis Evidence\n";
    p += "The engine's live monitor ran during the benchmark. Its "
         "anomaly events and ranked root-cause diagnoses (each with "
         "suggested options to revisit):\n";
    p += "```\n" + in.health_evidence;
    if (in.health_evidence.back() != '\n') p += "\n";
    p += "```\n\n";
  }

  if (!in.deterioration_note.empty()) {
    p += "## Feedback\n";
    p += in.deterioration_note + "\n\n";
  }

  if (!in.history.empty()) {
    p += "## Tuning History\n";
    for (const auto& line : in.history) {
      p += line + "\n";
    }
    p += "\n";
  }

  p += "## Instructions\n";
  p += "Propose between 3 and 10 option changes with one-line "
       "rationales, then output the updated configuration in a fenced "
       "```ini block.";
  if (!in.locked_options.empty()) {
    p += " Do not modify: ";
    for (size_t i = 0; i < in.locked_options.size(); i++) {
      if (i > 0) p += ", ";
      p += in.locked_options[i];
    }
    p += ".";
  }
  p += "\n";
  return p;
}

std::string PromptGenerator::GenerateLiveDelta(const LiveDeltaInputs& in) {
  std::string p;
  p += "## Task\n";
  p += "The key-value store below is SERVING LIVE TRAFFIC. Its workload "
       "just changed and the current configuration no longer fits. "
       "Propose a small delta — only the runtime-mutable options listed "
       "below can change without a restart.\n\n";

  p += "## Trigger\n";
  p += in.trigger_description + "\n";
  if (!in.recent_samples.empty()) {
    // Name the live mix in db_bench vocabulary: the model's knowledge
    // base is keyed to the standard microbenchmark names, not to raw
    // share numbers.
    const auto& last = in.recent_samples.back();
    const double denom = static_cast<double>(last.ops + last.seeks);
    const double write_share = denom > 0 ? last.writes / denom : 0;
    const char* persona = write_share > 0.5        ? "fillrandom"
                          : write_share > 0.2      ? "readrandomwriterandom"
                                                   : "readrandom";
    p += std::string("The live mix now resembles the ") + persona +
         " microbenchmark.\n";
  }
  p += "\n";

  if (in.memory_budget_bytes > 0) {
    p += "## Memory Budget\n";
    p += "Total memory: " + FormatBytesHuman(in.memory_budget_bytes) +
         " available for memtables plus block cache combined. Proposals "
         "must fit this budget; the runtime shrinks any that do not.\n\n";
  }

  p += "## Runtime-Mutable Options (current values)\n";
  p += "```\n" + in.mutable_options;
  if (!in.mutable_options.empty() && in.mutable_options.back() != '\n') {
    p += "\n";
  }
  p += "```\n\n";

  if (!in.recent_samples.empty()) {
    p += "## Recent Telemetry\n";
    p += "The engine's last sampled intervals (newest last):\n";
    p += "```\n" + bench::TimeSeriesTable(in.recent_samples, 12) + "```\n\n";
  }

  if (!in.health_evidence.empty()) {
    p += "## Health & Diagnosis Evidence\n";
    p += "```\n" + in.health_evidence;
    if (in.health_evidence.back() != '\n') p += "\n";
    p += "```\n\n";
  }

  if (!in.delta_history.empty()) {
    p += "## Applied Deltas So Far\n";
    for (const auto& line : in.delta_history) p += line + "\n";
    p += "\n";
  }

  p += "## Instructions\n";
  p += "Propose 1 to 4 changes FROM THE MUTABLE LIST ONLY, each with a "
       "one-line rationale, then output just the changed options in a "
       "fenced ```ini block using key = value lines. Any other option "
       "will be rejected by the runtime.\n";
  return p;
}

}  // namespace elmo::tune
