// OnlineTuner: the live full-cycle tuning session. Where TuningSession
// restarts the DB once per iteration, this watches an OPEN DB's sampler
// ring mid-run, waits for the health monitor to flag a workload phase
// shift (or a severe diagnosis), asks the LLM for a *delta* over the
// runtime-mutable option subset (deterministic heuristic fallback), and
// applies it through DB::SetOptions() — guarded by the crash-
// certification gate and an automatic-rollback verdict: a throughput
// collapse in the post-apply window that no concurrent phase shift
// explains reverts the delta and blacklists it against oscillation.
//
// Every observe -> propose -> apply -> verdict step lands in a timeline
// (engine-clock timestamps only), so same-seed SimEnv runs produce
// byte-identical timelines.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "lsm/stats_sampler.h"
#include "llm/llm_client.h"
#include "monitor/health_monitor.h"
#include "util/json.h"

namespace elmo::tune {

struct OnlineTunerConfig {
  // Post-apply samples observed before a surviving delta is declared
  // kept.
  int verify_window = 6;
  // A post-apply sample below drop_fraction * baseline — with no phase
  // shift within two sampler intervals to blame — is a strike;
  // `strikes_to_rollback` strikes revert the delta.
  double rollback_drop_fraction = 0.5;
  int strikes_to_rollback = 2;
  // Sampler intervals to sit out after a verdict before re-triggering.
  int cooldown_intervals = 2;
  // Diagnoses at or above this severity trigger a proposal even without
  // a phase-shift anomaly (the monitor's suggested_options seed it).
  double diagnosis_severity_threshold = 0.8;
  // Memory the DB may spend on memtables + block cache combined
  // (Options::ConfiguredMemoryFootprint()). When set, proposals are
  // shrunk to fit before they reach SetOptions, the heuristic shifts
  // this budget between the write and read side per phase, and the
  // live-delta prompt states it. 0 = no budget (relative steps only).
  // InjectDelta bypasses the clamp: manual deltas apply verbatim.
  uint64_t memory_budget_bytes = 0;
  // Crash certification: run each candidate through the stress harness
  // (FaultInjectionEnv + crash/reopen cycles) before applying. A config
  // that loses acknowledged writes is never applied. 0 ops disables.
  uint64_t certify_ops = 0;
  int certify_crash_cycles = 2;
  uint64_t certify_seed = 42;
  std::set<std::string> extra_blacklist;  // extends the safeguard's
};

// One timeline entry; kind is "observe", "propose", "apply",
// "verdict", "rollback" or "oscillation_skip".
struct TimelineStep {
  uint64_t ts_us = 0;
  std::string kind;
  json::Object detail;
};

class OnlineTuner {
 public:
  // `db` must outlive the tuner. `llm` may be null: proposals then come
  // from the deterministic heuristic alone.
  OnlineTuner(lsm::DB* db, llm::LlmClient* llm,
              const OnlineTunerConfig& config = {});

  // The observation point: call periodically from the serving thread
  // (BenchRunner::RunWithHook does). Consumes any sampler intervals
  // recorded since the last call and advances the state machine. Cheap
  // when no new interval landed.
  void Poll();

  // Push a delta through the tuner's own apply path — baseline capture,
  // timeline step, and the same rollback verdict machinery as an
  // organic proposal. Used to plant harmful deltas in tests and for
  // manual operation. Fails with the SetOptions() validation error when
  // the delta is rejected.
  Status InjectDelta(const std::map<std::string, std::string>& delta,
                     const std::string& origin);

  int applied_deltas() const { return applied_deltas_; }
  int rollbacks() const { return rollbacks_; }
  // Times a previously rolled-back delta was proposed again (the
  // rollback-loop smell the CI smoke asserts stays at zero).
  int oscillations() const { return oscillations_; }
  const std::vector<TimelineStep>& timeline() const { return timeline_; }

  // {"applied":N,"rollbacks":N,"oscillations":N,"steps":[...]}
  std::string TimelineJson() const;

 private:
  // (ops + seeks) / interval — phase-robust rate, matching the
  // detector's kOpsPerSec metric.
  static double SampleRate(const lsm::IntervalSample& s);
  static std::string DeltaSignature(
      const std::map<std::string, std::string>& delta);

  void StepOnSample(const lsm::IntervalSample& s);
  void CheckTrigger(const lsm::IntervalSample& s);
  void VerifySample(const lsm::IntervalSample& s);

  // Delta construction: LLM live-delta prompt first (filtered to the
  // mutable subset), deterministic mix/diagnosis heuristic otherwise.
  std::map<std::string, std::string> ProposeDelta(
      const lsm::IntervalSample& s, const std::string& trigger,
      const std::vector<monitor::Diagnosis>& diagnoses,
      std::string* origin);
  std::map<std::string, std::string> HeuristicDelta(
      const lsm::IntervalSample& s,
      const std::vector<monitor::Diagnosis>& diagnoses) const;
  // Shrink the delta's byte-size entries proportionally until the
  // resulting ConfiguredMemoryFootprint() fits memory_budget_bytes;
  // no-op without a budget.
  void ClampToBudget(std::map<std::string, std::string>* delta) const;

  // Apply `delta` (certify gate first), arm the verdict machinery.
  void ApplyDelta(const std::map<std::string, std::string>& delta,
                  const std::string& origin, uint64_t ts_us,
                  double baseline);
  void Rollback(const lsm::IntervalSample& s);

  bool ReadHealth(monitor::HealthReport* report) const;
  bool PhaseShiftNear(uint64_t ts_us) const;
  void AddStep(uint64_t ts_us, const std::string& kind,
               json::Object detail);

  lsm::DB* const db_;
  llm::LlmClient* const llm_;
  const OnlineTunerConfig cfg_;
  uint64_t sample_interval_us_;

  bool attached_ = false;  // first Poll() seeded the ring as context
  bool degraded_ = false;  // paused on an active background error
  uint64_t last_sample_ts_ = 0;
  uint64_t last_trigger_ts_ = 0;
  bool kicked_off_ = false;  // a first, mix-fitted delta went out
  std::string last_diag_rule_;
  std::deque<lsm::IntervalSample> recent_;

  // Verdict state for the delta under observation.
  bool verifying_ = false;
  double baseline_rate_ = 0;
  int verify_seen_ = 0;
  int strikes_ = 0;
  std::map<std::string, std::string> active_delta_;
  std::map<std::string, std::string> revert_delta_;
  std::string active_origin_;

  int cooldown_left_ = 0;
  std::set<std::string> rolled_back_;  // delta signatures
  std::vector<std::string> delta_history_;

  int applied_deltas_ = 0;
  int rollbacks_ = 0;
  int oscillations_ = 0;
  std::vector<TimelineStep> timeline_;
};

}  // namespace elmo::tune
