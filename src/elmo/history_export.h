// Export helpers for tuning histories: the CSV behind the paper's
// Figures 3/4 (per-iteration series) and a Table-5-style change matrix
// in Markdown. Lets downstream users plot their own runs.
#pragma once

#include <string>

#include "elmo/tuning_session.h"

namespace elmo::tune {

// iteration,throughput_ops_sec,p99_write_us,p99_read_us,kept
// (row 0 = the default baseline)
std::string ExportIterationCsv(const TuningOutcome& outcome);

// Markdown table: one row per option touched, one column per iteration
// (the shape of the paper's Table 5). Reverted iterations are starred.
std::string ExportOptionTraceMarkdown(const TuningOutcome& outcome);

}  // namespace elmo::tune
