#include "elmo/tournament.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <set>

#include "elmo/online_tuner.h"
#include "elmo/option_evaluator.h"
#include "elmo/prompt_generator.h"
#include "elmo/safeguard.h"
#include "env/sim_env.h"
#include "llm/expert_llm.h"
#include "lsm/cost_model.h"
#include "lsm/options_schema.h"
#include "sysinfo/system_probe.h"
#include "util/json.h"
#include "util/random.h"

namespace elmo::tune {

using bench::BenchResult;
using bench::WorkloadSpec;
using bench::WorkloadType;
using lsm::Options;
using lsm::OptionsSchema;

namespace {

double ObservedOps(const TunerObservation& o) {
  return o.result.ops_per_sec;
}

// Index of the best-throughput observation (earliest wins ties, so the
// choice is deterministic).
size_t BestIndex(const std::vector<TunerObservation>& history) {
  size_t best = 0;
  for (size_t i = 1; i < history.size(); i++) {
    if (ObservedOps(history[i]) > ObservedOps(history[best])) best = i;
  }
  return best;
}

// ---------------------------------------------------------------------
// Shared search space: the values a practitioner would actually sweep,
// not the schema's full legal ranges. Random search samples it, grid
// search enumerates a coarse subset, the cost model scores all of it.
// ---------------------------------------------------------------------

struct SearchDim {
  const char* option;
  std::vector<const char*> values;  // values[0] is the engine default
};

const std::vector<SearchDim>& SearchSpace() {
  static const std::vector<SearchDim> kSpace = {
      {"write_buffer_size",
       {"67108864", "33554432", "134217728", "268435456"}},
      {"max_write_buffer_number", {"2", "3", "4", "6"}},
      {"max_background_jobs", {"2", "4", "8"}},
      {"level0_file_num_compaction_trigger", {"4", "2", "8"}},
      {"block_cache_size",
       {"8388608", "67108864", "268435456", "1073741824"}},
      {"bloom_filter_bits_per_key", {"0", "10", "14"}},
      {"max_bytes_for_level_base", {"268435456", "536870912"}},
      {"compaction_readahead_size", {"2097152", "0", "8388608"}},
  };
  return kSpace;
}

Options ApplyAssignment(const std::vector<int>& choice) {
  Options o;
  const auto& space = SearchSpace();
  for (size_t d = 0; d < space.size(); d++) {
    // Values come from the static table above; Apply cannot fail.
    Status s = OptionsSchema::Instance().Apply(&o, space[d].option,
                                               space[d].values[choice[d]]);
    (void)s;
  }
  return o;
}

// ---------------------------------------------------------------------
// Random search
// ---------------------------------------------------------------------

class RandomSearchTuner : public Tuner {
 public:
  explicit RandomSearchTuner(uint64_t seed) : rng_(seed) {}

  const char* Name() const override { return "random"; }

  Options Propose(const std::vector<TunerObservation>& history) override {
    (void)history;
    const auto& space = SearchSpace();
    std::vector<int> choice(space.size(), 0);
    // Touch 3..6 random dimensions, default values elsewhere — the
    // shape of a practitioner's random trial, and comparable to the
    // LLM's 3-8 changes per iteration.
    const int touched = 3 + static_cast<int>(rng_.Uniform(4));
    std::vector<size_t> dims(space.size());
    for (size_t i = 0; i < dims.size(); i++) dims[i] = i;
    for (size_t i = dims.size(); i > 1; i--) {
      std::swap(dims[i - 1], dims[rng_.Uniform(i)]);
    }
    for (int i = 0; i < touched; i++) {
      const size_t d = dims[i];
      choice[d] = 1 + static_cast<int>(
                          rng_.Uniform(space[d].values.size() - 1));
    }
    return ApplyAssignment(choice);
  }

 private:
  Random64 rng_;
};

// ---------------------------------------------------------------------
// Grid search
// ---------------------------------------------------------------------

class GridSearchTuner : public Tuner {
 public:
  GridSearchTuner() {
    // Coarse row-major grid over the four highest-leverage options.
    // Point 0 (all defaults) is skipped — trial 0 already measured it.
    for (const char* bloom : {"0", "10"}) {
      for (const char* cache : {"8388608", "268435456"}) {
        for (const char* wbs : {"67108864", "268435456"}) {
          for (const char* jobs : {"2", "8"}) {
            grid_.push_back({bloom, cache, wbs, jobs});
          }
        }
      }
    }
    grid_.erase(grid_.begin());
  }

  const char* Name() const override { return "grid"; }

  Options Propose(const std::vector<TunerObservation>& history) override {
    if (next_ >= grid_.size()) {
      // Budget outlived the grid: re-propose the best seen (flat tail —
      // the honest behavior of an exhausted grid).
      return history[BestIndex(history)].options;
    }
    const auto& p = grid_[next_++];
    Options o;
    const OptionsSchema& schema = OptionsSchema::Instance();
    Status s = schema.Apply(&o, "bloom_filter_bits_per_key", p[0]);
    s = schema.Apply(&o, "block_cache_size", p[1]);
    s = schema.Apply(&o, "write_buffer_size", p[2]);
    s = schema.Apply(&o, "max_background_jobs", p[3]);
    (void)s;
    return o;
  }

 private:
  std::vector<std::array<const char*, 4>> grid_;
  size_t next_ = 0;
};

// ---------------------------------------------------------------------
// CAMAL-style cost-model tuner
// ---------------------------------------------------------------------

// Analytic per-op cost of a configuration under the given hardware and
// workload, built from the same first-order constants SimEnv charges
// (lsm/cost_model.h, env/device_model.h). The tuner ranks the whole
// search space by predicted throughput, proposes best-first, and after
// every observation updates per-(dimension,value) multiplicative biases
// — the active-learning loop that separates CAMAL-style tuning from
// blind search.
class CostModelTuner : public Tuner {
 public:
  CostModelTuner(const HardwareProfile& hw, const WorkloadSpec& workload,
                 uint64_t seed)
      : hw_(hw), workload_(workload), rng_(seed) {
    const auto& space = SearchSpace();
    bias_.resize(space.size());
    for (size_t d = 0; d < space.size(); d++) {
      bias_[d].assign(space[d].values.size(), 1.0);
    }
    // Enumerate the full cartesian space once; scoring is analytic and
    // cheap (a few thousand combos).
    std::vector<int> choice(space.size(), 0);
    Enumerate(0, &choice);
  }

  const char* Name() const override { return "cost_model"; }

  Options Propose(const std::vector<TunerObservation>& history) override {
    Calibrate(history);
    // Best-predicted unproposed combo under the current calibration.
    double best_score = -1;
    size_t best = SIZE_MAX;
    for (size_t i = 0; i < combos_.size(); i++) {
      if (proposed_.count(i)) continue;
      const double score = PredictOps(combos_[i]) * Bias(combos_[i]);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == SIZE_MAX) return history[BestIndex(history)].options;
    proposed_.insert(best);
    last_proposed_.push_back(best);
    return ApplyAssignment(combos_[best]);
  }

 private:
  void Enumerate(size_t dim, std::vector<int>* choice) {
    const auto& space = SearchSpace();
    if (dim == space.size()) {
      combos_.push_back(*choice);
      return;
    }
    for (size_t v = 0; v < space[dim].values.size(); v++) {
      (*choice)[dim] = static_cast<int>(v);
      Enumerate(dim + 1, choice);
    }
  }

  double Bias(const std::vector<int>& choice) const {
    double b = 1.0;
    for (size_t d = 0; d < choice.size(); d++) b *= bias_[d][choice[d]];
    return b;
  }

  // Fold each observed (predicted, measured) pair into the per-value
  // biases of the combo that produced it.
  void Calibrate(const std::vector<TunerObservation>& history) {
    // history[0] is the defaults baseline (not one of our proposals);
    // our k-th proposal produced history[k].
    for (size_t k = calibrated_; k < last_proposed_.size(); k++) {
      if (k + 1 >= history.size()) break;
      const std::vector<int>& combo = combos_[last_proposed_[k]];
      const double predicted = PredictOps(combo) * Bias(combo);
      const double measured = ObservedOps(history[k + 1]);
      if (predicted <= 0 || measured <= 0) continue;
      // Spread the residual across the combo's touched values with a
      // damped multiplicative update, clamped so one bad sample cannot
      // blow up the ranking.
      const double residual = measured / predicted;
      const double step =
          std::pow(residual, 0.5 / static_cast<double>(combo.size()));
      for (size_t d = 0; d < combo.size(); d++) {
        bias_[d][combo[d]] =
            std::clamp(bias_[d][combo[d]] * step, 0.25, 4.0);
      }
      calibrated_ = k + 1;
    }
  }

  // ---- the analytic model ----
  double PredictOps(const std::vector<int>& choice) const {
    const Options raw = ApplyAssignment(choice);
    // The bench scales byte capacities before running (bench_runner.h);
    // predict the configuration that will actually execute.
    const Options o = bench::ScaleCapacities(raw);

    const double value_bytes = workload_.value_size;
    const double entry_bytes = 16 + value_bytes;
    const double data_bytes =
        static_cast<double>(workload_.num_keys) * entry_bytes;

    double write_f = workload_.write_fraction;
    double scan_f = 0;
    switch (workload_.type) {
      case WorkloadType::kFillRandom: write_f = 1.0; break;
      case WorkloadType::kReadRandom: write_f = 0.0; break;
      case WorkloadType::kSeekRandom:
        write_f = 0.0;
        scan_f = 1.0;
        break;
      default: break;
    }
    const double read_f = 1.0 - write_f - scan_f;

    // --- write path ---
    double frontend_us =
        lsm::cost::kWalAppendBaseUs + lsm::cost::kMemtableInsertUs;
    if (o.enable_pipelined_write) {
      frontend_us *= lsm::cost::kPipelinedWriteFactor;
    }
    frontend_us += entry_bytes * lsm::cost::kWritePerByteUs;

    // Level count the data settles into; fewer levels -> less rewrite.
    const double level_base =
        std::max<double>(o.max_bytes_for_level_base, 1);
    double levels = 1;
    double cap = level_base;
    while (cap < data_bytes && levels < o.num_levels) {
      cap *= std::max(2.0, o.max_bytes_for_level_multiplier);
      levels++;
    }
    // First-order leveled write amplification: each level rewrites
    // roughly half the multiplier's worth of overlap.
    const double write_amp =
        1.0 + levels * std::max(2.0, o.max_bytes_for_level_multiplier) / 4.0;

    // Background demand per written entry: flush + compaction CPU plus
    // device bandwidth for write_amp copies of the entry.
    const double bg_cpu_us = lsm::cost::kFlushPerEntryUs +
                             write_amp * lsm::cost::kCompactionPerEntryUs;
    const double bg_io_us =
        write_amp * entry_bytes * 1e6 /
        static_cast<double>(hw_.device.seq_write_bps);
    const double bg_slots = std::max(
        1, std::min(o.ResolvedCompactionSlots() + o.ResolvedFlushSlots(),
                    hw_.cpu_cores - 1));
    // The writer proceeds at frontend speed while background keeps up;
    // once demand outruns the slots, the deficit surfaces as stall.
    const double write_us =
        std::max(frontend_us, (bg_cpu_us + bg_io_us) / bg_slots);

    // --- read path ---
    // Steady-state sorted runs a Get may probe: half the L0 trigger
    // plus one run per populated level.
    const double l0_runs = o.level0_file_num_compaction_trigger / 2.0;
    const double runs = l0_runs + levels;
    double probes = runs;
    if (o.bloom_filter_bits_per_key > 0) {
      const double fp =
          std::pow(0.6185, static_cast<double>(o.bloom_filter_bits_per_key));
      probes = 1.0 + (runs - 1.0) * fp;
    }
    // Cache coverage of the read working set: Zipfian workloads
    // concentrate ~80% of accesses in ~20% of the data.
    const bool zipfian = workload_.type == WorkloadType::kMixgraph;
    const double cache = static_cast<double>(o.block_cache_size);
    double hit;
    if (zipfian) {
      const double hot_cov = std::min(1.0, cache / (data_bytes * 0.2));
      const double cold_cov = std::min(1.0, cache / data_bytes);
      hit = std::min(0.98, 0.8 * hot_cov + 0.2 * cold_cov);
    } else {
      hit = std::min(0.98, cache / data_bytes);
    }
    const double miss_io_us = static_cast<double>(
        hw_.device.ReadCostMicros(o.block_size, /*sequential=*/false));
    const double read_us = lsm::cost::kGetBaseUs +
                           probes * lsm::cost::kGetPerFileProbeUs +
                           (1.0 - hit) * miss_io_us + hit * 2.0;

    // --- scans ---
    const double entries_per_block =
        std::max(1.0, static_cast<double>(o.block_size) / entry_bytes);
    const double scan_blocks = workload_.scan_length / entries_per_block;
    const double scan_us =
        read_us + scan_blocks * (1.0 - hit) *
                      static_cast<double>(hw_.device.ReadCostMicros(
                          o.block_size, /*sequential=*/true));

    const double total_us =
        write_f * write_us + read_f * read_us + scan_f * scan_us;
    if (total_us <= 0) return 0;
    return 1e6 / total_us;
  }

  HardwareProfile hw_;
  WorkloadSpec workload_;
  Random64 rng_;
  std::vector<std::vector<int>> combos_;
  std::set<size_t> proposed_;
  std::vector<size_t> last_proposed_;
  size_t calibrated_ = 0;
  std::vector<std::vector<double>> bias_;
};

// ---------------------------------------------------------------------
// The LLM contender: the full ELMo pipeline, one proposal per trial
// ---------------------------------------------------------------------

class LlmTuner : public Tuner {
 public:
  LlmTuner(const HardwareProfile& hw, const WorkloadSpec& workload,
           uint64_t seed)
      : hw_(hw), workload_(workload) {
    llm::ExpertConfig ecfg;
    ecfg.seed = seed;
    llm_ = std::make_unique<llm::SimulatedExpertLlm>(ecfg);
    chat_.push_back({"system", PromptGenerator::SystemMessage()});
    SimEnv probe_env(hw_, /*seed=*/1);
    profile_ = sysinfo::SystemProbe::Collect(&probe_env, "/probe");
  }

  const char* Name() const override { return "llm"; }

  Options Propose(const std::vector<TunerObservation>& history) override {
    const size_t best = BestIndex(history);
    const TunerObservation& best_obs = history[best];

    PromptInputs inputs;
    inputs.iteration = static_cast<int>(history.size());
    inputs.system = profile_;
    inputs.workload_description = workload_.Describe();
    inputs.current_options_ini =
        OptionsSchema::Instance().ToIniText(best_obs.options);
    inputs.last_benchmark_report = best_obs.result.ToReport();
    inputs.engine_telemetry = best_obs.result.engine_stats;
    inputs.timeseries = best_obs.result.timeseries;
    inputs.io_cache_evidence = best_obs.result.IoCacheEvidence();
    inputs.latency_attribution =
        best_obs.result.LatencyAttributionEvidence();
    inputs.health_evidence = best_obs.result.HealthEvidence();
    for (size_t i = 0; i < history.size(); i++) {
      char line[128];
      snprintf(line, sizeof(line), "Iteration %zu: %.0f ops/sec%s", i,
               ObservedOps(history[i]),
               i == best ? " (best, kept)" : (i == 0 ? " (defaults)"
                                                     : " (reverted)"));
      inputs.history.push_back(line);
    }
    if (history.size() > 1 && best != history.size() - 1) {
      inputs.deterioration_note =
          "The previous configuration DECREASED performance and was "
          "reverted; the configuration above is the best-known one.";
    }
    for (const auto& name : safeguard_.blacklist()) {
      inputs.locked_options.push_back(name);
    }

    chat_.push_back({"user", PromptGenerator::Generate(inputs)});
    std::string response;
    Status s = llm_->Complete(chat_, &response);
    if (!s.ok()) return best_obs.options;
    chat_.push_back({"assistant", response});

    ExtractedProposals proposals = OptionEvaluator::Extract(response);
    Options candidate;
    SafeguardReport report =
        safeguard_.Validate(best_obs.options, proposals.pairs, &candidate);
    if (report.applied.empty()) {
      // Unusable response: the trial is spent re-measuring the best
      // config — format breaks cost the LLM budget, as in the paper.
      return best_obs.options;
    }
    return candidate;
  }

 private:
  HardwareProfile hw_;
  WorkloadSpec workload_;
  std::unique_ptr<llm::SimulatedExpertLlm> llm_;
  SafeguardEnforcer safeguard_;
  sysinfo::SystemProfile profile_;
  std::vector<llm::ChatMessage> chat_;
};

double Round3(double v) { return std::round(v * 1000.0) / 1000.0; }

}  // namespace

std::unique_ptr<Tuner> MakeRandomSearchTuner(uint64_t seed) {
  return std::make_unique<RandomSearchTuner>(seed);
}

std::unique_ptr<Tuner> MakeGridSearchTuner() {
  return std::make_unique<GridSearchTuner>();
}

std::unique_ptr<Tuner> MakeCostModelTuner(const HardwareProfile& hw,
                                          const WorkloadSpec& workload,
                                          uint64_t seed) {
  return std::make_unique<CostModelTuner>(hw, workload, seed);
}

std::unique_ptr<Tuner> MakeLlmTuner(const HardwareProfile& hw,
                                    const WorkloadSpec& workload,
                                    uint64_t seed) {
  return std::make_unique<LlmTuner>(hw, workload, seed);
}

TournamentReport RunTournament(const TournamentConfig& config) {
  TournamentReport report;
  report.schema_version = bench::kBenchSchemaVersion;
  report.git_sha = bench::BuildGitSha();
  report.seed = config.seed;
  report.hardware = config.hw.Label();
  report.workload = config.workload.Describe();
  report.budget = config.budget;

  bench::BenchRunner runner(config.hw, config.seed);

  // One shared defaults baseline: every contender starts from the same
  // trial-0 observation.
  TunerObservation baseline;
  baseline.options = Options();
  baseline.result = runner.Run(config.workload, baseline.options);
  report.default_ops_per_sec = Round3(baseline.result.ops_per_sec);

  struct Contender {
    std::string name;
    std::unique_ptr<Tuner> tuner;
  };
  std::vector<Contender> contenders;
  auto wanted = [&config](const char* name) {
    if (config.contenders.empty()) return true;
    for (const auto& c : config.contenders) {
      if (c == name) return true;
    }
    return false;
  };
  if (wanted("llm")) {
    contenders.push_back(
        {"llm", MakeLlmTuner(config.hw, config.workload, config.seed)});
  }
  if (wanted("cost_model")) {
    contenders.push_back(
        {"cost_model",
         MakeCostModelTuner(config.hw, config.workload, config.seed)});
  }
  if (wanted("grid")) {
    contenders.push_back({"grid", MakeGridSearchTuner()});
  }
  if (wanted("random")) {
    contenders.push_back({"random", MakeRandomSearchTuner(config.seed)});
  }

  for (auto& c : contenders) {
    std::vector<TunerObservation> history;
    history.push_back(baseline);

    TunerRun run;
    run.name = c.name;
    run.trial_ops_per_sec.push_back(Round3(baseline.result.ops_per_sec));

    for (int t = 1; t <= config.budget; t++) {
      TunerObservation obs;
      obs.options = c.tuner->Propose(history);
      obs.result = runner.Run(config.workload, obs.options);
      run.trial_ops_per_sec.push_back(Round3(obs.result.ops_per_sec));
      history.push_back(std::move(obs));
    }

    double best = 0;
    for (size_t i = 0; i < history.size(); i++) {
      best = std::max(best, ObservedOps(history[i]));
      run.best_curve.push_back(Round3(best));
    }
    const size_t best_idx = BestIndex(history);
    run.best_ops_per_sec = Round3(ObservedOps(history[best_idx]));
    run.gain_vs_default =
        report.default_ops_per_sec > 0
            ? Round3(run.best_ops_per_sec / report.default_ops_per_sec)
            : 0;
    run.best_options_ini =
        OptionsSchema::Instance().ToIniText(history[best_idx].options);
    report.runs.push_back(std::move(run));
  }

  // Iterations-to-within-5%-of-best, judged against the tournament-wide
  // best throughput.
  double overall_best = report.default_ops_per_sec;
  for (const auto& r : report.runs) {
    overall_best = std::max(overall_best, r.best_ops_per_sec);
  }
  double winner_ops = 0;
  for (auto& r : report.runs) {
    for (size_t i = 0; i < r.best_curve.size(); i++) {
      if (r.best_curve[i] >= 0.95 * overall_best) {
        r.trials_to_within_5pct = static_cast<int>(i);
        break;
      }
    }
    if (report.winner.empty() || r.best_ops_per_sec > winner_ops) {
      report.winner = r.name;
      winner_ops = r.best_ops_per_sec;
    }
  }
  return report;
}

std::string TournamentReport::ToJson() const {
  json::Object doc;
  doc["kind"] = "bench_tournament";
  doc["schema_version"] = schema_version;
  doc["git_sha"] = git_sha;
  doc["sim_seed"] = static_cast<int64_t>(seed);
  doc["hardware"] = hardware;
  doc["workload"] = workload;
  doc["budget"] = budget;
  doc["default_ops_per_sec"] = default_ops_per_sec;
  doc["winner"] = winner;
  json::Array runs_arr;
  for (const auto& r : runs) {
    json::Object o;
    o["tuner"] = r.name;
    json::Array trials, curve;
    for (double v : r.trial_ops_per_sec) trials.push_back(json::Value(v));
    for (double v : r.best_curve) curve.push_back(json::Value(v));
    o["trial_ops_per_sec"] = std::move(trials);
    o["best_curve"] = std::move(curve);
    o["best_ops_per_sec"] = r.best_ops_per_sec;
    o["gain_vs_default"] = r.gain_vs_default;
    o["trials_to_within_5pct"] = r.trials_to_within_5pct;
    o["best_options_ini"] = r.best_options_ini;
    runs_arr.push_back(json::Value(std::move(o)));
  }
  doc["runs"] = std::move(runs_arr);
  return json::Value(std::move(doc)).Dump(2);
}

OnlineVsOfflineReport RunOnlineVsOffline(const OnlineVsOfflineConfig& config) {
  OnlineVsOfflineReport report;
  report.schema_version = bench::kBenchSchemaVersion;
  report.git_sha = bench::BuildGitSha();
  report.seed = config.seed;
  report.hardware = config.hw.Label();
  report.workload = config.workload.Describe();

  bench::BenchRunner runner(config.hw, config.seed);

  // The static field: each contender commits its memory split (and
  // parallelism) for the whole run — what an offline tuner must do.
  // Values are full-size (the runner scales capacities to bench size
  // and debits the footprint at full size, so memory stays scarce).
  struct StaticCandidate {
    const char* name;
    const char* description;
    Options options;
  };
  std::vector<StaticCandidate> candidates;
  candidates.push_back({"defaults", "engine defaults", Options()});
  {
    Options o;  // the write phase's favorite
    o.write_buffer_size = 256ull << 20;
    o.max_write_buffer_number = 4;
    o.max_background_jobs = 4;
    candidates.push_back(
        {"write_tuned", "big memtables, default cache", o});
  }
  {
    Options o;  // the read/scan phases' favorite
    o.block_cache_size = 2ull << 30;
    o.write_buffer_size = 16ull << 20;
    candidates.push_back(
        {"read_tuned", "big block cache, small memtables", o});
  }
  {
    Options o;  // the honest compromise: split memory, keep both small
    o.block_cache_size = 1ull << 30;
    o.write_buffer_size = 128ull << 20;
    o.max_write_buffer_number = 4;
    o.max_background_jobs = 4;
    candidates.push_back(
        {"balanced", "memory split between cache and memtables", o});
  }
  {
    Options o;  // both maxed: the footprint exceeds RAM and pays for it
    o.block_cache_size = 4ull << 30;
    o.write_buffer_size = 256ull << 20;
    o.max_write_buffer_number = 4;
    o.max_background_jobs = 4;
    candidates.push_back(
        {"oversized", "big cache AND big memtables, exceeds RAM", o});
  }

  for (const auto& c : candidates) {
    const bench::BenchResult r = runner.Run(config.workload, c.options);
    report.static_runs.push_back(
        {c.name, c.description, Round3(r.ops_per_sec)});
    if (r.ops_per_sec > report.best_static_ops_per_sec) {
      report.best_static_ops_per_sec = Round3(r.ops_per_sec);
      report.best_static = c.name;
    }
  }

  // The online run: defaults plus a live tuner on the bench hook.
  std::unique_ptr<llm::SimulatedExpertLlm> expert;
  if (config.use_llm) {
    llm::ExpertConfig ec;
    ec.seed = config.seed;
    expert = std::make_unique<llm::SimulatedExpertLlm>(ec);
  }
  OnlineTunerConfig tuner_cfg;
  // The live DB runs bench-scaled capacities, so the tuner's budget is
  // the bench-scale share of what the box leaves after the OS baseline.
  tuner_cfg.memory_budget_bytes =
      (config.hw.memory_bytes - SimEnv::kOsBaselineBytes) /
      bench::kCapacityScale;
  std::unique_ptr<OnlineTuner> tuner;
  lsm::DB* tuner_db = nullptr;
  auto hook = [&](lsm::DB* db, uint64_t) {
    if (db != tuner_db) {
      tuner_db = db;
      tuner = std::make_unique<OnlineTuner>(db, expert.get(), tuner_cfg);
    }
    tuner->Poll();
  };
  const bench::BenchResult online =
      runner.RunWithHook(config.workload, Options(), hook);

  report.online_ops_per_sec = Round3(online.ops_per_sec);
  report.online_gain_vs_best_static =
      report.best_static_ops_per_sec > 0
          ? Round3(report.online_ops_per_sec /
                   report.best_static_ops_per_sec)
          : 0;
  if (tuner != nullptr) {
    report.applied_deltas = tuner->applied_deltas();
    report.rollbacks = tuner->rollbacks();
    report.oscillations = tuner->oscillations();
    report.timeline_json = tuner->TimelineJson();
  }
  return report;
}

std::string OnlineVsOfflineReport::ToJson() const {
  json::Object doc;
  doc["kind"] = "bench_online_vs_offline";
  doc["schema_version"] = schema_version;
  doc["git_sha"] = git_sha;
  doc["sim_seed"] = static_cast<int64_t>(seed);
  doc["hardware"] = hardware;
  doc["workload"] = workload;
  json::Array statics;
  for (const auto& s : static_runs) {
    json::Object o;
    o["name"] = s.name;
    o["description"] = s.description;
    o["ops_per_sec"] = s.ops_per_sec;
    statics.push_back(std::move(o));
  }
  doc["static_runs"] = std::move(statics);
  doc["best_static"] = best_static;
  doc["best_static_ops_per_sec"] = best_static_ops_per_sec;
  doc["online_ops_per_sec"] = online_ops_per_sec;
  doc["online_gain_vs_best_static"] = online_gain_vs_best_static;
  doc["applied_deltas"] = applied_deltas;
  doc["rollbacks"] = rollbacks;
  doc["oscillations"] = oscillations;
  json::Value timeline;
  if (json::Parse(timeline_json, &timeline).ok()) {
    doc["timeline"] = std::move(timeline);
  }
  return json::Value(std::move(doc)).Dump(2);
}

std::string OnlineVsOfflineReport::SummaryTable() const {
  std::string out;
  char buf[256];
  out += "| configuration | ops/sec | note |\n|---|---|---|\n";
  for (const auto& s : static_runs) {
    snprintf(buf, sizeof(buf), "| %s (static) | %.0f | %s%s |\n",
             s.name.c_str(), s.ops_per_sec, s.description.c_str(),
             s.name == best_static ? " — best static" : "");
    out += buf;
  }
  snprintf(buf, sizeof(buf),
           "| **online** | %.0f | %d delta(s) applied live, %d rolled "
           "back — %.2fx vs best static |\n",
           online_ops_per_sec, applied_deltas, rollbacks,
           online_gain_vs_best_static);
  out += buf;
  return out;
}

std::string TournamentReport::SummaryTable() const {
  std::string out;
  char buf[256];
  out += "| tuner | best ops/sec | gain vs default | trials to within "
         "5% of best |\n";
  out += "|---|---|---|---|\n";
  for (const auto& r : runs) {
    snprintf(buf, sizeof(buf), "| %s%s | %.0f | %.2fx | %s |\n",
             r.name.c_str(), r.name == winner ? " **(winner)**" : "",
             r.best_ops_per_sec, r.gain_vs_default,
             r.trials_to_within_5pct < 0
                 ? "never"
                 : std::to_string(r.trials_to_within_5pct).c_str());
    out += buf;
  }
  return out;
}

}  // namespace elmo::tune
