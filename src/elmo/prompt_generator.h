// PromptGenerator: ELMo-Tune's "Automatic prompt generation" module —
// interlaces system information (psutil/fio-style probe), workload
// statistics, the current options file and the latest benchmark report
// into the user prompt sent to the LLM (paper §4.2).
#pragma once

#include <string>
#include <vector>

#include "bench_kit/workload.h"
#include "lsm/stats_sampler.h"
#include "sysinfo/system_probe.h"

namespace elmo::tune {

struct PromptInputs {
  int iteration = 1;
  sysinfo::SystemProfile system;
  std::string workload_description;
  std::string current_options_ini;   // the best-known options file text
  std::string last_benchmark_report; // raw report text
  // Full engine telemetry dump ("elmo.stats": tickers, stall reasons,
  // latency histograms, per-level read/write-amp table) from the best
  // run so far — richer signal than the report summary alone.
  std::string engine_telemetry;
  // Per-interval samples from the best run's StatsSampler; rendered as
  // a condensed throughput-over-time table so the LLM sees the *shape*
  // of the run (warmup, stall cliffs, compaction backlog growth), not
  // just end-of-run aggregates.
  std::vector<lsm::IntervalSample> timeseries;
  // Offline-analyzer evidence from the best run's IO and block-cache
  // traces (BenchResult::IoCacheEvidence()): per-kind/per-context IO
  // byte breakdown plus the simulated miss-ratio-vs-capacity curve, so
  // the LLM can argue about block_cache_size/bloom settings from
  // measured device traffic instead of guessing.
  std::string io_cache_evidence;
  // Per-op p99 latency decomposition from the best run's span trace
  // (BenchResult::LatencyAttributionEvidence()): which engine phase —
  // WAL sync, memtable, stalls, SST probes — owns the tail, so the LLM
  // targets the component that actually hurts instead of guessing.
  std::string latency_attribution;
  // Live-monitor verdict from the best run
  // (BenchResult::HealthEvidence()): health status, detected anomalies
  // and the ranked root-cause diagnoses with their suggested options —
  // the monitor's opinion of *why* the run behaved the way it did.
  std::string health_evidence;
  // Set when the previous iteration was reverted (the paper's
  // "intermediate prompt with the information about deterioration").
  std::string deterioration_note;
  // "Iteration N: X ops/sec (kept|reverted)" lines.
  std::vector<std::string> history;
  // Options the responder must not modify.
  std::vector<std::string> locked_options;
};

// Inputs for the online tuner's "live delta" prompt: the DB stays
// open, so only the runtime-mutable subset may move, and the evidence
// is the live sampler window rather than a finished benchmark report.
struct LiveDeltaInputs {
  // What tripped the tuner: a phase-shift anomaly line or a diagnosis
  // summary ("write share 0.95 -> 0.02", "rule l0_compaction_backlog").
  std::string trigger_description;
  // DescribeMutable() rendering of the current live values.
  std::string mutable_options;
  // Recent sampler intervals (newest last).
  std::vector<lsm::IntervalSample> recent_samples;
  // Health & diagnosis evidence from the live monitor.
  std::string health_evidence;
  // "applied {a=1, b=2} at t=..s (kept|rolled back)" lines.
  std::vector<std::string> delta_history;
  // Memory the memtables + block cache may use together; stated in the
  // prompt so size proposals fit the deployment. 0 = omit.
  uint64_t memory_budget_bytes = 0;
};

class PromptGenerator {
 public:
  // The persistent system message framing the conversation.
  static std::string SystemMessage();

  // One tuning-iteration user prompt.
  static std::string Generate(const PromptInputs& inputs);

  // One live-delta prompt for the online tuner (mid-run, mutable
  // options only, small-delta instructions).
  static std::string GenerateLiveDelta(const LiveDeltaInputs& inputs);
};

}  // namespace elmo::tune
