#include "elmo/history_export.h"

#include <cstdio>
#include <set>
#include <vector>

#include "lsm/options_schema.h"

namespace elmo::tune {

std::string ExportIterationCsv(const TuningOutcome& outcome) {
  std::string csv =
      "iteration,throughput_ops_sec,p99_write_us,p99_read_us,kept\n";
  char buf[160];
  snprintf(buf, sizeof(buf), "0,%.2f,%.2f,%.2f,baseline\n",
           outcome.baseline.ops_per_sec, outcome.baseline.p99_write_us(),
           outcome.baseline.p99_read_us());
  csv += buf;
  for (const auto& it : outcome.iterations) {
    snprintf(buf, sizeof(buf), "%d,%.2f,%.2f,%.2f,%s\n", it.iteration,
             it.result.ops_per_sec, it.result.p99_write_us(),
             it.result.p99_read_us(), it.kept ? "kept" : "reverted");
    csv += buf;
  }
  return csv;
}

std::string ExportOptionTraceMarkdown(const TuningOutcome& outcome) {
  // Rows in first-touched order, like the paper's Table 5.
  std::vector<std::string> rows;
  std::set<std::string> seen;
  for (const auto& it : outcome.iterations) {
    for (const auto& [name, value] : it.applied_changes) {
      if (seen.insert(name).second) rows.push_back(name);
    }
  }

  std::string md = "| Parameter | Default |";
  for (size_t i = 1; i <= outcome.iterations.size(); i++) {
    md += " Iter " + std::to_string(i) + " |";
  }
  md += "\n|---|---|";
  for (size_t i = 0; i < outcome.iterations.size(); i++) md += "---|";
  md += "\n";

  const auto& schema = lsm::OptionsSchema::Instance();
  lsm::Options defaults;
  for (const auto& name : rows) {
    const auto* info = schema.Find(name);
    md += "| " + name + " | " +
          (info != nullptr ? info->get(defaults) : std::string("?")) +
          " |";
    for (const auto& it : outcome.iterations) {
      auto found = it.applied_changes.find(name);
      if (found != it.applied_changes.end()) {
        md += " " + found->second + (it.kept ? "" : "\\*") + " |";
      } else {
        md += "  |";
      }
    }
    md += "\n";
  }
  return md;
}

}  // namespace elmo::tune
