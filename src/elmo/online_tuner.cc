#include "elmo/online_tuner.h"

#include <algorithm>
#include <cstdlib>

#include "elmo/option_evaluator.h"
#include "elmo/prompt_generator.h"
#include "elmo/safeguard.h"
#include "lsm/options_schema.h"
#include "stress_kit/stress_driver.h"

namespace elmo::tune {

namespace {

// Growth caps for the heuristic: the tuner moves the memory budget
// between memtables and cache per phase; caps keep a flapping workload
// from ratcheting either side without bound.
constexpr uint64_t kMinByteSize = 64ull << 10;
constexpr uint64_t kMaxWriteBufferSize = 64ull << 20;
constexpr uint64_t kMaxBlockCacheSize = 256ull << 20;

std::string U64(uint64_t v) { return std::to_string(v); }

}  // namespace

OnlineTuner::OnlineTuner(lsm::DB* db, llm::LlmClient* llm,
                         const OnlineTunerConfig& config)
    : db_(db), llm_(llm), cfg_(config),
      sample_interval_us_(
          db->options().stats_sample_interval_ms * 1000) {}

double OnlineTuner::SampleRate(const lsm::IntervalSample& s) {
  if (s.interval_us == 0) return 0;
  return (s.ops + s.seeks) / (s.interval_us / 1e6);
}

std::string OnlineTuner::DeltaSignature(
    const std::map<std::string, std::string>& delta) {
  std::string sig;
  for (const auto& [k, v] : delta) sig += k + "=" + v + ";";
  return sig;
}

void OnlineTuner::AddStep(uint64_t ts_us, const std::string& kind,
                          json::Object detail) {
  TimelineStep step;
  step.ts_us = ts_us;
  step.kind = kind;
  step.detail = std::move(detail);
  timeline_.push_back(std::move(step));
}

bool OnlineTuner::ReadHealth(monitor::HealthReport* report) const {
  std::string prop;
  if (!db_->GetProperty("elmo.health", &prop) || prop.empty()) {
    return false;
  }
  return monitor::HealthReport::FromJson(prop, report).ok();
}

bool OnlineTuner::PhaseShiftNear(uint64_t ts_us) const {
  monitor::HealthReport report;
  if (!ReadHealth(&report)) return false;
  const uint64_t slack = 2 * std::max<uint64_t>(sample_interval_us_, 1);
  for (const auto& e : report.anomalies) {
    if (!e.phase_shift) continue;
    const uint64_t d = e.ts_us > ts_us ? e.ts_us - ts_us : ts_us - e.ts_us;
    if (d <= slack) return true;
  }
  return false;
}

void OnlineTuner::Poll() {
  std::string prop;
  if (!db_->GetProperty("elmo.timeseries", &prop)) return;
  std::vector<lsm::IntervalSample> samples;
  uint64_t interval_us = 0;
  if (!lsm::TimeSeriesFromJson(prop, &samples, &interval_us).ok()) return;
  if (interval_us > 0) sample_interval_us_ = interval_us;

  // The ring is bounded drop-oldest; everything past the last consumed
  // timestamp is new.
  size_t first_new = samples.size();
  while (first_new > 0 && samples[first_new - 1].ts_us > last_sample_ts_) {
    first_new--;
  }
  if (!attached_) {
    // First look at the ring: whatever it holds predates this session
    // (a bulk load, another tuner's era). Take it as context for the
    // prompt but do not act on it — acting starts with the first
    // interval observed live, so baselines measure this era's traffic.
    attached_ = true;
    for (size_t i = first_new; i < samples.size(); i++) {
      last_sample_ts_ = samples[i].ts_us;
      recent_.push_back(samples[i]);
      while (recent_.size() > 16) recent_.pop_front();
    }
    return;
  }
  for (size_t i = first_new; i < samples.size(); i++) {
    last_sample_ts_ = samples[i].ts_us;
    recent_.push_back(samples[i]);
    while (recent_.size() > 16) recent_.pop_front();
    StepOnSample(samples[i]);
  }
}

void OnlineTuner::StepOnSample(const lsm::IntervalSample& s) {
  if (s.bg_error_severity > 0) {
    // The engine is degraded by a background error: tuning now would
    // chase error-shaped throughput, and a verdict would blame the
    // active delta for the outage. Pause until the error clears (the
    // engine's auto-resume, or an operator Resume()/reopen).
    if (!degraded_) {
      degraded_ = true;
      json::Object o;
      o["bg_error_severity"] = s.bg_error_severity;
      AddStep(s.ts_us, "degraded_pause", std::move(o));
    }
    return;
  }
  if (degraded_) {
    degraded_ = false;
    json::Object o;
    o["intervals_degraded"] = true;
    AddStep(s.ts_us, "degraded_resume", std::move(o));
    // The degraded intervals are not representative of any delta or
    // phase; cool down so triggers and verdicts restart on clean data.
    if (verifying_) {
      json::Object verdict;
      verdict["origin"] = active_origin_;
      verdict["result"] = "superseded_by_background_error";
      AddStep(s.ts_us, "verdict", std::move(verdict));
      verifying_ = false;
    }
    cooldown_left_ = std::max(cooldown_left_, 1);
  }
  if (verifying_) {
    VerifySample(s);
    return;
  }
  if (cooldown_left_ > 0) {
    cooldown_left_--;
    return;
  }
  CheckTrigger(s);
}

void OnlineTuner::CheckTrigger(const lsm::IntervalSample& s) {
  monitor::HealthReport report;
  if (!ReadHealth(&report)) return;

  // Primary trigger: a workload phase shift the detector confirmed
  // since the last handled trigger.
  const monitor::AnomalyEvent* shift = nullptr;
  for (const auto& e : report.anomalies) {
    if (e.phase_shift && e.ts_us > last_trigger_ts_) shift = &e;
  }

  std::string trigger;
  if (shift != nullptr) {
    trigger = "phase shift: " + shift->ToString();
    last_trigger_ts_ = shift->ts_us;
  } else if (!kicked_off_ && s.ops + s.seeks + s.writes > 0) {
    // Cold start: the session begins on whatever configuration the DB
    // was opened with; fit the first delta to the observed mix rather
    // than waiting for the mix to change.
    trigger = "session start: fitting the live mix";
    last_trigger_ts_ = s.ts_us;
  } else {
    // Secondary trigger: a severe diagnosis (its suggested_options seed
    // the heuristic). Rule-gated so the same standing verdict does not
    // re-fire every interval.
    if (report.diagnoses.empty()) return;
    const monitor::Diagnosis& top = report.diagnoses.front();
    if (top.severity < cfg_.diagnosis_severity_threshold ||
        top.rule == last_diag_rule_) {
      return;
    }
    char sev[32];
    snprintf(sev, sizeof(sev), "%.2f", top.severity);
    trigger = "diagnosis: " + top.rule + " (severity " + sev +
              "): " + top.cause;
    last_diag_rule_ = top.rule;
    last_trigger_ts_ = s.ts_us;
  }

  kicked_off_ = true;
  json::Object observe;
  observe["trigger"] = trigger;
  observe["rate_ops_per_sec"] = static_cast<int64_t>(SampleRate(s));
  AddStep(s.ts_us, "observe", std::move(observe));

  std::string origin;
  std::map<std::string, std::string> delta =
      ProposeDelta(s, trigger, report.diagnoses, &origin);
  if (delta.empty()) return;

  const std::string sig = DeltaSignature(delta);
  if (rolled_back_.count(sig) > 0) {
    // Proposing a delta that was already rolled back is the oscillation
    // loop the verdict machinery exists to prevent; skip and cool down.
    oscillations_++;
    json::Object skip;
    skip["signature"] = sig;
    AddStep(s.ts_us, "oscillation_skip", std::move(skip));
    cooldown_left_ = cfg_.cooldown_intervals;
    return;
  }

  json::Object propose;
  propose["origin"] = origin;
  json::Object changes;
  for (const auto& [k, v] : delta) changes[k] = v;
  propose["changes"] = std::move(changes);
  AddStep(s.ts_us, "propose", std::move(propose));

  // Post-shift baseline: the triggering interval's own rate, so the
  // verdict compares against the new phase's level, not the old one.
  ApplyDelta(delta, origin, s.ts_us, SampleRate(s));
}

std::map<std::string, std::string> OnlineTuner::ProposeDelta(
    const lsm::IntervalSample& s, const std::string& trigger,
    const std::vector<monitor::Diagnosis>& diagnoses,
    std::string* origin) {
  const lsm::OptionsSchema& schema = lsm::OptionsSchema::Instance();
  const lsm::Options& cur = db_->options();

  if (llm_ != nullptr) {
    LiveDeltaInputs in;
    in.trigger_description = trigger;
    in.memory_budget_bytes = cfg_.memory_budget_bytes;
    in.mutable_options = schema.DescribeMutable(cur);
    in.recent_samples.assign(recent_.begin(), recent_.end());
    monitor::HealthReport report;
    if (ReadHealth(&report)) in.health_evidence = report.ToText();
    in.delta_history = delta_history_;

    std::vector<llm::ChatMessage> messages;
    messages.push_back({"system", PromptGenerator::SystemMessage()});
    messages.push_back({"user", PromptGenerator::GenerateLiveDelta(in)});
    std::string response;
    if (llm_->Complete(messages, &response).ok()) {
      // Same vetting pipeline as the offline loop, then restricted to
      // the runtime-mutable subset — anything else SetOptions would
      // reject, so it never reaches the engine.
      SafeguardEnforcer safeguard(cfg_.extra_blacklist);
      lsm::Options scratch = cur;
      SafeguardReport vetted =
          safeguard.Validate(cur, OptionEvaluator::Extract(response).pairs,
                             &scratch);
      std::map<std::string, std::string> delta;
      for (const auto& [name, value] : vetted.applied) {
        const lsm::OptionInfo* info = schema.Find(name);
        if (info == nullptr || !info->runtime_mutable) continue;
        delta[name] = value;
      }
      ClampToBudget(&delta);
      for (auto it = delta.begin(); it != delta.end();) {
        const lsm::OptionInfo* info = schema.Find(it->first);
        it = info->get(cur) == it->second ? delta.erase(it) : ++it;
      }
      if (!delta.empty()) {
        *origin = "llm";
        return delta;
      }
    }
  }

  *origin = "heuristic";
  std::map<std::string, std::string> delta = HeuristicDelta(s, diagnoses);
  ClampToBudget(&delta);
  for (auto it = delta.begin(); it != delta.end();) {
    const lsm::OptionInfo* info = schema.Find(it->first);
    it = info->get(cur) == it->second ? delta.erase(it) : ++it;
  }
  return delta;
}

void OnlineTuner::ClampToBudget(
    std::map<std::string, std::string>* delta) const {
  if (cfg_.memory_budget_bytes == 0 || delta->empty()) return;
  const lsm::OptionsSchema& schema = lsm::OptionsSchema::Instance();
  lsm::Options candidate = db_->options();
  for (const auto& [name, value] : *delta) {
    schema.Apply(&candidate, name, value);
  }
  const uint64_t footprint = candidate.ConfiguredMemoryFootprint();
  if (footprint <= cfg_.memory_budget_bytes) return;
  // Over budget: the delta must take the memory from somewhere, so pull
  // the other byte-size knob into the delta at its current value (a
  // proposal that only grows the cache pays out of the memtables, and
  // vice versa), then shrink both proportionally. Floors can leave the
  // result above budget; the verdict machinery covers that remainder.
  const lsm::Options& cur = db_->options();
  if (delta->count("block_cache_size") == 0) {
    (*delta)["block_cache_size"] = U64(cur.block_cache_size);
  }
  if (delta->count("write_buffer_size") == 0) {
    (*delta)["write_buffer_size"] = U64(cur.write_buffer_size);
  }
  const double ratio = static_cast<double>(cfg_.memory_budget_bytes) /
                       static_cast<double>(footprint);
  for (const char* key : {"write_buffer_size", "block_cache_size"}) {
    auto& value = (*delta)[key];
    const uint64_t v = strtoull(value.c_str(), nullptr, 10);
    value = U64(std::max(
        kMinByteSize, static_cast<uint64_t>(static_cast<double>(v) * ratio)));
  }
}

std::map<std::string, std::string> OnlineTuner::HeuristicDelta(
    const lsm::IntervalSample& s,
    const std::vector<monitor::Diagnosis>& diagnoses) const {
  const lsm::Options& cur = db_->options();
  std::map<std::string, std::string> d;

  // Diagnosis-directed fixes first: the monitor already named the
  // bottleneck and the options to move.
  if (!diagnoses.empty() &&
      diagnoses.front().severity >= cfg_.diagnosis_severity_threshold) {
    const std::string& rule = diagnoses.front().rule;
    if (rule.find("backlog") != std::string::npos ||
        rule.find("l0") != std::string::npos) {
      d["max_background_jobs"] =
          U64(std::min(cur.max_background_jobs * 2, 8));
      d["level0_slowdown_writes_trigger"] =
          U64(std::min(cur.level0_slowdown_writes_trigger * 3 / 2, 60));
      d["level0_stop_writes_trigger"] =
          U64(std::max(cur.level0_stop_writes_trigger,
                       std::min(cur.level0_slowdown_writes_trigger * 3 / 2,
                                60) + 16));
      return d;
    }
    if (rule.find("memtable") != std::string::npos) {
      d["max_write_buffer_number"] =
          U64(std::min(cur.max_write_buffer_number + 2, 8));
      d["write_buffer_size"] = U64(std::clamp(
          cur.write_buffer_size * 2, kMinByteSize, kMaxWriteBufferSize));
      return d;
    }
    if (rule.find("cache") != std::string::npos) {
      d["block_cache_size"] = U64(std::clamp(
          cur.block_cache_size * 4, kMinByteSize, kMaxBlockCacheSize));
      return d;
    }
  }

  // Mix-directed memory shifting: the configured footprint (cache +
  // memtables) is what the environment debits from the page-cache
  // budget, so moving bytes toward the side the phase exercises — and
  // away from the side it does not — beats any static split. With a
  // budget the split is absolute (reallocate the whole budget); without
  // one, relative steps.
  const double denom = static_cast<double>(s.ops + s.seeks);
  const double write_share = denom > 0 ? s.writes / denom : 0;
  const uint64_t budget = cfg_.memory_budget_bytes;
  if (write_share > 0.5) {
    if (budget > 0) {
      // Half the budget to in-flight memtables; the cache idles.
      d["write_buffer_size"] = U64(std::clamp(
          budget / 8, kMinByteSize, kMaxWriteBufferSize));
      d["max_write_buffer_number"] = "4";
      d["block_cache_size"] = U64(std::max(kMinByteSize, budget / 16));
    } else {
      d["write_buffer_size"] = U64(std::clamp(
          cur.write_buffer_size * 4, kMinByteSize, kMaxWriteBufferSize));
      d["max_write_buffer_number"] =
          U64(std::max(cur.max_write_buffer_number, 4));
      d["block_cache_size"] = U64(std::clamp(
          cur.block_cache_size / 4, kMinByteSize, kMaxBlockCacheSize));
    }
    d["max_background_jobs"] = U64(std::max(cur.max_background_jobs, 4));
  } else {
    // Read or scan phase: the memtable budget is dead weight — hand it
    // to the block cache.
    if (budget > 0) {
      d["block_cache_size"] = U64(std::clamp(
          budget * 3 / 4, kMinByteSize, kMaxBlockCacheSize));
      d["write_buffer_size"] = U64(std::max(kMinByteSize, budget / 32));
      d["max_write_buffer_number"] = "2";
    } else {
      d["block_cache_size"] = U64(std::clamp(
          cur.block_cache_size * 4, kMinByteSize, kMaxBlockCacheSize));
      d["write_buffer_size"] = U64(std::clamp(
          cur.write_buffer_size / 4, kMinByteSize, kMaxWriteBufferSize));
      d["max_write_buffer_number"] = "2";
    }
  }

  // Drop no-ops so a repeated phase does not record empty applies.
  const lsm::OptionsSchema& schema = lsm::OptionsSchema::Instance();
  for (auto it = d.begin(); it != d.end();) {
    const lsm::OptionInfo* info = schema.Find(it->first);
    if (info != nullptr && info->get(cur) == it->second) {
      it = d.erase(it);
    } else {
      ++it;
    }
  }
  return d;
}

void OnlineTuner::ApplyDelta(
    const std::map<std::string, std::string>& delta,
    const std::string& origin, uint64_t ts_us, double baseline) {
  const lsm::OptionsSchema& schema = lsm::OptionsSchema::Instance();
  const lsm::Options& cur = db_->options();

  // Crash-certification gate: a delta that loses acknowledged writes
  // under crash/reopen cycles never reaches the live DB.
  if (cfg_.certify_ops > 0) {
    lsm::Options candidate = cur;
    for (const auto& [name, value] : delta) {
      schema.Apply(&candidate, name, value);
    }
    // Strip live-DB wiring: the stress harness builds its own env, log
    // and listeners.
    candidate.env = nullptr;
    candidate.info_log = nullptr;
    candidate.listeners.clear();
    candidate.metrics_export_path.clear();
    candidate.recover_persisted_options = false;
    stress::StressConfig scfg;
    scfg.base_options = candidate;
    scfg.env_kind = "sim";
    scfg.seed = cfg_.certify_seed;
    scfg.ops = cfg_.certify_ops;
    scfg.crash_cycles = cfg_.certify_crash_cycles;
    const stress::StressReport sr = stress::RunStress(scfg);
    if (!sr.ok) {
      json::Object fail;
      fail["origin"] = origin;
      fail["result"] = "certify_failed";
      fail["divergence"] = sr.first_divergence;
      AddStep(ts_us, "verdict", std::move(fail));
      cooldown_left_ = cfg_.cooldown_intervals;
      return;
    }
  }

  // Snapshot the revert values before the engine mutates them.
  std::map<std::string, std::string> revert;
  for (const auto& [name, value] : delta) {
    const lsm::OptionInfo* info = schema.Find(name);
    if (info != nullptr) revert[name] = info->get(cur);
  }

  Status s = db_->SetOptions(delta);
  json::Object apply;
  apply["origin"] = origin;
  json::Object changes;
  for (const auto& [k, v] : delta) changes[k] = v;
  apply["changes"] = std::move(changes);
  if (!s.ok()) {
    apply["error"] = s.ToString();
    AddStep(ts_us, "apply", std::move(apply));
    cooldown_left_ = cfg_.cooldown_intervals;
    return;
  }
  apply["baseline_ops_per_sec"] = static_cast<int64_t>(baseline);
  AddStep(ts_us, "apply", std::move(apply));

  std::string history_line = "applied {";
  bool first = true;
  for (const auto& [k, v] : delta) {
    if (!first) history_line += ", ";
    history_line += k + " = " + v;
    first = false;
  }
  history_line += "} at t=" + U64(ts_us) + "us (" + origin + ")";
  delta_history_.push_back(history_line);

  applied_deltas_++;
  verifying_ = true;
  baseline_rate_ = baseline;
  verify_seen_ = 0;
  strikes_ = 0;
  active_delta_ = delta;
  revert_delta_ = std::move(revert);
  active_origin_ = origin;
}

void OnlineTuner::VerifySample(const lsm::IntervalSample& s) {
  // A confirmed phase shift mid-verification supersedes the verdict:
  // the baseline belongs to the old phase, so neither "kept" nor
  // "rolled back" would mean anything — re-trigger on the new phase.
  {
    monitor::HealthReport report;
    if (ReadHealth(&report)) {
      for (const auto& e : report.anomalies) {
        if (e.phase_shift && e.ts_us > last_trigger_ts_) {
          json::Object verdict;
          verdict["origin"] = active_origin_;
          verdict["result"] = "superseded_by_phase_shift";
          AddStep(s.ts_us, "verdict", std::move(verdict));
          verifying_ = false;
          CheckTrigger(s);
          return;
        }
      }
    }
  }
  verify_seen_++;
  const double rate = SampleRate(s);
  if (baseline_rate_ > 0 &&
      rate < cfg_.rollback_drop_fraction * baseline_rate_ &&
      !PhaseShiftNear(s.ts_us)) {
    // Collapse with nothing else to blame: the delta is the suspect.
    strikes_++;
  }
  if (strikes_ >= cfg_.strikes_to_rollback) {
    Rollback(s);
    return;
  }
  if (verify_seen_ >= cfg_.verify_window) {
    json::Object verdict;
    verdict["origin"] = active_origin_;
    verdict["result"] = "kept";
    verdict["baseline_ops_per_sec"] =
        static_cast<int64_t>(baseline_rate_);
    verdict["final_ops_per_sec"] = static_cast<int64_t>(rate);
    AddStep(s.ts_us, "verdict", std::move(verdict));
    verifying_ = false;
    cooldown_left_ = cfg_.cooldown_intervals;
  }
}

void OnlineTuner::Rollback(const lsm::IntervalSample& s) {
  const std::string sig = DeltaSignature(active_delta_);
  Status rs = db_->SetOptions(revert_delta_);
  json::Object rb;
  rb["origin"] = active_origin_;
  rb["signature"] = sig;
  rb["baseline_ops_per_sec"] = static_cast<int64_t>(baseline_rate_);
  rb["collapsed_ops_per_sec"] = static_cast<int64_t>(SampleRate(s));
  if (!rs.ok()) rb["revert_error"] = rs.ToString();
  AddStep(s.ts_us, "rollback", std::move(rb));
  if (!delta_history_.empty()) {
    delta_history_.back() += " -> rolled back";
  }
  rolled_back_.insert(sig);
  rollbacks_++;
  verifying_ = false;
  cooldown_left_ = cfg_.cooldown_intervals;
}

Status OnlineTuner::InjectDelta(
    const std::map<std::string, std::string>& delta,
    const std::string& origin) {
  if (delta.empty()) {
    return Status::InvalidArgument("InjectDelta", "empty delta");
  }
  // Baseline from the recent window so the verdict machinery has a
  // reference even though no anomaly triggered this apply.
  double baseline = 0;
  int n = 0;
  for (auto it = recent_.rbegin(); it != recent_.rend() && n < 4; ++it) {
    baseline += SampleRate(*it);
    n++;
  }
  if (n > 0) baseline /= n;
  const int applied_before = applied_deltas_;
  ApplyDelta(delta, origin, last_sample_ts_, baseline);
  if (applied_deltas_ == applied_before) {
    // Rejected by the certify gate or by SetOptions validation; the
    // timeline step carries the detail.
    for (auto it = timeline_.rbegin(); it != timeline_.rend(); ++it) {
      if (it->kind == "apply") {
        auto err = it->detail.find("error");
        if (err != it->detail.end() && err->second.is_string()) {
          return Status::InvalidArgument("InjectDelta",
                                         err->second.as_string());
        }
        break;
      }
      if (it->kind == "verdict") break;
    }
    return Status::InvalidArgument("InjectDelta", "delta not applied");
  }
  return Status::OK();
}

std::string OnlineTuner::TimelineJson() const {
  json::Object doc;
  doc["applied"] = static_cast<int64_t>(applied_deltas_);
  doc["rollbacks"] = static_cast<int64_t>(rollbacks_);
  doc["oscillations"] = static_cast<int64_t>(oscillations_);
  json::Array steps;
  for (const auto& step : timeline_) {
    json::Object o;
    o["ts_us"] = static_cast<int64_t>(step.ts_us);
    o["kind"] = step.kind;
    o["detail"] = step.detail;
    steps.push_back(std::move(o));
  }
  doc["steps"] = std::move(steps);
  return json::Value(std::move(doc)).Dump(2);
}

}  // namespace elmo::tune
