#include "elmo/safeguard.h"

#include "lsm/options_schema.h"

namespace elmo::tune {

using lsm::OptionsSchema;

SafeguardEnforcer::SafeguardEnforcer(std::set<std::string> extra_blacklist)
    : blacklist_(std::move(extra_blacklist)) {
  for (const auto& info : OptionsSchema::Instance().all()) {
    if (info.blacklisted) blacklist_.insert(info.name);
  }
}

SafeguardReport SafeguardEnforcer::Validate(
    const lsm::Options& base,
    const std::vector<std::pair<std::string, std::string>>& proposals,
    lsm::Options* result) const {
  SafeguardReport report;
  *result = base;
  const OptionsSchema& schema = OptionsSchema::Instance();

  if (proposals.empty()) {
    report.format_ok = false;
    return report;
  }

  for (const auto& [name, value] : proposals) {
    if (blacklist_.count(name) > 0) {
      // Echoing the current value back (full-file responses do) is not
      // an attempt to change a locked option; only report real pokes.
      const auto* locked_info = schema.Find(name);
      if (locked_info != nullptr) {
        lsm::Options scratch = *result;
        if (locked_info->set(&scratch, value).ok() &&
            locked_info->get(scratch) == locked_info->get(*result)) {
          continue;
        }
      }
      report.rejected_blacklisted.push_back(name);
      continue;
    }
    const auto* info = schema.Find(name);
    if (info == nullptr) {
      if (schema.FindDeprecated(name) != nullptr) {
        report.rejected_deprecated.push_back(name);
      } else {
        report.rejected_unknown.push_back(name);
      }
      continue;
    }
    // Normalize through the schema and skip no-op "changes": an LLM
    // that echoes the whole options file back should only be credited
    // (and benchmarked) for what it actually changed.
    const std::string before = info->get(*result);
    Status s = info->set(result, value);
    if (!s.ok()) {
      report.rejected_invalid.push_back(name + "=" + value + " (" +
                                        s.ToString() + ")");
      continue;
    }
    if (info->get(*result) == before) continue;
    report.applied.emplace_back(name, info->get(*result));
  }
  return report;
}

std::string SafeguardReport::Summary() const {
  std::string s;
  s += "applied " + std::to_string(applied.size()) + " change(s)";
  auto list = [&](const char* label, const std::vector<std::string>& v) {
    if (v.empty()) return;
    s += "; " + std::string(label) + ":";
    for (const auto& name : v) s += " " + name;
  };
  list("rejected hallucinated option(s)", rejected_unknown);
  list("rejected deprecated option(s)", rejected_deprecated);
  list("blocked blacklisted option(s)", rejected_blacklisted);
  list("rejected invalid value(s)", rejected_invalid);
  if (!format_ok) s += "; response had no parseable configuration";
  return s;
}

}  // namespace elmo::tune
