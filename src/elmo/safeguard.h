// SafeguardEnforcer: vets every proposed change before it reaches the
// engine (paper §4.2). Two mechanisms, as in ELMo-Tune: a configurable
// blacklist of options that must never change (journaling/WAL class),
// and a format/validity checker that rejects hallucinated names,
// deprecated names, type mismatches and out-of-range values — all
// driven by the OptionsSchema registry.
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lsm/options.h"

namespace elmo::tune {

struct SafeguardReport {
  std::vector<std::pair<std::string, std::string>> applied;
  std::vector<std::string> rejected_unknown;      // hallucinations
  std::vector<std::string> rejected_deprecated;
  std::vector<std::string> rejected_blacklisted;
  std::vector<std::string> rejected_invalid;      // type / range
  bool format_ok = true;  // response contained a parseable config at all

  int total_rejected() const {
    return static_cast<int>(rejected_unknown.size() +
                            rejected_deprecated.size() +
                            rejected_blacklisted.size() +
                            rejected_invalid.size());
  }
  std::string Summary() const;
};

class SafeguardEnforcer {
 public:
  // `extra_blacklist` extends the schema's built-in blacklist
  // (disable_wal).
  explicit SafeguardEnforcer(std::set<std::string> extra_blacklist = {});

  // Applies the vetted subset of `proposals` on top of `base`,
  // producing *result. Never fails — bad proposals are reported, not
  // fatal.
  SafeguardReport Validate(
      const lsm::Options& base,
      const std::vector<std::pair<std::string, std::string>>& proposals,
      lsm::Options* result) const;

  const std::set<std::string>& blacklist() const { return blacklist_; }

 private:
  std::set<std::string> blacklist_;
};

}  // namespace elmo::tune
