// OptionEvaluator: ELMo-Tune's response parser. LLM answers arrive as
// free text, a single fenced code block, or an interleaving of both
// (paper §3, challenge 2); this module extracts every `key = value`
// proposal regardless of where it appears.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace elmo::tune {

struct ExtractedProposals {
  // In order of appearance; duplicates resolved last-wins by the
  // safeguard stage.
  std::vector<std::pair<std::string, std::string>> pairs;
  // True when at least one fenced code block was present (the format
  // checker's main signal).
  bool had_code_block = false;
};

class OptionEvaluator {
 public:
  static ExtractedProposals Extract(const std::string& llm_response);
};

}  // namespace elmo::tune
