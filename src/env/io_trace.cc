#include "env/io_trace.h"

#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"

namespace elmo {

namespace {

constexpr char kIOTraceMagic[8] = {'E', 'L', 'M', 'O', 'I', 'O', 'T', '1'};
constexpr uint32_t kIOTraceVersion = 1;
constexpr size_t kHeaderSize = sizeof(kIOTraceMagic) + 4 + 8;
// op + kind + ctx + ts + offset + len + latency; fname is variable.
constexpr size_t kPayloadFixed = 1 + 1 + 1 + 8 + 8 + 8 + 8;

thread_local IOContextTag tls_io_context = IOContextTag::kUnknown;
thread_local bool tls_io_metadata_hint = false;

}  // namespace

const char* IOOpName(IOOp op) {
  switch (op) {
    case IOOp::kRead:
      return "read";
    case IOOp::kWrite:
      return "write";
    case IOOp::kSync:
      return "sync";
    case IOOp::kRangeSync:
      return "range_sync";
  }
  return "unknown";
}

const char* IOFileKindName(IOFileKind kind) {
  switch (kind) {
    case IOFileKind::kUnknown:
      return "unknown";
    case IOFileKind::kWal:
      return "wal";
    case IOFileKind::kSstData:
      return "sst_data";
    case IOFileKind::kSstIndexFilter:
      return "sst_index_filter";
    case IOFileKind::kManifest:
      return "manifest";
    case IOFileKind::kInfoLog:
      return "info_log";
    case IOFileKind::kCurrent:
      return "current";
    case IOFileKind::kOther:
      return "other";
  }
  return "unknown";
}

const char* IOContextTagName(IOContextTag tag) {
  switch (tag) {
    case IOContextTag::kUnknown:
      return "unknown";
    case IOContextTag::kUserGet:
      return "user_get";
    case IOContextTag::kUserWrite:
      return "user_write";
    case IOContextTag::kFlush:
      return "flush";
    case IOContextTag::kCompaction:
      return "compaction";
    case IOContextTag::kRecovery:
      return "recovery";
  }
  return "unknown";
}

namespace {

// True if `s` is all digits (at least one). Engine data files are named
// NNNNNN.log / NNNNNN.sst (see lsm/filename.h); this layer re-derives
// the convention locally so elmo_env does not depend on elmo_lsm.
bool AllDigits(const Slice& s) {
  if (s.empty()) return false;
  for (size_t i = 0; i < s.size(); i++) {
    if (s[i] < '0' || s[i] > '9') return false;
  }
  return true;
}

bool HasNumericSuffix(const std::string& base, const char* suffix) {
  const size_t sl = strlen(suffix);
  if (base.size() <= sl || base.compare(base.size() - sl, sl, suffix) != 0) {
    return false;
  }
  return AllDigits(Slice(base.data(), base.size() - sl));
}

}  // namespace

IOFileKind ClassifyIOFileKind(const std::string& fname, bool hint_metadata) {
  size_t slash = fname.find_last_of('/');
  std::string base =
      slash == std::string::npos ? fname : fname.substr(slash + 1);
  if (base == "CURRENT") return IOFileKind::kCurrent;
  if (base == "LOG") return IOFileKind::kInfoLog;
  if (base.rfind("MANIFEST-", 0) == 0) return IOFileKind::kManifest;
  if (HasNumericSuffix(base, ".log")) return IOFileKind::kWal;
  if (HasNumericSuffix(base, ".sst")) {
    return hint_metadata ? IOFileKind::kSstIndexFilter : IOFileKind::kSstData;
  }
  return IOFileKind::kOther;
}

IOContextTag CurrentIOContext() { return tls_io_context; }

bool CurrentIOMetadataHint() { return tls_io_metadata_hint; }

IOContextScope::IOContextScope(IOContextTag tag) : saved_(tls_io_context) {
  tls_io_context = tag;
}

IOContextScope::~IOContextScope() { tls_io_context = saved_; }

IOMetadataHintScope::IOMetadataHintScope() : saved_(tls_io_metadata_hint) {
  tls_io_metadata_hint = true;
}

IOMetadataHintScope::~IOMetadataHintScope() { tls_io_metadata_hint = saved_; }

IOTracer::IOTracer(Env* env) : env_(env) {}

IOTracer::~IOTracer() { Close(); }

Status IOTracer::Open(const std::string& path, uint64_t base_ts_us) {
  std::lock_guard<std::mutex> l(mu_);
  Status s = env_->NewWritableFile(path, &file_);
  if (!s.ok()) return s;
  std::string header(kIOTraceMagic, sizeof(kIOTraceMagic));
  PutFixed32(&header, kIOTraceVersion);
  PutFixed64(&header, base_ts_us);
  s = file_->Append(Slice(header));
  if (!s.ok()) file_.reset();
  return s;
}

Status IOTracer::AddRecord(const IOTraceRecord& rec) {
  std::string payload;
  payload.reserve(kPayloadFixed + 5 + rec.fname.size());
  payload.push_back(static_cast<char>(rec.op));
  payload.push_back(static_cast<char>(rec.kind));
  payload.push_back(static_cast<char>(rec.context));
  PutFixed64(&payload, rec.ts_us);
  PutFixed64(&payload, rec.offset);
  PutFixed64(&payload, rec.len);
  PutFixed64(&payload, rec.latency_us);
  PutVarint32(&payload, static_cast<uint32_t>(rec.fname.size()));
  payload.append(rec.fname);

  std::string frame;
  frame.reserve(8 + payload.size());
  PutFixed32(&frame,
             crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame += payload;

  std::lock_guard<std::mutex> l(mu_);
  if (file_ == nullptr) return Status::IOError("io tracer not open");
  Status s = file_->Append(Slice(frame));
  if (s.ok()) records_++;
  return s;
}

Status IOTracer::Close() {
  std::lock_guard<std::mutex> l(mu_);
  if (file_ == nullptr) return Status::OK();
  Status s = file_->Flush();
  if (s.ok()) s = file_->Sync();
  Status c = file_->Close();
  if (s.ok()) s = c;
  file_.reset();
  return s;
}

uint64_t IOTracer::records() const {
  std::lock_guard<std::mutex> l(mu_);
  return records_;
}

IOTraceReader::IOTraceReader(Env* env) : env_(env) {}

Status IOTraceReader::Open(const std::string& path) {
  Status s = env_->NewSequentialFile(path, &file_);
  if (!s.ok()) return s;
  std::string header;
  bool eof = false;
  s = ReadFully(kHeaderSize, &header, &eof);
  if (!s.ok()) return s;
  if (eof || memcmp(header.data(), kIOTraceMagic, sizeof(kIOTraceMagic)) != 0) {
    return Status::Corruption("not an elmo io trace file");
  }
  const uint32_t version = DecodeFixed32(header.data() + sizeof(kIOTraceMagic));
  if (version != kIOTraceVersion) {
    return Status::Corruption("unsupported io trace version");
  }
  base_ts_us_ = DecodeFixed64(header.data() + sizeof(kIOTraceMagic) + 4);
  return Status::OK();
}

Status IOTraceReader::ReadFully(size_t n, std::string* out, bool* clean_eof) {
  out->clear();
  *clean_eof = false;
  std::string scratch(n, '\0');
  size_t got = 0;
  while (got < n) {
    Slice chunk;
    Status s = file_->Read(n - got, &chunk, &scratch[0] + got);
    if (!s.ok()) return s;
    if (chunk.empty()) {
      if (got == 0) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::Corruption("truncated io trace record");
    }
    if (chunk.data() != scratch.data() + got) {
      memcpy(&scratch[0] + got, chunk.data(), chunk.size());
    }
    got += chunk.size();
  }
  *out = std::move(scratch);
  return Status::OK();
}

Status IOTraceReader::Next(IOTraceRecord* rec, bool* eof) {
  *eof = false;
  if (file_ == nullptr) return Status::IOError("io trace reader not open");

  std::string frame_header;
  Status s = ReadFully(8, &frame_header, eof);
  if (!s.ok() || *eof) return s;
  const uint32_t expected_crc =
      crc32c::Unmask(DecodeFixed32(frame_header.data()));
  const uint32_t len = DecodeFixed32(frame_header.data() + 4);
  if (len < kPayloadFixed + 1 || len > (1u << 26)) {
    return Status::Corruption("bad io trace record length");
  }

  std::string payload;
  bool payload_eof = false;
  s = ReadFully(len, &payload, &payload_eof);
  if (!s.ok()) return s;
  if (payload_eof) return Status::Corruption("truncated io trace record");
  if (crc32c::Value(payload.data(), payload.size()) != expected_crc) {
    return Status::Corruption("io trace record checksum mismatch");
  }

  const uint8_t op = static_cast<uint8_t>(payload[0]);
  if (op < static_cast<uint8_t>(IOOp::kRead) ||
      op > static_cast<uint8_t>(IOOp::kRangeSync)) {
    return Status::Corruption("bad io trace op");
  }
  const uint8_t kind = static_cast<uint8_t>(payload[1]);
  if (kind > static_cast<uint8_t>(IOFileKind::kOther)) {
    return Status::Corruption("bad io trace file kind");
  }
  const uint8_t ctx = static_cast<uint8_t>(payload[2]);
  if (ctx > static_cast<uint8_t>(IOContextTag::kRecovery)) {
    return Status::Corruption("bad io trace context");
  }
  rec->op = static_cast<IOOp>(op);
  rec->kind = static_cast<IOFileKind>(kind);
  rec->context = static_cast<IOContextTag>(ctx);
  rec->ts_us = DecodeFixed64(payload.data() + 3);
  rec->offset = DecodeFixed64(payload.data() + 11);
  rec->len = DecodeFixed64(payload.data() + 19);
  rec->latency_us = DecodeFixed64(payload.data() + 27);
  Slice rest(payload.data() + kPayloadFixed, payload.size() - kPayloadFixed);
  uint32_t fname_len = 0;
  if (!GetVarint32(&rest, &fname_len) || rest.size() != fname_len) {
    return Status::Corruption("bad io trace file name length");
  }
  rec->fname.assign(rest.data(), fname_len);
  return Status::OK();
}

}  // namespace elmo
