#include "env/mem_env.h"

#include <chrono>
#include <cstring>
#include <thread>

namespace elmo {

namespace {

class MemSequentialFile final : public SequentialFile {
 public:
  explicit MemSequentialFile(MemFs::FileRef file) : file_(std::move(file)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    std::lock_guard<std::mutex> l(file_->mu);
    if (pos_ >= file_->data.size()) {
      *result = Slice();
      return Status::OK();
    }
    size_t avail = file_->data.size() - pos_;
    size_t to_read = std::min(n, avail);
    memcpy(scratch, file_->data.data() + pos_, to_read);
    pos_ += to_read;
    *result = Slice(scratch, to_read);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ += n;
    return Status::OK();
  }

 private:
  MemFs::FileRef file_;
  size_t pos_ = 0;
};

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(MemFs::FileRef file) : file_(std::move(file)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    std::lock_guard<std::mutex> l(file_->mu);
    if (offset >= file_->data.size()) {
      *result = Slice();
      return Status::OK();
    }
    size_t to_read = std::min<size_t>(n, file_->data.size() - offset);
    memcpy(scratch, file_->data.data() + offset, to_read);
    *result = Slice(scratch, to_read);
    return Status::OK();
  }

 private:
  MemFs::FileRef file_;
};

class MemWritableFile final : public WritableFile {
 public:
  MemWritableFile(MemFs::FileRef file, MemFs* fs)
      : file_(std::move(file)), fs_(fs) {}

  Status Append(const Slice& data) override {
    Status s = fs_->ReserveAppend(data.size());
    if (!s.ok()) return s;
    std::lock_guard<std::mutex> l(file_->mu);
    file_->data.append(data.data(), data.size());
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }

  uint64_t GetFileSize() const override {
    std::lock_guard<std::mutex> l(file_->mu);
    return file_->data.size();
  }

 private:
  MemFs::FileRef file_;
  MemFs* fs_;
};

}  // namespace

MemEnv::MemEnv() : high_pool_(1), low_pool_(2) {}

Status MemEnv::NewSequentialFile(const std::string& fname,
                                 std::unique_ptr<SequentialFile>* result) {
  MemFs::FileRef file;
  Status s = fs_.Open(fname, &file);
  if (!s.ok()) return s;
  *result = std::make_unique<MemSequentialFile>(std::move(file));
  return Status::OK();
}

Status MemEnv::NewRandomAccessFile(const std::string& fname,
                                   std::unique_ptr<RandomAccessFile>* result) {
  MemFs::FileRef file;
  Status s = fs_.Open(fname, &file);
  if (!s.ok()) return s;
  *result = std::make_unique<MemRandomAccessFile>(std::move(file));
  return Status::OK();
}

Status MemEnv::NewWritableFile(const std::string& fname,
                               std::unique_ptr<WritableFile>* result) {
  *result = std::make_unique<MemWritableFile>(fs_.Create(fname), &fs_);
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& fname) { return fs_.Exists(fname); }

Status MemEnv::GetChildren(const std::string& dir,
                           std::vector<std::string>* result) {
  return fs_.GetChildren(dir, result);
}

Status MemEnv::RemoveFile(const std::string& fname) {
  return fs_.Remove(fname);
}

Status MemEnv::CreateDirIfMissing(const std::string& dirname) {
  return fs_.CreateDirIfMissing(dirname);
}

Status MemEnv::RemoveDir(const std::string& dirname) {
  return fs_.RemoveDir(dirname);
}

Status MemEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  return fs_.GetFileSize(fname, size);
}

Status MemEnv::RenameFile(const std::string& src, const std::string& target) {
  return fs_.Rename(src, target);
}

uint64_t MemEnv::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void MemEnv::SleepForMicroseconds(uint64_t micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

void MemEnv::Schedule(std::function<void()> job, JobPriority pri) {
  (pri == JobPriority::kHigh ? high_pool_ : low_pool_).Submit(std::move(job));
}

void MemEnv::WaitForBackgroundWork() {
  high_pool_.WaitIdle();
  low_pool_.WaitIdle();
  high_pool_.WaitIdle();
  low_pool_.WaitIdle();
}

void MemEnv::SetBackgroundThreads(int n, JobPriority pri) {
  (pri == JobPriority::kHigh ? high_pool_ : low_pool_)
      .SetBackgroundThreads(n);
}

}  // namespace elmo
