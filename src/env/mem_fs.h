// MemFs: a thread-safe in-memory filesystem core shared by MemEnv (real
// clock) and SimEnv (virtual clock + device model). Paths are flat
// strings; directories exist implicitly but are tracked so GetChildren
// and RemoveDir behave like POSIX.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace elmo {

class MemFs {
 public:
  struct FileNode {
    std::mutex mu;
    std::string data;
  };
  using FileRef = std::shared_ptr<FileNode>;

  Status Open(const std::string& fname, FileRef* out) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) return Status::NotFound(fname);
    *out = it->second;
    return Status::OK();
  }

  // Create (truncating any existing file).
  FileRef Create(const std::string& fname) {
    std::lock_guard<std::mutex> l(mu_);
    auto node = std::make_shared<FileNode>();
    files_[fname] = node;
    return node;
  }

  bool Exists(const std::string& fname) {
    std::lock_guard<std::mutex> l(mu_);
    return files_.count(fname) > 0 || dirs_.count(fname) > 0;
  }

  Status GetChildren(const std::string& dir, std::vector<std::string>* out) {
    out->clear();
    std::string prefix = dir;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    std::lock_guard<std::mutex> l(mu_);
    if (dirs_.count(dir) == 0) return Status::NotFound(dir);
    std::set<std::string> children;
    for (const auto& [path, node] : files_) {
      if (path.size() > prefix.size() &&
          path.compare(0, prefix.size(), prefix) == 0) {
        std::string rest = path.substr(prefix.size());
        size_t slash = rest.find('/');
        children.insert(slash == std::string::npos ? rest
                                                   : rest.substr(0, slash));
      }
    }
    for (const auto& d : dirs_) {
      if (d.size() > prefix.size() &&
          d.compare(0, prefix.size(), prefix) == 0) {
        std::string rest = d.substr(prefix.size());
        size_t slash = rest.find('/');
        children.insert(slash == std::string::npos ? rest
                                                   : rest.substr(0, slash));
      }
    }
    out->assign(children.begin(), children.end());
    return Status::OK();
  }

  Status Remove(const std::string& fname) {
    std::lock_guard<std::mutex> l(mu_);
    if (files_.erase(fname) == 0) return Status::NotFound(fname);
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dirname) {
    std::lock_guard<std::mutex> l(mu_);
    dirs_.insert(dirname);
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) {
    std::lock_guard<std::mutex> l(mu_);
    if (dirs_.erase(dirname) == 0) return Status::NotFound(dirname);
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) {
    FileRef ref;
    Status s = Open(fname, &ref);
    if (!s.ok()) return s;
    std::lock_guard<std::mutex> l(ref->mu);
    *size = ref->data.size();
    return Status::OK();
  }

  Status Rename(const std::string& src, const std::string& target) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(src);
    if (it == files_.end()) return Status::NotFound(src);
    files_[target] = it->second;
    files_.erase(it);
    return Status::OK();
  }

  // Total bytes stored across all files (the simulated "dataset size",
  // used by SimEnv's page-cache model).
  uint64_t TotalBytes() {
    std::lock_guard<std::mutex> l(mu_);
    uint64_t total = 0;
    for (const auto& [path, node] : files_) {
      std::lock_guard<std::mutex> fl(node->mu);
      total += node->data.size();
    }
    return total;
  }

  // --- disk-capacity model (0 = unlimited, the default) ---
  // When a capacity is set, appends that would push TotalBytes past it
  // fail with Status::NoSpace; Env::GetFreeSpace reports the remainder.
  // This is what makes the engine's NoSpace pause/resume path testable:
  // shrink the capacity to force the pause, raise it (or delete files)
  // to let the free-space monitor resume background work.
  void SetCapacity(uint64_t bytes) {
    capacity_.store(bytes, std::memory_order_relaxed);
  }
  uint64_t Capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }
  uint64_t FreeBytes() {
    const uint64_t cap = Capacity();
    if (cap == 0) return UINT64_MAX;
    const uint64_t used = TotalBytes();
    return used >= cap ? 0 : cap - used;
  }
  // Admission check writers run before appending `n` bytes. Callers
  // must not hold a file mutex (TotalBytes takes the fs mutex).
  Status ReserveAppend(uint64_t n) {
    const uint64_t cap = Capacity();
    if (cap == 0) return Status::OK();
    if (TotalBytes() + n > cap) {
      return Status::NoSpace("mem filesystem capacity exceeded");
    }
    return Status::OK();
  }

 private:
  std::mutex mu_;
  std::map<std::string, FileRef> files_;
  std::set<std::string> dirs_;
  std::atomic<uint64_t> capacity_{0};
};

}  // namespace elmo
