// SimEnv: the deterministic environment every paper experiment runs on.
//
// * Files live in memory (MemFs) but every read, write and sync charges
//   time from a DeviceModel to a virtual clock.
// * Background jobs (flush/compaction) execute EAGERLY on the calling
//   thread, but their cost is captured by a "job meter" and handed to a
//   LaneScheduler which assigns them to core lanes; the DB's virtual
//   stall model then makes foreground writes wait for the *virtual*
//   completion times. See DESIGN.md §4.1.
// * An OS page-cache model gives read hits to a slice of the memory
//   budget not claimed by the application (block cache + memtables); a
//   configuration that overcommits memory pays a paging penalty.
// * An OS writeback model accumulates dirty bytes per file; crossing the
//   writeback threshold charges a burst stall to the *writer that
//   crossed it* — exactly the tail-latency mechanism that
//   `bytes_per_sync` / `wal_bytes_per_sync` exist to smooth.
//
// All randomness is seeded; two runs with the same inputs produce
// identical clocks, making the paper's tables byte-for-byte
// reproducible.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "env/device_model.h"
#include "env/env.h"
#include "env/hardware_profile.h"
#include "env/lane_scheduler.h"
#include "env/mem_fs.h"
#include "util/random.h"

namespace elmo {

class SimEnv : public Env {
 public:
  explicit SimEnv(const HardwareProfile& hw, uint64_t seed = 42);
  ~SimEnv() override = default;

  // --- Env: filesystem ---
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;
  Status GetFreeSpace(const std::string& path, uint64_t* bytes) override {
    (void)path;
    *bytes = fs_.FreeBytes();
    return Status::OK();
  }

  // --- Env: time & scheduling ---
  uint64_t NowMicros() override;
  void SleepForMicroseconds(uint64_t micros) override;
  void Schedule(std::function<void()> job, JobPriority pri) override;
  void WaitForBackgroundWork() override {}
  void SetBackgroundThreads(int n, JobPriority pri) override;
  bool is_deterministic() const override { return true; }
  void ChargeCpu(uint64_t micros) override;

  // --- Simulation control (used by DBImpl's sim path and benches) ---

  // Metering: between Begin and End, charged time accumulates into the
  // meter instead of the clock. Non-reentrant by design (background jobs
  // do not nest).
  void BeginJobMeter();
  uint64_t EndJobMeter();

  // Hand a metered duration to the lane scheduler; returns virtual
  // completion time.
  uint64_t ScheduleBackgroundJob(JobPriority pri, uint64_t ready_us,
                                 uint64_t duration_us);
  // Configure lane counts from options (flush/compaction slots).
  void ConfigureLanes(int flush_slots, int compaction_slots);

  // Jump the clock forward (stall waits in the DB's virtual stall model).
  void AdvanceTo(uint64_t micros);

  uint64_t NextBackgroundCompletionAfter(uint64_t now) const;

  // The application's configured memory footprint (block cache +
  // memtable budget + ...). Everything left of the memory budget after
  // the OS baseline feeds the page-cache model; overshoot triggers the
  // paging penalty.
  void SetAppMemoryFootprint(uint64_t bytes);

  // Multiplier applied to the app footprint inside the memory model
  // (default 1). Harnesses that scale option capacities down to keep
  // runs CI-sized (bench_kit's /64) must scale the footprint back up
  // here, or the debit vanishes against the full-size memory budget
  // and hoarding memory becomes free.
  void SetFootprintScale(uint64_t scale);

  // Memory the "OS + process baseline" claims before page cache.
  // Public so harnesses can compute the application's real budget:
  // memory_bytes - kOsBaselineBytes is what the app and the page cache
  // share.
  static constexpr uint64_t kOsBaselineBytes = 768ull << 20;

  const HardwareProfile& hardware() const { return hw_; }
  MemFs* fs() { return &fs_; }

  struct IoStats {
    uint64_t reads = 0;
    uint64_t read_bytes = 0;
    uint64_t pagecache_hits = 0;
    uint64_t writes = 0;
    uint64_t write_bytes = 0;
    uint64_t syncs = 0;
    uint64_t writeback_stalls = 0;  // forced OS writeback bursts
  };
  IoStats io_stats() const;

  // --- hooks used by the Sim file wrappers (public for the wrappers,
  //     not part of the user API) ---
  //
  // Reads model a single device head: an IO is sequential only if it
  // continues the device's last accessed position (same file, next
  // offset). Interleaved reads across files — a merging compaction
  // without readahead — therefore pay positioning costs, which is
  // exactly what compaction_readahead_size exists to avoid.
  void ChargeRead(const void* file_identity, uint64_t offset, uint64_t n);
  // A read satisfied from a previously charged readahead window (or
  // other known-cached source): DRAM cost only.
  void ChargeCachedRead(uint64_t n);
  // Explicit readahead: one positioning IO + streaming the window.
  void ChargeReadahead(const void* file_identity, uint64_t offset,
                       uint64_t n);
  // Append is a memcpy into the page cache; device cost is deferred to
  // writeback. Dirty bytes accumulate per file AND in a global pool —
  // when the pool crosses the OS limit, the writer that crossed it
  // takes a synchronous writeback burst.
  void ChargeAppend(uint64_t* dirty_counter, uint64_t n);
  void ChargeSync(uint64_t* dirty_counter);
  void ChargeRangeSync(uint64_t* dirty_counter, uint64_t max_bytes);

 private:
  // Add micros to the meter if active, else to the clock. Applies the
  // paging penalty multiplier. ChargeLocked requires mu_ held.
  void Charge(uint64_t micros);
  void ChargeLocked(uint64_t micros);
  double PagingPenalty() const;
  bool PageCacheHit(uint64_t n);

  // OS dirty-pool limit: once this much unsynced data accumulates
  // across all files, the OS forces a synchronous writeback on the next
  // writer (the vm.dirty_bytes stall, scaled to this repo's workloads).
  static constexpr uint64_t kOsDirtyLimit = 12ull << 20;
  // Dataset-scale compensation: experiments in this repo write ~100-200x
  // less data than the paper's 25-50M-key runs, so the page cache that
  // memory leaves over is shrunk by the same order of magnitude to keep
  // the cache-hit regime (cache << dataset) faithful. See DESIGN.md.
  static constexpr uint64_t kPageCacheScale = 256;
  // DRAM streaming speed for page-cache hits and appends.
  static constexpr uint64_t kDramBps = 8ull << 30;

  const HardwareProfile hw_;
  MemFs fs_;

  mutable std::mutex mu_;
  uint64_t clock_us_ = 0;
  bool meter_active_ = false;
  uint64_t meter_us_ = 0;
  LaneScheduler lanes_;
  uint64_t app_footprint_ = 0;
  uint64_t footprint_scale_ = 1;
  Random64 rng_;
  IoStats stats_;
  // Page-cache model bookkeeping: dataset size is sampled periodically
  // rather than per read (TotalBytes walks every file).
  uint64_t dataset_bytes_cache_ = 0;
  uint32_t refresh_countdown_ = 0;
  // Device head position (single-spindle / single-queue approximation).
  const void* head_file_ = nullptr;
  uint64_t head_offset_ = 0;
  // Global unsynced page-cache pool.
  uint64_t global_dirty_ = 0;
};

}  // namespace elmo
