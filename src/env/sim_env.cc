#include "env/sim_env.h"

#include <algorithm>
#include <cstring>

namespace elmo {

namespace {

// File wrappers: identical data paths to MemEnv's, plus cost charging
// into the owning SimEnv.

class SimSequentialFile final : public SequentialFile {
 public:
  SimSequentialFile(MemFs::FileRef file, SimEnv* env)
      : file_(std::move(file)), env_(env) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    size_t to_read;
    size_t offset = pos_;
    {
      std::lock_guard<std::mutex> l(file_->mu);
      if (pos_ >= file_->data.size()) {
        *result = Slice();
        return Status::OK();
      }
      to_read = std::min(n, file_->data.size() - pos_);
      memcpy(scratch, file_->data.data() + pos_, to_read);
      pos_ += to_read;
    }
    env_->ChargeRead(file_.get(), offset, to_read);
    *result = Slice(scratch, to_read);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ += n;
    return Status::OK();
  }

 private:
  MemFs::FileRef file_;
  SimEnv* env_;
  size_t pos_ = 0;
};

class SimRandomAccessFile final : public RandomAccessFile {
 public:
  SimRandomAccessFile(MemFs::FileRef file, SimEnv* env)
      : file_(std::move(file)), env_(env) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    size_t to_read;
    {
      std::lock_guard<std::mutex> l(file_->mu);
      if (offset >= file_->data.size()) {
        *result = Slice();
        return Status::OK();
      }
      to_read = std::min<size_t>(n, file_->data.size() - offset);
      memcpy(scratch, file_->data.data() + offset, to_read);
    }
    bool in_window;
    {
      std::lock_guard<std::mutex> l(mu_);
      in_window = (offset >= ra_begin_ && offset + to_read <= ra_end_);
    }
    if (in_window) {
      // Already staged by a Readahead call.
      env_->ChargeCachedRead(to_read);
    } else {
      env_->ChargeRead(file_.get(), offset, to_read);
    }
    *result = Slice(scratch, to_read);
    return Status::OK();
  }

  void Readahead(uint64_t offset, uint64_t length) override {
    uint64_t flen;
    {
      std::lock_guard<std::mutex> fl(file_->mu);
      flen = file_->data.size();
    }
    uint64_t end = std::min(offset + length, flen);
    if (end <= offset) return;
    // One positioning IO + streaming the whole window; reads inside the
    // window then cost DRAM only.
    env_->ChargeReadahead(file_.get(), offset, end - offset);
    std::lock_guard<std::mutex> l(mu_);
    ra_begin_ = offset;
    ra_end_ = end;
  }

 private:
  MemFs::FileRef file_;
  SimEnv* env_;
  mutable std::mutex mu_;
  mutable uint64_t ra_begin_ = 0;
  mutable uint64_t ra_end_ = 0;
};

class SimWritableFile final : public WritableFile {
 public:
  SimWritableFile(MemFs::FileRef file, SimEnv* env)
      : file_(std::move(file)), env_(env) {}
  ~SimWritableFile() override = default;

  Status Append(const Slice& data) override {
    Status s = env_->fs()->ReserveAppend(data.size());
    if (!s.ok()) return s;
    {
      std::lock_guard<std::mutex> l(file_->mu);
      file_->data.append(data.data(), data.size());
      size_ = file_->data.size();
    }
    env_->ChargeAppend(&dirty_, data.size());
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }
  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    env_->ChargeSync(&dirty_);
    return Status::OK();
  }

  Status RangeSync(uint64_t offset) override {
    // Sync everything buffered up to `offset`; we approximate by
    // draining min(dirty, offset) bytes.
    env_->ChargeRangeSync(&dirty_, offset);
    return Status::OK();
  }

  uint64_t GetFileSize() const override { return size_; }

 private:
  MemFs::FileRef file_;
  SimEnv* env_;
  uint64_t dirty_ = 0;
  uint64_t size_ = 0;
};

}  // namespace

SimEnv::SimEnv(const HardwareProfile& hw, uint64_t seed)
    : hw_(hw), rng_(seed) {
  lanes_.Configure(hw_.cpu_cores, /*flush_slots=*/1, /*compaction_slots=*/2);
}

Status SimEnv::NewSequentialFile(const std::string& fname,
                                 std::unique_ptr<SequentialFile>* result) {
  MemFs::FileRef file;
  Status s = fs_.Open(fname, &file);
  if (!s.ok()) return s;
  *result = std::make_unique<SimSequentialFile>(std::move(file), this);
  return Status::OK();
}

Status SimEnv::NewRandomAccessFile(const std::string& fname,
                                   std::unique_ptr<RandomAccessFile>* result) {
  MemFs::FileRef file;
  Status s = fs_.Open(fname, &file);
  if (!s.ok()) return s;
  *result = std::make_unique<SimRandomAccessFile>(std::move(file), this);
  return Status::OK();
}

Status SimEnv::NewWritableFile(const std::string& fname,
                               std::unique_ptr<WritableFile>* result) {
  *result = std::make_unique<SimWritableFile>(fs_.Create(fname), this);
  return Status::OK();
}

bool SimEnv::FileExists(const std::string& fname) { return fs_.Exists(fname); }

Status SimEnv::GetChildren(const std::string& dir,
                           std::vector<std::string>* result) {
  return fs_.GetChildren(dir, result);
}

Status SimEnv::RemoveFile(const std::string& fname) {
  return fs_.Remove(fname);
}

Status SimEnv::CreateDirIfMissing(const std::string& dirname) {
  return fs_.CreateDirIfMissing(dirname);
}

Status SimEnv::RemoveDir(const std::string& dirname) {
  return fs_.RemoveDir(dirname);
}

Status SimEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  return fs_.GetFileSize(fname, size);
}

Status SimEnv::RenameFile(const std::string& src, const std::string& target) {
  return fs_.Rename(src, target);
}

uint64_t SimEnv::NowMicros() {
  std::lock_guard<std::mutex> l(mu_);
  return clock_us_ + (meter_active_ ? meter_us_ : 0);
}

void SimEnv::SleepForMicroseconds(uint64_t micros) { Charge(micros); }

void SimEnv::Schedule(std::function<void()> job, JobPriority pri) {
  // The DB's deterministic path never reaches here (it runs jobs inline
  // under a meter); run immediately so misuse stays functional.
  (void)pri;
  job();
}

void SimEnv::SetBackgroundThreads(int n, JobPriority pri) {
  // Lane counts are configured via ConfigureLanes from options; keep a
  // compatible behavior for callers using the generic Env API.
  std::lock_guard<std::mutex> l(mu_);
  (void)n;
  (void)pri;
}

void SimEnv::ChargeCpu(uint64_t micros) {
  std::lock_guard<std::mutex> l(mu_);
  if (!meter_active_) {
    // Foreground work competes with background jobs for cores: when all
    // cores are busy compacting/flushing, a foreground op runs slower.
    int busy = lanes_.BusyCores(clock_us_);
    int cores = lanes_.num_cores();
    if (busy >= cores) {
      micros += micros;  // 2x when fully saturated
    } else if (busy > 0) {
      micros += micros * busy / (2 * cores);
    }
  }
  if (meter_active_) {
    meter_us_ += static_cast<uint64_t>(micros * PagingPenalty());
  } else {
    clock_us_ += static_cast<uint64_t>(micros * PagingPenalty());
  }
}

void SimEnv::BeginJobMeter() {
  std::lock_guard<std::mutex> l(mu_);
  meter_active_ = true;
  meter_us_ = 0;
}

uint64_t SimEnv::EndJobMeter() {
  std::lock_guard<std::mutex> l(mu_);
  meter_active_ = false;
  return meter_us_;
}

uint64_t SimEnv::ScheduleBackgroundJob(JobPriority pri, uint64_t ready_us,
                                       uint64_t duration_us) {
  std::lock_guard<std::mutex> l(mu_);
  return lanes_.Schedule(pri, ready_us, duration_us);
}

void SimEnv::ConfigureLanes(int flush_slots, int compaction_slots) {
  std::lock_guard<std::mutex> l(mu_);
  lanes_.Configure(hw_.cpu_cores, flush_slots, compaction_slots);
}

void SimEnv::AdvanceTo(uint64_t micros) {
  std::lock_guard<std::mutex> l(mu_);
  if (micros > clock_us_) clock_us_ = micros;
}

uint64_t SimEnv::NextBackgroundCompletionAfter(uint64_t now) const {
  std::lock_guard<std::mutex> l(mu_);
  return lanes_.NextCompletionAfter(now);
}

void SimEnv::SetAppMemoryFootprint(uint64_t bytes) {
  std::lock_guard<std::mutex> l(mu_);
  app_footprint_ = bytes;
}

void SimEnv::SetFootprintScale(uint64_t scale) {
  std::lock_guard<std::mutex> l(mu_);
  footprint_scale_ = scale == 0 ? 1 : scale;
}

SimEnv::IoStats SimEnv::io_stats() const {
  std::lock_guard<std::mutex> l(mu_);
  return stats_;
}

void SimEnv::Charge(uint64_t micros) {
  std::lock_guard<std::mutex> l(mu_);
  if (meter_active_) {
    meter_us_ += static_cast<uint64_t>(micros * PagingPenalty());
  } else {
    clock_us_ += static_cast<uint64_t>(micros * PagingPenalty());
  }
}

double SimEnv::PagingPenalty() const {
  // Callers hold mu_.
  uint64_t claimed = app_footprint_ * footprint_scale_ + kOsBaselineBytes;
  if (claimed <= hw_.memory_bytes) return 1.0;
  double overshoot = static_cast<double>(claimed - hw_.memory_bytes) /
                     static_cast<double>(hw_.memory_bytes);
  // Thrashing ramps up quickly once real memory is exceeded.
  return 1.0 + 6.0 * overshoot;
}

bool SimEnv::PageCacheHit(uint64_t n) {
  (void)n;
  // Callers hold mu_. Page cache = memory left after OS + application.
  uint64_t claimed = app_footprint_ * footprint_scale_ + kOsBaselineBytes;
  if (claimed >= hw_.memory_bytes) return false;
  uint64_t pagecache = (hw_.memory_bytes - claimed) / kPageCacheScale;
  if (refresh_countdown_-- == 0) {
    refresh_countdown_ = 255;
    // MemFs has its own lock and never calls back into SimEnv, so this
    // is safe to do under mu_.
    dataset_bytes_cache_ = fs_.TotalBytes();
  }
  uint64_t dataset = dataset_bytes_cache_;
  if (dataset <= pagecache) return true;
  double p = static_cast<double>(pagecache) / static_cast<double>(dataset);
  return rng_.NextDouble() < p;
}

void SimEnv::ChargeRead(const void* file_identity, uint64_t offset,
                        uint64_t n) {
  std::lock_guard<std::mutex> l(mu_);
  stats_.reads++;
  stats_.read_bytes += n;
  uint64_t cost;
  if (PageCacheHit(n)) {
    stats_.pagecache_hits++;
    cost = std::max<uint64_t>(1, n * 1000000 / kDramBps);
    // Page-cache hits do not move the device head.
  } else {
    const bool sequential =
        (file_identity == head_file_ && offset == head_offset_);
    cost = hw_.device.ReadCostMicros(n, sequential);
    head_file_ = file_identity;
    head_offset_ = offset + n;
  }
  ChargeLocked(cost);
}

void SimEnv::ChargeCachedRead(uint64_t n) {
  std::lock_guard<std::mutex> l(mu_);
  stats_.reads++;
  stats_.read_bytes += n;
  stats_.pagecache_hits++;
  ChargeLocked(std::max<uint64_t>(1, n * 1000000 / kDramBps));
}

void SimEnv::ChargeReadahead(const void* file_identity, uint64_t offset,
                             uint64_t n) {
  std::lock_guard<std::mutex> l(mu_);
  stats_.reads++;
  stats_.read_bytes += n;
  uint64_t cost = hw_.device.ReadCostMicros(
      n, file_identity == head_file_ && offset == head_offset_);
  head_file_ = file_identity;
  head_offset_ = offset + n;
  ChargeLocked(cost);
}

void SimEnv::ChargeAppend(uint64_t* dirty_counter, uint64_t n) {
  std::lock_guard<std::mutex> l(mu_);
  stats_.writes++;
  stats_.write_bytes += n;
  *dirty_counter += n;
  global_dirty_ += n;
  uint64_t cost = std::max<uint64_t>(1, n * 1000000 / kDramBps);
  if (global_dirty_ > kOsDirtyLimit) {
    // The OS dirty-pool limit tripped: the writer that crossed it is
    // forced to drain half the pool synchronously — a long, bursty
    // stall. Incremental syncing (bytes_per_sync / wal_bytes_per_sync)
    // exists precisely to avoid ever reaching this point.
    stats_.writeback_stalls++;
    uint64_t drain = global_dirty_ / 2;
    cost += hw_.device.SyncCostMicros(drain);
    global_dirty_ -= drain;
    if (*dirty_counter > drain) {
      *dirty_counter -= drain;
    } else {
      *dirty_counter = 0;
    }
  }
  ChargeLocked(cost);
}

void SimEnv::ChargeSync(uint64_t* dirty_counter) {
  std::lock_guard<std::mutex> l(mu_);
  stats_.syncs++;
  uint64_t cost = hw_.device.SyncCostMicros(*dirty_counter);
  global_dirty_ -= std::min(global_dirty_, *dirty_counter);
  *dirty_counter = 0;
  ChargeLocked(cost);
}

void SimEnv::ChargeRangeSync(uint64_t* dirty_counter, uint64_t max_bytes) {
  std::lock_guard<std::mutex> l(mu_);
  stats_.syncs++;
  uint64_t drained = std::min(*dirty_counter, max_bytes);
  uint64_t cost = hw_.device.SyncCostMicros(drained);
  *dirty_counter -= drained;
  global_dirty_ -= std::min(global_dirty_, drained);
  ChargeLocked(cost);
}

void SimEnv::ChargeLocked(uint64_t micros) {
  // Callers hold mu_.
  if (meter_active_) {
    meter_us_ += static_cast<uint64_t>(micros * PagingPenalty());
  } else {
    clock_us_ += static_cast<uint64_t>(micros * PagingPenalty());
  }
}

}  // namespace elmo
