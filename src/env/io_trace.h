// Device-facing IO tracing. Every file read/write/sync that flows
// through an IOTracingEnv (see io_tracing_env.h) can be recorded as one
// CRC-framed binary record: engine-clock timestamp, file name plus a
// classified kind (WAL / SST data / SST index+filter / MANIFEST / LOG),
// offset, length, per-op latency on the engine clock, and the IOContext
// the calling thread had declared (user get, flush, compaction, WAL
// append, ...). Enabled via DB::StartIOTrace/EndIOTrace; identical on
// SimEnv (deterministic, virtual clock) and PosixEnv.
//
// File layout (mirrors lsm/trace.h):
//   header:  "ELMOIOT1" | fixed32 version (=1) | fixed64 base_ts_us
//   record:  fixed32 masked_crc(payload) | fixed32 payload_len | payload
//   payload: op (1) | kind (1) | ctx (1) | fixed64 ts_us | fixed64 offset
//            | fixed64 len | fixed64 latency_us
//            | varint32 fname_len | fname bytes
// A torn or bit-flipped record fails its CRC and surfaces as
// Status::Corruption from IOTraceReader::Next.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "env/env.h"
#include "util/status.h"

namespace elmo {

// What the operation was.
enum class IOOp : uint8_t {
  kRead = 1,       // sequential or random read
  kWrite = 2,      // append
  kSync = 3,       // full durability barrier
  kRangeSync = 4,  // incremental bytes_per_sync-style sync
};

// Which kind of engine file the bytes went to, classified from the file
// name (lsm/filename.h) plus the thread-local block-kind hint that
// Table::Open sets while loading index/filter blocks.
enum class IOFileKind : uint8_t {
  kUnknown = 0,
  kWal = 1,
  kSstData = 2,
  kSstIndexFilter = 3,
  kManifest = 4,
  kInfoLog = 5,
  kCurrent = 6,
  kOther = 7,  // OPTIONS files, traces, temp files
};

// Why the IO happened: the thread-local attribution tag declared by the
// engine call site (IOContextScope below).
enum class IOContextTag : uint8_t {
  kUnknown = 0,
  kUserGet = 1,
  kUserWrite = 2,  // WAL append + foreground write-path IO
  kFlush = 3,
  kCompaction = 4,
  kRecovery = 5,  // WAL replay / manifest recovery at open
};

const char* IOOpName(IOOp op);
const char* IOFileKindName(IOFileKind kind);
const char* IOContextTagName(IOContextTag tag);

// Classify `fname` (a path; only the basename matters). `hint_metadata`
// elevates an SST read to kSstIndexFilter.
IOFileKind ClassifyIOFileKind(const std::string& fname, bool hint_metadata);

// ---------------------------------------------------------------------
// Thread-local attribution state.

// Current thread's context tag (kUnknown when no scope is active).
IOContextTag CurrentIOContext();
// True while the current thread is reading SST metadata (index/filter).
bool CurrentIOMetadataHint();

// RAII: sets the calling thread's IOContext for the scope's lifetime,
// restoring the previous tag on exit (scopes nest; the innermost wins).
class IOContextScope {
 public:
  explicit IOContextScope(IOContextTag tag);
  ~IOContextScope();

  IOContextScope(const IOContextScope&) = delete;
  IOContextScope& operator=(const IOContextScope&) = delete;

 private:
  IOContextTag saved_;
};

// RAII: marks reads issued in scope as SST metadata (index/filter).
class IOMetadataHintScope {
 public:
  IOMetadataHintScope();
  ~IOMetadataHintScope();

  IOMetadataHintScope(const IOMetadataHintScope&) = delete;
  IOMetadataHintScope& operator=(const IOMetadataHintScope&) = delete;

 private:
  bool saved_;
};

// ---------------------------------------------------------------------
// Records + writer/reader.

struct IOTraceRecord {
  IOOp op = IOOp::kRead;
  IOFileKind kind = IOFileKind::kUnknown;
  IOContextTag context = IOContextTag::kUnknown;
  uint64_t ts_us = 0;       // engine clock when the op started
  uint64_t offset = 0;      // file offset (0 for appends/syncs)
  uint64_t len = 0;         // bytes moved (0 for syncs)
  uint64_t latency_us = 0;  // engine-clock duration of the op
  std::string fname;
};

// Thread-safe writer. The trace file is written through the Env passed
// here — DBImpl passes the *raw* (unwrapped) env so the tracer's own
// writes never recurse into the trace.
class IOTracer {
 public:
  explicit IOTracer(Env* env);
  ~IOTracer();

  IOTracer(const IOTracer&) = delete;
  IOTracer& operator=(const IOTracer&) = delete;

  Status Open(const std::string& path, uint64_t base_ts_us);
  Status AddRecord(const IOTraceRecord& rec);
  // Flush+sync+close. Idempotent; safe after a failed Open.
  Status Close();

  uint64_t records() const;

 private:
  Env* const env_;
  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> file_;
  uint64_t records_ = 0;
};

class IOTraceReader {
 public:
  explicit IOTraceReader(Env* env);

  IOTraceReader(const IOTraceReader&) = delete;
  IOTraceReader& operator=(const IOTraceReader&) = delete;

  // Open and validate the header.
  Status Open(const std::string& path);

  // Read the next record. Sets *eof=true (with OK status) at a clean end
  // of file; returns Corruption on a bad CRC or truncated record.
  Status Next(IOTraceRecord* rec, bool* eof);

  uint64_t base_ts_us() const { return base_ts_us_; }

 private:
  Status ReadFully(size_t n, std::string* out, bool* clean_eof);

  Env* const env_;
  std::unique_ptr<SequentialFile> file_;
  uint64_t base_ts_us_ = 0;
};

}  // namespace elmo
