// LaneScheduler: models parallel execution of background jobs on a
// machine with a fixed number of CPU cores and configurable flush /
// compaction slot counts (RocksDB's max_background_flushes /
// max_background_compactions). A job needs a pool slot AND a core; its
// start time is the earliest instant both are free after it is ready.
//
// The scheduler is pure bookkeeping over virtual timestamps — jobs
// themselves execute eagerly elsewhere; only their *durations* flow in.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "env/env.h"

namespace elmo {

class LaneScheduler {
 public:
  LaneScheduler() { Configure(4, 1, 2); }

  void Configure(int cpu_cores, int flush_slots, int compaction_slots) {
    cores_.assign(std::max(1, cpu_cores), 0);
    flush_slots_.assign(std::max(1, flush_slots), 0);
    compaction_slots_.assign(std::max(1, compaction_slots), 0);
  }

  // Schedule a job of `duration_us` that becomes ready at `ready_us`.
  // Returns its completion time.
  uint64_t Schedule(JobPriority pri, uint64_t ready_us, uint64_t duration_us) {
    std::vector<uint64_t>& pool =
        (pri == JobPriority::kHigh) ? flush_slots_ : compaction_slots_;
    size_t pool_i = ArgMin(pool);
    size_t core_i = ArgMin(cores_);
    uint64_t start = std::max({ready_us, pool[pool_i], cores_[core_i]});
    uint64_t end = start + duration_us;
    pool[pool_i] = end;
    cores_[core_i] = end;
    return end;
  }

  // Number of cores still executing background work at `now`.
  int BusyCores(uint64_t now) const {
    int busy = 0;
    for (uint64_t t : cores_) {
      if (t > now) busy++;
    }
    return busy;
  }

  int num_cores() const { return static_cast<int>(cores_.size()); }

  // Earliest time at which any in-flight background work completes after
  // `now`; returns `now` when idle.
  uint64_t NextCompletionAfter(uint64_t now) const {
    uint64_t best = now;
    bool found = false;
    for (uint64_t t : cores_) {
      if (t > now && (!found || t < best)) {
        best = t;
        found = true;
      }
    }
    return found ? best : now;
  }

 private:
  static size_t ArgMin(const std::vector<uint64_t>& v) {
    size_t best = 0;
    for (size_t i = 1; i < v.size(); i++) {
      if (v[i] < v[best]) best = i;
    }
    return best;
  }

  std::vector<uint64_t> cores_;
  std::vector<uint64_t> flush_slots_;
  std::vector<uint64_t> compaction_slots_;
};

}  // namespace elmo
