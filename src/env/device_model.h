// DeviceModel: cost model of a storage device used by SimEnv. Numbers
// are first-order characteristics of the device classes the paper
// evaluates (NVMe SSD, SATA HDD); what matters for the reproduction is
// the *ratio* structure — HDDs pay milliseconds per random IO and sync,
// NVMe pays tens of microseconds — because that is what the tuned
// options (readahead, sync granularity, compaction parallelism) exploit.
#pragma once

#include <cstdint>
#include <string>

namespace elmo {

struct DeviceModel {
  std::string name;

  uint64_t seq_read_bps;        // sequential read bandwidth, bytes/sec
  uint64_t seq_write_bps;       // sequential write bandwidth
  uint64_t rand_read_lat_us;    // per-IO latency for a non-sequential read
  uint64_t rand_write_lat_us;   // per-IO latency for a non-sequential write
  uint64_t sync_base_us;        // fixed cost of a durability barrier
  uint64_t sync_bps;            // bandwidth when draining dirty pages

  // Cost in microseconds of reading n bytes. A sequential read pays only
  // bandwidth; a random one pays the per-IO latency too.
  uint64_t ReadCostMicros(uint64_t n, bool sequential) const {
    uint64_t bw = BytesCost(n, seq_read_bps);
    return sequential ? bw : rand_read_lat_us + bw;
  }

  uint64_t WriteCostMicros(uint64_t n, bool sequential) const {
    uint64_t bw = BytesCost(n, seq_write_bps);
    return sequential ? bw : rand_write_lat_us + bw;
  }

  // Cost of a durability barrier that must drain `dirty` buffered bytes.
  uint64_t SyncCostMicros(uint64_t dirty) const {
    return sync_base_us + BytesCost(dirty, sync_bps);
  }

  static DeviceModel NvmeSsd();
  static DeviceModel SataHdd();

 private:
  static uint64_t BytesCost(uint64_t n, uint64_t bps) {
    if (bps == 0) return 0;
    return (n * 1000000ull) / bps;
  }
};

}  // namespace elmo
