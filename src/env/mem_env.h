// MemEnv: in-memory filesystem + real clock + real thread pools. Fast,
// hermetic environment for unit and integration tests.
#pragma once

#include <memory>

#include "env/env.h"
#include "env/mem_fs.h"
#include "util/thread_pool.h"

namespace elmo {

class MemEnv : public Env {
 public:
  MemEnv();
  ~MemEnv() override = default;

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;
  Status GetFreeSpace(const std::string& path, uint64_t* bytes) override {
    (void)path;
    *bytes = fs_.FreeBytes();
    return Status::OK();
  }

  uint64_t NowMicros() override;
  void SleepForMicroseconds(uint64_t micros) override;
  void Schedule(std::function<void()> job, JobPriority pri) override;
  void WaitForBackgroundWork() override;
  void SetBackgroundThreads(int n, JobPriority pri) override;

  MemFs* fs() { return &fs_; }

 private:
  MemFs fs_;
  ThreadPool high_pool_;
  ThreadPool low_pool_;
};

}  // namespace elmo
