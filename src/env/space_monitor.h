// SpaceMonitor: an SstFileManager-lite free-space guard. Polls
// Env::GetFreeSpace for the device under the DB and answers one
// question — is there enough headroom to run background writes
// (flushes, compactions) safely? The DB pauses background work while
// the answer is no (a soft NoSpace error state handled by the
// ErrorHandler) and auto-resumes once space frees.
//
// `reserved_bytes` is the headroom the monitor keeps in reserve:
// background work is paused while free space sits at or below it, so
// the engine never writes the device completely full — the WAL and
// MANIFEST keep a margin to land their own records in.
//
// Polling is rate-limited on the engine clock (deterministic under
// SimEnv); a failed GetFreeSpace is treated as "unknown, assume fine"
// so an env without capacity support never stalls the DB.
#pragma once

#include <cstdint>
#include <string>

#include "env/env.h"

namespace elmo {

class SpaceMonitor {
 public:
  // `env` must outlive the monitor. `reserved_bytes` == 0 disables the
  // guard entirely (HasHeadroom is then always true and never polls).
  SpaceMonitor(Env* env, std::string path, uint64_t reserved_bytes,
               uint64_t poll_interval_us = 100 * 1000);

  // True when free space on the device exceeds the reservation.
  // Re-polls the env at most once per poll interval; between polls the
  // cached verdict is returned. `now_us` is the engine clock.
  bool HasHeadroom(uint64_t now_us);

  // Drop the cache and re-poll on the next HasHeadroom call — used by
  // the resume path so recovery sees fresh truth, not a stale verdict.
  void Invalidate() { last_poll_us_ = 0; }

  uint64_t reserved_bytes() const { return reserved_bytes_; }
  // Free bytes observed by the most recent poll (UINT64_MAX before the
  // first poll or when the env reports no capacity bound).
  uint64_t last_free_bytes() const { return last_free_bytes_; }
  // Times HasHeadroom flipped from true to false (low-space pauses).
  uint64_t low_space_events() const { return low_space_events_; }

 private:
  Env* const env_;
  const std::string path_;
  const uint64_t reserved_bytes_;
  const uint64_t poll_interval_us_;

  uint64_t last_poll_us_ = 0;
  bool has_headroom_ = true;
  bool polled_once_ = false;
  uint64_t last_free_bytes_ = UINT64_MAX;
  uint64_t low_space_events_ = 0;
};

}  // namespace elmo
