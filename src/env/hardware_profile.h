// HardwareProfile: the axes the paper varies in its Docker containers —
// CPU cores, memory, storage device. SimEnv is constructed from one of
// these; sysinfo turns one into prompt text.
#pragma once

#include <cstdint>
#include <string>

#include "env/device_model.h"
#include "util/string_util.h"

namespace elmo {

struct HardwareProfile {
  int cpu_cores = 4;
  uint64_t memory_bytes = 4ull << 30;
  DeviceModel device = DeviceModel::NvmeSsd();

  static HardwareProfile Make(int cores, uint64_t mem_gib,
                              const DeviceModel& dev) {
    HardwareProfile hw;
    hw.cpu_cores = cores;
    hw.memory_bytes = mem_gib << 30;
    hw.device = dev;
    return hw;
  }

  std::string Label() const {
    return std::to_string(cpu_cores) + "c+" +
           std::to_string(memory_bytes >> 30) + "g/" + device.name;
  }
};

}  // namespace elmo
