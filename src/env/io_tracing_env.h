// IOTracingEnv: a decorator Env that forwards everything to a base Env
// and, while a trace is active, emits one IOTraceRecord per file
// read/append/sync/range-sync with engine-clock latency and the calling
// thread's IOContext. Files are wrapped at open time, so a WAL opened
// before DB::StartIOTrace still shows up once tracing starts. The trace
// file itself is written through the *base* env, so tracer output never
// recurses into the trace.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "env/env.h"
#include "env/io_trace.h"

namespace elmo {

class IOTracingEnv : public Env {
 public:
  explicit IOTracingEnv(Env* base);
  ~IOTracingEnv() override;

  Env* base() const { return base_; }

  // Begin tracing into `path`. Fails with Busy if a trace is active.
  Status StartTrace(const std::string& path);
  // Stop tracing and close the file; *records (optional) receives the
  // number of records written. InvalidArgument if no trace is active.
  Status EndTrace(uint64_t* records);
  bool tracing() const { return enabled_.load(std::memory_order_acquire); }

  // Internal: called by the file wrappers. Latency is (end_us - start_us)
  // measured on the base env's clock before the record is serialized, so
  // the tracer's own writes never inflate it.
  void Emit(IOOp op, const std::string& fname, uint64_t offset, uint64_t len,
            uint64_t start_us, uint64_t end_us);

  // Env interface: file factories wrap, everything else forwards.
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src, const std::string& target) override;
  Status GetFreeSpace(const std::string& path, uint64_t* bytes) override {
    return base_->GetFreeSpace(path, bytes);
  }
  uint64_t NowMicros() override;
  void SleepForMicroseconds(uint64_t micros) override;
  void Schedule(std::function<void()> job, JobPriority pri) override;
  void WaitForBackgroundWork() override;
  void SetBackgroundThreads(int n, JobPriority pri) override;
  bool is_deterministic() const override;
  void ChargeCpu(uint64_t micros) override;

 private:
  Env* const base_;
  std::atomic<bool> enabled_{false};
  std::mutex trace_mu_;
  std::shared_ptr<IOTracer> tracer_;
};

}  // namespace elmo
