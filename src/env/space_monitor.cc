#include "env/space_monitor.h"

#include <utility>

namespace elmo {

SpaceMonitor::SpaceMonitor(Env* env, std::string path,
                           uint64_t reserved_bytes,
                           uint64_t poll_interval_us)
    : env_(env),
      path_(std::move(path)),
      reserved_bytes_(reserved_bytes),
      poll_interval_us_(poll_interval_us) {}

bool SpaceMonitor::HasHeadroom(uint64_t now_us) {
  if (reserved_bytes_ == 0) return true;
  if (polled_once_ && last_poll_us_ != 0 &&
      now_us < last_poll_us_ + poll_interval_us_) {
    return has_headroom_;
  }
  last_poll_us_ = now_us;
  uint64_t free_bytes = 0;
  Status s = env_->GetFreeSpace(path_, &free_bytes);
  if (!s.ok()) {
    // No capacity signal from this env: never hold the engine hostage
    // to a guard it cannot evaluate.
    polled_once_ = true;
    has_headroom_ = true;
    last_free_bytes_ = UINT64_MAX;
    return true;
  }
  const bool headroom = free_bytes > reserved_bytes_;
  if (polled_once_ && has_headroom_ && !headroom) low_space_events_++;
  if (!polled_once_ && !headroom) low_space_events_++;
  polled_once_ = true;
  has_headroom_ = headroom;
  last_free_bytes_ = free_bytes;
  return has_headroom_;
}

}  // namespace elmo
