// Env: the operating-environment abstraction the LSM engine is written
// against (files, clock, background scheduling), in the style of
// leveldb/rocksdb Env. Three implementations exist:
//
//   PosixEnv  — real files and threads; used by unit tests and examples.
//   MemEnv    — in-memory filesystem with real clock; fast tests.
//   SimEnv    — in-memory filesystem with a *virtual* clock and a device
//               model; every experiment in the paper reproduction runs on
//               it (see sim_env.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace elmo {

class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  // Read up to n bytes. *result may point into scratch.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
  // Advisory: subsequent reads will be sequential from `offset` for
  // `length` bytes (compaction readahead). Default no-op.
  virtual void Readahead(uint64_t offset, uint64_t length) {
    (void)offset;
    (void)length;
  }
};

class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Close() = 0;
  virtual Status Flush() = 0;  // push user-space buffer to the "OS"
  virtual Status Sync() = 0;   // durably persist
  // Sync bytes [0, offset); used to implement bytes_per_sync-style
  // incremental syncing. Defaults to full Sync.
  virtual Status RangeSync(uint64_t offset) {
    (void)offset;
    return Sync();
  }
  virtual uint64_t GetFileSize() const = 0;
};

enum class JobPriority { kHigh = 0, kLow = 1 };  // flush vs compaction

class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDirIfMissing(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;
  // Read/write a whole file; convenience built on the primitives.
  Status ReadFileToString(const std::string& fname, std::string* data);
  Status WriteStringToFile(const Slice& data, const std::string& fname,
                           bool sync = false);

  // Free bytes on the device holding `path`. Envs without a capacity
  // notion report effectively-infinite space; MemEnv/SimEnv honor a
  // configured disk capacity so NoSpace handling is testable. The
  // SpaceMonitor (SstFileManager-lite) polls this.
  virtual Status GetFreeSpace(const std::string& path, uint64_t* bytes) {
    (void)path;
    *bytes = UINT64_MAX;
    return Status::OK();
  }

  virtual uint64_t NowMicros() = 0;
  virtual void SleepForMicroseconds(uint64_t micros) = 0;

  // Background work. Deterministic envs (SimEnv) return true from
  // is_deterministic(); the DB then runs background jobs inline under the
  // virtual-time stall model instead of scheduling here.
  virtual void Schedule(std::function<void()> job, JobPriority pri) = 0;
  virtual void WaitForBackgroundWork() = 0;
  virtual void SetBackgroundThreads(int n, JobPriority pri) = 0;
  virtual bool is_deterministic() const { return false; }

  // Charge `micros` of CPU work to the calling context. Real envs ignore
  // this (real time passes); SimEnv advances the virtual clock or the
  // active job meter.
  virtual void ChargeCpu(uint64_t micros) { (void)micros; }

  // Singleton over the host OS.
  static Env* Posix();
};

}  // namespace elmo
