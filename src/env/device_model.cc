#include "env/device_model.h"

namespace elmo {

DeviceModel DeviceModel::NvmeSsd() {
  DeviceModel d;
  d.name = "NVMe SSD";
  d.seq_read_bps = 2500ull << 20;   // ~2.5 GiB/s
  d.seq_write_bps = 1800ull << 20;  // ~1.8 GiB/s
  d.rand_read_lat_us = 80;
  d.rand_write_lat_us = 25;
  d.sync_base_us = 30;
  d.sync_bps = 1500ull << 20;
  return d;
}

DeviceModel DeviceModel::SataHdd() {
  DeviceModel d;
  d.name = "SATA HDD";
  d.seq_read_bps = 160ull << 20;   // ~160 MiB/s
  d.seq_write_bps = 140ull << 20;
  d.rand_read_lat_us = 8000;       // seek + rotational latency
  d.rand_write_lat_us = 6000;
  d.sync_base_us = 4000;
  d.sync_bps = 120ull << 20;
  return d;
}

}  // namespace elmo
