#include "env/io_tracing_env.h"

#include <utility>

namespace elmo {

namespace {

class TracingSequentialFile : public SequentialFile {
 public:
  TracingSequentialFile(IOTracingEnv* env, std::string fname,
                        std::unique_ptr<SequentialFile> target)
      : env_(env), fname_(std::move(fname)), target_(std::move(target)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    if (!env_->tracing()) {
      Status s = target_->Read(n, result, scratch);
      offset_ += result->size();
      return s;
    }
    const uint64_t start = env_->base()->NowMicros();
    Status s = target_->Read(n, result, scratch);
    const uint64_t end = env_->base()->NowMicros();
    env_->Emit(IOOp::kRead, fname_, offset_, result->size(), start, end);
    offset_ += result->size();
    return s;
  }

  Status Skip(uint64_t n) override {
    Status s = target_->Skip(n);
    if (s.ok()) offset_ += n;
    return s;
  }

 private:
  IOTracingEnv* const env_;
  const std::string fname_;
  std::unique_ptr<SequentialFile> target_;
  uint64_t offset_ = 0;
};

class TracingRandomAccessFile : public RandomAccessFile {
 public:
  TracingRandomAccessFile(IOTracingEnv* env, std::string fname,
                          std::unique_ptr<RandomAccessFile> target)
      : env_(env), fname_(std::move(fname)), target_(std::move(target)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    if (!env_->tracing()) return target_->Read(offset, n, result, scratch);
    const uint64_t start = env_->base()->NowMicros();
    Status s = target_->Read(offset, n, result, scratch);
    const uint64_t end = env_->base()->NowMicros();
    env_->Emit(IOOp::kRead, fname_, offset, result->size(), start, end);
    return s;
  }

  void Readahead(uint64_t offset, uint64_t length) override {
    target_->Readahead(offset, length);
  }

 private:
  IOTracingEnv* const env_;
  const std::string fname_;
  std::unique_ptr<RandomAccessFile> target_;
};

class TracingWritableFile : public WritableFile {
 public:
  TracingWritableFile(IOTracingEnv* env, std::string fname,
                      std::unique_ptr<WritableFile> target)
      : env_(env), fname_(std::move(fname)), target_(std::move(target)) {}

  Status Append(const Slice& data) override {
    const uint64_t offset = target_->GetFileSize();
    if (!env_->tracing()) return target_->Append(data);
    const uint64_t start = env_->base()->NowMicros();
    Status s = target_->Append(data);
    const uint64_t end = env_->base()->NowMicros();
    env_->Emit(IOOp::kWrite, fname_, offset, data.size(), start, end);
    return s;
  }

  Status Close() override { return target_->Close(); }
  Status Flush() override { return target_->Flush(); }

  Status Sync() override {
    if (!env_->tracing()) return target_->Sync();
    const uint64_t start = env_->base()->NowMicros();
    Status s = target_->Sync();
    const uint64_t end = env_->base()->NowMicros();
    env_->Emit(IOOp::kSync, fname_, 0, 0, start, end);
    return s;
  }

  Status RangeSync(uint64_t offset) override {
    if (!env_->tracing()) return target_->RangeSync(offset);
    const uint64_t start = env_->base()->NowMicros();
    Status s = target_->RangeSync(offset);
    const uint64_t end = env_->base()->NowMicros();
    env_->Emit(IOOp::kRangeSync, fname_, offset, 0, start, end);
    return s;
  }

  uint64_t GetFileSize() const override { return target_->GetFileSize(); }

 private:
  IOTracingEnv* const env_;
  const std::string fname_;
  std::unique_ptr<WritableFile> target_;
};

}  // namespace

IOTracingEnv::IOTracingEnv(Env* base) : base_(base) {}

IOTracingEnv::~IOTracingEnv() {
  uint64_t records = 0;
  EndTrace(&records);  // best-effort close if a trace is still active
}

Status IOTracingEnv::StartTrace(const std::string& path) {
  std::lock_guard<std::mutex> l(trace_mu_);
  if (tracer_ != nullptr) return Status::Busy("io trace already active");
  auto tracer = std::make_shared<IOTracer>(base_);
  Status s = tracer->Open(path, base_->NowMicros());
  if (!s.ok()) return s;
  tracer_ = std::move(tracer);
  enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

Status IOTracingEnv::EndTrace(uint64_t* records) {
  std::shared_ptr<IOTracer> tracer;
  {
    std::lock_guard<std::mutex> l(trace_mu_);
    if (tracer_ == nullptr) return Status::InvalidArgument("no io trace");
    enabled_.store(false, std::memory_order_release);
    tracer = std::move(tracer_);
    tracer_.reset();
  }
  if (records != nullptr) *records = tracer->records();
  return tracer->Close();
}

void IOTracingEnv::Emit(IOOp op, const std::string& fname, uint64_t offset,
                        uint64_t len, uint64_t start_us, uint64_t end_us) {
  std::shared_ptr<IOTracer> tracer;
  {
    std::lock_guard<std::mutex> l(trace_mu_);
    tracer = tracer_;
  }
  if (tracer == nullptr) return;
  IOTraceRecord rec;
  rec.op = op;
  rec.kind = ClassifyIOFileKind(fname, CurrentIOMetadataHint());
  rec.context = CurrentIOContext();
  rec.ts_us = start_us;
  rec.offset = offset;
  rec.len = len;
  rec.latency_us = end_us >= start_us ? end_us - start_us : 0;
  rec.fname = fname;
  tracer->AddRecord(rec);  // a failed append drops the record, not the op
}

Status IOTracingEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> inner;
  Status s = base_->NewSequentialFile(fname, &inner);
  if (!s.ok()) return s;
  result->reset(new TracingSequentialFile(this, fname, std::move(inner)));
  return s;
}

Status IOTracingEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> inner;
  Status s = base_->NewRandomAccessFile(fname, &inner);
  if (!s.ok()) return s;
  result->reset(new TracingRandomAccessFile(this, fname, std::move(inner)));
  return s;
}

Status IOTracingEnv::NewWritableFile(const std::string& fname,
                                     std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> inner;
  Status s = base_->NewWritableFile(fname, &inner);
  if (!s.ok()) return s;
  result->reset(new TracingWritableFile(this, fname, std::move(inner)));
  return s;
}

bool IOTracingEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status IOTracingEnv::GetChildren(const std::string& dir,
                                 std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}

Status IOTracingEnv::RemoveFile(const std::string& fname) {
  return base_->RemoveFile(fname);
}

Status IOTracingEnv::CreateDirIfMissing(const std::string& dirname) {
  return base_->CreateDirIfMissing(dirname);
}

Status IOTracingEnv::RemoveDir(const std::string& dirname) {
  return base_->RemoveDir(dirname);
}

Status IOTracingEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status IOTracingEnv::RenameFile(const std::string& src,
                                const std::string& target) {
  return base_->RenameFile(src, target);
}

uint64_t IOTracingEnv::NowMicros() { return base_->NowMicros(); }

void IOTracingEnv::SleepForMicroseconds(uint64_t micros) {
  base_->SleepForMicroseconds(micros);
}

void IOTracingEnv::Schedule(std::function<void()> job, JobPriority pri) {
  base_->Schedule(std::move(job), pri);
}

void IOTracingEnv::WaitForBackgroundWork() { base_->WaitForBackgroundWork(); }

void IOTracingEnv::SetBackgroundThreads(int n, JobPriority pri) {
  base_->SetBackgroundThreads(n, pri);
}

bool IOTracingEnv::is_deterministic() const {
  return base_->is_deterministic();
}

void IOTracingEnv::ChargeCpu(uint64_t micros) { base_->ChargeCpu(micros); }

}  // namespace elmo
