// EventListener: callback interface for observing engine lifecycle
// events (flushes, compactions, write-stall transitions). Listeners are
// registered via Options::listeners and fired synchronously from the
// flush/compaction/stall paths of DBImpl.
//
// Callbacks run with the DB mutex held: they must be cheap and must not
// call back into the DB. Durations are measured on the engine's clock —
// virtual time under SimEnv, wall time otherwise.
#pragma once

#include <cstdint>
#include <string>

#include "lsm/error_handler.h"
#include "util/status.h"

namespace elmo::lsm {

// Write-path throttle state, mirroring RocksDB's WriteStallCondition.
enum class StallCondition {
  kNormal = 0,   // writes proceed at full speed
  kDelayed = 1,  // slowdown regime: writers rate-limited
  kStopped = 2,  // writers blocked until background work catches up
};

enum class StallReason {
  kNone = 0,
  kL0FileCount = 1,       // L0 file count hit slowdown/stop trigger
  kMemtableLimit = 2,     // all memtable slots full, waiting on flush
  kBackgroundError = 3,   // soft background error: paused for auto-resume
};

enum class CompactionReason {
  kLevelScore = 0,   // picked because a level's score reached 1.0
  kUniversal = 1,    // universal (size-tiered) merge of L0 runs
  kManual = 2,       // CompactRange
};

const char* StallConditionName(StallCondition c);
const char* StallReasonName(StallReason r);
const char* CompactionReasonName(CompactionReason r);

struct FlushJobInfo {
  // Number of immutable memtables merged into the output table.
  int imms_merged = 0;
  // Output L0 file (0 when the flush produced an empty table).
  uint64_t file_number = 0;
  uint64_t output_bytes = 0;
  // Always 0 today; present so listeners need not hard-code it.
  int output_level = 0;
  // Job duration on the engine clock (virtual under SimEnv). Zero in
  // OnFlushBegin.
  uint64_t duration_micros = 0;
};

struct CompactionJobInfo {
  int level = 0;         // input level
  int output_level = 0;
  CompactionReason reason = CompactionReason::kLevelScore;
  int num_input_files = 0;
  uint64_t input_bytes = 0;
  // Filled for OnCompactionCompleted only.
  int num_output_files = 0;
  uint64_t output_bytes = 0;
  uint64_t duration_micros = 0;
  // True when the job retargeted a file without rewriting it.
  bool trivial_move = false;
};

struct StallInfo {
  StallCondition previous = StallCondition::kNormal;
  StallCondition current = StallCondition::kNormal;
  StallReason reason = StallReason::kNone;
  // For kStopped/kDelayed transitions: how long this writer waited (or
  // expects to wait) before re-checking, in engine-clock microseconds.
  uint64_t wait_micros = 0;
};

// Fired through OnBackgroundError and the error-recovery callbacks;
// mirrors the ErrorHandler state at the transition.
struct BackgroundErrorInfo {
  BackgroundErrorSource source = BackgroundErrorSource::kFlush;
  BackgroundErrorKind kind = BackgroundErrorKind::kHardFailure;
  ErrorSeverity severity = ErrorSeverity::kNone;
  Status status;        // the triggering failure (or the attempt result)
  int retry_count = 0;  // auto-resume attempts so far this episode
};

class EventListener {
 public:
  virtual ~EventListener() = default;

  virtual void OnFlushBegin(const FlushJobInfo& /*info*/) {}
  virtual void OnFlushCompleted(const FlushJobInfo& /*info*/) {}
  virtual void OnCompactionBegin(const CompactionJobInfo& /*info*/) {}
  virtual void OnCompactionCompleted(const CompactionJobInfo& /*info*/) {}
  // Fired on every transition of the write-stall condition (normal ->
  // delayed -> stopped and back).
  virtual void OnStallConditionChanged(const StallInfo& /*info*/) {}
  // Fired each time a writer blocks completely (condition kStopped).
  virtual void OnWriteStop(const StallInfo& /*info*/) {}

  // Fired when a background failure enters (or escalates) an error
  // state — the DB is now stalling or failing writes per `severity`.
  virtual void OnBackgroundError(const BackgroundErrorInfo& /*info*/) {}
  // Fired when the first resume attempt of an episode starts (auto or
  // manual DB::Resume()).
  virtual void OnErrorRecoveryBegin(const BackgroundErrorInfo& /*info*/) {}
  // Fired when a recovery episode ends: info.status is OK on success,
  // or the terminal failure when the retry budget was exhausted.
  virtual void OnErrorRecoveryCompleted(const BackgroundErrorInfo& /*info*/) {
  }
};

inline const char* StallConditionName(StallCondition c) {
  switch (c) {
    case StallCondition::kNormal: return "normal";
    case StallCondition::kDelayed: return "delayed";
    case StallCondition::kStopped: return "stopped";
  }
  return "unknown";
}

inline const char* StallReasonName(StallReason r) {
  switch (r) {
    case StallReason::kNone: return "none";
    case StallReason::kL0FileCount: return "l0-file-count";
    case StallReason::kMemtableLimit: return "memtable-limit";
    case StallReason::kBackgroundError: return "background-error";
  }
  return "unknown";
}

inline const char* CompactionReasonName(CompactionReason r) {
  switch (r) {
    case CompactionReason::kLevelScore: return "level-score";
    case CompactionReason::kUniversal: return "universal";
    case CompactionReason::kManual: return "manual";
  }
  return "unknown";
}

}  // namespace elmo::lsm
