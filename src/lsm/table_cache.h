// TableCache: file number -> open Table reader, LRU-bounded by
// max_open_files. All SST reads in the DB funnel through here.
#pragma once

#include <memory>
#include <mutex>

#include "env/env.h"
#include "lsm/dbformat.h"
#include "lsm/options.h"
#include "table/cache.h"
#include "table/table.h"

namespace elmo::lsm {

class TableCache {
 public:
  // `cache_tracer` (may be null) is handed to every Table so block-cache
  // lookups can be traced.
  TableCache(const std::string& dbname, const Options& options,
             const InternalKeyComparator* icmp,
             std::shared_ptr<Cache> block_cache,
             std::shared_ptr<BlockCacheTracer> cache_tracer, int entries);

  // Iterator over the named file. If tableptr is non-null it is set to
  // the underlying Table (owned by the cache entry, valid while the
  // iterator lives).
  std::unique_ptr<Iterator> NewIterator(uint64_t file_number,
                                        uint64_t file_size,
                                        const TableIterOptions& iter_opts = {});

  // Point lookup into the named file. `level` labels block-cache trace
  // records (-1 = unknown).
  Status Get(uint64_t file_number, uint64_t file_size, const Slice& ikey,
             const std::function<void(const Slice&, const Slice&)>& handler,
             int level = -1);

  void Evict(uint64_t file_number);

 private:
  std::shared_ptr<Table> FindTable(uint64_t file_number, uint64_t file_size,
                                   Status* s);

  const std::string dbname_;
  const Options& options_;
  const InternalKeyComparator* icmp_;
  std::shared_ptr<Cache> block_cache_;
  std::shared_ptr<BlockCacheTracer> cache_tracer_;
  std::shared_ptr<Cache> cache_;  // file_number -> shared_ptr<Table>
  std::unique_ptr<BloomFilterPolicy> filter_policy_;
};

}  // namespace elmo::lsm
