// PerfContext: thread-local per-operation breakdown of where a Get or
// Write spent its effort, in the spirit of RocksDB's perf_context. The
// engine updates the calling thread's context on every user operation;
// callers reset it around the operation(s) they want to attribute.
//
//   GetPerfContext()->Reset();
//   db->Get(...);
//   ELMO_LOG(..., "%s", GetPerfContext()->ToString().c_str());
#pragma once

#include <cstdint>
#include <string>

namespace elmo::lsm {

struct PerfContext {
  // --- read breakdown ---
  uint64_t get_count = 0;
  uint64_t get_memtable_hit = 0;   // served from the active memtable
  uint64_t get_imm_hit = 0;        // served from an immutable memtable
  uint64_t get_sst_hit = 0;        // served from an SST file
  uint64_t get_miss = 0;
  uint64_t get_files_probed = 0;   // SST files consulted across gets
  uint64_t get_read_bytes = 0;     // value bytes returned
  uint64_t get_micros = 0;         // engine-clock time inside Get

  // --- write breakdown ---
  uint64_t write_count = 0;        // batched entries written
  uint64_t write_batches = 0;      // Write() calls
  uint64_t write_wal_bytes = 0;
  uint64_t write_wal_syncs = 0;
  uint64_t write_stall_micros = 0; // time this thread spent stalled
  uint64_t write_micros = 0;       // engine-clock time inside Write

  // --- iterator breakdown ---
  uint64_t iter_seek_count = 0;    // Seek/SeekToFirst/SeekToLast calls
  uint64_t iter_next_count = 0;    // Next/Prev steps
  uint64_t iter_keys_skipped = 0;  // tombstones + shadowed versions
  uint64_t iter_read_bytes = 0;    // key+value bytes surfaced to the user
  uint64_t iter_micros = 0;        // engine-clock time inside seek/step

  void Reset() { *this = PerfContext{}; }

  // Single-line "name=value name=value ..." rendering of the non-zero
  // fields (empty string when nothing was recorded).
  std::string ToString() const;
};

// The calling thread's context. Never null.
PerfContext* GetPerfContext();

}  // namespace elmo::lsm
