#include "lsm/merger.h"

#include <cassert>

namespace elmo::lsm {

namespace {

// Linear-scan merge (leveldb's approach): child counts are small — a
// handful of memtables plus one iterator per sorted run.
class MergingIterator : public Iterator {
 public:
  MergingIterator(const Comparator* comparator,
                  std::vector<std::unique_ptr<Iterator>> children)
      : comparator_(comparator),
        children_(std::move(children)),
        current_(nullptr),
        direction_(kForward) {}

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    FindSmallest();
    direction_ = kForward;
  }

  void SeekToLast() override {
    for (auto& child : children_) child->SeekToLast();
    FindLargest();
    direction_ = kReverse;
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) child->Seek(target);
    FindSmallest();
    direction_ = kForward;
  }

  void Next() override {
    assert(Valid());
    // Ensure all children are positioned after key() when switching from
    // reverse iteration.
    if (direction_ != kForward) {
      for (auto& child : children_) {
        if (child.get() != current_) {
          child->Seek(key());
          if (child->Valid() &&
              comparator_->Compare(key(), child->key()) == 0) {
            child->Next();
          }
        }
      }
      direction_ = kForward;
    }
    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    assert(Valid());
    if (direction_ != kReverse) {
      for (auto& child : children_) {
        if (child.get() != current_) {
          child->Seek(key());
          if (child->Valid()) {
            // Child is at first entry >= key(); step back one.
            child->Prev();
          } else {
            // Child has nothing >= key(); position at its last entry.
            child->SeekToLast();
          }
        }
      }
      direction_ = kReverse;
    }
    current_->Prev();
    FindLargest();
  }

  Slice key() const override {
    assert(Valid());
    return current_->key();
  }

  Slice value() const override {
    assert(Valid());
    return current_->value();
  }

  Status status() const override {
    for (const auto& child : children_) {
      if (!child->status().ok()) return child->status();
    }
    return Status::OK();
  }

 private:
  enum Direction { kForward, kReverse };

  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& child : children_) {
      if (child->Valid()) {
        if (smallest == nullptr ||
            comparator_->Compare(child->key(), smallest->key()) < 0) {
          smallest = child.get();
        }
      }
    }
    current_ = smallest;
  }

  void FindLargest() {
    Iterator* largest = nullptr;
    // Scan backwards so that ties pick the earliest child (newest data),
    // mirroring forward-direction tie behavior.
    for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
      if ((*it)->Valid()) {
        if (largest == nullptr ||
            comparator_->Compare((*it)->key(), largest->key()) > 0) {
          largest = it->get();
        }
      }
    }
    current_ = largest;
  }

  const Comparator* comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_;
  Direction direction_;
};

}  // namespace

std::unique_ptr<Iterator> NewMergingIterator(
    const Comparator* comparator,
    std::vector<std::unique_ptr<Iterator>> children) {
  if (children.empty()) return NewEmptyIterator();
  if (children.size() == 1) return std::move(children[0]);
  return std::make_unique<MergingIterator>(comparator, std::move(children));
}

}  // namespace elmo::lsm
