// VersionEdit: a delta to the LSM file topology, logged to the MANIFEST.
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lsm/dbformat.h"
#include "util/status.h"

namespace elmo::lsm {

struct FileMetaData {
  uint64_t number = 0;
  uint64_t file_size = 0;
  InternalKey smallest;
  InternalKey largest;
  // Compaction heuristics (not persisted).
  mutable int allowed_seeks = 1 << 30;
};

class VersionEdit {
 public:
  VersionEdit() = default;

  void Clear();

  void SetComparatorName(const Slice& name) {
    has_comparator_ = true;
    comparator_ = name.ToString();
  }
  void SetLogNumber(uint64_t num) {
    has_log_number_ = true;
    log_number_ = num;
  }
  void SetNextFile(uint64_t num) {
    has_next_file_number_ = true;
    next_file_number_ = num;
  }
  void SetLastSequence(SequenceNumber seq) {
    has_last_sequence_ = true;
    last_sequence_ = seq;
  }

  void AddFile(int level, uint64_t file, uint64_t file_size,
               const InternalKey& smallest, const InternalKey& largest) {
    FileMetaData f;
    f.number = file;
    f.file_size = file_size;
    f.smallest = smallest;
    f.largest = largest;
    new_files_.emplace_back(level, f);
  }

  void RemoveFile(int level, uint64_t file) {
    deleted_files_.insert(std::make_pair(level, file));
  }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);

  std::string DebugString() const;

  // Accessors used by VersionSet when applying edits.
  bool has_comparator_ = false;
  bool has_log_number_ = false;
  bool has_next_file_number_ = false;
  bool has_last_sequence_ = false;
  std::string comparator_;
  uint64_t log_number_ = 0;
  uint64_t next_file_number_ = 0;
  SequenceNumber last_sequence_ = 0;
  std::set<std::pair<int, uint64_t>> deleted_files_;
  std::vector<std::pair<int, FileMetaData>> new_files_;
};

}  // namespace elmo::lsm
