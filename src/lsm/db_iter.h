// DBIter: wraps the merged internal-key iterator into the user-facing
// view — hides sequence numbers, collapses multiple versions of a key,
// and skips deletion markers.
#pragma once

#include <memory>

#include "env/env.h"
#include "lsm/dbformat.h"
#include "lsm/span.h"
#include "table/iterator.h"

namespace elmo::lsm {

// `env` (engine clock) and `span_sink` are optional: when `env` is
// non-null every Seek*/Next/Prev opens a kIterSeek/kIterNext root span
// and feeds PerfContext iterator micros; `span_sink` (the DB's slow-op
// tracer) receives the completed trees.
std::unique_ptr<Iterator> NewDBIterator(
    const Comparator* user_comparator,
    std::unique_ptr<Iterator> internal_iter, SequenceNumber sequence,
    Env* env = nullptr, SpanSink* span_sink = nullptr);

}  // namespace elmo::lsm
