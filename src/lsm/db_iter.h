// DBIter: wraps the merged internal-key iterator into the user-facing
// view — hides sequence numbers, collapses multiple versions of a key,
// and skips deletion markers.
#pragma once

#include <memory>

#include "lsm/dbformat.h"
#include "table/iterator.h"

namespace elmo::lsm {

std::unique_ptr<Iterator> NewDBIterator(
    const Comparator* user_comparator,
    std::unique_ptr<Iterator> internal_iter, SequenceNumber sequence);

}  // namespace elmo::lsm
