#include "lsm/span.h"

#include <algorithm>
#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"

namespace elmo::lsm {

namespace {

constexpr char kSpanMagic[8] = {'E', 'L', 'M', 'O', 'S', 'P', 'N', '1'};
constexpr uint32_t kSpanVersion = 1;
constexpr size_t kHeaderSize = sizeof(kSpanMagic) + 4 + 8;
// fixed64 root start + fixed32 thread + flags byte; spans are variable.
constexpr size_t kPayloadFixed = 8 + 4 + 1;

}  // namespace

bool IsSpanKind(uint8_t v) {
  return (v >= static_cast<uint8_t>(SpanKind::kWrite) &&
          v <= static_cast<uint8_t>(SpanKind::kCompaction)) ||
         (v >= static_cast<uint8_t>(SpanKind::kWalAppend) &&
          v < kMaxSpanKind);
}

const char* SpanKindName(SpanKind k) {
  switch (k) {
    case SpanKind::kWrite: return "write";
    case SpanKind::kGet: return "get";
    case SpanKind::kIterSeek: return "iter_seek";
    case SpanKind::kIterNext: return "iter_next";
    case SpanKind::kFlush: return "flush";
    case SpanKind::kCompaction: return "compaction";
    case SpanKind::kWalAppend: return "wal_append";
    case SpanKind::kWalSync: return "wal_sync";
    case SpanKind::kMemtableInsert: return "memtable_insert";
    case SpanKind::kMemtableProbe: return "memtable_probe";
    case SpanKind::kSstProbe: return "sst_probe";
    case SpanKind::kStallWait: return "stall_wait";
    case SpanKind::kTableBuild: return "table_build";
    case SpanKind::kManifestApply: return "manifest_apply";
  }
  return "unknown";
}

bool IsSpanTag(uint8_t v) {
  return v >= static_cast<uint8_t>(SpanTag::kBytes) && v < kMaxSpanTag;
}

const char* SpanTagName(SpanTag t) {
  switch (t) {
    case SpanTag::kBytes: return "bytes";
    case SpanTag::kEntries: return "entries";
    case SpanTag::kFilesProbed: return "files_probed";
    case SpanTag::kLevel: return "level";
    case SpanTag::kStallReason: return "stall_reason";
    case SpanTag::kKeysSkipped: return "keys_skipped";
    case SpanTag::kCacheHit: return "cache_hit";
    case SpanTag::kCacheMiss: return "cache_miss";
    case SpanTag::kHit: return "hit";
    case SpanTag::kInputBytes: return "input_bytes";
  }
  return "unknown";
}

uint64_t SpanTree::ChildrenDuration(size_t i) const {
  uint64_t total = 0;
  for (const SpanNode& n : spans) {
    if (n.parent == static_cast<int32_t>(i)) total += n.duration_us;
  }
  return total;
}

uint64_t SpanTree::SelfDuration(size_t i) const {
  const uint64_t children = ChildrenDuration(i);
  const uint64_t dur = spans[i].duration_us;
  return dur > children ? dur - children : 0;
}

// ---------------------------------------------------------------------
// Aggregate

void SpanAggregate::Fold(const SpanTree& tree) {
  for (const SpanNode& n : tree.spans) {
    Cell& c = cells_[static_cast<uint8_t>(n.kind)];
    c.count.fetch_add(1, std::memory_order_relaxed);
    c.total_us.fetch_add(n.duration_us, std::memory_order_relaxed);
    uint64_t prev = c.max_us.load(std::memory_order_relaxed);
    while (prev < n.duration_us &&
           !c.max_us.compare_exchange_weak(prev, n.duration_us,
                                           std::memory_order_relaxed)) {
    }
    for (const auto& [tag, value] : n.annotations) {
      if (tag == SpanTag::kBytes) {
        c.bytes.fetch_add(value, std::memory_order_relaxed);
      }
    }
  }
}

SpanAggregate::Snapshot SpanAggregate::GetSnapshot() const {
  Snapshot snap;
  for (uint8_t k = 0; k < kMaxSpanKind; k++) {
    snap.kinds[k].count = cells_[k].count.load(std::memory_order_relaxed);
    snap.kinds[k].total_us =
        cells_[k].total_us.load(std::memory_order_relaxed);
    snap.kinds[k].max_us = cells_[k].max_us.load(std::memory_order_relaxed);
    snap.kinds[k].bytes = cells_[k].bytes.load(std::memory_order_relaxed);
  }
  return snap;
}

void SpanAggregate::Reset() {
  for (uint8_t k = 0; k < kMaxSpanKind; k++) {
    cells_[k].count.store(0, std::memory_order_relaxed);
    cells_[k].total_us.store(0, std::memory_order_relaxed);
    cells_[k].max_us.store(0, std::memory_order_relaxed);
    cells_[k].bytes.store(0, std::memory_order_relaxed);
  }
}

std::string SpanAggregate::ToString() const {
  const Snapshot snap = GetSnapshot();
  std::string out;
  auto emit = [&out, &snap](uint8_t k, const char* prefix) {
    const KindTotals& t = snap.kinds[k];
    if (t.count == 0) return;
    char buf[192];
    snprintf(buf, sizeof(buf),
             "%s%s: count=%llu total_us=%llu avg_us=%llu max_us=%llu",
             prefix, SpanKindName(static_cast<SpanKind>(k)),
             (unsigned long long)t.count, (unsigned long long)t.total_us,
             (unsigned long long)(t.total_us / t.count),
             (unsigned long long)t.max_us);
    out += buf;
    if (t.bytes > 0) {
      snprintf(buf, sizeof(buf), " bytes=%llu", (unsigned long long)t.bytes);
      out += buf;
    }
    out += '\n';
  };
  for (uint8_t k = static_cast<uint8_t>(SpanKind::kWrite);
       k <= static_cast<uint8_t>(SpanKind::kCompaction); k++) {
    emit(k, "span op ");
  }
  for (uint8_t k = static_cast<uint8_t>(SpanKind::kWalAppend);
       k < kMaxSpanKind; k++) {
    emit(k, "span phase ");
  }
  return out;
}

SpanAggregate* GlobalSpanAggregate() {
  static SpanAggregate aggregate;
  return &aggregate;
}

uint32_t SpanThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ---------------------------------------------------------------------
// Collector

size_t SpanCollector::OpenRoot(SpanKind kind, uint64_t now_us,
                               SpanSink* sink) {
  const size_t idx = spans_.size();
  Rec rec;
  rec.kind = kind;
  rec.parent = -1;
  rec.sink = sink;
  rec.node.kind = kind;
  rec.node.parent = -1;
  rec.node.start_us = now_us;
  spans_.push_back(std::move(rec));
  stack_.push_back(idx);
  return idx;
}

size_t SpanCollector::OpenChild(SpanKind kind, uint64_t now_us) {
  if (stack_.empty()) return kNoSpan;  // orphan (recovery etc.): no-op
  const size_t idx = spans_.size();
  Rec rec;
  rec.kind = kind;
  rec.parent = static_cast<int32_t>(stack_.back());
  rec.sink = nullptr;
  rec.node.kind = kind;
  rec.node.start_us = now_us;
  spans_.push_back(std::move(rec));
  stack_.push_back(idx);
  return idx;
}

void SpanCollector::Annotate(size_t handle, SpanTag tag, uint64_t value) {
  if (handle == kNoSpan || handle >= spans_.size()) return;
  spans_[handle].node.annotations.emplace_back(tag, value);
}

void SpanCollector::Close(size_t handle, uint64_t now_us) {
  if (handle == kNoSpan || handle >= spans_.size()) return;
  // Unwind to the handle: anything still open above it (a child whose
  // scope was escaped by an early return) closes at the same instant.
  while (!stack_.empty() && stack_.back() != handle) {
    Rec& r = spans_[stack_.back()];
    r.node.duration_us = now_us >= r.node.start_us
                             ? now_us - r.node.start_us
                             : 0;
    stack_.pop_back();
  }
  if (stack_.empty()) return;  // handle was not open; drop silently
  stack_.pop_back();

  Rec& rec = spans_[handle];
  rec.node.duration_us =
      now_us >= rec.node.start_us ? now_us - rec.node.start_us : 0;
  if (rec.parent != -1) return;  // child: stays buffered until root close

  // Root close. Every span at index >= handle belongs to this tree: the
  // thread is single-streamed, so a suspended outer tree cannot have
  // interleaved spans after this root opened.
  SpanTree tree;
  tree.thread_id = SpanThreadId();
  tree.spans.reserve(spans_.size() - handle);
  for (size_t i = handle; i < spans_.size(); i++) {
    SpanNode node = std::move(spans_[i].node);
    node.parent = spans_[i].parent == -1
                      ? -1
                      : static_cast<int32_t>(spans_[i].parent - handle);
    tree.spans.push_back(std::move(node));
  }
  SpanSink* sink = rec.sink;
  spans_.resize(handle);

  GlobalSpanAggregate()->Fold(tree);
  if (sink != nullptr) sink->Consume(tree);
}

SpanCollector* GetSpanCollector() {
  thread_local SpanCollector collector;
  return &collector;
}

// ---------------------------------------------------------------------
// Tracer

SpanTracer::SpanTracer(Env* env) : env_(env) {}

SpanTracer::~SpanTracer() { Stop(nullptr); }

Status SpanTracer::Start(const std::string& path,
                         const SpanTraceOptions& options,
                         uint64_t base_ts_us) {
  std::lock_guard<std::mutex> l(mu_);
  if (file_ != nullptr) return Status::Busy("a span trace is already active");
  Status s = env_->NewWritableFile(path, &file_);
  if (!s.ok()) return s;
  std::string header(kSpanMagic, sizeof(kSpanMagic));
  PutFixed32(&header, kSpanVersion);
  PutFixed64(&header, base_ts_us);
  s = file_->Append(Slice(header));
  if (!s.ok()) {
    file_.reset();
    return s;
  }
  options_ = options;
  std::memset(seen_, 0, sizeof(seen_));
  trees_written_ = 0;
  slow_trees_ = 0;
  sampled_trees_ = 0;
  active_.store(true, std::memory_order_release);
  return Status::OK();
}

Status SpanTracer::Stop(uint64_t* trees_written) {
  std::lock_guard<std::mutex> l(mu_);
  if (file_ == nullptr) {
    return Status::InvalidArgument("no span trace active");
  }
  active_.store(false, std::memory_order_release);
  Status s = file_->Flush();
  if (s.ok()) s = file_->Sync();
  Status c = file_->Close();
  if (s.ok()) s = c;
  file_.reset();
  if (trees_written != nullptr) *trees_written = trees_written_;
  return s;
}

void SpanTracer::Consume(const SpanTree& tree) {
  if (!active_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> l(mu_);
  if (file_ == nullptr) return;

  const uint8_t kind = static_cast<uint8_t>(tree.root().kind);
  seen_[kind]++;
  uint8_t flags = 0;
  if (tree.root().duration_us >= options_.slow_op_threshold_us) {
    flags |= kSpanTreeSlow;
  }
  if (options_.sample_every > 0 &&
      (seen_[kind] % options_.sample_every) == 1 % options_.sample_every) {
    flags |= kSpanTreeSampled;
  }
  if (flags == 0) return;

  std::string payload;
  payload.reserve(kPayloadFixed + tree.spans.size() * 16);
  PutFixed64(&payload, tree.root().start_us);
  PutFixed32(&payload, tree.thread_id);
  payload.push_back(static_cast<char>(flags));
  PutVarint32(&payload, static_cast<uint32_t>(tree.spans.size()));
  const uint64_t root_start = tree.root().start_us;
  for (const SpanNode& n : tree.spans) {
    payload.push_back(static_cast<char>(n.kind));
    PutVarint32(&payload, static_cast<uint32_t>(n.parent + 1));
    PutVarint64(&payload, n.start_us - root_start);
    PutVarint64(&payload, n.duration_us);
    PutVarint32(&payload, static_cast<uint32_t>(n.annotations.size()));
    for (const auto& [tag, value] : n.annotations) {
      payload.push_back(static_cast<char>(tag));
      PutVarint64(&payload, value);
    }
  }

  std::string frame;
  frame.reserve(8 + payload.size());
  PutFixed32(&frame,
             crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame += payload;
  if (file_->Append(Slice(frame)).ok()) {
    trees_written_++;
    if (flags & kSpanTreeSlow) slow_trees_++;
    if (flags & kSpanTreeSampled) sampled_trees_++;
  }
}

uint64_t SpanTracer::trees_written() const {
  std::lock_guard<std::mutex> l(mu_);
  return trees_written_;
}

uint64_t SpanTracer::slow_trees() const {
  std::lock_guard<std::mutex> l(mu_);
  return slow_trees_;
}

uint64_t SpanTracer::sampled_trees() const {
  std::lock_guard<std::mutex> l(mu_);
  return sampled_trees_;
}

// ---------------------------------------------------------------------
// Reader

SpanTraceReader::SpanTraceReader(Env* env) : env_(env) {}

Status SpanTraceReader::Open(const std::string& path) {
  Status s = env_->NewSequentialFile(path, &file_);
  if (!s.ok()) return s;
  std::string header;
  bool eof = false;
  s = ReadFully(kHeaderSize, &header, &eof);
  if (!s.ok()) return s;
  if (eof || memcmp(header.data(), kSpanMagic, sizeof(kSpanMagic)) != 0) {
    return Status::Corruption("not an elmo span trace file");
  }
  const uint32_t version =
      DecodeFixed32(header.data() + sizeof(kSpanMagic));
  if (version != kSpanVersion) {
    return Status::Corruption("unsupported span trace version");
  }
  base_ts_us_ = DecodeFixed64(header.data() + sizeof(kSpanMagic) + 4);
  return Status::OK();
}

Status SpanTraceReader::ReadFully(size_t n, std::string* out,
                                  bool* clean_eof) {
  out->clear();
  *clean_eof = false;
  std::string scratch(n, '\0');
  size_t got = 0;
  while (got < n) {
    Slice chunk;
    Status s = file_->Read(n - got, &chunk, &scratch[0] + got);
    if (!s.ok()) return s;
    if (chunk.empty()) {
      if (got == 0) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::Corruption("truncated span trace record");
    }
    if (chunk.data() != scratch.data() + got) {
      memcpy(&scratch[0] + got, chunk.data(), chunk.size());
    }
    got += chunk.size();
  }
  *out = std::move(scratch);
  return Status::OK();
}

Status SpanTraceReader::Next(SpanTree* tree, bool* eof) {
  *eof = false;
  if (file_ == nullptr) {
    return Status::IOError("span trace reader not open");
  }

  std::string frame_header;
  Status s = ReadFully(8, &frame_header, eof);
  if (!s.ok() || *eof) return s;
  const uint32_t expected_crc =
      crc32c::Unmask(DecodeFixed32(frame_header.data()));
  const uint32_t len = DecodeFixed32(frame_header.data() + 4);
  if (len < kPayloadFixed + 2 || len > (1u << 26)) {
    return Status::Corruption("bad span trace record length");
  }

  std::string payload;
  bool payload_eof = false;
  s = ReadFully(len, &payload, &payload_eof);
  if (!s.ok()) return s;
  if (payload_eof) return Status::Corruption("truncated span trace record");
  if (crc32c::Value(payload.data(), payload.size()) != expected_crc) {
    return Status::Corruption("span trace record checksum mismatch");
  }

  tree->spans.clear();
  const uint64_t root_start = DecodeFixed64(payload.data());
  tree->thread_id = DecodeFixed32(payload.data() + 8);
  tree->flags = static_cast<uint8_t>(payload[12]);
  Slice rest(payload.data() + kPayloadFixed,
             payload.size() - kPayloadFixed);
  uint32_t count = 0;
  if (!GetVarint32(&rest, &count) || count == 0 || count > (1u << 22)) {
    return Status::Corruption("bad span count");
  }
  tree->spans.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    if (rest.empty()) return Status::Corruption("truncated span");
    const uint8_t kind = static_cast<uint8_t>(rest[0]);
    rest.remove_prefix(1);
    if (!IsSpanKind(kind)) return Status::Corruption("bad span kind");
    SpanNode node;
    node.kind = static_cast<SpanKind>(kind);
    uint32_t parent_plus_1 = 0;
    uint64_t start_delta = 0;
    uint32_t nannot = 0;
    if (!GetVarint32(&rest, &parent_plus_1) ||
        !GetVarint64(&rest, &start_delta) ||
        !GetVarint64(&rest, &node.duration_us) ||
        !GetVarint32(&rest, &nannot) || nannot > 256) {
      return Status::Corruption("bad span fields");
    }
    if (parent_plus_1 > i) {
      // Parents always precede children; 0 (the root) only at index 0.
      return Status::Corruption("bad span parent");
    }
    node.parent = static_cast<int32_t>(parent_plus_1) - 1;
    node.start_us = root_start + start_delta;
    node.annotations.reserve(nannot);
    for (uint32_t a = 0; a < nannot; a++) {
      if (rest.empty()) return Status::Corruption("truncated annotation");
      const uint8_t tag = static_cast<uint8_t>(rest[0]);
      rest.remove_prefix(1);
      uint64_t value = 0;
      if (!IsSpanTag(tag) || !GetVarint64(&rest, &value)) {
        return Status::Corruption("bad span annotation");
      }
      node.annotations.emplace_back(static_cast<SpanTag>(tag), value);
    }
    tree->spans.push_back(std::move(node));
  }
  if (!rest.empty()) return Status::Corruption("trailing span bytes");
  if (tree->spans[0].parent != -1) {
    return Status::Corruption("first span is not a root");
  }
  return Status::OK();
}

}  // namespace elmo::lsm
