#include "lsm/db_iter.h"

#include <cassert>
#include <string>

#include "lsm/perf_context.h"

namespace elmo::lsm {

namespace {

class DBIter : public Iterator {
 public:
  DBIter(const Comparator* user_comparator,
         std::unique_ptr<Iterator> internal_iter, SequenceNumber sequence,
         Env* env, SpanSink* span_sink)
      : user_comparator_(user_comparator),
        iter_(std::move(internal_iter)),
        sequence_(sequence),
        env_(env),
        span_sink_(span_sink),
        direction_(kForward),
        valid_(false) {}

  bool Valid() const override { return valid_; }

  Slice key() const override {
    assert(valid_);
    return (direction_ == kForward) ? ExtractUserKey(iter_->key())
                                    : Slice(saved_key_);
  }

  Slice value() const override {
    assert(valid_);
    return (direction_ == kForward) ? iter_->value() : Slice(saved_value_);
  }

  Status status() const override {
    if (status_.ok()) return iter_->status();
    return status_;
  }

  void Next() override;
  void Prev() override;
  void Seek(const Slice& target) override;
  void SeekToFirst() override;
  void SeekToLast() override;

 private:
  enum Direction { kForward, kReverse };

  // Per-call accounting around each public Seek/Next/Prev: opens a
  // kIterSeek/kIterNext root span when an Env was supplied and charges
  // the PerfContext iterator fields (counts always; micros only with a
  // clock) on the way out.
  class OpScope {
   public:
    OpScope(DBIter* it, SpanKind kind, uint64_t* count_field)
        : it_(it),
          start_us_(it->env_ != nullptr ? it->env_->NowMicros() : 0),
          skipped_before_(it->skipped_),
          handle_(it->env_ != nullptr
                      ? GetSpanCollector()->OpenRoot(kind, start_us_,
                                                     it->span_sink_)
                      : SpanCollector::kNoSpan) {
      (*count_field)++;
    }
    ~OpScope() {
      PerfContext* perf = GetPerfContext();
      const uint64_t skipped = it_->skipped_ - skipped_before_;
      perf->iter_keys_skipped += skipped;
      uint64_t bytes = 0;
      if (it_->valid_) {
        bytes = it_->key().size() + it_->value().size();
        perf->iter_read_bytes += bytes;
      }
      if (handle_ == SpanCollector::kNoSpan) return;
      SpanCollector* c = GetSpanCollector();
      if (skipped > 0) c->Annotate(handle_, SpanTag::kKeysSkipped, skipped);
      if (bytes > 0) c->Annotate(handle_, SpanTag::kBytes, bytes);
      c->Annotate(handle_, SpanTag::kHit, it_->valid_ ? 1 : 0);
      const uint64_t now = it_->env_->NowMicros();
      perf->iter_micros += now - start_us_;
      c->Close(handle_, now);
    }

   private:
    DBIter* const it_;
    const uint64_t start_us_;
    const uint64_t skipped_before_;
    const size_t handle_;
  };

  void FindNextUserEntry(bool skipping, std::string* skip);
  void FindPrevUserEntry();
  bool ParseKey(ParsedInternalKey* key);

  void SaveKey(const Slice& k, std::string* dst) {
    dst->assign(k.data(), k.size());
  }

  void ClearSavedValue() {
    saved_value_.clear();
    saved_value_.shrink_to_fit();
  }

  const Comparator* const user_comparator_;
  std::unique_ptr<Iterator> iter_;
  SequenceNumber const sequence_;
  Env* const env_;            // null: no spans, no micros
  SpanSink* const span_sink_;
  uint64_t skipped_ = 0;  // tombstones + shadowed versions stepped over

  Status status_;
  std::string saved_key_;    // current key when direction_ == kReverse
  std::string saved_value_;  // current value when direction_ == kReverse
  Direction direction_;
  bool valid_;
};

bool DBIter::ParseKey(ParsedInternalKey* ikey) {
  if (!ParseInternalKey(iter_->key(), ikey)) {
    status_ = Status::Corruption("corrupted internal key in DBIter");
    return false;
  }
  return true;
}

void DBIter::Next() {
  assert(valid_);
  OpScope op(this, SpanKind::kIterNext, &GetPerfContext()->iter_next_count);

  if (direction_ == kReverse) {
    direction_ = kForward;
    // iter_ is before the entries for key(): advance into them, then
    // past them.
    if (!iter_->Valid()) {
      iter_->SeekToFirst();
    } else {
      iter_->Next();
    }
    if (!iter_->Valid()) {
      valid_ = false;
      saved_key_.clear();
      return;
    }
  } else {
    // Remember the current key so we can skip its other versions.
    SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
    iter_->Next();
    if (!iter_->Valid()) {
      valid_ = false;
      saved_key_.clear();
      return;
    }
  }

  FindNextUserEntry(true, &saved_key_);
}

void DBIter::FindNextUserEntry(bool skipping, std::string* skip) {
  // Loop until a visible, non-deleted user entry.
  assert(iter_->Valid());
  assert(direction_ == kForward);
  do {
    ParsedInternalKey ikey;
    if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
      switch (ikey.type) {
        case kTypeDeletion:
          // Hide all later (older) versions of this key.
          SaveKey(ikey.user_key, skip);
          skipping = true;
          skipped_++;
          break;
        case kTypeValue:
          if (skipping &&
              user_comparator_->Compare(ikey.user_key, Slice(*skip)) <= 0) {
            // Shadowed by a newer version or a deletion.
            skipped_++;
          } else {
            valid_ = true;
            saved_key_.clear();
            return;
          }
          break;
      }
    }
    iter_->Next();
  } while (iter_->Valid());
  saved_key_.clear();
  valid_ = false;
}

void DBIter::Prev() {
  assert(valid_);
  OpScope op(this, SpanKind::kIterNext, &GetPerfContext()->iter_next_count);

  if (direction_ == kForward) {
    // iter_ points at the current entry. Back up until before all
    // entries for the current user key.
    assert(iter_->Valid());
    SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
    while (true) {
      iter_->Prev();
      if (!iter_->Valid()) {
        valid_ = false;
        saved_key_.clear();
        ClearSavedValue();
        return;
      }
      if (user_comparator_->Compare(ExtractUserKey(iter_->key()),
                                    Slice(saved_key_)) < 0) {
        break;
      }
    }
    direction_ = kReverse;
  }

  FindPrevUserEntry();
}

void DBIter::FindPrevUserEntry() {
  assert(direction_ == kReverse);

  ValueType value_type = kTypeDeletion;
  if (iter_->Valid()) {
    do {
      ParsedInternalKey ikey;
      if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
        if ((value_type != kTypeDeletion) &&
            user_comparator_->Compare(ikey.user_key, Slice(saved_key_)) < 0) {
          // We found a non-deleted value for the key we accumulated.
          break;
        }
        value_type = ikey.type;
        if (value_type == kTypeDeletion) {
          skipped_++;
          saved_key_.clear();
          ClearSavedValue();
        } else {
          Slice raw_value = iter_->value();
          SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
          saved_value_.assign(raw_value.data(), raw_value.size());
        }
      }
      iter_->Prev();
    } while (iter_->Valid());
  }

  if (value_type == kTypeDeletion) {
    // End of iteration.
    valid_ = false;
    saved_key_.clear();
    ClearSavedValue();
    direction_ = kForward;
  } else {
    valid_ = true;
  }
}

void DBIter::Seek(const Slice& target) {
  OpScope op(this, SpanKind::kIterSeek, &GetPerfContext()->iter_seek_count);
  direction_ = kForward;
  ClearSavedValue();
  saved_key_.clear();
  AppendInternalKey(&saved_key_,
                    ParsedInternalKey(target, sequence_, kValueTypeForSeek));
  iter_->Seek(Slice(saved_key_));
  if (iter_->Valid()) {
    FindNextUserEntry(false, &saved_key_);
  } else {
    valid_ = false;
  }
}

void DBIter::SeekToFirst() {
  OpScope op(this, SpanKind::kIterSeek, &GetPerfContext()->iter_seek_count);
  direction_ = kForward;
  ClearSavedValue();
  iter_->SeekToFirst();
  if (iter_->Valid()) {
    FindNextUserEntry(false, &saved_key_);
  } else {
    valid_ = false;
  }
}

void DBIter::SeekToLast() {
  OpScope op(this, SpanKind::kIterSeek, &GetPerfContext()->iter_seek_count);
  direction_ = kReverse;
  ClearSavedValue();
  iter_->SeekToLast();
  FindPrevUserEntry();
}

}  // namespace

std::unique_ptr<Iterator> NewDBIterator(
    const Comparator* user_comparator,
    std::unique_ptr<Iterator> internal_iter, SequenceNumber sequence,
    Env* env, SpanSink* span_sink) {
  return std::make_unique<DBIter>(user_comparator, std::move(internal_iter),
                                  sequence, env, span_sink);
}

}  // namespace elmo::lsm
