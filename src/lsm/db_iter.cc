#include "lsm/db_iter.h"

#include <cassert>
#include <string>

namespace elmo::lsm {

namespace {

class DBIter : public Iterator {
 public:
  DBIter(const Comparator* user_comparator,
         std::unique_ptr<Iterator> internal_iter, SequenceNumber sequence)
      : user_comparator_(user_comparator),
        iter_(std::move(internal_iter)),
        sequence_(sequence),
        direction_(kForward),
        valid_(false) {}

  bool Valid() const override { return valid_; }

  Slice key() const override {
    assert(valid_);
    return (direction_ == kForward) ? ExtractUserKey(iter_->key())
                                    : Slice(saved_key_);
  }

  Slice value() const override {
    assert(valid_);
    return (direction_ == kForward) ? iter_->value() : Slice(saved_value_);
  }

  Status status() const override {
    if (status_.ok()) return iter_->status();
    return status_;
  }

  void Next() override;
  void Prev() override;
  void Seek(const Slice& target) override;
  void SeekToFirst() override;
  void SeekToLast() override;

 private:
  enum Direction { kForward, kReverse };

  void FindNextUserEntry(bool skipping, std::string* skip);
  void FindPrevUserEntry();
  bool ParseKey(ParsedInternalKey* key);

  void SaveKey(const Slice& k, std::string* dst) {
    dst->assign(k.data(), k.size());
  }

  void ClearSavedValue() {
    saved_value_.clear();
    saved_value_.shrink_to_fit();
  }

  const Comparator* const user_comparator_;
  std::unique_ptr<Iterator> iter_;
  SequenceNumber const sequence_;

  Status status_;
  std::string saved_key_;    // current key when direction_ == kReverse
  std::string saved_value_;  // current value when direction_ == kReverse
  Direction direction_;
  bool valid_;
};

bool DBIter::ParseKey(ParsedInternalKey* ikey) {
  if (!ParseInternalKey(iter_->key(), ikey)) {
    status_ = Status::Corruption("corrupted internal key in DBIter");
    return false;
  }
  return true;
}

void DBIter::Next() {
  assert(valid_);

  if (direction_ == kReverse) {
    direction_ = kForward;
    // iter_ is before the entries for key(): advance into them, then
    // past them.
    if (!iter_->Valid()) {
      iter_->SeekToFirst();
    } else {
      iter_->Next();
    }
    if (!iter_->Valid()) {
      valid_ = false;
      saved_key_.clear();
      return;
    }
  } else {
    // Remember the current key so we can skip its other versions.
    SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
    iter_->Next();
    if (!iter_->Valid()) {
      valid_ = false;
      saved_key_.clear();
      return;
    }
  }

  FindNextUserEntry(true, &saved_key_);
}

void DBIter::FindNextUserEntry(bool skipping, std::string* skip) {
  // Loop until a visible, non-deleted user entry.
  assert(iter_->Valid());
  assert(direction_ == kForward);
  do {
    ParsedInternalKey ikey;
    if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
      switch (ikey.type) {
        case kTypeDeletion:
          // Hide all later (older) versions of this key.
          SaveKey(ikey.user_key, skip);
          skipping = true;
          break;
        case kTypeValue:
          if (skipping &&
              user_comparator_->Compare(ikey.user_key, Slice(*skip)) <= 0) {
            // Shadowed by a newer version or a deletion.
          } else {
            valid_ = true;
            saved_key_.clear();
            return;
          }
          break;
      }
    }
    iter_->Next();
  } while (iter_->Valid());
  saved_key_.clear();
  valid_ = false;
}

void DBIter::Prev() {
  assert(valid_);

  if (direction_ == kForward) {
    // iter_ points at the current entry. Back up until before all
    // entries for the current user key.
    assert(iter_->Valid());
    SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
    while (true) {
      iter_->Prev();
      if (!iter_->Valid()) {
        valid_ = false;
        saved_key_.clear();
        ClearSavedValue();
        return;
      }
      if (user_comparator_->Compare(ExtractUserKey(iter_->key()),
                                    Slice(saved_key_)) < 0) {
        break;
      }
    }
    direction_ = kReverse;
  }

  FindPrevUserEntry();
}

void DBIter::FindPrevUserEntry() {
  assert(direction_ == kReverse);

  ValueType value_type = kTypeDeletion;
  if (iter_->Valid()) {
    do {
      ParsedInternalKey ikey;
      if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
        if ((value_type != kTypeDeletion) &&
            user_comparator_->Compare(ikey.user_key, Slice(saved_key_)) < 0) {
          // We found a non-deleted value for the key we accumulated.
          break;
        }
        value_type = ikey.type;
        if (value_type == kTypeDeletion) {
          saved_key_.clear();
          ClearSavedValue();
        } else {
          Slice raw_value = iter_->value();
          SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
          saved_value_.assign(raw_value.data(), raw_value.size());
        }
      }
      iter_->Prev();
    } while (iter_->Valid());
  }

  if (value_type == kTypeDeletion) {
    // End of iteration.
    valid_ = false;
    saved_key_.clear();
    ClearSavedValue();
    direction_ = kForward;
  } else {
    valid_ = true;
  }
}

void DBIter::Seek(const Slice& target) {
  direction_ = kForward;
  ClearSavedValue();
  saved_key_.clear();
  AppendInternalKey(&saved_key_,
                    ParsedInternalKey(target, sequence_, kValueTypeForSeek));
  iter_->Seek(Slice(saved_key_));
  if (iter_->Valid()) {
    FindNextUserEntry(false, &saved_key_);
  } else {
    valid_ = false;
  }
}

void DBIter::SeekToFirst() {
  direction_ = kForward;
  ClearSavedValue();
  iter_->SeekToFirst();
  if (iter_->Valid()) {
    FindNextUserEntry(false, &saved_key_);
  } else {
    valid_ = false;
  }
}

void DBIter::SeekToLast() {
  direction_ = kReverse;
  ClearSavedValue();
  iter_->SeekToLast();
  FindPrevUserEntry();
}

}  // namespace

std::unique_ptr<Iterator> NewDBIterator(
    const Comparator* user_comparator,
    std::unique_ptr<Iterator> internal_iter, SequenceNumber sequence) {
  return std::make_unique<DBIter>(user_comparator, std::move(internal_iter),
                                  sequence);
}

}  // namespace elmo::lsm
