// Merging iterator: the N-way merge over memtable + SST iterators that
// backs the DB-wide cursor and compactions.
#pragma once

#include <memory>
#include <vector>

#include "table/comparator.h"
#include "table/iterator.h"

namespace elmo::lsm {

// Takes ownership of the child iterators.
std::unique_ptr<Iterator> NewMergingIterator(
    const Comparator* comparator,
    std::vector<std::unique_ptr<Iterator>> children);

}  // namespace elmo::lsm
