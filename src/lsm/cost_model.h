// CPU cost constants charged to SimEnv's virtual clock. These are
// first-order per-operation costs of a well-optimized LSM engine on a
// ~3 GHz core; absolute values matter less than their ratios (see
// DESIGN.md — the reproduction targets shapes, not testbed numbers).
// The device-side costs live in env/device_model.h.
#pragma once

#include <cstdint>

namespace elmo::lsm::cost {

// Write path: WAL encode + append bookkeeping per entry...
inline constexpr uint64_t kWalAppendBaseUs = 1;
// ...plus memtable skip-list insert.
inline constexpr uint64_t kMemtableInsertUs = 2;
// Per-KiB overhead on the write path (checksums, memcpy beyond DRAM
// stream charge).
inline constexpr double kWritePerByteUs = 0.002;

// Point-read path: memtable + version lookup orchestration.
inline constexpr uint64_t kGetBaseUs = 2;
// Each SST probed (bloom check, index binary search).
inline constexpr uint64_t kGetPerFileProbeUs = 1;

// Background work, charged per entry moved.
inline constexpr uint64_t kFlushPerEntryUs = 1;
inline constexpr uint64_t kCompactionPerEntryUs = 1;
// RLE compression cost per 4 KiB block (cheap codec).
inline constexpr uint64_t kCompressPerBlockUs = 4;

// Pipelined writes overlap the WAL append and memtable insert stages;
// the combined cost approaches max() of the stages instead of the sum.
inline constexpr double kPipelinedWriteFactor = 0.70;

}  // namespace elmo::lsm::cost
