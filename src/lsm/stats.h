// DB runtime statistics: the numbers the benchmark report and the
// tuning prompt are built from. A full statistics registry: flat
// tickers, lock-free latency/size histograms, and per-level cumulative
// compaction counters. Everything is mutex-free atomics so the hot
// paths never serialize on telemetry.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/histogram.h"

namespace elmo::lsm {

enum class Ticker : int {
  kBytesWritten = 0,
  kBytesRead,
  kWalBytes,
  kFlushCount,
  kFlushBytes,
  kCompactionCount,
  kCompactionBytesRead,
  kCompactionBytesWritten,
  kTrivialMoveCount,
  kWriteStallMicros,
  kWriteSlowdownCount,
  kWriteStopCount,
  kGetHit,
  kGetMiss,
  kSeekCount,
  kWriteCount,
  kDeleteCount,
  kWalSyncs,
  // Stall-reason breakdown (kWriteSlowdownCount/kWriteStopCount keep
  // the totals; these attribute them).
  kStallL0SlowdownCount,
  kStallL0StopCount,
  kStallMemtableStopCount,
  // Block cache lookups, folded in from Cache::GetStats by the DB.
  kBlockCacheHit,
  kBlockCacheMiss,
  // Observability-of-the-observability: lines the BufferLogger evicted
  // to honor its cap, and JSONL info-LOG appends that failed. Folded in
  // from the loggers by the DB (SyncLogStatsLocked) so telemetry loss
  // is visible in `elmo.stats` and the Prometheus exposition instead of
  // only inside the logger objects.
  kInfoLogDroppedLines,
  kInfoLogWriteFailures,
  // Successful DB::SetOptions() calls (each may carry several option
  // deltas); also exposed as GetProperty("elmo.options_changes") and
  // the elmo_options_changes_total Prometheus counter.
  kOptionsChanges,
  // Background-error handling (see error_handler.h). The per-severity
  // counters render as elmo_background_errors_total{severity=...};
  // attempts/success/failure count auto-resume + manual Resume() work.
  kBackgroundErrorsSoft,
  kBackgroundErrorsHard,
  kBackgroundErrorsFatal,
  kAutoResumeAttempts,
  kAutoResumeSuccess,
  kAutoResumeFailure,
  kTickerMax,
};

enum class HistogramType : int {
  kGetMicros = 0,
  kWriteMicros,
  kWalSyncMicros,
  kFlushMicros,
  kCompactionMicros,
  kStallMicros,
  kFlushOutputBytes,
  kCompactionInputBytes,
  kCompactionOutputBytes,
  kHistogramMax,
};

const char* HistogramTypeName(HistogramType h);

// Point-in-time copy of the whole statistics registry. Taken with
// DbStats::GetSnapshot(); Delta() turns two cumulative snapshots into
// per-interval counts so rate consumers (the StatsSampler, the
// "elmo.stats" scrapers) never do racy manual subtraction. Each field is
// individually consistent (relaxed atomic loads); the snapshot as a
// whole is not a cross-counter atomic cut, which is fine for telemetry.
struct StatsSnapshot {
  uint64_t tickers[static_cast<int>(Ticker::kTickerMax)] = {};
  Histogram histograms[static_cast<int>(HistogramType::kHistogramMax)];

  uint64_t Get(Ticker t) const { return tickers[static_cast<int>(t)]; }
  const Histogram& GetHistogram(HistogramType h) const {
    return histograms[static_cast<int>(h)];
  }

  // Interval delta "this - prev". Ticker deltas are clamped at zero so a
  // stale `prev` cannot underflow; histogram deltas subtract per-bucket
  // counts, so interval percentiles are exact.
  StatsSnapshot Delta(const StatsSnapshot& prev) const;
};

// Lock-free histogram sharing Histogram's bucket layout: atomic bucket
// counters plus CAS-maintained min/max/sum aggregates. Snapshot() fills
// a plain Histogram for percentile math and rendering.
class AtomicHistogram {
 public:
  void Add(uint64_t value);
  void Reset();
  Histogram Snapshot() const;
  uint64_t Count() const { return num_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> buckets_[Histogram::kNumBuckets] = {};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> num_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> sum_squares_{0};
};

class DbStats {
 public:
  // Deep enough for the sanitized num_levels ceiling (12).
  static constexpr int kMaxLevels = 12;

  DbStats() = default;

  void Add(Ticker t, uint64_t n) {
    counters_[static_cast<int>(t)].fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Get(Ticker t) const {
    return counters_[static_cast<int>(t)].load(std::memory_order_relaxed);
  }

  // Record one sample (latency in micros, or a byte size) in the given
  // histogram.
  void Measure(HistogramType h, uint64_t value) {
    histograms_[static_cast<int>(h)].Add(value);
  }
  // Point-in-time copy usable for percentile queries.
  Histogram GetHistogram(HistogramType h) const {
    return histograms_[static_cast<int>(h)].Snapshot();
  }
  uint64_t HistogramCount(HistogramType h) const {
    return histograms_[static_cast<int>(h)].Count();
  }

  // --- per-level cumulative counters (compaction data flow) ---
  // Bytes read *from* `level` as compaction input.
  void AddLevelReadBytes(int level, uint64_t n) { LevelAdd(level_read_, level, n); }
  // Bytes written *into* `level` (flush outputs for L0, compaction
  // outputs below).
  void AddLevelWriteBytes(int level, uint64_t n) { LevelAdd(level_write_, level, n); }
  // Bytes that arrived at `level` from the level above (flush bytes for
  // L0, upper-level compaction input otherwise); the denominator of the
  // per-level write amplification.
  void AddLevelInBytes(int level, uint64_t n) { LevelAdd(level_in_, level, n); }
  // One compaction whose output landed at `level`.
  void AddLevelCompaction(int level) { LevelAdd(level_compactions_, level, 1); }

  uint64_t LevelReadBytes(int level) const { return LevelGet(level_read_, level); }
  uint64_t LevelWriteBytes(int level) const { return LevelGet(level_write_, level); }
  uint64_t LevelInBytes(int level) const { return LevelGet(level_in_, level); }
  uint64_t LevelCompactions(int level) const {
    return LevelGet(level_compactions_, level);
  }

  void Reset();

  // Copy every ticker and histogram into a StatsSnapshot (see above).
  // Safe to call concurrently with writers.
  StatsSnapshot GetSnapshot() const;

  // Multi-line dump used by GetProperty("elmo.stats") and scraped into
  // the tuning prompt: tickers, stall-reason breakdown, and a p50/p99
  // table of every histogram.
  std::string ToString() const;

 private:
  using LevelArray = std::atomic<uint64_t>[kMaxLevels];

  static void LevelAdd(LevelArray& a, int level, uint64_t n) {
    if (level < 0 || level >= kMaxLevels) return;
    a[level].fetch_add(n, std::memory_order_relaxed);
  }
  static uint64_t LevelGet(const LevelArray& a, int level) {
    if (level < 0 || level >= kMaxLevels) return 0;
    return a[level].load(std::memory_order_relaxed);
  }

  std::atomic<uint64_t> counters_[static_cast<int>(Ticker::kTickerMax)] = {};
  AtomicHistogram histograms_[static_cast<int>(HistogramType::kHistogramMax)];
  LevelArray level_read_ = {};
  LevelArray level_write_ = {};
  LevelArray level_in_ = {};
  LevelArray level_compactions_ = {};
};

}  // namespace elmo::lsm
