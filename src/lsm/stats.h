// DB runtime statistics: the numbers the benchmark report and the
// tuning prompt are built from. All counters are mutex-free atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace elmo::lsm {

enum class Ticker : int {
  kBytesWritten = 0,
  kBytesRead,
  kWalBytes,
  kFlushCount,
  kFlushBytes,
  kCompactionCount,
  kCompactionBytesRead,
  kCompactionBytesWritten,
  kTrivialMoveCount,
  kWriteStallMicros,
  kWriteSlowdownCount,
  kWriteStopCount,
  kGetHit,
  kGetMiss,
  kSeekCount,
  kWriteCount,
  kDeleteCount,
  kWalSyncs,
  kTickerMax,
};

class DbStats {
 public:
  DbStats() = default;

  void Add(Ticker t, uint64_t n) {
    counters_[static_cast<int>(t)].fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Get(Ticker t) const {
    return counters_[static_cast<int>(t)].load(std::memory_order_relaxed);
  }
  void Reset() {
    for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  }

  // Multi-line dump used by GetProperty("elmo.stats") and scraped into
  // the tuning prompt.
  std::string ToString() const;

 private:
  std::atomic<uint64_t> counters_[static_cast<int>(Ticker::kTickerMax)] = {};
};

}  // namespace elmo::lsm
