// Internal key format: user_key + 8-byte trailer packing
// (sequence << 8 | type). Ordering is user key ascending, then sequence
// DESCENDING so the newest version of a key sorts first.
#pragma once

#include <cstdint>
#include <string>

#include "table/bloom.h"
#include "table/comparator.h"
#include "util/coding.h"
#include "util/slice.h"

namespace elmo {

using SequenceNumber = uint64_t;

// Leaves room for packing the type into the low 8 bits.
static const SequenceNumber kMaxSequenceNumber = ((0x1ull << 56) - 1);

enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};
// Seek() target type: pass the max type so entries with equal user key
// and sequence sort correctly.
static const ValueType kValueTypeForSeek = kTypeValue;

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence;
  ValueType type;

  ParsedInternalKey() = default;
  ParsedInternalKey(const Slice& u, SequenceNumber seq, ValueType t)
      : user_key(u), sequence(seq), type(t) {}
};

inline uint64_t PackSequenceAndType(uint64_t seq, ValueType t) {
  return (seq << 8) | t;
}

void AppendInternalKey(std::string* result, const ParsedInternalKey& key);

// Returns false on malformed input.
bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result);

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  const uint64_t num =
      DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  return num >> 8;
}

inline ValueType ExtractValueType(const Slice& internal_key) {
  const uint64_t num =
      DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  return static_cast<ValueType>(num & 0xff);
}

// Comparator over internal keys, built on a user-key comparator.
class InternalKeyComparator : public Comparator {
 public:
  explicit InternalKeyComparator(const Comparator* c) : user_comparator_(c) {}

  const char* Name() const override {
    return "elmo.InternalKeyComparator";
  }
  int Compare(const Slice& a, const Slice& b) const override;
  void FindShortestSeparator(std::string* start,
                             const Slice& limit) const override;
  void FindShortSuccessor(std::string* key) const override;

  const Comparator* user_comparator() const { return user_comparator_; }

 private:
  const Comparator* user_comparator_;
};

// An InternalKey as a value type (used in FileMetaData / VersionEdit).
class InternalKey {
 public:
  InternalKey() = default;
  InternalKey(const Slice& user_key, SequenceNumber s, ValueType t) {
    AppendInternalKey(&rep_, ParsedInternalKey(user_key, s, t));
  }

  bool Valid() const {
    ParsedInternalKey parsed;
    return ParseInternalKey(Slice(rep_), &parsed);
  }

  void DecodeFrom(const Slice& s) { rep_.assign(s.data(), s.size()); }
  Slice Encode() const { return Slice(rep_); }
  Slice user_key() const { return ExtractUserKey(Slice(rep_)); }

  void SetFrom(const ParsedInternalKey& p) {
    rep_.clear();
    AppendInternalKey(&rep_, p);
  }

  void Clear() { rep_.clear(); }

 private:
  std::string rep_;
};

// Memtable lookup key: length-prefixed internal key for key comparisons
// in the skip list plus direct access to the user key.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence);
  ~LookupKey();

  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;

  Slice memtable_key() const { return Slice(start_, end_ - start_); }
  Slice internal_key() const { return Slice(kstart_, end_ - kstart_); }
  Slice user_key() const { return Slice(kstart_, end_ - kstart_ - 8); }

 private:
  const char* start_;
  const char* kstart_;
  const char* end_;
  char space_[200];  // avoids allocation for short keys
};

}  // namespace elmo
