#include "lsm/db_impl.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <vector>

#include "env/io_trace.h"
#include "fault/fault_injection_env.h"
#include "fault/kill_point.h"
#include "lsm/cost_model.h"
#include "lsm/db_iter.h"
#include "lsm/filename.h"
#include "lsm/log_reader.h"
#include "lsm/merger.h"
#include "lsm/options_file.h"
#include "lsm/options_schema.h"
#include "lsm/perf_context.h"
#include "monitor/prometheus.h"
#include "table/table_builder.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace elmo::lsm {

namespace {

// Applies the bytes_per_sync policy: forwards writes and issues a
// RangeSync each time `interval` new bytes have been appended.
class SyncingWritableFile : public WritableFile {
 public:
  SyncingWritableFile(std::unique_ptr<WritableFile> target, uint64_t interval,
                      bool strict)
      : target_(std::move(target)), interval_(interval), strict_(strict) {}

  Status Append(const Slice& data) override {
    Status s = target_->Append(data);
    if (!s.ok() || interval_ == 0) return s;
    since_sync_ += data.size();
    while (since_sync_ >= interval_) {
      // Strict mode syncs exactly one interval per boundary; relaxed
      // mode drains everything accumulated so far.
      s = target_->RangeSync(strict_ ? interval_ : since_sync_);
      if (!s.ok()) return s;
      if (strict_) {
        since_sync_ -= interval_;
      } else {
        since_sync_ = 0;
      }
    }
    return s;
  }

  Status Close() override { return target_->Close(); }
  Status Flush() override { return target_->Flush(); }
  Status Sync() override { return target_->Sync(); }
  Status RangeSync(uint64_t offset) override {
    return target_->RangeSync(offset);
  }
  uint64_t GetFileSize() const override { return target_->GetFileSize(); }

 private:
  std::unique_ptr<WritableFile> target_;
  const uint64_t interval_;
  const bool strict_;
  uint64_t since_sync_ = 0;
};

// Keeps arbitrary shared state (memtables, versions) alive for the
// lifetime of a wrapped iterator.
class RefHolderIterator : public Iterator {
 public:
  RefHolderIterator(std::unique_ptr<Iterator> inner,
                    std::vector<std::shared_ptr<void>> refs)
      : inner_(std::move(inner)), refs_(std::move(refs)) {}

  bool Valid() const override { return inner_->Valid(); }
  void SeekToFirst() override { inner_->SeekToFirst(); }
  void SeekToLast() override { inner_->SeekToLast(); }
  void Seek(const Slice& t) override { inner_->Seek(t); }
  void Next() override { inner_->Next(); }
  void Prev() override { inner_->Prev(); }
  Slice key() const override { return inner_->key(); }
  Slice value() const override { return inner_->value(); }
  Status status() const override { return inner_->status(); }

 private:
  std::unique_ptr<Iterator> inner_;
  std::vector<std::shared_ptr<void>> refs_;
};

Options SanitizeOptions(const Options& src) {
  Options o = src;
  if (o.env == nullptr) o.env = Env::Posix();
  if (o.info_log == nullptr) o.info_log = std::make_shared<NullLogger>();
  o.max_write_buffer_number = std::max(2, o.max_write_buffer_number);
  o.min_write_buffer_number_to_merge =
      std::min(o.min_write_buffer_number_to_merge,
               o.max_write_buffer_number - 1);
  o.min_write_buffer_number_to_merge =
      std::max(1, o.min_write_buffer_number_to_merge);
  o.level0_slowdown_writes_trigger =
      std::max(o.level0_slowdown_writes_trigger,
               o.level0_file_num_compaction_trigger);
  o.level0_stop_writes_trigger = std::max(o.level0_stop_writes_trigger,
                                          o.level0_slowdown_writes_trigger);
  o.num_levels = std::clamp(o.num_levels, 2, 12);
  o.write_buffer_size = std::max<uint64_t>(o.write_buffer_size, 1 << 16);
  o.stats_history_size = std::max<uint64_t>(o.stats_history_size, 16);
  return o;
}

// The deterministic inline-background-work path must engage whenever a
// SimEnv sits anywhere under the user's env, including below a
// FaultInjectionEnv decorator (stress runs pass
// FaultInjectionEnv(SimEnv) as options.env).
SimEnv* FindSimEnv(Env* env) {
  if (auto* sim = dynamic_cast<SimEnv*>(env)) return sim;
  if (auto* fault = dynamic_cast<FaultInjectionEnv*>(env)) {
    return FindSimEnv(fault->base());
  }
  if (auto* tracing = dynamic_cast<IOTracingEnv*>(env)) {
    return FindSimEnv(tracing->base());
  }
  return nullptr;
}

}  // namespace

DBImpl::DBImpl(const Options& raw_options, const std::string& dbname)
    : options_(SanitizeOptions(raw_options)),
      dbname_(dbname),
      raw_env_(options_.env),
      io_env_(std::make_unique<IOTracingEnv>(raw_env_)),
      env_(io_env_.get()),
      sim_(FindSimEnv(raw_env_)),
      block_cache_(NewLruCache(options_.block_cache_size)),
      block_cache_tracer_(std::make_shared<BlockCacheTracer>(raw_env_)),
      internal_comparator_(BytewiseComparator()),
      error_handler_(ErrorHandlerConfig{
          options_.max_bgerror_resume_count,
          options_.bgerror_resume_retry_interval_ms * 1000,
          options_.bgerror_resume_max_backoff_ms * 1000}),
      slowdown_limiter_(options_.delayed_write_rate) {
  // Span-trace output bypasses the IO-tracing wrapper, like the other
  // observability sinks, so observing the engine never perturbs the
  // evidence it produces.
  span_tracer_ = std::make_unique<SpanTracer>(raw_env_);
  span_baseline_ = GlobalSpanAggregate()->GetSnapshot();
  // Everything that takes an Env from the options (TableCache,
  // VersionSet, OPTIONS persistence, ...) must go through the tracing
  // wrapper, so repoint the sanitized copy at it.
  options_.env = env_;
  table_cache_ = std::make_unique<TableCache>(
      dbname_, options_, &internal_comparator_, block_cache_,
      block_cache_tracer_,
      options_.max_open_files < 0 ? (1 << 20) : options_.max_open_files);
  versions_ = std::make_unique<VersionSet>(dbname_, &options_,
                                           table_cache_.get(),
                                           &internal_comparator_);
  if (sim_ != nullptr) {
    sim_->ConfigureLanes(options_.ResolvedFlushSlots(),
                         options_.ResolvedCompactionSlots());
    sim_->SetAppMemoryFootprint(options_.ConfiguredMemoryFootprint());
  } else {
    env_->SetBackgroundThreads(options_.ResolvedFlushSlots(),
                               JobPriority::kHigh);
    env_->SetBackgroundThreads(options_.ResolvedCompactionSlots(),
                               JobPriority::kLow);
  }
  if (options_.free_space_reserved_bytes > 0) {
    space_monitor_ = std::make_unique<SpaceMonitor>(
        env_, dbname_, options_.free_space_reserved_bytes,
        options_.free_space_poll_interval_ms * 1000);
  }
  if (options_.stats_sample_interval_ms > 0) {
    sampler_interval_ms_.store(options_.stats_sample_interval_ms,
                               std::memory_order_relaxed);
    sampler_ = std::make_unique<StatsSampler>(
        &stats_, options_.stats_sample_interval_ms * 1000,
        static_cast<size_t>(options_.stats_history_size), env_->NowMicros());
    if (options_.enable_health_monitor) {
      monitor::MonitorConfig mc;
      mc.engine = monitor::EngineInfo::FromOptions(options_);
      health_ = std::make_unique<monitor::HealthMonitor>(mc);
    }
  }
}

DBImpl::~DBImpl() {
  shutting_down_.store(true);
  if (sim_ == nullptr) {
    env_->WaitForBackgroundWork();
  }
  // Stop the auto-resume thread first: a recovery attempt must not race
  // the teardown of the state it would repair.
  if (recovery_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> rl(recovery_mu_);
      recovery_stop_ = true;
    }
    recovery_cv_.notify_all();
    recovery_thread_.join();
  }
  // Stop the sampler thread before touching any observability sink: a
  // tick must never race the LOG/trace teardown below or outlive the
  // Env.
  if (sampler_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> sl(sampler_mu_);
      sampler_stop_ = true;
    }
    sampler_cv_.notify_all();
    sampler_thread_.join();
  }
  if (tracing_.load(std::memory_order_acquire)) {
    EndTrace();  // flush + sync the trace file
  }
  if (io_env_->tracing()) {
    EndIOTrace();
  }
  if (block_cache_tracer_->active()) {
    EndBlockCacheTrace();
  }
  if (span_tracer_->active()) {
    EndSpanTrace();
  }
  {
    // Fold the final cache + logger-loss counters into the tickers so
    // post-close stats snapshots are complete, and leave a final metrics
    // exposition behind for scrapers that outlive the process.
    std::lock_guard<std::mutex> l(mu_);
    SyncCacheStatsLocked();
    SyncLogStatsLocked();
    ExportMetricsLocked();
  }
  if (info_event_log_ != nullptr) {
    json::Object fields;
    fields["lines"] =
        static_cast<int64_t>(info_event_log_->lines_written());
    // A BufferLogger that hit its line cap makes truncation detectable
    // post-mortem.
    if (auto* buffered = dynamic_cast<BufferLogger*>(options_.info_log.get())) {
      fields["info_log_dropped_lines"] =
          static_cast<int64_t>(buffered->dropped_lines());
    }
    info_event_log_->LogEvent("close", std::move(fields));
    info_event_log_->Close();
  }
}

// ---------------------------------------------------------------------
// Open / recovery

Status DB::Open(const Options& options, const std::string& name,
                std::unique_ptr<DB>* dbptr) {
  dbptr->reset();
  auto impl = std::make_unique<DBImpl>(options, name);
  Status s = impl->Recover();
  if (!s.ok()) return s;
  *dbptr = std::move(impl);
  return Status::OK();
}

Status DB::DestroyDB(const std::string& name, const Options& options) {
  Env* env = options.env != nullptr ? options.env : Env::Posix();
  std::vector<std::string> filenames;
  Status result = env->GetChildren(name, &filenames);
  if (!result.ok()) {
    return Status::OK();  // nothing to destroy
  }
  for (const auto& f : filenames) {
    uint64_t number;
    FileType type;
    if (ParseFileName(f, &number, &type)) {
      Status del = env->RemoveFile(name + "/" + f);
      if (result.ok() && !del.ok()) result = del;
    }
  }
  env->RemoveDir(name);
  return result;
}

Status DBImpl::NewDBFiles() {
  VersionEdit new_db;
  new_db.SetComparatorName(internal_comparator_.user_comparator()->Name());
  new_db.SetLogNumber(0);
  new_db.SetNextFile(2);
  new_db.SetLastSequence(0);

  const std::string manifest = DescriptorFileName(dbname_, 1);
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(manifest, &file);
  if (!s.ok()) return s;
  {
    log::Writer log(file.get());
    std::string record;
    new_db.EncodeTo(&record);
    s = log.AddRecord(Slice(record));
    if (s.ok()) s = file->Sync();
    if (s.ok()) s = file->Close();
  }
  if (s.ok()) {
    s = SetCurrentFile(env_, dbname_, 1);
  } else {
    env_->RemoveFile(manifest);
  }
  return s;
}

Status DBImpl::Recover() {
  // Manifest reads and WAL replay are attributed to recovery.
  IOContextScope io_ctx(IOContextTag::kRecovery);
  std::unique_lock<std::mutex> l(mu_);

  Status s = env_->CreateDirIfMissing(dbname_);
  if (!s.ok()) return s;

  if (!env_->FileExists(CurrentFileName(dbname_))) {
    if (!options_.create_if_missing) {
      return Status::InvalidArgument(dbname_,
                                     "does not exist (create_if_missing=false)");
    }
    s = NewDBFiles();
    if (!s.ok()) return s;
  } else if (options_.error_if_exists) {
    return Status::InvalidArgument(dbname_, "exists (error_if_exists=true)");
  }

  // Structured info LOG: JSONL through the Env, so SimEnv runs produce a
  // deterministic LOG with virtual-clock timestamps. Registered as a
  // listener so flush/compaction/stall events flow in automatically;
  // options.info_log keeps receiving a human-readable tee.
  info_event_log_ = std::make_shared<DbInfoLogger>(env_, options_.info_log);
  {
    Status ls = info_event_log_->Open(InfoLogFileName(dbname_));
    if (!ls.ok()) {
      ELMO_LOG_WARN(options_.info_log.get(), "failed to open info LOG: %s",
                    ls.ToString().c_str());
    }
  }
  options_.listeners.push_back(info_event_log_);
  if (options_.cache_index_and_filter_blocks &&
      options_.block_cache_size == 0) {
    // Honored, but with a zero-capacity cache every metadata access
    // reloads from disk; flag the likely misconfiguration.
    ELMO_LOG_WARN(options_.info_log.get(),
                  "cache_index_and_filter_blocks=true with "
                  "block_cache_size=0: index/filter blocks will be "
                  "re-read on every access");
  }
  {
    json::Object fields;
    fields["dbname"] = dbname_;
    fields["deterministic_env"] = sim_ != nullptr;
    info_event_log_->LogEvent("open", std::move(fields));
    json::Object opt_fields;
    opt_fields["ini"] = OptionsSchema::Instance().ToIniText(options_);
    info_event_log_->LogEvent("options", std::move(opt_fields));
  }

  s = versions_->Recover();
  if (!s.ok()) return s;
  vstall_.SetInitialL0(versions_->NumLevelFiles(0));

  // Replay WALs not yet reflected in the manifest, in file order.
  std::vector<std::string> filenames;
  s = env_->GetChildren(dbname_, &filenames);
  if (!s.ok()) return s;
  const uint64_t min_log = versions_->LogNumber();
  std::vector<uint64_t> logs;
  for (const auto& f : filenames) {
    uint64_t number;
    FileType type;
    if (ParseFileName(f, &number, &type) && type == FileType::kLogFile &&
        number >= min_log) {
      logs.push_back(number);
    }
  }
  std::sort(logs.begin(), logs.end());

  SequenceNumber max_sequence = versions_->LastSequence();
  for (uint64_t log_number : logs) {
    s = RecoverLogFile(log_number, &max_sequence);
    if (!s.ok()) return s;
  }
  if (max_sequence > versions_->LastSequence()) {
    versions_->SetLastSequence(max_sequence);
  }

  // Fresh active memtable + WAL.
  mem_ = std::make_shared<MemTable>(internal_comparator_);
  s = SwitchToNewLog();
  if (!s.ok()) return s;

  // Persist the new log number so the replayed logs become obsolete.
  VersionEdit edit;
  edit.SetLogNumber(logfile_number_);
  s = versions_->LogAndApply(&edit);
  if (!s.ok()) return s;

  // Replay runtime-mutable options from the previous incarnation's
  // OPTIONS file (opt-in): a DB retuned live via SetOptions() reopens
  // with the last applied configuration instead of the caller's.
  if (options_.recover_persisted_options) {
    const std::string prev_options = FindLatestOptionsFile(env_, dbname_);
    if (!prev_options.empty()) {
      Options persisted = options_;
      Status ls = LoadOptionsFile(env_, prev_options, &persisted);
      if (ls.ok()) {
        const OptionsSchema& schema = OptionsSchema::Instance();
        std::map<std::string, std::string> replay;
        for (const std::string& name : schema.MutableNames()) {
          const OptionInfo* info = schema.Find(name);
          const std::string saved = info->get(persisted);
          if (info->get(options_) == saved) continue;
          // The sampler can no more be started or stopped at reopen
          // than at runtime; skip a cadence crossing zero instead of
          // failing the whole replay.
          if (name == "stats_sample_interval_ms" &&
              ((options_.stats_sample_interval_ms == 0) !=
               (persisted.stats_sample_interval_ms == 0))) {
            continue;
          }
          replay[name] = saved;
        }
        if (!replay.empty()) {
          Status as = ApplyDynamicOptionsLocked(replay, "recovery");
          if (!as.ok()) {
            ELMO_LOG_WARN(options_.info_log.get(),
                          "failed to replay persisted options: %s",
                          as.ToString().c_str());
          }
        }
      } else {
        ELMO_LOG_WARN(options_.info_log.get(),
                      "failed to load persisted OPTIONS file: %s",
                      ls.ToString().c_str());
      }
    }
  }

  // Persist the active configuration (RocksDB-style OPTIONS file),
  // replacing any previous one.
  {
    std::string old_options = FindLatestOptionsFile(env_, dbname_);
    std::string fname =
        OptionsFileName(dbname_, versions_->NewFileNumber());
    Status os = SaveOptionsFile(env_, fname, options_);
    if (os.ok() && !old_options.empty() && old_options != fname) {
      env_->RemoveFile(old_options);
    }
    if (!os.ok()) {
      ELMO_LOG_WARN(options_.info_log.get(),
                    "failed to persist OPTIONS file: %s",
                    os.ToString().c_str());
    }
  }

  RemoveObsoleteFiles();
  MaybeScheduleCompaction();

  // Under a real env a dedicated thread drives the sampler; under SimEnv
  // ticks piggyback on engine call sites (see MaybeSampleLocked).
  if (sampler_ != nullptr && sim_ == nullptr) {
    sampler_thread_ = std::thread([this] { SamplerThreadLoop(); });
  }
  return Status::OK();
}

Status DBImpl::RecoverLogFile(uint64_t log_number,
                              SequenceNumber* max_sequence) {
  // REQUIRES: mu_ held.
  struct LogReporter : public log::Reader::Reporter {
    Status* status;
    void Corruption(size_t, const Status& s) override {
      if (status->ok()) *status = s;
    }
  };

  std::string fname = LogFileName(dbname_, log_number);
  std::unique_ptr<SequentialFile> file;
  Status s = env_->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;

  Status replay_status;
  LogReporter reporter;
  reporter.status = &replay_status;
  log::Reader reader(file.get(), &reporter, /*checksum=*/true,
                     /*tolerate_torn_tail=*/true);

  std::string scratch;
  Slice record;
  WriteBatch batch;
  std::shared_ptr<MemTable> mem;
  VersionEdit edit;

  while (reader.ReadRecord(&record, &scratch) && replay_status.ok()) {
    if (record.size() < 12) {
      reporter.Corruption(record.size(),
                          Status::Corruption("log record too small"));
      continue;
    }
    batch.SetContentsFrom(record);

    if (mem == nullptr) {
      mem = std::make_shared<MemTable>(internal_comparator_);
    }
    s = batch.InsertInto(mem.get());
    if (!s.ok()) return s;

    const SequenceNumber last_seq =
        batch.Sequence() + batch.Count() - 1;
    if (last_seq > *max_sequence) *max_sequence = last_seq;

    if (mem->ApproximateMemoryUsage() > options_.write_buffer_size) {
      FileMetaData meta;
      s = WriteLevel0Table({mem}, &edit, &meta);
      if (!s.ok()) return s;
      mem.reset();
    }
  }
  if (!replay_status.ok()) return replay_status;

  if (mem != nullptr && mem->NumEntries() > 0) {
    FileMetaData meta;
    s = WriteLevel0Table({mem}, &edit, &meta);
    if (!s.ok()) return s;
  }

  if (!edit.new_files_.empty()) {
    s = versions_->LogAndApply(&edit);
    if (!s.ok()) return s;
    vstall_.SetInitialL0(versions_->NumLevelFiles(0));
  }
  return Status::OK();
}

Status DBImpl::SwitchToNewLog() {
  // REQUIRES: mu_ held.
  uint64_t new_log_number = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> lfile;
  Status s = env_->NewWritableFile(LogFileName(dbname_, new_log_number),
                                   &lfile);
  if (!s.ok()) {
    versions_->ReuseFileNumber(new_log_number);
    return s;
  }
  logfile_ = std::move(lfile);
  logfile_number_ = new_log_number;
  log_ = std::make_unique<log::Writer>(logfile_.get());
  wal_bytes_since_sync_ = 0;
  return Status::OK();
}

// ---------------------------------------------------------------------
// Write path

Status DBImpl::Put(const WriteOptions& options, const Slice& key,
                   const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, &batch);
}

Status DBImpl::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  stats_.Add(Ticker::kDeleteCount, 1);
  return Write(options, &batch);
}

Status DBImpl::Write(const WriteOptions& opts, WriteBatch* updates) {
  if (updates == nullptr || updates->Count() == 0) return Status::OK();

  // WAL appends/syncs (and any memtable-switch IO this write triggers)
  // are attributed to the user write path.
  IOContextScope io_ctx(IOContextTag::kUserWrite);
  const uint64_t t_start = env_->NowMicros();
  PerfContext* perf = GetPerfContext();
  SpanScope span(env_, SpanKind::kWrite, span_tracer_.get());

  std::unique_lock<std::mutex> l(mu_);
  Status s = MakeRoomForWrite(l);
  if (!s.ok()) return s;

  const SequenceNumber seq = versions_->LastSequence() + 1;
  updates->SetSequence(seq);
  const int count = updates->Count();
  const size_t batch_bytes = updates->ApproximateSize();

  // WAL first (durability before visibility).
  if (!opts.disable_wal && !options_.disable_wal) {
    {
      SpanScope wal_span(env_, SpanKind::kWalAppend);
      wal_span.Annotate(SpanTag::kBytes, batch_bytes);
      s = log_->AddRecord(updates->Contents());
    }
    stats_.Add(Ticker::kWalBytes, batch_bytes);
    perf->write_wal_bytes += batch_bytes;
    wal_live_bytes_ += batch_bytes;
    if (!s.ok()) {
      // The write is not acked; classify the failure so later writes
      // stall or fail fast and auto-resume can switch to a fresh WAL.
      RecordBackgroundError(BackgroundErrorSource::kWalAppend, s);
    }
    if (s.ok()) ELMO_KILL_POINT("wal:after_append");
    if (s.ok()) {
      if (opts.sync) {
        SpanScope sync_span(env_, SpanKind::kWalSync);
        const uint64_t t_sync = env_->NowMicros();
        s = logfile_->Sync();
        if (s.ok()) ELMO_KILL_POINT("wal:after_sync");
        stats_.Add(Ticker::kWalSyncs, 1);
        stats_.Measure(HistogramType::kWalSyncMicros,
                       env_->NowMicros() - t_sync);
        perf->write_wal_syncs++;
      } else if (options_.wal_bytes_per_sync > 0) {
        wal_bytes_since_sync_ += batch_bytes;
        if (wal_bytes_since_sync_ >= options_.wal_bytes_per_sync) {
          SpanScope sync_span(env_, SpanKind::kWalSync);
          const uint64_t t_sync = env_->NowMicros();
          s = logfile_->RangeSync(options_.strict_bytes_per_sync
                                      ? options_.wal_bytes_per_sync
                                      : wal_bytes_since_sync_);
          stats_.Add(Ticker::kWalSyncs, 1);
          stats_.Measure(HistogramType::kWalSyncMicros,
                         env_->NowMicros() - t_sync);
          perf->write_wal_syncs++;
          wal_bytes_since_sync_ = 0;
        }
      }
      if (!s.ok()) {
        RecordBackgroundError(BackgroundErrorSource::kWalSync, s);
      }
    }
  }

  if (s.ok()) {
    SpanScope mem_span(env_, SpanKind::kMemtableInsert);
    mem_span.Annotate(SpanTag::kEntries, static_cast<uint64_t>(count));
    s = updates->InsertInto(mem_.get());
  }
  if (s.ok()) {
    versions_->SetLastSequence(seq + count - 1);
    // A fully-acked write proves the WAL healthy; forget any consumed
    // auto-resume budget so the next episode starts fresh.
    error_handler_.NoteBackgroundWorkSuccess();
  }

  stats_.Add(Ticker::kWriteCount, count);
  stats_.Add(Ticker::kBytesWritten, batch_bytes);
  span.Annotate(SpanTag::kBytes, batch_bytes);
  span.Annotate(SpanTag::kEntries, static_cast<uint64_t>(count));
  ChargeWriteCpu(batch_bytes, count);

  const uint64_t elapsed = env_->NowMicros() - t_start;
  stats_.Measure(HistogramType::kWriteMicros, elapsed);
  perf->write_batches++;
  perf->write_count += count;
  perf->write_micros += elapsed;

  if (s.ok() && tracing_.load(std::memory_order_acquire)) {
    TraceWriteBatch(*updates, t_start);
  }
  MaybeSampleLocked();
  return s;
}

void DBImpl::ChargeWriteCpu(size_t batch_bytes, int batch_count) {
  if (sim_ == nullptr) return;
  double wal_cost =
      cost::kWalAppendBaseUs + batch_bytes * cost::kWritePerByteUs;
  double mem_cost = cost::kMemtableInsertUs * batch_count +
                    batch_bytes * cost::kWritePerByteUs;
  double total = wal_cost + mem_cost;
  if (options_.enable_pipelined_write) total *= cost::kPipelinedWriteFactor;
  env_->ChargeCpu(static_cast<uint64_t>(total));
}

void DBImpl::ChargeGetCpu(int files_probed) {
  if (sim_ == nullptr) return;
  env_->ChargeCpu(cost::kGetBaseUs +
                  cost::kGetPerFileProbeUs *
                      static_cast<uint64_t>(files_probed));
}

int DBImpl::ImmCountForStall() {
  if (sim_ != nullptr) {
    vstall_.ProcessUntil(sim_->NowMicros());
    return vstall_.imm_count();
  }
  return static_cast<int>(imm_.size());
}

int DBImpl::L0CountForStall() {
  if (sim_ != nullptr) {
    vstall_.ProcessUntil(sim_->NowMicros());
    return vstall_.l0_count();
  }
  return versions_->NumLevelFiles(0);
}

Status DBImpl::MakeRoomForWrite(std::unique_lock<std::mutex>& l) {
  // REQUIRES: l holds mu_.
  bool allow_delay = true;
  int spin_guard = 0;

  while (true) {
    if (!error_handler_.ok()) {
      // An auto-resume retry may be due right now (under SimEnv this
      // writer is the only clock observer).
      MaybeResumeLocked();
    }
    {
      Status es = error_handler_.WriteStatus();
      if (!es.ok()) return es;  // hard/fatal: fail fast, reads still serve
    }
    if (++spin_guard > 10000) {
      return Status::Busy("write path failed to make progress");
    }

    if (!error_handler_.ok()) {
      // Soft error: writes stall while auto-resume retries; escalation
      // to hard (budget exhausted) flips the loop into fail-fast above.
      stats_.Add(Ticker::kWriteStopCount, 1);
      UpdateStallCondition(StallCondition::kStopped,
                           StallReason::kBackgroundError, 0);
      uint64_t waited = 0;
      SpanScope stall_span(env_, SpanKind::kStallWait);
      stall_span.Annotate(
          SpanTag::kStallReason,
          static_cast<uint64_t>(StallReason::kBackgroundError));
      if (sim_ != nullptr) {
        const uint64_t now = sim_->NowMicros();
        const uint64_t next = error_handler_.next_retry_at_us();
        if (next > now) {
          waited = next - now;
          sim_->AdvanceTo(next);
        }
        // next <= now: the retry is due; the loop attempts it above.
      } else {
        const uint64_t t0 = env_->NowMicros();
        bg_work_finished_.wait(l);  // recovery thread signals transitions
        waited = env_->NowMicros() - t0;
      }
      stall_span.Close();
      stats_.Add(Ticker::kWriteStallMicros, waited);
      stats_.Measure(HistogramType::kStallMicros, waited);
      GetPerfContext()->write_stall_micros += waited;
      NotifyWriteStop(StallReason::kBackgroundError, waited);
      continue;
    }

    const int l0 = L0CountForStall();

    if (allow_delay && l0 >= options_.level0_slowdown_writes_trigger &&
        l0 < options_.level0_stop_writes_trigger) {
      // Slowdown regime: rate-limit this writer once, then proceed.
      stats_.Add(Ticker::kWriteSlowdownCount, 1);
      stats_.Add(Ticker::kStallL0SlowdownCount, 1);
      uint64_t now = env_->NowMicros();
      uint64_t wait = slowdown_limiter_.Request(1024, now);
      if (wait == 0) wait = 1000;  // leveldb's 1ms nudge
      stats_.Add(Ticker::kWriteStallMicros, wait);
      stats_.Measure(HistogramType::kStallMicros, wait);
      GetPerfContext()->write_stall_micros += wait;
      UpdateStallCondition(StallCondition::kDelayed,
                           StallReason::kL0FileCount, wait);
      {
        SpanScope stall_span(env_, SpanKind::kStallWait);
        stall_span.Annotate(
            SpanTag::kStallReason,
            static_cast<uint64_t>(StallReason::kL0FileCount));
        if (sim_ != nullptr) {
          sim_->AdvanceTo(now + wait);
        } else {
          l.unlock();
          env_->SleepForMicroseconds(wait);
          l.lock();
        }
      }
      allow_delay = false;
      continue;
    }

    if (mem_->ApproximateMemoryUsage() <= options_.write_buffer_size &&
        (options_.max_total_wal_size == 0 ||
         wal_live_bytes_ <= options_.max_total_wal_size)) {
      UpdateStallCondition(StallCondition::kNormal, StallReason::kNone, 0);
      return Status::OK();  // room available
    }

    if (ImmCountForStall() >= options_.max_write_buffer_number - 1) {
      // All memtable slots full: wait for a flush.
      stats_.Add(Ticker::kWriteStopCount, 1);
      stats_.Add(Ticker::kStallMemtableStopCount, 1);
      UpdateStallCondition(StallCondition::kStopped,
                           StallReason::kMemtableLimit, 0);
      uint64_t waited = 0;
      SpanScope stall_span(env_, SpanKind::kStallWait);
      stall_span.Annotate(
          SpanTag::kStallReason,
          static_cast<uint64_t>(StallReason::kMemtableLimit));
      if (sim_ != nullptr) {
        uint64_t now = sim_->NowMicros();
        uint64_t next = vstall_.NextEventAfter(now);
        if (next <= now) {
          // No pending completion — should not happen; avoid spinning.
          return Status::Busy("stalled with no pending flush");
        }
        waited = next - now;
        sim_->AdvanceTo(next);
      } else {
        MaybeScheduleFlush();
        uint64_t t0 = env_->NowMicros();
        bg_work_finished_.wait(l);
        waited = env_->NowMicros() - t0;
      }
      stall_span.Close();
      stats_.Add(Ticker::kWriteStallMicros, waited);
      stats_.Measure(HistogramType::kStallMicros, waited);
      GetPerfContext()->write_stall_micros += waited;
      NotifyWriteStop(StallReason::kMemtableLimit, waited);
      continue;
    }

    if (l0 >= options_.level0_stop_writes_trigger) {
      stats_.Add(Ticker::kWriteStopCount, 1);
      stats_.Add(Ticker::kStallL0StopCount, 1);
      UpdateStallCondition(StallCondition::kStopped,
                           StallReason::kL0FileCount, 0);
      uint64_t waited = 0;
      SpanScope stall_span(env_, SpanKind::kStallWait);
      stall_span.Annotate(
          SpanTag::kStallReason,
          static_cast<uint64_t>(StallReason::kL0FileCount));
      if (sim_ != nullptr) {
        uint64_t now = sim_->NowMicros();
        uint64_t next = vstall_.NextEventAfter(now);
        if (next <= now) {
          return Status::Busy("stalled with no pending compaction");
        }
        waited = next - now;
        sim_->AdvanceTo(next);
      } else {
        MaybeScheduleCompaction();
        uint64_t t0 = env_->NowMicros();
        bg_work_finished_.wait(l);
        waited = env_->NowMicros() - t0;
      }
      stall_span.Close();
      stats_.Add(Ticker::kWriteStallMicros, waited);
      stats_.Measure(HistogramType::kStallMicros, waited);
      GetPerfContext()->write_stall_micros += waited;
      NotifyWriteStop(StallReason::kL0FileCount, waited);
      continue;
    }

    // Switch to a fresh memtable.
    const uint64_t old_log_number = logfile_number_;
    Status s = SwitchToNewLog();
    if (!s.ok()) return s;
    imm_.push_back(ImmEntry{mem_, old_log_number});
    if (sim_ != nullptr) vstall_.OnMemtableSwitch();
    mem_ = std::make_shared<MemTable>(internal_comparator_);
    wal_live_bytes_ = 0;
    MaybeScheduleFlush();
  }
}

// ---------------------------------------------------------------------
// Background scheduling

void DBImpl::MaybeScheduleFlush() {
  if (shutting_down_.load() || !error_handler_.ok()) return;
  if (imm_.empty()) return;
  const int pending = static_cast<int>(imm_.size());
  if (pending < options_.min_write_buffer_number_to_merge &&
      pending < options_.max_write_buffer_number - 1) {
    return;  // accumulate more before merging
  }
  if (SpaceLowLocked(BackgroundErrorSource::kFlush)) return;
  if (sim_ != nullptr) {
    RunFlushSim();
    return;
  }
  if (active_flushes_ >= 1) return;  // real mode: serialize flushes
  active_flushes_++;
  env_->Schedule([this] { BackgroundFlushCall(); }, JobPriority::kHigh);
}

void DBImpl::MaybeScheduleCompaction() {
  if (shutting_down_.load() || !error_handler_.ok()) return;
  if (manual_compaction_active_) return;
  if (versions_->NeedsCompaction() &&
      SpaceLowLocked(BackgroundErrorSource::kCompaction)) {
    return;
  }
  if (sim_ != nullptr) {
    RunCompactionsSim();
    return;
  }
  if (active_compactions_ >= 1) return;  // real mode: one at a time
  if (!versions_->NeedsCompaction()) return;
  active_compactions_++;
  env_->Schedule([this] { BackgroundCompactionCall(); }, JobPriority::kLow);
}

void DBImpl::BackgroundFlushCall() {
  std::unique_lock<std::mutex> l(mu_);
  if (!shutting_down_.load() && error_handler_.ok()) {
    FlushJobInfo info;
    BackgroundErrorSource esrc = BackgroundErrorSource::kFlush;
    const uint64_t t0 = env_->NowMicros();
    Status s = FlushWork(&info, &esrc);
    if (!s.ok()) {
      RecordBackgroundError(esrc, s);
    } else if (info.imms_merged > 0) {
      info.duration_micros = env_->NowMicros() - t0;
      stats_.Measure(HistogramType::kFlushMicros, info.duration_micros);
      NotifyFlushCompleted(info);
      error_handler_.NoteBackgroundWorkSuccess();
    }
  }
  active_flushes_--;
  MaybeSampleLocked();
  MaybeScheduleFlush();
  MaybeScheduleCompaction();
  bg_work_finished_.notify_all();
}

void DBImpl::BackgroundCompactionCall() {
  std::unique_lock<std::mutex> l(mu_);
  if (!shutting_down_.load() && error_handler_.ok()) {
    std::unique_ptr<Compaction> c = versions_->PickCompaction();
    if (c != nullptr) {
      int l0c = 0, l0p = 0;
      std::vector<uint64_t> outs;
      CompactionJobInfo info;
      info.reason =
          options_.compaction_style == CompactionStyle::kUniversal
              ? CompactionReason::kUniversal
              : CompactionReason::kLevelScore;
      BackgroundErrorSource esrc = BackgroundErrorSource::kCompaction;
      const uint64_t t0 = env_->NowMicros();
      Status s = CompactionWork(std::move(c), &l0c, &l0p, &outs, &info,
                                &esrc);
      if (!s.ok()) {
        RecordBackgroundError(esrc, s);
      } else {
        info.duration_micros = env_->NowMicros() - t0;
        stats_.Measure(HistogramType::kCompactionMicros,
                       info.duration_micros);
        NotifyCompactionCompleted(info);
        error_handler_.NoteBackgroundWorkSuccess();
      }
    }
  }
  active_compactions_--;
  MaybeSampleLocked();
  MaybeScheduleCompaction();
  bg_work_finished_.notify_all();
}

void DBImpl::RunFlushSim() {
  // REQUIRES: mu_ held; sim mode only.
  if (in_sim_background_) return;
  in_sim_background_ = true;

  const uint64_t now = sim_->NowMicros();
  sim_->BeginJobMeter();
  FlushJobInfo info;
  BackgroundErrorSource esrc = BackgroundErrorSource::kFlush;
  Status s = FlushWork(&info, &esrc);
  const uint64_t duration = sim_->EndJobMeter();

  if (s.ok()) {
    if (info.imms_merged > 0) {
      const uint64_t file = info.file_number;
      const uint64_t done =
          sim_->ScheduleBackgroundJob(JobPriority::kHigh, now, duration);
      vstall_.OnFlushScheduled(info.imms_merged, file != 0 ? 1 : 0, done);
      if (file != 0) vstall_.SetFileAvailableAt(file, done);
      info.duration_micros = duration;
      stats_.Measure(HistogramType::kFlushMicros, duration);
      NotifyFlushCompleted(info);
      error_handler_.NoteBackgroundWorkSuccess();
    }
  } else {
    RecordBackgroundError(esrc, s);
  }
  in_sim_background_ = false;

  RunCompactionsSim();
  MaybeSampleLocked();
}

void DBImpl::RunCompactionsSim() {
  // REQUIRES: mu_ held; sim mode only.
  if (in_sim_background_) return;
  in_sim_background_ = true;

  while (error_handler_.ok() && !shutting_down_.load() &&
         versions_->NeedsCompaction()) {
    std::unique_ptr<Compaction> c = versions_->PickCompaction();
    if (c == nullptr) break;

    const uint64_t now = sim_->NowMicros();
    uint64_t ready = now;
    std::vector<uint64_t> input_numbers;
    for (int which = 0; which < 2; which++) {
      for (const auto& f : c->inputs(which)) {
        ready = std::max(ready, vstall_.FileAvailableAt(f->number));
        input_numbers.push_back(f->number);
      }
    }

    const bool from_l0 = (c->level() == 0);
    const int inputs_at_l0 = from_l0 ? c->num_input_files(0) : 0;

    sim_->BeginJobMeter();
    int l0_consumed = 0, l0_produced = 0;
    std::vector<uint64_t> output_numbers;
    CompactionJobInfo info;
    info.reason = options_.compaction_style == CompactionStyle::kUniversal
                      ? CompactionReason::kUniversal
                      : CompactionReason::kLevelScore;
    BackgroundErrorSource esrc = BackgroundErrorSource::kCompaction;
    Status s = CompactionWork(std::move(c), &l0_consumed, &l0_produced,
                              &output_numbers, &info, &esrc);
    uint64_t duration = sim_->EndJobMeter();

    if (!s.ok()) {
      RecordBackgroundError(esrc, s);
      break;
    }

    // Subcompaction speedup: parallel workers split the key range, with
    // a coordination overhead.
    const int subs = std::min(
        options_.max_subcompactions,
        std::max(1, sim_->hardware().cpu_cores));
    if (subs > 1) {
      duration = static_cast<uint64_t>(duration / subs * 1.15);
    }

    info.duration_micros = duration;
    stats_.Measure(HistogramType::kCompactionMicros, duration);
    NotifyCompactionCompleted(info);

    const uint64_t done =
        sim_->ScheduleBackgroundJob(JobPriority::kLow, ready, duration);
    vstall_.OnCompactionScheduled(from_l0 ? inputs_at_l0 : l0_consumed,
                                  l0_produced, done);
    for (uint64_t out : output_numbers) {
      vstall_.SetFileAvailableAt(out, done);
    }
    for (uint64_t in : input_numbers) {
      vstall_.ForgetFile(in);
    }
  }

  in_sim_background_ = false;
  MaybeSampleLocked();
}

// ---------------------------------------------------------------------
// Background-error handling & self-healing

void DBImpl::RecordBackgroundError(BackgroundErrorSource source,
                                   const Status& s) {
  // REQUIRES: mu_ held.
  if (s.ok()) return;
  // An orderly shutdown aborts in-flight jobs; that is not an error.
  if (shutting_down_.load() && s.IsAborted()) return;
  if (!error_handler_.SetBGError(source, s, env_->NowMicros())) return;

  const ErrorHandler::State& st = error_handler_.state();
  switch (st.severity) {
    case ErrorSeverity::kSoft:
      stats_.Add(Ticker::kBackgroundErrorsSoft, 1);
      break;
    case ErrorSeverity::kHard:
      stats_.Add(Ticker::kBackgroundErrorsHard, 1);
      break;
    case ErrorSeverity::kFatal:
      stats_.Add(Ticker::kBackgroundErrorsFatal, 1);
      break;
    case ErrorSeverity::kNone:
      break;
  }
  ELMO_LOG_ERROR(options_.info_log.get(),
                 "background error (%s/%s, severity=%s): %s",
                 BackgroundErrorSourceName(st.source),
                 BackgroundErrorKindName(st.kind),
                 ErrorSeverityName(st.severity), s.ToString().c_str());

  BackgroundErrorInfo info;
  info.source = st.source;
  info.kind = st.kind;
  info.severity = st.severity;
  info.status = st.cause;
  info.retry_count = st.retry_count;
  NotifyBackgroundError(info);

  // Wake writers immediately: soft stalls must re-check the retry
  // schedule, hard/fatal waits must fail fast instead of blocking.
  bg_work_finished_.notify_all();

  if (sim_ == nullptr && st.auto_recoverable) {
    StartRecoveryThreadLocked();
  }
}

Status DBImpl::ResumeImpl(bool manual) {
  // REQUIRES: mu_ held. `manual` resumes ignore the backoff schedule but
  // still consume the same bounded retry budget.
  (void)manual;
  if (error_handler_.ok()) return Status::OK();
  if (error_handler_.severity() == ErrorSeverity::kFatal) {
    return error_handler_.WriteStatus();
  }

  const ErrorHandler::State st = error_handler_.state();
  const bool first_attempt = !st.recovery_began;
  const int attempt = error_handler_.OnResumeAttemptStart();
  stats_.Add(Ticker::kAutoResumeAttempts, 1);

  BackgroundErrorInfo info;
  info.source = st.source;
  info.kind = st.kind;
  info.severity = st.severity;
  info.status = st.cause;
  info.retry_count = attempt;
  if (first_attempt) NotifyErrorRecoveryBegin(info);

  // Repair whatever the failing source left behind before declaring the
  // episode over; flush/compaction inputs are immutable, so for those a
  // clear-and-reschedule is the repair.
  Status repair;
  if (st.kind == BackgroundErrorKind::kNoSpace) {
    if (space_monitor_ != nullptr) {
      space_monitor_->Invalidate();
      if (!space_monitor_->HasHeadroom(env_->NowMicros())) {
        repair = Status::NoSpace("free space still below reserved headroom");
      }
    }
  } else if (st.source == BackgroundErrorSource::kWalAppend ||
             st.source == BackgroundErrorSource::kWalSync) {
    // Every acked record is intact in the old WAL (replay tolerates a
    // torn tail); roll to a fresh log so new writes land on a healthy
    // file. The old WAL stays on disk until its memtable flushes.
    repair = SwitchToNewLog();
  } else if (st.source == BackgroundErrorSource::kManifest) {
    // Force a fresh MANIFEST and eagerly write the full snapshot +
    // CURRENT swap: a successful LogAndApply *is* the verification.
    versions_->ForceNewManifest();
    VersionEdit edit;
    repair = versions_->LogAndApply(&edit);
  }

  if (repair.ok()) {
    error_handler_.OnResumeSucceeded();
    stats_.Add(Ticker::kAutoResumeSuccess, 1);
    ELMO_LOG(options_.info_log.get(),
             "background error recovered (%s/%s) after %d attempt(s)",
             BackgroundErrorSourceName(st.source),
             BackgroundErrorKindName(st.kind), attempt);
    info.status = Status::OK();
    info.retry_count = attempt;
    NotifyErrorRecoveryCompleted(info);
    MaybeScheduleFlush();
    MaybeScheduleCompaction();
    bg_work_finished_.notify_all();
    return Status::OK();
  }

  const bool escalated =
      error_handler_.OnResumeFailed(repair, env_->NowMicros());
  stats_.Add(Ticker::kAutoResumeFailure, 1);
  if (escalated) {
    stats_.Add(Ticker::kBackgroundErrorsHard, 1);
  }
  const ErrorHandler::State& after = error_handler_.state();
  ELMO_LOG_ERROR(options_.info_log.get(),
                 "resume attempt %d failed (%s/%s): %s%s", attempt,
                 BackgroundErrorSourceName(st.source),
                 BackgroundErrorKindName(st.kind),
                 repair.ToString().c_str(),
                 after.auto_recoverable ? "" : "; giving up");
  if (!after.auto_recoverable) {
    // Episode over without recovery: report the terminal failure.
    info.severity = after.severity;
    info.status = repair;
    info.retry_count = attempt;
    NotifyErrorRecoveryCompleted(info);
  }
  if (escalated || !after.auto_recoverable) {
    bg_work_finished_.notify_all();
  }
  return repair;
}

void DBImpl::MaybeResumeLocked() {
  // REQUIRES: mu_ held.
  if (shutting_down_.load()) return;
  if (!error_handler_.ResumeDue(env_->NowMicros())) return;
  ResumeImpl(false);
}

Status DBImpl::Resume() {
  std::lock_guard<std::mutex> l(mu_);
  if (error_handler_.ok()) return Status::OK();
  return ResumeImpl(true);
}

bool DBImpl::SpaceLowLocked(BackgroundErrorSource source) {
  // REQUIRES: mu_ held.
  if (space_monitor_ == nullptr) return false;
  if (space_monitor_->HasHeadroom(env_->NowMicros())) return false;
  RecordBackgroundError(source,
                        Status::NoSpace("free space below reserved headroom"));
  return true;
}

void DBImpl::StartRecoveryThreadLocked() {
  // REQUIRES: mu_ held. Lazily started on the first recoverable error in
  // real-env mode; SimEnv drives recovery inline from foreground calls.
  if (recovery_thread_started_) return;
  recovery_thread_started_ = true;
  recovery_thread_ = std::thread([this] { RecoveryThreadLoop(); });
}

void DBImpl::RecoveryThreadLoop() {
  std::unique_lock<std::mutex> rl(recovery_mu_);
  while (!recovery_stop_) {
    recovery_cv_.wait_for(rl, std::chrono::milliseconds(10),
                          [this] { return recovery_stop_; });
    if (recovery_stop_) break;
    rl.unlock();
    {
      std::lock_guard<std::mutex> l(mu_);
      MaybeResumeLocked();
    }
    rl.lock();
  }
}

void DBImpl::NotifyBackgroundError(const BackgroundErrorInfo& info) {
  for (const auto& l : options_.listeners) l->OnBackgroundError(info);
}

void DBImpl::NotifyErrorRecoveryBegin(const BackgroundErrorInfo& info) {
  for (const auto& l : options_.listeners) l->OnErrorRecoveryBegin(info);
}

void DBImpl::NotifyErrorRecoveryCompleted(const BackgroundErrorInfo& info) {
  for (const auto& l : options_.listeners) l->OnErrorRecoveryCompleted(info);
}

// ---------------------------------------------------------------------
// Flush

Status DBImpl::FlushWork(FlushJobInfo* info, BackgroundErrorSource* esrc) {
  // REQUIRES: mu_ held. On failure *esrc names the failing stage so the
  // error handler can attribute (and repair) it correctly.
  if (esrc != nullptr) *esrc = BackgroundErrorSource::kFlush;
  IOContextScope io_ctx(IOContextTag::kFlush);
  *info = FlushJobInfo{};
  if (imm_.empty()) return Status::OK();

  // Background-job root: under SimEnv this nests inside the foreground
  // write that scheduled it; the collector extracts it as its own tree.
  SpanScope span(env_, SpanKind::kFlush, span_tracer_.get());

  // Capture the memtables to flush (all currently queued).
  std::vector<std::shared_ptr<MemTable>> mems;
  const size_t n_taken = imm_.size();
  mems.reserve(n_taken);
  for (const auto& e : imm_) mems.push_back(e.mem);

  {
    FlushJobInfo begin;
    begin.imms_merged = static_cast<int>(n_taken);
    NotifyFlushBegin(begin);
  }

  VersionEdit edit;
  FileMetaData meta;
  Status s;
  {
    SpanScope build_span(env_, SpanKind::kTableBuild);
    s = WriteLevel0Table(mems, &edit, &meta);
    build_span.Annotate(SpanTag::kBytes, meta.file_size);
  }

  if (s.ok() && shutting_down_.load()) {
    s = Status::Aborted("shutting down during flush");
  }

  if (s.ok()) {
    // The oldest WAL still needed is the one backing the oldest
    // *remaining* immutable memtable (new imms may have queued while the
    // table was built with the lock released), or the active WAL if all
    // are flushed.
    const uint64_t log_floor = (imm_.size() > n_taken)
                                   ? imm_[n_taken].log_number
                                   : logfile_number_;
    edit.SetLogNumber(log_floor);
    ELMO_KILL_POINT("flush:before_manifest_apply");
    SpanScope manifest_span(env_, SpanKind::kManifestApply);
    if (esrc != nullptr) *esrc = BackgroundErrorSource::kManifest;
    s = versions_->LogAndApply(&edit);
    if (s.ok() && esrc != nullptr) *esrc = BackgroundErrorSource::kFlush;
  }

  if (s.ok()) {
    imm_.erase(imm_.begin(), imm_.begin() + n_taken);
    info->imms_merged = static_cast<int>(n_taken);
    info->file_number = meta.file_size > 0 ? meta.number : 0;
    info->output_bytes = meta.file_size;
    span.Annotate(SpanTag::kEntries, static_cast<uint64_t>(n_taken));
    span.Annotate(SpanTag::kBytes, meta.file_size);
    stats_.Add(Ticker::kFlushCount, 1);
    stats_.Add(Ticker::kFlushBytes, meta.file_size);
    stats_.Measure(HistogramType::kFlushOutputBytes, meta.file_size);
    stats_.AddLevelWriteBytes(0, meta.file_size);
    stats_.AddLevelInBytes(0, meta.file_size);
    if (options_.dump_malloc_stats) {
      ELMO_LOG(options_.info_log.get(),
               "flush #%llu: %llu bytes, %s (malloc stats: arena reuse ok)",
               (unsigned long long)meta.number,
               (unsigned long long)meta.file_size,
               versions_->LevelSummary().c_str());
    }
    RemoveObsoleteFiles();
  }
  return s;
}

Status DBImpl::WriteLevel0Table(
    const std::vector<std::shared_ptr<MemTable>>& mems, VersionEdit* edit,
    FileMetaData* meta) {
  // REQUIRES: mu_ held. The table build itself happens with the lock
  // released (the memtables are immutable).
  meta->number = versions_->NewFileNumber();
  meta->file_size = 0;
  pending_outputs_.insert(meta->number);

  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(mems.size());
  for (const auto& m : mems) children.push_back(m->NewIterator());
  auto iter = NewMergingIterator(&internal_comparator_, std::move(children));

  mu_.unlock();
  Status s;
  {
    std::unique_ptr<WritableFile> raw_file;
    s = env_->NewWritableFile(TableFileName(dbname_, meta->number),
                              &raw_file);
    if (s.ok()) {
      std::unique_ptr<WritableFile> file = std::make_unique<SyncingWritableFile>(
          std::move(raw_file), options_.bytes_per_sync,
          options_.strict_bytes_per_sync);

      TableBuildOptions topts;
      topts.comparator = &internal_comparator_;
      std::unique_ptr<BloomFilterPolicy> policy;
      if (options_.bloom_filter_bits_per_key > 0) {
        policy = std::make_unique<BloomFilterPolicy>(
            options_.bloom_filter_bits_per_key);
        topts.filter_policy = policy.get();
        topts.filter_key_transform = [](const Slice& ikey) {
          return ExtractUserKey(ikey);
        };
      }
      topts.block_size = options_.block_size;
      topts.block_restart_interval = options_.block_restart_interval;
      topts.compression = options_.compression;

      TableBuilder builder(topts, file.get());
      iter->SeekToFirst();
      uint64_t entries = 0;
      if (iter->Valid()) {
        meta->smallest.DecodeFrom(iter->key());
        for (; iter->Valid(); iter->Next()) {
          meta->largest.DecodeFrom(iter->key());
          builder.Add(iter->key(), iter->value());
          entries++;
        }
        env_->ChargeCpu(entries * cost::kFlushPerEntryUs);
        if (options_.compression != CompressionType::kNoCompression) {
          env_->ChargeCpu(builder.FileSize() / options_.block_size *
                          cost::kCompressPerBlockUs);
        }
        s = builder.Finish();
        if (s.ok()) {
          meta->file_size = builder.FileSize();
          ELMO_KILL_POINT("flush:before_sst_sync");
          s = file->Sync();
          if (s.ok()) ELMO_KILL_POINT("flush:after_sst_sync");
        }
        if (s.ok()) s = file->Close();
      } else {
        builder.Abandon();
      }
      if (s.ok() && !iter->status().ok()) s = iter->status();
    }
  }
  mu_.lock();

  pending_outputs_.erase(meta->number);
  if (s.ok() && meta->file_size > 0) {
    edit->AddFile(0, meta->number, meta->file_size, meta->smallest,
                  meta->largest);
  } else if (meta->file_size == 0) {
    env_->RemoveFile(TableFileName(dbname_, meta->number));
  }
  return s;
}

// ---------------------------------------------------------------------
// Compaction

SequenceNumber DBImpl::SmallestSnapshot() const {
  if (snapshots_.empty()) return versions_->LastSequence();
  return *std::min_element(snapshots_.begin(), snapshots_.end());
}

Status DBImpl::OpenCompactionOutputFile(std::unique_ptr<WritableFile>* file,
                                        uint64_t* number) {
  // REQUIRES: mu_ held.
  *number = versions_->NewFileNumber();
  pending_outputs_.insert(*number);
  std::unique_ptr<WritableFile> raw;
  Status s = env_->NewWritableFile(TableFileName(dbname_, *number), &raw);
  if (s.ok()) {
    *file = std::make_unique<SyncingWritableFile>(
        std::move(raw), options_.bytes_per_sync,
        options_.strict_bytes_per_sync);
  }
  return s;
}

Status DBImpl::CompactionWork(std::unique_ptr<Compaction> c, int* l0_consumed,
                              int* l0_produced,
                              std::vector<uint64_t>* output_numbers,
                              CompactionJobInfo* info,
                              BackgroundErrorSource* esrc) {
  // REQUIRES: mu_ held. info->reason is preset by the caller. On failure
  // *esrc names the failing stage (compaction proper vs manifest apply).
  if (esrc != nullptr) *esrc = BackgroundErrorSource::kCompaction;
  IOContextScope io_ctx(IOContextTag::kCompaction);
  SpanScope span(env_, SpanKind::kCompaction, span_tracer_.get());
  span.Annotate(SpanTag::kLevel, static_cast<uint64_t>(c->level()));
  span.Annotate(SpanTag::kInputBytes, c->TotalInputBytes());
  *l0_consumed = 0;
  *l0_produced = 0;

  if (c->level() == 0) *l0_consumed = c->num_input_files(0);

  info->level = c->level();
  info->output_level = c->output_level();
  info->num_input_files = c->num_input_files(0) + c->num_input_files(1);
  info->input_bytes = c->TotalInputBytes();
  NotifyCompactionBegin(*info);

  // Trivial move: retarget the file without rewriting it.
  if (c->IsTrivialMove()) {
    const FileRef& f = c->input(0, 0);
    c->edit()->RemoveFile(c->level(), f->number);
    c->edit()->AddFile(c->output_level(), f->number, f->file_size,
                       f->smallest, f->largest);
    Status s;
    {
      SpanScope manifest_span(env_, SpanKind::kManifestApply);
      if (esrc != nullptr) *esrc = BackgroundErrorSource::kManifest;
      s = versions_->LogAndApply(c->edit());
      if (s.ok() && esrc != nullptr) {
        *esrc = BackgroundErrorSource::kCompaction;
      }
    }
    stats_.Add(Ticker::kTrivialMoveCount, 1);
    // The file changed levels without a rewrite: bytes arrive at the
    // output level for free (no write amplification charged).
    stats_.AddLevelInBytes(c->output_level(), f->file_size);
    info->trivial_move = true;
    info->num_output_files = 1;
    info->output_bytes = f->file_size;
    if (c->output_level() == 0) *l0_produced = 1;
    output_numbers->push_back(f->number);
    RemoveObsoleteFiles();
    return s;
  }

  const SequenceNumber smallest_snapshot = SmallestSnapshot();

  // Build the merged input iterator.
  TableIterOptions in_opts;
  in_opts.fill_cache = false;
  in_opts.readahead_bytes = options_.compaction_readahead_size;
  std::vector<std::unique_ptr<Iterator>> children;
  uint64_t input_bytes = c->TotalInputBytes();
  for (int which = 0; which < 2; which++) {
    in_opts.level = which == 0 ? c->level() : c->output_level();
    for (const auto& f : c->inputs(which)) {
      children.push_back(
          table_cache_->NewIterator(f->number, f->file_size, in_opts));
    }
  }
  auto input =
      NewMergingIterator(&internal_comparator_, std::move(children));

  std::vector<CompactionOutput> outputs;
  std::unique_ptr<WritableFile> out_file;
  std::unique_ptr<TableBuilder> builder;
  uint64_t current_output_number = 0;

  TableBuildOptions topts;
  topts.comparator = &internal_comparator_;
  std::unique_ptr<BloomFilterPolicy> policy;
  if (options_.bloom_filter_bits_per_key > 0) {
    policy = std::make_unique<BloomFilterPolicy>(
        options_.bloom_filter_bits_per_key);
    topts.filter_policy = policy.get();
    topts.filter_key_transform = [](const Slice& ikey) {
      return ExtractUserKey(ikey);
    };
  }
  topts.block_size = options_.block_size;
  topts.block_restart_interval = options_.block_restart_interval;
  topts.compression = options_.compression;

  const Comparator* ucmp = internal_comparator_.user_comparator();

  mu_.unlock();

  Status s;
  std::string current_user_key;
  bool has_current_user_key = false;
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;
  uint64_t entries = 0;
  InternalKey out_smallest, out_largest;

  auto finish_output = [&]() {
    if (builder == nullptr) return Status::OK();
    Status fs = builder->Finish();
    uint64_t size = builder->FileSize();
    ELMO_KILL_POINT("compaction:before_output_sync");
    if (fs.ok()) fs = out_file->Sync();
    if (fs.ok()) fs = out_file->Close();
    builder.reset();
    out_file.reset();
    if (fs.ok()) {
      outputs.push_back(CompactionOutput{current_output_number, size,
                                         out_smallest, out_largest});
    }
    return fs;
  };

  for (input->SeekToFirst(); s.ok() && input->Valid(); input->Next()) {
    Slice key = input->key();
    entries++;

    bool drop = false;
    ParsedInternalKey ikey;
    if (!ParseInternalKey(key, &ikey)) {
      // Pass corrupted keys through so they surface on read.
      current_user_key.clear();
      has_current_user_key = false;
      last_sequence_for_key = kMaxSequenceNumber;
    } else {
      if (!has_current_user_key ||
          ucmp->Compare(ikey.user_key, Slice(current_user_key)) != 0) {
        current_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
        has_current_user_key = true;
        last_sequence_for_key = kMaxSequenceNumber;
      }

      if (last_sequence_for_key <= smallest_snapshot) {
        // Shadowed by a newer entry for the same user key that is
        // itself visible to every snapshot.
        drop = true;
      } else if (ikey.type == kTypeDeletion &&
                 ikey.sequence <= smallest_snapshot &&
                 c->IsBaseLevelForKey(ikey.user_key)) {
        // Deletion marker with nothing underneath it to hide.
        drop = true;
      }
      last_sequence_for_key = ikey.sequence;
    }

    if (!drop) {
      if (builder == nullptr) {
        mu_.lock();
        s = OpenCompactionOutputFile(&out_file, &current_output_number);
        mu_.unlock();
        if (!s.ok()) break;
        builder = std::make_unique<TableBuilder>(topts, out_file.get());
        out_smallest.DecodeFrom(key);
      }
      out_largest.DecodeFrom(key);
      builder->Add(key, input->value());

      if (builder->FileSize() >= c->MaxOutputFileSize()) {
        s = finish_output();
        if (!s.ok()) break;
      }
    }
  }

  if (s.ok()) s = input->status();
  if (s.ok()) s = finish_output();
  env_->ChargeCpu(entries * cost::kCompactionPerEntryUs);
  input.reset();

  mu_.lock();

  if (s.ok() && shutting_down_.load()) {
    s = Status::Aborted("shutting down during compaction");
  }

  if (s.ok()) {
    c->AddInputDeletions(c->edit());
    uint64_t output_bytes = 0;
    for (const auto& out : outputs) {
      c->edit()->AddFile(c->output_level(), out.number, out.file_size,
                         out.smallest, out.largest);
      output_numbers->push_back(out.number);
      output_bytes += out.file_size;
    }
    {
      SpanScope manifest_span(env_, SpanKind::kManifestApply);
      if (esrc != nullptr) *esrc = BackgroundErrorSource::kManifest;
      s = versions_->LogAndApply(c->edit());
      if (s.ok() && esrc != nullptr) {
        *esrc = BackgroundErrorSource::kCompaction;
      }
    }
    if (s.ok()) ELMO_KILL_POINT("compaction:after_apply");
    if (s.ok()) {
      span.Annotate(SpanTag::kBytes, output_bytes);
      span.Annotate(SpanTag::kEntries, entries);
      stats_.Add(Ticker::kCompactionCount, 1);
      stats_.Add(Ticker::kCompactionBytesRead, input_bytes);
      stats_.Add(Ticker::kCompactionBytesWritten, output_bytes);
      stats_.Measure(HistogramType::kCompactionInputBytes, input_bytes);
      stats_.Measure(HistogramType::kCompactionOutputBytes, output_bytes);
      // Per-level data flow: bytes leave both input levels, land at the
      // output level; upper-level input is the level's inflow (the
      // write-amplification denominator).
      uint64_t upper_bytes = 0;
      for (const auto& f : c->inputs(0)) upper_bytes += f->file_size;
      stats_.AddLevelReadBytes(c->level(), upper_bytes);
      stats_.AddLevelReadBytes(c->output_level(),
                               input_bytes - upper_bytes);
      stats_.AddLevelWriteBytes(c->output_level(), output_bytes);
      stats_.AddLevelInBytes(c->output_level(), upper_bytes);
      stats_.AddLevelCompaction(c->output_level());
      info->num_output_files = static_cast<int>(outputs.size());
      info->output_bytes = output_bytes;
      if (c->output_level() == 0) {
        *l0_produced = static_cast<int>(outputs.size());
      }
    }
  }

  for (const auto& out : outputs) pending_outputs_.erase(out.number);
  if (!s.ok()) {
    // Remove any orphaned outputs.
    for (const auto& out : outputs) {
      env_->RemoveFile(TableFileName(dbname_, out.number));
    }
  }
  RemoveObsoleteFiles();
  return s;
}

void DBImpl::RemoveObsoleteFiles() {
  // REQUIRES: mu_ held. Skipped while an error is active: the live-file
  // view may be stale relative to a half-applied manifest edit.
  if (!error_handler_.ok()) return;

  std::set<uint64_t> live = pending_outputs_;
  versions_->AddLiveFiles(&live);

  std::vector<std::string> filenames;
  if (!env_->GetChildren(dbname_, &filenames).ok()) return;

  uint64_t number;
  FileType type;
  for (const auto& filename : filenames) {
    if (!ParseFileName(filename, &number, &type)) continue;
    bool keep = true;
    switch (type) {
      case FileType::kLogFile:
        keep = (number >= versions_->LogNumber()) ||
               (number == logfile_number_);
        break;
      case FileType::kDescriptorFile:
        keep = (number >= versions_->ManifestFileNumber());
        break;
      case FileType::kTableFile:
        keep = (live.find(number) != live.end());
        break;
      case FileType::kTempFile:
        keep = (live.find(number) != live.end());
        break;
      case FileType::kCurrentFile:
      case FileType::kLockFile:
      case FileType::kInfoLogFile:
        keep = true;
        break;
    }
    if (!keep) {
      if (type == FileType::kTableFile) {
        table_cache_->Evict(number);
      }
      env_->RemoveFile(dbname_ + "/" + filename);
    }
  }
}

// ---------------------------------------------------------------------
// Read path

Status DBImpl::Get(const ReadOptions& options, const Slice& key,
                   std::string* value) {
  value->clear();
  IOContextScope io_ctx(IOContextTag::kUserGet);
  const uint64_t t_start = env_->NowMicros();
  PerfContext* perf = GetPerfContext();
  SpanScope span(env_, SpanKind::kGet, span_tracer_.get());
  std::shared_ptr<MemTable> mem;
  std::vector<std::shared_ptr<MemTable>> imms;
  std::shared_ptr<Version> version;
  SequenceNumber snapshot;
  {
    std::lock_guard<std::mutex> l(mu_);
    // Reads keep serving in every degraded state; they also piggyback a
    // due auto-resume attempt (under SimEnv the foreground is the only
    // clock observer).
    if (!error_handler_.ok()) MaybeResumeLocked();
    if (options.snapshot != nullptr) {
      snapshot =
          static_cast<const SnapshotImpl*>(options.snapshot)->sequence;
    } else {
      snapshot = versions_->LastSequence();
    }
    mem = mem_;
    imms.reserve(imm_.size());
    // Newest immutable first.
    for (auto it = imm_.rbegin(); it != imm_.rend(); ++it) {
      imms.push_back(it->mem);
    }
    version = versions_->current();
  }

  LookupKey lkey(key, snapshot);
  Status s;
  int files_probed = 0;
  bool done = false;

  {
    SpanScope mem_span(env_, SpanKind::kMemtableProbe);
    if (mem->Get(lkey, value, &s)) {
      done = true;
      if (s.ok()) perf->get_memtable_hit++;
    }
    if (!done) {
      for (const auto& m : imms) {
        if (m->Get(lkey, value, &s)) {
          done = true;
          if (s.ok()) perf->get_imm_hit++;
          break;
        }
      }
    }
    mem_span.Annotate(SpanTag::kHit, done ? 1 : 0);
  }
  if (!done) {
    SpanScope sst_span(env_, SpanKind::kSstProbe);
    const auto cache_before = block_cache_->GetStats();
    Version::GetStats vstats;
    s = version->Get(options, lkey, value, &vstats);
    files_probed = vstats.files_probed;
    if (s.ok()) perf->get_sst_hit++;
    const auto cache_after = block_cache_->GetStats();
    sst_span.Annotate(SpanTag::kFilesProbed,
                      static_cast<uint64_t>(files_probed));
    if (vstats.hit_level >= 0) {
      sst_span.Annotate(SpanTag::kLevel,
                        static_cast<uint64_t>(vstats.hit_level));
    }
    sst_span.Annotate(SpanTag::kCacheHit,
                      cache_after.hits - cache_before.hits);
    sst_span.Annotate(SpanTag::kCacheMiss,
                      cache_after.misses - cache_before.misses);
    sst_span.Annotate(SpanTag::kHit, s.ok() ? 1 : 0);
  }

  ChargeGetCpu(files_probed);
  stats_.Add(s.ok() ? Ticker::kGetHit : Ticker::kGetMiss, 1);
  span.Annotate(SpanTag::kHit, s.ok() ? 1 : 0);
  if (s.ok()) {
    stats_.Add(Ticker::kBytesRead, value->size());
    span.Annotate(SpanTag::kBytes, value->size());
  }

  const uint64_t elapsed = env_->NowMicros() - t_start;
  stats_.Measure(HistogramType::kGetMicros, elapsed);
  perf->get_count++;
  perf->get_files_probed += files_probed;
  perf->get_micros += elapsed;
  if (s.ok()) {
    perf->get_read_bytes += value->size();
  } else {
    perf->get_miss++;
  }

  // Misses are traced too: a replayed read of a since-deleted key should
  // miss again.
  if (tracing_.load(std::memory_order_acquire)) {
    TraceGet(key, t_start);
  }
  if (sampler_ != nullptr && sampler_->Due(env_->NowMicros())) {
    std::lock_guard<std::mutex> sample_lock(mu_);
    MaybeSampleLocked();
  }
  return s;
}

std::unique_ptr<Iterator> DBImpl::NewInternalIterator(
    const ReadOptions& options, SequenceNumber* latest_seq) {
  std::lock_guard<std::mutex> l(mu_);
  // Scan-heavy phases must tick the sampler too: under SimEnv no thread
  // can observe virtual time, so every frequent call site piggybacks.
  MaybeSampleLocked();
  *latest_seq = versions_->LastSequence();

  std::vector<std::unique_ptr<Iterator>> children;
  std::vector<std::shared_ptr<void>> refs;

  children.push_back(mem_->NewIterator());
  refs.push_back(mem_);
  for (auto it = imm_.rbegin(); it != imm_.rend(); ++it) {
    children.push_back(it->mem->NewIterator());
    refs.push_back(it->mem);
  }
  auto version = versions_->current();
  TableIterOptions iter_opts;
  iter_opts.fill_cache = options.fill_cache;
  version->AddIterators(iter_opts, &children);
  refs.push_back(version);

  auto merged =
      NewMergingIterator(&internal_comparator_, std::move(children));
  return std::make_unique<RefHolderIterator>(std::move(merged),
                                             std::move(refs));
}

std::unique_ptr<Iterator> DBImpl::NewIterator(const ReadOptions& options) {
  SequenceNumber latest;
  auto internal = NewInternalIterator(options, &latest);
  SequenceNumber seq =
      options.snapshot != nullptr
          ? static_cast<const SnapshotImpl*>(options.snapshot)->sequence
          : latest;
  stats_.Add(Ticker::kSeekCount, 1);
  return NewDBIterator(internal_comparator_.user_comparator(),
                       std::move(internal), seq, env_, span_tracer_.get());
}

const Snapshot* DBImpl::GetSnapshot() {
  std::lock_guard<std::mutex> l(mu_);
  auto* snap = new SnapshotImpl(versions_->LastSequence());
  snapshots_.push_back(snap->sequence);
  return snap;
}

void DBImpl::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  const auto* impl = static_cast<const SnapshotImpl*>(snapshot);
  std::lock_guard<std::mutex> l(mu_);
  auto it =
      std::find(snapshots_.begin(), snapshots_.end(), impl->sequence);
  if (it != snapshots_.end()) snapshots_.erase(it);
  delete impl;
}

// ---------------------------------------------------------------------
// Observability

void DBImpl::NotifyFlushBegin(const FlushJobInfo& info) {
  for (const auto& l : options_.listeners) l->OnFlushBegin(info);
}

void DBImpl::NotifyFlushCompleted(const FlushJobInfo& info) {
  for (const auto& l : options_.listeners) l->OnFlushCompleted(info);
}

void DBImpl::NotifyCompactionBegin(const CompactionJobInfo& info) {
  for (const auto& l : options_.listeners) l->OnCompactionBegin(info);
}

void DBImpl::NotifyCompactionCompleted(const CompactionJobInfo& info) {
  for (const auto& l : options_.listeners) l->OnCompactionCompleted(info);
}

void DBImpl::UpdateStallCondition(StallCondition next, StallReason reason,
                                  uint64_t wait_micros) {
  // REQUIRES: mu_ held.
  if (next == stall_condition_) return;
  StallInfo info;
  info.previous = stall_condition_;
  info.current = next;
  info.reason = reason;
  info.wait_micros = wait_micros;
  stall_condition_ = next;
  for (const auto& l : options_.listeners) l->OnStallConditionChanged(info);
}

void DBImpl::NotifyWriteStop(StallReason reason, uint64_t wait_micros) {
  StallInfo info;
  info.previous = StallCondition::kStopped;
  info.current = StallCondition::kStopped;
  info.reason = reason;
  info.wait_micros = wait_micros;
  for (const auto& l : options_.listeners) l->OnWriteStop(info);
}

std::string DBImpl::LevelStatsString() const {
  // REQUIRES: mu_ held.
  auto version = versions_->current();
  std::string out =
      "Level  Files  Size(MB)  Score  In(MB)  Read(MB)  Write(MB)  "
      "W-Amp  Cmp\n";
  char buf[160];
  const double mb = 1048576.0;
  int total_files = 0;
  uint64_t total_size = 0, total_in = 0, total_read = 0, total_write = 0,
           total_cmp = 0;
  for (int level = 0; level < version->num_levels(); level++) {
    const int files = version->NumFiles(level);
    const uint64_t size = version->NumBytes(level);
    const uint64_t in = stats_.LevelInBytes(level);
    const uint64_t read = stats_.LevelReadBytes(level);
    const uint64_t write = stats_.LevelWriteBytes(level);
    const uint64_t cmp = stats_.LevelCompactions(level);
    const double wamp =
        in == 0 ? 0.0 : static_cast<double>(write) / static_cast<double>(in);
    snprintf(buf, sizeof(buf),
             "  L%-3d  %5d  %8.1f  %5.2f  %6.1f  %8.1f  %9.1f  %5.1f  %3llu\n",
             level, files, size / mb, version->LevelScore(level), in / mb,
             read / mb, write / mb, wamp, (unsigned long long)cmp);
    out += buf;
    total_files += files;
    total_size += size;
    total_in += in;
    total_read += read;
    total_write += write;
    total_cmp += cmp;
  }
  const uint64_t user_bytes = stats_.Get(Ticker::kBytesWritten);
  const double total_wamp =
      user_bytes == 0
          ? 0.0
          : static_cast<double>(total_write) / static_cast<double>(user_bytes);
  snprintf(buf, sizeof(buf),
           "  Sum   %5d  %8.1f   -     %6.1f  %8.1f  %9.1f  %5.1f  %3llu\n",
           total_files, total_size / mb, total_in / mb, total_read / mb,
           total_write / mb, total_wamp, (unsigned long long)total_cmp);
  out += buf;
  return out;
}

void DBImpl::SyncCacheStatsLocked() {
  // REQUIRES: mu_ held. The cache counts internally; fold the delta
  // since the last sync into the registry tickers.
  const Cache::Stats cur = block_cache_->GetStats();
  stats_.Add(Ticker::kBlockCacheHit, cur.hits - last_cache_stats_.hits);
  stats_.Add(Ticker::kBlockCacheMiss, cur.misses - last_cache_stats_.misses);
  last_cache_stats_ = cur;
}

void DBImpl::SyncLogStatsLocked() {
  // REQUIRES: mu_ held. Same delta-fold pattern as the cache stats:
  // the loggers count internally, the registry gets the increments.
  uint64_t dropped = 0;
  if (auto* buffered = dynamic_cast<BufferLogger*>(options_.info_log.get())) {
    dropped = buffered->dropped_lines();
  }
  const uint64_t failures =
      info_event_log_ != nullptr ? info_event_log_->write_failures() : 0;
  if (dropped > last_info_log_dropped_) {
    stats_.Add(Ticker::kInfoLogDroppedLines, dropped - last_info_log_dropped_);
    last_info_log_dropped_ = dropped;
  }
  if (failures > last_info_log_failures_) {
    stats_.Add(Ticker::kInfoLogWriteFailures,
               failures - last_info_log_failures_);
    last_info_log_failures_ = failures;
  }
}

std::string DBImpl::RenderPrometheusLocked() {
  // REQUIRES: mu_ held.
  SyncCacheStatsLocked();
  SyncLogStatsLocked();
  monitor::PrometheusInputs in;
  in.stats = stats_.GetSnapshot();
  const EngineGauges g = GatherGaugesLocked();
  in.num_levels = std::min(g.num_levels, DbStats::kMaxLevels);
  for (int l = 0; l < DbStats::kMaxLevels && l < in.num_levels; l++) {
    in.level_files[l] = g.level_files[l];
    in.level_read_bytes[l] = stats_.LevelReadBytes(l);
    in.level_write_bytes[l] = stats_.LevelWriteBytes(l);
    in.level_compactions[l] = stats_.LevelCompactions(l);
  }
  in.memtable_bytes = g.memtable_bytes;
  in.imm_count = g.imm_count;
  in.pending_compaction_bytes = g.pending_compaction_bytes;
  in.block_cache_usage = g.block_cache_usage;
  in.block_cache_capacity = block_cache_->Capacity();
  if (sampler_ != nullptr) {
    in.sampler_samples = sampler_->NumSamples();
    in.sampler_ring_dropped = sampler_->DroppedSamples();
    in.sampler_late_ticks = sampler_->LateTicks();
    in.sampler_interval_us = sampler_->interval_us();
  }
  if (health_ != nullptr) {
    const monitor::HealthReport r = health_->Report();
    in.health_status = static_cast<int>(r.status);
    if (!r.diagnoses.empty()) {
      in.health_top_rule = r.diagnoses.front().rule;
      in.health_top_severity = r.diagnoses.front().severity;
    }
  }
  in.bg_error_severity = static_cast<int>(error_handler_.severity());
  if (!error_handler_.ok()) {
    const ErrorHandler::State& est = error_handler_.state();
    in.bg_error_source = BackgroundErrorSourceName(est.source);
    in.bg_error_kind = BackgroundErrorKindName(est.kind);
    in.bg_error_retry_count = est.retry_count;
  }
  in.ts_us = env_->NowMicros();
  return monitor::RenderPrometheus(in);
}

void DBImpl::ExportMetricsLocked() {
  // REQUIRES: mu_ held.
  if (options_.metrics_export_path.empty()) return;
  const std::string text = RenderPrometheusLocked();
  raw_env_->WriteStringToFile(Slice(text), options_.metrics_export_path,
                              /*sync=*/false);
}

EngineGauges DBImpl::GatherGaugesLocked() {
  // REQUIRES: mu_ held.
  EngineGauges g;
  g.memtable_bytes = mem_ != nullptr ? mem_->ApproximateMemoryUsage() : 0;
  for (const auto& e : imm_) {
    g.memtable_bytes += e.mem->ApproximateMemoryUsage();
  }
  g.imm_count = ImmCountForStall();
  g.pending_compaction_bytes = versions_->EstimatePendingCompactionBytes();
  auto version = versions_->current();
  g.num_levels = std::min(version->num_levels(), DbStats::kMaxLevels);
  for (int level = 0; level < g.num_levels; level++) {
    g.level_files[level] = version->NumFiles(level);
  }
  // L0 stalls are decided on the virtual count under sim; report the
  // same number the stall logic sees.
  if (g.num_levels > 0) g.level_files[0] = L0CountForStall();
  g.block_cache_usage = block_cache_->TotalCharge();
  g.bg_error_severity = static_cast<int>(error_handler_.severity());

  const SpanAggregate::Snapshot spans = GlobalSpanAggregate()->GetSnapshot();
  auto since_open = [this, &spans](SpanKind k) {
    return spans.Get(k).total_us - span_baseline_.Get(k).total_us;
  };
  g.span_stall_us = since_open(SpanKind::kStallWait);
  g.span_wal_sync_us = since_open(SpanKind::kWalSync);
  g.span_sst_probe_us = since_open(SpanKind::kSstProbe);
  g.span_memtable_us = since_open(SpanKind::kMemtableInsert) +
                       since_open(SpanKind::kMemtableProbe);
  return g;
}

void DBImpl::MaybeSampleLocked() {
  // REQUIRES: mu_ held.
  if (sampler_ == nullptr) return;
  const uint64_t now = env_->NowMicros();
  if (!sampler_->Due(now)) return;

  // Tickers must be current before the sampler computes its delta.
  SyncCacheStatsLocked();
  SyncLogStatsLocked();

  if (!sampler_->Tick(now, GatherGaugesLocked())) return;
  const IntervalSample s = sampler_->Latest();

  if (info_event_log_ != nullptr) {
    // The full sample goes to the LOG so offline replay (elmo_dump
    // health, elmo_top) sees exactly what the live monitor saw. The
    // sample's own timestamp is stripped: LogEvent stamps the line with
    // the same engine clock.
    json::Object fields = SampleToJsonObject(s);
    fields.erase("ts_us");
    info_event_log_->LogEvent("sampler_tick", std::move(fields));
  }

  if (health_ != nullptr) {
    const std::vector<monitor::AnomalyEvent> events = health_->Observe(s);
    if (info_event_log_ != nullptr) {
      for (const monitor::AnomalyEvent& e : events) {
        json::Object fields = e.ToJson();
        fields.erase("ts_us");
        info_event_log_->LogEvent("anomaly", std::move(fields));
      }
      const monitor::HealthReport r = health_->Report();
      if (r.status != last_health_status_) {
        json::Object fields;
        fields["from"] = monitor::HealthStatusName(last_health_status_);
        fields["to"] = monitor::HealthStatusName(r.status);
        if (!r.diagnoses.empty()) {
          fields["top_rule"] = r.diagnoses.front().rule;
          fields["top_severity"] = r.diagnoses.front().severity;
        }
        info_event_log_->LogEvent("health", std::move(fields));
        last_health_status_ = r.status;
      }
    }
  }

  ExportMetricsLocked();
}

void DBImpl::SamplerThreadLoop() {
  std::unique_lock<std::mutex> sl(sampler_mu_);
  while (!sampler_stop_) {
    // Cadence is re-read every pass so a live SetOptions() retime takes
    // effect at the next wakeup (the retime also signals sampler_cv_).
    const auto interval = std::chrono::milliseconds(
        sampler_interval_ms_.load(std::memory_order_relaxed));
    sampler_cv_.wait_for(sl, interval, [this] { return sampler_stop_; });
    if (sampler_stop_) break;
    sl.unlock();
    {
      std::lock_guard<std::mutex> l(mu_);
      MaybeSampleLocked();
    }
    sl.lock();
  }
}

namespace {

uint32_t CurrentThreadId32() {
  return static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

// Forwards every batch entry to the trace writer, all stamped with the
// batch's arrival time: replay sees the batch as one arrival, matching
// how the write path treated it.
class TraceBatchHandler : public WriteBatch::Handler {
 public:
  TraceBatchHandler(TraceWriter* writer, uint64_t ts_us, uint32_t thread_id)
      : writer_(writer), ts_us_(ts_us), thread_id_(thread_id) {}

  void Put(const Slice& key, const Slice& value) override {
    writer_->AddRecord(TraceOp::kPut, ts_us_, thread_id_, key,
                       static_cast<uint32_t>(value.size()));
  }
  void Delete(const Slice& key) override {
    writer_->AddRecord(TraceOp::kDelete, ts_us_, thread_id_, key, 0);
  }

 private:
  TraceWriter* const writer_;
  const uint64_t ts_us_;
  const uint32_t thread_id_;
};

}  // namespace

Status DBImpl::StartTrace(const std::string& path) {
  std::lock_guard<std::mutex> l(trace_mu_);
  if (trace_ != nullptr) return Status::Busy("a trace is already active");
  auto writer = std::make_shared<TraceWriter>(env_);
  Status s = writer->Open(path, env_->NowMicros());
  if (!s.ok()) return s;
  trace_ = std::move(writer);
  tracing_.store(true, std::memory_order_release);
  if (info_event_log_ != nullptr) {
    json::Object fields;
    fields["path"] = path;
    info_event_log_->LogEvent("trace_start", std::move(fields));
  }
  return Status::OK();
}

Status DBImpl::EndTrace() {
  std::shared_ptr<TraceWriter> writer;
  {
    std::lock_guard<std::mutex> l(trace_mu_);
    if (trace_ == nullptr) return Status::InvalidArgument("no trace active");
    tracing_.store(false, std::memory_order_release);
    writer = std::move(trace_);
  }
  Status s = writer->Close();
  if (info_event_log_ != nullptr) {
    json::Object fields;
    fields["records"] = static_cast<int64_t>(writer->records());
    info_event_log_->LogEvent("trace_end", std::move(fields));
  }
  return s;
}

Status DBImpl::StartIOTrace(const std::string& path) {
  Status s = io_env_->StartTrace(path);
  if (s.ok() && info_event_log_ != nullptr) {
    json::Object fields;
    fields["path"] = path;
    info_event_log_->LogEvent("io_trace_start", std::move(fields));
  }
  return s;
}

Status DBImpl::EndIOTrace() {
  uint64_t records = 0;
  Status s = io_env_->EndTrace(&records);
  if (s.ok() && info_event_log_ != nullptr) {
    json::Object fields;
    fields["records"] = static_cast<int64_t>(records);
    info_event_log_->LogEvent("io_trace_end", std::move(fields));
  }
  return s;
}

Status DBImpl::StartBlockCacheTrace(const std::string& path) {
  Status s = block_cache_tracer_->Start(path);
  if (s.ok() && info_event_log_ != nullptr) {
    json::Object fields;
    fields["path"] = path;
    info_event_log_->LogEvent("block_cache_trace_start", std::move(fields));
  }
  return s;
}

Status DBImpl::EndBlockCacheTrace() {
  uint64_t records = 0;
  Status s = block_cache_tracer_->Stop(&records);
  if (s.ok() && info_event_log_ != nullptr) {
    json::Object fields;
    fields["records"] = static_cast<int64_t>(records);
    info_event_log_->LogEvent("block_cache_trace_end", std::move(fields));
  }
  return s;
}

Status DBImpl::StartSpanTrace(const std::string& path,
                              const SpanTraceOptions& options) {
  Status s = span_tracer_->Start(path, options, env_->NowMicros());
  if (s.ok() && info_event_log_ != nullptr) {
    json::Object fields;
    fields["path"] = path;
    fields["slow_op_threshold_us"] =
        static_cast<int64_t>(options.slow_op_threshold_us);
    fields["sample_every"] = static_cast<int64_t>(options.sample_every);
    info_event_log_->LogEvent("span_trace_start", std::move(fields));
  }
  return s;
}

Status DBImpl::EndSpanTrace() {
  uint64_t trees = 0;
  Status s = span_tracer_->Stop(&trees);
  if (s.ok() && info_event_log_ != nullptr) {
    json::Object fields;
    fields["records"] = static_cast<int64_t>(trees);
    info_event_log_->LogEvent("span_trace_end", std::move(fields));
  }
  return s;
}

void DBImpl::TraceWriteBatch(const WriteBatch& updates, uint64_t ts_us) {
  std::shared_ptr<TraceWriter> writer;
  {
    std::lock_guard<std::mutex> l(trace_mu_);
    writer = trace_;
  }
  if (writer == nullptr) return;
  TraceBatchHandler handler(writer.get(), ts_us, CurrentThreadId32());
  updates.Iterate(&handler);
}

void DBImpl::TraceGet(const Slice& key, uint64_t ts_us) {
  std::shared_ptr<TraceWriter> writer;
  {
    std::lock_guard<std::mutex> l(trace_mu_);
    writer = trace_;
  }
  if (writer == nullptr) return;
  writer->AddRecord(TraceOp::kGet, ts_us, CurrentThreadId32(), key, 0);
}

// ---------------------------------------------------------------------
// Admin

bool DBImpl::GetProperty(const Slice& property, std::string* value) {
  value->clear();
  std::string prop = property.ToString();
  std::lock_guard<std::mutex> l(mu_);

  if (prop == "elmo.stats") {
    SyncCacheStatsLocked();  // tickers current as of this dump
    SyncLogStatsLocked();
    *value = stats_.ToString();
    *value += versions_->LevelSummary() + "\n";
    *value += LevelStatsString();
    auto cache_stats = block_cache_->GetStats();
    char buf[256];
    snprintf(buf, sizeof(buf),
             "block cache: usage %zu / %zu, hits %llu, misses %llu\n",
             block_cache_->TotalCharge(), block_cache_->Capacity(),
             (unsigned long long)cache_stats.hits,
             (unsigned long long)cache_stats.misses);
    *value += buf;
    if (sampler_ != nullptr) {
      snprintf(buf, sizeof(buf),
               "sampler: samples %zu, ring dropped %llu, late ticks %llu\n",
               sampler_->NumSamples(),
               (unsigned long long)sampler_->DroppedSamples(),
               (unsigned long long)sampler_->LateTicks());
      *value += buf;
    }
    return true;
  }
  if (prop == "elmo.levelstats") {
    *value = LevelStatsString();
    return true;
  }
  if (prop == "elmo.levelsummary") {
    *value = versions_->LevelSummary();
    return true;
  }
  if (prop == "elmo.sstables") {
    // One line per file: "L<level> #<number> <size> [smallest..largest]".
    auto version = versions_->current();
    for (int level = 0; level < version->num_levels(); level++) {
      for (const auto& f : version->files(level)) {
        char buf[128];
        snprintf(buf, sizeof(buf), "L%d #%llu %llu [", level,
                 (unsigned long long)f->number,
                 (unsigned long long)f->file_size);
        *value += buf;
        *value += f->smallest.user_key().ToString() + "..";
        *value += f->largest.user_key().ToString() + "]\n";
      }
    }
    return true;
  }
  if (StartsWith(prop, "elmo.num-files-at-level")) {
    auto level = ParseInt64(prop.substr(strlen("elmo.num-files-at-level")));
    if (!level.has_value() || *level < 0 ||
        *level >= options_.num_levels) {
      return false;
    }
    *value = std::to_string(
        versions_->NumLevelFiles(static_cast<int>(*level)));
    return true;
  }
  if (prop == "elmo.estimate-pending-compaction-bytes") {
    *value = std::to_string(versions_->EstimatePendingCompactionBytes());
    return true;
  }
  if (prop == "elmo.block-cache-usage") {
    *value = std::to_string(block_cache_->TotalCharge());
    return true;
  }
  if (prop == "elmo.block-cache-hit-rate") {
    auto cs = block_cache_->GetStats();
    double total = static_cast<double>(cs.hits + cs.misses);
    char buf[32];
    snprintf(buf, sizeof(buf), "%.4f",
             total == 0 ? 0.0 : cs.hits / total);
    *value = buf;
    return true;
  }
  if (prop == "elmo.options") {
    *value = OptionsSchema::Instance().ToIniText(options_);
    return true;
  }
  if (prop == "elmo.perf") {
    *value = GetPerfContext()->ToString();
    if (!value->empty()) *value += '\n';
    *value += GlobalSpanAggregate()->ToString();
    return true;
  }
  if (prop == "elmo.timeseries") {
    // Reading the property is itself a tick opportunity, so a SimEnv
    // run that just advanced virtual time gets an up-to-date final
    // sample without any extra call.
    MaybeSampleLocked();
    *value = sampler_ != nullptr ? sampler_->ToJson()
                                 : TimeSeriesToJson(0, 0, {});
    return true;
  }
  if (prop == "elmo.health") {
    // Same tick-opportunity logic as elmo.timeseries: the verdict
    // reflects the engine state up to this very read.
    MaybeSampleLocked();
    if (health_ == nullptr) {
      *value = "{\"status\": \"disabled\"}";
    } else {
      *value = health_->Report().ToJson();
    }
    return true;
  }
  if (prop == "elmo.prometheus") {
    MaybeSampleLocked();
    *value = RenderPrometheusLocked();
    return true;
  }
  if (prop == "elmo.options_changes") {
    json::Object doc;
    doc["count"] =
        static_cast<int64_t>(stats_.Get(Ticker::kOptionsChanges));
    json::Array changes;
    for (const auto& rec : options_changes_) {
      json::Object c;
      c["ts_us"] = static_cast<int64_t>(rec.ts_us);
      c["source"] = rec.source;
      json::Array deltas;
      for (const auto& d : rec.deltas) {
        json::Object dj;
        dj["name"] = d.name;
        dj["from"] = d.from;
        dj["to"] = d.to;
        deltas.push_back(std::move(dj));
      }
      c["deltas"] = std::move(deltas);
      changes.push_back(std::move(c));
    }
    doc["changes"] = std::move(changes);
    *value = json::Value(std::move(doc)).Dump();
    return true;
  }
  if (prop == "elmo.bg_error") {
    const ErrorHandler::State& est = error_handler_.state();
    json::Object doc;
    doc["severity"] = ErrorSeverityName(est.severity);
    if (!error_handler_.ok()) {
      doc["source"] = BackgroundErrorSourceName(est.source);
      doc["kind"] = BackgroundErrorKindName(est.kind);
      doc["cause"] = est.cause.ToString();
      doc["retry_count"] = static_cast<int64_t>(est.retry_count);
      doc["auto_recoverable"] = est.auto_recoverable;
      doc["next_retry_at_us"] = static_cast<int64_t>(est.next_retry_at_us);
    }
    doc["resume_successes"] =
        static_cast<int64_t>(error_handler_.resume_successes());
    doc["resume_failures"] =
        static_cast<int64_t>(error_handler_.resume_failures());
    *value = json::Value(std::move(doc)).Dump();
    return true;
  }
  return false;
}

Status DBImpl::SetOptions(
    const std::map<std::string, std::string>& changes) {
  if (changes.empty()) {
    return Status::InvalidArgument("SetOptions", "no changes supplied");
  }
  std::lock_guard<std::mutex> l(mu_);
  return ApplyDynamicOptionsLocked(changes, "set_options");
}

Status DBImpl::ApplyDynamicOptionsLocked(
    const std::map<std::string, std::string>& changes,
    const std::string& source) {
  const OptionsSchema& schema = OptionsSchema::Instance();

  // Phase 1: validate everything against a scratch copy. Nothing is
  // applied unless every entry passes (all-or-nothing).
  Options next = options_;
  for (const auto& [name, value] : changes) {
    const OptionInfo* info = schema.Find(name);
    if (info == nullptr) {
      if (const DeprecatedOption* dep = schema.FindDeprecated(name)) {
        return Status::InvalidArgument(
            name, "deprecated option (" + dep->note + ")");
      }
      return Status::InvalidArgument(name, "unknown option");
    }
    if (!info->runtime_mutable) {
      return Status::InvalidArgument(
          name, "immutable at runtime (open-time option)");
    }
    Status s = info->set(&next, value);
    if (!s.ok()) return s;
  }

  // The sampler (and its thread) cannot be created or destroyed on a
  // live DB: the cadence may change but not cross zero.
  if ((options_.stats_sample_interval_ms == 0) !=
      (next.stats_sample_interval_ms == 0)) {
    return Status::InvalidArgument(
        "stats_sample_interval_ms",
        "cannot start or stop the sampler at runtime (0 <-> nonzero)");
  }

  // Re-impose the open-time invariants (SanitizeOptions) relating
  // mutable options to each other, so a partial update cannot wedge the
  // stall state machine (e.g. stop trigger below slowdown trigger).
  next.max_write_buffer_number = std::max(2, next.max_write_buffer_number);
  next.level0_slowdown_writes_trigger =
      std::max(next.level0_slowdown_writes_trigger,
               next.level0_file_num_compaction_trigger);
  next.level0_stop_writes_trigger = std::max(
      next.level0_stop_writes_trigger, next.level0_slowdown_writes_trigger);
  next.write_buffer_size =
      std::max<uint64_t>(next.write_buffer_size, 1 << 16);

  // Phase 2: diff the *effective* (post-clamp) values. Entries the
  // clamp reverted are dropped; an all-no-op call succeeds without
  // recording anything.
  OptionsChangeRecord rec;
  rec.ts_us = env_->NowMicros();
  rec.source = source;
  for (const auto& [name, value] : changes) {
    const OptionInfo* info = schema.Find(name);
    const std::string from = info->get(options_);
    const std::string to = info->get(next);
    if (from == to) continue;
    rec.deltas.push_back({name, from, to});
  }
  if (rec.deltas.empty()) return Status::OK();

  const Options prev = options_;
  options_ = next;

  // Phase 3: re-plumb dependent state, each guarded on actual change.
  // MakeRoomForWrite re-reads the stall triggers and buffer sizes from
  // options_ on every loop pass, so those need no extra wiring beyond
  // the wakeup below.
  if (next.block_cache_size != prev.block_cache_size) {
    block_cache_->SetCapacity(next.block_cache_size);
  }
  if (next.delayed_write_rate != prev.delayed_write_rate) {
    slowdown_limiter_.SetRate(next.delayed_write_rate);
  }
  const bool lanes_changed =
      next.ResolvedFlushSlots() != prev.ResolvedFlushSlots() ||
      next.ResolvedCompactionSlots() != prev.ResolvedCompactionSlots();
  if (sim_ != nullptr) {
    if (lanes_changed) {
      sim_->ConfigureLanes(next.ResolvedFlushSlots(),
                           next.ResolvedCompactionSlots());
    }
    if (next.ConfiguredMemoryFootprint() !=
        prev.ConfiguredMemoryFootprint()) {
      sim_->SetAppMemoryFootprint(next.ConfiguredMemoryFootprint());
    }
  } else if (lanes_changed) {
    env_->SetBackgroundThreads(next.ResolvedFlushSlots(),
                               JobPriority::kHigh);
    env_->SetBackgroundThreads(next.ResolvedCompactionSlots(),
                               JobPriority::kLow);
  }
  if (sampler_ != nullptr &&
      next.stats_sample_interval_ms != prev.stats_sample_interval_ms) {
    sampler_->SetInterval(next.stats_sample_interval_ms * 1000,
                          env_->NowMicros());
    sampler_interval_ms_.store(next.stats_sample_interval_ms,
                               std::memory_order_relaxed);
    sampler_cv_.notify_all();
  }
  if (health_ != nullptr) {
    // Diagnosis thresholds (triggers, capacities) track the live config.
    health_->SetEngineInfo(monitor::EngineInfo::FromOptions(options_));
  }

  // Phase 4: record — LOG event, ticker, bounded ledger.
  stats_.Add(Ticker::kOptionsChanges, 1);
  if (info_event_log_ != nullptr) {
    json::Object fields;
    fields["source"] = source;
    json::Array deltas;
    for (const auto& d : rec.deltas) {
      json::Object dj;
      dj["name"] = d.name;
      dj["from"] = d.from;
      dj["to"] = d.to;
      deltas.push_back(std::move(dj));
    }
    fields["deltas"] = std::move(deltas);
    info_event_log_->LogEvent("options_change", std::move(fields));
  }
  options_changes_.push_back(std::move(rec));
  while (options_changes_.size() > 64) options_changes_.pop_front();

  // Phase 5: persist, so a reopen with recover_persisted_options
  // resumes from here. Skipped during recovery replay — Recover()
  // rewrites the OPTIONS file right after.
  if (source != "recovery") {
    std::string old_options = FindLatestOptionsFile(env_, dbname_);
    std::string fname =
        OptionsFileName(dbname_, versions_->NewFileNumber());
    Status os = SaveOptionsFile(env_, fname, options_);
    if (os.ok() && !old_options.empty() && old_options != fname) {
      env_->RemoveFile(old_options);
    }
    if (!os.ok()) {
      ELMO_LOG_WARN(options_.info_log.get(),
                    "failed to persist OPTIONS file after SetOptions: %s",
                    os.ToString().c_str());
    }
  }

  // Phase 6: wake anything the new limits may unblock — stalled
  // writers re-read options_ on their next loop pass, background
  // scheduling re-evaluates under the new parallelism.
  MaybeScheduleFlush();
  MaybeScheduleCompaction();
  bg_work_finished_.notify_all();
  return Status::OK();
}

Status DBImpl::FlushMemTable() {
  std::unique_lock<std::mutex> l(mu_);
  if (mem_->NumEntries() > 0) {
    const uint64_t old_log_number = logfile_number_;
    Status s = SwitchToNewLog();
    if (!s.ok()) return s;
    imm_.push_back(ImmEntry{mem_, old_log_number});
    if (sim_ != nullptr) vstall_.OnMemtableSwitch();
    mem_ = std::make_shared<MemTable>(internal_comparator_);
    wal_live_bytes_ = 0;
  }
  if (imm_.empty()) return Status::OK();

  if (!error_handler_.ok()) MaybeResumeLocked();

  // A forced flush must respect the free-space guard too: writing the
  // SST on a nearly full disk risks a mid-file failure, so pause the
  // episode instead and let Resume() retry once space is reclaimed.
  if (error_handler_.ok() && SpaceLowLocked(BackgroundErrorSource::kFlush)) {
    return error_handler_.BackgroundWorkStatus();
  }

  if (sim_ != nullptr) {
    RunFlushSim();
    return error_handler_.BackgroundWorkStatus();
  }
  // Real mode: force a flush even below the merge threshold, and keep
  // re-arming until our memtables drain. A recoverable error episode is
  // ridden out here (the recovery thread re-schedules the flush); only
  // a terminal error breaks the wait.
  while (!imm_.empty() && !shutting_down_.load() &&
         (error_handler_.ok() || error_handler_.state().auto_recoverable)) {
    if (error_handler_.ok() && active_flushes_ < 1) {
      active_flushes_++;
      env_->Schedule([this] { BackgroundFlushCall(); }, JobPriority::kHigh);
    }
    bg_work_finished_.wait(l);
  }
  return error_handler_.BackgroundWorkStatus();
}

void DBImpl::SettleVirtualClockLocked() {
  // REQUIRES: mu_ held, sim mode. Everything ran inline; settle the
  // virtual clock past the last scheduled completion so the stall
  // counters drain.
  while (vstall_.HasPendingEvents()) {
    uint64_t now = sim_->NowMicros();
    uint64_t next = vstall_.NextEventAfter(now);
    if (next <= now) break;
    sim_->AdvanceTo(next);
    vstall_.ProcessUntil(next);
  }
}

Status DBImpl::WaitForBackgroundWork() {
  if (sim_ != nullptr) {
    std::lock_guard<std::mutex> l(mu_);
    SettleVirtualClockLocked();
    // Ride out a recoverable error episode: jump the clock to each
    // scheduled retry and attempt it (bounded by the retry budget).
    while (!error_handler_.ok() && error_handler_.state().auto_recoverable &&
           !shutting_down_.load()) {
      const uint64_t next = error_handler_.next_retry_at_us();
      if (next > sim_->NowMicros()) sim_->AdvanceTo(next);
      MaybeResumeLocked();
      SettleVirtualClockLocked();
    }
    MaybeSampleLocked();
    return error_handler_.BackgroundWorkStatus();
  }
  std::unique_lock<std::mutex> l(mu_);
  MaybeScheduleFlush();
  MaybeScheduleCompaction();
  bg_work_finished_.wait(l, [this] {
    return (active_flushes_ == 0 && active_compactions_ == 0 &&
            (imm_.empty() ||
             static_cast<int>(imm_.size()) <
                 options_.min_write_buffer_number_to_merge) &&
            !versions_->NeedsCompaction()) ||
           (!error_handler_.ok() &&
            !error_handler_.state().auto_recoverable) ||
           shutting_down_.load();
  });
  MaybeSampleLocked();
  return error_handler_.BackgroundWorkStatus();
}

void DBImpl::GetApproximateSizes(const Range* ranges, int n,
                                 uint64_t* sizes) {
  std::shared_ptr<Version> version;
  {
    std::lock_guard<std::mutex> l(mu_);
    version = versions_->current();
  }
  const Comparator* ucmp = internal_comparator_.user_comparator();

  for (int i = 0; i < n; i++) {
    uint64_t total = 0;
    for (int level = 0; level < version->num_levels(); level++) {
      for (const auto& f : version->files(level)) {
        Slice file_start = f->smallest.user_key();
        Slice file_limit = f->largest.user_key();
        if (ucmp->Compare(file_limit, ranges[i].start) < 0 ||
            ucmp->Compare(file_start, ranges[i].limit) >= 0) {
          continue;  // disjoint
        }
        const bool fully_inside =
            ucmp->Compare(file_start, ranges[i].start) >= 0 &&
            ucmp->Compare(file_limit, ranges[i].limit) < 0;
        // Partially overlapping files are charged half — a coarse but
        // monotone estimate (leveldb refines via the table index; the
        // tooling this serves only needs rough proportions).
        total += fully_inside ? f->file_size : f->file_size / 2;
      }
    }
    sizes[i] = total;
  }
}

Status DBImpl::CompactRange(const Slice* begin, const Slice* end) {
  Status s = FlushMemTable();
  if (!s.ok()) return s;
  s = WaitForBackgroundWork();
  if (!s.ok()) return s;

  std::unique_lock<std::mutex> l(mu_);
  manual_compaction_active_ = true;

  InternalKey begin_key, end_key;
  InternalKey* begin_ptr = nullptr;
  InternalKey* end_ptr = nullptr;
  if (begin != nullptr) {
    begin_key = InternalKey(*begin, kMaxSequenceNumber, kValueTypeForSeek);
    begin_ptr = &begin_key;
  }
  if (end != nullptr) {
    end_key = InternalKey(*end, 0, static_cast<ValueType>(0));
    end_ptr = &end_key;
  }

  for (int level = 0; level < options_.num_levels - 1 && s.ok(); level++) {
    while (s.ok()) {
      std::unique_ptr<Compaction> c =
          versions_->CompactRange(level, begin_ptr, end_ptr);
      if (c == nullptr) break;
      int l0c = 0, l0p = 0;
      std::vector<uint64_t> outs;
      CompactionJobInfo info;
      info.reason = CompactionReason::kManual;
      const uint64_t t0 = env_->NowMicros();
      BackgroundErrorSource esrc = BackgroundErrorSource::kCompaction;
      s = CompactionWork(std::move(c), &l0c, &l0p, &outs, &info, &esrc);
      if (!s.ok()) RecordBackgroundError(esrc, s);
      if (s.ok()) {
        info.duration_micros = env_->NowMicros() - t0;
        stats_.Measure(HistogramType::kCompactionMicros,
                       info.duration_micros);
        NotifyCompactionCompleted(info);
      }
    }
  }

  manual_compaction_active_ = false;

  if (sim_ != nullptr) {
    // Manual compaction bypassed the virtual-time bookkeeping; settle
    // every outstanding event and resynchronize the L0 counter with the
    // real tree.
    while (vstall_.HasPendingEvents()) {
      uint64_t now = sim_->NowMicros();
      uint64_t next = vstall_.NextEventAfter(now);
      if (next <= now) break;
      sim_->AdvanceTo(next);
      vstall_.ProcessUntil(next);
    }
    vstall_.SetInitialL0(versions_->NumLevelFiles(0));
  }
  return s;
}

}  // namespace elmo::lsm
